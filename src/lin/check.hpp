#pragma once
// Unified checking facade: the one entry point harness, campaign and bench
// call.  Routes each history through the ambiguity classifier
// (lin/fast/classifier.hpp): unambiguous histories of a type with a monitor
// family get the O(n log n) verdict, everything else falls back to the
// general Wing-Gong search (lin/checker.hpp).  The routing decision and the
// search-effort statistics travel with the verdict so campaigns can report
// fast-path vs. fallback dispatch counts without re-deriving them.

#include <string>

#include "adt/data_type.hpp"
#include "lin/checker.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin {

enum class CheckRoute {
  kFastPath,  ///< decided by the family monitor (no witness)
  kGeneral,   ///< decided by the Wing-Gong search
};

[[nodiscard]] constexpr const char* to_string(CheckRoute r) {
  switch (r) {
    case CheckRoute::kFastPath: return "fast_path";
    case CheckRoute::kGeneral: return "general";
  }
  return "?";
}

/// How the verdict was produced, and at what cost.
struct CheckStats {
  CheckRoute route = CheckRoute::kGeneral;
  /// Monitor family that decided (fast path) -- kNone on the general route.
  adt::MonitorFamily family = adt::MonitorFamily::kNone;
  /// Why the general checker ran (empty on the fast path).
  std::string fallback_reason;
  /// General-search statistics; all zero on the fast path.
  std::size_t nodes_expanded = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_collisions = 0;
};

struct CheckReport {
  CheckResult result;
  CheckStats stats;
};

struct FacadeOptions {
  CheckOptions general;          ///< knobs for the fallback search
  bool allow_fast_path = true;   ///< false forces the general checker
  bool require_witness = false;  ///< witnesses only come from the general
                                 ///< search, so this forces it too
};

/// Checks `ops` against `type`, fast path when the classifier admits it.
/// Same contract as check_linearizability: throws std::invalid_argument on
/// incomplete records (which always route to the general checker first).
[[nodiscard]] CheckReport check(const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
                                const FacadeOptions& options = {});

/// Convenience: checks an entire recorded run.
[[nodiscard]] CheckReport check(const adt::DataType& type, const sim::RunRecord& record,
                                const FacadeOptions& options = {});

}  // namespace lintime::lin
