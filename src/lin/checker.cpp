#include "lin/checker.hpp"

#include <sstream>
#include <stdexcept>

#include "lin/search_detail.hpp"

namespace lintime::lin {

namespace detail {

namespace {

class Search {
 public:
  Search(const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
         const std::function<bool(std::size_t, std::size_t)>& precedes_fn,
         const CheckOptions& options)
      : ops_(ops), n_(ops.size()), prec_(n_, precedes_fn), options_(options) {
    // Resolve every record's operation name to its interned id once; the
    // probe loop then dispatches on integers only.  Pure accessors never
    // mutate, so their probes run on the live state without a copy.
    ids_.reserve(n_);
    pure_accessor_.reserve(n_);
    for (const auto& op : ops_) {
      const adt::OpId id = type.op_id(op.op);
      ids_.push_back(id);
      pure_accessor_.push_back(type.category(id) == adt::OpCategory::kPureAccessor);
    }
    placed_.assign(placed_word_count(n_), 0);
    initial_ = type.initial_state();
  }

  CheckResult run() {
    CheckResult result;
    result.linearizable = dfs(*initial_, 0);
    result.witness = witness_;
    result.nodes_expanded = nodes_.value();
    result.memo_hits = memo_.hits();
    result.memo_collisions = memo_.collisions();
    return result;
  }

 private:
  bool dfs(adt::ObjectState& state, std::size_t placed_count) {
    if (placed_count == n_) return true;
    nodes_.bump();

    adt::Fingerprint fp;
    if (options_.memoize) {
      fp = state.fingerprint();
      if (memo_.known_dead(placed_, fp, state)) return false;
    }

    for (std::size_t i = 0; i < n_; ++i) {
      if (test_bit(placed_, i) || !prec_.ready(i)) continue;

      // A pure accessor leaves the state unchanged, so it probes (and
      // recurses) on the live state; everything else probes a scratch copy.
      adt::ObjectState& probe =
          pure_accessor_[i] ? state : scratch_.copy_at(placed_count, state);
      if (probe.apply(ids_[i], ops_[i].arg) != ops_[i].ret) continue;

      set_bit(placed_, i);
      prec_.place(i);
      witness_.push_back(i);

      if (dfs(probe, placed_count + 1)) return true;

      witness_.pop_back();
      prec_.unplace(i);
      clear_bit(placed_, i);
    }

    if (options_.memoize) memo_.mark_dead(placed_, fp, state);
    return false;
  }

  const std::vector<sim::OpRecord>& ops_;
  std::size_t n_;
  std::vector<adt::OpId> ids_;
  std::vector<char> pure_accessor_;  ///< per record: declared kPureAccessor
  PrecedenceMatrix prec_;
  std::vector<std::uint64_t> placed_;
  std::vector<std::size_t> witness_;
  StateMemo memo_;
  ScratchStates scratch_;
  NodeCounter nodes_;
  std::unique_ptr<adt::ObjectState> initial_;
  CheckOptions options_;
};

}  // namespace

CheckResult search_permutation(const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
                               const std::function<bool(std::size_t, std::size_t)>& precedes,
                               const CheckOptions& options) {
  for (const auto& op : ops) {
    if (!op.complete()) {
      throw std::invalid_argument("permutation search: incomplete instance " + op.op);
    }
  }
  return Search(type, ops, precedes, options).run();
}

}  // namespace detail

std::string CheckResult::witness_to_string(const std::vector<sim::OpRecord>& ops) const {
  std::ostringstream os;
  for (std::size_t k = 0; k < witness.size(); ++k) {
    if (k > 0) os << " . ";
    os << ops[witness[k]].to_string();
  }
  return os.str();
}

CheckResult check_linearizability(const adt::DataType& type,
                                  const std::vector<sim::OpRecord>& ops,
                                  const CheckOptions& options) {
  return detail::search_permutation(
      type, ops,
      [&ops](std::size_t i, std::size_t j) { return detail::realtime_precedes(ops[i], ops[j]); },
      options);
}

CheckResult check_linearizability(const adt::DataType& type, const sim::RunRecord& record) {
  return check_linearizability(type, record.ops);
}

}  // namespace lintime::lin
