#include "lin/checker.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "lin/search_detail.hpp"

namespace lintime::lin {

namespace detail {

namespace {

class Search {
 public:
  Search(const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
         const std::function<bool(std::size_t, std::size_t)>& precedes_fn,
         const CheckOptions& options)
      : type_(type), ops_(ops), n_(ops.size()), options_(options) {
    precedes_.assign(n_ * n_, false);
    pred_count_.assign(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (i != j && precedes_fn(i, j)) {
          precedes_[i * n_ + j] = true;
          ++pred_count_[j];
        }
      }
    }
    placed_.assign(n_, false);
  }

  CheckResult run() {
    CheckResult result;
    auto state = type_.make_initial_state();
    result.linearizable = dfs(*state, 0);
    result.witness = witness_;
    result.nodes_expanded = nodes_;
    return result;
  }

 private:
  bool dfs(adt::ObjectState& state, std::size_t placed_count) {
    if (placed_count == n_) return true;
    ++nodes_;

    std::string key;
    key.reserve(n_ + 1 + 16);
    for (std::size_t i = 0; i < n_; ++i) key.push_back(placed_[i] ? '1' : '0');
    key.push_back('|');
    key += state.canonical();
    if (options_.memoize && visited_.contains(key)) return false;

    for (std::size_t i = 0; i < n_; ++i) {
      if (placed_[i] || pred_count_[i] != 0) continue;

      auto probe = state.clone();
      if (probe->apply(ops_[i].op, ops_[i].arg) != ops_[i].ret) continue;

      placed_[i] = true;
      for (std::size_t j = 0; j < n_; ++j) {
        if (precedes_[i * n_ + j]) --pred_count_[j];
      }
      witness_.push_back(i);

      if (dfs(*probe, placed_count + 1)) return true;

      witness_.pop_back();
      for (std::size_t j = 0; j < n_; ++j) {
        if (precedes_[i * n_ + j]) ++pred_count_[j];
      }
      placed_[i] = false;
    }

    if (options_.memoize) visited_.insert(std::move(key));
    return false;
  }

  const adt::DataType& type_;
  const std::vector<sim::OpRecord>& ops_;
  std::size_t n_;
  std::vector<char> precedes_;
  std::vector<int> pred_count_;
  std::vector<char> placed_;
  std::vector<std::size_t> witness_;
  std::unordered_set<std::string> visited_;
  std::size_t nodes_ = 0;
  CheckOptions options_;
};

}  // namespace

CheckResult search_permutation(const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
                               const std::function<bool(std::size_t, std::size_t)>& precedes,
                               const CheckOptions& options) {
  for (const auto& op : ops) {
    if (!op.complete()) {
      throw std::invalid_argument("permutation search: incomplete instance " + op.op);
    }
  }
  return Search(type, ops, precedes, options).run();
}

}  // namespace detail

std::string CheckResult::witness_to_string(const std::vector<sim::OpRecord>& ops) const {
  std::ostringstream os;
  for (std::size_t k = 0; k < witness.size(); ++k) {
    if (k > 0) os << " . ";
    os << ops[witness[k]].to_string();
  }
  return os.str();
}

CheckResult check_linearizability(const adt::DataType& type,
                                  const std::vector<sim::OpRecord>& ops,
                                  const CheckOptions& options) {
  return detail::search_permutation(type, ops, [&ops](std::size_t i, std::size_t j) {
    // Cross-process: strict real-time precedence.  Same process: program
    // order (by invocation; uid breaks exact-boundary ties, where a response
    // and the next invocation share a real time but the response's step
    // comes first in the process's view).
    if (ops[i].proc == ops[j].proc) {
      if (ops[i].invoke_real != ops[j].invoke_real) {
        return ops[i].invoke_real < ops[j].invoke_real;
      }
      return ops[i].uid < ops[j].uid;
    }
    return ops[i].response_real < ops[j].invoke_real;
  }, options);
}

CheckResult check_linearizability(const adt::DataType& type, const sim::RunRecord& record) {
  return check_linearizability(type, record.ops);
}

}  // namespace lintime::lin
