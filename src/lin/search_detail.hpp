#pragma once
// Internal: the memoized permutation search shared by the linearizability
// and sequential-consistency checkers, plus the search-state machinery the
// non-deterministic checker reuses: bitset precedence rows, the packed
// (placed-set, fingerprint) memo table, and the shared real-time precedence
// relation.  The two deterministic checkers differ only in the precedence
// relation the witness permutation must respect.

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "adt/data_type.hpp"
#include "lin/checker.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin::detail {

/// Number of 64-bit words needed for an n-operation placed bitset.
[[nodiscard]] constexpr std::size_t placed_word_count(std::size_t n) { return (n + 63) / 64; }

[[nodiscard]] inline bool test_bit(const std::vector<std::uint64_t>& bits, std::size_t i) {
  return ((bits[i >> 6U] >> (i & 63U)) & 1U) != 0;
}

inline void set_bit(std::vector<std::uint64_t>& bits, std::size_t i) {
  bits[i >> 6U] |= std::uint64_t{1} << (i & 63U);
}

inline void clear_bit(std::vector<std::uint64_t>& bits, std::size_t i) {
  bits[i >> 6U] &= ~(std::uint64_t{1} << (i & 63U));
}

/// The precedence relation both linearizability checkers place on recorded
/// operations: program order within a process (invocation order, uid breaks
/// exact-boundary ties where a response and the next invocation share a real
/// time) and strict real-time order across processes.
[[nodiscard]] inline bool realtime_precedes(const sim::OpRecord& a, const sim::OpRecord& b) {
  if (a.proc == b.proc) {
    if (a.invoke_real != b.invoke_real) return a.invoke_real < b.invoke_real;
    return a.uid < b.uid;
  }
  return a.response_real < b.invoke_real;
}

/// Precedence adjacency packed into 64-bit rows (n^2 bits instead of n^2
/// bytes), with word-wise successor-count updates when an operation is
/// placed or unplaced.
class PrecedenceMatrix {
 public:
  template <typename PrecedesFn>
  PrecedenceMatrix(std::size_t n, const PrecedesFn& precedes_fn)
      : words_(placed_word_count(n)), rows_(n * words_, 0), pred_count_(n, 0) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && precedes_fn(i, j)) {
          rows_[i * words_ + (j >> 6U)] |= std::uint64_t{1} << (j & 63U);
          ++pred_count_[j];
        }
      }
    }
  }

  /// True iff every strict predecessor of `i` has been placed.
  [[nodiscard]] bool ready(std::size_t i) const { return pred_count_[i] == 0; }

  /// Placing `i` releases one pending predecessor from every successor j.
  void place(std::size_t i) { update_row(i, -1); }
  void unplace(std::size_t i) { update_row(i, +1); }

 private:
  void update_row(std::size_t i, int delta) {
    const std::uint64_t* row = rows_.data() + i * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        const auto b = static_cast<std::size_t>(std::countr_zero(bits));
        pred_count_[(w << 6U) + b] += delta;
        bits &= bits - 1;
      }
    }
  }

  std::size_t words_;
  std::vector<std::uint64_t> rows_;
  std::vector<int> pred_count_;
};

/// Dead-node memo keyed on the packed {placed-bitset words, 128-bit state
/// fingerprint}: two search nodes with the same placed set and equivalent
/// state have identical sub-futures, so each pair is explored once.
///
/// Collision safety: each entry stores the canonical() form the fingerprint
/// was computed from, and a lookup only prunes when the stored canonical
/// matches the probing state's.  A fingerprint collision (distinct states,
/// equal fingerprints) therefore costs re-exploration of one subtree, never
/// a wrong verdict; mark_dead keeps the first entry (try_emplace), so a
/// collision cannot evict recorded knowledge either.
class StateMemo {
 public:
  [[nodiscard]] bool known_dead(const std::vector<std::uint64_t>& placed,
                                const adt::Fingerprint& fp, const adt::ObjectState& state) {
    build_key(placed, fp);
    const auto it = dead_.find(scratch_key_);
    if (it == dead_.end()) return false;
    if (it->second == state.canonical()) {
      ++hits_;
      return true;
    }
    ++collisions_;
    return false;
  }

  void mark_dead(const std::vector<std::uint64_t>& placed, const adt::Fingerprint& fp,
                 const adt::ObjectState& state) {
    build_key(placed, fp);
    dead_.try_emplace(scratch_key_, state.canonical());
  }

  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t collisions() const { return collisions_; }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
      // The key's tail is the already well-mixed 128-bit fingerprint; fold
      // the placed words in boost-style.
      std::size_t h = 0;
      for (const auto w : key) h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6U) + (h >> 2U);
      return h;
    }
  };

  void build_key(const std::vector<std::uint64_t>& placed, const adt::Fingerprint& fp) {
    scratch_key_.assign(placed.begin(), placed.end());
    scratch_key_.push_back(fp.hi);
    scratch_key_.push_back(fp.lo);
  }

  std::vector<std::uint64_t> scratch_key_;  ///< reused across lookups: no per-node allocation
  std::unordered_map<std::vector<std::uint64_t>, std::string, KeyHash> dead_;
  std::size_t hits_ = 0;        ///< lookups pruned (key and canonical both matched)
  std::size_t collisions_ = 0;  ///< key matched but canonical differed (fingerprint collision)
};

/// Per-depth scratch states for the DFS probe loop.  When the data type's
/// states support assignment (every StateBase state does), each candidate
/// probe copy-assigns into the depth's slot instead of heap-cloning.
class ScratchStates {
 public:
  /// A state at `depth` holding a copy of `src` (which must outlive the
  /// returned reference only through the call).
  adt::ObjectState& copy_at(std::size_t depth, const adt::ObjectState& src) {
    if (slots_.size() <= depth) slots_.resize(depth + 1);
    auto& slot = slots_[depth];
    if (slot == nullptr) {
      slot = src.clone();
    } else if (slot->supports_assign()) {
      slot->assign_from(src);
    } else {
      slot = src.clone();
    }
    return *slot;
  }

 private:
  std::vector<std::unique_ptr<adt::ObjectState>> slots_;
};

/// Saturating node counter: large histories can expand more nodes than fit a
/// statistic without the count wrapping to a misleading small number.
class NodeCounter {
 public:
  void bump() {
    if (count_ != SIZE_MAX) ++count_;
  }
  [[nodiscard]] std::size_t value() const { return count_; }

 private:
  std::size_t count_ = 0;
};

/// Searches for a legal permutation of `ops` consistent with `precedes`
/// (precedes(i, j) == true forces i before j; must be acyclic).
[[nodiscard]] CheckResult search_permutation(
    const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
    const std::function<bool(std::size_t, std::size_t)>& precedes,
    const CheckOptions& options = {});

}  // namespace lintime::lin::detail
