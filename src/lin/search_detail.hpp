#pragma once
// Internal: the memoized permutation search shared by the linearizability
// and sequential-consistency checkers.  The two differ only in the
// precedence relation the witness permutation must respect.

#include <functional>
#include <vector>

#include "adt/data_type.hpp"
#include "lin/checker.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin::detail {

/// Searches for a legal permutation of `ops` consistent with `precedes`
/// (precedes(i, j) == true forces i before j; must be acyclic).
[[nodiscard]] CheckResult search_permutation(
    const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
    const std::function<bool(std::size_t, std::size_t)>& precedes,
    const CheckOptions& options = {});

}  // namespace lintime::lin::detail
