#pragma once
// Linearizability checker for NON-DETERMINISTIC data types (the relaxation
// the paper's Section 6.2 proposes).  The search is the same memoized
// Wing-Gong DFS, except that placing an instance branches over every legal
// outcome whose return value matches the recorded one -- the witness is then
// a permutation PLUS a resolution of each non-deterministic choice.

#include <vector>

#include "adt/nondet.hpp"
#include "lin/checker.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin {

/// Checks linearizability of `ops` against the non-deterministic spec.
[[nodiscard]] CheckResult check_linearizability_nondet(const adt::NondetDataType& type,
                                                       const std::vector<sim::OpRecord>& ops);

[[nodiscard]] CheckResult check_linearizability_nondet(const adt::NondetDataType& type,
                                                       const sim::RunRecord& record);

}  // namespace lintime::lin
