#include "lin/nondet_checker.hpp"

#include <stdexcept>

#include "lin/search_detail.hpp"

namespace lintime::lin {

namespace {

using detail::clear_bit;
using detail::set_bit;
using detail::test_bit;

/// Same memoized Wing-Gong DFS as the deterministic search, built on the
/// shared PrecedenceMatrix / StateMemo machinery, except that placing an
/// instance branches over every outcome whose return value matches the
/// record.  Outcomes come back as fresh states, so there is no scratch-state
/// reuse here.
class NondetSearch {
 public:
  NondetSearch(const adt::NondetDataType& type, const std::vector<sim::OpRecord>& ops)
      : type_(type),
        ops_(ops),
        n_(ops.size()),
        prec_(n_, [&ops](std::size_t i, std::size_t j) {
          return detail::realtime_precedes(ops[i], ops[j]);
        }) {
    placed_.assign(detail::placed_word_count(n_), 0);
  }

  CheckResult run() {
    CheckResult result;
    auto state = type_.make_initial_state();
    result.linearizable = dfs(*state, 0);
    result.witness = witness_;
    result.nodes_expanded = nodes_.value();
    return result;
  }

 private:
  bool dfs(adt::ObjectState& state, std::size_t placed_count) {
    if (placed_count == n_) return true;
    nodes_.bump();

    const adt::Fingerprint fp = state.fingerprint();
    if (memo_.known_dead(placed_, fp, state)) return false;

    for (std::size_t i = 0; i < n_; ++i) {
      if (test_bit(placed_, i) || !prec_.ready(i)) continue;

      // Branch over every outcome whose return value matches the record.
      for (auto& outcome : type_.outcomes(state, ops_[i].op, ops_[i].arg)) {
        if (outcome.ret != ops_[i].ret) continue;

        set_bit(placed_, i);
        prec_.place(i);
        witness_.push_back(i);

        if (dfs(*outcome.state, placed_count + 1)) return true;

        witness_.pop_back();
        prec_.unplace(i);
        clear_bit(placed_, i);
      }
    }

    memo_.mark_dead(placed_, fp, state);
    return false;
  }

  const adt::NondetDataType& type_;
  const std::vector<sim::OpRecord>& ops_;
  std::size_t n_;
  detail::PrecedenceMatrix prec_;
  std::vector<std::uint64_t> placed_;
  std::vector<std::size_t> witness_;
  detail::StateMemo memo_;
  detail::NodeCounter nodes_;
};

}  // namespace

CheckResult check_linearizability_nondet(const adt::NondetDataType& type,
                                         const std::vector<sim::OpRecord>& ops) {
  for (const auto& op : ops) {
    if (!op.complete()) {
      throw std::invalid_argument("nondet checker: incomplete instance " + op.op);
    }
  }
  return NondetSearch(type, ops).run();
}

CheckResult check_linearizability_nondet(const adt::NondetDataType& type,
                                         const sim::RunRecord& record) {
  return check_linearizability_nondet(type, record.ops);
}

}  // namespace lintime::lin
