#include "lin/nondet_checker.hpp"

#include <stdexcept>
#include <unordered_set>

namespace lintime::lin {

namespace {

class NondetSearch {
 public:
  NondetSearch(const adt::NondetDataType& type, const std::vector<sim::OpRecord>& ops)
      : type_(type), ops_(ops), n_(ops.size()) {
    precedes_.assign(n_ * n_, false);
    pred_count_.assign(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (i == j) continue;
        bool before = false;
        if (ops[i].proc == ops[j].proc) {
          before = ops[i].invoke_real < ops[j].invoke_real ||
                   (ops[i].invoke_real == ops[j].invoke_real && ops[i].uid < ops[j].uid);
        } else {
          before = ops[i].response_real < ops[j].invoke_real;
        }
        if (before) {
          precedes_[i * n_ + j] = true;
          ++pred_count_[j];
        }
      }
    }
    placed_.assign(n_, false);
  }

  CheckResult run() {
    CheckResult result;
    auto state = type_.make_initial_state();
    result.linearizable = dfs(*state, 0);
    result.witness = witness_;
    result.nodes_expanded = nodes_;
    return result;
  }

 private:
  bool dfs(adt::ObjectState& state, std::size_t placed_count) {
    if (placed_count == n_) return true;
    ++nodes_;

    std::string key;
    key.reserve(n_ + 1 + 16);
    for (std::size_t i = 0; i < n_; ++i) key.push_back(placed_[i] ? '1' : '0');
    key.push_back('|');
    key += state.canonical();
    if (visited_.contains(key)) return false;

    for (std::size_t i = 0; i < n_; ++i) {
      if (placed_[i] || pred_count_[i] != 0) continue;

      // Branch over every outcome whose return value matches the record.
      for (auto& outcome : type_.outcomes(state, ops_[i].op, ops_[i].arg)) {
        if (outcome.ret != ops_[i].ret) continue;

        placed_[i] = true;
        for (std::size_t j = 0; j < n_; ++j) {
          if (precedes_[i * n_ + j]) --pred_count_[j];
        }
        witness_.push_back(i);

        if (dfs(*outcome.state, placed_count + 1)) return true;

        witness_.pop_back();
        for (std::size_t j = 0; j < n_; ++j) {
          if (precedes_[i * n_ + j]) ++pred_count_[j];
        }
        placed_[i] = false;
      }
    }

    visited_.insert(std::move(key));
    return false;
  }

  const adt::NondetDataType& type_;
  const std::vector<sim::OpRecord>& ops_;
  std::size_t n_;
  std::vector<char> precedes_;
  std::vector<int> pred_count_;
  std::vector<char> placed_;
  std::vector<std::size_t> witness_;
  std::unordered_set<std::string> visited_;
  std::size_t nodes_ = 0;
};

}  // namespace

CheckResult check_linearizability_nondet(const adt::NondetDataType& type,
                                         const std::vector<sim::OpRecord>& ops) {
  for (const auto& op : ops) {
    if (!op.complete()) {
      throw std::invalid_argument("nondet checker: incomplete instance " + op.op);
    }
  }
  return NondetSearch(type, ops).run();
}

CheckResult check_linearizability_nondet(const adt::NondetDataType& type,
                                         const sim::RunRecord& record) {
  return check_linearizability_nondet(type, record.ops);
}

}  // namespace lintime::lin
