// Priority-queue monitor.  extract_min returning v is legal at a point iff
// no smaller value is in the queue there, so with distinct inserted values
// a history is linearizable iff, processing values in ascending order:
//
//   V1  every extract matches a unique insert (non-nil returns);
//   V2  no extract precedes its own insert;
//   V3  no extract of v has its interval covered by the union of
//       certain-presence windows (insert(w).response, extract(w).invoke)
//       of values w < v;
//   V4  no empty extract (nil return) has its interval covered by the
//       union of certain-presence windows of ALL values.
//
// The ascending sweep maintains the open-interval union incrementally, so
// each extract is queried against exactly the smaller values: O(n log n).

#include <limits>
#include <map>
#include <vector>

#include "adt/pqueue_type.hpp"
#include "lin/fast/interval_union.hpp"
#include "lin/fast/monitors.hpp"

namespace lintime::lin::fast {

namespace {

constexpr sim::Time kInf = std::numeric_limits<sim::Time>::infinity();

struct ValuePair {
  const sim::OpRecord* ins = nullptr;
  const sim::OpRecord* ext = nullptr;
};

}  // namespace

bool monitor_pqueue(const adt::DataType& /*type*/, const std::vector<sim::OpRecord>& ops) {
  std::map<adt::Value, ValuePair> byval;  // ascending value order drives the sweep
  std::vector<const sim::OpRecord*> empties;
  for (const auto& r : ops) {
    if (r.op == adt::PriorityQueueType::kInsert) {
      if (!r.ret.is_nil()) return false;  // V1
      byval[r.arg].ins = &r;
    } else {  // extract_min
      if (r.ret.is_nil()) {
        empties.push_back(&r);
        continue;
      }
      auto& p = byval[r.ret];
      if (p.ext != nullptr) return false;  // V1: value extracted twice
      p.ext = &r;
    }
  }
  IntervalUnion presence;
  for (const auto& [v, p] : byval) {
    if (p.ins == nullptr) return false;  // V1
    if (p.ext != nullptr) {
      if (p.ext->response_real < p.ins->invoke_real) return false;  // V2
      if (presence.covers(p.ext->invoke_real, p.ext->response_real)) return false;  // V3
    }
    presence.add(p.ins->response_real, p.ext != nullptr ? p.ext->invoke_real : kInf);
  }
  for (const auto* d : empties) {
    if (presence.covers(d->invoke_real, d->response_real)) return false;  // V4
  }
  return true;
}

}  // namespace lintime::lin::fast
