// Set monitor.  Restricted to add/contains with at-most-once adds, values
// are fully independent: no supported accessor observes more than one value
// (size/add_if_absent route to the general checker).  A history is
// linearizable iff every operation can be assigned a linearization point
// inside its own interval such that, per value v, all contains(v)->0 points
// precede add(v)'s point and all contains(v)->1 points follow it -- a
// global point assignment IS a linearization (interval order is respected
// pointwise), so the per-value feasibility test below is exact, not an
// approximation.  O(n log n) from the value grouping alone.

#include <limits>
#include <map>

#include "adt/set_type.hpp"
#include "lin/fast/monitors.hpp"

namespace lintime::lin::fast {

namespace {

constexpr sim::Time kInf = std::numeric_limits<sim::Time>::infinity();

struct PerValue {
  const sim::OpRecord* add = nullptr;
  sim::Time max_r0_invoke = -kInf;  ///< contains->0: point must follow nothing, precede add
  sim::Time min_r1_response = kInf;  ///< contains->1: point must follow add
  bool has_r1 = false;
};

}  // namespace

bool monitor_set(const adt::DataType& /*type*/, const std::vector<sim::OpRecord>& ops) {
  std::map<adt::Value, PerValue> byval;
  for (const auto& r : ops) {
    if (r.op == adt::SetType::kAdd) {
      if (!r.ret.is_nil()) return false;
      byval[r.arg].add = &r;
      continue;
    }
    // contains
    if (!r.ret.is_int()) return false;
    const auto bit = r.ret.as_int();
    if (bit != 0 && bit != 1) return false;
    auto& s = byval[r.arg];
    if (bit == 1) {
      s.has_r1 = true;
      s.min_r1_response = std::min(s.min_r1_response, r.response_real);
    } else {
      s.max_r0_invoke = std::max(s.max_r0_invoke, r.invoke_real);
    }
  }
  for (const auto& [v, s] : byval) {
    if (s.add == nullptr) {
      if (s.has_r1) return false;  // contains->1 without an add
      continue;
    }
    // Need a permutation with every contains->0 before the add and every
    // contains->1 after it.  An ordering a-before-b is impossible only when
    // forced strictly opposite (b.response < a.invoke), so each rejection
    // below is strict -- exact boundary ties stay feasible, matching the
    // general checker's interval order.
    if (s.max_r0_invoke > s.add->response_real) return false;   // add forced before a ->0
    if (s.min_r1_response < s.add->invoke_real) return false;   // a ->1 forced before add
    if (s.min_r1_response < s.max_r0_invoke) return false;      // a ->1 forced before a ->0
  }
  return true;
}

}  // namespace lintime::lin::fast
