#pragma once
// The per-type log-linear linearizability monitors (arXiv:2410.04581 /
// arXiv:2509.17795 style): verdict-only deciders for *unambiguous*
// histories of the five supported families.  Each runs in O(n log n) and
// consumes the history as recorded intervals -- no permutation search, no
// state-space exploration, no witness.
//
// PRECONDITION (enforced by lin/fast/classifier before dispatch): every
// record is complete, operations of one process have strictly-gapped
// intervals (so interval order subsumes program order), every operation
// name belongs to the family's supported set, and the family's
// distinct-value condition holds.  Under that precondition each monitor is
// exact: it returns true iff the history is linearizable.  The differential
// tests in tests/lin/ cross-validate every monitor against the Wing-Gong
// checker on shared grids.

#include <vector>

#include "adt/data_type.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin::fast {

/// Register family (read/write, distinct written values, none equal to the
/// initial value).  Clusters each write with the reads returning its value
/// and decides acyclicity of the forced cluster order via an O(C log C)
/// endpoint sweep.
[[nodiscard]] bool monitor_register(const adt::DataType& type,
                                    const std::vector<sim::OpRecord>& ops);

/// Queue family (enqueue/dequeue, distinct enqueued values).  Checks the
/// queue violation patterns: unmatched/duplicate dequeues, dequeue-before-
/// enqueue, forced FIFO inversions (prefix-max sweep) and covered empty
/// dequeues (open-interval union).
[[nodiscard]] bool monitor_queue(const adt::DataType& type, const std::vector<sim::OpRecord>& ops);

/// Stack family (push/pop, distinct pushed values).  Same skeleton as the
/// queue monitor with the LIFO pattern -- push(a) < push(b) < pop(a) <
/// pop(b) (or b never popped) all forced -- detected by an offline 2-D
/// dominance sweep over a prefix-max Fenwick tree.
[[nodiscard]] bool monitor_stack(const adt::DataType& type, const std::vector<sim::OpRecord>& ops);

/// Set family (add/contains, each value added at most once).  Values are
/// independent (no size-style cross-value accessor is admitted), so the
/// monitor solves one exact point-placement feasibility check per value.
[[nodiscard]] bool monitor_set(const adt::DataType& type, const std::vector<sim::OpRecord>& ops);

/// Priority-queue family (insert/extract_min, distinct inserted values).
/// Processes values in ascending order, maintaining the open-interval union
/// of smaller-value presence windows; an extract_min is a violation iff its
/// interval is covered by that union, an empty extract iff covered by the
/// union over all values.
[[nodiscard]] bool monitor_pqueue(const adt::DataType& type, const std::vector<sim::OpRecord>& ops);

}  // namespace lintime::lin::fast
