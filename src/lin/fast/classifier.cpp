#include "lin/fast/classifier.hpp"

#include <algorithm>
#include <cstdint>
#include <map>

#include "adt/register_type.hpp"
#include "lin/fast/registry.hpp"

namespace lintime::lin::fast {

namespace {

Classification fallback(adt::MonitorFamily family, std::string reason) {
  Classification c;
  c.family = family;
  c.reason = std::move(reason);
  return c;
}

/// Operations of one process must have strictly-gapped intervals
/// (prev.response < next.invoke); then interval order subsumes program
/// order and the monitors need only the former.  Zero-gap boundaries are
/// exactly the case the general checker's uid tiebreak exists for.
bool strictly_gapped_per_process(const std::vector<sim::OpRecord>& ops) {
  std::vector<std::size_t> order(ops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&ops](std::size_t a, std::size_t b) {
    if (ops[a].proc != ops[b].proc) return ops[a].proc < ops[b].proc;
    if (ops[a].invoke_real != ops[b].invoke_real) return ops[a].invoke_real < ops[b].invoke_real;
    return ops[a].uid < ops[b].uid;
  });
  for (std::size_t k = 1; k < order.size(); ++k) {
    const auto& prev = ops[order[k - 1]];
    const auto& next = ops[order[k]];
    if (prev.proc == next.proc && !(prev.response_real < next.invoke_real)) return false;
  }
  return true;
}

/// The family's "distinct mutator" condition: the args of `mutator`-named
/// operations are pairwise distinct.  Returns the offending arg count.
bool mutator_args_distinct(const std::vector<sim::OpRecord>& ops, const std::string& mutator) {
  std::map<adt::Value, std::uint32_t> seen;  // ordered: deterministic, O(n log n)
  for (const auto& r : ops) {
    if (r.op != mutator) continue;
    if (++seen[r.arg] > 1) return false;
  }
  return true;
}

}  // namespace

Classification classify(const adt::DataType& type, const std::vector<sim::OpRecord>& ops) {
  const adt::MonitorFamily family = type.monitor_family();
  if (family == adt::MonitorFamily::kNone) {
    return fallback(family, "type '" + type.name() + "' declares no monitor family");
  }
  const MonitorEntry* entry = MonitorRegistry::instance().find(family);
  if (entry == nullptr) {
    return fallback(family, std::string("no monitor registered for family '") +
                                adt::to_string(family) + "'");
  }
  if (ops.empty()) {
    return fallback(family, "empty history (general checker is trivial)");
  }
  for (const auto& r : ops) {
    if (!r.complete()) {
      return fallback(family, "incomplete operation record '" + r.op + "'");
    }
  }
  for (const auto& r : ops) {
    const bool supported = std::find(entry->supported_ops.begin(), entry->supported_ops.end(),
                                     r.op) != entry->supported_ops.end();
    if (!supported) {
      return fallback(family, "operation '" + r.op + "' is outside the " +
                                  std::string(adt::to_string(family)) +
                                  " monitor's supported set");
    }
  }
  if (!strictly_gapped_per_process(ops)) {
    return fallback(family, "zero-gap or overlapping intervals within one process");
  }
  // Family-specific distinct-value conditions.  supported_ops[0] is by
  // convention the distinct-args mutator for every family but register
  // (see registry.cpp); spelled out per family for clarity.
  switch (family) {
    case adt::MonitorFamily::kRegister: {
      if (!mutator_args_distinct(ops, adt::RegisterType::kWrite)) {
        return fallback(family, "duplicate written value (ambiguous read matching)");
      }
      // A write of the initial value would make reads of it ambiguous
      // between the initial cluster and the write's cluster.
      const auto initial = type.initial_state();
      const adt::Value v0 = initial->apply(adt::RegisterType::kRead, adt::Value::nil());
      for (const auto& r : ops) {
        if (r.op == adt::RegisterType::kWrite && r.arg == v0) {
          return fallback(family, "write of the initial value " + v0.to_string() +
                                      " (ambiguous with the initial cluster)");
        }
      }
      break;
    }
    case adt::MonitorFamily::kQueue:
      if (!mutator_args_distinct(ops, entry->supported_ops[0])) {
        return fallback(family, "duplicate enqueued value");
      }
      break;
    case adt::MonitorFamily::kStack:
      if (!mutator_args_distinct(ops, entry->supported_ops[0])) {
        return fallback(family, "duplicate pushed value");
      }
      break;
    case adt::MonitorFamily::kSet:
      if (!mutator_args_distinct(ops, entry->supported_ops[0])) {
        return fallback(family, "value added more than once");
      }
      break;
    case adt::MonitorFamily::kPriorityQueue:
      if (!mutator_args_distinct(ops, entry->supported_ops[0])) {
        return fallback(family, "duplicate inserted value");
      }
      break;
    case adt::MonitorFamily::kNone:
      break;  // unreachable: handled above
  }
  Classification c;
  c.eligible = true;
  c.family = family;
  return c;
}

}  // namespace lintime::lin::fast
