#include "lin/fast/history_gen.hpp"

#include <random>
#include <stdexcept>
#include <string>

#include "adt/pqueue_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"

namespace lintime::lin::fast {

namespace {

/// Injective scramble of the fresh-value counter, so priority-queue inserts
/// arrive in "random" value order while staying pairwise distinct.
[[nodiscard]] std::int64_t scrambled(std::uint64_t counter) {
  return static_cast<std::int64_t>(counter * 0x9e3779b97f4a7c15ULL);
}

struct OpChoice {
  std::string op;
  adt::Value arg;
};

[[nodiscard]] OpChoice choose_op(adt::MonitorFamily family, std::mt19937_64& rng,
                                 std::uint64_t& counter) {
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  switch (family) {
    case adt::MonitorFamily::kRegister:
      if (u01(rng) < 0.4) return {adt::RegisterType::kWrite, adt::Value(static_cast<std::int64_t>(++counter))};
      return {adt::RegisterType::kRead, adt::Value::nil()};
    case adt::MonitorFamily::kQueue:
      if (u01(rng) < 0.55) return {adt::QueueType::kEnqueue, adt::Value(static_cast<std::int64_t>(++counter))};
      return {adt::QueueType::kDequeue, adt::Value::nil()};
    case adt::MonitorFamily::kStack:
      if (u01(rng) < 0.55) return {adt::StackType::kPush, adt::Value(static_cast<std::int64_t>(++counter))};
      return {adt::StackType::kPop, adt::Value::nil()};
    case adt::MonitorFamily::kSet:
      if (u01(rng) < 0.45) return {adt::SetType::kAdd, adt::Value(static_cast<std::int64_t>(++counter))};
      return {adt::SetType::kContains,
              adt::Value(static_cast<std::int64_t>(rng() % (2 * counter + 5)))};
    case adt::MonitorFamily::kPriorityQueue:
      if (u01(rng) < 0.55) return {adt::PriorityQueueType::kInsert, adt::Value(scrambled(++counter))};
      return {adt::PriorityQueueType::kExtractMin, adt::Value::nil()};
    case adt::MonitorFamily::kNone: break;
  }
  throw std::invalid_argument("generate_unambiguous: type has no monitor family");
}

}  // namespace

std::vector<sim::OpRecord> generate_unambiguous(const adt::DataType& type,
                                                const GenOptions& options) {
  const auto family = type.monitor_family();
  if (family == adt::MonitorFamily::kNone) {
    throw std::invalid_argument("generate_unambiguous: type has no monitor family");
  }
  if (options.procs < 1) throw std::invalid_argument("generate_unambiguous: procs < 1");

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  auto state = type.initial_state();
  std::uint64_t counter = 0;

  // Linearization point of op k is t = k + 1; each interval strictly
  // contains its point, and per-process response->invoke gaps stay strict
  // because response jitter (< 0.55) plus think time (< 0.3) is below the
  // 1.0 point spacing.  Strictly increasing points inside intervals ==
  // linearizable by construction.
  std::vector<sim::Time> proc_avail(static_cast<std::size_t>(options.procs), 0.0);
  std::vector<sim::OpRecord> ops;
  ops.reserve(options.total_ops);
  for (std::size_t k = 0; k < options.total_ops; ++k) {
    const sim::Time point = static_cast<sim::Time>(k) + 1.0;
    const auto proc = static_cast<sim::ProcId>(rng() % static_cast<std::uint64_t>(options.procs));
    auto& avail = proc_avail[static_cast<std::size_t>(proc)];

    sim::OpRecord r;
    r.proc = proc;
    r.uid = k;
    auto choice = choose_op(family, rng, counter);
    r.op = std::move(choice.op);
    r.arg = std::move(choice.arg);
    r.ret = state->apply(r.op, r.arg);
    r.invoke_real = avail + u01(rng) * (point - avail - 0.01);
    r.response_real = point + 0.05 + u01(rng) * 0.5;
    avail = r.response_real + 0.05 + u01(rng) * 0.25;
    ops.push_back(std::move(r));
  }
  return ops;
}

void append_impossible_observation(const adt::DataType& type, std::vector<sim::OpRecord>& ops) {
  sim::Time end = 0;
  std::uint64_t max_uid = 0;
  for (const auto& r : ops) {
    end = std::max(end, r.response_real);
    max_uid = std::max(max_uid, r.uid);
  }
  sim::OpRecord r;
  r.proc = 0;
  r.uid = max_uid + 1;
  r.invoke_real = end + 1.0;
  r.response_real = end + 2.0;
  // A fresh value no generated argument can collide with: generated ints are
  // counters or counter scrambles, never this sentinel.
  const adt::Value fresh(static_cast<std::int64_t>(-0x5EC4E7));
  switch (type.monitor_family()) {
    case adt::MonitorFamily::kRegister:
      r.op = adt::RegisterType::kRead;
      r.arg = adt::Value::nil();
      r.ret = fresh;
      break;
    case adt::MonitorFamily::kQueue:
      r.op = adt::QueueType::kDequeue;
      r.arg = adt::Value::nil();
      r.ret = fresh;
      break;
    case adt::MonitorFamily::kStack:
      r.op = adt::StackType::kPop;
      r.arg = adt::Value::nil();
      r.ret = fresh;
      break;
    case adt::MonitorFamily::kSet:
      r.op = adt::SetType::kContains;
      r.arg = fresh;
      r.ret = adt::Value(std::int64_t{1});
      break;
    case adt::MonitorFamily::kPriorityQueue:
      r.op = adt::PriorityQueueType::kExtractMin;
      r.arg = adt::Value::nil();
      r.ret = fresh;
      break;
    case adt::MonitorFamily::kNone:
      throw std::invalid_argument("append_impossible_observation: type has no monitor family");
  }
  ops.push_back(std::move(r));
}

bool swap_two_returns(std::vector<sim::OpRecord>& ops, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Candidates: records with non-nil returns, grouped by op name so the swap
  // keeps each record's (op, arg) shape classifier-eligible.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].ret.is_nil()) idx.push_back(i);
  }
  for (int attempt = 0; attempt < 64 && idx.size() >= 2; ++attempt) {
    const auto a = idx[rng() % idx.size()];
    const auto b = idx[rng() % idx.size()];
    if (a == b || ops[a].op != ops[b].op || ops[a].ret == ops[b].ret) continue;
    std::swap(ops[a].ret, ops[b].ret);
    return true;
  }
  return false;
}

}  // namespace lintime::lin::fast
