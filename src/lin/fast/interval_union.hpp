#pragma once
// Internal machinery for the log-linear monitors (lin/fast/): a union of
// open time intervals with coverage queries, and a prefix-max Fenwick tree
// over compressed coordinates.  Both are pure, ordered-container-based and
// deterministic (detlint-clean by construction).
//
// Open-interval semantics matter for exactness: a "certain presence" window
// (enq(v).resp, deq(v).inv) excludes its endpoints, because linearization
// points at exactly those times can be ordered on either side of the
// endpoint operation.  Two presence windows that merely touch, (a,b) and
// (b,c), therefore leave the single instant b uncovered -- an empty-remove
// whose interval contains b is satisfiable there, so the union must NOT
// merge them.

#include <cstddef>
#include <limits>
#include <map>
#include <vector>

#include "sim/model_params.hpp"

namespace lintime::lin::fast {

/// Union of open intervals (a, b) over sim::Time, with closed-interval
/// coverage queries.  Insertion merges strictly-overlapping intervals only
/// (touching endpoints stay distinct); amortized O(log n) per add.
class IntervalUnion {
 public:
  /// Adds the open interval (a, b); ignored when empty (a >= b).
  void add(sim::Time a, sim::Time b) {
    if (!(a < b)) return;
    // Absorb every existing interval that strictly overlaps (a, b), growing
    // [a, b) to the union's hull.  An existing (s, e) overlaps iff s < b and
    // a < e.
    auto it = merged_.upper_bound(a);  // first start > a
    if (it != merged_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second > a) {  // open overlap on the left
        a = prev->first;
        b = std::max(b, prev->second);
        it = merged_.erase(prev);
      }
    }
    while (it != merged_.end() && it->first < b) {
      b = std::max(b, it->second);
      it = merged_.erase(it);
    }
    merged_.emplace(a, b);
  }

  /// True iff the closed interval [x, y] lies inside one merged open
  /// interval (the only way a union of opens can cover a closed set).
  [[nodiscard]] bool covers(sim::Time x, sim::Time y) const {
    const auto it = merged_.upper_bound(x);  // first start > x; candidate is its predecessor
    if (it == merged_.begin()) return false;
    const auto cand = std::prev(it);
    return cand->first < x && y < cand->second;
  }

  [[nodiscard]] std::size_t size() const { return merged_.size(); }

  static constexpr sim::Time kInf = std::numeric_limits<sim::Time>::infinity();

 private:
  std::map<sim::Time, sim::Time> merged_;  ///< start -> end, disjoint, non-touching-merged
};

/// Fenwick tree over [0, n) supporting point max-update and prefix-max
/// query -- the offline 2-D dominance engine behind the stack monitor's
/// LIFO-pattern sweep.
class PrefixMaxFenwick {
 public:
  explicit PrefixMaxFenwick(std::size_t n)
      : tree_(n + 1, -std::numeric_limits<sim::Time>::infinity()) {}

  /// Raises position `i` (0-based) to at least `v`.
  void raise(std::size_t i, sim::Time v) {
    for (std::size_t k = i + 1; k < tree_.size(); k += k & (~k + 1)) {
      if (tree_[k] < v) tree_[k] = v;
    }
  }

  /// Max over positions [0, i) (0-based, exclusive); -inf when empty.
  [[nodiscard]] sim::Time prefix_max(std::size_t i) const {
    sim::Time best = -std::numeric_limits<sim::Time>::infinity();
    for (std::size_t k = std::min(i, tree_.size() - 1); k > 0; k -= k & (~k + 1)) {
      if (tree_[k] > best) best = tree_[k];
    }
    return best;
  }

 private:
  std::vector<sim::Time> tree_;
};

}  // namespace lintime::lin::fast
