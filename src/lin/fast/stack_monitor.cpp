// Stack monitor.  For complete histories with distinct pushed values the
// stack violations are the local patterns (BEEH-style bad patterns, the
// basis of arXiv:2410.04581's stack monitor):
//
//   V1  a pop returns a value never pushed, or a value twice, or a push
//       returns non-nil;
//   V2  a pop precedes its own push;
//   V3  a forced LIFO inversion: push(a) < push(b), push(b) < pop(a), and
//       pop(a) < pop(b) or b is never popped -- b certainly sits above a
//       when a is popped;
//   V4  an empty pop's interval is covered by the union of
//       certain-presence windows (push(v).response, pop(v).invoke).
//
// V3 is a 2-D dominance query (push(b).invoke > push(a).response AND
// push(b).response < pop(a).invoke AND key(b) > pop(a).response with
// key(b) = pop(b).invoke or +inf), answered offline with a descending
// two-pointer sweep into a prefix-max Fenwick tree over compressed
// push-response coordinates.  Everything is O(n log n).

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "adt/stack_type.hpp"
#include "lin/fast/interval_union.hpp"
#include "lin/fast/monitors.hpp"

namespace lintime::lin::fast {

namespace {

constexpr sim::Time kInf = std::numeric_limits<sim::Time>::infinity();

struct ValuePair {
  const sim::OpRecord* push = nullptr;
  const sim::OpRecord* pop = nullptr;
};

}  // namespace

bool monitor_stack(const adt::DataType& /*type*/, const std::vector<sim::OpRecord>& ops) {
  std::map<adt::Value, ValuePair> byval;
  std::vector<const sim::OpRecord*> empties;
  for (const auto& r : ops) {
    if (r.op == adt::StackType::kPush) {
      if (!r.ret.is_nil()) return false;  // V1
      byval[r.arg].push = &r;
    } else {  // pop
      if (r.ret.is_nil()) {
        empties.push_back(&r);
        continue;
      }
      auto& p = byval[r.ret];
      if (p.pop != nullptr) return false;  // V1: value popped twice
      p.pop = &r;
    }
  }
  std::vector<ValuePair> values;
  values.reserve(byval.size());
  for (const auto& [v, p] : byval) {
    if (p.push == nullptr) return false;  // V1
    if (p.pop != nullptr && p.pop->response_real < p.push->invoke_real) return false;  // V2
    values.push_back(p);
  }

  // V3 sweep.  Candidates b sorted by push.invoke descending are inserted
  // while push(b).invoke > push(a).response; the Fenwick tree holds key(b)
  // at b's compressed push.response, so the prefix below pop(a).invoke is
  // exactly {b : push(b).response < pop(a).invoke}.
  if (!values.empty()) {
    std::vector<sim::Time> resp_coords(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      resp_coords[i] = values[i].push->response_real;
    }
    std::sort(resp_coords.begin(), resp_coords.end());
    resp_coords.erase(std::unique(resp_coords.begin(), resp_coords.end()), resp_coords.end());

    std::vector<std::size_t> by_push_inv_desc(values.size());
    for (std::size_t i = 0; i < by_push_inv_desc.size(); ++i) by_push_inv_desc[i] = i;
    std::sort(by_push_inv_desc.begin(), by_push_inv_desc.end(),
              [&values](std::size_t x, std::size_t y) {
                return values[x].push->invoke_real > values[y].push->invoke_real;
              });
    std::vector<std::size_t> queries;  // indices of popped values a
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i].pop != nullptr) queries.push_back(i);
    }
    std::sort(queries.begin(), queries.end(), [&values](std::size_t x, std::size_t y) {
      return values[x].push->response_real > values[y].push->response_real;
    });

    PrefixMaxFenwick fen(resp_coords.size());
    std::size_t inserted = 0;
    for (const auto a : queries) {
      const sim::Time threshold = values[a].push->response_real;
      while (inserted < by_push_inv_desc.size() &&
             values[by_push_inv_desc[inserted]].push->invoke_real > threshold) {
        const auto& b = values[by_push_inv_desc[inserted]];
        const auto coord = static_cast<std::size_t>(
            std::lower_bound(resp_coords.begin(), resp_coords.end(), b.push->response_real) -
            resp_coords.begin());
        fen.raise(coord, b.pop != nullptr ? b.pop->invoke_real : kInf);
        ++inserted;
      }
      const auto upto = static_cast<std::size_t>(
          std::lower_bound(resp_coords.begin(), resp_coords.end(),
                           values[a].pop->invoke_real) -
          resp_coords.begin());
      if (fen.prefix_max(upto) > values[a].pop->response_real) return false;
    }
  }

  // V4: empty pops vs. the union of certain-presence windows.
  if (!empties.empty()) {
    IntervalUnion presence;
    for (const auto& p : values) {
      presence.add(p.push->response_real, p.pop != nullptr ? p.pop->invoke_real : kInf);
    }
    for (const auto* d : empties) {
      if (presence.covers(d->invoke_real, d->response_real)) return false;
    }
  }
  return true;
}

}  // namespace lintime::lin::fast
