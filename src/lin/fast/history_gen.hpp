#pragma once
// Seeded generator of large unambiguous histories for the fast-path
// monitors: linearizable by construction (operations get strictly
// increasing linearization points, each strictly inside its own interval,
// and returns come from replaying the type's own state machine), with
// strict per-process gaps and distinct mutator arguments so the ambiguity
// classifier always answers "fast".  Drives the 10^6-op checker benchmarks
// and the long_history / differential test tiers.

#include <cstdint>
#include <vector>

#include "adt/data_type.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin::fast {

struct GenOptions {
  int procs = 4;
  std::size_t total_ops = 1000;
  std::uint64_t seed = 1;
};

/// Generates a linearizable, classifier-eligible history for `type`, whose
/// monitor_family() must not be kNone (throws std::invalid_argument
/// otherwise).
[[nodiscard]] std::vector<sim::OpRecord> generate_unambiguous(const adt::DataType& type,
                                                              const GenOptions& options);

/// Appends one observation no linearization can explain -- a read / pop /
/// dequeue / extract of a value never written, a contains->1 of a value
/// never added -- making the history non-linearizable while keeping it
/// classifier-eligible (complete, strict gaps, distinct mutator args).
void append_impossible_observation(const adt::DataType& type, std::vector<sim::OpRecord>& ops);

/// Swaps the return values of two randomly chosen same-operation records
/// (seeded).  The result may or may not stay linearizable -- useful for
/// differential verdict-agreement tests.  Returns false when no swappable
/// pair exists (fewer than two non-nil same-op returns).
[[nodiscard]] bool swap_two_returns(std::vector<sim::OpRecord>& ops, std::uint64_t seed);

}  // namespace lintime::lin::fast
