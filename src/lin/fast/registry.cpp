#include "lin/fast/registry.hpp"

#include "adt/pqueue_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "lin/fast/monitors.hpp"

namespace lintime::lin::fast {

MonitorRegistry::MonitorRegistry() {
  using adt::MonitorFamily;
  entries_ = {
      {MonitorFamily::kRegister,
       {adt::RegisterType::kRead, adt::RegisterType::kWrite},
       "distinct written values, none equal to the initial value",
       "O(n log n)",
       &monitor_register},
      {MonitorFamily::kQueue,
       {adt::QueueType::kEnqueue, adt::QueueType::kDequeue},
       "distinct enqueued values",
       "O(n log n)",
       &monitor_queue},
      {MonitorFamily::kStack,
       {adt::StackType::kPush, adt::StackType::kPop},
       "distinct pushed values",
       "O(n log n)",
       &monitor_stack},
      {MonitorFamily::kSet,
       {adt::SetType::kAdd, adt::SetType::kContains},
       "each value added at most once",
       "O(n log n)",
       &monitor_set},
      {MonitorFamily::kPriorityQueue,
       {adt::PriorityQueueType::kInsert, adt::PriorityQueueType::kExtractMin},
       "distinct inserted values",
       "O(n log n)",
       &monitor_pqueue},
  };
}

const MonitorEntry* MonitorRegistry::find(adt::MonitorFamily family) const {
  for (const auto& e : entries_) {
    if (e.family == family) return &e;
  }
  return nullptr;
}

const MonitorRegistry& MonitorRegistry::instance() {
  static const MonitorRegistry kRegistry;
  return kRegistry;
}

}  // namespace lintime::lin::fast
