// Register monitor.  With distinct written values (and none equal to the
// initial value), any linearization is a sequence of contiguous *blocks*:
// the initial block (reads of v0) followed by one block per write (the
// write, then the reads returning its value).  A block order realizes a
// linearization iff it extends the forced block relation
//
//   A -> B  iff  some op of A precedes some op of B in interval order
//           iff  lo(A) < hi(B),   lo = min response, hi = max invoke,
//
// so the history is linearizable iff (i) every read matches v0 or a write,
// (ii) no read precedes its own write, (iii) no block precedes the initial
// block, and (iv) the block relation is acyclic.  Any cycle contains a
// 2-cycle (take the edge into the minimum-lo node on the cycle), so (iv)
// reduces to "no pair with lo(A) < hi(B) and lo(B) < hi(A)", decided by a
// prefix top-2 sweep over blocks sorted by lo.

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "adt/register_type.hpp"
#include "lin/fast/monitors.hpp"

namespace lintime::lin::fast {

namespace {

constexpr sim::Time kInf = std::numeric_limits<sim::Time>::infinity();

struct Block {
  const sim::OpRecord* write = nullptr;  ///< null for the initial block
  sim::Time hi = -kInf;                  ///< max invoke over the block's ops
  sim::Time lo = kInf;                   ///< min response over the block's ops
  void absorb(const sim::OpRecord& r) {
    hi = std::max(hi, r.invoke_real);
    lo = std::min(lo, r.response_real);
  }
};

}  // namespace

bool monitor_register(const adt::DataType& type, const std::vector<sim::OpRecord>& ops) {
  const auto initial = type.initial_state();
  const adt::Value v0 = initial->apply(adt::RegisterType::kRead, adt::Value::nil());

  std::map<adt::Value, Block> blocks;  // by written value (distinct per classifier)
  Block init;
  bool init_used = false;
  for (const auto& r : ops) {
    if (r.op == adt::RegisterType::kWrite) {
      if (!r.ret.is_nil()) return false;
      blocks[r.arg].write = &r;
    }
  }
  for (const auto& r : ops) {
    if (r.op == adt::RegisterType::kWrite) {
      blocks[r.arg].absorb(r);
      continue;
    }
    if (r.ret == v0) {
      init_used = true;
      init.absorb(r);
      continue;
    }
    const auto it = blocks.find(r.ret);
    if (it == blocks.end()) return false;  // read of a never-written value
    if (r.response_real < it->second.write->invoke_real) return false;  // read precedes write
    it->second.absorb(r);
  }

  std::vector<Block> all;
  all.reserve(blocks.size() + 1);
  for (const auto& [v, b] : blocks) all.push_back(b);
  if (init_used) {
    // The initial block must be first: any block with an op preceding one
    // of its reads is a contradiction.
    for (const auto& b : all) {
      if (b.lo < init.hi) return false;
    }
    all.push_back(init);
  }

  // 2-cycle sweep: sort by lo; for each block B, the candidates A with
  // lo(A) < hi(B) form a prefix, and a cycle exists iff some such A != B
  // has hi(A) > lo(B).  Track prefix top-2 of hi to exclude B itself.
  std::sort(all.begin(), all.end(),
            [](const Block& a, const Block& b) { return a.lo < b.lo; });
  const std::size_t n = all.size();
  std::vector<sim::Time> lo_sorted(n);
  for (std::size_t i = 0; i < n; ++i) lo_sorted[i] = all[i].lo;
  // prefix_best[i]: over all[0..i): largest hi, its index, and second hi.
  std::vector<sim::Time> best(n + 1, -kInf);
  std::vector<sim::Time> second(n + 1, -kInf);
  std::vector<std::size_t> best_idx(n + 1, n);
  for (std::size_t i = 0; i < n; ++i) {
    best[i + 1] = best[i];
    second[i + 1] = second[i];
    best_idx[i + 1] = best_idx[i];
    if (all[i].hi > best[i + 1]) {
      second[i + 1] = best[i + 1];
      best[i + 1] = all[i].hi;
      best_idx[i + 1] = i;
    } else if (all[i].hi > second[i + 1]) {
      second[i + 1] = all[i].hi;
    }
  }
  for (std::size_t b = 0; b < n; ++b) {
    const auto prefix = static_cast<std::size_t>(
        std::lower_bound(lo_sorted.begin(), lo_sorted.end(), all[b].hi) - lo_sorted.begin());
    if (prefix == 0) continue;
    const sim::Time max_hi = (best_idx[prefix] == b) ? second[prefix] : best[prefix];
    if (max_hi > all[b].lo) return false;
  }
  return true;
}

}  // namespace lintime::lin::fast
