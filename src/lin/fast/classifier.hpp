#pragma once
// Ambiguity classifier (the routing test of arXiv:2509.17795 made
// executable for this library's types): decides, in O(n log n), whether a
// concrete history satisfies the unambiguity precondition of its type's
// monitor family.  Eligible histories are decided by the log-linear
// monitors (lin/fast/monitors.hpp); everything else -- unsupported
// operations, duplicate mutator values, zero-gap process-local intervals,
// types without a family -- routes to the general Wing-Gong checker.
//
// The classifier is deliberately conservative: it only answers "fast" when
// the monitor's exactness proof applies.  A "fallback" answer is never a
// verdict about linearizability, only about which checker must decide.

#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin::fast {

struct Classification {
  bool eligible = false;
  adt::MonitorFamily family = adt::MonitorFamily::kNone;
  /// Why the history must fall back (empty when eligible).
  std::string reason;
};

/// Classifies `ops` against `type`'s monitor family.  Never throws on
/// malformed histories: incomplete records simply classify as fallback, and
/// the general checker then reports them with its usual exception.
[[nodiscard]] Classification classify(const adt::DataType& type,
                                      const std::vector<sim::OpRecord>& ops);

}  // namespace lintime::lin::fast
