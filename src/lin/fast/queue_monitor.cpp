// Queue monitor.  For complete histories with distinct enqueued values the
// queue violations are exactly the four local patterns (the queue axioms
// underlying arXiv:2410.04581's monitor):
//
//   V1  a dequeue returns a value never enqueued, or a value twice, or its
//       enqueue returns non-nil;
//   V2  a dequeue precedes its own enqueue;
//   V3  a dequeued value's enqueue is forced after the enqueue of a value
//       that is never dequeued (the stuck value would have to come out
//       first);
//   V4  a FIFO inversion is forced: enq(a) < enq(b) and deq(b) < deq(a);
//   V5  an empty dequeue's interval is covered by the union of
//       certain-presence windows (enq(v).response, deq(v).invoke).
//
// V4 is a prefix-max sweep over pairs sorted by enqueue response; V5 is an
// open-interval union query.  Everything is O(n log n).

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "adt/queue_type.hpp"
#include "lin/fast/interval_union.hpp"
#include "lin/fast/monitors.hpp"

namespace lintime::lin::fast {

namespace {

constexpr sim::Time kInf = std::numeric_limits<sim::Time>::infinity();

struct ValuePair {
  const sim::OpRecord* enq = nullptr;
  const sim::OpRecord* deq = nullptr;
};

}  // namespace

bool monitor_queue(const adt::DataType& /*type*/, const std::vector<sim::OpRecord>& ops) {
  std::map<adt::Value, ValuePair> byval;
  std::vector<const sim::OpRecord*> empties;
  for (const auto& r : ops) {
    if (r.op == adt::QueueType::kEnqueue) {
      if (!r.ret.is_nil()) return false;  // V1
      byval[r.arg].enq = &r;
    } else {  // dequeue
      if (r.ret.is_nil()) {
        empties.push_back(&r);
        continue;
      }
      auto& p = byval[r.ret];
      if (p.deq != nullptr) return false;  // V1: value dequeued twice
      p.deq = &r;
    }
  }

  sim::Time stuck_min_resp = kInf;  // earliest response among never-dequeued enqueues
  for (const auto& [v, p] : byval) {
    if (p.enq == nullptr) return false;                                      // V1
    if (p.deq == nullptr) stuck_min_resp = std::min(stuck_min_resp, p.enq->response_real);
  }
  std::vector<ValuePair> matched;
  matched.reserve(byval.size());
  for (const auto& [v, p] : byval) {
    if (p.deq == nullptr) continue;
    if (p.deq->response_real < p.enq->invoke_real) return false;  // V2
    if (p.enq->invoke_real > stuck_min_resp) return false;        // V3
    matched.push_back(p);
  }

  // V4: sort by enqueue response; for each b, the a's with
  // enq(a).response < enq(b).invoke form a prefix, and a forced inversion
  // exists iff some such a has deq(a).invoke > deq(b).response.
  std::sort(matched.begin(), matched.end(), [](const ValuePair& a, const ValuePair& b) {
    return a.enq->response_real < b.enq->response_real;
  });
  std::vector<sim::Time> enq_resp(matched.size());
  std::vector<sim::Time> prefix_max_deq_inv(matched.size() + 1, -kInf);
  for (std::size_t i = 0; i < matched.size(); ++i) {
    enq_resp[i] = matched[i].enq->response_real;
    prefix_max_deq_inv[i + 1] =
        std::max(prefix_max_deq_inv[i], matched[i].deq->invoke_real);
  }
  for (const auto& b : matched) {
    const auto prefix = static_cast<std::size_t>(
        std::lower_bound(enq_resp.begin(), enq_resp.end(), b.enq->invoke_real) -
        enq_resp.begin());
    if (prefix_max_deq_inv[prefix] > b.deq->response_real) return false;
  }

  // V5: empty dequeues vs. the union of certain-presence windows.
  if (!empties.empty()) {
    IntervalUnion presence;
    for (const auto& [v, p] : byval) {
      presence.add(p.enq->response_real, p.deq != nullptr ? p.deq->invoke_real : kInf);
    }
    for (const auto* d : empties) {
      if (presence.covers(d->invoke_real, d->response_real)) return false;
    }
  }
  return true;
}

}  // namespace lintime::lin::fast
