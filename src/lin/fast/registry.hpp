#pragma once
// MonitorRegistry: the dispatch table from adt::MonitorFamily to the
// family's log-linear monitor.  One immutable process-wide instance; the
// lin::check() facade consults it, the classifier reads the supported-op
// sets from it, and the README's checker table is generated from the same
// entries (name, supported ops, complexity).

#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin::fast {

/// A family monitor: exact verdict for histories satisfying the family's
/// unambiguity precondition (see monitors.hpp).
using MonitorFn = bool (*)(const adt::DataType&, const std::vector<sim::OpRecord>&);

struct MonitorEntry {
  adt::MonitorFamily family = adt::MonitorFamily::kNone;
  /// Operation names the monitor understands; a history using any other
  /// operation of the type falls back to the general checker.
  std::vector<std::string> supported_ops;
  /// Human-readable unambiguity precondition (docs + fallback messages).
  std::string precondition;
  /// Worst-case complexity, for the README table.
  std::string complexity;
  MonitorFn run = nullptr;
};

class MonitorRegistry {
 public:
  /// The monitor for `family`, or nullptr when none is registered
  /// (kNone and any future family without a monitor).
  [[nodiscard]] const MonitorEntry* find(adt::MonitorFamily family) const;

  /// All registered monitors, in a fixed order (docs, tests).
  [[nodiscard]] const std::vector<MonitorEntry>& entries() const { return entries_; }

  /// The process-wide registry (immutable after construction).
  [[nodiscard]] static const MonitorRegistry& instance();

 private:
  MonitorRegistry();
  std::vector<MonitorEntry> entries_;
};

}  // namespace lintime::lin::fast
