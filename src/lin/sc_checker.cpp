#include "lin/sc_checker.hpp"

#include "lin/search_detail.hpp"

namespace lintime::lin {

CheckResult check_sequential_consistency(const adt::DataType& type,
                                         const std::vector<sim::OpRecord>& ops) {
  // Program order only: i before j iff both ran at the same process and i
  // was invoked first (per-process operations never overlap, so invocation
  // order is program order; uid breaks exact-boundary ties).
  return detail::search_permutation(type, ops, [&ops](std::size_t i, std::size_t j) {
    if (ops[i].proc != ops[j].proc) return false;
    if (ops[i].invoke_real != ops[j].invoke_real) {
      return ops[i].invoke_real < ops[j].invoke_real;
    }
    return ops[i].uid < ops[j].uid;
  });
}

CheckResult check_sequential_consistency(const adt::DataType& type,
                                         const sim::RunRecord& record) {
  return check_sequential_consistency(type, record.ops);
}

}  // namespace lintime::lin
