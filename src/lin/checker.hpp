#pragma once
// Linearizability checker (the correctness condition of Section 2.3 made
// executable).  Given the operation instances of a complete run -- each with
// its real-time invocation/response interval -- decide whether a permutation
// pi exists that (i) is a legal sequence of the data type and (ii) respects
// the real-time order of non-overlapping instances.
//
// The search is Wing-Gong style DFS over "minimal" candidates (operations
// none of whose strict predecessors are still unplaced), memoized on
// (placed-set, canonical object state): two search nodes with the same
// placed set and equivalent state have identical sub-futures, so each pair
// is explored once.  For the deterministic types in this library the state
// canonical form is small, making the checker fast enough for the
// property-test workloads (dozens of concurrent operations).

#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin {

struct CheckResult {
  bool linearizable = false;
  /// A witness linearization (sequence of indices into the input vector) if
  /// linearizable.
  std::vector<std::size_t> witness;
  /// Search-effort statistic: DFS nodes expanded.
  std::size_t nodes_expanded = 0;
  /// Memo-table statistics: lookups that pruned a subtree, and fingerprint
  /// collisions (key matched, canonical state differed).  Zero when the memo
  /// is disabled.
  std::size_t memo_hits = 0;
  std::size_t memo_collisions = 0;

  /// Human-readable rendering of the witness against the given ops.
  [[nodiscard]] std::string witness_to_string(const std::vector<sim::OpRecord>& ops) const;
};

/// Checker knobs (mostly for ablation benchmarks).
struct CheckOptions {
  bool memoize = true;  ///< (placed-set, state) memo table; disabling it
                        ///< exposes the raw factorial search (bench/ablations)
};

/// Checks the history `ops` (all must be complete: response_real set) against
/// `type`.  Throws std::invalid_argument on incomplete records.
[[nodiscard]] CheckResult check_linearizability(const adt::DataType& type,
                                                const std::vector<sim::OpRecord>& ops,
                                                const CheckOptions& options = {});

/// Convenience: checks an entire recorded run.
[[nodiscard]] CheckResult check_linearizability(const adt::DataType& type,
                                                const sim::RunRecord& record);

}  // namespace lintime::lin
