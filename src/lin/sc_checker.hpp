#pragma once
// Sequential-consistency checker.
//
// The paper's introduction contrasts linearizability with the weaker
// sequential consistency: a run is sequentially consistent iff there is a
// legal permutation of its operation instances that preserves each process's
// *program order* -- but, unlike linearizability, need not respect real-time
// order across processes (Lipton-Sandberg / Attiya-Welch).  This checker
// decides that condition with the same memoized DFS as the linearizability
// checker, only with the precedence relation weakened to program order.
//
// Having both checkers lets the benches demonstrate the *inherent gap*
// between the two conditions: the fast-SC baseline produces runs that pass
// this checker while failing linearizability.

#include <vector>

#include "adt/data_type.hpp"
#include "lin/checker.hpp"
#include "sim/run_record.hpp"

namespace lintime::lin {

/// Checks sequential consistency of a complete history.
[[nodiscard]] CheckResult check_sequential_consistency(const adt::DataType& type,
                                                       const std::vector<sim::OpRecord>& ops);

[[nodiscard]] CheckResult check_sequential_consistency(const adt::DataType& type,
                                                       const sim::RunRecord& record);

}  // namespace lintime::lin
