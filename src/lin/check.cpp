#include "lin/check.hpp"

#include "lin/fast/classifier.hpp"
#include "lin/fast/registry.hpp"

namespace lintime::lin {

namespace {

void fill_general_stats(CheckReport& report) {
  report.stats.route = CheckRoute::kGeneral;
  report.stats.nodes_expanded = report.result.nodes_expanded;
  report.stats.memo_hits = report.result.memo_hits;
  report.stats.memo_collisions = report.result.memo_collisions;
}

}  // namespace

// Declared a deterministic entry point in detlint.toml
// ([capability.deterministic]): everything reachable from here must be free
// of wall-clock reads, unseeded randomness, hash-order iteration, and
// ungranted thread spawns — detlint's reachability pass enforces it.
CheckReport check(const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
                  const FacadeOptions& options) {
  CheckReport report;
  if (!options.allow_fast_path || options.require_witness) {
    report.stats.fallback_reason =
        options.allow_fast_path ? "witness required" : "fast path disabled";
    report.result = check_linearizability(type, ops, options.general);
    fill_general_stats(report);
    return report;
  }
  const auto cls = fast::classify(type, ops);
  if (cls.eligible) {
    const auto* entry = fast::MonitorRegistry::instance().find(cls.family);
    report.stats.route = CheckRoute::kFastPath;
    report.stats.family = cls.family;
    report.result.linearizable = entry->run(type, ops);
    return report;
  }
  report.stats.fallback_reason = cls.reason;
  report.result = check_linearizability(type, ops, options.general);
  fill_general_stats(report);
  return report;
}

CheckReport check(const adt::DataType& type, const sim::RunRecord& record,
                  const FacadeOptions& options) {
  return check(type, record.ops, options);
}

}  // namespace lintime::lin
