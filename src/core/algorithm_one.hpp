#pragma once
// Algorithm 1 of the paper (Section 5.1): the timestamp-based linearizable
// implementation of an arbitrary data type, with per-class response times
//   pure accessors (AOP):  d - X
//   pure mutators (MOP):   X + eps
//   mixed ops     (OOP):   d + eps
// where X in [0, d-eps] trades accessor speed against mutator speed.
//
// Each process keeps a local replica of the object plus the To_Execute
// priority queue of announced-but-not-yet-executed mutators, ordered by
// timestamp.  Mutators are broadcast on invocation, enter the queue d-u
// after invocation (simulated locally at the invoker, via real messages at
// everyone else), and execute u+eps after entering -- by which time no
// mutator with a smaller timestamp can still be unknown.  Pure accessors are
// never broadcast: they execute locally d-X after invocation with a
// timestamp back-dated by X (line 2), which is exactly late enough to have
// received every mutator that responded before the accessor was invoked.
//
// Wire/timer format: everything travels as a typed sim::Payload.  The tag
// grammar (kAnnounceTag for the one message kind, TimerKind for timers) and
// the Timestamp <-> {clock, proc, seq} flattening live in algorithm_one.cpp;
// the argument rides as a PayloadVal, so integer and [key, int] arguments
// never touch the heap between invoker and replicas.

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "core/timestamp.hpp"
#include "core/timing_policy.hpp"
#include "sim/process.hpp"

namespace lintime::core {

/// One locally executed operation, for invariant checks and debugging.
struct ExecutedOp {
  std::string op;
  adt::Value arg;
  adt::Value ret;
  Timestamp ts;
};

class AlgorithmOneProcess final : public sim::Process {
 public:
  /// `type` must outlive the process.  `timing` is normally
  /// TimingPolicy::standard(params, X); the lower-bound experiments pass
  /// shortened timers.
  AlgorithmOneProcess(const adt::DataType& type, TimingPolicy timing);

  void on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) override;
  void on_invoke_id(sim::Context& ctx, adt::OpId id, const std::string& op,
                    const adt::Value& arg) override;
  void on_message(sim::Context& ctx, sim::ProcId src, const sim::Payload& payload) override;
  void on_timer(sim::Context& ctx, sim::TimerId id, const sim::Payload& data) override;

  /// The mutators (and local accessors) executed on this replica, in
  /// execution order.  Lemma 5's invariant -- mutators execute in increasing
  /// timestamp order -- is checked in tests against this log.
  [[nodiscard]] const std::vector<ExecutedOp>& executed() const { return executed_; }

  /// Canonical encoding of the replica state (History Oblivion checks).
  [[nodiscard]] std::string state_canonical() const { return state_->canonical(); }

  /// Toggles the executed() log (default on).  Serving-scale runs (10^5+
  /// ops) disable it: the log grows with every execution on every replica
  /// and nothing in those runs reads it.
  void set_execution_logging(bool on) { log_executions_ = on; }

 private:
  enum class TimerKind : std::uint32_t { kAopRespond, kMopRespond, kAdd, kExecute };

  struct QueueEntry {
    Timestamp ts;
    adt::OpId op_id;
    sim::PayloadVal arg;
    sim::TimerId execute_timer;
  };

  /// Lines 18-20: enter the mutator into To_Execute and start its settle
  /// timer.
  void add_to_queue(sim::Context& ctx, adt::OpId op_id, const sim::PayloadVal& arg,
                    const Timestamp& ts);

  /// Lines 4-8 / 22-29: execute every queued mutator with timestamp <= ts,
  /// in timestamp order, responding if one of them is our own kMixed.
  void drain_up_to(sim::Context& ctx, const Timestamp& ts);

  /// Line 30-33: apply (op_id, arg) to the local replica.  The op name is
  /// resolved from the type only when the execution log is on; nothing on
  /// the serving hot path touches a string.
  adt::Value execute_locally(adt::OpId op_id, const sim::PayloadVal& arg, const Timestamp& ts);

  const adt::DataType& type_;
  TimingPolicy timing_;
  std::unique_ptr<adt::ObjectState> state_;
  /// Sorted ascending by timestamp.  The queue holds only the mutators
  /// inside one settle window (u + eps), so it stays a handful of entries;
  /// a flat vector with near-back insertion beats std::map's node
  /// allocation per announcement by a wide margin at serving scale.
  std::vector<QueueEntry> to_execute_;
  std::vector<ExecutedOp> executed_;
  adt::Value scratch_arg_;  ///< reused across executions (see execute_locally)
  std::uint64_t next_ts_seq_ = 0;  ///< keeps own timestamps unique
  bool log_executions_ = true;
};

}  // namespace lintime::core
