#pragma once
// Construction 1 (Section 5.2): the paper's explicit linearization of an
// Algorithm 1 run, built from the replicas' execution logs:
//
//   1. all mutators in increasing timestamp order;
//   2. each pure accessor inserted immediately after the last mutator its
//      invoking replica executed before the accessor returned;
//   3. adjacent pure accessors sorted by timestamp.
//
// This module rebuilds that permutation from the recorded run and the
// per-replica logs, giving an *independent* validator for Algorithm 1:
// instead of searching for some linearization (lin::check_linearizability),
// it checks that the paper's constructed one is legal (Lemma 7) and respects
// real-time order (Lemma 6), and that every replica executed the mutators in
// the same timestamp order (Lemma 5).

#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "core/algorithm_one.hpp"
#include "sim/run_record.hpp"

namespace lintime::core {

struct ConstructionResult {
  bool mutator_order_agrees = false;  ///< Lemma 5: all replicas executed the
                                      ///< same mutator sequence (by timestamp)
  bool legal = false;                 ///< Lemma 7: the constructed pi is legal
  bool respects_real_time = false;    ///< Lemma 6: non-overlapping order kept
  adt::Sequence pi;                   ///< the constructed permutation
  std::string details;

  [[nodiscard]] bool valid() const {
    return mutator_order_agrees && legal && respects_real_time;
  }
};

/// Builds and validates Construction 1 for a completed run.  `replicas` are
/// the run's AlgorithmOneProcess instances in process-id order; `record` is
/// the world's run record (used for the real-time check).
[[nodiscard]] ConstructionResult build_construction(
    const adt::DataType& type, const std::vector<const AlgorithmOneProcess*>& replicas,
    const sim::RunRecord& record);

}  // namespace lintime::core
