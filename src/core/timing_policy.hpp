#pragma once
// The timer constants of Algorithm 1, factored out so that the lower-bound
// experiments can instantiate *unsafe* variants (timers shorter than the
// proven bounds) that share every line of algorithm logic with the correct
// one.  The lower-bound proofs only assume an algorithm with |OP| below the
// bound; shortening these constants realizes exactly that assumption.

#include <stdexcept>

#include "sim/model_params.hpp"

namespace lintime::core {

struct TimingPolicy {
  sim::Time aop_backdate = 0;   ///< X  : subtracted from an AOP's timestamp (line 2)
  sim::Time aop_respond = 0;    ///< d-X: AOP local-execute-and-respond delay (line 2)
  sim::Time mop_respond = 0;    ///< X+eps: pure-mutator ACK delay (line 12)
  sim::Time add_delay = 0;      ///< d-u: invoker's simulated message delay (line 14)
  sim::Time execute_delay = 0;  ///< u+eps: queue-settling delay (line 19)

  /// The paper's Algorithm 1 with tradeoff parameter X in [0, d-eps]:
  ///   |AOP| = d-X,  |MOP| = X+eps,  |OOP| = d+eps.
  static TimingPolicy standard(const sim::ModelParams& p, sim::Time X) {
    if (X < 0 || X > p.d - p.eps) {
      throw std::invalid_argument("TimingPolicy: X must be in [0, d-eps]");
    }
    TimingPolicy t;
    t.aop_backdate = X;
    t.aop_respond = p.d - X;
    t.mop_respond = X + p.eps;
    t.add_delay = p.d - p.u;
    t.execute_delay = p.u + p.eps;
    return t;
  }

  /// Worst-case response times implied by this policy.
  [[nodiscard]] sim::Time aop_bound() const { return aop_respond; }
  [[nodiscard]] sim::Time mop_bound() const { return mop_respond; }
  [[nodiscard]] sim::Time oop_bound() const { return add_delay + execute_delay; }
};

}  // namespace lintime::core
