#pragma once
// Sharded multi-object serving layer.  Where core/composite fixes a small
// heterogeneous tuple of objects at construction time, this module addresses
// a KEYSPACE: a ShardedStore is a single data type whose every operation
// carries a key in [0, num_keys), and a ShardedServingProcess routes each
// key deterministically onto one of a handful of independent Algorithm 1
// instances ("shards").  Per-object timestamps, To_Execute queues and
// replica states stay disjoint across shards, so the locality argument of
// Section 2.3 (Herlihy-Wing) scales from tuples to 10^5-10^6 addressable
// objects: the combined keyed history is linearizable w.r.t. the store iff
// every per-key restriction is linearizable w.r.t. the component type.
//
// Dispatch is fully interned: the store's operations mirror the component's
// operations IN ORDER, so a store-level adt::OpId and the component-level id
// share the same index -- routing an invocation means splitting the key out
// of the argument envelope and hashing it to a shard; no string is parsed
// anywhere on the hot path (contrast the "<object>:<op>" parsing of the
// tuple composite).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "sim/process.hpp"
#include "sim/run_record.hpp"

namespace lintime::core {

/// A keyspace of `num_keys` independent copies of a component data type,
/// viewed as ONE data type.  Operation names are the component's names,
/// unqualified; the key rides in the argument as [key, inner-arg].  The
/// store's OpId index equals the component's OpId index by construction.
class ShardedStore final : public adt::DataType {
 public:
  /// `component` must outlive the store.  `num_keys` bounds the keyspace
  /// (checked by split()); `num_shards` is the serving-side partition count.
  ShardedStore(const adt::DataType& component, std::int64_t num_keys, int num_shards);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const std::vector<adt::OpSpec>& ops() const override { return ops_; }
  [[nodiscard]] std::unique_ptr<adt::ObjectState> make_initial_state() const override;
  [[nodiscard]] std::vector<adt::Value> sample_args(const std::string& op) const override;

  [[nodiscard]] const adt::DataType& component() const { return component_; }
  [[nodiscard]] std::int64_t num_keys() const { return num_keys_; }
  [[nodiscard]] int num_shards() const { return num_shards_; }

  /// Deterministic key -> shard routing (multiplicative hash; identical on
  /// every process and across runs).
  [[nodiscard]] static int shard_of(std::int64_t key, int num_shards);
  [[nodiscard]] int shard_of(std::int64_t key) const { return shard_of(key, num_shards_); }

  /// Wraps a component-level argument into the store's keyed envelope.
  [[nodiscard]] static adt::Value keyed(std::int64_t key, adt::Value inner);

  /// Borrowed view of a keyed argument (no copy of the inner value).
  struct KeyedArg {
    std::int64_t key;
    const adt::Value* inner;
  };

  /// Splits a keyed envelope; throws std::invalid_argument on malformed
  /// arguments or keys outside [0, num_keys).
  [[nodiscard]] KeyedArg split(const adt::Value& arg) const;

  /// The component-level id corresponding to a store-level id: the same
  /// index (the store's op list mirrors the component's in order).
  [[nodiscard]] static adt::OpId component_op(adt::OpId id) { return id; }

  /// Canonical form of the component's initial state; a key whose state
  /// prints this is behaviourally absent from the store.
  [[nodiscard]] const std::string& initial_canonical() const { return initial_canonical_; }

  /// True iff the op (by interned index) is a pure accessor of the component.
  /// Pure accessors never mutate state (the category contract Algorithm 1
  /// itself relies on), so a keyed state can serve them for untouched keys
  /// from one shared pristine component state without materializing the key.
  [[nodiscard]] bool pure_accessor(adt::OpId id) const {
    return pure_accessor_[id.index()] != 0;
  }

 private:
  const adt::DataType& component_;
  std::int64_t num_keys_;
  int num_shards_;
  std::vector<adt::OpSpec> ops_;
  std::vector<char> pure_accessor_;  ///< by op index
  std::string initial_canonical_;
};

/// One simulated process serving a ShardedStore: an independent Algorithm 1
/// instance per shard, each running against the store type (its replica is a
/// keyed state that materializes only the keys routed to that shard).
/// Messages and timers are multiplexed via Payload::chan (the shard index,
/// stamped outbound and stripped inbound); invocations route by key with
/// interned dispatch end to end.
class ShardedServingProcess final : public sim::Process {
 public:
  ShardedServingProcess(const ShardedStore& store, const TimingPolicy& timing);

  void on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) override;
  void on_invoke_id(sim::Context& ctx, adt::OpId id, const std::string& op,
                    const adt::Value& arg) override;
  void on_message(sim::Context& ctx, sim::ProcId src, const sim::Payload& payload) override;
  void on_timer(sim::Context& ctx, sim::TimerId id, const sim::Payload& data) override;

  [[nodiscard]] const ShardedStore& store() const { return store_; }
  [[nodiscard]] const AlgorithmOneProcess& instance(int shard) const {
    return *instances_.at(static_cast<std::size_t>(shard));
  }

  /// Canonical encoding of every shard's replica state, for convergence
  /// checks across processes.
  [[nodiscard]] std::string state_canonical() const;

  /// Forwards to every shard instance (see AlgorithmOneProcess).
  void set_execution_logging(bool on);

 private:
  class ShardContext;

  const ShardedStore& store_;
  std::vector<std::unique_ptr<AlgorithmOneProcess>> instances_;
};

/// Restricts a keyed history to one key, stripping the envelope: the result
/// is a component-type history (args are the inner values; OpIds stay valid
/// because store and component indices coincide).
[[nodiscard]] std::vector<sim::OpRecord> restrict_to_key(const std::vector<sim::OpRecord>& ops,
                                                         const ShardedStore& store,
                                                         std::int64_t key);

/// Restricts a keyed history to the keys routed to one shard, keeping the
/// envelope (the result is still a store history).
[[nodiscard]] std::vector<sim::OpRecord> restrict_to_shard(const std::vector<sim::OpRecord>& ops,
                                                           const ShardedStore& store, int shard);

}  // namespace lintime::core
