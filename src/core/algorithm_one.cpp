#include "core/algorithm_one.hpp"

#include <stdexcept>

namespace lintime::core {

using adt::OpCategory;
using adt::Value;

namespace {

/// Flattens a Timestamp into the payload's scalar fields and back.  sim/
/// cannot depend on core/, so the wire record carries the raw triple.
sim::Payload pack(std::uint32_t tag, adt::OpId op_id, sim::PayloadVal arg,
                  const Timestamp& ts) {
  sim::Payload p;
  p.tag = tag;
  p.op_id = op_id;
  p.proc = ts.proc;
  p.seq = ts.seq;
  p.clock = ts.clock;
  p.val = std::move(arg);
  return p;
}

Timestamp ts_of(const sim::Payload& p) { return Timestamp{p.clock, p.proc, p.seq}; }

/// The single message kind this protocol sends (line 15's announcement).
constexpr std::uint32_t kAnnounceTag = 0;

}  // namespace

AlgorithmOneProcess::AlgorithmOneProcess(const adt::DataType& type, TimingPolicy timing)
    : type_(type), timing_(timing), state_(type.initial_state()) {}

void AlgorithmOneProcess::on_invoke(sim::Context& ctx, const std::string& op, const Value& arg) {
  // Resolve the name once at the invoker; the interned id then flows through
  // every timer, announcement and queue entry (throws on unknown names, as
  // the category lookup did before).
  on_invoke_id(ctx, type_.op_id(op), op, arg);
}

void AlgorithmOneProcess::on_invoke_id(sim::Context& ctx, adt::OpId id, const std::string& /*op*/,
                                       const Value& arg) {
  const OpCategory cat = type_.category(id);
  const sim::PayloadVal val = sim::PayloadVal::from_value(arg);

  if (cat == OpCategory::kPureAccessor) {
    // Line 2: respond d-X from now with timestamp back-dated by X.
    const Timestamp ts{ctx.local_time() - timing_.aop_backdate, ctx.self(), next_ts_seq_++};
    ctx.set_timer(timing_.aop_respond,
                  pack(static_cast<std::uint32_t>(TimerKind::kAopRespond), id, val, ts));
    return;
  }

  // Lines 10-15: a mutator (pure or mixed).
  const Timestamp ts{ctx.local_time(), ctx.self(), next_ts_seq_++};
  if (cat == OpCategory::kPureMutator) {
    // Line 12: pure mutators ACK after X+eps, independent of execution; the
    // ACK timer needs no payload beyond its kind.
    ctx.set_timer(timing_.mop_respond,
                  pack(static_cast<std::uint32_t>(TimerKind::kMopRespond), adt::OpId{},
                       sim::PayloadVal{}, ts));
  }
  // Line 14: the invoker pretends to receive its own announcement after the
  // minimum message delay d-u, like any other process.
  ctx.set_timer(timing_.add_delay,
                pack(static_cast<std::uint32_t>(TimerKind::kAdd), id, val, ts));
  // Line 15: announce to everyone else.
  ctx.broadcast(pack(kAnnounceTag, id, val, ts));
}

void AlgorithmOneProcess::on_message(sim::Context& ctx, sim::ProcId /*src*/,
                                     const sim::Payload& payload) {
  add_to_queue(ctx, payload.op_id, payload.val, ts_of(payload));
}

void AlgorithmOneProcess::on_timer(sim::Context& ctx, sim::TimerId /*id*/,
                                   const sim::Payload& data) {
  switch (static_cast<TimerKind>(data.tag)) {
    case TimerKind::kAopRespond: {
      // Lines 3-9: catch up on every mutator ordered before the accessor,
      // then execute the accessor locally and respond.
      const Timestamp ts = ts_of(data);
      drain_up_to(ctx, ts);
      ctx.respond(execute_locally(data.op_id, data.val, ts));
      break;
    }
    case TimerKind::kMopRespond:
      // Lines 16-17: pure mutators acknowledge without waiting to execute.
      ctx.respond(Value::nil());
      break;
    case TimerKind::kAdd:
      // Lines 18-20 (invoker side).
      add_to_queue(ctx, data.op_id, data.val, ts_of(data));
      break;
    case TimerKind::kExecute:
      // Lines 21-29; the execute timer carries only its timestamp.
      drain_up_to(ctx, ts_of(data));
      break;
  }
}

void AlgorithmOneProcess::add_to_queue(sim::Context& ctx, adt::OpId op_id,
                                       const sim::PayloadVal& arg, const Timestamp& ts) {
  const sim::TimerId execute_timer =
      ctx.set_timer(timing_.execute_delay,
                    pack(static_cast<std::uint32_t>(TimerKind::kExecute), adt::OpId{},
                         sim::PayloadVal{}, ts));
  // Announcements arrive in near-timestamp order (delays vary only within
  // [d-u, d]), so the scan from the back touches at most a couple of slots.
  auto it = to_execute_.end();
  while (it != to_execute_.begin() && ts < std::prev(it)->ts) --it;
  if (it != to_execute_.begin() && !(std::prev(it)->ts < ts)) {
    throw std::logic_error("AlgorithmOneProcess: duplicate timestamp in To_Execute");
  }
  to_execute_.insert(it, QueueEntry{ts, op_id, arg, execute_timer});
}

void AlgorithmOneProcess::drain_up_to(sim::Context& ctx, const Timestamp& ts) {
  // Execute the ready prefix in order, then erase it with one shift.  No
  // callee reenters this process (respond and cancel_timer only touch World
  // state), so the vector cannot change under the loop.
  std::size_t done = 0;
  while (done < to_execute_.size() && to_execute_[done].ts <= ts) {
    const QueueEntry& entry = to_execute_[done];
    ++done;
    ctx.cancel_timer(entry.execute_timer);

    const Value ret = execute_locally(entry.op_id, entry.arg, entry.ts);

    // Lines 26-28: if this was our own mixed operation, its execution is
    // its response.  (Our own pure mutators already ACKed at line 17.)
    if (entry.ts.proc == ctx.self() &&
        type_.category(entry.op_id) == OpCategory::kMixed) {
      ctx.respond(ret);
    }
  }
  if (done > 0) {
    to_execute_.erase(to_execute_.begin(),
                      to_execute_.begin() + static_cast<std::ptrdiff_t>(done));
  }
}

Value AlgorithmOneProcess::execute_locally(adt::OpId op_id, const sim::PayloadVal& arg,
                                           const Timestamp& ts) {
  arg.to_value_into(scratch_arg_);
  Value ret = state_->apply(op_id, scratch_arg_);
  if (log_executions_) {
    executed_.push_back(ExecutedOp{type_.spec(op_id).name, scratch_arg_, ret, ts});
  }
  return ret;
}

}  // namespace lintime::core
