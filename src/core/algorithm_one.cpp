#include "core/algorithm_one.hpp"

#include <stdexcept>

namespace lintime::core {

using adt::OpCategory;
using adt::Value;

AlgorithmOneProcess::AlgorithmOneProcess(const adt::DataType& type, TimingPolicy timing)
    : type_(type), timing_(timing), state_(type.initial_state()) {}

void AlgorithmOneProcess::on_invoke(sim::Context& ctx, const std::string& op, const Value& arg) {
  // Resolve the name once at the invoker; the interned id then flows through
  // every timer, announcement and queue entry (throws on unknown names, as
  // the category lookup did before).
  on_invoke_id(ctx, type_.op_id(op), op, arg);
}

void AlgorithmOneProcess::on_invoke_id(sim::Context& ctx, adt::OpId id, const std::string& op,
                                       const Value& arg) {
  const OpCategory cat = type_.category(id);

  if (cat == OpCategory::kPureAccessor) {
    // Line 2: respond d-X from now with timestamp back-dated by X.
    const Timestamp ts{ctx.local_time() - timing_.aop_backdate, ctx.self(), next_ts_seq_++};
    ctx.set_timer(timing_.aop_respond, TimerData{TimerKind::kAopRespond, id, op, arg, ts});
    return;
  }

  // Lines 10-15: a mutator (pure or mixed).
  const Timestamp ts{ctx.local_time(), ctx.self(), next_ts_seq_++};
  if (cat == OpCategory::kPureMutator) {
    // Line 12: pure mutators ACK after X+eps, independent of execution.
    ctx.set_timer(timing_.mop_respond, TimerData{TimerKind::kMopRespond, id, op, arg, ts});
  }
  // Line 14: the invoker pretends to receive its own announcement after the
  // minimum message delay d-u, like any other process.
  ctx.set_timer(timing_.add_delay, TimerData{TimerKind::kAdd, id, op, arg, ts});
  // Line 15: announce to everyone else.
  ctx.broadcast(OpAnnounce{id, op, arg, ts});
}

void AlgorithmOneProcess::on_message(sim::Context& ctx, sim::ProcId /*src*/,
                                     const std::any& payload) {
  const auto& announce = std::any_cast<const OpAnnounce&>(payload);
  add_to_queue(ctx, announce.op_id, announce.op, announce.arg, announce.ts);
}

void AlgorithmOneProcess::on_timer(sim::Context& ctx, sim::TimerId /*id*/, const std::any& data) {
  const auto& timer = std::any_cast<const TimerData&>(data);
  switch (timer.kind) {
    case TimerKind::kAopRespond: {
      // Lines 3-9: catch up on every mutator ordered before the accessor,
      // then execute the accessor locally and respond.
      drain_up_to(ctx, timer.ts);
      ctx.respond(execute_locally(timer.op_id, timer.op, timer.arg, timer.ts));
      break;
    }
    case TimerKind::kMopRespond:
      // Lines 16-17: pure mutators acknowledge without waiting to execute.
      ctx.respond(Value::nil());
      break;
    case TimerKind::kAdd:
      // Lines 18-20 (invoker side).
      add_to_queue(ctx, timer.op_id, timer.op, timer.arg, timer.ts);
      break;
    case TimerKind::kExecute:
      // Lines 21-29.
      drain_up_to(ctx, timer.ts);
      break;
  }
}

void AlgorithmOneProcess::add_to_queue(sim::Context& ctx, adt::OpId op_id, const std::string& op,
                                       const Value& arg, const Timestamp& ts) {
  const sim::TimerId execute_timer =
      ctx.set_timer(timing_.execute_delay, TimerData{TimerKind::kExecute, op_id, op, arg, ts});
  const auto [it, inserted] = to_execute_.emplace(ts, QueueEntry{op_id, op, arg, execute_timer});
  (void)it;
  if (!inserted) {
    throw std::logic_error("AlgorithmOneProcess: duplicate timestamp in To_Execute");
  }
}

void AlgorithmOneProcess::drain_up_to(sim::Context& ctx, const Timestamp& ts) {
  while (!to_execute_.empty() && to_execute_.begin()->first <= ts) {
    const auto it = to_execute_.begin();
    const Timestamp entry_ts = it->first;
    QueueEntry entry = std::move(it->second);
    to_execute_.erase(it);
    ctx.cancel_timer(entry.execute_timer);

    const Value ret = execute_locally(entry.op_id, entry.op, entry.arg, entry_ts);

    // Lines 26-28: if this was our own mixed operation, its execution is
    // its response.  (Our own pure mutators already ACKed at line 17.)
    if (entry_ts.proc == ctx.self() &&
        type_.category(entry.op_id) == OpCategory::kMixed) {
      ctx.respond(ret);
    }
  }
}

Value AlgorithmOneProcess::execute_locally(adt::OpId op_id, const std::string& op,
                                           const Value& arg, const Timestamp& ts) {
  Value ret = state_->apply(op_id, arg);
  if (log_executions_) executed_.push_back(ExecutedOp{op, arg, ret, ts});
  return ret;
}

}  // namespace lintime::core
