#include "core/construction.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace lintime::core {

namespace {

using adt::OpCategory;

bool is_mutator(const adt::DataType& type, const ExecutedOp& op) {
  return type.category(op.op) != OpCategory::kPureAccessor;
}

}  // namespace

ConstructionResult build_construction(const adt::DataType& type,
                                      const std::vector<const AlgorithmOneProcess*>& replicas,
                                      const sim::RunRecord& record) {
  ConstructionResult result;
  std::ostringstream details;

  // ---- Lemma 5: every replica executed the same mutator sequence, in
  // increasing timestamp order.
  std::vector<ExecutedOp> mutators;
  for (const auto& entry : replicas.at(0)->executed()) {
    if (is_mutator(type, entry)) mutators.push_back(entry);
  }
  result.mutator_order_agrees = true;
  for (std::size_t i = 1; i < mutators.size(); ++i) {
    if (!(mutators[i - 1].ts < mutators[i].ts)) {
      result.mutator_order_agrees = false;
      details << "replica 0 executed mutators out of timestamp order\n";
    }
  }
  for (std::size_t p = 1; p < replicas.size(); ++p) {
    std::vector<ExecutedOp> other;
    for (const auto& entry : replicas[p]->executed()) {
      if (is_mutator(type, entry)) other.push_back(entry);
    }
    bool same = other.size() == mutators.size();
    for (std::size_t i = 0; same && i < other.size(); ++i) {
      same = other[i].ts == mutators[i].ts && other[i].op == mutators[i].op &&
             other[i].arg == mutators[i].arg && other[i].ret == mutators[i].ret;
    }
    if (!same) {
      result.mutator_order_agrees = false;
      details << "replica " << p << " executed a different mutator sequence\n";
    }
  }

  // ---- Step 2 of the construction: place each pure accessor after the last
  // mutator its replica executed before the accessor returned.  slot[k]
  // holds the accessors that follow the k-th mutator (slot[0]: before any).
  std::vector<std::vector<ExecutedOp>> slots(mutators.size() + 1);
  for (std::size_t p = 0; p < replicas.size(); ++p) {
    std::size_t mutators_seen = 0;
    for (const auto& entry : replicas[p]->executed()) {
      if (is_mutator(type, entry)) {
        ++mutators_seen;
      } else if (entry.ts.proc == static_cast<sim::ProcId>(p)) {
        // Own pure accessor (accessors only execute at their invoker).
        slots[std::min(mutators_seen, mutators.size())].push_back(entry);
      }
    }
  }
  // ---- Step 3: adjacent accessors in timestamp order.
  for (auto& slot : slots) {
    std::sort(slot.begin(), slot.end(),
              [](const ExecutedOp& a, const ExecutedOp& b) { return a.ts < b.ts; });
  }

  // Assemble pi, remembering each element's timestamp for the real-time map.
  std::vector<Timestamp> pi_ts;
  for (std::size_t k = 0; k <= mutators.size(); ++k) {
    for (const auto& aop : slots[k]) {
      result.pi.push_back(adt::Instance{aop.op, aop.arg, aop.ret});
      pi_ts.push_back(aop.ts);
    }
    if (k < mutators.size()) {
      result.pi.push_back(adt::Instance{mutators[k].op, mutators[k].arg, mutators[k].ret});
      pi_ts.push_back(mutators[k].ts);
    }
  }

  // ---- Lemma 7: pi is legal.
  result.legal = adt::is_legal(type, result.pi);
  if (!result.legal) details << "constructed pi is not a legal sequence\n";

  // ---- Lemma 6: pi respects the real-time order of non-overlapping
  // instances.  Map each timestamp to its OpRecord by zipping, per process,
  // the invocations (in invocation order) with the own executed entries (in
  // timestamp order) -- both orders coincide at a correct replica.
  std::map<Timestamp, const sim::OpRecord*> by_ts;
  for (std::size_t p = 0; p < replicas.size(); ++p) {
    std::vector<const sim::OpRecord*> invocations;
    for (const auto& op : record.ops) {
      if (op.proc == static_cast<sim::ProcId>(p)) invocations.push_back(&op);
    }
    std::sort(invocations.begin(), invocations.end(),
              [](const sim::OpRecord* a, const sim::OpRecord* b) {
                return a->invoke_real < b->invoke_real;
              });
    std::vector<const ExecutedOp*> own;
    for (const auto& entry : replicas[p]->executed()) {
      if (entry.ts.proc == static_cast<sim::ProcId>(p)) own.push_back(&entry);
    }
    std::sort(own.begin(), own.end(),
              [](const ExecutedOp* a, const ExecutedOp* b) { return a->ts < b->ts; });
    if (own.size() != invocations.size()) {
      details << "replica " << p << ": executed " << own.size() << " own entries but "
              << invocations.size() << " invocations recorded\n";
      result.respects_real_time = false;
      result.details = details.str();
      return result;
    }
    for (std::size_t i = 0; i < own.size(); ++i) {
      by_ts[own[i]->ts] = invocations[i];
    }
  }

  result.respects_real_time = true;
  for (std::size_t i = 0; i < pi_ts.size(); ++i) {
    for (std::size_t j = i + 1; j < pi_ts.size(); ++j) {
      const auto* a = by_ts.at(pi_ts[i]);
      const auto* b = by_ts.at(pi_ts[j]);
      // j follows i in pi; a violation is b responding strictly before a is
      // invoked.
      if (b->response_real < a->invoke_real) {
        result.respects_real_time = false;
        details << "real-time inversion: " << b->to_string() << " precedes " << a->to_string()
                << " but is linearized later\n";
      }
    }
  }

  result.details = details.str();
  return result;
}

}  // namespace lintime::core
