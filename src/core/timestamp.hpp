#pragma once
// Operation timestamps (Section 5.1): an ordered pair (local clock time of
// invocation, invoking process id), compared lexicographically.  Timestamp
// order is the canonical order in which every replica executes mutators.

#include <compare>
#include <cstdint>
#include <sstream>
#include <string>

#include "sim/model_params.hpp"

namespace lintime::core {

struct Timestamp {
  sim::Time clock = 0;
  sim::ProcId proc = 0;
  /// Per-process monotone counter.  The paper's (clock, proc) pairs are
  /// unique because every operation takes positive time; implementations
  /// with zero-latency responses (the sequentially consistent baseline) can
  /// issue two operations at the same local clock reading, and the sequence
  /// number keeps their timestamps distinct and program-ordered.
  std::uint64_t seq = 0;

  // Lexicographic (clock, proc, seq).  Clock values are finite doubles, so
  // the order is total.
  friend std::strong_ordering operator<=>(const Timestamp& a, const Timestamp& b) {
    if (a.clock < b.clock) return std::strong_ordering::less;
    if (a.clock > b.clock) return std::strong_ordering::greater;
    if (a.proc != b.proc) return a.proc <=> b.proc;
    return a.seq <=> b.seq;
  }
  friend bool operator==(const Timestamp& a, const Timestamp& b) {
    return a.clock == b.clock && a.proc == b.proc && a.seq == b.seq;
  }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "(" << clock << ", p" << proc << ", #" << seq << ")";
    return os.str();
  }
};

}  // namespace lintime::core
