#include "core/sharded_store.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace lintime::core {

namespace {

/// Slab owner for materialized component states.  A million-key serving run
/// materializes ~10^6 states; one unique_ptr each means a million
/// malloc/free pairs (the free half lands in the timed region at teardown),
/// which profiled as the largest remaining libc cost after the payload
/// refactor.  States that publish their footprint (self_size() > 0, i.e.
/// anything deriving StateBase) are placement-copied into 64 KiB bump slabs
/// instead; string-only custom states fall back to one heap block each.
/// Bump order follows materialization order, so layout -- like everything
/// else here -- is deterministic, and nothing ever reads it anyway.
class StateArena {
 public:
  StateArena() = default;
  StateArena(const StateArena&) = delete;
  StateArena& operator=(const StateArena&) = delete;

  ~StateArena() {
    for (adt::ObjectState* s : placed_) s->~ObjectState();
  }

  /// Returns a copy of `tmpl` owned by this arena.
  adt::ObjectState* add(const adt::ObjectState& tmpl) {
    const std::size_t size = tmpl.self_size();
    if (size == 0) {
      owned_.push_back(tmpl.clone());
      return owned_.back().get();
    }
    const std::size_t align = tmpl.self_align();
    auto at = (cursor_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (at + size > limit_) {
      const std::size_t slab = std::max<std::size_t>(kSlabBytes, size + align);
      slabs_.push_back(std::make_unique<std::byte[]>(slab));
      cursor_ = reinterpret_cast<std::uintptr_t>(slabs_.back().get());
      limit_ = cursor_ + slab;
      at = (cursor_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    }
    cursor_ = at + size;
    adt::ObjectState* s = tmpl.clone_into(reinterpret_cast<void*>(at));
    placed_.push_back(s);
    return s;
  }

 private:
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<adt::ObjectState*> placed_;  ///< in-slab states needing dtors
  std::vector<std::unique_ptr<adt::ObjectState>> owned_;  ///< fallback path
  std::uintptr_t cursor_ = 1;  ///< 1 > limit_: first add allocates a slab
  std::uintptr_t limit_ = 0;
};

/// Open-addressed key -> component-state table (linear probing, Fibonacci
/// hash, power-of-two capacity, no deletion).  A serving replica does one
/// lookup per executed mutator at keyspace scale, so the probe sequence --
/// one cache line in the common case -- is the hot path; std::map's tree
/// walk and std::unordered_map's prime-modulo chaining both measured as the
/// top cost of the serving benchmark.  The table is never iterated: callers
/// track the key set separately, so no output depends on slot layout.
class KeyStateTable {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] adt::ObjectState* find(std::int64_t key) const {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask_) {
      const Slot& s = slots_[i];
      if (s.state == nullptr) return nullptr;
      if (s.key == key) return s.state;
    }
  }

  /// Inserts a NEW key (the caller has already checked find() == nullptr).
  /// `state` is a borrowed pointer; the caller's StateArena owns it.
  adt::ObjectState& insert(std::int64_t key, adt::ObjectState* state,
                           std::size_t expected_total) {
    if (size_ * 2 >= slots_.size()) grow(expected_total);
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.state == nullptr) {
        s.key = key;
        s.state = state;
        ++size_;
        return *s.state;
      }
    }
  }

 private:
  struct Slot {
    std::int64_t key = 0;
    adt::ObjectState* state = nullptr;  ///< borrowed from the arena; null == empty
  };

  [[nodiscard]] std::size_t probe_start(std::int64_t key) const {
    return static_cast<std::size_t>((static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL) >>
                                    shift_);
  }

  void grow(std::size_t expected_total) {
    std::size_t cap = 16;
    while (cap < 2 * (size_ + 1)) cap *= 2;
    // First growth jumps straight to the expected population (a serving
    // replica tends to materialize its whole shard of the keyspace), capped
    // so a barely-touched instance of a huge store stays cheap.
    if (slots_.empty()) {
      const std::size_t hint = std::min<std::size_t>(expected_total, std::size_t{1} << 16);
      while (cap < 2 * hint) cap *= 2;
    }
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(cap);
    mask_ = cap - 1;
    shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
    for (Slot& s : old) {
      if (s.state == nullptr) continue;
      for (std::size_t i = probe_start(s.key);; i = (i + 1) & mask_) {
        if (slots_[i].state == nullptr) {
          slots_[i] = std::move(s);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
};

/// The store's sequential state: component states materialized per key on
/// first touch.  A key whose state is behaviourally the component's initial
/// state is OMITTED from canonical() and fingerprint_into(), so canonical
/// equality remains exactly behavioural equivalence regardless of which
/// keys happen to have been touched (e.g. read but never written).
///
/// Lookup is the open-addressed table above, but NOTHING iterates it:
/// canonical(), fingerprint_into() and the copy constructor walk `touched_`
/// (sorted or in insertion order) and do point lookups, so every output is
/// independent of slot layout.  Pure accessors on untouched keys are served
/// from one shared pristine component state and never materialize the key --
/// at keyspace scale that halves allocations on a mixed workload.
class KeyedState final : public adt::ObjectState {
 public:
  explicit KeyedState(const ShardedStore& owner) : owner_(&owner) {}

  KeyedState(const KeyedState& other)
      : adt::ObjectState(other), owner_(other.owner_), touched_(other.touched_) {
    for (const std::int64_t key : touched_) {
      states_.insert(key, arena_.add(*other.states_.find(key)), expected_keys());
    }
  }

  adt::Value apply(const std::string& op, const adt::Value& arg) override {
    return apply(owner_->op_id(op), arg);
  }

  adt::Value apply(adt::OpId id, const adt::Value& arg) override {
    const auto ka = owner_->split(arg);
    if (adt::ObjectState* state = states_.find(ka.key)) {
      return state->apply(ShardedStore::component_op(id), *ka.inner);
    }
    if (owner_->pure_accessor(id)) {
      return pristine().apply(ShardedStore::component_op(id), *ka.inner);
    }
    return materialize(ka.key).apply(ShardedStore::component_op(id), *ka.inner);
  }

  [[nodiscard]] std::unique_ptr<adt::ObjectState> clone() const override {
    return std::make_unique<KeyedState>(*this);
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    for (const std::int64_t key : sorted_keys()) {
      const std::string c = states_.find(key)->canonical();
      if (c == owner_->initial_canonical()) continue;
      os << key << '{' << c << '}';
    }
    return os.str();
  }

  void fingerprint_into(adt::FpHasher& h) const override {
    h.mix(13);  // sharded-store tag, distinct from every component tag
    std::vector<std::pair<std::int64_t, const adt::ObjectState*>> live;
    live.reserve(states_.size());
    for (const std::int64_t key : sorted_keys()) {
      const adt::ObjectState* state = states_.find(key);
      if (state->canonical() == owner_->initial_canonical()) continue;
      live.emplace_back(key, state);
    }
    h.mix(live.size());
    for (const auto& [key, state] : live) {
      h.mix(static_cast<std::uint64_t>(key));
      state->fingerprint_into(h);
    }
  }

 private:
  [[nodiscard]] std::size_t expected_keys() const {
    return static_cast<std::size_t>(owner_->num_keys() / owner_->num_shards());
  }

  [[nodiscard]] adt::ObjectState& materialize(std::int64_t key) {
    touched_.push_back(key);
    // Copy the (bound) initial template into the arena rather than asking
    // the component for a fresh heap state per key; clone_into preserves the
    // bound op table, so the copy behaves exactly like initial_state().
    if (!initial_) initial_ = owner_->component().initial_state();
    return states_.insert(key, arena_.add(*initial_), expected_keys());
  }

  /// Shared initial component state for accessor reads of untouched keys.
  /// Safe to share because pure accessors never mutate.  Deliberately not
  /// copied by the copy constructor (clones recreate it on demand).
  [[nodiscard]] adt::ObjectState& pristine() {
    if (!pristine_) pristine_ = owner_->component().initial_state();
    return *pristine_;
  }

  [[nodiscard]] std::vector<std::int64_t> sorted_keys() const {
    std::vector<std::int64_t> keys = touched_;
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  const ShardedStore* owner_;
  std::vector<std::int64_t> touched_;  ///< materialized keys, insertion order
  StateArena arena_;                   ///< owns every state in states_
  KeyStateTable states_;
  std::unique_ptr<adt::ObjectState> pristine_;
  std::unique_ptr<adt::ObjectState> initial_;  ///< clone template for materialize
};

}  // namespace

// ---------------------------------------------------------------------------
// ShardedStore
// ---------------------------------------------------------------------------

ShardedStore::ShardedStore(const adt::DataType& component, std::int64_t num_keys, int num_shards)
    : component_(component), num_keys_(num_keys), num_shards_(num_shards) {
  if (num_keys_ < 1) throw std::invalid_argument("ShardedStore: num_keys must be >= 1");
  if (num_shards_ < 1) throw std::invalid_argument("ShardedStore: num_shards must be >= 1");
  ops_.reserve(component_.ops().size());
  pure_accessor_.reserve(component_.ops().size());
  for (const auto& spec : component_.ops()) {
    // Same names in the same order, so store OpId index == component OpId
    // index; every store op carries the [key, inner] envelope.
    adt::OpSpec keyed_spec = spec;
    keyed_spec.takes_arg = true;
    pure_accessor_.push_back(spec.category == adt::OpCategory::kPureAccessor ? 1 : 0);
    ops_.push_back(std::move(keyed_spec));
  }
  initial_canonical_ = component_.initial_state()->canonical();
}

std::string ShardedStore::name() const {
  std::ostringstream os;
  os << "sharded(" << component_.name() << ", keys=" << num_keys_ << ", shards=" << num_shards_
     << ")";
  return os.str();
}

std::unique_ptr<adt::ObjectState> ShardedStore::make_initial_state() const {
  return std::make_unique<KeyedState>(*this);
}

std::vector<adt::Value> ShardedStore::sample_args(const std::string& op) const {
  std::vector<adt::Value> out;
  const std::int64_t last = num_keys_ - 1;
  for (const std::int64_t key : {std::int64_t{0}, last}) {
    if (key == last && last == 0) break;  // single-key store: don't duplicate
    for (auto& inner : component_.sample_args(op)) {
      out.push_back(keyed(key, std::move(inner)));
    }
  }
  return out;
}

int ShardedStore::shard_of(std::int64_t key, int num_shards) {
  // Fibonacci (multiplicative) hash: spreads dense key ranges evenly and is
  // a pure function of (key, num_shards) -- identical on every process.
  const std::uint64_t h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
  return static_cast<int>((h >> 33) % static_cast<std::uint64_t>(num_shards));
}

adt::Value ShardedStore::keyed(std::int64_t key, adt::Value inner) {
  return adt::Value{adt::ValueVec{adt::Value{key}, std::move(inner)}};
}

ShardedStore::KeyedArg ShardedStore::split(const adt::Value& arg) const {
  if (!arg.is_vec() || arg.as_vec().size() != 2 || !arg.as_vec()[0].is_int()) {
    throw std::invalid_argument("ShardedStore: argument must be [key, inner-arg], got " +
                                arg.to_string());
  }
  const auto& vec = arg.as_vec();
  const std::int64_t key = vec[0].as_int();
  if (key < 0 || key >= num_keys_) {
    throw std::invalid_argument("ShardedStore: key " + std::to_string(key) + " outside [0, " +
                                std::to_string(num_keys_) + ")");
  }
  return KeyedArg{key, &vec[1]};
}

// ---------------------------------------------------------------------------
// ShardedServingProcess
// ---------------------------------------------------------------------------

/// Context adapter stamping the owning shard into Payload::chan on every
/// outgoing message and timer (mirroring the tuple composite's SubContext);
/// the shard fan-out is single-level, so the one chan field suffices and no
/// envelope allocation exists anywhere on the serving path.
class ShardedServingProcess::ShardContext final : public sim::Context {
 public:
  ShardContext(sim::Context& outer, int shard) : outer_(outer), shard_(shard) {}

  [[nodiscard]] sim::ProcId self() const override { return outer_.self(); }
  [[nodiscard]] int n() const override { return outer_.n(); }
  [[nodiscard]] const sim::ModelParams& params() const override { return outer_.params(); }
  [[nodiscard]] sim::Time local_time() const override { return outer_.local_time(); }

  void send(sim::ProcId dst, sim::Payload payload) override {
    outer_.send(dst, stamp(std::move(payload)));
  }
  void broadcast(sim::Payload payload) override { outer_.broadcast(stamp(std::move(payload))); }
  sim::TimerId set_timer(sim::Time delay, sim::Payload data) override {
    return outer_.set_timer(delay, stamp(std::move(data)));
  }
  void cancel_timer(sim::TimerId id) override { outer_.cancel_timer(id); }
  void respond(adt::Value ret) override { outer_.respond(std::move(ret)); }

 private:
  [[nodiscard]] sim::Payload stamp(sim::Payload p) const {
    if (p.chan != sim::Payload::kNoChan) {
      throw std::logic_error("sharded store: payload channel already in use");
    }
    p.chan = static_cast<std::uint32_t>(shard_);
    return p;
  }

  sim::Context& outer_;
  int shard_;
};

ShardedServingProcess::ShardedServingProcess(const ShardedStore& store, const TimingPolicy& timing)
    : store_(store) {
  instances_.reserve(static_cast<std::size_t>(store.num_shards()));
  for (int s = 0; s < store.num_shards(); ++s) {
    // Every shard instance runs against the store type itself: its replica
    // is a KeyedState that materializes exactly the keys routed here.
    instances_.push_back(std::make_unique<AlgorithmOneProcess>(store, timing));
  }
}

void ShardedServingProcess::on_invoke(sim::Context& ctx, const std::string& op,
                                      const adt::Value& arg) {
  on_invoke_id(ctx, store_.op_id(op), op, arg);
}

void ShardedServingProcess::on_invoke_id(sim::Context& ctx, adt::OpId id, const std::string& op,
                                         const adt::Value& arg) {
  const auto ka = store_.split(arg);
  const int shard = store_.shard_of(ka.key);
  ShardContext sub(ctx, shard);
  instances_[static_cast<std::size_t>(shard)]->on_invoke_id(sub, id, op, arg);
}

void ShardedServingProcess::on_message(sim::Context& ctx, sim::ProcId src,
                                       const sim::Payload& payload) {
  const auto shard = static_cast<int>(payload.chan);
  sim::Payload inner = payload;  // strip the channel before forwarding
  inner.chan = sim::Payload::kNoChan;
  ShardContext sub(ctx, shard);
  instances_.at(static_cast<std::size_t>(shard))->on_message(sub, src, inner);
}

void ShardedServingProcess::on_timer(sim::Context& ctx, sim::TimerId id,
                                     const sim::Payload& data) {
  const auto shard = static_cast<int>(data.chan);
  sim::Payload inner = data;
  inner.chan = sim::Payload::kNoChan;
  ShardContext sub(ctx, shard);
  instances_.at(static_cast<std::size_t>(shard))->on_timer(sub, id, inner);
}

std::string ShardedServingProcess::state_canonical() const {
  std::ostringstream os;
  for (std::size_t s = 0; s < instances_.size(); ++s) {
    os << 's' << s << '{' << instances_[s]->state_canonical() << '}';
  }
  return os.str();
}

void ShardedServingProcess::set_execution_logging(bool on) {
  for (auto& instance : instances_) instance->set_execution_logging(on);
}

// ---------------------------------------------------------------------------
// History projections
// ---------------------------------------------------------------------------

std::vector<sim::OpRecord> restrict_to_key(const std::vector<sim::OpRecord>& ops,
                                           const ShardedStore& store, std::int64_t key) {
  std::vector<sim::OpRecord> out;
  for (auto op : ops) {
    const auto ka = store.split(op.arg);
    if (ka.key != key) continue;
    // Copy before overwriting: ka.inner points into op.arg's own vector.
    adt::Value inner = *ka.inner;
    op.arg = std::move(inner);
    out.push_back(std::move(op));
  }
  return out;
}

std::vector<sim::OpRecord> restrict_to_shard(const std::vector<sim::OpRecord>& ops,
                                             const ShardedStore& store, int shard) {
  std::vector<sim::OpRecord> out;
  for (const auto& op : ops) {
    if (store.shard_of(store.split(op.arg).key) != shard) continue;
    out.push_back(op);
  }
  return out;
}

}  // namespace lintime::core
