#pragma once
// Multi-object composition.  Section 2.3 of the paper invokes the locality
// of linearizability (Herlihy-Wing): "a run is linearizable if and only if
// the restriction of the run to each individual object is linearizable", and
// then reasons about a single object.  This module makes composition
// executable in both directions:
//
//   * CompositeProcess hosts one INDEPENDENT AlgorithmOneProcess per object
//     (separate replicas, timestamps, queues); operations are addressed as
//     "<object-index>:<op>" and messages/timers are multiplexed.
//   * ProductType is the composed objects viewed as ONE data type with
//     namespaced operations, so the standard checker can decide
//     linearizability of the COMBINED history.
//
// Locality then becomes a testable statement: the combined history of a
// CompositeProcess run is linearizable w.r.t. ProductType, and each
// restriction is linearizable w.r.t. its component type.

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "sim/process.hpp"
#include "sim/run_record.hpp"

namespace lintime::core {

/// Splits "3:enqueue" into (3, "enqueue"); throws on malformed names.
struct QualifiedOp {
  std::size_t object;
  std::string op;
};
[[nodiscard]] QualifiedOp parse_qualified(const std::string& name);
[[nodiscard]] std::string qualify(std::size_t object, const std::string& op);

/// The product of several data types, with operations namespaced by object
/// index.  A useful type in its own right (a fixed heterogeneous "store"),
/// and the specification the combined history of a composite run must meet.
class ProductType final : public adt::DataType {
 public:
  /// `components` must outlive the product.
  explicit ProductType(std::vector<const adt::DataType*> components);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const std::vector<adt::OpSpec>& ops() const override { return ops_; }
  [[nodiscard]] std::unique_ptr<adt::ObjectState> make_initial_state() const override;
  [[nodiscard]] std::vector<adt::Value> sample_args(const std::string& op) const override;

  [[nodiscard]] const std::vector<const adt::DataType*>& components() const {
    return components_;
  }

  /// Interned dispatch: a product-level OpId resolves to (component index,
  /// component-level OpId) without re-parsing the qualified name.
  struct SubOp {
    std::size_t object;
    adt::OpId op;
  };
  [[nodiscard]] const SubOp& sub_op(adt::OpId id) const { return dispatch_.at(id.index()); }

 private:
  std::vector<const adt::DataType*> components_;
  std::vector<adt::OpSpec> ops_;
  std::vector<SubOp> dispatch_;
};

/// One simulated process hosting an independent Algorithm 1 instance per
/// object.  Invocations use qualified names; each sub-instance's messages
/// and timers carry its object index in Payload::chan (stamped outbound,
/// stripped inbound), so the instances never interfere (their timestamps and
/// To_Execute queues are disjoint).
class CompositeProcess final : public sim::Process {
 public:
  CompositeProcess(const ProductType& product, const TimingPolicy& timing);

  void on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) override;
  void on_message(sim::Context& ctx, sim::ProcId src, const sim::Payload& payload) override;
  void on_timer(sim::Context& ctx, sim::TimerId id, const sim::Payload& data) override;

  [[nodiscard]] const AlgorithmOneProcess& instance(std::size_t object) const {
    return *instances_.at(object);
  }

 private:
  class SubContext;

  const ProductType& product_;
  std::vector<std::unique_ptr<AlgorithmOneProcess>> instances_;
};

/// Restricts a history to the operations of one object, stripping the
/// qualification (ready for the component type's checker).
[[nodiscard]] std::vector<sim::OpRecord> restrict_to_object(
    const std::vector<sim::OpRecord>& ops, std::size_t object);

}  // namespace lintime::core
