#include "core/composite.hpp"

#include <sstream>
#include <stdexcept>

namespace lintime::core {

QualifiedOp parse_qualified(const std::string& name) {
  const auto colon = name.find(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("composite: operation must be '<object>:<op>', got " + name);
  }
  return QualifiedOp{std::stoul(name.substr(0, colon)), name.substr(colon + 1)};
}

std::string qualify(std::size_t object, const std::string& op) {
  return std::to_string(object) + ":" + op;
}

// ---------------------------------------------------------------------------
// ProductType
// ---------------------------------------------------------------------------

namespace {

class ProductState final : public adt::ObjectState {
 public:
  explicit ProductState(const ProductType& owner) : owner_(&owner) {
    const auto& components = owner.components();
    states_.reserve(components.size());
    for (const auto* c : components) states_.push_back(c->initial_state());
  }

  // Copies must keep the ObjectState base (the bound op table) alongside the
  // deep-copied component states.
  ProductState(const ProductState& other) : adt::ObjectState(other), owner_(other.owner_) {
    states_.reserve(other.states_.size());
    for (const auto& s : other.states_) states_.push_back(s->clone());
  }

  adt::Value apply(const std::string& op, const adt::Value& arg) override {
    const auto q = parse_qualified(op);
    return states_.at(q.object)->apply(q.op, arg);
  }

  adt::Value apply(adt::OpId id, const adt::Value& arg) override {
    const auto& sub = owner_->sub_op(id);
    return states_[sub.object]->apply(sub.op, arg);
  }

  [[nodiscard]] std::unique_ptr<adt::ObjectState> clone() const override {
    return std::make_unique<ProductState>(*this);
  }

  [[nodiscard]] bool supports_assign() const override { return true; }

  void assign_from(const adt::ObjectState& other) override {
    const auto& o = dynamic_cast<const ProductState&>(other);
    adt::ObjectState::operator=(o);
    owner_ = o.owner_;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i]->supports_assign()) {
        states_[i]->assign_from(*o.states_[i]);
      } else {
        states_[i] = o.states_[i]->clone();
      }
    }
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      os << i << '{' << states_[i]->canonical() << '}';
    }
    return os.str();
  }

  void fingerprint_into(adt::FpHasher& h) const override {
    h.mix(11);  // composite tag, distinct from every component tag
    h.mix(states_.size());
    for (const auto& s : states_) s->fingerprint_into(h);
  }

 private:
  const ProductType* owner_;
  std::vector<std::unique_ptr<adt::ObjectState>> states_;
};

}  // namespace

ProductType::ProductType(std::vector<const adt::DataType*> components)
    : components_(std::move(components)) {
  if (components_.empty()) throw std::invalid_argument("ProductType: no components");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    for (const auto& spec : components_[i]->ops()) {
      adt::OpSpec qualified = spec;
      qualified.name = qualify(i, spec.name);
      ops_.push_back(std::move(qualified));
      dispatch_.push_back(SubOp{i, components_[i]->op_id(spec.name)});
    }
  }
}

std::string ProductType::name() const {
  std::ostringstream os;
  os << "product(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) os << ", ";
    os << components_[i]->name();
  }
  os << ")";
  return os.str();
}

std::unique_ptr<adt::ObjectState> ProductType::make_initial_state() const {
  return std::make_unique<ProductState>(*this);
}

std::vector<adt::Value> ProductType::sample_args(const std::string& op) const {
  const auto q = parse_qualified(op);
  return components_.at(q.object)->sample_args(q.op);
}

// ---------------------------------------------------------------------------
// CompositeProcess
// ---------------------------------------------------------------------------

/// Context adapter: stamps the sub-instance's object index into
/// Payload::chan on every outgoing message and timer; everything else passes
/// through to the real context.  The chan field exists for exactly this kind
/// of single-level multiplexing, so no envelope (and no allocation) is
/// needed -- a double wrap (chan already set) is a protocol bug and throws.
class CompositeProcess::SubContext final : public sim::Context {
 public:
  SubContext(sim::Context& outer, std::size_t object) : outer_(outer), object_(object) {}

  [[nodiscard]] sim::ProcId self() const override { return outer_.self(); }
  [[nodiscard]] int n() const override { return outer_.n(); }
  [[nodiscard]] const sim::ModelParams& params() const override { return outer_.params(); }
  [[nodiscard]] sim::Time local_time() const override { return outer_.local_time(); }

  void send(sim::ProcId dst, sim::Payload payload) override {
    outer_.send(dst, stamp(std::move(payload)));
  }
  void broadcast(sim::Payload payload) override { outer_.broadcast(stamp(std::move(payload))); }
  sim::TimerId set_timer(sim::Time delay, sim::Payload data) override {
    return outer_.set_timer(delay, stamp(std::move(data)));
  }
  void cancel_timer(sim::TimerId id) override { outer_.cancel_timer(id); }
  void respond(adt::Value ret) override { outer_.respond(std::move(ret)); }

 private:
  [[nodiscard]] sim::Payload stamp(sim::Payload p) const {
    if (p.chan != sim::Payload::kNoChan) {
      throw std::logic_error("composite: payload channel already in use (nested multiplexing)");
    }
    p.chan = static_cast<std::uint32_t>(object_);
    return p;
  }

  sim::Context& outer_;
  std::size_t object_;
};

CompositeProcess::CompositeProcess(const ProductType& product, const TimingPolicy& timing)
    : product_(product) {
  instances_.reserve(product.components().size());
  for (const auto* component : product.components()) {
    instances_.push_back(std::make_unique<AlgorithmOneProcess>(*component, timing));
  }
}

void CompositeProcess::on_invoke(sim::Context& ctx, const std::string& op,
                                 const adt::Value& arg) {
  const auto q = parse_qualified(op);
  SubContext sub(ctx, q.object);
  instances_.at(q.object)->on_invoke(sub, q.op, arg);
}

void CompositeProcess::on_message(sim::Context& ctx, sim::ProcId src,
                                  const sim::Payload& payload) {
  const auto object = static_cast<std::size_t>(payload.chan);
  sim::Payload inner = payload;  // strip the channel before forwarding
  inner.chan = sim::Payload::kNoChan;
  SubContext sub(ctx, object);
  instances_.at(object)->on_message(sub, src, inner);
}

void CompositeProcess::on_timer(sim::Context& ctx, sim::TimerId id, const sim::Payload& data) {
  const auto object = static_cast<std::size_t>(data.chan);
  sim::Payload inner = data;
  inner.chan = sim::Payload::kNoChan;
  SubContext sub(ctx, object);
  instances_.at(object)->on_timer(sub, id, inner);
}

std::vector<sim::OpRecord> restrict_to_object(const std::vector<sim::OpRecord>& ops,
                                              std::size_t object) {
  std::vector<sim::OpRecord> out;
  for (auto op : ops) {
    const auto q = parse_qualified(op.op);
    if (q.object != object) continue;
    op.op = q.op;
    op.op_id = adt::OpId{};  // product-level id; invalid against the component type
    out.push_back(std::move(op));
  }
  return out;
}

}  // namespace lintime::core
