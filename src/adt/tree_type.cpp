#include "adt/tree_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t {
  kInsertIdx = 0,
  kMoveIdx = 1,
  kRemoveIdx = 2,
  kDepthIdx = 3,
  kParentIdx = 4,
};

const OpTable& tree_table() {
  static const OpTable kTable{{
      {TreeType::kInsert, OpCategory::kPureMutator, /*takes_arg=*/true},
      {TreeType::kMove, OpCategory::kPureMutator, /*takes_arg=*/true},
      {TreeType::kRemove, OpCategory::kPureMutator, /*takes_arg=*/true},
      {TreeType::kDepth, OpCategory::kPureAccessor, /*takes_arg=*/true},
      {TreeType::kParent, OpCategory::kPureAccessor, /*takes_arg=*/true},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 5;

class TreeState final : public StateBase<TreeState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = tree_table().find(op);
    if (!id.valid()) throw std::invalid_argument("tree: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kInsertIdx:
        return attach(arg, /*reparent=*/false);
      case kMoveIdx:
        return attach(arg, /*reparent=*/true);
      case kRemoveIdx:
        return remove(arg);
      case kDepthIdx:
        return Value{depth_of(arg.as_int())};
      case kParentIdx:
        return Value{parent_of(arg.as_int())};
      default:
        throw std::invalid_argument("tree: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "tree:";
    for (const auto& [child, parent] : parent_) os << child << "<-" << parent << ',';
    return os.str();
  }

  void fingerprint_into(FpHasher& h) const override {
    // std::map iterates in child order -- deterministic, matching canonical().
    h.mix(kFpTag);
    h.mix(parent_.size());
    for (const auto& [child, parent] : parent_) {
      h.mix_int(child);
      h.mix_int(parent);
    }
  }

 private:
  Value attach(const Value& arg, bool reparent) {
    if (!arg.is_vec()) return Value::nil();
    const auto& vec = arg.as_vec();
    if (vec.size() != 2 || !vec[0].is_int() || !vec[1].is_int()) return Value::nil();
    const std::int64_t p = vec[0].as_int();
    const std::int64_t c = vec[1].as_int();
    if (c == TreeType::kRoot || !present(p)) return Value::nil();
    if (!reparent && present(c)) return Value::nil();  // first-wins insert
    // Reject attaching a node under itself or its own descendant, which
    // would create a cycle.
    for (std::int64_t a = p; a != TreeType::kRoot; a = parent_.at(a)) {
      if (a == c) return Value::nil();
    }
    parent_[c] = p;
    return Value::nil();
  }

  Value remove(const Value& arg) {
    if (!arg.is_int()) return Value::nil();
    const std::int64_t c = arg.as_int();
    if (c == TreeType::kRoot || !present(c) || has_children(c)) return Value::nil();
    parent_.erase(c);
    return Value::nil();
  }

  [[nodiscard]] bool present(std::int64_t node) const {
    return node == TreeType::kRoot || parent_.contains(node);
  }

  [[nodiscard]] bool has_children(std::int64_t node) const {
    for (const auto& [child, parent] : parent_) {
      (void)child;
      if (parent == node) return true;
    }
    return false;
  }

  [[nodiscard]] std::int64_t depth_of(std::int64_t node) const {
    if (!present(node)) return -1;
    std::int64_t depth = 0;
    for (std::int64_t a = node; a != TreeType::kRoot; a = parent_.at(a)) ++depth;
    return depth;
  }

  [[nodiscard]] std::int64_t parent_of(std::int64_t node) const {
    if (node == TreeType::kRoot || !present(node)) return -1;
    return parent_.at(node);
  }

  std::map<std::int64_t, std::int64_t> parent_;  // child -> parent
};

}  // namespace

const std::vector<OpSpec>& TreeType::ops() const { return tree_table().specs(); }

const OpTable& TreeType::table() const { return tree_table(); }

std::unique_ptr<ObjectState> TreeType::make_initial_state() const {
  return std::make_unique<TreeState>();
}

std::vector<Value> TreeType::sample_args(const std::string& op) const {
  if (op == kInsert) {
    // Edges that can form chains plus competing parents for the same child,
    // so the classifier can exhibit first-wins discriminators.
    return {edge(0, 1), edge(1, 2), edge(0, 3), edge(1, 3), edge(2, 3)};
  }
  if (op == kMove) {
    // Moves of one child (4) under parents at distinct depths (assuming a
    // chain 0->1->2->3 built by insert), exhibiting k-wise last-sensitivity;
    // plus a move of a second child (5) so the Theorem 5 witness search can
    // pair moves of distinct children.
    return {edge(0, 4), edge(1, 4), edge(2, 4), edge(3, 4), edge(0, 5)};
  }
  // depth / parent / remove probe the whole small node universe, including
  // node 5 (reachable only via move), so discriminator searches can tell
  // states apart by any node's position.
  return {Value{0}, Value{1}, Value{2}, Value{3}, Value{4}, Value{5}};
}

}  // namespace lintime::adt
