#include "adt/rmw_register_type.hpp"

#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t { kReadIdx = 0, kWriteIdx = 1, kFetchAddIdx = 2, kSwapIdx = 3 };

const OpTable& rmw_table() {
  static const OpTable kTable{{
      {RmwRegisterType::kRead, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {RmwRegisterType::kWrite, OpCategory::kPureMutator, /*takes_arg=*/true},
      {RmwRegisterType::kFetchAdd, OpCategory::kMixed, /*takes_arg=*/true},
      {RmwRegisterType::kSwap, OpCategory::kMixed, /*takes_arg=*/true},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 2;

class RmwRegisterState final : public StateBase<RmwRegisterState> {
 public:
  explicit RmwRegisterState(std::int64_t v) : value_(v) {}

  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = rmw_table().find(op);
    if (!id.valid()) throw std::invalid_argument("rmw_register: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kReadIdx:
        return Value{value_};
      case kWriteIdx:
        value_ = arg.as_int();
        return Value::nil();
      case kFetchAddIdx: {
        const std::int64_t old = value_;
        value_ += arg.as_int();
        return Value{old};
      }
      case kSwapIdx: {
        const std::int64_t old = value_;
        value_ = arg.as_int();
        return Value{old};
      }
      default:
        throw std::invalid_argument("rmw_register: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override { return "rmw:" + std::to_string(value_); }

  void fingerprint_into(FpHasher& h) const override {
    h.mix(kFpTag);
    h.mix_int(value_);
  }

 private:
  std::int64_t value_;
};

}  // namespace

const std::vector<OpSpec>& RmwRegisterType::ops() const { return rmw_table().specs(); }

const OpTable& RmwRegisterType::table() const { return rmw_table(); }

std::unique_ptr<ObjectState> RmwRegisterType::make_initial_state() const {
  return std::make_unique<RmwRegisterState>(initial_);
}

}  // namespace lintime::adt
