#include "adt/rmw_register_type.hpp"

#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

class RmwRegisterState final : public StateBase<RmwRegisterState> {
 public:
  explicit RmwRegisterState(std::int64_t v) : value_(v) {}

  Value apply(const std::string& op, const Value& arg) override {
    if (op == RmwRegisterType::kRead) return Value{value_};
    if (op == RmwRegisterType::kWrite) {
      value_ = arg.as_int();
      return Value::nil();
    }
    if (op == RmwRegisterType::kFetchAdd) {
      const std::int64_t old = value_;
      value_ += arg.as_int();
      return Value{old};
    }
    if (op == RmwRegisterType::kSwap) {
      const std::int64_t old = value_;
      value_ = arg.as_int();
      return Value{old};
    }
    throw std::invalid_argument("rmw_register: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override { return "rmw:" + std::to_string(value_); }

 private:
  std::int64_t value_;
};

}  // namespace

const std::vector<OpSpec>& RmwRegisterType::ops() const {
  static const std::vector<OpSpec> kOps = {
      {kRead, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {kWrite, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kFetchAdd, OpCategory::kMixed, /*takes_arg=*/true},
      {kSwap, OpCategory::kMixed, /*takes_arg=*/true},
  };
  return kOps;
}

std::unique_ptr<ObjectState> RmwRegisterType::make_initial_state() const {
  return std::make_unique<RmwRegisterState>(initial_);
}

}  // namespace lintime::adt
