#include "adt/queue_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

// OpId indices into the table below; keep in sync with the spec order.
enum : std::uint32_t { kEnqueueIdx = 0, kDequeueIdx = 1, kPeekIdx = 2 };

const OpTable& queue_table() {
  static const OpTable kTable{{
      {QueueType::kEnqueue, OpCategory::kPureMutator, /*takes_arg=*/true},
      {QueueType::kDequeue, OpCategory::kMixed, /*takes_arg=*/false},
      {QueueType::kPeek, OpCategory::kPureAccessor, /*takes_arg=*/false},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 3;  // distinct per shipped type

class QueueState final : public StateBase<QueueState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = queue_table().find(op);
    if (!id.valid()) throw std::invalid_argument("queue: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kEnqueueIdx:
        items_.push_back(arg.as_int());
        return Value::nil();
      case kDequeueIdx: {
        if (items_.empty()) return Value::nil();
        const std::int64_t head = items_.front();
        items_.pop_front();
        return Value{head};
      }
      case kPeekIdx:
        if (items_.empty()) return Value::nil();
        return Value{items_.front()};
      default:
        throw std::invalid_argument("queue: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "queue:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

  void fingerprint_into(FpHasher& h) const override {
    h.mix(kFpTag);
    h.mix(items_.size());
    for (const auto v : items_) h.mix_int(v);
  }

 private:
  std::deque<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& QueueType::ops() const { return queue_table().specs(); }

const OpTable& QueueType::table() const { return queue_table(); }

std::unique_ptr<ObjectState> QueueType::make_initial_state() const {
  return std::make_unique<QueueState>();
}

}  // namespace lintime::adt
