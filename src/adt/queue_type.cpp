#include "adt/queue_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

class QueueState final : public StateBase<QueueState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    if (op == QueueType::kEnqueue) {
      items_.push_back(arg.as_int());
      return Value::nil();
    }
    if (op == QueueType::kDequeue) {
      if (items_.empty()) return Value::nil();
      const std::int64_t head = items_.front();
      items_.pop_front();
      return Value{head};
    }
    if (op == QueueType::kPeek) {
      if (items_.empty()) return Value::nil();
      return Value{items_.front()};
    }
    throw std::invalid_argument("queue: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "queue:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

 private:
  std::deque<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& QueueType::ops() const {
  static const std::vector<OpSpec> kOps = {
      {kEnqueue, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kDequeue, OpCategory::kMixed, /*takes_arg=*/false},
      {kPeek, OpCategory::kPureAccessor, /*takes_arg=*/false},
  };
  return kOps;
}

std::unique_ptr<ObjectState> QueueType::make_initial_state() const {
  return std::make_unique<QueueState>();
}

}  // namespace lintime::adt
