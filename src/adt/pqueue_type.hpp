#pragma once
// Min-priority queue -- added for the fast-path monitor work: it is the
// fifth type with a known O(n log n) linearizability monitor on
// unambiguous histories (arXiv:2410.04581), alongside register, set, queue
// and stack.  Taxonomy-wise it sits between queue and stack: insert is a
// commutative pure mutator (insertion order is irrelevant, only values
// matter), while extract_min is a mixed pair-free operation whose result is
// value- rather than time-ordered.
//
// Operations:
//   insert(v)     -> nil                          (pure mutator, commutative)
//   extract_min() -> smallest element, removed;   (mixed, pair-free)
//                    nil if empty
//   find_min()    -> smallest element; nil if     (pure accessor)
//                    empty

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class PriorityQueueType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "pqueue"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;
  [[nodiscard]] MonitorFamily monitor_family() const override {
    return MonitorFamily::kPriorityQueue;
  }

  static constexpr const char* kInsert = "insert";
  static constexpr const char* kExtractMin = "extract_min";
  static constexpr const char* kFindMin = "find_min";
};

}  // namespace lintime::adt
