#pragma once
// OpTable: the interning table behind adt::OpId.  One table per data type,
// built once from the type's OpSpec list; every name -> id resolution after
// that is a binary search over a handful of entries, and every id -> spec
// lookup is a vector index.  Tables are immutable after construction and
// contain no addresses or other run-varying data, so resolution order and
// results are fully deterministic.

#include <cstdint>
#include <string_view>
#include <vector>

#include "adt/op.hpp"

namespace lintime::adt {

class OpTable {
 public:
  OpTable() = default;

  /// Builds the table; throws std::invalid_argument on duplicate names.
  explicit OpTable(std::vector<OpSpec> specs);

  [[nodiscard]] const std::vector<OpSpec>& specs() const { return specs_; }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// Resolves a name; returns the invalid OpId when unknown.
  [[nodiscard]] OpId find(std::string_view name) const;

  /// Spec of a resolved id; throws std::out_of_range on an invalid or
  /// foreign id.
  [[nodiscard]] const OpSpec& spec(OpId id) const;

  [[nodiscard]] const std::string& name_of(OpId id) const { return spec(id).name; }

 private:
  std::vector<OpSpec> specs_;
  std::vector<std::uint32_t> by_name_;  ///< spec indices, sorted by name
};

}  // namespace lintime::adt
