#include "adt/pqueue_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t { kInsertIdx = 0, kExtractMinIdx = 1, kFindMinIdx = 2 };

const OpTable& pqueue_table() {
  static const OpTable kTable{{
      {PriorityQueueType::kInsert, OpCategory::kPureMutator, /*takes_arg=*/true},
      {PriorityQueueType::kExtractMin, OpCategory::kMixed, /*takes_arg=*/false},
      {PriorityQueueType::kFindMin, OpCategory::kPureAccessor, /*takes_arg=*/false},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 11;

// A multiset: duplicate inserts are legal (the fast monitor's unambiguity
// precondition rules them out, but the sequential spec does not).
class PQueueState final : public StateBase<PQueueState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = pqueue_table().find(op);
    if (!id.valid()) throw std::invalid_argument("pqueue: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kInsertIdx:
        items_.insert(arg.as_int());
        return Value::nil();
      case kExtractMinIdx: {
        if (items_.empty()) return Value::nil();
        const auto it = items_.begin();
        const std::int64_t v = *it;
        items_.erase(it);
        return Value{v};
      }
      case kFindMinIdx:
        if (items_.empty()) return Value::nil();
        return Value{*items_.begin()};
      default:
        throw std::invalid_argument("pqueue: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "pqueue:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

  void fingerprint_into(FpHasher& h) const override {
    // std::multiset iterates in value order -- deterministic, matching
    // canonical().
    h.mix(kFpTag);
    h.mix(items_.size());
    for (const auto v : items_) h.mix_int(v);
  }

 private:
  std::multiset<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& PriorityQueueType::ops() const { return pqueue_table().specs(); }

const OpTable& PriorityQueueType::table() const { return pqueue_table(); }

std::unique_ptr<ObjectState> PriorityQueueType::make_initial_state() const {
  return std::make_unique<PQueueState>();
}

}  // namespace lintime::adt
