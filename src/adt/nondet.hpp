#pragma once
// Non-deterministic data types -- the paper's future-work direction
// (Section 6.2): "a Set data type could support the extraction of an
// arbitrary element".
//
// A non-deterministic type relaxes the Determinism constraint of
// Section 2.1: after a legal sequence, an invocation may have SEVERAL legal
// (return value, successor state) outcomes.  Implementations still have to
// pick one (replicas resolve the choice deterministically so they agree; see
// adt/pool_type.hpp), but correctness is judged against the relaxed
// specification by lin/nondet_checker.hpp, which accepts any history
// explainable by SOME resolution of the choices.

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "adt/op.hpp"
#include "adt/value.hpp"

namespace lintime::adt {

/// One legal outcome of an invocation: its return value and the state that
/// results.
struct Outcome {
  Value ret;
  std::unique_ptr<ObjectState> state;
};

/// Specification of a non-deterministic data type.  `outcomes` enumerates
/// every legal outcome; Completeness requires at least one for every
/// invocation from every reachable state.
class NondetDataType {
 public:
  virtual ~NondetDataType() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual const std::vector<OpSpec>& ops() const = 0;
  [[nodiscard]] virtual std::unique_ptr<ObjectState> make_initial_state() const = 0;

  /// All legal outcomes of (op, arg) from `state` (`state` is not mutated).
  [[nodiscard]] virtual std::vector<Outcome> outcomes(const ObjectState& state,
                                                      const std::string& op,
                                                      const Value& arg) const = 0;
};

}  // namespace lintime::adt
