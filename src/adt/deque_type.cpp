#include "adt/deque_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t {
  kPushFrontIdx = 0,
  kPushBackIdx = 1,
  kPopFrontIdx = 2,
  kPopBackIdx = 3,
  kFrontIdx = 4,
  kBackIdx = 5,
};

const OpTable& deque_table() {
  static const OpTable kTable{{
      {DequeType::kPushFront, OpCategory::kPureMutator, /*takes_arg=*/true},
      {DequeType::kPushBack, OpCategory::kPureMutator, /*takes_arg=*/true},
      {DequeType::kPopFront, OpCategory::kMixed, /*takes_arg=*/false},
      {DequeType::kPopBack, OpCategory::kMixed, /*takes_arg=*/false},
      {DequeType::kFront, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {DequeType::kBack, OpCategory::kPureAccessor, /*takes_arg=*/false},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 9;

class DequeState final : public StateBase<DequeState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = deque_table().find(op);
    if (!id.valid()) throw std::invalid_argument("deque: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kPushFrontIdx:
        items_.push_front(arg.as_int());
        return Value::nil();
      case kPushBackIdx:
        items_.push_back(arg.as_int());
        return Value::nil();
      case kPopFrontIdx: {
        if (items_.empty()) return Value::nil();
        const std::int64_t v = items_.front();
        items_.pop_front();
        return Value{v};
      }
      case kPopBackIdx: {
        if (items_.empty()) return Value::nil();
        const std::int64_t v = items_.back();
        items_.pop_back();
        return Value{v};
      }
      case kFrontIdx:
        return items_.empty() ? Value::nil() : Value{items_.front()};
      case kBackIdx:
        return items_.empty() ? Value::nil() : Value{items_.back()};
      default:
        throw std::invalid_argument("deque: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "deque:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

  void fingerprint_into(FpHasher& h) const override {
    h.mix(kFpTag);
    h.mix(items_.size());
    for (const auto v : items_) h.mix_int(v);
  }

 private:
  std::deque<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& DequeType::ops() const { return deque_table().specs(); }

const OpTable& DequeType::table() const { return deque_table(); }

std::unique_ptr<ObjectState> DequeType::make_initial_state() const {
  return std::make_unique<DequeState>();
}

}  // namespace lintime::adt
