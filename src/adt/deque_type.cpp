#include "adt/deque_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

class DequeState final : public StateBase<DequeState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    if (op == DequeType::kPushFront) {
      items_.push_front(arg.as_int());
      return Value::nil();
    }
    if (op == DequeType::kPushBack) {
      items_.push_back(arg.as_int());
      return Value::nil();
    }
    if (op == DequeType::kPopFront) {
      if (items_.empty()) return Value::nil();
      const std::int64_t v = items_.front();
      items_.pop_front();
      return Value{v};
    }
    if (op == DequeType::kPopBack) {
      if (items_.empty()) return Value::nil();
      const std::int64_t v = items_.back();
      items_.pop_back();
      return Value{v};
    }
    if (op == DequeType::kFront) {
      return items_.empty() ? Value::nil() : Value{items_.front()};
    }
    if (op == DequeType::kBack) {
      return items_.empty() ? Value::nil() : Value{items_.back()};
    }
    throw std::invalid_argument("deque: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "deque:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

 private:
  std::deque<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& DequeType::ops() const {
  static const std::vector<OpSpec> kOps = {
      {kPushFront, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kPushBack, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kPopFront, OpCategory::kMixed, /*takes_arg=*/false},
      {kPopBack, OpCategory::kMixed, /*takes_arg=*/false},
      {kFront, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {kBack, OpCategory::kPureAccessor, /*takes_arg=*/false},
  };
  return kOps;
}

std::unique_ptr<ObjectState> DequeType::make_initial_state() const {
  return std::make_unique<DequeState>();
}

}  // namespace lintime::adt
