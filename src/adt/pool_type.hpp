#pragma once
// Pool (bag): the concrete non-deterministic type of the paper's future-work
// discussion.  Operations:
//   put(v)  -> nil                          (pure mutator, commutative)
//   take()  -> SOME element, removed;       (mixed; non-deterministic in the
//              nil if empty                  spec, resolved to the smallest
//                                            element in the implementation)
//   size()  -> multiset cardinality         (pure accessor)
//
// Two views of the same object:
//   * PoolType       -- a plain (deterministic) DataType whose take() removes
//     the smallest element.  This is the resolution every replica applies,
//     so Algorithm 1 runs it unchanged and replicas agree.
//   * PoolNondetSpec -- the relaxed NondetDataType under which take() may
//     remove any element.  The non-deterministic checker validates runs
//     against this spec; every run correct under PoolType is correct under
//     the spec, but the spec also admits behaviours no deterministic
//     resolution could produce -- the freedom the paper conjectures could be
//     traded for speed.

#include <map>

#include "adt/data_type.hpp"
#include "adt/nondet.hpp"

namespace lintime::adt {

class PoolType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "pool"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;

  static constexpr const char* kPut = "put";
  static constexpr const char* kTake = "take";
  static constexpr const char* kSize = "size";
};

class PoolNondetSpec final : public NondetDataType {
 public:
  [[nodiscard]] std::string name() const override { return "pool/nondet"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;
  [[nodiscard]] std::vector<Outcome> outcomes(const ObjectState& state, const std::string& op,
                                              const Value& arg) const override;
};

}  // namespace lintime::adt
