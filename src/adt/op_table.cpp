#include "adt/op_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace lintime::adt {

OpTable::OpTable(std::vector<OpSpec> specs) : specs_(std::move(specs)) {
  by_name_.resize(specs_.size());
  for (std::uint32_t i = 0; i < specs_.size(); ++i) by_name_[i] = i;
  std::sort(by_name_.begin(), by_name_.end(), [this](std::uint32_t a, std::uint32_t b) {
    return specs_[a].name < specs_[b].name;
  });
  for (std::size_t k = 1; k < by_name_.size(); ++k) {
    if (specs_[by_name_[k - 1]].name == specs_[by_name_[k]].name) {
      throw std::invalid_argument("OpTable: duplicate operation name '" +
                                  specs_[by_name_[k]].name + "'");
    }
  }
}

OpId OpTable::find(std::string_view name) const {
  auto lo = by_name_.begin();
  auto hi = by_name_.end();
  while (lo != hi) {
    const auto mid = lo + (hi - lo) / 2;
    const std::string& candidate = specs_[*mid].name;
    if (candidate == name) return OpId{*mid};
    if (candidate < name) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return OpId{};
}

const OpSpec& OpTable::spec(OpId id) const {
  if (!id.valid() || id.index() >= specs_.size()) {
    throw std::out_of_range("OpTable: id out of range");
  }
  return specs_[id.index()];
}

}  // namespace lintime::adt
