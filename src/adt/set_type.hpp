#pragma once
// Integer set -- an extra type beyond the paper's tables, included because
// its mutators are *commutative* (add/remove of distinct elements), making it
// a contrast case for the taxonomy: add is transposable but NOT
// last-sensitive, so Theorem 3 does not apply and only the generic bounds do.
//
// Operations:
//   add(v)      -> nil                    (pure mutator, commutative)
//   erase(v)    -> nil                    (pure mutator, commutative)
//   contains(v) -> 0/1                    (pure accessor)
//   size()      -> cardinality            (pure accessor)
//   add_if_absent(v) -> 1 if inserted, 0 if already present   (mixed)

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class SetType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "set"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;
  [[nodiscard]] MonitorFamily monitor_family() const override { return MonitorFamily::kSet; }

  static constexpr const char* kAdd = "add";
  static constexpr const char* kErase = "erase";
  static constexpr const char* kContains = "contains";
  static constexpr const char* kSize = "size";
  static constexpr const char* kAddIfAbsent = "add_if_absent";
};

}  // namespace lintime::adt
