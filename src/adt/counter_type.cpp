#include "adt/counter_type.hpp"

#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

class CounterState final : public StateBase<CounterState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    if (op == CounterType::kInc) {
      value_ += arg.as_int();
      return Value::nil();
    }
    if (op == CounterType::kRead) return Value{value_};
    if (op == CounterType::kFetchInc) {
      const std::int64_t old = value_;
      ++value_;
      return Value{old};
    }
    throw std::invalid_argument("counter: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override { return "ctr:" + std::to_string(value_); }

 private:
  std::int64_t value_ = 0;
};

}  // namespace

const std::vector<OpSpec>& CounterType::ops() const {
  static const std::vector<OpSpec> kOps = {
      {kInc, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kRead, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {kFetchInc, OpCategory::kMixed, /*takes_arg=*/false},
  };
  return kOps;
}

std::unique_ptr<ObjectState> CounterType::make_initial_state() const {
  return std::make_unique<CounterState>();
}

}  // namespace lintime::adt
