#include "adt/counter_type.hpp"

#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t { kIncIdx = 0, kReadIdx = 1, kFetchIncIdx = 2 };

const OpTable& counter_table() {
  static const OpTable kTable{{
      {CounterType::kInc, OpCategory::kPureMutator, /*takes_arg=*/true},
      {CounterType::kRead, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {CounterType::kFetchInc, OpCategory::kMixed, /*takes_arg=*/false},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 7;

class CounterState final : public StateBase<CounterState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = counter_table().find(op);
    if (!id.valid()) throw std::invalid_argument("counter: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kIncIdx:
        value_ += arg.as_int();
        return Value::nil();
      case kReadIdx:
        return Value{value_};
      case kFetchIncIdx: {
        const std::int64_t old = value_;
        ++value_;
        return Value{old};
      }
      default:
        throw std::invalid_argument("counter: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override { return "ctr:" + std::to_string(value_); }

  void fingerprint_into(FpHasher& h) const override {
    h.mix(kFpTag);
    h.mix_int(value_);
  }

 private:
  std::int64_t value_ = 0;
};

}  // namespace

const std::vector<OpSpec>& CounterType::ops() const { return counter_table().specs(); }

const OpTable& CounterType::table() const { return counter_table(); }

std::unique_ptr<ObjectState> CounterType::make_initial_state() const {
  return std::make_unique<CounterState>();
}

}  // namespace lintime::adt
