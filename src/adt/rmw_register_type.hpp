#pragma once
// Read-Modify-Write register (Table 1 of the paper).
//
// Operations:
//   read()       -> current value                       (pure accessor)
//   write(v)     -> nil, sets value                     (pure mutator)
//   fetch_add(k) -> old value, sets old+k               (mixed, pair-free)
//   swap(v)      -> old value, sets v                   (mixed, pair-free,
//                                                        overwriting mutator)
//
// fetch_add and swap are the "atomic mutator/accessor Read-Modify-Write"
// operations the paper's Table 1 proves the d + min{eps, u, d/3} lower bound
// for (Theorem 4) and the d + eps upper bound for (Algorithm 1, OOP class).

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class RmwRegisterType final : public DataType {
 public:
  explicit RmwRegisterType(std::int64_t initial = 0) : initial_(initial) {}

  [[nodiscard]] std::string name() const override { return "rmw_register"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;
  /// Restricted to read/write (the only ops the register family supports),
  /// an RMW register *is* a register; fetch_add/swap histories fall back.
  [[nodiscard]] MonitorFamily monitor_family() const override { return MonitorFamily::kRegister; }

  static constexpr const char* kRead = "read";
  static constexpr const char* kWrite = "write";
  static constexpr const char* kFetchAdd = "fetch_add";
  static constexpr const char* kSwap = "swap";

 private:
  std::int64_t initial_;
};

}  // namespace lintime::adt
