#include "adt/set_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t {
  kAddIdx = 0,
  kEraseIdx = 1,
  kContainsIdx = 2,
  kSizeIdx = 3,
  kAddIfAbsentIdx = 4,
};

const OpTable& set_table() {
  static const OpTable kTable{{
      {SetType::kAdd, OpCategory::kPureMutator, /*takes_arg=*/true},
      {SetType::kErase, OpCategory::kPureMutator, /*takes_arg=*/true},
      {SetType::kContains, OpCategory::kPureAccessor, /*takes_arg=*/true},
      {SetType::kSize, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {SetType::kAddIfAbsent, OpCategory::kMixed, /*takes_arg=*/true},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 6;

class SetState final : public StateBase<SetState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = set_table().find(op);
    if (!id.valid()) throw std::invalid_argument("set: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kAddIdx:
        items_.insert(arg.as_int());
        return Value::nil();
      case kEraseIdx:
        items_.erase(arg.as_int());
        return Value::nil();
      case kContainsIdx:
        return Value{items_.contains(arg.as_int()) ? 1 : 0};
      case kSizeIdx:
        return Value{static_cast<std::int64_t>(items_.size())};
      case kAddIfAbsentIdx: {
        const auto [it, inserted] = items_.insert(arg.as_int());
        (void)it;
        return Value{inserted ? 1 : 0};
      }
      default:
        throw std::invalid_argument("set: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "set:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

  void fingerprint_into(FpHasher& h) const override {
    // std::set iterates in value order -- deterministic, matching canonical().
    h.mix(kFpTag);
    h.mix(items_.size());
    for (const auto v : items_) h.mix_int(v);
  }

 private:
  std::set<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& SetType::ops() const { return set_table().specs(); }

const OpTable& SetType::table() const { return set_table(); }

std::unique_ptr<ObjectState> SetType::make_initial_state() const {
  return std::make_unique<SetState>();
}

}  // namespace lintime::adt
