#include "adt/set_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

class SetState final : public StateBase<SetState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    if (op == SetType::kAdd) {
      items_.insert(arg.as_int());
      return Value::nil();
    }
    if (op == SetType::kErase) {
      items_.erase(arg.as_int());
      return Value::nil();
    }
    if (op == SetType::kContains) {
      return Value{items_.contains(arg.as_int()) ? 1 : 0};
    }
    if (op == SetType::kSize) {
      return Value{static_cast<std::int64_t>(items_.size())};
    }
    if (op == SetType::kAddIfAbsent) {
      const auto [it, inserted] = items_.insert(arg.as_int());
      (void)it;
      return Value{inserted ? 1 : 0};
    }
    throw std::invalid_argument("set: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "set:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

 private:
  std::set<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& SetType::ops() const {
  static const std::vector<OpSpec> kOps = {
      {kAdd, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kErase, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kContains, OpCategory::kPureAccessor, /*takes_arg=*/true},
      {kSize, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {kAddIfAbsent, OpCategory::kMixed, /*takes_arg=*/true},
  };
  return kOps;
}

std::unique_ptr<ObjectState> SetType::make_initial_state() const {
  return std::make_unique<SetState>();
}

}  // namespace lintime::adt
