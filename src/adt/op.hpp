#pragma once
// Operation metadata: names, declared classification, interned operation
// identities, and operation instances (invocation + response pairs) as
// defined in Section 2.1 of the paper.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "adt/value.hpp"

namespace lintime::adt {

/// Interned identity of one operation of one data type: its position in the
/// type's OpTable (== its index in DataType::ops()).  Resolved from the
/// operation name once, at the edge of a computation, so hot paths (the
/// simulator kernel, Algorithm 1's replicas, the linearizability checkers)
/// dispatch and compare on a 32-bit integer instead of a std::string.
///
/// An OpId is only meaningful relative to the DataType that issued it; the
/// default-constructed id is invalid ("not resolved").
class OpId {
 public:
  constexpr OpId() = default;
  constexpr explicit OpId(std::uint32_t index) : index_(index) {}

  [[nodiscard]] constexpr std::uint32_t index() const { return index_; }
  [[nodiscard]] constexpr bool valid() const { return index_ != kInvalid; }

  friend constexpr bool operator==(OpId a, OpId b) { return a.index_ == b.index_; }
  friend constexpr bool operator!=(OpId a, OpId b) { return a.index_ != b.index_; }
  friend constexpr bool operator<(OpId a, OpId b) { return a.index_ < b.index_; }

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffU;
  std::uint32_t index_ = kInvalid;
};

/// The coarse classification used by Algorithm 1 (Section 5.1): every
/// operation of every type is a pure accessor (AOP), a pure mutator (MOP) or
/// both accessor and mutator (OOP, "other"/mixed).
enum class OpCategory {
  kPureAccessor,  ///< observes but never changes the state (e.g. Read, Peek)
  kPureMutator,   ///< changes but never observes the state (e.g. Write, Enqueue)
  kMixed,         ///< both accessor and mutator (e.g. Read-Modify-Write, Dequeue)
};

[[nodiscard]] constexpr const char* to_string(OpCategory c) {
  switch (c) {
    case OpCategory::kPureAccessor: return "AOP";
    case OpCategory::kPureMutator: return "MOP";
    case OpCategory::kMixed: return "OOP";
  }
  return "?";
}

/// Static description of one operation of a data type.
struct OpSpec {
  std::string name;     ///< e.g. "enqueue"
  OpCategory category;  ///< declared AOP/MOP/OOP class (validated empirically
                        ///< by the classifier in adt/classify.hpp)
  bool takes_arg = false;  ///< whether the invocation carries an argument

  [[nodiscard]] bool is_accessor() const { return category != OpCategory::kPureMutator; }
  [[nodiscard]] bool is_mutator() const { return category != OpCategory::kPureAccessor; }
};

/// An operation *instance*: an invocation bundled with its matching response,
/// written OP(arg, ret) in the paper.
struct Instance {
  std::string op;
  Value arg;
  Value ret;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.op == b.op && a.arg == b.arg && a.ret == b.ret;
  }

  [[nodiscard]] std::string to_string() const {
    return op + "(" + arg.to_string() + ", " + ret.to_string() + ")";
  }
};

/// A sequence of operation instances (the paper's rho / pi).
using Sequence = std::vector<Instance>;

[[nodiscard]] std::string to_string(const Sequence& seq);

}  // namespace lintime::adt

template <>
struct std::hash<lintime::adt::OpId> {
  std::size_t operator()(lintime::adt::OpId id) const noexcept { return id.index(); }
};
