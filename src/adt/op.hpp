#pragma once
// Operation metadata: names, declared classification, and operation
// instances (invocation + response pairs) as defined in Section 2.1 of the
// paper.

#include <optional>
#include <string>
#include <vector>

#include "adt/value.hpp"

namespace lintime::adt {

/// The coarse classification used by Algorithm 1 (Section 5.1): every
/// operation of every type is a pure accessor (AOP), a pure mutator (MOP) or
/// both accessor and mutator (OOP, "other"/mixed).
enum class OpCategory {
  kPureAccessor,  ///< observes but never changes the state (e.g. Read, Peek)
  kPureMutator,   ///< changes but never observes the state (e.g. Write, Enqueue)
  kMixed,         ///< both accessor and mutator (e.g. Read-Modify-Write, Dequeue)
};

[[nodiscard]] constexpr const char* to_string(OpCategory c) {
  switch (c) {
    case OpCategory::kPureAccessor: return "AOP";
    case OpCategory::kPureMutator: return "MOP";
    case OpCategory::kMixed: return "OOP";
  }
  return "?";
}

/// Static description of one operation of a data type.
struct OpSpec {
  std::string name;     ///< e.g. "enqueue"
  OpCategory category;  ///< declared AOP/MOP/OOP class (validated empirically
                        ///< by the classifier in adt/classify.hpp)
  bool takes_arg = false;  ///< whether the invocation carries an argument

  [[nodiscard]] bool is_accessor() const { return category != OpCategory::kPureMutator; }
  [[nodiscard]] bool is_mutator() const { return category != OpCategory::kPureAccessor; }
};

/// An operation *instance*: an invocation bundled with its matching response,
/// written OP(arg, ret) in the paper.
struct Instance {
  std::string op;
  Value arg;
  Value ret;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.op == b.op && a.arg == b.arg && a.ret == b.ret;
  }

  [[nodiscard]] std::string to_string() const {
    return op + "(" + arg.to_string() + ", " + ret.to_string() + ")";
  }
};

/// A sequence of operation instances (the paper's rho / pi).
using Sequence = std::vector<Instance>;

[[nodiscard]] std::string to_string(const Sequence& seq);

}  // namespace lintime::adt
