#include "adt/max_register_type.hpp"

#include <algorithm>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t { kWriteMaxIdx = 0, kReadIdx = 1 };

const OpTable& max_register_table() {
  static const OpTable kTable{{
      {MaxRegisterType::kWriteMax, OpCategory::kPureMutator, /*takes_arg=*/true},
      {MaxRegisterType::kRead, OpCategory::kPureAccessor, /*takes_arg=*/false},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 8;

class MaxRegisterState final : public StateBase<MaxRegisterState> {
 public:
  explicit MaxRegisterState(std::int64_t v) : value_(v) {}

  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = max_register_table().find(op);
    if (!id.valid()) throw std::invalid_argument("max_register: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kWriteMaxIdx:
        value_ = std::max(value_, arg.as_int());
        return Value::nil();
      case kReadIdx:
        return Value{value_};
      default:
        throw std::invalid_argument("max_register: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override {
    return "maxreg:" + std::to_string(value_);
  }

  void fingerprint_into(FpHasher& h) const override {
    h.mix(kFpTag);
    h.mix_int(value_);
  }

 private:
  std::int64_t value_;
};

}  // namespace

const std::vector<OpSpec>& MaxRegisterType::ops() const { return max_register_table().specs(); }

const OpTable& MaxRegisterType::table() const { return max_register_table(); }

std::unique_ptr<ObjectState> MaxRegisterType::make_initial_state() const {
  return std::make_unique<MaxRegisterState>(initial_);
}

}  // namespace lintime::adt
