#include "adt/max_register_type.hpp"

#include <algorithm>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

class MaxRegisterState final : public StateBase<MaxRegisterState> {
 public:
  explicit MaxRegisterState(std::int64_t v) : value_(v) {}

  Value apply(const std::string& op, const Value& arg) override {
    if (op == MaxRegisterType::kWriteMax) {
      value_ = std::max(value_, arg.as_int());
      return Value::nil();
    }
    if (op == MaxRegisterType::kRead) return Value{value_};
    throw std::invalid_argument("max_register: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override {
    return "maxreg:" + std::to_string(value_);
  }

 private:
  std::int64_t value_;
};

}  // namespace

const std::vector<OpSpec>& MaxRegisterType::ops() const {
  static const std::vector<OpSpec> kOps = {
      {kWriteMax, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kRead, OpCategory::kPureAccessor, /*takes_arg=*/false},
  };
  return kOps;
}

std::unique_ptr<ObjectState> MaxRegisterType::make_initial_state() const {
  return std::make_unique<MaxRegisterState>(initial_);
}

}  // namespace lintime::adt
