#pragma once
// Shared counter -- second contrast case: its pure mutator is commutative
// (increments), and fetch_inc is a pair-free mixed operation, making the
// counter the minimal type exercising both ends of the taxonomy.
//
// Operations:
//   inc(k)      -> nil, adds k             (pure mutator, commutative)
//   read()      -> current value           (pure accessor)
//   fetch_inc() -> old value, adds 1       (mixed, pair-free)

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class CounterType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "counter"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;

  static constexpr const char* kInc = "inc";
  static constexpr const char* kRead = "read";
  static constexpr const char* kFetchInc = "fetch_inc";
};

}  // namespace lintime::adt
