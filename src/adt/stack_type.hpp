#pragma once
// LIFO stack (Table 3 of the paper).
//
// Operations:
//   push(v) -> nil                            (pure mutator, transposable,
//                                              last-sensitive)
//   pop()   -> top, removed; nil if empty     (mixed, pair-free)
//   peek()  -> top; nil if empty              (pure accessor)
//
// Unlike the queue, push/peek does NOT satisfy Theorem 5's discriminator
// preconditions: in a push/peek-only run, peek depends solely on the last
// push, as if push were an overwriter (see the discussion before Theorem 5).

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class StackType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "stack"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;
  [[nodiscard]] MonitorFamily monitor_family() const override { return MonitorFamily::kStack; }

  static constexpr const char* kPush = "push";
  static constexpr const char* kPop = "pop";
  static constexpr const char* kPeek = "peek";
};

}  // namespace lintime::adt
