#pragma once
// Empirical classifier for the paper's algebraic taxonomy (Sections 2.1,
// 3.2 and 4.2): mutator, accessor, pure mutator/accessor, overwriter,
// transposable, last-sensitive, pair-free -- decided by bounded exhaustive
// search over the data type's reachable states and sample instances.
//
// Existential properties (mutator, accessor, last-sensitive, pair-free) are
// certified by an explicit witness; a `true` verdict is sound.  Universal
// properties (overwriter, transposable) are checked for counterexamples over
// the bounded pool; a `false` verdict is sound (we report the
// counterexample), while `true` means "no counterexample within the bound".
// For every type shipped in this library the bounds are large enough that
// the verdicts coincide with pen-and-paper classification; the unit tests in
// tests/adt/classify_test.cpp pin all of them.

#include <optional>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

/// Search bounds for the classifier.
struct ClassifierOptions {
  int max_prefix_len = 3;       ///< BFS depth for candidate prefixes rho
  int max_last_sensitive_k = 4; ///< largest k tried for last-sensitivity
};

/// Result of classifying one operation.
struct Classification {
  std::string op;

  bool mutator = false;
  bool accessor = false;
  bool overwriter = false;    ///< only meaningful when mutator
  bool transposable = false;
  int last_sensitive_k = 0;   ///< largest k <= bound with a witness (0: none)
  bool pair_free = false;

  [[nodiscard]] bool pure_mutator() const { return mutator && !accessor; }
  [[nodiscard]] bool pure_accessor() const { return accessor && !mutator; }
  [[nodiscard]] bool mixed() const { return accessor && mutator; }

  /// The AOP/MOP/OOP category implied by the empirical verdicts.
  [[nodiscard]] OpCategory implied_category() const {
    if (pure_accessor()) return OpCategory::kPureAccessor;
    if (pure_mutator()) return OpCategory::kPureMutator;
    return OpCategory::kMixed;
  }

  /// Human-readable witness / counterexample notes for reports.
  std::string notes;
};

/// Classifies operation `op` of `type`.
[[nodiscard]] Classification classify_op(const DataType& type, const std::string& op,
                                         const ClassifierOptions& opts = {});

/// Classifies every operation of `type`.
[[nodiscard]] std::vector<Classification> classify_all(const DataType& type,
                                                       const ClassifierOptions& opts = {});

// ---------------------------------------------------------------------------
// Theorem 5 preconditions: discriminators.
// ---------------------------------------------------------------------------

/// A discriminator (Section 4.3): a pair of AOP instances with the same
/// argument but different return values telling two sequences apart.
struct Discriminator {
  Value arg;
  Value ret1;  ///< legal return after rho1
  Value ret2;  ///< legal return after rho2 (!= ret1)
};

/// Searches `aop`'s sample arguments for a discriminator between two legal
/// sequences.
[[nodiscard]] std::optional<Discriminator> find_discriminator(const DataType& type,
                                                              const Sequence& rho1,
                                                              const Sequence& rho2,
                                                              const std::string& aop);

/// A witness that (OP, AOP) satisfies the hypotheses of Theorem 5.
struct Theorem5Witness {
  Sequence rho;
  Instance op0;
  Instance op1;
  Discriminator disc_a;  ///< for (rho.op0, rho.op1.op0)
  Discriminator disc_b;  ///< for (rho.op1, rho.op0.op1)
  Discriminator disc_c;  ///< for (rho.op0.op1, rho.op1)
};

/// Searches for a Theorem 5 witness: a prefix rho and two distinct legal
/// instances of `op` such that `aop` discriminates all three sequence pairs
/// required by the theorem.  Returns nullopt if no witness exists within the
/// bounds (e.g. stack push/peek, where peek depends only on the last push).
[[nodiscard]] std::optional<Theorem5Witness> find_theorem5_witness(
    const DataType& type, const std::string& op, const std::string& aop,
    const ClassifierOptions& opts = {});

// ---------------------------------------------------------------------------
// Interference (Section 6.1): the generalized Lipton-Sandberg sum bound.
// ---------------------------------------------------------------------------

/// A witness that OP1 "interferes with" OP2: a prefix rho and instances
/// op1 of OP1 and op2 of OP2 such that op2's legal return value after rho
/// differs from its return value after rho.op1 (so op2 must learn about op1
/// to answer correctly, forcing |OP1| + |OP2| >= d).
struct InterferenceWitness {
  Sequence rho;
  Instance op1;      ///< the mutating instance
  Value arg2;        ///< op2's argument
  Value ret_before;  ///< op2's return after rho
  Value ret_after;   ///< op2's return after rho.op1 (!= ret_before)
};

/// Searches for an interference witness for the ordered pair (op1, op2).
[[nodiscard]] std::optional<InterferenceWitness> find_interference_witness(
    const DataType& type, const std::string& op1, const std::string& op2,
    const ClassifierOptions& opts = {});

}  // namespace lintime::adt
