#pragma once
// 128-bit state fingerprints for memoization.
//
// The linearizability checkers memoize search nodes on (placed-set, object
// state).  Building the state's canonical() string per node makes the search
// allocation-bound, so states instead stream their structure into an
// FpHasher and the checkers key on the resulting 128-bit Fingerprint.
// canonical() survives as the display form and as the collision verifier:
// the memo stores the canonical string alongside each fingerprint and only
// prunes when both match, so a fingerprint collision costs re-exploration,
// never a wrong verdict.
//
// Determinism contract (enforced by detlint): fingerprints are a pure
// function of the abstract state.  Mix only structural data -- tags, sizes,
// integers, string bytes -- never addresses, iteration order of unordered
// containers, or anything seed- or run-dependent.  Two lanes with distinct
// seeds and a splitmix64 finalizer keep the collision probability for the
// small states in this library negligible, and the canonical fallback makes
// even a collision harmless.

#include <cstdint>
#include <cstring>
#include <string_view>

namespace lintime::adt {

/// A 128-bit structural hash of an ObjectState.  Equality of fingerprints is
/// a (very high confidence) proxy for canonical() equality; the reverse
/// direction is exact by construction.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) { return !(a == b); }
};

/// Streaming two-lane mixer producing a Fingerprint.  Allocation-free: state
/// implementations call mix()/mix_bytes() as they walk their structure.
class FpHasher {
 public:
  FpHasher() = default;

  void mix(std::uint64_t v) {
    a_ = split(a_ ^ (v + kLaneA));
    b_ = split(b_ ^ (v + kLaneB));
  }

  void mix_int(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }

  /// Length-framed so that ("ab","c") and ("a","bc") stream differently.
  void mix_bytes(std::string_view s) {
    mix(s.size());
    std::uint64_t word = 0;
    std::size_t i = 0;
    for (; i + 8 <= s.size(); i += 8) {
      std::memcpy(&word, s.data() + i, 8);
      mix(word);
    }
    if (i < s.size()) {
      word = 0;
      std::memcpy(&word, s.data() + i, s.size() - i);
      mix(word);
    }
  }

  [[nodiscard]] Fingerprint finish() const { return {split(a_), split(b_)}; }

 private:
  // splitmix64 finalizer (public-domain constants); applied per mixed word
  // and once more at finish so trailing zero words still perturb both lanes.
  static constexpr std::uint64_t split(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31U);
  }

  static constexpr std::uint64_t kLaneA = 0x243f6a8885a308d3ULL;  // pi
  static constexpr std::uint64_t kLaneB = 0x13198a2e03707344ULL;  // pi, next

  std::uint64_t a_ = 0x6a09e667f3bcc908ULL;  // sqrt(2)
  std::uint64_t b_ = 0xbb67ae8584caa73bULL;  // sqrt(3)
};

}  // namespace lintime::adt
