#pragma once
// CRTP helper providing ObjectState::clone via the copy constructor, so each
// concrete state only implements apply() and canonical().

#include <memory>

#include "adt/data_type.hpp"

namespace lintime::adt {

template <typename Derived>
class StateBase : public ObjectState {
 public:
  [[nodiscard]] std::unique_ptr<ObjectState> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

}  // namespace lintime::adt
