#pragma once
// CRTP helper providing ObjectState::clone via the copy constructor and
// assign_from via the copy assignment, so each concrete state only
// implements apply() and canonical() (plus, optionally, the OpId apply and
// fingerprint_into fast paths).

#include <cstddef>
#include <memory>
#include <new>

#include "adt/data_type.hpp"

namespace lintime::adt {

template <typename Derived>
class StateBase : public ObjectState {
 public:
  [[nodiscard]] std::unique_ptr<ObjectState> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }

  [[nodiscard]] bool supports_assign() const final { return true; }

  [[nodiscard]] std::size_t self_size() const final { return sizeof(Derived); }
  [[nodiscard]] std::size_t self_align() const final { return alignof(Derived); }

  ObjectState* clone_into(void* mem) const final {
    return new (mem) Derived(static_cast<const Derived&>(*this));
  }

  /// Copy-assigns from `other`; throws std::bad_cast if the dynamic types
  /// differ (the checkers only pair states of one type, so this never fires
  /// in practice -- it is the cheap insurance against misuse).
  void assign_from(const ObjectState& other) final {
    static_cast<Derived&>(*this) = dynamic_cast<const Derived&>(other);
  }
};

}  // namespace lintime::adt
