#pragma once
// Double-ended queue: both of the paper's Table 2/3 objects in one.  The
// taxonomy is richer than either: push_back+front behaves like the queue's
// enqueue+peek (Theorem 5 discriminators exist), while push_front+front
// behaves like the stack's push+peek (they do not) -- the SAME accessor
// satisfies Theorem 5's hypotheses with one mutator and not the other.
//
// Operations:
//   push_front(v), push_back(v) -> nil     (pure mutators, last-sensitive)
//   pop_front(), pop_back() -> end value   (mixed, pair-free)
//   front(), back() -> end value           (pure accessors)

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class DequeType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "deque"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;

  static constexpr const char* kPushFront = "push_front";
  static constexpr const char* kPushBack = "push_back";
  static constexpr const char* kPopFront = "pop_front";
  static constexpr const char* kPopBack = "pop_back";
  static constexpr const char* kFront = "front";
  static constexpr const char* kBack = "back";
};

}  // namespace lintime::adt
