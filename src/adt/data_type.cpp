#include "adt/data_type.hpp"

#include <sstream>
#include <stdexcept>

namespace lintime::adt {

std::string to_string(const Sequence& seq) {
  std::ostringstream os;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) os << '.';
    os << seq[i].to_string();
  }
  return os.str();
}

Value ObjectState::apply(OpId id, const Value& arg) {
  if (table_ == nullptr) {
    throw std::logic_error(
        "ObjectState::apply(OpId): no OpTable bound; obtain states via "
        "DataType::initial_state()");
  }
  return apply(table_->name_of(id), arg);
}

void ObjectState::fingerprint_into(FpHasher& h) const { h.mix_bytes(canonical()); }

void ObjectState::assign_from(const ObjectState& /*other*/) {
  throw std::logic_error("ObjectState::assign_from: state does not support assignment");
}

ObjectState* ObjectState::clone_into(void* /*mem*/) const {
  throw std::logic_error(
      "ObjectState::clone_into: state does not support placement copies "
      "(self_size() == 0); derive adt::StateBase or use clone()");
}

std::vector<Value> DataType::sample_args(const std::string& op) const {
  if (!spec(op).takes_arg) return {Value::nil()};
  // Four distinct arguments so the classifier can witness k-wise
  // last-sensitivity up to k = 4 for integer-argument mutators.
  return {Value{1}, Value{2}, Value{3}, Value{4}};
}

const OpTable& DataType::table() const {
  std::call_once(table_once_, [this] { table_cache_ = std::make_unique<OpTable>(ops()); });
  return *table_cache_;
}

OpId DataType::op_id(const std::string& op) const {
  const OpId id = table().find(op);
  if (!id.valid()) {
    throw std::invalid_argument("unknown operation '" + op + "' on type " + name());
  }
  return id;
}

std::unique_ptr<ObjectState> DataType::initial_state() const {
  auto state = make_initial_state();
  state->bind_table(&table());
  return state;
}

std::vector<std::string> DataType::ops_in_category(OpCategory c) const {
  std::vector<std::string> out;
  for (const auto& s : ops()) {
    if (s.category == c) out.push_back(s.name);
  }
  return out;
}

std::unique_ptr<ObjectState> run_sequence(const DataType& type, const Sequence& seq) {
  auto state = type.initial_state();
  for (const auto& inst : seq) {
    if (state->apply(inst.op, inst.arg) != inst.ret) return nullptr;
  }
  return state;
}

bool is_legal(const DataType& type, const Sequence& seq) {
  return run_sequence(type, seq) != nullptr;
}

Value legal_return(const DataType& type, const Sequence& prefix, const std::string& op,
                   const Value& arg) {
  auto state = run_sequence(type, prefix);
  if (state == nullptr) {
    throw std::invalid_argument("legal_return: prefix is not legal: " + to_string(prefix));
  }
  return state->apply(op, arg);
}

Instance complete(const DataType& type, const Sequence& prefix, const std::string& op,
                  const Value& arg) {
  return Instance{op, arg, legal_return(type, prefix, op, arg)};
}

bool equivalent(const DataType& type, const Sequence& rho1, const Sequence& rho2) {
  auto s1 = run_sequence(type, rho1);
  auto s2 = run_sequence(type, rho2);
  if (s1 == nullptr || s2 == nullptr) {
    throw std::invalid_argument("equivalent: both sequences must be legal");
  }
  return s1->canonical() == s2->canonical();
}

}  // namespace lintime::adt
