#pragma once
// Max-register: a register whose write keeps the maximum of the old and new
// values.  Third contrast case for the taxonomy: write_max is a pure mutator
// that is transposable AND fully commutative-idempotent, hence NOT
// last-sensitive (Theorem 3 inapplicable) and NOT an overwriter -- unlike the
// ordinary register's write, it escapes the (1-1/n)u bound's hypotheses.
// (Max registers are a classic object in distributed computing; they also
// show that "write-like" syntax does not imply write-like lower bounds.)
//
// Operations:
//   write_max(v) -> nil        (pure mutator, commutative, idempotent)
//   read()       -> maximum    (pure accessor)

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class MaxRegisterType final : public DataType {
 public:
  explicit MaxRegisterType(std::int64_t initial = 0) : initial_(initial) {}

  [[nodiscard]] std::string name() const override { return "max_register"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;

  static constexpr const char* kWriteMax = "write_max";
  static constexpr const char* kRead = "read";

 private:
  std::int64_t initial_;
};

}  // namespace lintime::adt
