#include "adt/value.hpp"

#include <ostream>
#include <sstream>

#include "adt/fingerprint.hpp"

namespace lintime::adt {

namespace {

/// Rank used to order values of different kinds: nil < int < string < vector.
int kind_rank(const Value& v) {
  if (v.is_nil()) return 0;
  if (v.is_int()) return 1;
  if (v.is_str()) return 2;
  return 3;
}

void hash_combine(std::size_t& seed, std::size_t h) {
  // Boost-style mixing; good enough for memo-table keys.
  seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace

bool operator<(const Value& a, const Value& b) {
  const int ra = kind_rank(a);
  const int rb = kind_rank(b);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0:
      return false;  // nil == nil
    case 1:
      return a.as_int() < b.as_int();
    case 2:
      return a.as_str() < b.as_str();
    default: {
      const auto& va = a.as_vec();
      const auto& vb = b.as_vec();
      return std::lexicographical_compare(va.begin(), va.end(), vb.begin(), vb.end());
    }
  }
}

std::string Value::to_string() const {
  if (is_nil()) return "nil";
  if (is_int()) return std::to_string(as_int());
  if (is_str()) {
    std::ostringstream os;
    os << '"' << as_str() << '"';
    return os.str();
  }
  std::ostringstream os;
  os << '[';
  const auto& vec = as_vec();
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (i > 0) os << ", ";
    os << vec[i].to_string();
  }
  os << ']';
  return os.str();
}

std::size_t Value::hash() const {
  if (is_nil()) return 0x6e696cULL;
  if (is_int()) return std::hash<std::int64_t>{}(as_int());
  if (is_str()) return std::hash<std::string>{}(as_str());
  std::size_t seed = 0x766563ULL;
  for (const auto& e : as_vec()) hash_combine(seed, e.hash());
  return seed;
}

void Value::feed(FpHasher& h) const {
  // Kind tag first so e.g. nil and the empty vector stream differently.
  if (is_nil()) {
    h.mix(0);
  } else if (is_int()) {
    h.mix(1);
    h.mix_int(as_int());
  } else if (is_str()) {
    h.mix(2);
    h.mix_bytes(as_str());
  } else {
    const auto& vec = as_vec();
    h.mix(3);
    h.mix(vec.size());
    for (const auto& e : vec) e.feed(h);
  }
}

std::ostream& operator<<(std::ostream& os, const Value& v) { return os << v.to_string(); }

}  // namespace lintime::adt
