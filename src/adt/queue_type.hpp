#pragma once
// FIFO queue (Table 2 of the paper).
//
// Operations:
//   enqueue(v) -> nil                         (pure mutator, transposable,
//                                              last-sensitive)
//   dequeue()  -> head, removed; nil if empty (mixed, pair-free)
//   peek()     -> head; nil if empty          (pure accessor)
//
// The enqueue/peek pair satisfies the discriminator preconditions of
// Theorem 5 (the paper uses exactly this pair as its example).

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class QueueType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "queue"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;
  [[nodiscard]] MonitorFamily monitor_family() const override { return MonitorFamily::kQueue; }

  static constexpr const char* kEnqueue = "enqueue";
  static constexpr const char* kDequeue = "dequeue";
  static constexpr const char* kPeek = "peek";
};

}  // namespace lintime::adt
