#include "adt/stack_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t { kPushIdx = 0, kPopIdx = 1, kPeekIdx = 2 };

const OpTable& stack_table() {
  static const OpTable kTable{{
      {StackType::kPush, OpCategory::kPureMutator, /*takes_arg=*/true},
      {StackType::kPop, OpCategory::kMixed, /*takes_arg=*/false},
      {StackType::kPeek, OpCategory::kPureAccessor, /*takes_arg=*/false},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 4;

class StackState final : public StateBase<StackState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = stack_table().find(op);
    if (!id.valid()) throw std::invalid_argument("stack: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kPushIdx:
        items_.push_back(arg.as_int());
        return Value::nil();
      case kPopIdx: {
        if (items_.empty()) return Value::nil();
        const std::int64_t top = items_.back();
        items_.pop_back();
        return Value{top};
      }
      case kPeekIdx:
        if (items_.empty()) return Value::nil();
        return Value{items_.back()};
      default:
        throw std::invalid_argument("stack: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "stack:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

  void fingerprint_into(FpHasher& h) const override {
    h.mix(kFpTag);
    h.mix(items_.size());
    for (const auto v : items_) h.mix_int(v);
  }

 private:
  std::vector<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& StackType::ops() const { return stack_table().specs(); }

const OpTable& StackType::table() const { return stack_table(); }

std::unique_ptr<ObjectState> StackType::make_initial_state() const {
  return std::make_unique<StackState>();
}

}  // namespace lintime::adt
