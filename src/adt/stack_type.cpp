#include "adt/stack_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

class StackState final : public StateBase<StackState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    if (op == StackType::kPush) {
      items_.push_back(arg.as_int());
      return Value::nil();
    }
    if (op == StackType::kPop) {
      if (items_.empty()) return Value::nil();
      const std::int64_t top = items_.back();
      items_.pop_back();
      return Value{top};
    }
    if (op == StackType::kPeek) {
      if (items_.empty()) return Value::nil();
      return Value{items_.back()};
    }
    throw std::invalid_argument("stack: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "stack:";
    for (const auto v : items_) os << v << ',';
    return os.str();
  }

 private:
  std::vector<std::int64_t> items_;
};

}  // namespace

const std::vector<OpSpec>& StackType::ops() const {
  static const std::vector<OpSpec> kOps = {
      {kPush, OpCategory::kPureMutator, /*takes_arg=*/true},
      {kPop, OpCategory::kMixed, /*takes_arg=*/false},
      {kPeek, OpCategory::kPureAccessor, /*takes_arg=*/false},
  };
  return kOps;
}

std::unique_ptr<ObjectState> StackType::make_initial_state() const {
  return std::make_unique<StackState>();
}

}  // namespace lintime::adt
