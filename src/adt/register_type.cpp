#include "adt/register_type.hpp"

#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t { kReadIdx = 0, kWriteIdx = 1 };

const OpTable& register_table() {
  static const OpTable kTable{{
      {RegisterType::kRead, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {RegisterType::kWrite, OpCategory::kPureMutator, /*takes_arg=*/true},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 1;

class RegisterState final : public StateBase<RegisterState> {
 public:
  explicit RegisterState(std::int64_t v) : value_(v) {}

  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = register_table().find(op);
    if (!id.valid()) throw std::invalid_argument("register: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kReadIdx:
        return Value{value_};
      case kWriteIdx:
        value_ = arg.as_int();
        return Value::nil();
      default:
        throw std::invalid_argument("register: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override { return "reg:" + std::to_string(value_); }

  void fingerprint_into(FpHasher& h) const override {
    h.mix(kFpTag);
    h.mix_int(value_);
  }

 private:
  std::int64_t value_;
};

}  // namespace

const std::vector<OpSpec>& RegisterType::ops() const { return register_table().specs(); }

const OpTable& RegisterType::table() const { return register_table(); }

std::unique_ptr<ObjectState> RegisterType::make_initial_state() const {
  return std::make_unique<RegisterState>(initial_);
}

}  // namespace lintime::adt
