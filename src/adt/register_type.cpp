#include "adt/register_type.hpp"

#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

class RegisterState final : public StateBase<RegisterState> {
 public:
  explicit RegisterState(std::int64_t v) : value_(v) {}

  Value apply(const std::string& op, const Value& arg) override {
    if (op == RegisterType::kRead) return Value{value_};
    if (op == RegisterType::kWrite) {
      value_ = arg.as_int();
      return Value::nil();
    }
    throw std::invalid_argument("register: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override { return "reg:" + std::to_string(value_); }

 private:
  std::int64_t value_;
};

}  // namespace

const std::vector<OpSpec>& RegisterType::ops() const {
  static const std::vector<OpSpec> kOps = {
      {kRead, OpCategory::kPureAccessor, /*takes_arg=*/false},
      {kWrite, OpCategory::kPureMutator, /*takes_arg=*/true},
  };
  return kOps;
}

std::unique_ptr<ObjectState> RegisterType::make_initial_state() const {
  return std::make_unique<RegisterState>(initial_);
}

}  // namespace lintime::adt
