#pragma once
// Simple rooted tree (Table 4 of the paper).
//
// Nodes are integer ids; node 0 is the root and always present.
//
// Operations:
//   insert([p, c]) -> nil   (pure mutator) First-wins attach: if p is
//                           present and c is absent (and c != 0), attach c
//                           as a child of p; otherwise no-op.  Always
//                           returns nil.  With first-wins semantics,
//                           insert+depth satisfies Theorem 5's discriminator
//                           preconditions (attaching the same node under
//                           parents of different depths: whichever insert is
//                           linearized first determines the node's depth).
//   move([p, c])   -> nil   (pure mutator) Last-wins re-parent: if p is
//                           present, c != 0 and c is not an ancestor of p,
//                           (re)attach c under p; otherwise no-op.  Always
//                           returns nil.  Last-wins semantics makes move
//                           last-sensitive for arbitrarily large k (the last
//                           of k moves of the same node determines its
//                           depth), instantiating Theorem 3 at k = n.
//   remove(c)      -> nil   (pure mutator) If c is a present leaf and not
//                           the root, remove it; otherwise no-op.  Always
//                           returns nil.  Leaf-removal is last-sensitive
//                           with k = 2 (removing a parent succeeds only
//                           after removing its only child).
//   depth(c)       -> depth of c, or -1 if absent    (pure accessor)
//   parent(c)      -> parent id of c; -1 if absent or root (pure accessor)
//
// The paper leaves the tree's exact sequential specification open.  The two
// insert flavours above cover both algebraic properties its Table 4 relies
// on; the empirical classifier (adt/classify.hpp) certifies which property
// each operation actually has, and EXPERIMENTS.md records the mapping onto
// the paper's rows.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class TreeType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "tree"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;
  [[nodiscard]] std::vector<Value> sample_args(const std::string& op) const override;

  static constexpr const char* kInsert = "insert";
  static constexpr const char* kMove = "move";
  static constexpr const char* kRemove = "remove";
  static constexpr const char* kDepth = "depth";
  static constexpr const char* kParent = "parent";

  static constexpr std::int64_t kRoot = 0;

  /// Convenience: builds the [parent, child] argument for insert/move.
  static Value edge(std::int64_t parent, std::int64_t child) {
    return Value{ValueVec{Value{parent}, Value{child}}};
  }
};

}  // namespace lintime::adt
