#include "adt/pool_type.hpp"

#include <sstream>
#include <stdexcept>

#include "adt/state_base.hpp"

namespace lintime::adt {

namespace {

enum : std::uint32_t { kPutIdx = 0, kTakeIdx = 1, kSizeIdx = 2 };

const OpTable& pool_table() {
  static const OpTable kTable{{
      {PoolType::kPut, OpCategory::kPureMutator, /*takes_arg=*/true},
      {PoolType::kTake, OpCategory::kMixed, /*takes_arg=*/false},
      {PoolType::kSize, OpCategory::kPureAccessor, /*takes_arg=*/false},
  }};
  return kTable;
}

constexpr std::uint64_t kFpTag = 10;

/// Multiset of int64 values.  Shared by the deterministic type and the
/// non-deterministic spec (whose outcomes clone and mutate it).
class PoolState final : public StateBase<PoolState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    const OpId id = pool_table().find(op);
    if (!id.valid()) throw std::invalid_argument("pool: unknown op " + op);
    return apply(id, arg);
  }

  Value apply(OpId id, const Value& arg) override {
    switch (id.index()) {
      case kPutIdx:
        ++items_[arg.as_int()];
        return Value::nil();
      case kTakeIdx: {
        if (items_.empty()) return Value::nil();
        // Deterministic resolution: remove the smallest element.
        const auto it = items_.begin();
        const std::int64_t v = it->first;
        remove(v);
        return Value{v};
      }
      case kSizeIdx: {
        std::int64_t total = 0;
        for (const auto& [v, count] : items_) total += count;
        return Value{total};
      }
      default:
        throw std::invalid_argument("pool: unknown op id");
    }
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "pool:";
    for (const auto& [v, count] : items_) os << v << 'x' << count << ',';
    return os.str();
  }

  void fingerprint_into(FpHasher& h) const override {
    // std::map iterates in value order -- deterministic, matching canonical().
    h.mix(kFpTag);
    h.mix(items_.size());
    for (const auto& [v, count] : items_) {
      h.mix_int(v);
      h.mix_int(count);
    }
  }

  [[nodiscard]] const std::map<std::int64_t, int>& items() const { return items_; }

  void remove(std::int64_t v) {
    const auto it = items_.find(v);
    if (it == items_.end()) throw std::logic_error("pool: removing absent element");
    if (--it->second == 0) items_.erase(it);
  }

 private:
  std::map<std::int64_t, int> items_;  // value -> multiplicity
};

}  // namespace

const std::vector<OpSpec>& PoolType::ops() const { return pool_table().specs(); }

const OpTable& PoolType::table() const { return pool_table(); }

std::unique_ptr<ObjectState> PoolType::make_initial_state() const {
  return std::make_unique<PoolState>();
}

const std::vector<OpSpec>& PoolNondetSpec::ops() const { return pool_table().specs(); }

std::unique_ptr<ObjectState> PoolNondetSpec::make_initial_state() const {
  return std::make_unique<PoolState>();
}

std::vector<Outcome> PoolNondetSpec::outcomes(const ObjectState& state, const std::string& op,
                                              const Value& arg) const {
  const auto& pool = dynamic_cast<const PoolState&>(state);
  std::vector<Outcome> out;

  if (op == PoolType::kTake) {
    if (pool.items().empty()) {
      Outcome o;
      o.ret = Value::nil();
      o.state = state.clone();
      out.push_back(std::move(o));
      return out;
    }
    // One outcome per distinct element: take may remove any of them.
    for (const auto& [v, count] : pool.items()) {
      (void)count;
      Outcome o;
      o.ret = Value{v};
      auto next = state.clone();
      dynamic_cast<PoolState&>(*next).remove(v);
      o.state = std::move(next);
      out.push_back(std::move(o));
    }
    return out;
  }

  // put and size are deterministic.
  Outcome o;
  auto next = state.clone();
  o.ret = next->apply(op, arg);
  o.state = std::move(next);
  out.push_back(std::move(o));
  return out;
}

}  // namespace lintime::adt
