#pragma once
// Value: the argument / return-value domain for abstract data type operations.
//
// The paper (Section 2.1) models operation invocations and responses as
// carrying arguments and return values drawn from arbitrary sets.  We use a
// small closed algebra of values -- nil, 64-bit integers, strings, and
// (recursively) vectors of values -- which is rich enough to express every
// operation of every data type studied in the paper (registers, RMW
// registers, FIFO queues, stacks, rooted trees) plus the extra types this
// library ships (sets, counters).

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace lintime::adt {

class FpHasher;
class Value;

/// Vector-of-values alias used for composite arguments (e.g. tree Insert
/// takes [parent, child]).
using ValueVec = std::vector<Value>;

/// A closed, hashable, totally-ordered value domain.
///
/// `Value` is a regular type: copyable, equality-comparable, hashable and
/// printable, so it can be used as a map key, a gtest parameter and a wire
/// payload without further ceremony.
class Value {
 public:
  /// Constructs nil (the "no argument" / "no return value" marker written
  /// "-" in the paper, e.g. read(-, v) or write(v, -)).
  Value() = default;
  Value(std::int64_t v) : rep_(v) {}                     // NOLINT(google-explicit-constructor)
  Value(int v) : rep_(static_cast<std::int64_t>(v)) {}   // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::move(v)) {}           // NOLINT(google-explicit-constructor)
  Value(const char* v) : rep_(std::string(v)) {}         // NOLINT(google-explicit-constructor)
  Value(ValueVec v) : rep_(std::move(v)) {}              // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_nil() const { return std::holds_alternative<std::monostate>(rep_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(rep_); }
  [[nodiscard]] bool is_str() const { return std::holds_alternative<std::string>(rep_); }
  [[nodiscard]] bool is_vec() const { return std::holds_alternative<ValueVec>(rep_); }

  /// Accessors throw std::bad_variant_access on type mismatch; callers in
  /// this library always check or know the type from the operation spec.
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(rep_); }
  [[nodiscard]] const std::string& as_str() const { return std::get<std::string>(rep_); }
  [[nodiscard]] const ValueVec& as_vec() const { return std::get<ValueVec>(rep_); }

  /// Mutable view of the vector alternative, or nullptr if this value is not
  /// a vector.  Lets hot paths rebuild a small composite argument in place
  /// (reusing the element storage) instead of allocating a fresh vector per
  /// reconstruction; see sim::PayloadVal::to_value_into.
  [[nodiscard]] ValueVec* vec_if() { return std::get_if<ValueVec>(&rep_); }

  friend bool operator==(const Value& a, const Value& b) { return a.rep_ == b.rep_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b);

  /// Canonical textual form, e.g. `nil`, `42`, `"abc"`, `[1, 2]`.
  [[nodiscard]] std::string to_string() const;

  /// Stable hash suitable for memoization keys.
  [[nodiscard]] std::size_t hash() const;

  /// Streams this value's structure (kind tag, then payload) into a state
  /// fingerprint hasher; see adt/fingerprint.hpp for the contract.
  void feed(FpHasher& h) const;

  /// Convenience factory for nil, reads better than `Value{}` at call sites.
  static Value nil() { return Value{}; }

 private:
  std::variant<std::monostate, std::int64_t, std::string, ValueVec> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace lintime::adt

template <>
struct std::hash<lintime::adt::Value> {
  std::size_t operator()(const lintime::adt::Value& v) const noexcept { return v.hash(); }
};
