#include "adt/classify.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

namespace lintime::adt {

namespace {

/// A reachable configuration: the (shortest-first) sequence that reaches it
/// and the resulting state.
struct PoolEntry {
  Sequence seq;
  std::unique_ptr<ObjectState> state;
};

/// Every instance obtainable from `state` using `op`'s sample arguments.
std::vector<Instance> instances_after(const DataType& type, const ObjectState& state,
                                      const std::string& op) {
  std::vector<Instance> out;
  for (const auto& arg : type.sample_args(op)) {
    auto probe = state.clone();
    out.push_back(Instance{op, arg, probe->apply(op, arg)});
  }
  return out;
}

/// Every instance of every operation obtainable from `state`.
std::vector<Instance> all_instances_after(const DataType& type, const ObjectState& state) {
  std::vector<Instance> out;
  for (const auto& spec : type.ops()) {
    auto insts = instances_after(type, state, spec.name);
    out.insert(out.end(), insts.begin(), insts.end());
  }
  return out;
}

/// BFS over reachable states up to depth `max_len`, deduplicated by
/// canonical encoding (all classifier predicates depend on rho only through
/// its end state).
std::vector<PoolEntry> build_pool(const DataType& type, int max_len) {
  std::vector<PoolEntry> pool;
  std::map<std::string, bool> seen;

  pool.push_back(PoolEntry{Sequence{}, type.make_initial_state()});
  seen[pool.back().state->canonical()] = true;

  std::size_t frontier_begin = 0;
  for (int depth = 0; depth < max_len; ++depth) {
    const std::size_t frontier_end = pool.size();
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      for (const auto& inst : all_instances_after(type, *pool[i].state)) {
        auto next = pool[i].state->clone();
        next->apply(inst.op, inst.arg);
        auto canon = next->canonical();
        if (seen.contains(canon)) continue;
        seen[canon] = true;
        Sequence seq = pool[i].seq;
        seq.push_back(inst);
        pool.push_back(PoolEntry{std::move(seq), std::move(next)});
      }
    }
    frontier_begin = frontier_end;
  }
  return pool;
}

/// Applies `inst` to a clone of `state`; returns the new state if the
/// recorded return value matches (instance legal there), nullptr otherwise.
std::unique_ptr<ObjectState> apply_if_legal(const ObjectState& state, const Instance& inst) {
  auto next = state.clone();
  if (next->apply(inst.op, inst.arg) != inst.ret) return nullptr;
  return next;
}

/// Applies a list of instances in order; nullptr if any is illegal.
std::unique_ptr<ObjectState> apply_all_if_legal(const ObjectState& state,
                                                const std::vector<Instance>& insts) {
  auto cur = state.clone();
  for (const auto& inst : insts) {
    if (cur->apply(inst.op, inst.arg) != inst.ret) return nullptr;
  }
  return cur;
}

bool check_mutator(const DataType& type, const std::vector<PoolEntry>& pool,
                   const std::string& op, std::string& notes) {
  for (const auto& entry : pool) {
    const std::string before = entry.state->canonical();
    for (const auto& inst : instances_after(type, *entry.state, op)) {
      auto after = apply_if_legal(*entry.state, inst);
      if (after->canonical() != before) {
        notes += "mutator witness: " + inst.to_string() + " after \"" + to_string(entry.seq) +
                 "\"; ";
        return true;
      }
    }
  }
  return false;
}

bool check_accessor(const DataType& type, const std::vector<PoolEntry>& pool,
                    const std::string& op, std::string& notes) {
  for (const auto& entry : pool) {
    for (const auto& aop : instances_after(type, *entry.state, op)) {
      for (const auto& other : all_instances_after(type, *entry.state)) {
        auto shifted = apply_if_legal(*entry.state, other);
        auto probe = shifted->clone();
        if (probe->apply(aop.op, aop.arg) != aop.ret) {
          notes += "accessor witness: " + aop.to_string() + " illegal after " +
                   other.to_string() + "; ";
          return true;
        }
      }
    }
  }
  return false;
}

bool check_overwriter(const DataType& type, const std::vector<PoolEntry>& pool,
                      const std::string& op, std::string& notes) {
  for (const auto& entry : pool) {
    for (const auto& mop : instances_after(type, *entry.state, op)) {
      auto direct = apply_if_legal(*entry.state, mop);
      for (const auto& other : all_instances_after(type, *entry.state)) {
        auto shifted = apply_if_legal(*entry.state, other);
        auto via = apply_if_legal(*shifted, mop);
        if (via == nullptr) continue;  // rho.op.mop not legal: premise fails
        if (via->canonical() != direct->canonical()) {
          notes += "overwriter counterexample: " + other.to_string() + " then " +
                   mop.to_string() + "; ";
          return false;
        }
      }
    }
  }
  return true;
}

bool check_transposable(const DataType& type, const std::vector<PoolEntry>& pool,
                        const std::string& op, std::string& notes) {
  for (const auto& entry : pool) {
    const auto insts = instances_after(type, *entry.state, op);
    for (std::size_t i = 0; i < insts.size(); ++i) {
      for (std::size_t j = 0; j < insts.size(); ++j) {
        if (i == j || insts[i] == insts[j]) continue;
        if (apply_all_if_legal(*entry.state, {insts[i], insts[j]}) == nullptr) {
          notes += "transposable counterexample: " + insts[i].to_string() + " then " +
                   insts[j].to_string() + " after \"" + to_string(entry.seq) + "\"; ";
          return false;
        }
      }
    }
  }
  return true;
}

/// Largest k in [2, max_k] admitting a last-sensitivity witness, or 0.
int check_last_sensitive(const DataType& type, const std::vector<PoolEntry>& pool,
                         const std::string& op, int max_k, std::string& notes) {
  for (int k = max_k; k >= 2; --k) {
    for (const auto& entry : pool) {
      // Distinct instances of `op` legal after this prefix.
      std::vector<Instance> insts;
      for (const auto& inst : instances_after(type, *entry.state, op)) {
        if (std::find(insts.begin(), insts.end(), inst) == insts.end()) insts.push_back(inst);
      }
      const int m = static_cast<int>(insts.size());
      if (m < k) continue;

      // Try every k-subset of the distinct instances.
      std::vector<int> pick(static_cast<std::size_t>(k));
      std::iota(pick.begin(), pick.end(), 0);
      while (true) {
        // Enumerate permutations of the chosen subset; record the end state
        // per permutation together with its last element.
        std::vector<int> perm(pick.begin(), pick.end());
        std::sort(perm.begin(), perm.end());
        bool all_legal = true;
        std::vector<std::pair<int, std::string>> outcomes;  // (last idx, canonical)
        do {
          std::vector<Instance> ordered;
          ordered.reserve(perm.size());
          for (int idx : perm) ordered.push_back(insts[static_cast<std::size_t>(idx)]);
          auto end_state = apply_all_if_legal(*entry.state, ordered);
          if (end_state == nullptr) {
            all_legal = false;
            break;
          }
          outcomes.emplace_back(perm.back(), end_state->canonical());
        } while (std::next_permutation(perm.begin(), perm.end()));

        if (all_legal) {
          bool witness = true;
          for (std::size_t a = 0; a < outcomes.size() && witness; ++a) {
            for (std::size_t b = a + 1; b < outcomes.size() && witness; ++b) {
              if (outcomes[a].first != outcomes[b].first &&
                  outcomes[a].second == outcomes[b].second) {
                witness = false;  // different last, equivalent states
              }
            }
          }
          if (witness) {
            std::ostringstream os;
            os << "last-sensitive k=" << k << " witness after \"" << to_string(entry.seq)
               << "\" with {";
            for (int idx : pick) os << insts[static_cast<std::size_t>(idx)].to_string() << " ";
            os << "}; ";
            notes += os.str();
            return k;
          }
        }

        // Next k-combination of [0, m).
        int pos = k - 1;
        while (pos >= 0 && pick[static_cast<std::size_t>(pos)] == m - k + pos) --pos;
        if (pos < 0) break;
        ++pick[static_cast<std::size_t>(pos)];
        for (int q = pos + 1; q < k; ++q) {
          pick[static_cast<std::size_t>(q)] = pick[static_cast<std::size_t>(q - 1)] + 1;
        }
      }
    }
  }
  return 0;
}

bool check_pair_free(const DataType& type, const std::vector<PoolEntry>& pool,
                     const std::string& op, std::string& notes) {
  for (const auto& entry : pool) {
    const auto insts = instances_after(type, *entry.state, op);
    for (const auto& op1 : insts) {
      for (const auto& op2 : insts) {
        // Note: op1 == op2 is allowed (e.g. two dequeues returning the same
        // head); the definition only asks for "two instances".
        if (apply_all_if_legal(*entry.state, {op1, op2}) != nullptr) continue;
        if (apply_all_if_legal(*entry.state, {op2, op1}) != nullptr) continue;
        notes += "pair-free witness: " + op1.to_string() + " / " + op2.to_string() +
                 " after \"" + to_string(entry.seq) + "\"; ";
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Classification classify_op(const DataType& type, const std::string& op,
                           const ClassifierOptions& opts) {
  const auto pool = build_pool(type, opts.max_prefix_len);
  Classification c;
  c.op = op;
  c.mutator = check_mutator(type, pool, op, c.notes);
  c.accessor = check_accessor(type, pool, op, c.notes);
  c.overwriter = c.mutator && check_overwriter(type, pool, op, c.notes);
  c.transposable = check_transposable(type, pool, op, c.notes);
  c.last_sensitive_k =
      c.transposable ? check_last_sensitive(type, pool, op, opts.max_last_sensitive_k, c.notes)
                     : 0;
  c.pair_free = check_pair_free(type, pool, op, c.notes);
  return c;
}

std::vector<Classification> classify_all(const DataType& type, const ClassifierOptions& opts) {
  std::vector<Classification> out;
  out.reserve(type.ops().size());
  for (const auto& spec : type.ops()) out.push_back(classify_op(type, spec.name, opts));
  return out;
}

std::optional<Discriminator> find_discriminator(const DataType& type, const Sequence& rho1,
                                                const Sequence& rho2, const std::string& aop) {
  auto s1 = run_sequence(type, rho1);
  auto s2 = run_sequence(type, rho2);
  if (s1 == nullptr || s2 == nullptr) return std::nullopt;
  for (const auto& arg : type.sample_args(aop)) {
    auto p1 = s1->clone();
    auto p2 = s2->clone();
    const Value r1 = p1->apply(aop, arg);
    const Value r2 = p2->apply(aop, arg);
    if (r1 != r2) return Discriminator{arg, r1, r2};
  }
  return std::nullopt;
}

std::optional<InterferenceWitness> find_interference_witness(const DataType& type,
                                                             const std::string& op1,
                                                             const std::string& op2,
                                                             const ClassifierOptions& opts) {
  const auto pool = build_pool(type, opts.max_prefix_len);
  for (const auto& entry : pool) {
    for (const auto& inst1 : instances_after(type, *entry.state, op1)) {
      auto shifted = apply_if_legal(*entry.state, inst1);
      for (const auto& arg2 : type.sample_args(op2)) {
        auto before = entry.state->clone();
        auto after = shifted->clone();
        const Value ret_before = before->apply(op2, arg2);
        const Value ret_after = after->apply(op2, arg2);
        if (ret_before != ret_after) {
          return InterferenceWitness{entry.seq, inst1, arg2, ret_before, ret_after};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Theorem5Witness> find_theorem5_witness(const DataType& type, const std::string& op,
                                                     const std::string& aop,
                                                     const ClassifierOptions& opts) {
  const auto pool = build_pool(type, opts.max_prefix_len);
  for (const auto& entry : pool) {
    const auto insts = instances_after(type, *entry.state, op);
    for (const auto& op0 : insts) {
      for (const auto& op1 : insts) {
        if (op0 == op1) continue;
        // Both orders must be legal (OP transposable on this pair).
        if (apply_all_if_legal(*entry.state, {op0, op1}) == nullptr) continue;
        if (apply_all_if_legal(*entry.state, {op1, op0}) == nullptr) continue;

        Sequence rho_op0 = entry.seq;
        rho_op0.push_back(op0);
        Sequence rho_op1 = entry.seq;
        rho_op1.push_back(op1);
        Sequence rho_op0_op1 = rho_op0;
        rho_op0_op1.push_back(op1);
        Sequence rho_op1_op0 = rho_op1;
        rho_op1_op0.push_back(op0);

        auto disc_a = find_discriminator(type, rho_op0, rho_op1_op0, aop);
        if (!disc_a) continue;
        auto disc_b = find_discriminator(type, rho_op1, rho_op0_op1, aop);
        if (!disc_b) continue;
        auto disc_c = find_discriminator(type, rho_op0_op1, rho_op1, aop);
        if (!disc_c) continue;
        return Theorem5Witness{entry.seq, op0, op1, *disc_a, *disc_b, *disc_c};
      }
    }
  }
  return std::nullopt;
}

}  // namespace lintime::adt
