#pragma once
// Read/write register over 64-bit integers (Section 2.1's running example).
//
// Operations:
//   read()   -> current value                (pure accessor)
//   write(v) -> nil, sets value to v         (pure mutator, overwriter,
//                                             transposable, last-sensitive)

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::adt {

class RegisterType final : public DataType {
 public:
  /// `initial` is the register's initial value v0.
  explicit RegisterType(std::int64_t initial = 0) : initial_(initial) {}

  [[nodiscard]] std::string name() const override { return "register"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override;
  [[nodiscard]] const OpTable& table() const override;
  [[nodiscard]] std::unique_ptr<ObjectState> make_initial_state() const override;
  [[nodiscard]] MonitorFamily monitor_family() const override { return MonitorFamily::kRegister; }

  static constexpr const char* kRead = "read";
  static constexpr const char* kWrite = "write";

 private:
  std::int64_t initial_;
};

}  // namespace lintime::adt
