#pragma once
// Run records: the executable counterpart of the paper's "runs" (sets of
// timed views, Section 2.2).  The simulator records every step, message and
// operation instance; the shifting machinery (src/shift) transforms these
// records exactly as Theorem 1 and Lemma 2 transform runs.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adt/op.hpp"
#include "adt/value.hpp"
#include "sim/model_params.hpp"

namespace lintime::sim {

/// What triggered a step (the three event kinds of the model).
enum class Trigger {
  kInvoke,   ///< an operation invocation arrived from the user
  kMessage,  ///< receipt of a message
  kTimer,    ///< a previously-set timer went off
};

[[nodiscard]] constexpr const char* to_string(Trigger t) {
  switch (t) {
    case Trigger::kInvoke: return "invoke";
    case Trigger::kMessage: return "message";
    case Trigger::kTimer: return "timer";
  }
  return "?";
}

/// One step of one process's timed view.
struct StepRecord {
  ProcId proc = 0;
  Time real_time = 0;
  Time clock_time = 0;
  Trigger trigger = Trigger::kInvoke;

  // Trigger detail:
  std::uint64_t message_id = 0;  ///< for kMessage
  std::uint64_t timer_id = 0;    ///< for kTimer
  std::string op;                ///< for kInvoke
  adt::Value arg;                ///< for kInvoke

  std::vector<std::uint64_t> sent_message_ids;  ///< messages sent in this step
  bool responded = false;                       ///< did this step emit a response
  adt::Value response;                          ///< the response, if responded
};

/// One message: send/receive endpoints in real time.
struct MessageRecord {
  std::uint64_t id = 0;
  ProcId src = 0;
  ProcId dst = 0;
  Time send_real = 0;
  Time recv_real = 0;
  bool received = false;

  [[nodiscard]] Time delay() const { return recv_real - send_real; }
};

/// One completed operation instance with its real-time interval -- the unit
/// the linearizability checker consumes.
struct OpRecord {
  ProcId proc = 0;
  std::string op;
  adt::Value arg;
  adt::Value ret;
  Time invoke_real = 0;
  Time response_real = -1;  ///< -1 until the response is emitted
  std::uint64_t uid = 0;    ///< unique per run, stable across shifting

  /// Interned id of `op` against the run's data type, stamped by the World
  /// when WorldConfig::type is set; invalid otherwise (records loaded from
  /// traces, or restricted composite histories whose names were rewritten).
  /// `op` remains authoritative -- the checkers re-resolve names themselves.
  adt::OpId op_id;

  [[nodiscard]] bool complete() const { return response_real >= invoke_real; }
  [[nodiscard]] Time latency() const { return response_real - invoke_real; }

  [[nodiscard]] std::string to_string() const;
};

/// A complete recorded run.
struct RunRecord {
  ModelParams params;
  std::vector<Time> clock_offsets;  ///< c_i per process
  std::vector<StepRecord> steps;    ///< in global real-time order as executed
  std::vector<MessageRecord> messages;
  std::vector<OpRecord> ops;

  /// last-time of the run: max real time over all steps (0 if empty).
  [[nodiscard]] Time last_time() const;
  /// first-time: min real time over all steps (0 if empty).
  [[nodiscard]] Time first_time() const;

  /// The steps of one process, in order (a timed view).
  [[nodiscard]] std::vector<StepRecord> view_of(ProcId p) const;
};

}  // namespace lintime::sim
