#pragma once
// Deterministic fault plane: timed process crashes and timed link-drop
// windows, layered UNDER the seeded drop_probability extension.  Everything
// here is a pure function of the schedule -- no randomness -- so runs with a
// fault schedule replay byte-identically, and runs with an empty schedule
// are byte-identical to runs without one (the drop-coin RNG stream is never
// perturbed; see World::ContextImpl::send).
//
// Semantics (documented in DESIGN.md, "Scenario grammar"):
//  - A crash at (proc, when) means the process handles no event dispatched
//    at real time >= when: pending timers and invocations are discarded at
//    dispatch, and messages that would ARRIVE at or after `when` are
//    recorded as sent-but-unreceived at send time.  An invocation dispatched
//    at or after the crash never enters the record at all; an operation
//    in flight AT the crash stays incomplete in the record (the general
//    permutation checker rejects incomplete histories, so crash scenarios
//    that check linearizability should place crashes in quiet windows).
//  - A link window (src, dst, from, until) drops every message SENT on that
//    directed link during the half-open interval [from, until).  src/dst may
//    be kAnyProc to match every source/destination.
//
// Partition/heal cycles are compiled down to link windows by
// partition_cycles(); the World only ever sees the flat window list.

#include <vector>

#include "sim/run_record.hpp"  // ProcId, Time

namespace lintime::sim {

/// Wildcard for LinkWindow::src / LinkWindow::dst: matches every process.
inline constexpr ProcId kAnyProc = -1;

/// Process `proc` halts at real time `when`: no event dispatched at or after
/// `when` reaches it, and nothing arrives at it from `when` on.
struct CrashEvent {
  ProcId proc = 0;
  Time when = 0;
};

/// Messages sent on the directed link src -> dst during [from, until) are
/// lost.  kAnyProc wildcards match every source / destination.
struct LinkWindow {
  ProcId src = kAnyProc;
  ProcId dst = kAnyProc;
  Time from = 0;
  Time until = 0;
};

/// The full deterministic fault schedule for one run.
struct FaultSchedule {
  std::vector<CrashEvent> crashes;
  std::vector<LinkWindow> link_drops;

  [[nodiscard]] bool empty() const { return crashes.empty() && link_drops.empty(); }

  /// Throws std::invalid_argument on a malformed schedule: out-of-range or
  /// duplicate crash proc ids, negative crash times, out-of-range window
  /// endpoints (src/dst must be kAnyProc or in [0, n), never a self-link),
  /// empty or inverted windows, or overlapping windows on an identical
  /// (src, dst) pair.  Windows with distinct pairs (including wildcard vs
  /// concrete) may overlap; they compose as "dropped if any window matches".
  void validate(int n) const;
};

/// Compiles a partition/heal cycle into link windows: for each of `cycles`
/// repetitions k, every directed link between group_a and group_b (both
/// directions) is cut during [start + k*period, start + k*period + cut).
/// The groups need not cover all processes; procs in neither group keep all
/// their links.  Throws std::invalid_argument on empty/overlapping groups or
/// non-positive cut/period/cycles (cut > period would make consecutive
/// cycles overlap and is also rejected).
[[nodiscard]] std::vector<LinkWindow> partition_cycles(const std::vector<ProcId>& group_a,
                                                       const std::vector<ProcId>& group_b,
                                                       Time start, Time cut, Time period,
                                                       int cycles);

}  // namespace lintime::sim
