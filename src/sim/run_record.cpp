#include "sim/run_record.hpp"

#include <algorithm>
#include <sstream>

namespace lintime::sim {

std::string OpRecord::to_string() const {
  std::ostringstream os;
  os << "p" << proc << ":" << op << "(" << arg.to_string() << ") -> " << ret.to_string() << " @ ["
     << invoke_real << ", " << response_real << "]";
  return os.str();
}

Time RunRecord::last_time() const {
  Time t = 0;
  for (const auto& s : steps) t = std::max(t, s.real_time);
  return t;
}

Time RunRecord::first_time() const {
  if (steps.empty()) return 0;
  Time t = steps.front().real_time;
  for (const auto& s : steps) t = std::min(t, s.real_time);
  return t;
}

std::vector<StepRecord> RunRecord::view_of(ProcId p) const {
  std::vector<StepRecord> out;
  for (const auto& s : steps) {
    if (s.proc == p) out.push_back(s);
  }
  return out;
}

}  // namespace lintime::sim
