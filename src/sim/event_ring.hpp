#pragma once
// EventRing: the simulator's contiguous calendar queue.
//
// World's original scheduler was a std::priority_queue<Event> -- every push
// and pop sifts O(log n) 48-byte elements through the heap.  Simulated time
// is monotone (nothing is ever scheduled in the past), so a calendar/bucket
// queue fits better: events land in flat per-bucket vectors by time bucket,
// buckets are sorted once when their turn comes, and push/pop are O(1)
// amortized appends and index bumps on contiguous storage.
//
// Ordering is EXACTLY the old heap's: ascending (when, tie_rank, seq), with
// tie_rank and the monotone FIFO sequence number packed into one 64-bit
// `order` key.  Because seq is unique the order is total, so the per-bucket
// std::sort is deterministic and the pop sequence is byte-for-byte the heap's
// pop sequence (tests/sim/event_ring_test.cpp asserts this on recorded runs).
//
// Bucketing works on an integer tick grid: World snaps every event time to a
// multiple of 1/kTickGrid (see world.cpp), so tick_of() is a monotone map
// from event times to int64 ticks and bucket number = tick / width.  Events
// within the ring horizon (buckets cur..cur+B-1) go straight to their
// bucket; farther events wait in a min-heap staging area and enter the ring
// as it advances, so arbitrarily sparse schedules stay correct (the ring
// jumps, it never scans empty epochs).

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/model_params.hpp"

namespace lintime::sim {

/// Event times are snapped to this grid (resolution 1e-9 time units) by the
/// World; the ring relies on it only for monotone bucketing, never for
/// ordering (ordering compares the exact double).
constexpr double kTickGrid = 1e9;

/// The three event kinds of the model (Section 2.2).
enum class EventKind { kDeliver = 0, kTimer = 1, kInvoke = 2 };

/// One scheduled event.  Payloads live in the World's typed side arenas;
/// the ring entry carries only the dispatch key (`id`) and, for deliveries,
/// the arena slot of the (possibly broadcast-shared) message payload.
struct RingEvent {
  Time when = 0;            ///< snapped event time
  std::uint64_t order = 0;  ///< (tie_rank << 62) | seq -- FIFO tie-break
  EventKind kind = EventKind::kInvoke;
  ProcId proc = 0;
  std::uint64_t id = 0;    ///< invoke_id / message_id / timer_id
  std::uint64_t slot = 0;  ///< kDeliver: payload arena slot
};

/// Packs the heap's (tie_rank, seq) tie-break into RingEvent::order.
[[nodiscard]] constexpr std::uint64_t ring_order(int tie_rank, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(tie_rank) << 62) | seq;
}

[[nodiscard]] inline bool ring_event_less(const RingEvent& a, const RingEvent& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.order < b.order;
}

class EventRing {
 public:
  /// `bucket_width_ticks` is the time span of one bucket on the tick grid;
  /// `buckets` (a power of two) fixes the ring horizon at width * buckets.
  /// width_for() picks a width putting a handful of buckets per message
  /// delay, which keeps bucket occupancy small for the workloads the World
  /// generates.
  explicit EventRing(std::int64_t bucket_width_ticks = 1 << 22, std::size_t buckets = 1024)
      : width_(bucket_width_ticks) {
    if (width_ <= 0) throw std::invalid_argument("EventRing: bucket width must be positive");
    if (buckets == 0 || (buckets & (buckets - 1)) != 0) {
      throw std::invalid_argument("EventRing: bucket count must be a power of two");
    }
    mask_ = buckets - 1;
  }

  /// Bucket width covering the horizon [now, now + 4d] with the full ring.
  [[nodiscard]] static std::int64_t width_for(double d, std::size_t buckets = 1024) {
    const auto ticks = static_cast<std::int64_t>(std::llround(d * kTickGrid));
    const auto width = ticks / static_cast<std::int64_t>(buckets / 4);
    return width > 0 ? width : 1;
  }

  /// Monotone map from snapped event times to bucket-grid ticks.  Times are
  /// nonnegative in every run; negative inputs clamp to 0, which degrades to
  /// a sorted-merge into the current bucket and never reorders.
  [[nodiscard]] static std::int64_t tick_of(Time when) {
    const auto t = static_cast<std::int64_t>(std::llround(when * kTickGrid));
    return t > 0 ? t : 0;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push(RingEvent ev) {
    const std::int64_t bn = tick_of(ev.when) / width_;
    ++size_;
    if (bn <= cur_num_) {
      // Lands in the bucket being drained (zero-delay timer, same-time
      // invoke from a response hook): merge into the sorted remainder so it
      // pops in key order among the still-pending events -- exactly what
      // the heap did with a push during dispatch.
      const auto it = std::upper_bound(cur_.begin() + static_cast<std::ptrdiff_t>(cur_pos_),
                                       cur_.end(), ev, ring_event_less);
      cur_.insert(it, ev);
      return;
    }
    if (bn <= cur_num_ + static_cast<std::int64_t>(mask_ + 1)) {
      const auto slot = static_cast<std::size_t>(bn) & mask_;
      ring_buckets()[slot].push_back(ev);
      set_occ(slot);
      ++ring_count_;
      return;
    }
    // Beyond the horizon.  Far pushes that arrive in nondecreasing key order
    // (the common case: a pre-scheduled open-loop arrival plan is generated
    // time-ascending) ride an O(1) append/consume FIFO lane; only the rare
    // out-of-order stragglers pay the staging heap's O(log n).
    if (far_fifo_pos_ == far_fifo_.size() || !ring_event_less(ev, far_fifo_.back())) {
      far_fifo_.push_back(ev);
      return;
    }
    far_.push(ev);
  }

  /// Removes and returns the smallest (when, order) event.  Throws
  /// std::logic_error when empty.
  RingEvent pop() {
    if (size_ == 0) throw std::logic_error("EventRing::pop: empty");
    while (cur_pos_ == cur_.size()) advance();
    --size_;
    return cur_[cur_pos_++];
  }

 private:
  [[nodiscard]] std::vector<std::vector<RingEvent>>& ring_buckets() {
    if (slots_.empty()) {
      slots_.resize(mask_ + 1);
      occ_.resize((mask_ + 64) / 64, 0);
    }
    return slots_;
  }

  void set_occ(std::size_t slot) { occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63); }
  void clear_occ(std::size_t slot) { occ_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63)); }

  /// First occupied slot at or cyclically after `from`.  Only called with
  /// ring_count_ > 0, so some bit is set.
  [[nodiscard]] std::size_t next_occupied(std::size_t from) const {
    const std::size_t nwords = occ_.size();
    std::size_t w = from >> 6;
    std::uint64_t word = occ_[w] & (~std::uint64_t{0} << (from & 63));
    for (std::size_t i = 0; i <= nwords; ++i) {
      if (word != 0) return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      w = w + 1 == nwords ? 0 : w + 1;
      word = occ_[w];
    }
    throw std::logic_error("EventRing::next_occupied: no occupied bucket");
  }

  /// Earliest staged far event across the FIFO lane and the heap, or nullptr.
  [[nodiscard]] const RingEvent* far_front() const {
    const RingEvent* heap = far_.empty() ? nullptr : &far_.top();
    const RingEvent* fifo = far_fifo_pos_ < far_fifo_.size() ? &far_fifo_[far_fifo_pos_] : nullptr;
    if (heap == nullptr) return fifo;
    if (fifo == nullptr) return heap;
    return ring_event_less(*heap, *fifo) ? heap : fifo;
  }

  void advance() {
    cur_.clear();
    cur_pos_ = 0;
    // Jump straight to the next bucket holding an event instead of crawling
    // epoch by epoch: sparse schedules (open-loop arrival plans spread over
    // millions of ticks) would otherwise pay an advance per EMPTY bucket.
    // The occupancy bitmap gives the next resident ring bucket; the staging
    // area caps the jump so far events are staged before their epoch.
    if (ring_count_ == 0) {
      cur_num_ = tick_of(far_front()->when) / width_;
    } else {
      const auto from = static_cast<std::size_t>(cur_num_ + 1) & mask_;
      const std::size_t slot = next_occupied(from);
      const std::size_t distance = (slot + (mask_ + 1) - from) & mask_;
      std::int64_t next = cur_num_ + 1 + static_cast<std::int64_t>(distance);
      const RingEvent* far = far_front();
      if (far != nullptr) next = std::min(next, tick_of(far->when) / width_);
      cur_num_ = next;
    }
    // Stage-in: the jump exposed new buckets; move every staged event now in
    // range.  The limit is B-1 (not B) buckets ahead: staging runs before
    // this epoch's bucket is swapped out, so bucket cur_num_ + B would alias
    // the still-occupied slot of bucket cur_num_ and the far event would pop
    // a whole revolution early.  Staged buckets [cur_num_, cur_num_ + B - 1]
    // have distinct slot indices.
    const std::int64_t limit = cur_num_ + static_cast<std::int64_t>(mask_);
    while (!far_.empty() && tick_of(far_.top().when) / width_ <= limit) {
      const RingEvent& ev = far_.top();
      const auto slot = static_cast<std::size_t>(tick_of(ev.when) / width_) & mask_;
      ring_buckets()[slot].push_back(ev);
      set_occ(slot);
      ++ring_count_;
      far_.pop();
    }
    while (far_fifo_pos_ < far_fifo_.size() &&
           tick_of(far_fifo_[far_fifo_pos_].when) / width_ <= limit) {
      const RingEvent& ev = far_fifo_[far_fifo_pos_];
      const auto slot = static_cast<std::size_t>(tick_of(ev.when) / width_) & mask_;
      ring_buckets()[slot].push_back(ev);
      set_occ(slot);
      ++ring_count_;
      ++far_fifo_pos_;
    }
    if (far_fifo_pos_ == far_fifo_.size() && far_fifo_pos_ > 0) {
      far_fifo_.clear();
      far_fifo_pos_ = 0;
    }
    const auto cur_slot = static_cast<std::size_t>(cur_num_) & mask_;
    auto& bucket = ring_buckets()[cur_slot];
    if (!bucket.empty()) {
      cur_.swap(bucket);
      clear_occ(cur_slot);
      ring_count_ -= cur_.size();
      std::sort(cur_.begin(), cur_.end(), ring_event_less);
    }
  }

  struct FarGreater {
    bool operator()(const RingEvent& a, const RingEvent& b) const {
      return ring_event_less(b, a);
    }
  };

  std::int64_t width_;
  std::size_t mask_ = 0;
  std::vector<std::vector<RingEvent>> slots_;  ///< lazily sized ring of buckets
  std::vector<std::uint64_t> occ_;             ///< per-slot occupancy bits
  std::vector<RingEvent> cur_;                 ///< sorted events of bucket cur_num_
  std::size_t cur_pos_ = 0;
  std::int64_t cur_num_ = -1;   ///< bucket number loaded into cur_
  std::size_t ring_count_ = 0;  ///< events held in slots_
  std::priority_queue<RingEvent, std::vector<RingEvent>, FarGreater> far_;
  std::vector<RingEvent> far_fifo_;  ///< nondecreasing far pushes, consumed front-to-back
  std::size_t far_fifo_pos_ = 0;     ///< first unconsumed far_fifo_ index
  std::size_t size_ = 0;
};

}  // namespace lintime::sim
