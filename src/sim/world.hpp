#pragma once
// World: the deterministic discrete-event simulator tying together
// processes, the network (delay model), clocks (offsets) and the trace
// recorder.  One World = one run of the model of Section 2.2.

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <vector>

#include "sim/delay_model.hpp"
#include "sim/model_params.hpp"
#include "sim/process.hpp"
#include "sim/run_record.hpp"
#include "sim/slot_map.hpp"

namespace lintime::adt {
class DataType;
}  // namespace lintime::adt

namespace lintime::sim {

/// Simulator configuration.
struct WorldConfig {
  ModelParams params;
  std::vector<Time> clock_offsets;  ///< size n; empty = all zero

  /// Optional: the data type this run exercises.  When set (it must outlive
  /// the World), invocations resolve their operation name to an interned
  /// adt::OpId once at schedule time and every OpRecord carries it, so
  /// downstream metrics can aggregate on integers instead of strings.
  const adt::DataType* type = nullptr;

  /// EXTENSION (outside the paper's model, for the robustness bench): clock
  /// rates per process; local_time = rate * real + offset.  Empty = all 1
  /// (the paper's drift-free clocks).  Timer duration D set at local time L
  /// fires when the local clock reaches L + D, i.e. after D / rate real
  /// time.  The shifting machinery assumes rate 1 and must not be applied
  /// to drifting records.
  std::vector<Time> clock_rates;

  /// EXTENSION: fraction of messages silently dropped (violating the
  /// reliable-network assumption), selected deterministically per seed.
  double drop_probability = 0;
  std::uint64_t drop_seed = 0;
  std::shared_ptr<DelayModel> delays;  ///< nullptr = ConstantDelay(d)
  bool enforce_valid_delays = true;    ///< assert delays within [d-u, d]
  bool enforce_valid_skew = true;      ///< assert |c_i - c_j| <= eps

  /// ABLATION ONLY: process timer expirations before message receipts at
  /// equal times (the opposite of the model's boundary rule).  Algorithm 1's
  /// correctness argument (Lemma 5/6, "knows about op1 by t+d <= t'+d+eps")
  /// permits equality, which requires receipts to be handled first; flipping
  /// this breaks the algorithm at exact boundary ties -- demonstrated in
  /// tests/core/ablation_test.cpp and bench/ablations.
  bool timers_before_deliveries = false;
};

class World {
 public:
  using ProcessFactory = std::function<std::unique_ptr<Process>(ProcId)>;
  using ResponseHook = std::function<void(World&, const OpRecord&)>;

  World(WorldConfig config, const ProcessFactory& factory);

  /// Schedules an operation invocation at `proc` at real time `when`.
  /// Throws if this would overlap a still-pending invocation known at call
  /// time (the model allows at most one pending instance per process); the
  /// run loop re-checks at execution time.
  void invoke_at(Time when, ProcId proc, std::string op, adt::Value arg);

  /// Registers a hook called on every operation response; the hook may call
  /// invoke_at (closed-loop workloads).
  void set_response_hook(ResponseHook hook) { response_hook_ = std::move(hook); }

  /// Runs until no events remain (Eventual Quiescence) or `max_events` is
  /// exceeded (throws -- indicates a runaway algorithm).
  void run(std::uint64_t max_events = 10'000'000);

  /// Current simulated real time.
  [[nodiscard]] Time now() const { return now_; }

  [[nodiscard]] const ModelParams& params() const { return config_.params; }
  [[nodiscard]] const std::vector<OpRecord>& ops() const { return record_.ops; }
  [[nodiscard]] const RunRecord& record() const { return record_; }

  /// Direct access to a process (for end-of-run state inspection, e.g. the
  /// History Oblivion checks in the shift experiments).
  [[nodiscard]] Process& process(ProcId p) { return *processes_[static_cast<std::size_t>(p)]; }

 private:
  // Events are deliberately payload-free: the heap sifts in push/pop move
  // each displaced element O(log n) times, so carrying the invocation's
  // op-name string and argument Value inside Event would copy them on every
  // sift.  Payloads live in side maps (pending_invokes_ / in_flight_ /
  // timers_) keyed by id -- one move in at schedule time, one move out at
  // dispatch -- and Event stays a small trivially-movable struct.
  struct Event {
    Time when = 0;
    std::uint64_t seq = 0;  ///< tie-break: FIFO among simultaneous events
    enum class Kind { kDeliver = 0, kTimer = 1, kInvoke = 2 } kind = Kind::kInvoke;
    ProcId proc = 0;

    // kInvoke:
    std::uint64_t invoke_id = 0;
    // kDeliver:
    std::uint64_t message_id = 0;
    // kTimer:
    std::uint64_t timer_id = 0;

    // At equal times, deliveries are processed before timers and timers
    // before invocations (tie_rank, set at push time; the deliver-first rule
    // can be flipped for ablation via WorldConfig).  The deliver-before-timer
    // rule matters for correctness at exact boundary ties: Lemma 5's argument
    // ("every process knows about op1 by t+d <= t'+d+eps before it executes
    // op2") permits equality, in which case the message receipt must be
    // handled before the execute timer that fires at the same instant.
    int tie_rank = 0;

    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      if (a.tie_rank != b.tie_rank) return a.tie_rank > b.tie_rank;
      return a.seq > b.seq;
    }
  };

  struct PendingTimer {
    ProcId proc;
    std::any data;
  };

  struct PendingInvoke {
    std::string op;
    adt::Value arg;
    adt::OpId op_id;  ///< resolved once at invoke_at when config_.type is set
  };

  struct PendingMessage {
    ProcId src;
    ProcId dst;
    std::any payload;
  };

  class ContextImpl;
  friend class ContextImpl;

  void dispatch(const Event& ev);
  void push_event(Event ev);

  WorldConfig config_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::uint64_t next_message_id_ = 1;
  std::uint64_t next_invoke_id_ = 1;
  std::mt19937_64 drop_rng_{0};
  std::uint64_t next_op_uid_ = 1;
  Time now_ = 0;

  // Sequential ids consumed near-FIFO: SlotMap beats std::map's node
  // allocation + pointer chase on the dispatch hot path.
  SlotMap<PendingTimer> timers_;             ///< live timers
  SlotMap<PendingMessage> in_flight_;        ///< undelivered messages
  SlotMap<PendingInvoke> pending_invokes_;   ///< scheduled invocations

  /// Pending invocation per process (index into record_.ops), or -1.
  std::vector<std::int64_t> pending_op_;

  RunRecord record_;
  ResponseHook response_hook_;
};

}  // namespace lintime::sim
