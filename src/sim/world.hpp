#pragma once
// World: the deterministic discrete-event simulator tying together
// processes, the network (delay model), clocks (offsets) and the trace
// recorder.  One World = one run of the model of Section 2.2.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <vector>

#include "adt/op.hpp"
#include "sim/delay_model.hpp"
#include "sim/event_ring.hpp"
#include "sim/fault.hpp"
#include "sim/model_params.hpp"
#include "sim/process.hpp"
#include "sim/run_record.hpp"
#include "sim/slot_map.hpp"

namespace lintime::adt {
class DataType;
}  // namespace lintime::adt

namespace lintime::sim {

/// Which event scheduler a World runs on.  Both produce byte-identical
/// RunRecords (tests/sim/event_ring_test.cpp); the ring is the fast default,
/// the binary heap is retained as the equivalence baseline and for the
/// pre-refactor comparison in BM_ServingThroughput.
enum class SchedulerKind {
  kEventRing,   ///< contiguous calendar queue + shared broadcast payloads
  kBinaryHeap,  ///< the original std::priority_queue + per-send side tables
};

/// How much of the run to record.  Step and message records dominate memory
/// at serving scale (a 10^6-op run generates ~10^7 steps); kOpsOnly keeps
/// only the operation records (what the checkers and latency metrics
/// consume) and leaves steps/messages empty.  The recorded ops are
/// byte-identical between the two levels.
enum class RecordDetail {
  kFull,     ///< steps + messages + ops (the default; shifting needs steps)
  kOpsOnly,  ///< ops only, for 10^5+-op serving runs
};

/// Simulator configuration.
struct WorldConfig {
  ModelParams params;
  std::vector<Time> clock_offsets;  ///< size n; empty = all zero

  /// Optional: the data type this run exercises.  When set (it must outlive
  /// the World), invocations resolve their operation name to an interned
  /// adt::OpId once at schedule time and every OpRecord carries it, so
  /// downstream metrics can aggregate on integers instead of strings.
  const adt::DataType* type = nullptr;

  /// EXTENSION (outside the paper's model, for the robustness bench): clock
  /// rates per process; local_time = rate * real + offset.  Empty = all 1
  /// (the paper's drift-free clocks).  Timer duration D set at local time L
  /// fires when the local clock reaches L + D, i.e. after D / rate real
  /// time.  The shifting machinery assumes rate 1 and must not be applied
  /// to drifting records.  Rates must be positive (validated).
  std::vector<Time> clock_rates;

  /// EXTENSION: fraction of messages silently dropped (violating the
  /// reliable-network assumption), selected deterministically per seed.
  /// Must lie within [0, 1] (validated).
  double drop_probability = 0;
  std::uint64_t drop_seed = 0;

  /// EXTENSION: deterministic fault schedule (timed crashes, timed link-drop
  /// windows; see sim/fault.hpp), layered under drop_probability: the drop
  /// coin for a message is always drawn first, so an empty schedule leaves
  /// the RNG stream -- and therefore the RunRecord -- byte-identical to a
  /// config without one.  Validated against n in the World constructor.
  FaultSchedule faults;
  std::shared_ptr<DelayModel> delays;  ///< nullptr = ConstantDelay(d)
  bool enforce_valid_delays = true;    ///< assert delays within [d-u, d]
  bool enforce_valid_skew = true;      ///< assert |c_i - c_j| <= eps

  SchedulerKind scheduler = SchedulerKind::kEventRing;
  RecordDetail record_detail = RecordDetail::kFull;

  /// ABLATION ONLY: process timer expirations before message receipts at
  /// equal times (the opposite of the model's boundary rule).  Algorithm 1's
  /// correctness argument (Lemma 5/6, "knows about op1 by t+d <= t'+d+eps")
  /// permits equality, which requires receipts to be handled first; flipping
  /// this breaks the algorithm at exact boundary ties -- demonstrated in
  /// tests/core/ablation_test.cpp and bench/ablations.
  bool timers_before_deliveries = false;
};

class World {
 public:
  using ProcessFactory = std::function<std::unique_ptr<Process>(ProcId)>;
  using ResponseHook = std::function<void(World&, const OpRecord&)>;

  World(WorldConfig config, const ProcessFactory& factory);

  /// Schedules an operation invocation at `proc` at real time `when`.
  /// Throws if this would overlap a still-pending invocation known at call
  /// time (the model allows at most one pending instance per process); the
  /// run loop re-checks at execution time.
  ///
  /// detlint-deprecated(hot-loop): the string overload resolves the name per
  /// call; scheduling loops (bench/, harness) must intern once and use the
  /// OpId overload below.  Kept for one-off calls and name-driven tests.
  void invoke_at(Time when, ProcId proc, std::string op, adt::Value arg);

  /// Interned-dispatch overload for hot scheduling loops: no per-call name
  /// lookup.  Requires WorldConfig::type (the id's issuer); throws
  /// std::out_of_range on an invalid or foreign id.
  void invoke_at(Time when, ProcId proc, adt::OpId op, adt::Value arg);

  /// Registers a hook called on every operation response; the hook may call
  /// invoke_at (closed-loop workloads).
  void set_response_hook(ResponseHook hook) { response_hook_ = std::move(hook); }

  /// Runs until no events remain (Eventual Quiescence) or `max_events` is
  /// exceeded (throws -- indicates a runaway algorithm).
  void run(std::uint64_t max_events = 10'000'000);

  /// Current simulated real time.
  [[nodiscard]] Time now() const { return now_; }

  [[nodiscard]] const ModelParams& params() const { return config_.params; }
  [[nodiscard]] const std::vector<OpRecord>& ops() const { return record_.ops; }
  [[nodiscard]] const RunRecord& record() const { return record_; }

  /// Moves the record out of a finished world.  A million-op serving run's
  /// record owns ~3M heap blocks (op names, arguments, returns); callers
  /// that would otherwise copy-and-discard (harness::execute) take it
  /// instead.  The world must not dispatch again afterwards.
  [[nodiscard]] RunRecord take_record() { return std::move(record_); }

  /// Direct access to a process (for end-of-run state inspection, e.g. the
  /// History Oblivion checks in the shift experiments).
  [[nodiscard]] Process& process(ProcId p) { return *processes_[static_cast<std::size_t>(p)]; }

 private:
  // Legacy-scheduler events are deliberately payload-free: the heap sifts in
  // push/pop move each displaced element O(log n) times, so carrying the
  // invocation's op-name string and argument Value inside Event would copy
  // them on every sift.  Payloads live in side maps (pending_invokes_ /
  // in_flight_ / timers_) keyed by id -- one move in at schedule time, one
  // move out at dispatch -- and Event stays a small trivially-movable
  // struct.  The ring scheduler shares the same side tables for invokes and
  // timers but references broadcast-shared message payloads by arena slot
  // (see payloads_).
  struct Event {
    Time when = 0;
    std::uint64_t seq = 0;  ///< tie-break: FIFO among simultaneous events
    EventKind kind = EventKind::kInvoke;
    ProcId proc = 0;

    // kInvoke: invoke_id; kDeliver: message_id; kTimer: timer_id.
    std::uint64_t id = 0;

    // At equal times, deliveries are processed before timers and timers
    // before invocations (tie_rank, set at push time; the deliver-first rule
    // can be flipped for ablation via WorldConfig).  The deliver-before-timer
    // rule matters for correctness at exact boundary ties: Lemma 5's argument
    // ("every process knows about op1 by t+d <= t'+d+eps before it executes
    // op2") permits equality, in which case the message receipt must be
    // handled before the execute timer that fires at the same instant.
    int tie_rank = 0;

    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      if (a.tie_rank != b.tie_rank) return a.tie_rank > b.tie_rank;
      return a.seq > b.seq;
    }
  };

  struct PendingTimer {
    ProcId proc;
    Payload data;
  };

  struct PendingInvoke {
    std::string op;
    adt::Value arg;
    adt::OpId op_id;  ///< resolved once at invoke_at when config_.type is set
  };

  /// Heap scheduler only: one stored payload per delivery.
  struct PendingMessage {
    ProcId src;
    ProcId dst;
    Payload payload;
  };

  /// Ring scheduler: one stored payload per send OR broadcast; `remaining`
  /// deliveries reference the slot before it is reclaimed.  This is what
  /// makes Algorithm 1's broadcasts cheap -- n-1 ring entries fan out from
  /// one payload instead of n-1 deep copies of the announcement.  The
  /// payload itself is a typed inline record (sim/payload.hpp); the rare
  /// oversized argument is a refcounted box inside PayloadVal, so even then
  /// fan-out shares one heap object.
  struct SharedPayload {
    Payload payload;
    ProcId src = 0;
    std::uint32_t remaining = 0;
  };

  class ContextImpl;
  friend class ContextImpl;

  void schedule_invoke(Time when, ProcId proc, std::string op, adt::OpId op_id, adt::Value arg);
  void dispatch(EventKind kind, ProcId proc, std::uint64_t id, std::uint64_t payload_slot);

  /// The dispatch body, instantiated once per RecordDetail level.  kFull
  /// carries a StepRecord through the handler and appends it to the trace;
  /// the slim instantiation passes a null step and touches no per-step or
  /// per-message bookkeeping at all -- at serving scale (10^6 ops, ~10^7
  /// steps) that bookkeeping was a measurable share of the hot loop.
  template <bool kFull>
  void dispatch_impl(EventKind kind, ProcId proc, std::uint64_t id, std::uint64_t payload_slot);
  [[nodiscard]] int tie_rank_of(EventKind kind) const;
  void push_event(Event ev);
  void push_ring(EventKind kind, Time when, ProcId proc, std::uint64_t id, std::uint64_t slot);

  /// True if `proc` has halted by real time `t` (crash times are snapped to
  /// the event grid; a crash at `when` already blocks events AT `when`).
  [[nodiscard]] bool crashed_by(ProcId proc, Time t) const {
    return has_crashes_ && t >= crash_at_[static_cast<std::size_t>(proc)];
  }
  /// True if a message sent now on src -> dst falls inside a drop window.
  [[nodiscard]] bool link_cut(ProcId src, ProcId dst) const;

  WorldConfig config_;
  bool record_full_ = true;  ///< config_.record_detail == kFull
  std::vector<std::unique_ptr<Process>> processes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;  ///< kBinaryHeap
  EventRing ring_;                                                        ///< kEventRing
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::uint64_t next_message_id_ = 1;
  std::uint64_t next_invoke_id_ = 1;
  std::uint64_t next_payload_slot_ = 1;
  std::mt19937_64 drop_rng_{0};
  std::uint64_t next_op_uid_ = 1;
  Time now_ = 0;

  // Fault plane, precompiled from config_.faults: per-proc halt time (+inf
  // when the proc never crashes) and grid-snapped link windows.  The two
  // bools keep the empty-schedule dispatch/send paths to one predictable
  // branch each.
  std::vector<Time> crash_at_;
  std::vector<LinkWindow> link_windows_;
  bool has_crashes_ = false;
  bool has_link_windows_ = false;

  // Sequential ids consumed near-FIFO: SlotMap beats std::map's node
  // allocation + pointer chase on the dispatch hot path.
  SlotMap<PendingTimer> timers_;            ///< live timers
  SlotMap<PendingMessage> in_flight_;       ///< undelivered messages (heap mode)
  SlotMap<SharedPayload> payloads_;         ///< message payload arena (ring mode)
  SlotMap<PendingInvoke> pending_invokes_;  ///< scheduled invocations

  /// Pending invocation per process (index into record_.ops), or -1.
  std::vector<std::int64_t> pending_op_;

  RunRecord record_;
  ResponseHook response_hook_;
};

}  // namespace lintime::sim
