#include "sim/world.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "adt/data_type.hpp"

namespace lintime::sim {

namespace {

// Delay-validity comparisons tolerate tiny floating-point error; the model's
// admissibility bounds are closed intervals.
constexpr Time kTol = 1e-7;

// All event times are snapped to a fixed grid so that boundaries that are
// mathematically equal but computed along different floating-point addition
// paths (e.g. a response at t0 + (d+eps) + (X+eps) vs. an invocation at
// (t0 + X+eps) + (d+eps)) compare exactly equal.  The paper's model works
// over the reals where such boundaries coincide; without snapping, one-ulp
// differences create spurious real-time precedence edges that contradict the
// timestamp tie-breaking and make correct runs look non-linearizable.
// The EventRing buckets on the same grid (its tick_of()), which is what makes
// its bucket numbering a monotone function of event times.
constexpr Time kGrid = kTickGrid;  // resolution 1e-9 time units

Time snap(Time t) { return std::round(t * kGrid) / kGrid; }

}  // namespace

/// Per-step context handed to the process being dispatched.  Collects the
/// step's side effects (sent messages, response) into the trace when a step
/// record is attached; under RecordDetail::kOpsOnly `step` is null and the
/// context skips all per-step bookkeeping.
class World::ContextImpl final : public Context {
 public:
  ContextImpl(World& world, ProcId self, StepRecord* step)
      : world_(world), self_(self), step_(step) {}

  [[nodiscard]] ProcId self() const override { return self_; }
  [[nodiscard]] int n() const override { return world_.config_.params.n; }
  [[nodiscard]] const ModelParams& params() const override { return world_.config_.params; }

  [[nodiscard]] Time local_time() const override {
    const auto i = static_cast<std::size_t>(self_);
    return snap(world_.now_ * world_.config_.clock_rates[i] +
                world_.config_.clock_offsets[i]);
  }

  void send(ProcId dst, Payload payload) override {
    if (dst == self_ || dst < 0 || dst >= n()) {
      throw std::invalid_argument("send: bad destination " + std::to_string(dst));
    }
    const std::uint64_t id = world_.next_message_id_++;
    // Fault-plane ordering contract: the drop coin is ALWAYS drawn first, so
    // an empty schedule leaves the RNG stream untouched; the link-window
    // check consumes nothing; the crash check runs after the delay model so
    // the delay stream stays aligned whether or not the destination is up.
    if (draw_drop() || world_.link_cut(self_, dst)) {
      record_dropped(id, dst);
      return;
    }
    const Time recv = delivery_time(dst, id);
    if (world_.crashed_by(dst, recv)) {
      record_dropped(id, dst);
      return;
    }
    record_delivered(id, dst, recv);
    if (world_.config_.scheduler == SchedulerKind::kBinaryHeap) {
      world_.in_flight_.insert(id, PendingMessage{self_, dst, std::move(payload)});
      Event ev;
      ev.when = recv;
      ev.kind = EventKind::kDeliver;
      ev.proc = dst;
      ev.id = id;
      world_.push_event(std::move(ev));
    } else {
      const std::uint64_t slot = world_.next_payload_slot_++;
      world_.payloads_.insert(slot, SharedPayload{std::move(payload), self_, 1});
      world_.push_ring(EventKind::kDeliver, recv, dst, id, slot);
    }
  }

  void broadcast(Payload payload) override {
    if (world_.config_.scheduler == SchedulerKind::kBinaryHeap) {
      // Legacy semantics: one payload copy per destination.
      for (ProcId p = 0; p < n(); ++p) {
        if (p != self_) send(p, payload);
      }
      return;
    }
    // Batched delivery: ONE arena slot holds the payload; n-1 ring entries
    // reference it.  Message ids, drop coins, delays and records are drawn
    // per destination in exactly the per-send order, so the RunRecord is
    // byte-identical to the legacy loop -- only the n-1 payload copies and
    // side-table round trips disappear.
    const std::uint64_t slot = world_.next_payload_slot_++;
    world_.payloads_.insert(slot, SharedPayload{std::move(payload), self_, 0});
    std::uint32_t delivered = 0;
    for (ProcId dst = 0; dst < n(); ++dst) {
      if (dst == self_) continue;
      const std::uint64_t id = world_.next_message_id_++;
      if (draw_drop() || world_.link_cut(self_, dst)) {
        record_dropped(id, dst);
        continue;
      }
      const Time recv = delivery_time(dst, id);
      if (world_.crashed_by(dst, recv)) {
        record_dropped(id, dst);
        continue;
      }
      record_delivered(id, dst, recv);
      world_.push_ring(EventKind::kDeliver, recv, dst, id, slot);
      ++delivered;
    }
    if (delivered == 0) {
      world_.payloads_.erase(slot);
    } else {
      world_.payloads_.find(slot)->remaining = delivered;
    }
  }

  TimerId set_timer(Time delay, Payload data) override {
    if (delay < 0) throw std::invalid_argument("set_timer: negative delay");
    const std::uint64_t id = world_.next_timer_id_++;
    world_.timers_.insert(id, PendingTimer{self_, std::move(data)});
    // A local-clock duration takes delay / rate real time (rate 1, the
    // paper's model, makes them equal).
    const Time rate = world_.config_.clock_rates[static_cast<std::size_t>(self_)];
    const Time when = snap(world_.now_ + delay / rate);
    if (world_.config_.scheduler == SchedulerKind::kBinaryHeap) {
      Event ev;
      ev.when = when;
      ev.kind = EventKind::kTimer;
      ev.proc = self_;
      ev.id = id;
      world_.push_event(std::move(ev));
    } else {
      world_.push_ring(EventKind::kTimer, when, self_, id, 0);
    }
    return TimerId{id};
  }

  void cancel_timer(TimerId id) override { world_.timers_.erase(id.v); }

  void respond(adt::Value ret) override {
    const auto pending = world_.pending_op_[static_cast<std::size_t>(self_)];
    if (pending < 0) {
      throw std::logic_error("respond: no pending invocation at p" + std::to_string(self_));
    }
    auto& op = world_.record_.ops[static_cast<std::size_t>(pending)];
    op.ret = std::move(ret);
    op.response_real = world_.now_;
    world_.pending_op_[static_cast<std::size_t>(self_)] = -1;
    if (step_ != nullptr) {
      step_->responded = true;
      step_->response = op.ret;
    }
    if (world_.response_hook_) world_.response_hook_(world_, op);
  }

 private:
  /// One drop coin per message id, in id order -- both schedulers and both
  /// send/broadcast paths consume the RNG identically.
  [[nodiscard]] bool draw_drop() {
    if (world_.config_.drop_probability <= 0) return false;
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    return coin(world_.drop_rng_) < world_.config_.drop_probability;
  }

  [[nodiscard]] Time delivery_time(ProcId dst, std::uint64_t id) {
    const Time delay = world_.config_.delays->delay(self_, dst, world_.now_, id);
    if (world_.config_.enforce_valid_delays) {
      const auto& p = world_.config_.params;
      if (delay < p.min_delay() - kTol || delay > p.d + kTol) {
        throw std::logic_error("delay model produced invalid delay " + std::to_string(delay) +
                               " outside [" + std::to_string(p.min_delay()) + ", " +
                               std::to_string(p.d) + "]");
      }
    }
    return snap(world_.now_ + delay);
  }

  void record_dropped(std::uint64_t id, ProcId dst) {
    if (step_ == nullptr) return;  // kOpsOnly: no message/step bookkeeping
    // Dropped: recorded as sent-but-unreceived; no delivery event.
    MessageRecord rec;
    rec.id = id;
    rec.src = self_;
    rec.dst = dst;
    rec.send_real = world_.now_;
    rec.received = false;
    world_.record_.messages.push_back(rec);
    step_->sent_message_ids.push_back(id);
  }

  void record_delivered(std::uint64_t id, ProcId dst, Time recv) {
    if (step_ == nullptr) return;  // kOpsOnly: no message/step bookkeeping
    MessageRecord rec;
    rec.id = id;
    rec.src = self_;
    rec.dst = dst;
    rec.send_real = world_.now_;
    rec.recv_real = recv;
    rec.received = true;  // reliable network: everything sent is delivered
    world_.record_.messages.push_back(rec);
    step_->sent_message_ids.push_back(id);
  }

  World& world_;
  ProcId self_;
  StepRecord* step_;  ///< null under RecordDetail::kOpsOnly
};

World::World(WorldConfig config, const ProcessFactory& factory) : config_(std::move(config)) {
  config_.params.validate();
  const auto n = static_cast<std::size_t>(config_.params.n);
  if (config_.clock_offsets.empty()) config_.clock_offsets.assign(n, 0.0);
  if (config_.clock_offsets.size() != n) {
    throw std::invalid_argument("WorldConfig: clock_offsets size != n");
  }
  if (config_.clock_rates.empty()) config_.clock_rates.assign(n, 1.0);
  if (config_.clock_rates.size() != n) {
    throw std::invalid_argument("WorldConfig: clock_rates size != n");
  }
  for (std::size_t i = 0; i < config_.clock_rates.size(); ++i) {
    // !(r > 0) rather than r <= 0: also rejects NaN.
    if (!(config_.clock_rates[i] > 0)) {
      throw std::invalid_argument("WorldConfig: clock_rates[" + std::to_string(i) +
                                  "] must be > 0, got " +
                                  std::to_string(config_.clock_rates[i]));
    }
  }
  if (!(config_.drop_probability >= 0.0 && config_.drop_probability <= 1.0)) {
    throw std::invalid_argument("WorldConfig: drop_probability must be in [0, 1], got " +
                                std::to_string(config_.drop_probability));
  }
  drop_rng_.seed(config_.drop_seed);
  if (config_.enforce_valid_skew) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (std::abs(config_.clock_offsets[i] - config_.clock_offsets[j]) >
            config_.params.eps + kTol) {
          throw std::invalid_argument("WorldConfig: clock skew exceeds eps");
        }
      }
    }
  }
  if (config_.delays == nullptr) {
    config_.delays = std::make_shared<ConstantDelay>(config_.params.d);
  }
  config_.faults.validate(config_.params.n);
  // Precompile the schedule: per-proc halt times (+inf = never) and
  // grid-snapped windows, so dispatch/send compare against the same snapped
  // times the event loop runs on.
  has_crashes_ = !config_.faults.crashes.empty();
  has_link_windows_ = !config_.faults.link_drops.empty();
  crash_at_.assign(n, std::numeric_limits<Time>::infinity());
  for (const CrashEvent& c : config_.faults.crashes) {
    crash_at_[static_cast<std::size_t>(c.proc)] = snap(c.when);
  }
  link_windows_ = config_.faults.link_drops;
  for (LinkWindow& w : link_windows_) {
    w.from = snap(w.from);
    w.until = snap(w.until);
  }
  record_full_ = config_.record_detail == RecordDetail::kFull;
  ring_ = EventRing(EventRing::width_for(config_.params.d));

  record_.params = config_.params;
  record_.clock_offsets = config_.clock_offsets;
  pending_op_.assign(n, -1);

  processes_.reserve(n);
  for (ProcId p = 0; p < config_.params.n; ++p) {
    processes_.push_back(factory(p));
  }
  for (ProcId p = 0; p < config_.params.n; ++p) {
    StepRecord step;  // on_start side effects recorded against a synthetic step
    step.proc = p;
    step.real_time = 0;
    step.clock_time = config_.clock_offsets[static_cast<std::size_t>(p)];
    ContextImpl ctx(*this, p, record_full_ ? &step : nullptr);
    processes_[static_cast<std::size_t>(p)]->on_start(ctx);
  }
}

bool World::link_cut(ProcId src, ProcId dst) const {
  if (!has_link_windows_) return false;
  for (const LinkWindow& w : link_windows_) {
    if ((w.src == kAnyProc || w.src == src) && (w.dst == kAnyProc || w.dst == dst) &&
        now_ >= w.from && now_ < w.until) {
      return true;
    }
  }
  return false;
}

int World::tie_rank_of(EventKind kind) const {
  switch (kind) {
    case EventKind::kDeliver:
      return config_.timers_before_deliveries ? 1 : 0;
    case EventKind::kTimer:
      return config_.timers_before_deliveries ? 0 : 1;
    case EventKind::kInvoke:
      break;
  }
  return 2;
}

void World::push_event(Event ev) {
  ev.seq = next_seq_++;
  ev.tie_rank = tie_rank_of(ev.kind);
  queue_.push(std::move(ev));
}

void World::push_ring(EventKind kind, Time when, ProcId proc, std::uint64_t id,
                      std::uint64_t slot) {
  RingEvent ev;
  ev.when = when;
  ev.order = ring_order(tie_rank_of(kind), next_seq_++);
  ev.kind = kind;
  ev.proc = proc;
  ev.id = id;
  ev.slot = slot;
  ring_.push(ev);
}

void World::invoke_at(Time when, ProcId proc, std::string op, adt::Value arg) {
  // Resolve the operation name to its interned id once, off the dispatch
  // path; unknown names stay invalid (the process's on_invoke decides).
  const adt::OpId op_id = config_.type != nullptr ? config_.type->find_op(op) : adt::OpId{};
  schedule_invoke(when, proc, std::move(op), op_id, std::move(arg));
}

void World::invoke_at(Time when, ProcId proc, adt::OpId op, adt::Value arg) {
  if (config_.type == nullptr) {
    throw std::logic_error("invoke_at(OpId): WorldConfig::type is not set");
  }
  // spec() throws std::out_of_range on an invalid or foreign id; the name is
  // still threaded through for the trace (OpRecord::op, StepRecord::op).
  schedule_invoke(when, proc, config_.type->spec(op).name, op, std::move(arg));
}

void World::schedule_invoke(Time when, ProcId proc, std::string op, adt::OpId op_id,
                            adt::Value arg) {
  if (proc < 0 || proc >= config_.params.n) {
    throw std::invalid_argument("invoke_at: bad process id");
  }
  if (when < now_) throw std::invalid_argument("invoke_at: time in the past");
  const std::uint64_t id = next_invoke_id_++;
  pending_invokes_.insert(id, PendingInvoke{std::move(op), std::move(arg), op_id});
  const Time at = snap(when);
  if (config_.scheduler == SchedulerKind::kBinaryHeap) {
    Event ev;
    ev.when = at;
    ev.kind = EventKind::kInvoke;
    ev.proc = proc;
    ev.id = id;
    push_event(std::move(ev));
  } else {
    push_ring(EventKind::kInvoke, at, proc, id, 0);
  }
}

// Declared a deterministic entry point in detlint.toml
// ([capability.deterministic]): the event loop and everything it dispatches
// must replay byte-identically from the seed, so detlint's reachability pass
// bans wall-clock/randomness/hash-order tokens below this frame.
void World::run(std::uint64_t max_events) {
  // Open-loop serving plans schedule 10^5-10^6 invocations before running;
  // each becomes exactly one OpRecord, so pre-size the vector once instead
  // of paying ~20 growth copies of million-element records.
  record_.ops.reserve(record_.ops.size() + pending_invokes_.size());
  std::uint64_t handled = 0;
  if (config_.scheduler == SchedulerKind::kBinaryHeap) {
    while (!queue_.empty()) {
      if (++handled > max_events) {
        throw std::runtime_error("World::run: exceeded max_events; algorithm not quiescent?");
      }
      const Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when;
      dispatch(ev.kind, ev.proc, ev.id, 0);
    }
  } else {
    while (!ring_.empty()) {
      if (++handled > max_events) {
        throw std::runtime_error("World::run: exceeded max_events; algorithm not quiescent?");
      }
      const RingEvent ev = ring_.pop();
      now_ = ev.when;
      dispatch(ev.kind, ev.proc, ev.id, ev.slot);
    }
  }
}

void World::dispatch(EventKind kind, ProcId proc, std::uint64_t id, std::uint64_t payload_slot) {
  // One perfectly-predicted branch selects the instantiation; the slim body
  // contains no StepRecord at all, so kOpsOnly dispatch is handler + op
  // bookkeeping and nothing else.
  if (record_full_) {
    dispatch_impl<true>(kind, proc, id, payload_slot);
  } else {
    dispatch_impl<false>(kind, proc, id, payload_slot);
  }
}

template <bool kFull>
void World::dispatch_impl(EventKind kind, ProcId proc, std::uint64_t id,
                          std::uint64_t payload_slot) {
  const auto pi = static_cast<std::size_t>(proc);

  if (crashed_by(proc, now_)) {
    // A crashed process takes no steps: consume the event's side-table entry
    // (and, in ring mode, the payload refcount) and discard it.  Invocations
    // discarded here produce no OpRecord; an op already pending at the crash
    // simply never completes.  Deliveries cannot normally reach this point
    // (send() drops them when recv >= the crash time) but are handled for
    // robustness against hand-scheduled events.
    switch (kind) {
      case EventKind::kInvoke:
        pending_invokes_.take(id);
        break;
      case EventKind::kDeliver:
        if (config_.scheduler == SchedulerKind::kBinaryHeap) {
          in_flight_.take(id);
        } else if (auto* sp = payloads_.find(payload_slot); sp != nullptr) {
          if (--sp->remaining == 0) payloads_.erase(payload_slot);
        }
        break;
      case EventKind::kTimer:
        timers_.take(id);
        break;
    }
    return;
  }

  StepRecord step;
  if constexpr (kFull) {
    step.proc = proc;
    step.real_time = now_;
    step.clock_time = snap(now_ * config_.clock_rates[pi] + config_.clock_offsets[pi]);
  }
  StepRecord* step_ptr = kFull ? &step : nullptr;

  switch (kind) {
    case EventKind::kInvoke: {
      if (pending_op_[pi] >= 0) {
        throw std::logic_error("invocation at p" + std::to_string(proc) +
                               " while another instance is pending (user constraint violated)");
      }
      auto inv = pending_invokes_.take(id);
      if (!inv) break;  // should not happen

      if constexpr (kFull) {
        step.trigger = Trigger::kInvoke;
        step.op = inv->op;
        step.arg = inv->arg;
      }

      OpRecord op;
      op.proc = proc;
      op.op = std::move(inv->op);
      op.arg = std::move(inv->arg);
      op.invoke_real = now_;
      op.uid = next_op_uid_++;
      op.op_id = inv->op_id;
      pending_op_[pi] = static_cast<std::int64_t>(record_.ops.size());
      record_.ops.push_back(std::move(op));

      // The OpRecord just pushed owns the payload now; nothing re-enters
      // record_.ops until this dispatch returns, so the references stay valid
      // through on_invoke (responses and hook-driven invoke_at only touch the
      // event queue and existing records).
      const OpRecord& rec = record_.ops[static_cast<std::size_t>(pending_op_[pi])];
      ContextImpl ctx(*this, proc, step_ptr);
      if (rec.op_id.valid()) {
        processes_[pi]->on_invoke_id(ctx, rec.op_id, rec.op, rec.arg);
      } else {
        processes_[pi]->on_invoke(ctx, rec.op, rec.arg);
      }
      break;
    }
    case EventKind::kDeliver: {
      if (config_.scheduler == SchedulerKind::kBinaryHeap) {
        auto msg = in_flight_.take(id);
        if (!msg) break;  // should not happen
        if constexpr (kFull) {
          step.trigger = Trigger::kMessage;
          step.message_id = id;
        }
        ContextImpl ctx(*this, proc, step_ptr);
        processes_[pi]->on_message(ctx, msg->src, msg->payload);
      } else {
        auto* sp = payloads_.find(payload_slot);
        if (sp == nullptr) break;  // should not happen
        if constexpr (kFull) {
          step.trigger = Trigger::kMessage;
          step.message_id = id;
        }
        ContextImpl ctx(*this, proc, step_ptr);
        processes_[pi]->on_message(ctx, sp->src, sp->payload);
        // Re-find before releasing: the handler may have grown the arena
        // (deque slots are reference-stable, but re-checking costs nothing
        // and keeps this robust against future storage changes).
        auto* done = payloads_.find(payload_slot);
        if (done != nullptr && --done->remaining == 0) payloads_.erase(payload_slot);
      }
      break;
    }
    case EventKind::kTimer: {
      auto timer = timers_.take(id);
      if (!timer) return;  // cancelled; not a step at all
      if constexpr (kFull) {
        step.trigger = Trigger::kTimer;
        step.timer_id = id;
      }
      ContextImpl ctx(*this, proc, step_ptr);
      processes_[pi]->on_timer(ctx, TimerId{id}, timer->data);
      break;
    }
  }

  if constexpr (kFull) record_.steps.push_back(std::move(step));
}

}  // namespace lintime::sim
