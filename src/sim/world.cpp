#include "sim/world.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "adt/data_type.hpp"

namespace lintime::sim {

namespace {

// Delay-validity comparisons tolerate tiny floating-point error; the model's
// admissibility bounds are closed intervals.
constexpr Time kTol = 1e-7;

// All event times are snapped to a fixed grid so that boundaries that are
// mathematically equal but computed along different floating-point addition
// paths (e.g. a response at t0 + (d+eps) + (X+eps) vs. an invocation at
// (t0 + X+eps) + (d+eps)) compare exactly equal.  The paper's model works
// over the reals where such boundaries coincide; without snapping, one-ulp
// differences create spurious real-time precedence edges that contradict the
// timestamp tie-breaking and make correct runs look non-linearizable.
constexpr Time kGrid = 1e9;  // resolution 1e-9 time units

Time snap(Time t) { return std::round(t * kGrid) / kGrid; }

}  // namespace

/// Per-step context handed to the process being dispatched.  Collects the
/// step's side effects (sent messages, response) into the trace.
class World::ContextImpl final : public Context {
 public:
  ContextImpl(World& world, ProcId self, StepRecord& step)
      : world_(world), self_(self), step_(step) {}

  [[nodiscard]] ProcId self() const override { return self_; }
  [[nodiscard]] int n() const override { return world_.config_.params.n; }
  [[nodiscard]] const ModelParams& params() const override { return world_.config_.params; }

  [[nodiscard]] Time local_time() const override {
    const auto i = static_cast<std::size_t>(self_);
    return snap(world_.now_ * world_.config_.clock_rates[i] +
                world_.config_.clock_offsets[i]);
  }

  void send(ProcId dst, std::any payload) override {
    if (dst == self_ || dst < 0 || dst >= n()) {
      throw std::invalid_argument("send: bad destination " + std::to_string(dst));
    }
    const std::uint64_t id = world_.next_message_id_++;
    if (world_.config_.drop_probability > 0) {
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      if (coin(world_.drop_rng_) < world_.config_.drop_probability) {
        // Dropped: recorded as sent-but-unreceived; no delivery event.
        MessageRecord rec;
        rec.id = id;
        rec.src = self_;
        rec.dst = dst;
        rec.send_real = world_.now_;
        rec.received = false;
        world_.record_.messages.push_back(rec);
        step_.sent_message_ids.push_back(id);
        return;
      }
    }
    const Time delay =
        world_.config_.delays->delay(self_, dst, world_.now_, id);
    if (world_.config_.enforce_valid_delays) {
      const auto& p = world_.config_.params;
      if (delay < p.min_delay() - kTol || delay > p.d + kTol) {
        throw std::logic_error("delay model produced invalid delay " + std::to_string(delay) +
                               " outside [" + std::to_string(p.min_delay()) + ", " +
                               std::to_string(p.d) + "]");
      }
    }
    MessageRecord rec;
    rec.id = id;
    rec.src = self_;
    rec.dst = dst;
    rec.send_real = world_.now_;
    rec.recv_real = snap(world_.now_ + delay);
    rec.received = true;  // reliable network: everything sent is delivered
    world_.record_.messages.push_back(rec);
    world_.in_flight_.insert(id, PendingMessage{self_, dst, std::move(payload)});
    step_.sent_message_ids.push_back(id);

    Event ev;
    ev.when = rec.recv_real;
    ev.kind = Event::Kind::kDeliver;
    ev.proc = dst;
    ev.message_id = id;
    world_.push_event(std::move(ev));
  }

  void broadcast(std::any payload) override {
    for (ProcId p = 0; p < n(); ++p) {
      if (p != self_) send(p, payload);
    }
  }

  TimerId set_timer(Time delay, std::any data) override {
    if (delay < 0) throw std::invalid_argument("set_timer: negative delay");
    const std::uint64_t id = world_.next_timer_id_++;
    world_.timers_.insert(id, PendingTimer{self_, std::move(data)});
    Event ev;
    // A local-clock duration takes delay / rate real time (rate 1, the
    // paper's model, makes them equal).
    const Time rate = world_.config_.clock_rates[static_cast<std::size_t>(self_)];
    ev.when = snap(world_.now_ + delay / rate);
    ev.kind = Event::Kind::kTimer;
    ev.proc = self_;
    ev.timer_id = id;
    world_.push_event(std::move(ev));
    return TimerId{id};
  }

  void cancel_timer(TimerId id) override { world_.timers_.erase(id.v); }

  void respond(adt::Value ret) override {
    const auto pending = world_.pending_op_[static_cast<std::size_t>(self_)];
    if (pending < 0) {
      throw std::logic_error("respond: no pending invocation at p" + std::to_string(self_));
    }
    auto& op = world_.record_.ops[static_cast<std::size_t>(pending)];
    op.ret = std::move(ret);
    op.response_real = world_.now_;
    world_.pending_op_[static_cast<std::size_t>(self_)] = -1;
    step_.responded = true;
    step_.response = op.ret;
    if (world_.response_hook_) world_.response_hook_(world_, op);
  }

 private:
  World& world_;
  ProcId self_;
  StepRecord& step_;
};

World::World(WorldConfig config, const ProcessFactory& factory) : config_(std::move(config)) {
  config_.params.validate();
  const auto n = static_cast<std::size_t>(config_.params.n);
  if (config_.clock_offsets.empty()) config_.clock_offsets.assign(n, 0.0);
  if (config_.clock_offsets.size() != n) {
    throw std::invalid_argument("WorldConfig: clock_offsets size != n");
  }
  if (config_.clock_rates.empty()) config_.clock_rates.assign(n, 1.0);
  if (config_.clock_rates.size() != n) {
    throw std::invalid_argument("WorldConfig: clock_rates size != n");
  }
  for (const Time r : config_.clock_rates) {
    if (r <= 0) throw std::invalid_argument("WorldConfig: clock rates must be positive");
  }
  drop_rng_.seed(config_.drop_seed);
  if (config_.enforce_valid_skew) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (std::abs(config_.clock_offsets[i] - config_.clock_offsets[j]) >
            config_.params.eps + kTol) {
          throw std::invalid_argument("WorldConfig: clock skew exceeds eps");
        }
      }
    }
  }
  if (config_.delays == nullptr) {
    config_.delays = std::make_shared<ConstantDelay>(config_.params.d);
  }

  record_.params = config_.params;
  record_.clock_offsets = config_.clock_offsets;
  pending_op_.assign(n, -1);

  processes_.reserve(n);
  for (ProcId p = 0; p < config_.params.n; ++p) {
    processes_.push_back(factory(p));
  }
  for (ProcId p = 0; p < config_.params.n; ++p) {
    StepRecord step;  // on_start side effects recorded against a synthetic step
    step.proc = p;
    step.real_time = 0;
    step.clock_time = config_.clock_offsets[static_cast<std::size_t>(p)];
    ContextImpl ctx(*this, p, step);
    processes_[static_cast<std::size_t>(p)]->on_start(ctx);
  }
}

void World::push_event(Event ev) {
  ev.seq = next_seq_++;
  switch (ev.kind) {
    case Event::Kind::kDeliver:
      ev.tie_rank = config_.timers_before_deliveries ? 1 : 0;
      break;
    case Event::Kind::kTimer:
      ev.tie_rank = config_.timers_before_deliveries ? 0 : 1;
      break;
    case Event::Kind::kInvoke:
      ev.tie_rank = 2;
      break;
  }
  queue_.push(std::move(ev));
}

void World::invoke_at(Time when, ProcId proc, std::string op, adt::Value arg) {
  if (proc < 0 || proc >= config_.params.n) {
    throw std::invalid_argument("invoke_at: bad process id");
  }
  if (when < now_) throw std::invalid_argument("invoke_at: time in the past");
  const std::uint64_t id = next_invoke_id_++;
  // Resolve the operation name to its interned id once, off the dispatch
  // path; unknown names stay invalid (the process's on_invoke decides).
  const adt::OpId op_id = config_.type != nullptr ? config_.type->find_op(op) : adt::OpId{};
  pending_invokes_.insert(id, PendingInvoke{std::move(op), std::move(arg), op_id});
  Event ev;
  ev.when = snap(when);
  ev.kind = Event::Kind::kInvoke;
  ev.proc = proc;
  ev.invoke_id = id;
  push_event(std::move(ev));
}

void World::run(std::uint64_t max_events) {
  std::uint64_t handled = 0;
  while (!queue_.empty()) {
    if (++handled > max_events) {
      throw std::runtime_error("World::run: exceeded max_events; algorithm not quiescent?");
    }
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    dispatch(ev);
  }
}

void World::dispatch(const Event& ev) {
  const auto pi = static_cast<std::size_t>(ev.proc);

  StepRecord step;
  step.proc = ev.proc;
  step.real_time = now_;
  step.clock_time = snap(now_ * config_.clock_rates[pi] + config_.clock_offsets[pi]);

  switch (ev.kind) {
    case Event::Kind::kInvoke: {
      if (pending_op_[pi] >= 0) {
        throw std::logic_error("invocation at p" + std::to_string(ev.proc) +
                               " while another instance is pending (user constraint violated)");
      }
      auto inv = pending_invokes_.take(ev.invoke_id);
      if (!inv) break;  // should not happen

      step.trigger = Trigger::kInvoke;
      step.op = inv->op;
      step.arg = inv->arg;

      OpRecord op;
      op.proc = ev.proc;
      op.op = std::move(inv->op);
      op.arg = std::move(inv->arg);
      op.invoke_real = now_;
      op.uid = next_op_uid_++;
      op.op_id = inv->op_id;
      pending_op_[pi] = static_cast<std::int64_t>(record_.ops.size());
      record_.ops.push_back(std::move(op));

      // The OpRecord just pushed owns the payload now; nothing re-enters
      // record_.ops until this dispatch returns, so the references stay valid
      // through on_invoke (responses and hook-driven invoke_at only touch the
      // event queue and existing records).
      const OpRecord& rec = record_.ops[static_cast<std::size_t>(pending_op_[pi])];
      ContextImpl ctx(*this, ev.proc, step);
      processes_[pi]->on_invoke(ctx, rec.op, rec.arg);
      break;
    }
    case Event::Kind::kDeliver: {
      auto msg = in_flight_.take(ev.message_id);
      if (!msg) break;  // should not happen
      step.trigger = Trigger::kMessage;
      step.message_id = ev.message_id;
      ContextImpl ctx(*this, ev.proc, step);
      processes_[pi]->on_message(ctx, msg->src, msg->payload);
      break;
    }
    case Event::Kind::kTimer: {
      auto timer = timers_.take(ev.timer_id);
      if (!timer) return;  // cancelled; not a step at all
      step.trigger = Trigger::kTimer;
      step.timer_id = ev.timer_id;
      ContextImpl ctx(*this, ev.proc, step);
      processes_[pi]->on_timer(ctx, TimerId{ev.timer_id}, timer->data);
      break;
    }
  }

  record_.steps.push_back(std::move(step));
}

}  // namespace lintime::sim
