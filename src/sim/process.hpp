#pragma once
// The process abstraction of the paper's model (Section 2.2): an
// event-driven state machine whose transitions are triggered by operation
// invocations, message receipts and timer expirations, and which can only
// observe its *local* clock (never real time).

#include <cstdint>
#include <string>

#include "adt/op.hpp"
#include "adt/value.hpp"
#include "sim/model_params.hpp"
#include "sim/payload.hpp"

namespace lintime::sim {

/// Opaque timer handle, usable for cancellation (Algorithm 1 line 7/25).
struct TimerId {
  std::uint64_t v = 0;
  friend bool operator==(TimerId a, TimerId b) { return a.v == b.v; }
};

/// The facilities a process may use while handling an event.  Deliberately
/// narrow: a process can read its local clock, send messages, manage timers
/// and respond to the pending invocation -- nothing else (in particular it
/// cannot read real time or other processes' state).
///
/// Messages and timer cookies are typed sim::Payload records (sim/payload.hpp)
/// rather than type-erased values: the simulator stores them inline in its
/// slots and never allocates, copies deeply, or consults RTTI on their
/// behalf.
class Context {
 public:
  virtual ~Context() = default;

  [[nodiscard]] virtual ProcId self() const = 0;
  [[nodiscard]] virtual int n() const = 0;
  [[nodiscard]] virtual const ModelParams& params() const = 0;

  /// The process's local clock (real time + fixed offset; no drift).
  [[nodiscard]] virtual Time local_time() const = 0;

  /// Sends `payload` to `dst` (!= self). Delay chosen by the world's model.
  virtual void send(ProcId dst, Payload payload) = 0;

  /// Sends `payload` to every other process.  On the ring scheduler this is
  /// one payload-slot write plus n-1 references, not n-1 copies.
  virtual void broadcast(Payload payload) = 0;

  /// Sets a timer to go off `delay` local-clock time from now, carrying
  /// `data` back to on_timer.
  virtual TimerId set_timer(Time delay, Payload data) = 0;

  /// Cancels a pending timer; no-op if already fired or cancelled.
  virtual void cancel_timer(TimerId id) = 0;

  /// Emits the response for the currently pending invocation at this
  /// process.  Exactly one response per invocation.
  virtual void respond(adt::Value ret) = 0;
};

/// Interface implemented by every shared-object algorithm in this library
/// (Algorithm 1, the baselines, and the unsafe variants).
class Process {
 public:
  virtual ~Process() = default;

  /// Called once before any event, at local time = offset.
  virtual void on_start(Context& /*ctx*/) {}

  /// The user invoked (op, arg) at this process.
  virtual void on_invoke(Context& ctx, const std::string& op, const adt::Value& arg) = 0;

  /// Interned-dispatch variant: when the World knows the invocation's
  /// adt::OpId (WorldConfig::type set and the name resolved), it calls this
  /// instead.  The default forwards to on_invoke, so string-only processes
  /// are unaffected; hot-path algorithms override it to skip the per-invoke
  /// name lookup.
  virtual void on_invoke_id(Context& ctx, adt::OpId id, const std::string& op,
                            const adt::Value& arg) {
    (void)id;
    on_invoke(ctx, op, arg);
  }

  /// A message from `src` arrived.
  virtual void on_message(Context& ctx, ProcId src, const Payload& payload) = 0;

  /// A timer set earlier went off; `data` is the payload given to set_timer.
  virtual void on_timer(Context& ctx, TimerId id, const Payload& data) = 0;
};

}  // namespace lintime::sim
