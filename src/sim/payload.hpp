#pragma once
// Typed message/timer payloads for the simulator hot loop.
//
// Every protocol in this library sends one of a handful of shapes -- a
// mutator announcement {op, arg, timestamp}, a request/reply {op, arg, id},
// a timer cookie {kind, timestamp}, a clock reading -- yet they used to
// travel as std::any: one heap allocation plus RTTI per send, a deep copy
// per delivery, and a type-erased destructor per reclaim.  sim::Payload
// replaces that with a single tagged struct whose fields cover all of those
// shapes inline; the only non-POD member is PayloadVal's boxed fallback (a
// refcounted immutable adt::Value) for arguments that genuinely need heap
// storage (strings, deep vectors).  A broadcast is then one slot write plus
// n-1 integer references, with zero type erasure anywhere on the path.
//
// The tag grammar is protocol-owned: the simulator never interprets
// Payload::tag (or any other field); it only stores and routes.  DESIGN.md
// §4.10 documents the representation and the reasoning behind it.

#include <cstdint>
#include <memory>
#include <utility>

#include "adt/op.hpp"
#include "adt/value.hpp"
#include "sim/model_params.hpp"

namespace lintime::sim {

/// A compact adt::Value carrier.  The hot serving shapes -- nil, a bare
/// integer, and the sharded store's [key, int-or-nil] envelope -- are stored
/// inline with no allocation; anything else is boxed once into an immutable
/// shared Value (the arena-slab fallback), so broadcast fan-out shares one
/// heap object via refcount instead of deep-copying per destination.
class PayloadVal {
 public:
  enum class Kind : std::uint8_t {
    kNil,    ///< adt::Value::nil()
    kInt,    ///< a bare int64 (field a)
    kPair,   ///< [a-or-nil, b-or-nil]: covers the keyed [key, inner] envelope
    kBoxed,  ///< anything else, shared and immutable
  };

  PayloadVal() = default;

  [[nodiscard]] static PayloadVal from_value(const adt::Value& v) {
    PayloadVal out;
    if (v.is_nil()) return out;
    if (v.is_int()) {
      out.kind_ = Kind::kInt;
      out.a_ = v.as_int();
      return out;
    }
    if (v.is_vec()) {
      const adt::ValueVec& vec = v.as_vec();
      if (vec.size() == 2 && (vec[0].is_int() || vec[0].is_nil()) &&
          (vec[1].is_int() || vec[1].is_nil())) {
        out.kind_ = Kind::kPair;
        if (vec[0].is_int()) out.a_ = vec[0].as_int(); else out.nil_mask_ |= 1U;
        if (vec[1].is_int()) out.b_ = vec[1].as_int(); else out.nil_mask_ |= 2U;
        return out;
      }
    }
    out.kind_ = Kind::kBoxed;
    out.boxed_ = std::make_shared<const adt::Value>(v);
    return out;
  }

  /// Reconstructs the adt::Value.  kNil/kInt are free; kPair allocates the
  /// two-element vector (this is the one reconstruction a replica pays when
  /// it finally applies the operation); kBoxed copies the shared Value.
  [[nodiscard]] adt::Value to_value() const {
    switch (kind_) {
      case Kind::kNil:
        return adt::Value::nil();
      case Kind::kInt:
        return adt::Value{a_};
      case Kind::kPair: {
        adt::ValueVec vec;
        vec.reserve(2);
        vec.push_back((nil_mask_ & 1U) != 0 ? adt::Value::nil() : adt::Value{a_});
        vec.push_back((nil_mask_ & 2U) != 0 ? adt::Value::nil() : adt::Value{b_});
        return adt::Value{std::move(vec)};
      }
      case Kind::kBoxed:
        return *boxed_;
    }
    return adt::Value::nil();  // unreachable
  }

  /// Reconstructs into `out`, reusing its storage when possible: a kPair
  /// written over a Value that already holds a two-element vector reassigns
  /// the elements in place (scalar variant assignments, no allocation).  A
  /// replica draining its To_Execute queue through one scratch Value thus
  /// pays the pair allocation once per run instead of once per execution.
  void to_value_into(adt::Value& out) const {
    if (kind_ == Kind::kPair) {
      if (adt::ValueVec* vec = out.vec_if(); vec != nullptr && vec->size() == 2) {
        (*vec)[0] = (nil_mask_ & 1U) != 0 ? adt::Value::nil() : adt::Value{a_};
        (*vec)[1] = (nil_mask_ & 2U) != 0 ? adt::Value::nil() : adt::Value{b_};
        return;
      }
    }
    out = to_value();
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::int64_t as_int() const { return a_; }

 private:
  Kind kind_ = Kind::kNil;
  std::uint8_t nil_mask_ = 0;  ///< kPair: bit0/bit1 = element is nil
  std::int64_t a_ = 0;
  std::int64_t b_ = 0;
  std::shared_ptr<const adt::Value> boxed_;  ///< kBoxed only; null otherwise
};

/// The one wire/timer record every Process sends and receives.  Field
/// meanings are protocol conventions, not simulator semantics:
///   tag    -- protocol discriminator (message kind / timer kind)
///   chan   -- routing channel for multiplexing wrappers (composite object
///             index, sharded-store shard); kNoChan outside a wrapper.
///             Wrappers stamp it on the way out and strip it on the way in,
///             so inner protocols never see it set.
///   op_id  -- interned operation, when the payload names one
///   proc / seq / clock -- a core::Timestamp's fields flattened raw (sim/
///             cannot depend on core/), or any other small scalars a
///             protocol needs (request ids, clock readings)
///   val    -- the operation argument / return value
struct Payload {
  static constexpr std::uint32_t kNoChan = 0xffffffffU;

  std::uint32_t tag = 0;
  std::uint32_t chan = kNoChan;
  adt::OpId op_id{};
  ProcId proc = 0;
  std::uint64_t seq = 0;
  Time clock = 0;
  PayloadVal val;
};

}  // namespace lintime::sim
