#include "sim/trace_io.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lintime::sim {

namespace {

// ---------------------------------------------------------------------------
// Compact single-token Value encoding: nil | i<int> | s<hex-bytes> |
// [tok,tok,...] -- no whitespace, so values fit the line-oriented format.
// ---------------------------------------------------------------------------

void encode_value(std::ostream& os, const adt::Value& v) {
  if (v.is_nil()) {
    os << "nil";
  } else if (v.is_int()) {
    os << 'i' << v.as_int();
  } else if (v.is_str()) {
    os << 's';
    for (const unsigned char c : v.as_str()) {
      os << std::hex << std::setw(2) << std::setfill('0') << static_cast<int>(c) << std::dec;
    }
  } else {
    os << '[';
    const auto& vec = v.as_vec();
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (i > 0) os << ',';
      encode_value(os, vec[i]);
    }
    os << ']';
  }
}

std::string encode_value(const adt::Value& v) {
  std::ostringstream os;
  encode_value(os, v);
  return os.str();
}

adt::Value decode_value(const std::string& token, std::size_t& pos) {
  if (pos >= token.size()) throw std::invalid_argument("value token truncated: " + token);
  const char c = token[pos];
  if (c == 'n') {
    if (token.compare(pos, 3, "nil") != 0) {
      throw std::invalid_argument("bad value token: " + token);
    }
    pos += 3;
    return adt::Value::nil();
  }
  if (c == 'i') {
    ++pos;
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token.substr(pos), &used);
    pos += used;
    return adt::Value{value};
  }
  if (c == 's') {
    ++pos;
    std::string out;
    while (pos + 1 < token.size() && std::isxdigit(token[pos]) &&
           std::isxdigit(token[pos + 1])) {
      out.push_back(static_cast<char>(std::stoi(token.substr(pos, 2), nullptr, 16)));
      pos += 2;
    }
    return adt::Value{out};
  }
  if (c == '[') {
    ++pos;
    adt::ValueVec vec;
    if (pos < token.size() && token[pos] == ']') {
      ++pos;
      return adt::Value{vec};
    }
    while (true) {
      vec.push_back(decode_value(token, pos));
      if (pos >= token.size()) throw std::invalid_argument("unterminated vector: " + token);
      if (token[pos] == ',') {
        ++pos;
        continue;
      }
      if (token[pos] == ']') {
        ++pos;
        return adt::Value{vec};
      }
      throw std::invalid_argument("bad vector separator in: " + token);
    }
  }
  throw std::invalid_argument("unknown value token: " + token);
}

adt::Value decode_value(const std::string& token) {
  std::size_t pos = 0;
  adt::Value v = decode_value(token, pos);
  if (pos != token.size()) throw std::invalid_argument("trailing junk in value: " + token);
  return v;
}

constexpr const char* trigger_name(Trigger t) {
  switch (t) {
    case Trigger::kInvoke: return "invoke";
    case Trigger::kMessage: return "message";
    case Trigger::kTimer: return "timer";
  }
  return "?";
}

Trigger parse_trigger(const std::string& s) {
  if (s == "invoke") return Trigger::kInvoke;
  if (s == "message") return Trigger::kMessage;
  if (s == "timer") return Trigger::kTimer;
  throw std::invalid_argument("bad trigger: " + s);
}

}  // namespace

void write_record(std::ostream& os, const RunRecord& record) {
  os << std::setprecision(17);
  os << "# lintime run record\n";
  os << "params " << record.params.n << ' ' << record.params.d << ' ' << record.params.u << ' '
     << record.params.eps << '\n';
  for (std::size_t i = 0; i < record.clock_offsets.size(); ++i) {
    os << "offset " << i << ' ' << record.clock_offsets[i] << '\n';
  }
  for (const auto& s : record.steps) {
    os << "step " << s.proc << ' ' << s.real_time << ' ' << s.clock_time << ' '
       << trigger_name(s.trigger) << ' ' << s.message_id << ' ' << s.timer_id << ' '
       << (s.responded ? 1 : 0) << ' ' << (s.op.empty() ? "-" : s.op) << ' '
       << encode_value(s.arg) << ' ' << encode_value(s.response);
    for (const auto id : s.sent_message_ids) os << ' ' << id;
    os << '\n';
  }
  for (const auto& m : record.messages) {
    os << "msg " << m.id << ' ' << m.src << ' ' << m.dst << ' ' << m.send_real << ' '
       << (m.received ? 1 : 0) << ' ' << m.recv_real << '\n';
  }
  for (const auto& op : record.ops) {
    os << "op " << op.uid << ' ' << op.proc << ' ' << op.invoke_real << ' ' << op.response_real
       << ' ' << op.op << ' ' << encode_value(op.arg) << ' ' << encode_value(op.ret) << '\n';
  }
  if (!os) throw std::ios_base::failure("write_record: stream error");
}

RunRecord read_record(std::istream& is) {
  RunRecord record;
  std::string line;
  bool saw_params = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "params") {
      ls >> record.params.n >> record.params.d >> record.params.u >> record.params.eps;
      record.clock_offsets.assign(static_cast<std::size_t>(record.params.n), 0.0);
      saw_params = true;
    } else if (kind == "offset") {
      std::size_t proc = 0;
      double c = 0;
      ls >> proc >> c;
      if (!saw_params || proc >= record.clock_offsets.size()) {
        throw std::invalid_argument("offset line out of order: " + line);
      }
      record.clock_offsets[proc] = c;
    } else if (kind == "step") {
      StepRecord s;
      std::string trigger, op, arg, response;
      int responded = 0;
      ls >> s.proc >> s.real_time >> s.clock_time >> trigger >> s.message_id >> s.timer_id >>
          responded >> op >> arg >> response;
      s.trigger = parse_trigger(trigger);
      s.responded = responded != 0;
      s.op = (op == "-") ? "" : op;
      s.arg = decode_value(arg);
      s.response = decode_value(response);
      std::uint64_t id = 0;
      while (ls >> id) s.sent_message_ids.push_back(id);
      record.steps.push_back(std::move(s));
    } else if (kind == "msg") {
      MessageRecord m;
      int received = 0;
      ls >> m.id >> m.src >> m.dst >> m.send_real >> received >> m.recv_real;
      m.received = received != 0;
      record.messages.push_back(m);
    } else if (kind == "op") {
      OpRecord op;
      std::string name, arg, ret;
      ls >> op.uid >> op.proc >> op.invoke_real >> op.response_real >> name >> arg >> ret;
      op.op = name;
      op.arg = decode_value(arg);
      op.ret = decode_value(ret);
      record.ops.push_back(std::move(op));
    } else {
      throw std::invalid_argument("unknown record line: " + line);
    }
    if (ls.fail() && !ls.eof()) throw std::invalid_argument("malformed line: " + line);
  }
  if (!saw_params) throw std::invalid_argument("read_record: missing params line");
  return record;
}

std::string record_to_string(const RunRecord& record) {
  std::ostringstream os;
  write_record(os, record);
  return os.str();
}

RunRecord record_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_record(is);
}

}  // namespace lintime::sim
