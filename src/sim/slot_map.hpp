#pragma once
// SlotMap: index-stable storage for the simulator's payload side tables.
//
// The World allocates timer / message / invocation ids sequentially from 1
// and consumes them in near-FIFO order (a message is delivered once, shortly
// after it was sent).  A std::map pays a node allocation plus pointer-chasing
// per entry for ordering nobody needs; this container instead stores slot
// `id - base` of a deque and trims exhausted slots off the front, so insert,
// find and take are O(1) amortized and iteration-order determinism is moot
// (there is no iteration at all).

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

namespace lintime::sim {

/// Maps sequentially-allocated ids (1, 2, 3, ...) to values.  Ids below the
/// trimmed base or never inserted simply miss (find -> nullptr, take ->
/// nullopt), matching the map.find() == end() checks this replaces.
template <typename T>
class SlotMap {
 public:
  /// Stores `value` under `id`.  Ids arrive in increasing order from the
  /// World's counters; an id below the trimmed base would be a reuse bug, so
  /// it is ignored rather than resurrecting a consumed slot.
  void insert(std::uint64_t id, T value) {
    if (id < base_) return;
    const auto idx = static_cast<std::size_t>(id - base_);
    if (idx >= slots_.size()) slots_.resize(idx + 1);
    slots_[idx] = std::move(value);
  }

  [[nodiscard]] const T* find(std::uint64_t id) const {
    if (id < base_) return nullptr;
    const auto idx = static_cast<std::size_t>(id - base_);
    if (idx >= slots_.size() || !slots_[idx]) return nullptr;
    return &*slots_[idx];
  }

  /// Mutable lookup (e.g. decrementing a broadcast payload's delivery
  /// count).  Stable: deque growth and front-trimming never move a live
  /// slot, so the pointer survives later inserts.
  [[nodiscard]] T* find(std::uint64_t id) {
    return const_cast<T*>(static_cast<const SlotMap*>(this)->find(id));
  }

  /// Removes and returns the value, or nullopt if absent.
  std::optional<T> take(std::uint64_t id) {
    if (id < base_) return std::nullopt;
    const auto idx = static_cast<std::size_t>(id - base_);
    if (idx >= slots_.size() || !slots_[idx]) return std::nullopt;
    std::optional<T> out = std::move(slots_[idx]);
    slots_[idx].reset();
    trim_front();
    return out;
  }

  void erase(std::uint64_t id) { take(id); }

  [[nodiscard]] bool empty() const {
    for (const auto& s : slots_) {
      if (s) return false;
    }
    return true;
  }

 private:
  void trim_front() {
    while (!slots_.empty() && !slots_.front()) {
      slots_.pop_front();
      ++base_;
    }
  }

  std::deque<std::optional<T>> slots_;
  std::uint64_t base_ = 1;  ///< id of slots_.front(); ids start at 1
};

}  // namespace lintime::sim
