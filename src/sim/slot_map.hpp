#pragma once
// SlotMap: index-stable storage for the simulator's payload side tables.
//
// The World allocates timer / message / invocation ids sequentially from 1
// and consumes them in near-FIFO order (a message is delivered once, shortly
// after it was sent).  A std::map pays a node allocation plus pointer-chasing
// per entry for ordering nobody needs.  A std::deque of slots fixes that but
// keeps a hidden allocation treadmill: libstdc++ sizes deque chunks at 512
// bytes, so ~5 of the ~100-byte payload slots share a chunk and steady-state
// traffic (10 timers per serving op) allocates and frees a chunk every few
// events -- measurably the top libc cost of the 10^6-op serving benchmark.
//
// This container instead stores slot `id - base` in a chunked ring: fixed
// kBlock-slot blocks held by pointer, the front block recycled to the back
// once the consumed-prefix watermark passes it.  After warmup the hot loop
// runs with ZERO allocator traffic, and blocks never move, so live
// references survive later inserts (the delivery path holds a payload
// reference across a handler that may send).  Iteration-order determinism
// is moot: there is no iteration on the dispatch path at all.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace lintime::sim {

/// Maps sequentially-allocated ids (1, 2, 3, ...) to values.  Ids below the
/// trimmed watermark or never inserted simply miss (find -> nullptr, take ->
/// nullopt), matching the map.find() == end() checks this replaces.
template <typename T>
class SlotMap {
 public:
  /// Stores `value` under `id`.  Ids arrive in increasing order from the
  /// World's counters; an id below the consumed watermark would be a reuse
  /// bug, so it is ignored rather than resurrecting a consumed slot.
  void insert(std::uint64_t id, T value) {
    if (id < trim_id_) return;
    const auto idx = static_cast<std::size_t>(id - base_);
    const std::size_t b = idx / kBlock;
    while (b >= blocks_.size()) {
      blocks_.push_back(spare_ != nullptr ? std::move(spare_) : std::make_unique<Block>());
    }
    (*blocks_[b])[idx % kBlock] = std::move(value);
    if (id >= high_) high_ = id + 1;
  }

  [[nodiscard]] const T* find(std::uint64_t id) const {
    const std::optional<T>* slot = locate(id);
    if (slot == nullptr || !*slot) return nullptr;
    return &**slot;
  }

  /// Mutable lookup (e.g. decrementing a broadcast payload's delivery
  /// count).  Stable: blocks are held by pointer and recycled whole, so the
  /// pointer survives later inserts and front-block recycling.
  [[nodiscard]] T* find(std::uint64_t id) {
    return const_cast<T*>(static_cast<const SlotMap*>(this)->find(id));
  }

  /// Removes and returns the value, or nullopt if absent.
  std::optional<T> take(std::uint64_t id) {
    std::optional<T>* slot = const_cast<std::optional<T>*>(locate(id));
    if (slot == nullptr || !*slot) return std::nullopt;
    std::optional<T> out = std::move(*slot);
    slot->reset();
    advance_watermark();
    return out;
  }

  void erase(std::uint64_t id) { take(id); }

  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Number of live entries.  O(slots); used once per run to pre-size the
  /// op record vector, never on the dispatch path.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& block : blocks_) {
      for (const auto& s : *block) {
        if (s) ++n;
      }
    }
    return n;
  }

 private:
  // 1024 slots per block: ~100 KiB for the ~100-byte payload types, big
  // enough that recycling is rare, small enough that an idle map is cheap.
  static constexpr std::size_t kBlock = 1024;
  using Block = std::array<std::optional<T>, kBlock>;

  [[nodiscard]] const std::optional<T>* locate(std::uint64_t id) const {
    if (id < trim_id_) return nullptr;
    const auto idx = static_cast<std::size_t>(id - base_);
    const std::size_t b = idx / kBlock;
    if (b >= blocks_.size()) return nullptr;
    return &(*blocks_[b])[idx % kBlock];
  }

  /// Advances the consumed-prefix watermark over disengaged slots, then
  /// recycles any front block that fell entirely behind it.  Each slot is
  /// passed exactly once, so takes stay O(1) amortized.  The walk is
  /// bounded by the highest id ever inserted: ids beyond it will still
  /// arrive (the World's counters are sequential), so their empty slots
  /// must not be trimmed preemptively.
  void advance_watermark() {
    while (trim_id_ < high_ &&
           !(*blocks_[(trim_id_ - base_) / kBlock])[(trim_id_ - base_) % kBlock]) {
      ++trim_id_;
    }
    while (!blocks_.empty() && base_ + kBlock <= trim_id_) {
      std::unique_ptr<Block> retired = std::move(blocks_.front());
      blocks_.erase(blocks_.begin());
      spare_ = std::move(retired);  // all-disengaged by construction
      base_ += kBlock;
    }
  }

  std::vector<std::unique_ptr<Block>> blocks_;
  std::unique_ptr<Block> spare_;  ///< last retired block, ready for reuse
  std::uint64_t base_ = 1;     ///< id of blocks_[0]'s first slot; ids start at 1
  std::uint64_t trim_id_ = 1;  ///< ids below this are consumed (or trimmed)
  std::uint64_t high_ = 1;     ///< one past the highest id ever inserted
};

}  // namespace lintime::sim
