#pragma once
// Run-record serialization: a line-oriented, human-readable text format for
// dumping and reloading RunRecords.  Used to archive adversarial runs from
// the shifting experiments, to diff shifted/chopped records in review, and
// by round-trip tests.
//
// Format (one record per line, '#' comments allowed):
//   params <n> <d> <u> <eps>
//   offset <proc> <c>
//   step <proc> <real> <clock> <trigger> <msg_id> <timer_id> <responded>
//        ... <op> <arg> <response> <sent_id>...   (one physical line)
//   msg <id> <src> <dst> <send> <received> <recv>
//   op <uid> <proc> <invoke> <response> <op> <arg> <ret>
// Values are encoded with Value::to_string-compatible escaping (nil, int,
// "str", [v, ...]); real times are printed with full precision.

#include <iosfwd>
#include <string>

#include "sim/run_record.hpp"

namespace lintime::sim {

/// Writes `record` to `os`.  Throws std::ios_base::failure on stream errors.
void write_record(std::ostream& os, const RunRecord& record);

/// Parses a record previously written by write_record.  Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] RunRecord read_record(std::istream& is);

/// Convenience: to/from string.
[[nodiscard]] std::string record_to_string(const RunRecord& record);
[[nodiscard]] RunRecord record_from_string(const std::string& text);

}  // namespace lintime::sim
