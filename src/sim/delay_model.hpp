#pragma once
// Message-delay models.  The paper's admissibility condition only requires
// delays in [d-u, d]; its lower-bound constructions use specific pair-wise
// uniform delay matrices, so the simulator lets the "adversary" choose any
// per-message delay via these models.

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "sim/model_params.hpp"

namespace lintime::sim {

/// Chooses the delay for one message.  `seq` is the global send sequence
/// number (deterministic), so scripted adversaries can target individual
/// messages.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  [[nodiscard]] virtual Time delay(ProcId src, ProcId dst, Time send_real, std::uint64_t seq) = 0;

  /// True if delay() never mutates internal state, making one instance safe
  /// to share across Worlds (and across campaign jobs running on different
  /// threads).  Defaults to false: the campaign executor refuses to share
  /// any model that does not explicitly opt in, because a shared RNG would
  /// make results depend on job execution order.
  [[nodiscard]] virtual bool is_stateless() const { return false; }
};

/// All messages take the same delay (default: the maximum d, the worst case
/// the upper-bound proofs are stated against).
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Time delay) : delay_(delay) {}
  [[nodiscard]] Time delay(ProcId, ProcId, Time, std::uint64_t) override { return delay_; }
  [[nodiscard]] bool is_stateless() const override { return true; }

 private:
  Time delay_;
};

/// Pair-wise uniform delays from an n-by-n matrix (the shape every
/// lower-bound construction in the paper uses; see Section 2.4).
class MatrixDelay final : public DelayModel {
 public:
  explicit MatrixDelay(std::vector<std::vector<Time>> matrix) : matrix_(std::move(matrix)) {}

  /// Builds the constant matrix d_ij = value.
  static MatrixDelay uniform(int n, Time value) {
    return MatrixDelay(
        std::vector<std::vector<Time>>(static_cast<std::size_t>(n),
                                       std::vector<Time>(static_cast<std::size_t>(n), value)));
  }

  [[nodiscard]] Time delay(ProcId src, ProcId dst, Time, std::uint64_t) override {
    return matrix_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
  }

  [[nodiscard]] bool is_stateless() const override { return true; }

  [[nodiscard]] const std::vector<std::vector<Time>>& matrix() const { return matrix_; }
  [[nodiscard]] Time& at(ProcId src, ProcId dst) {
    return matrix_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
  }

 private:
  std::vector<std::vector<Time>> matrix_;
};

/// Independent uniformly random delays in [lo, hi]; deterministic per seed.
class UniformRandomDelay final : public DelayModel {
 public:
  UniformRandomDelay(Time lo, Time hi, std::uint64_t seed) : dist_(lo, hi), rng_(seed) {}

  [[nodiscard]] Time delay(ProcId, ProcId, Time, std::uint64_t) override { return dist_(rng_); }

 private:
  std::uniform_real_distribution<Time> dist_;
  std::mt19937_64 rng_;
};

/// Delegates to `before` for messages sent strictly before `switch_time`,
/// and to `after` from then on.  The lower-bound constructions run a quiet
/// prefix under one matrix and the adversarial suffix under another.
class PiecewiseDelay final : public DelayModel {
 public:
  PiecewiseDelay(std::shared_ptr<DelayModel> before, Time switch_time,
                 std::shared_ptr<DelayModel> after)
      : before_(std::move(before)), after_(std::move(after)), switch_time_(switch_time) {}

  [[nodiscard]] Time delay(ProcId src, ProcId dst, Time send_real, std::uint64_t seq) override {
    DelayModel& m = (send_real < switch_time_) ? *before_ : *after_;
    return m.delay(src, dst, send_real, seq);
  }

  [[nodiscard]] bool is_stateless() const override {
    return before_->is_stateless() && after_->is_stateless();
  }

 private:
  std::shared_ptr<DelayModel> before_;
  std::shared_ptr<DelayModel> after_;
  Time switch_time_;
};

/// Arbitrary function-based adversary.
class FunctionDelay final : public DelayModel {
 public:
  using Fn = std::function<Time(ProcId, ProcId, Time, std::uint64_t)>;
  explicit FunctionDelay(Fn fn) : fn_(std::move(fn)) {}

  [[nodiscard]] Time delay(ProcId src, ProcId dst, Time send_real, std::uint64_t seq) override {
    return fn_(src, dst, send_real, seq);
  }

 private:
  Fn fn_;
};

}  // namespace lintime::sim
