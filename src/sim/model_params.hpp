#pragma once
// The parameters of the paper's partially synchronous system model
// (Section 2.2): n processes, message delays in [d-u, d], clocks
// synchronized to within eps, no drift, no failures.

#include <stdexcept>
#include <string>

namespace lintime::sim {

using ProcId = int;
using Time = double;  ///< real time and local clock time (reals, as in the paper)

struct ModelParams {
  int n = 3;          ///< number of processes (paper: n >= 2 or 3 depending on theorem)
  Time d = 10.0;      ///< maximum message delay
  Time u = 2.0;       ///< delay uncertainty; delays lie in [d-u, d]
  Time eps = 1.0;     ///< clock skew bound

  [[nodiscard]] Time min_delay() const { return d - u; }

  /// The optimal achievable skew (1 - 1/n) u from clock synchronization
  /// [Lundelius-Lynch]; the paper's examples instantiate eps with this.
  [[nodiscard]] Time optimal_eps() const { return (1.0 - 1.0 / n) * u; }

  /// min{eps, u, d/3}: the "m" of Theorems 4 and 5.
  [[nodiscard]] Time m() const {
    Time m = eps;
    if (u < m) m = u;
    if (d / 3.0 < m) m = d / 3.0;
    return m;
  }

  void validate() const {
    if (n < 2) throw std::invalid_argument("ModelParams: n must be >= 2");
    if (d <= 0) throw std::invalid_argument("ModelParams: d must be > 0");
    if (u < 0 || u > d) throw std::invalid_argument("ModelParams: need 0 <= u <= d");
    if (eps < 0) throw std::invalid_argument("ModelParams: eps must be >= 0");
  }
};

}  // namespace lintime::sim
