#include "sim/fault.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace lintime::sim {

namespace {

void check_proc(ProcId p, int n, const char* what) {
  if (p == kAnyProc) return;
  if (p < 0 || p >= n) {
    throw std::invalid_argument(std::string("FaultSchedule: ") + what + " " + std::to_string(p) +
                                " out of range [0, " + std::to_string(n) + ")");
  }
}

}  // namespace

void FaultSchedule::validate(int n) const {
  std::vector<bool> crashed(static_cast<std::size_t>(n), false);
  for (const CrashEvent& c : crashes) {
    if (c.proc < 0 || c.proc >= n) {
      throw std::invalid_argument("FaultSchedule: crash proc " + std::to_string(c.proc) +
                                  " out of range [0, " + std::to_string(n) + ")");
    }
    if (!(c.when >= 0)) {  // !(>= 0) also rejects NaN
      throw std::invalid_argument("FaultSchedule: crash time must be >= 0, got " +
                                  std::to_string(c.when));
    }
    if (crashed[static_cast<std::size_t>(c.proc)]) {
      throw std::invalid_argument("FaultSchedule: duplicate crash for proc " +
                                  std::to_string(c.proc));
    }
    crashed[static_cast<std::size_t>(c.proc)] = true;
  }

  for (const LinkWindow& w : link_drops) {
    check_proc(w.src, n, "link window src");
    check_proc(w.dst, n, "link window dst");
    if (w.src != kAnyProc && w.src == w.dst) {
      throw std::invalid_argument("FaultSchedule: link window on self-link " +
                                  std::to_string(w.src) + " -> " + std::to_string(w.dst));
    }
    if (!(w.from >= 0) || !(w.until > w.from)) {
      throw std::invalid_argument("FaultSchedule: link window must satisfy 0 <= from < until, "
                                  "got [" + std::to_string(w.from) + ", " +
                                  std::to_string(w.until) + ")");
    }
  }

  // Overlap check per identical directed pair: sort by (src, dst, from) and
  // compare neighbours.  Wildcard pairs are their own key; a wildcard window
  // overlapping a concrete one is composition, not a conflict.
  std::vector<LinkWindow> sorted = link_drops;
  std::sort(sorted.begin(), sorted.end(), [](const LinkWindow& a, const LinkWindow& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.from < b.from;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const LinkWindow& prev = sorted[i - 1];
    const LinkWindow& cur = sorted[i];
    if (prev.src == cur.src && prev.dst == cur.dst && cur.from < prev.until) {
      throw std::invalid_argument(
          "FaultSchedule: overlapping link windows on link " + std::to_string(cur.src) + " -> " +
          std::to_string(cur.dst) + ": [" + std::to_string(prev.from) + ", " +
          std::to_string(prev.until) + ") and [" + std::to_string(cur.from) + ", " +
          std::to_string(cur.until) + ")");
    }
  }
}

std::vector<LinkWindow> partition_cycles(const std::vector<ProcId>& group_a,
                                         const std::vector<ProcId>& group_b, Time start,
                                         Time cut, Time period, int cycles) {
  if (group_a.empty() || group_b.empty()) {
    throw std::invalid_argument("partition_cycles: both groups must be non-empty");
  }
  std::set<ProcId> seen(group_a.begin(), group_a.end());
  if (seen.size() != group_a.size()) {
    throw std::invalid_argument("partition_cycles: duplicate proc in group_a");
  }
  for (const ProcId p : group_b) {
    if (!seen.insert(p).second) {
      throw std::invalid_argument("partition_cycles: proc " + std::to_string(p) +
                                  " appears in both groups (or twice in group_b)");
    }
  }
  if (!(start >= 0)) {
    throw std::invalid_argument("partition_cycles: start must be >= 0");
  }
  if (!(cut > 0) || !(period > 0) || cycles < 1) {
    throw std::invalid_argument("partition_cycles: cut, period and cycles must be positive");
  }
  if (cut > period) {
    throw std::invalid_argument("partition_cycles: cut exceeds period (cycles would overlap)");
  }

  std::vector<LinkWindow> windows;
  windows.reserve(static_cast<std::size_t>(cycles) * group_a.size() * group_b.size() * 2);
  for (int k = 0; k < cycles; ++k) {
    const Time from = start + static_cast<Time>(k) * period;
    const Time until = from + cut;
    for (const ProcId a : group_a) {
      for (const ProcId b : group_b) {
        windows.push_back(LinkWindow{a, b, from, until});
        windows.push_back(LinkWindow{b, a, from, until});
      }
    }
  }
  return windows;
}

}  // namespace lintime::sim
