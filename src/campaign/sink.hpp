#pragma once
// Machine-readable campaign sinks.  Every experiment that routes through the
// campaign layer can emit its results as JSON (full fidelity: per-job tags,
// metrics, errors, plus the campaign aggregate) and CSV (one row per
// (job, operation), friendly to spreadsheets and pandas).  Both formats are
// deterministic functions of the CampaignResult -- number formatting is
// shortest-round-trip and key order is fixed -- so output bytes are
// identical regardless of executor thread count.
//
// Wall-clock timings are deliberately NOT part of these sinks (they would
// break byte-identity); bench artifacts carry them separately via
// write_bench_entry.

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/executor.hpp"

namespace lintime::campaign {

/// Shortest decimal string that parses back to exactly `v` ("0.1", not
/// "0.10000000000000001"); "inf"/"-inf"/"nan" for non-finite values.
[[nodiscard]] std::string fmt_double(double v);

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Full campaign dump: {"campaign", "job_count", "jobs": [...], "aggregate"}.
void write_json(std::ostream& os, const CampaignResult& result);
[[nodiscard]] std::string to_json(const CampaignResult& result);

/// Flat per-(job, op) latency table; job-level counters (steps, messages,
/// drops, quiescence time) repeat on every row of the job so the file is
/// self-contained.  Tags are flattened into a "tags" column as "k=v;k=v".
/// Failed or op-less jobs still get one row (empty op columns).
void write_csv(std::ostream& os, const CampaignResult& result);
[[nodiscard]] std::string to_csv(const CampaignResult& result);

/// One entry of a BENCH_*.json perf artifact: a JSON object with the
/// campaign name, job/worker counts and measured wall-clock seconds.
/// Appended by callers into a JSON array they manage.  When `total_ops` is
/// non-zero (throughput campaigns set it from the aggregate's completed-op
/// count) the entry additionally reports the derived end-to-end
/// "ops_per_sec".
struct BenchEntry {
  std::string campaign;
  std::size_t job_count = 0;
  int workers = 0;
  double wall_seconds = 0;
  std::size_t total_ops = 0;
};
void write_bench_entry(std::ostream& os, const BenchEntry& entry);

/// Host/build stamp for BENCH_*.json artifacts: hardware thread count,
/// CMake build type and compiler.  A throughput number is meaningless
/// without these -- a Debug or single-core recording has to explain itself.
/// Deliberately NOT part of write_json/write_csv: the result sinks stay
/// byte-identical across hosts and worker counts; only the perf artifacts
/// (which already carry wall-clock) get stamped.
struct BenchContext {
  int num_cpus = 0;        ///< std::thread::hardware_concurrency()
  std::string build_type;  ///< CMAKE_BUILD_TYPE baked in at compile time
  std::string compiler;    ///< compiler id + version from predefined macros
};
[[nodiscard]] BenchContext current_bench_context();
void write_bench_context(std::ostream& os, const BenchContext& ctx);

}  // namespace lintime::campaign
