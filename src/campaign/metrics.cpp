#include "campaign/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lintime::campaign {

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q outside [0, 1]");
  if (q == 0.0) return sorted.front();
  // Nearest-rank: the smallest value with at least ceil(q * N) samples <= it.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank - 1];
}

OpMetrics reduce_samples(std::vector<double> samples) {
  OpMetrics out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  out.min = samples.front();
  out.max = samples.back();
  double sum = 0;
  for (const double s : samples) sum += s;
  out.mean = sum / static_cast<double>(samples.size());
  out.p50 = percentile(samples, 0.50);
  out.p90 = percentile(samples, 0.90);
  out.p99 = percentile(samples, 0.99);
  return out;
}

JobMetrics reduce_record(const sim::RunRecord& record) {
  JobMetrics out;
  out.steps = record.steps.size();
  out.ops_invoked = record.ops.size();
  out.quiescence_time = record.last_time();

  std::map<std::string, std::vector<double>> samples;
  for (const auto& op : record.ops) {
    if (!op.complete()) continue;
    ++out.ops_complete;
    samples[op.op].push_back(op.latency());
  }
  for (auto& [name, latencies] : samples) {
    out.ops[name] = reduce_samples(std::move(latencies));
  }

  out.messages_sent = record.messages.size();
  for (const auto& m : record.messages) {
    if (!m.received) ++out.messages_dropped;
  }
  return out;
}

}  // namespace lintime::campaign
