#include "campaign/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lintime::campaign {

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q outside [0, 1]");
  if (q == 0.0) return sorted.front();
  // Nearest-rank: the smallest value with at least ceil(q * N) samples <= it.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank - 1];
}

OpMetrics reduce_samples(std::vector<double> samples) {
  OpMetrics out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  out.min = samples.front();
  out.max = samples.back();
  double sum = 0;
  for (const double s : samples) sum += s;
  out.mean = sum / static_cast<double>(samples.size());
  out.p50 = percentile(samples, 0.50);
  out.p90 = percentile(samples, 0.90);
  out.p99 = percentile(samples, 0.99);
  return out;
}

JobMetrics reduce_record(const sim::RunRecord& record) {
  JobMetrics out;
  out.steps = record.steps.size();
  out.ops_invoked = record.ops.size();
  out.quiescence_time = record.last_time();

  // Aggregate on the interned op id (dense integer index) when the record
  // carries one; string keys only for records without ids (loaded traces).
  // Names are resolved into the sorted output map once, at sink time.
  struct Bucket {
    std::string name;
    std::vector<double> latencies;
  };
  std::vector<Bucket> by_id;
  std::map<std::string, std::vector<double>> by_name;
  for (const auto& op : record.ops) {
    if (!op.complete()) continue;
    ++out.ops_complete;
    if (op.op_id.valid()) {
      const auto idx = static_cast<std::size_t>(op.op_id.index());
      if (idx >= by_id.size()) by_id.resize(idx + 1);
      auto& bucket = by_id[idx];
      if (bucket.latencies.empty()) bucket.name = op.op;
      bucket.latencies.push_back(op.latency());
    } else {
      by_name[op.op].push_back(op.latency());
    }
  }
  for (auto& bucket : by_id) {
    if (bucket.latencies.empty()) continue;
    out.ops[bucket.name] = reduce_samples(std::move(bucket.latencies));
  }
  for (auto& [name, latencies] : by_name) {
    out.ops[name] = reduce_samples(std::move(latencies));
  }

  out.messages_sent = record.messages.size();
  for (const auto& m : record.messages) {
    if (!m.received) ++out.messages_dropped;
  }
  return out;
}

}  // namespace lintime::campaign
