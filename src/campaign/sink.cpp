#include "campaign/sink.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>

namespace lintime::campaign {

std::string fmt_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == 0.0) return "0";  // normalize -0
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    // Integral values print as integers ("10", not the equally-round-trip
    // but unreadable "1e+01" that precision-1 %g would produce).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::ostringstream os;
    os << std::setprecision(prec) << v;
    if (std::stod(os.str()) == v) return os.str();
  }
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// JSON numbers must be finite; non-finite metrics become null.
std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  return fmt_double(v);
}

void write_op_metrics(std::ostream& os, const OpMetrics& m) {
  os << "{\"count\":" << m.count << ",\"min\":" << json_number(m.min)
     << ",\"mean\":" << json_number(m.mean) << ",\"p50\":" << json_number(m.p50)
     << ",\"p90\":" << json_number(m.p90) << ",\"p99\":" << json_number(m.p99)
     << ",\"max\":" << json_number(m.max) << "}";
}

void write_op_map(std::ostream& os, const std::map<std::string, OpMetrics>& ops) {
  os << "{";
  bool first = true;
  for (const auto& [name, m] : ops) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":";
    write_op_metrics(os, m);
  }
  os << "}";
}

void write_tags(std::ostream& os, const Tags& tags) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : tags) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  os << "}";
}

}  // namespace

void write_json(std::ostream& os, const CampaignResult& result) {
  os << "{\"campaign\":\"" << json_escape(result.name) << "\"";
  os << ",\"job_count\":" << result.jobs.size();
  os << ",\"jobs\":[";
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const JobResult& job = result.jobs[i];
    if (i > 0) os << ",";
    os << "{\"index\":" << job.index;
    os << ",\"name\":\"" << json_escape(job.name) << "\"";
    os << ",\"tags\":";
    write_tags(os, job.tags);
    os << ",\"ok\":" << (job.ok ? "true" : "false");
    if (!job.ok) {
      os << ",\"error\":\"" << json_escape(job.error) << "\"";
    } else {
      const JobMetrics& m = job.metrics;
      os << ",\"ops_invoked\":" << m.ops_invoked;
      os << ",\"ops_complete\":" << m.ops_complete;
      os << ",\"steps\":" << m.steps;
      os << ",\"messages_sent\":" << m.messages_sent;
      os << ",\"messages_dropped\":" << m.messages_dropped;
      os << ",\"quiescence_time\":" << json_number(m.quiescence_time);
      os << ",\"verdict\":\"" << to_string(m.verdict) << "\"";
      if (m.verdict != JobMetrics::Verdict::kNotChecked) {
        os << ",\"check_nodes_expanded\":" << m.check_nodes_expanded;
        os << ",\"check_route\":\"" << json_escape(m.check_route) << "\"";
        os << ",\"check_memo_hits\":" << m.check_memo_hits;
        os << ",\"check_memo_collisions\":" << m.check_memo_collisions;
      }
      os << ",\"latency\":";
      write_op_map(os, m.ops);
    }
    os << "}";
  }
  os << "]";

  const CampaignMetrics agg = result.aggregate();
  os << ",\"aggregate\":{\"jobs_total\":" << agg.jobs_total;
  os << ",\"jobs_failed\":" << agg.jobs_failed;
  os << ",\"jobs_checked\":" << agg.jobs_checked;
  os << ",\"jobs_linearizable\":" << agg.jobs_linearizable;
  os << ",\"jobs_fast_path\":" << agg.jobs_fast_path;
  os << ",\"jobs_fallback\":" << agg.jobs_fallback;
  os << ",\"ops_complete\":" << agg.ops_complete;
  os << ",\"messages_sent\":" << agg.messages_sent;
  os << ",\"messages_dropped\":" << agg.messages_dropped;
  os << ",\"latency\":";
  write_op_map(os, agg.ops);
  os << "}}\n";
}

std::string to_json(const CampaignResult& result) {
  std::ostringstream os;
  write_json(os, result);
  return os.str();
}

namespace {

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string flat_tags(const Tags& tags) {
  std::string out;
  for (const auto& [k, v] : tags) {
    if (!out.empty()) out += ';';
    out += k + "=" + v;
  }
  return out;
}

}  // namespace

void write_csv(std::ostream& os, const CampaignResult& result) {
  os << "campaign,index,job,tags,ok,verdict,steps,messages_sent,messages_dropped,"
        "quiescence_time,op,count,min,mean,p50,p90,p99,max\n";
  for (const JobResult& job : result.jobs) {
    const JobMetrics& jm = job.metrics;
    const std::string prefix = csv_field(result.name) + "," + std::to_string(job.index) + "," +
                               csv_field(job.name) + "," + csv_field(flat_tags(job.tags)) + "," +
                               (job.ok ? "1" : "0") + "," + to_string(jm.verdict) + "," +
                               std::to_string(jm.steps) + "," + std::to_string(jm.messages_sent) +
                               "," + std::to_string(jm.messages_dropped) + "," +
                               fmt_double(jm.quiescence_time);
    if (!job.ok || jm.ops.empty()) {
      // One row so the job is still visible (failed, or ran zero ops).
      os << prefix << ",,,,,,,,\n";
      continue;
    }
    for (const auto& [op, m] : jm.ops) {
      os << prefix << "," << csv_field(op) << "," << m.count << "," << fmt_double(m.min) << ","
         << fmt_double(m.mean) << "," << fmt_double(m.p50) << "," << fmt_double(m.p90) << ","
         << fmt_double(m.p99) << "," << fmt_double(m.max) << "\n";
    }
  }
}

std::string to_csv(const CampaignResult& result) {
  std::ostringstream os;
  write_csv(os, result);
  return os.str();
}

BenchContext current_bench_context() {
  BenchContext ctx;
  ctx.num_cpus = static_cast<int>(std::thread::hardware_concurrency());
#ifdef LINTIME_BUILD_TYPE
  ctx.build_type = LINTIME_BUILD_TYPE;
#endif
#if defined(__clang__)
  ctx.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  ctx.compiler = "gcc " __VERSION__;
#else
  ctx.compiler = "unknown";
#endif
  return ctx;
}

void write_bench_context(std::ostream& os, const BenchContext& ctx) {
  os << "{\"num_cpus\":" << ctx.num_cpus << ",\"build_type\":\""
     << json_escape(ctx.build_type) << "\",\"compiler\":\"" << json_escape(ctx.compiler)
     << "\"}";
}

void write_bench_entry(std::ostream& os, const BenchEntry& entry) {
  os << "{\"campaign\":\"" << json_escape(entry.campaign) << "\",\"job_count\":"
     << entry.job_count << ",\"workers\":" << entry.workers
     << ",\"wall_seconds\":" << json_number(entry.wall_seconds);
  if (entry.total_ops > 0) {
    os << ",\"total_ops\":" << entry.total_ops;
    if (entry.wall_seconds > 0) {
      os << ",\"ops_per_sec\":"
         << json_number(static_cast<double>(entry.total_ops) / entry.wall_seconds);
    }
  }
  os << "}";
}

}  // namespace lintime::campaign
