#pragma once
// Parallel campaign execution.  Jobs are independent Worlds, so the executor
// is an embarrassingly-parallel work queue: a fixed pool of std::threads
// claims job indices from an atomic counter and writes each JobResult into
// its pre-allocated slot.  Output is keyed by job index, never by completion
// order, so a campaign's results -- and every byte any sink emits from them
// -- are identical at --jobs 1 and --jobs N.

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/metrics.hpp"
#include "harness/runner.hpp"

namespace lintime::campaign {

/// Outcome of one job.
struct JobResult {
  std::size_t index = 0;  ///< position in CampaignSpec::jobs
  std::string name;
  Tags tags;

  bool ok = false;     ///< run completed (and, if requested, was checked)
  std::string error;   ///< exception text when !ok

  harness::RunResult run;  ///< record + per-op stats (empty when !ok)
  JobMetrics metrics;      ///< reduced metrics, incl. verdict if checked

  /// Raw latency samples per operation name (completed ops, in record
  /// order).  Kept even when the full record is dropped, so campaign-level
  /// percentiles pool exact samples rather than percentiles-of-percentiles.
  std::map<std::string, std::vector<double>> latency_samples;
};

struct CampaignResult {
  std::string name;
  std::vector<JobResult> jobs;  ///< same order and size as the spec's jobs

  /// Pooled rollup across jobs (latency samples, verdicts, traffic).
  [[nodiscard]] CampaignMetrics aggregate() const;
};

struct ExecutorOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (at least 1).
  /// The job count caps the pool size.
  int jobs = 0;

  /// Keep each job's full RunRecord in its JobResult.  Off by default:
  /// large campaigns only need metrics, and records dominate memory.
  bool keep_records = false;

  /// Progress callback, invoked after each job finishes (in completion
  /// order, serialized by an internal mutex): (completed count, total).
  std::function<void(std::size_t, std::size_t)> on_progress;
};

/// Runs every job.  A job that throws is captured in its JobResult (ok =
/// false, error = what()); the campaign itself only throws on spec errors
/// detected before any job starts: a null Job::type, duplicate job names,
/// or a stateful DelayModel instance shared between two jobs (which would
/// make results depend on execution order -- see DelayModel::is_stateless).
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const ExecutorOptions& options = {});

/// The worker-count default: hardware_concurrency clamped to [1, job_count].
[[nodiscard]] int resolve_jobs(int requested, std::size_t job_count);

}  // namespace lintime::campaign
