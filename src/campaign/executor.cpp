#include "campaign/executor.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "lin/check.hpp"

namespace lintime::campaign {

namespace {

/// Pre-flight validation: every failure mode here would otherwise surface as
/// a confusing per-job error or, worse, order-dependent output.
void validate(const CampaignSpec& spec) {
  std::set<std::string> names;
  // Pointer-keyed, but lookup-only (never iterated): which error fires, and
  // which jobs it names, is decided by job order — not by where the models
  // happen to be allocated.
  std::unordered_map<const sim::DelayModel*, std::size_t> first_delay_use;
  for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
    const Job& job = spec.jobs[i];
    if (job.type == nullptr) {
      throw std::invalid_argument("campaign '" + spec.name + "': job #" + std::to_string(i) +
                                  " ('" + job.name + "') has no data type");
    }
    if (!names.insert(job.name).second) {
      throw std::invalid_argument("campaign '" + spec.name + "': duplicate job name '" +
                                  job.name + "'");
    }
    if (job.spec.delays == nullptr) continue;
    const auto [it, inserted] = first_delay_use.try_emplace(job.spec.delays.get(), i);
    if (!inserted && !job.spec.delays->is_stateless()) {
      throw std::invalid_argument(
          "campaign '" + spec.name + "': jobs #" + std::to_string(it->second) + " ('" +
          spec.jobs[it->second].name + "') and #" + std::to_string(i) + " ('" + job.name +
          "') share a stateful DelayModel instance; results would depend on execution "
          "order.  Give each job its own instance (or use a stateless model).");
    }
  }
}

JobResult run_one(const Job& job, std::size_t index, bool keep_record) {
  JobResult result;
  result.index = index;
  result.name = job.name;
  result.tags = job.tags;
  try {
    result.run = harness::execute(*job.type, job.spec);
    result.metrics = reduce_record(result.run.record);
    for (const auto& rec : result.run.record.ops) {
      if (rec.complete()) result.latency_samples[rec.op].push_back(rec.latency());
    }
    if (job.check_linearizability) {
      const auto check = lin::check(*job.type, result.run.record);
      result.metrics.verdict = check.result.linearizable ? JobMetrics::Verdict::kLinearizable
                                                         : JobMetrics::Verdict::kViolation;
      result.metrics.check_nodes_expanded = check.stats.nodes_expanded;
      result.metrics.check_route = lin::to_string(check.stats.route);
      result.metrics.check_memo_hits = check.stats.memo_hits;
      result.metrics.check_memo_collisions = check.stats.memo_collisions;
    }
    result.ok = true;
    if (!keep_record) result.run.record = sim::RunRecord{};
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
    result.run = harness::RunResult{};
    result.metrics = JobMetrics{};
    result.latency_samples.clear();
  }
  return result;
}

}  // namespace

int resolve_jobs(int requested, std::size_t job_count) {
  int jobs = requested;
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs <= 0) jobs = 1;
  if (job_count < static_cast<std::size_t>(jobs)) jobs = static_cast<int>(job_count);
  return jobs < 1 ? 1 : jobs;
}

// detlint:capability(threads): the executor is the one sanctioned parallelism
// site — workers pull jobs from an atomic counter and write results into
// disjoint index-keyed slots, so campaign output is byte-identical at any
// --jobs (DESIGN.md, "Determinism contract").
CampaignResult run_campaign(const CampaignSpec& spec, const ExecutorOptions& options) {
  validate(spec);

  CampaignResult result;
  result.name = spec.name;
  result.jobs.resize(spec.jobs.size());
  if (spec.jobs.empty()) return result;

  const int workers = resolve_jobs(options.jobs, spec.jobs.size());

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= spec.jobs.size()) return;
      // Disjoint slots: no lock needed for the write itself.
      result.jobs[i] = run_one(spec.jobs[i], i, options.keep_records);
      const std::size_t completed = done.fetch_add(1) + 1;
      if (options.on_progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.on_progress(completed, spec.jobs.size());
      }
    }
  };

  if (workers == 1) {
    worker();  // inline: no thread overhead, and trivially deterministic
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return result;
}

CampaignMetrics CampaignResult::aggregate() const {
  CampaignMetrics out;
  out.jobs_total = jobs.size();
  std::map<std::string, std::vector<double>> pooled;
  for (const JobResult& job : jobs) {
    if (!job.ok) {
      ++out.jobs_failed;
      continue;
    }
    if (job.metrics.verdict != JobMetrics::Verdict::kNotChecked) {
      ++out.jobs_checked;
      if (job.metrics.verdict == JobMetrics::Verdict::kLinearizable) ++out.jobs_linearizable;
      if (job.metrics.check_route == "fast_path") {
        ++out.jobs_fast_path;
      } else {
        ++out.jobs_fallback;
      }
    }
    out.ops_complete += job.metrics.ops_complete;
    out.messages_sent += job.metrics.messages_sent;
    out.messages_dropped += job.metrics.messages_dropped;
    for (const auto& [op, samples] : job.latency_samples) {
      auto& dst = pooled[op];
      dst.insert(dst.end(), samples.begin(), samples.end());
    }
  }
  for (auto& [op, samples] : pooled) {
    out.ops[op] = reduce_samples(std::move(samples));
  }
  return out;
}

}  // namespace lintime::campaign
