#include "campaign/grid.hpp"

#include <stdexcept>

#include "campaign/sink.hpp"

namespace lintime::campaign {

const std::string& GridPoint::get(const std::string& name) const {
  for (const auto& [axis, value] : coords_) {
    if (axis == name) return value;
  }
  throw std::out_of_range("GridPoint: no axis named '" + name + "'");
}

double GridPoint::num(const std::string& name) const {
  const std::string& v = get(name);
  std::size_t pos = 0;
  double parsed = 0;
  try {
    parsed = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v.size() || v.empty()) {
    throw std::invalid_argument("GridPoint: axis '" + name + "' value '" + v +
                                "' is not numeric");
  }
  return parsed;
}

std::int64_t GridPoint::integer(const std::string& name) const {
  const std::string& v = get(name);
  std::size_t pos = 0;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v.size() || v.empty()) {
    throw std::invalid_argument("GridPoint: axis '" + name + "' value '" + v +
                                "' is not an integer");
  }
  return parsed;
}

std::string GridPoint::label() const {
  std::string out;
  for (const auto& [axis, value] : coords_) {
    if (!out.empty()) out += '/';
    out += axis;
    out += '=';
    out += value;
  }
  return out;
}

Grid& Grid::axis(std::string name, std::vector<std::string> values) {
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

Grid& Grid::axis(std::string name, const std::vector<double>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (const double v : values) out.push_back(fmt_double(v));
  return axis(std::move(name), std::move(out));
}

Grid& Grid::axis(std::string name, const std::vector<int>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (const int v : values) out.push_back(std::to_string(v));
  return axis(std::move(name), std::move(out));
}

Grid& Grid::range(std::string name, int lo, int hi) {
  if (hi < lo) throw std::invalid_argument("Grid::range: hi < lo");
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (int v = lo; v <= hi; ++v) out.push_back(std::to_string(v));
  return axis(std::move(name), std::move(out));
}

std::size_t Grid::size() const {
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.values.size();
  return axes_.empty() ? 0 : n;
}

std::vector<GridPoint> Grid::points() const {
  if (axes_.empty()) throw std::logic_error("Grid: no axes declared");
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].values.empty()) {
      throw std::invalid_argument("Grid: axis '" + axes_[i].name + "' has no values");
    }
    for (std::size_t j = i + 1; j < axes_.size(); ++j) {
      if (axes_[i].name == axes_[j].name) {
        throw std::invalid_argument("Grid: duplicate axis '" + axes_[i].name + "'");
      }
    }
  }

  std::vector<GridPoint> out;
  out.reserve(size());
  std::vector<std::size_t> idx(axes_.size(), 0);
  while (true) {
    std::vector<std::pair<std::string, std::string>> coords;
    coords.reserve(axes_.size());
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      coords.emplace_back(axes_[a].name, axes_[a].values[idx[a]]);
    }
    out.emplace_back(std::move(coords));

    // Odometer increment, last axis fastest.
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes_[a].values.size()) break;
      idx[a] = 0;
      if (a == 0) return out;
    }
  }
}

}  // namespace lintime::campaign
