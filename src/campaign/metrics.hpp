#pragma once
// Metrics: reductions from recorded runs to the numbers the paper's tables
// and our BENCH_* artifacts report -- per-operation latency distributions
// (min/mean/percentiles/max), message-traffic counters and linearizability
// verdicts -- computable per job and poolable across a whole campaign.
// Everything here is pure arithmetic on RunRecords, so metrics are as
// deterministic as the runs they summarize.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/run_record.hpp"

namespace lintime::campaign {

/// Latency distribution of one operation name.  Percentiles use the
/// nearest-rank definition on the sorted sample set (exact, no
/// interpolation), so they are stable under re-aggregation ordering.
struct OpMetrics {
  std::size_t count = 0;
  double min = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Computes nearest-rank percentile q in [0, 1] of `sorted` (ascending).
/// Throws std::invalid_argument on an empty sample set or q outside [0, 1].
[[nodiscard]] double percentile(const std::vector<double>& sorted, double q);

/// Reduces a set of latency samples; `samples` need not be pre-sorted.
[[nodiscard]] OpMetrics reduce_samples(std::vector<double> samples);

/// What one job's run boiled down to.
struct JobMetrics {
  std::map<std::string, OpMetrics> ops;  ///< by operation name; complete ops only

  std::size_t ops_invoked = 0;
  std::size_t ops_complete = 0;
  std::size_t steps = 0;
  std::size_t messages_sent = 0;      ///< including dropped
  std::size_t messages_dropped = 0;   ///< sent but never delivered
  sim::Time quiescence_time = 0;      ///< last step's real time

  /// Linearizability verdict: unset if the job did not request a check.
  enum class Verdict { kNotChecked, kLinearizable, kViolation };
  Verdict verdict = Verdict::kNotChecked;
  std::size_t check_nodes_expanded = 0;  ///< checker search effort
  /// How the verdict was produced: "fast_path" or "general" (empty when not
  /// checked), plus the general search's memo statistics (zero on the fast
  /// path, where no search runs).
  std::string check_route;
  std::size_t check_memo_hits = 0;
  std::size_t check_memo_collisions = 0;
};

[[nodiscard]] constexpr const char* to_string(JobMetrics::Verdict v) {
  switch (v) {
    case JobMetrics::Verdict::kNotChecked: return "not-checked";
    case JobMetrics::Verdict::kLinearizable: return "linearizable";
    case JobMetrics::Verdict::kViolation: return "violation";
  }
  return "?";
}

/// Reduces one record (verdict fields are left at kNotChecked; the executor
/// fills them in when the job asked for a check).
[[nodiscard]] JobMetrics reduce_record(const sim::RunRecord& record);

/// Campaign-level rollup: latency samples pooled across jobs per operation
/// name, plus verdict/failure counters.
struct CampaignMetrics {
  std::map<std::string, OpMetrics> ops;  ///< pooled over all succeeded jobs
  std::size_t jobs_total = 0;
  std::size_t jobs_failed = 0;       ///< job raised instead of completing
  std::size_t jobs_checked = 0;      ///< ran the linearizability checker
  std::size_t jobs_linearizable = 0;
  std::size_t jobs_fast_path = 0;    ///< verdicts from the log-linear monitors
  std::size_t jobs_fallback = 0;     ///< verdicts from the general search
  std::size_t ops_complete = 0;      ///< total completed ops across jobs
  std::size_t messages_sent = 0;
  std::size_t messages_dropped = 0;
};

}  // namespace lintime::campaign
