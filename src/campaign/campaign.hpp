#pragma once
// Campaign: a batch of independent simulator runs ("jobs") executed as one
// experiment.  The paper's results are sweeps -- latency bounds over
// (n, d, u, eps, X) grids, adversary choices and ADT/algorithm pairs -- so
// the unit of experimentation here is not one World but a whole campaign:
// an enumerated list of harness::RunSpec jobs, executed by the parallel
// Executor (executor.hpp) and reduced by the metrics layer (metrics.hpp)
// into machine-readable artifacts (sink.hpp).
//
// Determinism contract: a job's result depends only on the job itself, never
// on sibling jobs, the worker count or completion order.  Results are keyed
// by job index, so a campaign's output is bit-identical at --jobs 1 and
// --jobs N.  The executor enforces the one sharing hazard (a stateful
// DelayModel instance reused across jobs) by refusing to run such specs.

#include <string>
#include <utility>
#include <vector>

#include "adt/data_type.hpp"
#include "harness/runner.hpp"

namespace lintime::campaign {

/// Ordered (axis, value) coordinates identifying a job within its campaign;
/// carried verbatim into every sink so artifacts are self-describing.
using Tags = std::vector<std::pair<std::string, std::string>>;

/// One independent simulator run.
struct Job {
  std::string name;  ///< unique label within the campaign, e.g. "X=2.5/seed=3"
  Tags tags;         ///< grid coordinates (or any key=value metadata)

  /// The data type under test.  Not owned; must outlive the campaign run.
  /// DataType instances are immutable (adt/data_type.hpp) and safe to share
  /// across concurrently-executing jobs.
  const adt::DataType* type = nullptr;

  harness::RunSpec spec;

  /// Run the linearizability checker on the recorded run and report the
  /// verdict in the job's metrics.  Off by default: the check is exponential
  /// in the worst case and most latency sweeps do not need it.
  bool check_linearizability = false;
};

/// A named batch of jobs.  Expansion helpers live in grid.hpp.
struct CampaignSpec {
  std::string name;
  std::vector<Job> jobs;
};

}  // namespace lintime::campaign
