#pragma once
// Parameter-grid expansion: declare axes, get the cartesian product as an
// enumerated list of points in a deterministic order (row-major in axis
// declaration order, values in declaration order).  Campaign builders map
// each point to one Job; the point's label/coordinates become the job's
// name/tags so every artifact row is traceable to its grid cell.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lintime::campaign {

/// One cell of an expanded grid: ordered (axis, value) pairs, all values
/// kept as their canonical strings (see Grid::axis overloads).
class GridPoint {
 public:
  explicit GridPoint(std::vector<std::pair<std::string, std::string>> coords)
      : coords_(std::move(coords)) {}

  /// The value of axis `name`; throws std::out_of_range if absent.
  [[nodiscard]] const std::string& get(const std::string& name) const;
  /// get() parsed as a double / integer; throws std::invalid_argument on
  /// non-numeric values.
  [[nodiscard]] double num(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;

  /// "axis1=v1/axis2=v2/..." -- the canonical job name for this point.
  [[nodiscard]] std::string label() const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& coords() const {
    return coords_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> coords_;
};

/// Axis declarations plus cartesian expansion.
class Grid {
 public:
  /// Declares a string-valued axis.  Axis names must be unique; every axis
  /// must have at least one value (both checked at expansion).
  Grid& axis(std::string name, std::vector<std::string> values);

  /// Numeric axes; values are canonicalized with shortest round-trip
  /// formatting (sink.hpp fmt_double) so labels are stable and re-parsable.
  Grid& axis(std::string name, const std::vector<double>& values);
  Grid& axis(std::string name, const std::vector<int>& values);

  /// Convenience: integer range [lo, hi] inclusive (e.g. seeds).
  Grid& range(std::string name, int lo, int hi);

  /// Number of points the expansion will produce (product of axis sizes).
  [[nodiscard]] std::size_t size() const;

  /// The full cartesian product.  Deterministic: the first declared axis
  /// varies slowest, the last varies fastest.
  [[nodiscard]] std::vector<GridPoint> points() const;

 private:
  struct Axis {
    std::string name;
    std::vector<std::string> values;
  };
  std::vector<Axis> axes_;
};

}  // namespace lintime::campaign
