#include "baseline/seq_consistent.hpp"

#include <stdexcept>

namespace lintime::baseline {

using adt::OpCategory;
using adt::Value;
using core::Timestamp;

namespace {

/// Same flattening as Algorithm 1's (one message kind -- the announcement --
/// plus the two timer kinds, disjoint channels so tags may overlap).
sim::Payload pack(std::uint32_t tag, adt::OpId op_id, sim::PayloadVal arg, const Timestamp& ts) {
  sim::Payload p;
  p.tag = tag;
  p.op_id = op_id;
  p.proc = ts.proc;
  p.seq = ts.seq;
  p.clock = ts.clock;
  p.val = std::move(arg);
  return p;
}

Timestamp ts_of(const sim::Payload& p) { return Timestamp{p.clock, p.proc, p.seq}; }

constexpr std::uint32_t kAnnounceTag = 0;

}  // namespace

SeqConsistentProcess::SeqConsistentProcess(const adt::DataType& type,
                                           const sim::ModelParams& params)
    : type_(type),
      add_delay_(params.d - params.u),
      execute_delay_(params.u + params.eps),
      state_(type.initial_state()) {}

void SeqConsistentProcess::on_invoke(sim::Context& ctx, const std::string& op,
                                     const Value& arg) {
  const adt::OpId id = type_.op_id(op);
  const OpCategory cat = type_.category(id);

  if (cat == OpCategory::kPureAccessor) {
    if (last_own_mutator_.has_value()) {
      // Read-your-writes: wait until our most recent mutator has been
      // applied locally, then answer from the replica.
      deferred_ = DeferredAccessor{id, arg, *last_own_mutator_};
      return;
    }
    ctx.respond(execute_locally(id, arg));
    return;
  }

  const Timestamp ts{ctx.local_time(), ctx.self(), next_ts_seq_++};
  const sim::PayloadVal val = sim::PayloadVal::from_value(arg);
  ctx.set_timer(add_delay_, pack(static_cast<std::uint32_t>(TimerKind::kAdd), id, val, ts));
  ctx.broadcast(pack(kAnnounceTag, id, val, ts));
  last_own_mutator_ = ts;

  if (cat == OpCategory::kPureMutator) {
    // Sequential consistency allows acknowledging instantly.
    ctx.respond(Value::nil());
  }
  // Mixed operations respond at local execution (see drain_up_to).
}

void SeqConsistentProcess::on_message(sim::Context& ctx, sim::ProcId /*src*/,
                                      const sim::Payload& payload) {
  add_to_queue(ctx, payload.op_id, payload.val, ts_of(payload));
}

void SeqConsistentProcess::on_timer(sim::Context& ctx, sim::TimerId /*id*/,
                                    const sim::Payload& data) {
  switch (static_cast<TimerKind>(data.tag)) {
    case TimerKind::kAdd:
      add_to_queue(ctx, data.op_id, data.val, ts_of(data));
      break;
    case TimerKind::kExecute:
      drain_up_to(ctx, ts_of(data));
      break;
  }
}

void SeqConsistentProcess::add_to_queue(sim::Context& ctx, adt::OpId op_id,
                                        const sim::PayloadVal& arg, const Timestamp& ts) {
  const sim::TimerId execute_timer =
      ctx.set_timer(execute_delay_, pack(static_cast<std::uint32_t>(TimerKind::kExecute),
                                         adt::OpId{}, sim::PayloadVal{}, ts));
  const auto [it, inserted] = to_execute_.emplace(ts, QueueEntry{op_id, arg, execute_timer});
  (void)it;
  if (!inserted) {
    throw std::logic_error("SeqConsistentProcess: duplicate timestamp in To_Execute");
  }
}

void SeqConsistentProcess::drain_up_to(sim::Context& ctx, const Timestamp& ts) {
  while (!to_execute_.empty() && to_execute_.begin()->first <= ts) {
    const auto it = to_execute_.begin();
    const Timestamp entry_ts = it->first;
    QueueEntry entry = std::move(it->second);
    to_execute_.erase(it);
    ctx.cancel_timer(entry.execute_timer);

    const Value ret = execute_locally(entry.op_id, entry.arg.to_value());

    if (entry_ts.proc == ctx.self()) {
      if (type_.category(entry.op_id) == OpCategory::kMixed) {
        ctx.respond(ret);
      }
      if (last_own_mutator_ == entry_ts) last_own_mutator_.reset();
      if (deferred_ && deferred_->waits_for <= entry_ts) {
        DeferredAccessor aop = *deferred_;
        deferred_.reset();
        ctx.respond(execute_locally(aop.op_id, aop.arg));
      }
    }
  }
}

adt::Value SeqConsistentProcess::execute_locally(adt::OpId op_id, const Value& arg) {
  return state_->apply(op_id, arg);
}

}  // namespace lintime::baseline
