#include "baseline/zero_wait.hpp"

#include <stdexcept>

namespace lintime::baseline {

ZeroWaitProcess::ZeroWaitProcess(const adt::DataType& type)
    : type_(type), state_(type.initial_state()) {}

void ZeroWaitProcess::on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) {
  const adt::OpId id = type_.op_id(op);
  if (type_.spec(id).is_mutator()) {
    sim::Payload announce;
    announce.op_id = id;
    announce.val = sim::PayloadVal::from_value(arg);
    ctx.broadcast(std::move(announce));
  }
  ctx.respond(state_->apply(id, arg));
}

void ZeroWaitProcess::on_message(sim::Context& ctx, sim::ProcId /*src*/,
                                 const sim::Payload& payload) {
  (void)ctx;
  state_->apply(payload.op_id, payload.val.to_value());
}

void ZeroWaitProcess::on_timer(sim::Context&, sim::TimerId, const sim::Payload&) {
  throw std::logic_error("zero-wait baseline sets no timers");
}

}  // namespace lintime::baseline
