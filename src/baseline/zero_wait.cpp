#include "baseline/zero_wait.hpp"

#include <stdexcept>

namespace lintime::baseline {

ZeroWaitProcess::ZeroWaitProcess(const adt::DataType& type)
    : type_(type), state_(type.initial_state()) {}

void ZeroWaitProcess::on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) {
  const adt::OpId id = type_.op_id(op);
  if (type_.spec(id).is_mutator()) ctx.broadcast(ZeroWaitAnnounce{id, arg});
  ctx.respond(state_->apply(id, arg));
}

void ZeroWaitProcess::on_message(sim::Context& ctx, sim::ProcId /*src*/,
                                 const std::any& payload) {
  (void)ctx;
  const auto& announce = std::any_cast<const ZeroWaitAnnounce&>(payload);
  state_->apply(announce.op_id, announce.arg);
}

void ZeroWaitProcess::on_timer(sim::Context&, sim::TimerId, const std::any&) {
  throw std::logic_error("zero-wait baseline sets no timers");
}

}  // namespace lintime::baseline
