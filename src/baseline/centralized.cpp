#include "baseline/centralized.hpp"

#include <stdexcept>

namespace lintime::baseline {

using adt::Value;

CentralizedProcess::CentralizedProcess(const adt::DataType& type, sim::ProcId self)
    : type_(type), self_(self) {
  if (self_ == kCoordinator) state_ = type_.initial_state();
}

void CentralizedProcess::on_invoke(sim::Context& ctx, const std::string& op, const Value& arg) {
  const adt::OpId id = type_.op_id(op);
  if (self_ == kCoordinator) {
    // Local invocation: apply directly; the coordinator's copy is the truth.
    ctx.respond(state_->apply(id, arg));
    return;
  }
  ctx.send(kCoordinator, CentralRequest{id, arg, next_request_id_++});
}

void CentralizedProcess::on_message(sim::Context& ctx, sim::ProcId src, const std::any& payload) {
  if (self_ == kCoordinator) {
    const auto& req = std::any_cast<const CentralRequest&>(payload);
    ctx.send(src, CentralReply{state_->apply(req.op_id, req.arg), req.request_id});
    return;
  }
  const auto& reply = std::any_cast<const CentralReply&>(payload);
  ctx.respond(reply.ret);
}

void CentralizedProcess::on_timer(sim::Context&, sim::TimerId, const std::any&) {
  throw std::logic_error("centralized baseline sets no timers");
}

std::string CentralizedProcess::state_canonical() const {
  return state_ ? state_->canonical() : std::string("(replica-less)");
}

}  // namespace lintime::baseline
