#include "baseline/centralized.hpp"

#include <stdexcept>

namespace lintime::baseline {

using adt::Value;

CentralizedProcess::CentralizedProcess(const adt::DataType& type, sim::ProcId self)
    : type_(type), self_(self) {
  if (self_ == kCoordinator) state_ = type_.initial_state();
}

void CentralizedProcess::on_invoke(sim::Context& ctx, const std::string& op, const Value& arg) {
  const adt::OpId id = type_.op_id(op);
  if (self_ == kCoordinator) {
    // Local invocation: apply directly; the coordinator's copy is the truth.
    ctx.respond(state_->apply(id, arg));
    return;
  }
  sim::Payload request;
  request.op_id = id;
  request.seq = next_request_id_++;
  request.val = sim::PayloadVal::from_value(arg);
  ctx.send(kCoordinator, std::move(request));
}

void CentralizedProcess::on_message(sim::Context& ctx, sim::ProcId src,
                                    const sim::Payload& payload) {
  if (self_ == kCoordinator) {
    sim::Payload reply;
    reply.seq = payload.seq;  // echo the request id
    reply.val = sim::PayloadVal::from_value(state_->apply(payload.op_id, payload.val.to_value()));
    ctx.send(src, std::move(reply));
    return;
  }
  ctx.respond(payload.val.to_value());
}

void CentralizedProcess::on_timer(sim::Context&, sim::TimerId, const sim::Payload&) {
  throw std::logic_error("centralized baseline sets no timers");
}

std::string CentralizedProcess::state_canonical() const {
  return state_ ? state_->canonical() : std::string("(replica-less)");
}

}  // namespace lintime::baseline
