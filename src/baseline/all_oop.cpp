#include "baseline/all_oop.hpp"

namespace lintime::baseline {

AllMixedDataType::AllMixedDataType(const adt::DataType& inner) : inner_(inner), ops_(inner.ops()) {
  for (auto& spec : ops_) spec.category = adt::OpCategory::kMixed;
}

}  // namespace lintime::baseline
