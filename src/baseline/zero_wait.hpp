#pragma once
// Zero-wait (UNSAFE) algorithm: every operation is applied to the local
// replica and responded to immediately; mutators are broadcast and applied
// at receivers on arrival, in arrival order.  This is the fastest possible
// implementation (|OP| = 0 for everything) and is of course NOT
// linearizable -- it exists so the lower-bound experiments and tests have a
// maximally broken comparator, and to show that the linearizability checker
// actually rejects histories (no vacuous passes).
//
// Wire format: one message kind, a sim::Payload carrying {op_id, arg}.

#include <memory>
#include <string>

#include "adt/data_type.hpp"
#include "sim/process.hpp"

namespace lintime::baseline {

class ZeroWaitProcess final : public sim::Process {
 public:
  explicit ZeroWaitProcess(const adt::DataType& type);

  void on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) override;
  void on_message(sim::Context& ctx, sim::ProcId src, const sim::Payload& payload) override;
  void on_timer(sim::Context& ctx, sim::TimerId id, const sim::Payload& data) override;

 private:
  const adt::DataType& type_;
  std::unique_ptr<adt::ObjectState> state_;
};

}  // namespace lintime::baseline
