#pragma once
// The folklore centralized algorithm (Section 1): every invocation is
// forwarded to a distinguished coordinator process (p0), which applies it to
// the single authoritative copy and sends the result back.  Linearization
// order = application order at the coordinator.  Worst-case time per
// operation: 2d (one request message + one reply message); operations
// invoked at the coordinator itself complete immediately.
//
// This is the baseline Algorithm 1 is measured against in every table bench.

#include <any>
#include <cstdint>
#include <memory>
#include <string>

#include "adt/data_type.hpp"
#include "sim/process.hpp"

namespace lintime::baseline {

/// Request forwarded to the coordinator.  The id is interned against the
/// shared type at the requester, so the coordinator dispatches on it
/// directly.
struct CentralRequest {
  adt::OpId op_id;
  adt::Value arg;
  std::uint64_t request_id = 0;
};

/// Reply from the coordinator.
struct CentralReply {
  adt::Value ret;
  std::uint64_t request_id = 0;
};

class CentralizedProcess final : public sim::Process {
 public:
  static constexpr sim::ProcId kCoordinator = 0;

  explicit CentralizedProcess(const adt::DataType& type, sim::ProcId self);

  void on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) override;
  void on_message(sim::Context& ctx, sim::ProcId src, const std::any& payload) override;
  void on_timer(sim::Context& ctx, sim::TimerId id, const std::any& data) override;

  [[nodiscard]] std::string state_canonical() const;

 private:
  const adt::DataType& type_;
  sim::ProcId self_;
  std::unique_ptr<adt::ObjectState> state_;  ///< only used by the coordinator
  std::uint64_t next_request_id_ = 1;
};

}  // namespace lintime::baseline
