#pragma once
// The folklore centralized algorithm (Section 1): every invocation is
// forwarded to a distinguished coordinator process (p0), which applies it to
// the single authoritative copy and sends the result back.  Linearization
// order = application order at the coordinator.  Worst-case time per
// operation: 2d (one request message + one reply message); operations
// invoked at the coordinator itself complete immediately.
//
// This is the baseline Algorithm 1 is measured against in every table bench.
//
// Wire format: requests and replies are sim::Payloads -- a request carries
// {op_id, arg, request-id in seq}; a reply carries {return value, the same
// request-id}.  Role dispatch is positional (self == kCoordinator), so no
// message tag is needed.

#include <cstdint>
#include <memory>
#include <string>

#include "adt/data_type.hpp"
#include "sim/process.hpp"

namespace lintime::baseline {

class CentralizedProcess final : public sim::Process {
 public:
  static constexpr sim::ProcId kCoordinator = 0;

  explicit CentralizedProcess(const adt::DataType& type, sim::ProcId self);

  void on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) override;
  void on_message(sim::Context& ctx, sim::ProcId src, const sim::Payload& payload) override;
  void on_timer(sim::Context& ctx, sim::TimerId id, const sim::Payload& data) override;

  [[nodiscard]] std::string state_canonical() const;

 private:
  const adt::DataType& type_;
  sim::ProcId self_;
  std::unique_ptr<adt::ObjectState> state_;  ///< only used by the coordinator
  std::uint64_t next_request_id_ = 1;
};

}  // namespace lintime::baseline
