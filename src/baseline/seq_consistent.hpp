#pragma once
// Fast sequentially consistent baseline (the weaker condition discussed in
// the paper's introduction and related work; cf. Attiya-Welch's gap between
// sequential consistency and linearizability).
//
// Replication is timestamp-ordered exactly as in Algorithm 1, but responses
// exploit the weaker condition:
//   * pure mutators respond IMMEDIATELY (latency 0) -- ordering continues in
//     the background;
//   * pure accessors respond immediately from the local replica, unless an
//     own mutator is still unapplied locally, in which case the response
//     waits for it (read-your-writes, preserving program order);
//   * mixed operations respond when they execute locally (as in Algorithm 1),
//     since their return value needs the agreed position.
//
// Runs of this implementation are sequentially consistent but NOT
// linearizable in general (remote readers see stale state for up to d+u+eps
// after a write responds) -- demonstrating concretely why linearizability
// costs what Theorems 2-5 say it must.
//
// Wire/timer format mirrors Algorithm 1's: typed sim::Payloads carrying
// {tag, op_id, arg, flattened timestamp}.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "core/timestamp.hpp"
#include "core/timing_policy.hpp"
#include "sim/process.hpp"

namespace lintime::baseline {

class SeqConsistentProcess final : public sim::Process {
 public:
  SeqConsistentProcess(const adt::DataType& type, const sim::ModelParams& params);

  void on_invoke(sim::Context& ctx, const std::string& op, const adt::Value& arg) override;
  void on_message(sim::Context& ctx, sim::ProcId src, const sim::Payload& payload) override;
  void on_timer(sim::Context& ctx, sim::TimerId id, const sim::Payload& data) override;

  [[nodiscard]] std::string state_canonical() const { return state_->canonical(); }

 private:
  enum class TimerKind : std::uint32_t { kAdd, kExecute };

  struct QueueEntry {
    adt::OpId op_id;
    sim::PayloadVal arg;
    sim::TimerId execute_timer;
  };

  /// A pure accessor waiting for an own mutator to apply locally.
  struct DeferredAccessor {
    adt::OpId op_id;
    adt::Value arg;
    core::Timestamp waits_for;  ///< own mutator timestamp it must observe
  };

  void add_to_queue(sim::Context& ctx, adt::OpId op_id, const sim::PayloadVal& arg,
                    const core::Timestamp& ts);
  void drain_up_to(sim::Context& ctx, const core::Timestamp& ts);
  adt::Value execute_locally(adt::OpId op_id, const adt::Value& arg);

  const adt::DataType& type_;
  sim::Time add_delay_;      ///< d - u
  sim::Time execute_delay_;  ///< u + eps
  std::unique_ptr<adt::ObjectState> state_;
  std::map<core::Timestamp, QueueEntry> to_execute_;
  std::optional<core::Timestamp> last_own_mutator_;  ///< not yet applied locally
  std::optional<DeferredAccessor> deferred_;
  std::uint64_t next_ts_seq_ = 0;  ///< keeps own timestamps unique
};

}  // namespace lintime::baseline
