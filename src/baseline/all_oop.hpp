#pragma once
// "All-OOP" baseline: Algorithm 1 run with every operation treated as a
// mixed operation (timestamp-ordered total-order broadcast).  This is the
// natural skew-aware broadcast implementation a designer would write without
// the paper's per-class specialization: every operation costs d + eps.
// Comparing it against the real Algorithm 1 isolates the benefit of the
// AOP/MOP fast paths.

#include <memory>
#include <vector>

#include "adt/data_type.hpp"

namespace lintime::baseline {

/// Decorator that forwards to an inner data type but reports every operation
/// as category kMixed.
class AllMixedDataType final : public adt::DataType {
 public:
  explicit AllMixedDataType(const adt::DataType& inner);

  [[nodiscard]] std::string name() const override { return inner_.name() + "/all-mixed"; }
  [[nodiscard]] const std::vector<adt::OpSpec>& ops() const override { return ops_; }
  [[nodiscard]] std::unique_ptr<adt::ObjectState> make_initial_state() const override {
    return inner_.make_initial_state();
  }
  [[nodiscard]] std::vector<adt::Value> sample_args(const std::string& op) const override {
    return inner_.sample_args(op);
  }

 private:
  const adt::DataType& inner_;
  std::vector<adt::OpSpec> ops_;
};

}  // namespace lintime::baseline
