#include "harness/runner.hpp"

#include <random>
#include <stdexcept>

#include "harness/workload.hpp"

#include "baseline/all_oop.hpp"
#include "baseline/centralized.hpp"
#include "baseline/seq_consistent.hpp"
#include "baseline/zero_wait.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"

namespace lintime::harness {

namespace {

/// Closed-loop driver state shared by the response hook.  Operation names
/// are resolved to interned ids ONCE up front; every subsequent invocation
/// goes through the id overload of invoke_at, so a million-op serving script
/// performs a million hash-map lookups fewer than the string path would.
struct ScriptDriver {
  std::vector<std::vector<ScriptOp>> scripts;
  std::vector<std::vector<adt::OpId>> ids;  ///< parallel to scripts
  std::vector<std::size_t> next;            ///< per-process cursor
  sim::Time gap = 0;

  void resolve(const adt::DataType& type) {
    ids.resize(scripts.size());
    for (std::size_t p = 0; p < scripts.size(); ++p) {
      ids[p].reserve(scripts[p].size());
      for (const auto& step : scripts[p]) ids[p].push_back(type.op_id(step.op));
    }
  }

  void kick_off(sim::World& world, sim::Time start) {
    for (sim::ProcId p = 0; p < static_cast<sim::ProcId>(scripts.size()); ++p) {
      advance(world, p, start);
    }
  }

  void advance(sim::World& world, sim::ProcId p, sim::Time when) {
    auto& cursor = next[static_cast<std::size_t>(p)];
    const auto& script = scripts[static_cast<std::size_t>(p)];
    if (cursor >= script.size()) return;
    const auto& step = script[cursor];
    world.invoke_at(when, p, ids[static_cast<std::size_t>(p)][cursor], step.arg);
    ++cursor;
  }
};

}  // namespace

const LatencyStats& RunResult::stats_for(const std::string& op) const {
  const auto it = latency.find(op);
  if (it == latency.end()) {
    throw std::out_of_range("RunResult: no completed instances of operation '" + op + "'");
  }
  return it->second;
}

std::map<std::string, LatencyStats> latency_by_op(const sim::RunRecord& record) {
  // Accumulate on the interned op id (dense vector, no string hashing per
  // record) whenever the record carries one; names are resolved into the
  // sorted output map once at the end.  Records without ids (e.g. loaded
  // from traces) fall back to string keys directly.
  struct Bucket {
    std::string name;
    LatencyStats stats;
  };
  std::vector<Bucket> by_id;
  std::map<std::string, LatencyStats> out;

  const auto accumulate = [](LatencyStats& s, sim::Time latency) {
    if (s.count == 0) {
      s.min = s.max = latency;
    } else {
      s.min = std::min(s.min, latency);
      s.max = std::max(s.max, latency);
    }
    s.mean = (s.mean * static_cast<double>(s.count) + latency) / static_cast<double>(s.count + 1);
    ++s.count;
  };

  for (const auto& op : record.ops) {
    if (!op.complete()) continue;
    if (op.op_id.valid()) {
      const auto idx = static_cast<std::size_t>(op.op_id.index());
      if (idx >= by_id.size()) by_id.resize(idx + 1);
      auto& bucket = by_id[idx];
      if (bucket.stats.count == 0) bucket.name = op.op;
      accumulate(bucket.stats, op.latency());
    } else {
      accumulate(out[op.op], op.latency());
    }
  }
  for (auto& bucket : by_id) {
    if (bucket.stats.count > 0) out[bucket.name] = bucket.stats;
  }
  return out;
}

RunResult execute(const adt::DataType& type, const RunSpec& spec) {
  sim::WorldConfig config;
  config.type = &type;
  config.params = spec.params;
  config.clock_offsets = spec.clock_offsets;
  config.delays = spec.delays;
  config.clock_rates = spec.clock_rates;
  config.drop_probability = spec.drop_probability;
  config.drop_seed = spec.drop_seed;
  config.faults = spec.faults;
  config.scheduler = spec.scheduler;
  config.record_detail = spec.record_detail;

  const bool full_detail = spec.record_detail == sim::RecordDetail::kFull;

  // A workload generator materializes the plan here; explicit calls/scripts
  // pass through untouched (the historical path, byte-identical).
  WorkloadPlan plan;
  const std::vector<Call>* calls = &spec.calls;
  const std::vector<std::vector<ScriptOp>>* scripts = &spec.scripts;
  sim::Time script_start = spec.script_start;
  sim::Time script_gap = spec.script_gap;
  if (spec.workload != nullptr) {
    if (!spec.calls.empty() || !spec.scripts.empty()) {
      throw std::invalid_argument(
          "RunSpec: workload generator and explicit calls/scripts are mutually exclusive");
    }
    plan = spec.workload->generate(type, spec.params);
    calls = &plan.calls;
    scripts = &plan.scripts;
    script_start = plan.script_start;
    script_gap = plan.script_gap;
  }

  // The all-OOP baseline reuses Algorithm 1 against a category-erased view
  // of the type; the decorator must outlive the world.
  std::optional<baseline::AllMixedDataType> all_mixed;
  if (spec.algo == AlgoKind::kAllOop) all_mixed.emplace(type);

  // Keep raw handles for end-of-run state inspection.
  std::vector<core::AlgorithmOneProcess*> algo1_procs;
  std::vector<core::ShardedServingProcess*> sharded_procs;
  std::vector<baseline::CentralizedProcess*> central_procs;

  // Lazily resolved so baselines never validate an Algorithm-1 X they do
  // not use.
  const auto timing = [&spec]() {
    return spec.timing.value_or(core::TimingPolicy::standard(spec.params, spec.X));
  };

  sim::World::ProcessFactory factory = [&](sim::ProcId p) -> std::unique_ptr<sim::Process> {
    switch (spec.algo) {
      case AlgoKind::kAlgorithmOne: {
        auto proc = std::make_unique<core::AlgorithmOneProcess>(type, timing());
        proc->set_execution_logging(full_detail);
        algo1_procs.push_back(proc.get());
        return proc;
      }
      case AlgoKind::kAllOop: {
        auto proc = std::make_unique<core::AlgorithmOneProcess>(*all_mixed, timing());
        proc->set_execution_logging(full_detail);
        algo1_procs.push_back(proc.get());
        return proc;
      }
      case AlgoKind::kShardedServing: {
        const auto* store = dynamic_cast<const core::ShardedStore*>(&type);
        if (store == nullptr) {
          throw std::invalid_argument(
              "RunSpec: AlgoKind::kShardedServing requires a ShardedStore data type");
        }
        auto proc = std::make_unique<core::ShardedServingProcess>(*store, timing());
        proc->set_execution_logging(full_detail);
        sharded_procs.push_back(proc.get());
        return proc;
      }
      case AlgoKind::kCentralized: {
        auto proc = std::make_unique<baseline::CentralizedProcess>(type, p);
        central_procs.push_back(proc.get());
        return proc;
      }
      case AlgoKind::kZeroWait:
        return std::make_unique<baseline::ZeroWaitProcess>(type);
      case AlgoKind::kSeqConsistent:
        return std::make_unique<baseline::SeqConsistentProcess>(type, spec.params);
    }
    throw std::logic_error("unknown AlgoKind");
  };

  sim::World world(config, factory);

  for (const auto& call : *calls) {
    // Intern once per call here rather than per call inside the World; names
    // the type doesn't know stay on the string overload (the process's
    // on_invoke decides what they mean).
    const adt::OpId id = spec.intern_calls ? type.find_op(call.op) : adt::OpId{};
    if (id.valid()) {
      world.invoke_at(call.when, call.proc, id, call.arg);
    } else {
      world.invoke_at(call.when, call.proc, call.op, call.arg);
    }
  }

  ScriptDriver driver;
  if (!scripts->empty()) {
    if (scripts->size() != static_cast<std::size_t>(spec.params.n)) {
      throw std::invalid_argument("RunSpec: scripts.size() must equal n");
    }
    driver.scripts = *scripts;
    driver.resolve(type);
    driver.next.assign(driver.scripts.size(), 0);
    driver.gap = script_gap;
    world.set_response_hook([&driver](sim::World& w, const sim::OpRecord& op) {
      driver.advance(w, op.proc, w.now() + driver.gap);
    });
    driver.kick_off(world, script_start);
  }

  world.run(spec.max_events);

  RunResult result;
  result.record = world.take_record();
  result.latency = latency_by_op(result.record);
  // Canonical state extraction walks every replica (every materialized key,
  // for sharded stores) -- skip it in ops-only runs, where the caller asked
  // for throughput numbers, not convergence evidence.
  if (full_detail) {
    for (auto* p : algo1_procs) result.final_states.push_back(p->state_canonical());
    for (auto* p : sharded_procs) result.final_states.push_back(p->state_canonical());
    for (auto* p : central_procs) {
      result.final_states.push_back(p->state_canonical());
      break;  // only the coordinator's state is meaningful
    }
  }
  return result;
}

std::vector<std::vector<ScriptOp>> random_scripts(const adt::DataType& type, int n,
                                                  int ops_per_proc, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto& specs = type.ops();
  std::vector<std::vector<ScriptOp>> scripts(static_cast<std::size_t>(n));
  for (auto& script : scripts) {
    script.reserve(static_cast<std::size_t>(ops_per_proc));
    for (int i = 0; i < ops_per_proc; ++i) {
      const auto& spec = specs[rng() % specs.size()];
      const auto args = type.sample_args(spec.name);
      script.push_back(ScriptOp{spec.name, args[rng() % args.size()]});
    }
  }
  return scripts;
}

std::vector<std::vector<ScriptOp>> sharded_scripts(const core::ShardedStore& store, int n,
                                                   int ops_per_proc, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto& specs = store.component().ops();
  const auto num_keys = static_cast<std::uint64_t>(store.num_keys());
  std::vector<std::vector<ScriptOp>> scripts(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    auto& script = scripts[static_cast<std::size_t>(p)];
    script.reserve(static_cast<std::size_t>(ops_per_proc));
    for (int i = 0; i < ops_per_proc; ++i) {
      const auto& spec = specs[rng() % specs.size()];
      const auto key = static_cast<std::int64_t>(rng() % num_keys);
      adt::Value inner = spec.takes_arg
                             ? adt::Value{static_cast<std::int64_t>(p) * ops_per_proc + i}
                             : adt::Value::nil();
      script.push_back(ScriptOp{spec.name, core::ShardedStore::keyed(key, std::move(inner))});
    }
  }
  return scripts;
}

std::vector<Call> sharded_calls(const core::ShardedStore& store, int n, int ops_per_proc,
                                std::uint64_t seed, double spacing) {
  if (spacing <= 0) throw std::invalid_argument("sharded_calls: spacing must be > 0");
  std::mt19937_64 rng(seed);
  const auto& specs = store.component().ops();
  const auto num_keys = static_cast<std::uint64_t>(store.num_keys());
  std::vector<Call> calls;
  calls.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(ops_per_proc));
  // Round-robin over processes inside each arrival epoch keeps the plan
  // strictly time-ascending, which is what lets the event queue take far
  // pushes on its O(1) monotone lane.
  for (int i = 0; i < ops_per_proc; ++i) {
    for (int p = 0; p < n; ++p) {
      const auto& spec = specs[rng() % specs.size()];
      const auto key = static_cast<std::int64_t>(rng() % num_keys);
      adt::Value inner = spec.takes_arg
                             ? adt::Value{static_cast<std::int64_t>(p) * ops_per_proc + i}
                             : adt::Value::nil();
      const double when = (static_cast<double>(i) + static_cast<double>(p) / n) * spacing;
      calls.push_back(
          Call{when, p, spec.name, core::ShardedStore::keyed(key, std::move(inner))});
    }
  }
  return calls;
}

}  // namespace lintime::harness
