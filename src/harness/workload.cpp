#include "harness/workload.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>

#include "adt/data_type.hpp"
#include "core/sharded_store.hpp"

namespace lintime::harness {

namespace {

/// Zipf(theta) sampler over ranks 0..num_keys-1 (rank 0 hottest): a
/// precomputed normalized CDF, sampled by one RNG draw and a binary search.
/// Weight of rank k is 1/(k+1)^theta.
class ZipfTable {
 public:
  ZipfTable(std::int64_t num_keys, double theta) {
    cdf_.reserve(static_cast<std::size_t>(num_keys));
    double total = 0;
    for (std::int64_t k = 0; k < num_keys; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k) + 1.0, theta);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] std::int64_t sample(std::mt19937_64& rng) const {
    // 53-bit mantissa draw in [0, 1); the same construction std::
    // uniform_real_distribution is allowed to use, written out so the
    // mapping from RNG stream to key is pinned across standard libraries.
    const double u = static_cast<double>(rng() >> 11U) * 0x1.0p-53;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::int64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

const core::ShardedStore& as_store(const adt::DataType& type) {
  const auto* store = dynamic_cast<const core::ShardedStore*>(&type);
  if (store == nullptr) {
    throw std::invalid_argument("ShardedWorkloadGen: data type is not a core::ShardedStore");
  }
  return *store;
}

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

WorkloadPlan RandomScriptsGen::generate(const adt::DataType& type,
                                        const sim::ModelParams& params) const {
  if (ops_per_proc_ <= 0) {
    throw std::invalid_argument("RandomScriptsGen: ops_per_proc must be > 0");
  }
  WorkloadPlan plan;
  plan.scripts = random_scripts(type, params.n, ops_per_proc_, seed_);
  plan.script_start = start_;
  plan.script_gap = gap_;
  return plan;
}

std::string RandomScriptsGen::describe() const {
  return "random-scripts(ops=" + std::to_string(ops_per_proc_) +
         ",seed=" + std::to_string(seed_) + ",start=" + fmt_num(start_) +
         ",gap=" + fmt_num(gap_) + ")";
}

WorkloadPlan StaggeredRoundsGen::generate(const adt::DataType& type,
                                          const sim::ModelParams& params) const {
  if (rounds_ <= 0) throw std::invalid_argument("StaggeredRoundsGen: rounds must be > 0");
  if (!(stagger_ >= 0) || !(round_gap_ > 0)) {
    throw std::invalid_argument("StaggeredRoundsGen: need stagger >= 0 and round_gap > 0");
  }
  const auto scripts =
      random_scripts(type, params.n, rounds_, seed_);
  WorkloadPlan plan;
  plan.calls.reserve(static_cast<std::size_t>(rounds_) * static_cast<std::size_t>(params.n));
  double t = 0;
  for (int i = 0; i < rounds_; ++i) {
    for (int p = 0; p < params.n; ++p) {
      const ScriptOp& step = scripts[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
      plan.calls.push_back(Call{t + p * stagger_, p, step.op, step.arg});
    }
    t += round_gap_;
  }
  return plan;
}

std::string StaggeredRoundsGen::describe() const {
  return "staggered-rounds(rounds=" + std::to_string(rounds_) +
         ",seed=" + std::to_string(seed_) + ",stagger=" + fmt_num(stagger_) +
         ",round-gap=" + fmt_num(round_gap_) + ")";
}

WorkloadPlan ShardedWorkloadGen::generate(const adt::DataType& type,
                                          const sim::ModelParams& params) const {
  const core::ShardedStore& store = as_store(type);
  const Options& o = opts_;
  if (o.ops_per_proc <= 0) {
    throw std::invalid_argument("ShardedWorkloadGen: ops_per_proc must be > 0");
  }
  if (!(o.zipf_theta >= 0) || !(o.spacing > 0) || !(o.think >= 0) || o.burst < 0 ||
      !(o.burst_gap >= 0)) {
    throw std::invalid_argument("ShardedWorkloadGen: malformed options");
  }

  WorkloadPlan plan;
  const int n = params.n;

  if (o.zipf_theta == 0 && o.closed_loop) {
    plan.scripts = sharded_scripts(store, n, o.ops_per_proc, o.seed);
    plan.script_gap = o.think;
    return plan;
  }
  if (o.zipf_theta == 0 && !o.closed_loop && o.burst == 0) {
    plan.calls = sharded_calls(store, n, o.ops_per_proc, o.seed, o.spacing);
    return plan;
  }

  // Zipf keys and/or bursty arrivals: same draw order per operation as the
  // uniform helpers (op spec first, then key), so only the key mapping and
  // the arrival timestamps differ from the historical plans.
  std::mt19937_64 rng(o.seed);
  const auto& specs = store.component().ops();
  const auto num_keys = static_cast<std::uint64_t>(store.num_keys());
  const ZipfTable zipf(store.num_keys(), o.zipf_theta > 0 ? o.zipf_theta : 1.0);
  const auto draw_key = [&]() -> std::int64_t {
    if (o.zipf_theta > 0) return zipf.sample(rng);
    return static_cast<std::int64_t>(rng() % num_keys);
  };

  if (o.closed_loop) {
    plan.scripts.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      auto& script = plan.scripts[static_cast<std::size_t>(p)];
      script.reserve(static_cast<std::size_t>(o.ops_per_proc));
      for (int i = 0; i < o.ops_per_proc; ++i) {
        const auto& spec = specs[rng() % specs.size()];
        const std::int64_t key = draw_key();
        adt::Value inner = spec.takes_arg
                               ? adt::Value{static_cast<std::int64_t>(p) * o.ops_per_proc + i}
                               : adt::Value::nil();
        script.push_back(ScriptOp{spec.name, core::ShardedStore::keyed(key, std::move(inner))});
      }
    }
    plan.script_gap = o.think;
    return plan;
  }

  plan.calls.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(o.ops_per_proc));
  for (int i = 0; i < o.ops_per_proc; ++i) {
    // Arrival epoch i starts at i*spacing when steady; under bursts, epochs
    // come `burst` back-to-back at `spacing` and then the line goes quiet
    // for `burst_gap` before the next burst.
    double epoch = 0;
    if (o.burst > 0) {
      const int b = i / o.burst;
      const int j = i % o.burst;
      epoch = b * (o.burst * o.spacing + o.burst_gap) + j * o.spacing;
    }
    for (int p = 0; p < n; ++p) {
      const auto& spec = specs[rng() % specs.size()];
      const std::int64_t key = draw_key();
      adt::Value inner = spec.takes_arg
                             ? adt::Value{static_cast<std::int64_t>(p) * o.ops_per_proc + i}
                             : adt::Value::nil();
      const double when = o.burst > 0
                              ? epoch + (static_cast<double>(p) / n) * o.spacing
                              : (static_cast<double>(i) + static_cast<double>(p) / n) * o.spacing;
      plan.calls.push_back(
          Call{when, p, spec.name, core::ShardedStore::keyed(key, std::move(inner))});
    }
  }
  return plan;
}

std::string ShardedWorkloadGen::describe() const {
  const Options& o = opts_;
  std::string out = "sharded(ops=" + std::to_string(o.ops_per_proc) +
                    ",seed=" + std::to_string(o.seed) + ",zipf=" + fmt_num(o.zipf_theta);
  out += o.closed_loop ? ",closed,think=" + fmt_num(o.think)
                       : ",open,spacing=" + fmt_num(o.spacing);
  if (o.burst > 0) {
    out += ",burst=" + std::to_string(o.burst) + ",burst-gap=" + fmt_num(o.burst_gap);
  }
  return out + ")";
}

WorkloadPlan WorstLatencyGen::generate(const adt::DataType&,
                                       const sim::ModelParams& params) const {
  if (params.n < 2) {
    throw std::invalid_argument("WorstLatencyGen: needs n >= 2 (prefix at p0, call at p1)");
  }
  // Mirrors bench::worst_latency_run: prefix at p0, measured call at p1 well
  // after the prefix quiesces.
  WorkloadPlan plan;
  const double t =
      (static_cast<double>(rho_.size()) + 2.0) * (params.d + params.u + params.eps + 1.0);
  plan.scripts.assign(static_cast<std::size_t>(params.n), {});
  plan.scripts[0] = rho_;
  plan.calls = {Call{t, 1, op_, arg_}};
  return plan;
}

std::string WorstLatencyGen::describe() const {
  std::string out = "worst-latency(op=" + op_ + ",arg=" + arg_.to_string() + ",rho=[";
  for (std::size_t i = 0; i < rho_.size(); ++i) {
    if (i > 0) out += ",";
    out += rho_[i].op + ":" + rho_[i].arg.to_string();
  }
  return out + "])";
}

}  // namespace lintime::harness
