#pragma once
// Run orchestration: build a World for a chosen algorithm, drive a workload
// (open-loop scheduled calls and/or closed-loop per-process scripts), and
// collect the recorded run plus per-operation latency statistics.  All
// tests, examples and benches go through this harness, so experiment
// configurations are declarative and reproducible.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "core/sharded_store.hpp"
#include "core/timing_policy.hpp"
#include "sim/delay_model.hpp"
#include "sim/run_record.hpp"
#include "sim/world.hpp"

namespace lintime::harness {

class WorkloadGen;  // harness/workload.hpp

/// Which shared-object implementation to run.
enum class AlgoKind {
  kAlgorithmOne,    ///< the paper's Algorithm 1 (core/algorithm_one.hpp)
  kCentralized,     ///< folklore 2d baseline
  kAllOop,          ///< Algorithm 1 with every op treated as mixed (d+eps TOB)
  kZeroWait,        ///< UNSAFE zero-latency comparator
  kSeqConsistent,   ///< sequentially consistent (weaker condition, faster ops)
  kShardedServing,  ///< per-shard Algorithm 1 over a ShardedStore keyspace
};

[[nodiscard]] constexpr const char* to_string(AlgoKind k) {
  switch (k) {
    case AlgoKind::kAlgorithmOne: return "algorithm1";
    case AlgoKind::kCentralized: return "centralized";
    case AlgoKind::kAllOop: return "all-oop";
    case AlgoKind::kZeroWait: return "zero-wait";
    case AlgoKind::kSeqConsistent: return "seq-consistent";
    case AlgoKind::kShardedServing: return "sharded-serving";
  }
  return "?";
}

/// One open-loop (scheduled) invocation.
struct Call {
  sim::Time when = 0;
  sim::ProcId proc = 0;
  std::string op;
  adt::Value arg;
};

/// One step of a closed-loop script.
struct ScriptOp {
  std::string op;
  adt::Value arg;
};

struct RunSpec {
  sim::ModelParams params;
  AlgoKind algo = AlgoKind::kAlgorithmOne;
  sim::Time X = 0;  ///< Algorithm 1 tradeoff parameter, in [0, d-eps]

  /// Explicit timer constants for Algorithm 1 / all-OOP runs, overriding the
  /// standard policy derived from X.  Used to run deliberately unsafe
  /// variants (timers below the paper's bounds) through the same harness.
  std::optional<core::TimingPolicy> timing;

  std::vector<sim::Time> clock_offsets;         ///< empty = all zero
  std::shared_ptr<sim::DelayModel> delays;      ///< null = ConstantDelay(d)

  /// EXTENSIONS mirrored from sim::WorldConfig (outside the paper's model;
  /// used by the robustness campaigns): clock drift rates (empty = all 1)
  /// and deterministic message loss.
  std::vector<sim::Time> clock_rates;
  double drop_probability = 0;
  std::uint64_t drop_seed = 0;

  /// EXTENSION: deterministic crash / link-drop schedule (sim/fault.hpp),
  /// validated against n when the World is built.  An empty schedule leaves
  /// the run byte-identical to one without it.
  sim::FaultSchedule faults;

  /// Simulator knobs (see sim::WorldConfig).  Serving-scale runs use
  /// kOpsOnly recording and a raised max_events (Algorithm 1 generates
  /// roughly 3n+2 events per operation, most of them cancelled-but-popped
  /// execute timers, so 10^6 ops at n = 4 needs > 10^7 events).
  sim::SchedulerKind scheduler = sim::SchedulerKind::kEventRing;
  sim::RecordDetail record_detail = sim::RecordDetail::kFull;
  std::uint64_t max_events = 10'000'000;

  std::vector<Call> calls;  ///< open-loop invocations

  /// When true (default), `calls` are resolved to interned adt::OpId once at
  /// submission and invoked through the id overload -- the serving fast path.
  /// The false setting routes every call through the legacy string overload;
  /// it exists so benchmarks can reproduce the pre-refactor per-call cost,
  /// and new code should have no reason to clear it.
  bool intern_calls = true;

  /// Closed-loop scripts: scripts[p] is invoked back-to-back at process p,
  /// the first at `script_start`, each next `script_gap` after the previous
  /// response.
  std::vector<std::vector<ScriptOp>> scripts;
  sim::Time script_start = 0;
  sim::Time script_gap = 0;

  /// Declarative alternative to calls/scripts: a generator asked for the
  /// plan at execute() time (harness/workload.hpp).  Shareable across jobs
  /// (generators are stateless by contract); mutually exclusive with
  /// explicit calls/scripts.
  std::shared_ptr<const WorkloadGen> workload;
};

/// Latency summary for one operation name.
struct LatencyStats {
  std::size_t count = 0;
  sim::Time min = 0;
  sim::Time max = 0;
  sim::Time mean = 0;
};

struct RunResult {
  sim::RunRecord record;
  std::map<std::string, LatencyStats> latency;  ///< by operation name

  /// End-of-run replica state canonical encodings (index = process), for
  /// convergence / History Oblivion assertions.  Present for replicated
  /// algorithms (Algorithm 1, all-OOP, zero-wait); the centralized baseline
  /// reports only the coordinator's state at index 0.
  std::vector<std::string> final_states;

  /// Stats for `op`; throws std::out_of_range naming the operation if the
  /// run completed no instance of it.
  [[nodiscard]] const LatencyStats& stats_for(const std::string& op) const;
};

/// Executes the spec to quiescence and collects results.
[[nodiscard]] RunResult execute(const adt::DataType& type, const RunSpec& spec);

/// Computes latency stats from any record.
[[nodiscard]] std::map<std::string, LatencyStats> latency_by_op(const sim::RunRecord& record);

/// Generates a pseudo-random closed-loop workload: `ops_per_proc` operations
/// at each of `params.n` processes, drawn uniformly from `type`'s operations
/// and sample arguments.  Deterministic per seed.
[[nodiscard]] std::vector<std::vector<ScriptOp>> random_scripts(const adt::DataType& type,
                                                                int n, int ops_per_proc,
                                                                std::uint64_t seed);

/// Generates a closed-loop serving workload over a ShardedStore: keys drawn
/// uniformly from the keyspace, component operations drawn uniformly, and
/// integer arguments globally unique (proc * ops_per_proc + i), which keeps
/// per-key restrictions inside the fast monitors' distinct-value
/// precondition for components like registers.  Deterministic per seed.
[[nodiscard]] std::vector<std::vector<ScriptOp>> sharded_scripts(const core::ShardedStore& store,
                                                                 int n, int ops_per_proc,
                                                                 std::uint64_t seed);

/// Generates an OPEN-LOOP serving arrival plan over a ShardedStore: the same
/// op/key/value distribution as sharded_scripts, but as pre-scheduled
/// RunSpec::calls at fixed times instead of response-driven scripts.  Process
/// p's i-th call arrives at `(i + p/n) * spacing`, strictly time-ascending
/// across the plan; `spacing` must exceed the worst-case response latency
/// (about d for Algorithm 1), since a process may hold only one outstanding
/// invocation.  This is the serving benchmark's workload: the whole plan
/// sits in the simulator's event queue, so scheduler behaviour at 10^5-10^6
/// pending events is what's measured.  Deterministic per seed.
[[nodiscard]] std::vector<Call> sharded_calls(const core::ShardedStore& store, int n,
                                              int ops_per_proc, std::uint64_t seed,
                                              double spacing = 20.0);

}  // namespace lintime::harness
