#pragma once
// Pluggable, seeded workload generators.  A RunSpec can carry a WorkloadGen
// instead of materialized calls/scripts; harness::execute asks it for the
// plan at run time, so scenario files (src/scenario) describe workloads
// declaratively and campaigns materialize them lazily inside each job.
//
// Determinism contract: generate() is const and a pure function of
// (constructor options, type, params) -- no hidden state, no wall clock --
// so one generator instance is safe to share across campaign jobs running
// on different threads, and the same spec always replays the same plan.
// The uniform generators delegate to the original harness helpers
// (random_scripts / sharded_scripts / sharded_calls), consuming the seeded
// RNG in exactly the historical order; plans produced through a generator
// are byte-identical to the hard-coded plans they replaced.

#include <cstdint>
#include <string>
#include <vector>

#include "adt/value.hpp"
#include "harness/runner.hpp"
#include "sim/model_params.hpp"

namespace lintime::harness {

/// A fully materialized workload for one run: open-loop scheduled calls
/// and/or closed-loop per-process scripts (same semantics as the matching
/// RunSpec fields).
struct WorkloadPlan {
  std::vector<Call> calls;
  std::vector<std::vector<ScriptOp>> scripts;  ///< empty, or one per process
  sim::Time script_start = 0;
  sim::Time script_gap = 0;
};

/// Interface: materializes a plan for a (type, params) pair.
class WorkloadGen {
 public:
  WorkloadGen() = default;
  WorkloadGen(const WorkloadGen&) = delete;
  WorkloadGen& operator=(const WorkloadGen&) = delete;
  WorkloadGen(WorkloadGen&&) = delete;
  WorkloadGen& operator=(WorkloadGen&&) = delete;
  virtual ~WorkloadGen() = default;

  [[nodiscard]] virtual WorkloadPlan generate(const adt::DataType& type,
                                              const sim::ModelParams& params) const = 0;

  /// One-line canonical description, mixed into scenario job digests.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Closed-loop scripts drawn uniformly from the type's operations: exactly
/// harness::random_scripts(type, n, ops_per_proc, seed), driven from `start`
/// with `gap` between a response and the next invocation.
class RandomScriptsGen final : public WorkloadGen {
 public:
  RandomScriptsGen(int ops_per_proc, std::uint64_t seed, sim::Time start = 0, sim::Time gap = 0)
      : ops_per_proc_(ops_per_proc), seed_(seed), start_(start), gap_(gap) {}

  [[nodiscard]] WorkloadPlan generate(const adt::DataType& type,
                                      const sim::ModelParams& params) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  int ops_per_proc_;
  std::uint64_t seed_;
  sim::Time start_;
  sim::Time gap_;
};

/// Open-loop staggered rounds (the robustness-campaign shape): the scripts
/// of random_scripts(type, n, rounds, seed) flattened into scheduled calls,
/// round i's call at process p arriving at i*round_gap + p*stagger.
class StaggeredRoundsGen final : public WorkloadGen {
 public:
  StaggeredRoundsGen(int rounds, std::uint64_t seed, sim::Time stagger = 0.25,
                     sim::Time round_gap = 40.0)
      : rounds_(rounds), seed_(seed), stagger_(stagger), round_gap_(round_gap) {}

  [[nodiscard]] WorkloadPlan generate(const adt::DataType& type,
                                      const sim::ModelParams& params) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  int rounds_;
  std::uint64_t seed_;
  sim::Time stagger_;
  sim::Time round_gap_;
};

/// Serving workload over a ShardedStore keyspace (the type must be a
/// core::ShardedStore).  Dimensions:
///  - key popularity: uniform, or Zipf(theta) over ranks 0..num_keys-1
///    (rank 0 the hottest key), sampled by binary search over the
///    precomputed CDF;
///  - arrival discipline: open-loop pre-scheduled calls (steady `spacing`,
///    or bursty: `burst` back-to-back arrival epochs at `spacing` separated
///    by `burst_gap` of silence), or closed-loop scripts with `think` time
///    between a response and the next call.
/// Uniform + open + steady delegates to harness::sharded_calls and uniform +
/// closed to harness::sharded_scripts, so the historical serving plans are
/// reproduced byte-identically.
class ShardedWorkloadGen final : public WorkloadGen {
 public:
  struct Options {
    int ops_per_proc = 0;
    std::uint64_t seed = 0;
    double zipf_theta = 0;   ///< 0 = uniform keys; > 0 = Zipf exponent
    bool closed_loop = false;
    double spacing = 20.0;   ///< open loop: time between arrival epochs
    double think = 0;        ///< closed loop: response -> next-call gap
    int burst = 0;           ///< open loop: epochs per burst; 0 = steady
    double burst_gap = 0;    ///< open loop: silence between bursts
  };

  explicit ShardedWorkloadGen(Options opts) : opts_(opts) {}

  [[nodiscard]] WorkloadPlan generate(const adt::DataType& type,
                                      const sim::ModelParams& params) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  Options opts_;
};

/// The table-bench shape (bench::worst_latency_run): a prefix script `rho`
/// at p0, then the single measured call (op, arg) at p1 at real time
/// (|rho| + 2) * (d + u + eps + 1), well after the prefix quiesces.
class WorstLatencyGen final : public WorkloadGen {
 public:
  WorstLatencyGen(std::string op, adt::Value arg, std::vector<ScriptOp> rho)
      : op_(std::move(op)), arg_(std::move(arg)), rho_(std::move(rho)) {}

  [[nodiscard]] WorkloadPlan generate(const adt::DataType& type,
                                      const sim::ModelParams& params) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::string op_;
  adt::Value arg_;
  std::vector<ScriptOp> rho_;
};

}  // namespace lintime::harness
