#pragma once
// ASCII rendering of runs and delay matrices -- the executable counterpart
// of the paper's Figures 1-10, which are exactly per-process timelines of
// adversarial runs and tables of pair-wise message delays.  Used by the
// fig_theorem* benches and the trace inspector.

#include <string>
#include <vector>

#include "sim/run_record.hpp"

namespace lintime::shift {

struct RenderOptions {
  double t_min = 0;    ///< left edge (real time)
  double t_max = -1;   ///< right edge; < t_min means "end of run"
  int width = 96;      ///< columns for the time axis
  bool show_messages = false;  ///< append one line per message in the window
};

/// Renders each process's operations as labelled intervals on a shared real
/// time axis:
///
///   t:      50.0                                                      61.5
///   p0      |        [dequeue(nil) -> 7..............]                  |
///   p1      |  [dequeue(nil) -> nil.......................]             |
///
/// Operations overlapping [t_min, t_max] are drawn (clipped); incomplete
/// operations render with a '>' right edge.
[[nodiscard]] std::string render_timeline(const sim::RunRecord& record,
                                          const RenderOptions& options = {});

/// Renders an n-by-n delay matrix with admissibility marks:
///
///   delay   ->p0    ->p1    ->p2
///   p0         -    10.0*   8.4
///   p1       11.6!     -    8.4
///   (entries outside [d-u, d] are flagged with '!'; '*' marks d exactly)
[[nodiscard]] std::string render_delay_matrix(const std::vector<std::vector<double>>& matrix,
                                              const sim::ModelParams& params);

}  // namespace lintime::shift
