#pragma once
// Executable versions of the paper's lower-bound constructions
// (Theorems 2-5).  Each experiment instantiates an *unsafe* variant of
// Algorithm 1 -- identical logic, timers shortened below the theorem's bound,
// which is precisely the "assume |OP| < bound" premise of the proof -- and
// realizes the adversarial schedule from the proof (delay matrices, clock
// offsets, invocation times).  The linearizability checker then certifies
// the violation.  Each experiment also runs the *standard* Algorithm 1 under
// the same adversary and certifies it survives, so the violation is
// attributable to timing alone.
//
// Theorem 2 additionally exercises the classic shifting technique on the
// recorded run (shift, admissibility re-check, re-check linearizability),
// and Theorems 4 and 5 exercise the new shift-and-chop machinery
// mechanically, verifying the bookkeeping claims of the proofs (which edge
// becomes invalid, where each view is cut, which operations survive the
// cut).

#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "harness/runner.hpp"
#include "shift/shift.hpp"

namespace lintime::shift {

/// Common outcome fields for all theorem experiments.
struct ExperimentResult {
  std::string name;
  sim::Time bound = 0;           ///< the theorem's lower bound (time units)
  sim::Time unsafe_latency = 0;  ///< the violating |OP| (or sum) actually used
  bool unsafe_violated = false;  ///< adversary produced a non-linearizable run
  bool safe_survived = false;    ///< standard Algorithm 1 stayed linearizable
  std::string details;           ///< multi-line human-readable report

  [[nodiscard]] bool demonstrated() const { return unsafe_violated && safe_survived; }
};

/// Theorem 2 (|AOP| >= u/4 for pure accessors), via classic shifting.
///
/// Runs the proof's run R1 -- a mutator instance at p2 surrounded by k+2
/// alternating pure-accessor instances at p0/p1 under uniform delays d-u/2 --
/// with an unsafe algorithm whose AOP latency is `unsafe_fraction * u/4`.
/// R1 itself is linearizable; the experiment then shifts p0/p1 by +-u/4
/// around the last old-value accessor (the proof's index j), verifies the
/// shifted run is admissible, and certifies it is NOT linearizable.
///
/// `mutator_op` must be visible to `aop` (the proof's op/aop/aop' triple);
/// `rho` is executed at p0 first (may be empty).
struct Theorem2Spec {
  std::string aop;
  adt::Value aop_arg;
  std::string mutator_op;
  adt::Value mutator_arg;
  std::vector<harness::ScriptOp> rho;
  double unsafe_fraction = 0.8;  ///< AOP latency as a fraction of u/4
};
[[nodiscard]] ExperimentResult theorem2_pure_accessor(const adt::DataType& type,
                                                      const Theorem2Spec& spec,
                                                      const sim::ModelParams& params);

/// Theorem 3 (|OP| >= (1-1/k)u for last-sensitive mutators).
///
/// Live realization of the proof's shifted run R2: k concurrent instances of
/// the mutator at p0..p(k-1), clock offsets -x_i and invocation times t+x_i
/// (so every timestamp equals t, pinning last(pi) = p_{k-1} = the proof's z),
/// delays given by the shifted matrix of Claim 3.  The unsafe mutator ACKs
/// after `unsafe_fraction * (1-1/k) u`, making op_z respond before
/// op_{(z+1)%k} is invoked; the probe script then exposes that op_z's effect
/// is nevertheless last.
struct Theorem3Spec {
  std::string op;
  std::vector<adt::Value> args;  ///< k distinct arguments, one per process
  std::vector<harness::ScriptOp> rho;    ///< prefix executed at p0
  std::vector<harness::ScriptOp> probe;  ///< executed at p0 after quiescence
  double unsafe_fraction = 0.9;
};
[[nodiscard]] ExperimentResult theorem3_last_sensitive(const adt::DataType& type,
                                                       const Theorem3Spec& spec,
                                                       const sim::ModelParams& params);

/// Theorem 4 (|OP| >= d + m, m = min{eps, u, d/3}, for pair-free ops).
///
/// Live realization of the proof's run R4: clock offsets (-m, 0, ...), p1
/// invokes OP(arg1) at t, p0 invokes OP(arg0) at t+m; edges into p1 carry
/// delay d so p1 cannot learn of op0 before responding.  With the unsafe
/// OOP latency d + m/2 (< d+m but >= d, i.e. strictly beyond the previously
/// known bound), both instances return their solo values, which pair-freeness
/// makes jointly illegal.
struct Theorem4Spec {
  std::string op;
  adt::Value arg0;
  adt::Value arg1;
  std::vector<harness::ScriptOp> rho;  ///< prefix executed at p0
};
[[nodiscard]] ExperimentResult theorem4_pair_free(const adt::DataType& type,
                                                  const Theorem4Spec& spec,
                                                  const sim::ModelParams& params);

/// Theorem 4's shift-and-chop bookkeeping (Figures 2-6), mechanically:
/// records the proof's R2, shifts p1 earlier by m (x = (0,-m,0,...)),
/// verifies exactly the edge p1->p0 becomes invalid at d+m, chops at
/// delta = d-m, and verifies p1's view survives past op1's response while
/// all remaining delays are valid (Lemma 2).
struct ChopDemoResult {
  bool one_invalid_edge = false;
  bool chop_valid = false;         ///< Lemma 2 postconditions hold
  bool op_survives_chop = false;   ///< the proof's target op completes in the fragment
  std::string details;

  [[nodiscard]] bool ok() const { return one_invalid_edge && chop_valid && op_survives_chop; }
};
[[nodiscard]] ChopDemoResult theorem4_chop_demo(const adt::DataType& type,
                                                const Theorem4Spec& spec,
                                                const sim::ModelParams& params);

/// Theorem 5 (|OP| + |AOP| >= d + m for a transposable mutator and a
/// discriminating pure accessor).
///
/// Live realization: offsets (0, -m, 0), both mutator instances invoked at
/// real time t (p1's timestamp is m smaller, fixing the linearization
/// order), then concurrent accessors at p0 (which has heard both mutators)
/// and p2 (which has heard neither).  With the unsafe sum below d, p2's
/// accessor returns the initial-state value although both mutators completed
/// before it began -- jointly non-linearizable with p0's accessor.
struct Theorem5Spec {
  std::string op;
  adt::Value arg0;
  adt::Value arg1;
  std::string aop;
  adt::Value aop_arg;
  std::vector<harness::ScriptOp> rho;
};
[[nodiscard]] ExperimentResult theorem5_sum(const adt::DataType& type, const Theorem5Spec& spec,
                                            const sim::ModelParams& params);

/// Theorem 5's shift-and-chop bookkeeping (Figures 8-10): records R1, shifts
/// p1 later by m, verifies the single invalid edge p1->p0 (= d-2m; requires
/// parameters with 2m > u), chops at d-m, and verifies the accessors at p1
/// and p2 survive the cut (Claim 8).
[[nodiscard]] ChopDemoResult theorem5_chop_demo(const adt::DataType& type,
                                                const Theorem5Spec& spec,
                                                const sim::ModelParams& params);

/// The full Theorem 4 proof pipeline (Figures 3-7), run LIVE: the five runs
/// R1..R5 are executed against the unsafe algorithm (|OOP| = d + m/2 < d+m)
/// with the proof's exact offsets and (repaired) delay matrices, and the
/// proof's indistinguishability claims are verified mechanically on the
/// records:
///   Claim 4: p0's view through its response is identical in R1 and R2
///            (so p0 answers as if alone);
///   Claim 5: p1's view through its response is identical in R4 and R5
///            (so p1 cannot know whether op0 happened);
/// and the punchline: the algorithm returns the same value for op1 in R4 and
/// R5, which makes at least one of them non-linearizable.
struct Theorem4Pipeline {
  bool claim4_view_identity = false;
  bool claim5_view_identity = false;
  bool same_ret_r4_r5 = false;      ///< op1's return identical in R4 and R5
  bool contradiction = false;       ///< R4 or R5 fails the checker
  adt::Value ret0_solo;             ///< op0's return when alone (R1)
  adt::Value ret1_solo;             ///< op1's return when alone (R5)
  std::string details;

  [[nodiscard]] bool ok() const {
    return claim4_view_identity && claim5_view_identity && same_ret_r4_r5 && contradiction;
  }
};
[[nodiscard]] Theorem4Pipeline theorem4_full_pipeline(const adt::DataType& type,
                                                      const Theorem4Spec& spec,
                                                      const sim::ModelParams& params);

/// The Theorem 5 proof pipeline (Figures 8-10), run LIVE in the
/// reversed-role form our timestamp algorithm selects (it linearizes p0's
/// mutator first, the proof's symmetric case):
///   R1: both mutators at t, three accessors -- all replicas agree, run
///       linearizable;
///   R2: p0 shifted later by m with the invalid p0->p1 edge repaired to d
///       (the chop's effect realized as a live run): p1's accessor can no
///       longer hear p0's mutator, yet p0's mutator now strictly follows
///       p1's in real time -- the accessor at p0 still answers by timestamp
///       order, which no linearization allows;
///   R3: R2 with p0's mutator deleted -- p1's view through its accessor's
///       response is IDENTICAL (verified on the records), and R3 is
///       linearizable: the contradiction the proof derives.
struct Theorem5Pipeline {
  bool r1_linearizable = false;
  bool aop1_misses_op0 = false;     ///< in R2, p1's accessor answers pre-op0
  bool view_identity_r2_r3 = false; ///< p1's view identical through its response
  bool r2_violated = false;
  bool r3_linearizable = false;
  std::string details;

  [[nodiscard]] bool ok() const {
    return r1_linearizable && aop1_misses_op0 && view_identity_r2_r3 && r2_violated &&
           r3_linearizable;
  }
};
[[nodiscard]] Theorem5Pipeline theorem5_full_pipeline(const adt::DataType& type,
                                                      const Theorem5Spec& spec,
                                                      const sim::ModelParams& params);

/// Section 6.1's generalized Lipton-Sandberg bound: for any *interfering*
/// pair (a mutator op1 whose occurrence changes an accessor op2's return
/// value), |OP1| + |OP2| >= d -- the accessor must have time to hear about
/// the mutator.  Live demonstration: an unsafe split with sum < d produces a
/// stale read after the mutator completed; the standard algorithm (sum
/// d + eps) survives.
struct InterferenceSpec {
  std::string mutator_op;
  adt::Value mutator_arg;
  std::string aop;
  adt::Value aop_arg;
  std::vector<harness::ScriptOp> rho;
  double unsafe_fraction = 0.9;  ///< sum as a fraction of d
};
[[nodiscard]] ExperimentResult interference_sum(const adt::DataType& type,
                                                const InterferenceSpec& spec,
                                                const sim::ModelParams& params);

}  // namespace lintime::shift
