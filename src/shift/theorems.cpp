#include "shift/theorems.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "lin/checker.hpp"
#include "shift/render.hpp"
#include "sim/world.hpp"

namespace lintime::shift {

namespace {

using adt::Value;
using core::AlgorithmOneProcess;
using core::TimingPolicy;
using harness::ScriptOp;
using sim::ModelParams;
using sim::ProcId;
using sim::Time;

/// A timed open-loop call.
struct TimedCall {
  Time when;
  ProcId proc;
  std::string op;
  Value arg;
};

/// A sequential (closed-loop) script at one process, starting at a given
/// real time.
struct TimedScript {
  Time start;
  ProcId proc;
  std::vector<ScriptOp> ops;
};

/// Runs Algorithm 1 with an arbitrary timing policy under the given
/// adversary and workload; returns the full record.
sim::RunRecord run_algorithm_one(const adt::DataType& type, const ModelParams& params,
                                 const TimingPolicy& timing, std::vector<Time> offsets,
                                 std::shared_ptr<sim::DelayModel> delays,
                                 const std::vector<TimedCall>& calls,
                                 const std::vector<TimedScript>& scripts) {
  sim::WorldConfig config;
  config.params = params;
  config.clock_offsets = std::move(offsets);
  config.delays = std::move(delays);

  sim::World world(config, [&](ProcId) -> std::unique_ptr<sim::Process> {
    return std::make_unique<AlgorithmOneProcess>(type, timing);
  });

  // Closed-loop cursors per process.  Several scripts may target the same
  // process (e.g. a prefix rho and a late probe); they are chained in start
  // order, each entry carrying the earliest real time it may be invoked at.
  struct Entry {
    ScriptOp op;
    sim::Time not_before;
  };
  struct Cursor {
    std::deque<Entry> remaining;
    // The (name, arg) of the entry currently in flight: open-loop TimedCalls
    // at the same process also trigger the response hook, and must not
    // advance the script.  Constructions keep script ops distinguishable
    // from open-loop calls by (name, arg).
    std::optional<ScriptOp> in_flight;
  };
  std::vector<Cursor> cursors(static_cast<std::size_t>(params.n));
  {
    std::vector<TimedScript> sorted = scripts;
    std::sort(sorted.begin(), sorted.end(),
              [](const TimedScript& a, const TimedScript& b) { return a.start < b.start; });
    for (const auto& script : sorted) {
      auto& cursor = cursors[static_cast<std::size_t>(script.proc)];
      for (const auto& op : script.ops) cursor.remaining.push_back(Entry{op, script.start});
    }
  }
  world.set_response_hook([&cursors](sim::World& w, const sim::OpRecord& op) {
    auto& cursor = cursors[static_cast<std::size_t>(op.proc)];
    if (!cursor.in_flight || cursor.in_flight->op != op.op || cursor.in_flight->arg != op.arg) {
      return;  // an open-loop call completed, not the script's entry
    }
    cursor.in_flight.reset();
    if (!cursor.remaining.empty()) {
      Entry next = cursor.remaining.front();
      cursor.remaining.pop_front();
      cursor.in_flight = next.op;
      w.invoke_at(std::max(w.now(), next.not_before), op.proc, next.op.op, next.op.arg);
    }
  });
  for (auto& cursor : cursors) {
    if (cursor.remaining.empty()) continue;
    const ProcId proc = static_cast<ProcId>(&cursor - cursors.data());
    Entry first = cursor.remaining.front();
    cursor.remaining.pop_front();
    cursor.in_flight = first.op;
    world.invoke_at(first.not_before, proc, first.op.op, first.op.arg);
  }

  for (const auto& call : calls) {
    world.invoke_at(call.when, call.proc, call.op, call.arg);
  }

  world.run();
  return world.record();
}

/// Conservative upper bound on the quiescence time of a sequential script of
/// `count` operations started at time 0 under Algorithm 1 (any policy: the
/// slowest class is OOP at d+eps, plus u+eps of queue-settling tail per op).
Time quiescence_bound(const ModelParams& p, std::size_t count) {
  return (static_cast<Time>(count) + 1.0) * (p.d + p.u + p.eps + 1.0);
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Theorem 2
// ---------------------------------------------------------------------------

ExperimentResult theorem2_pure_accessor(const adt::DataType& type, const Theorem2Spec& spec,
                                        const ModelParams& params) {
  params.validate();
  if (params.n < 3) throw std::invalid_argument("theorem2: needs n >= 3");
  if (params.eps + 1e-12 < params.u / 2) {
    throw std::invalid_argument("theorem2: needs eps >= u/2 (holds for eps = (1-1/n)u, n>=3)");
  }

  ExperimentResult result;
  result.name = "Theorem 2: pure accessor |AOP| >= u/4 (" + type.name() + "::" + spec.aop + ")";
  result.bound = params.u / 4;

  const Time quarter = params.u / 4;

  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  unsafe.aop_respond = spec.unsafe_fraction * quarter;
  unsafe.aop_backdate = 0;
  result.unsafe_latency = unsafe.aop_respond;

  // If the visible mutator is a pure mutator, slow its ACK beyond the
  // announce-propagation time (a perfectly legal algorithm choice -- only
  // the accessor's speed is under test).  Otherwise the mutator would
  // respond long before any replica could have heard of it, the accessors
  // after its response would trivially return stale values, and the run
  // would break for the crude d-propagation reason rather than exercising
  // the u/4 shifting argument.
  const adt::OpCategory mutator_cat = type.category(spec.mutator_op);
  if (mutator_cat == adt::OpCategory::kPureMutator) {
    unsafe.mop_respond = std::max(unsafe.mop_respond, params.d - quarter);
  }

  auto delays = std::make_shared<sim::MatrixDelay>(
      sim::MatrixDelay::uniform(params.n, params.d - params.u / 2));

  // The mutator's latency determines how many accessor instances are needed
  // to straddle it (the proof's k = ceil(|OP| / (u/4))).
  const Time mutator_latency = (mutator_cat == adt::OpCategory::kPureMutator)
                                   ? unsafe.mop_bound()
                                   : unsafe.oop_bound();
  const int k = static_cast<int>(std::ceil(mutator_latency / quarter));

  const Time t = quiescence_bound(params, spec.rho.size());

  std::vector<TimedCall> calls;
  for (int i = 0; i <= k + 1; ++i) {
    calls.push_back(TimedCall{t + i * quarter, static_cast<ProcId>(i % 2), spec.aop,
                              spec.aop_arg});
  }
  calls.push_back(TimedCall{t + quarter, 2, spec.mutator_op, spec.mutator_arg});

  std::vector<TimedScript> scripts;
  if (!spec.rho.empty()) scripts.push_back(TimedScript{0, 0, spec.rho});

  const sim::RunRecord r1 =
      run_algorithm_one(type, params, unsafe, {}, delays, calls, scripts);

  // Locate the proof's index j: the last accessor instance returning the
  // "old" value.  Accessor instances are the aop calls at p0/p1 from time t.
  std::vector<sim::OpRecord> aops;
  for (const auto& op : r1.ops) {
    if (op.op == spec.aop && op.invoke_real >= t - 1e-9 && op.proc <= 1) aops.push_back(op);
  }
  std::sort(aops.begin(), aops.end(),
            [](const sim::OpRecord& a, const sim::OpRecord& b) {
              return a.invoke_real < b.invoke_real;
            });

  std::ostringstream details;
  details << "k = " << k << ", accessors = " << aops.size() << "\n";

  const Value old_ret = aops.front().ret;
  int j = -1;
  bool monotone = true;
  for (std::size_t i = 0; i < aops.size(); ++i) {
    if (aops[i].ret == old_ret) {
      if (j >= 0 && static_cast<std::size_t>(j) + 1 != i) monotone = false;
      j = static_cast<int>(i);
    }
  }
  if (!monotone || j < 0 || j > k) {
    result.details = details.str() + "transition index j invalid (j=" + fmt(j) +
                     "); construction inapplicable under these parameters";
    return result;
  }
  details << "transition index j = " << j << " (aop_j at p" << (j % 2) << ")\n";

  // R1 itself must be linearizable (the unsafe algorithm looks correct here).
  const bool r1_ok = lin::check_linearizability(type, r1).linearizable;
  details << "R1 linearizable: " << (r1_ok ? "yes" : "NO") << "\n";

  // The proof's shift: the process that executed aop_j moves later by u/4,
  // the other earlier by u/4.
  std::vector<Time> x(static_cast<std::size_t>(params.n), 0.0);
  if (j % 2 == 0) {
    x[0] = quarter;
    x[1] = -quarter;
  } else {
    x[0] = -quarter;
    x[1] = quarter;
  }
  const sim::RunRecord r2 = shift_run(r1, x);
  const AdmissibilityReport adm = check_admissibility(r2);
  details << "R2 admissible: " << (adm.admissible ? "yes" : "NO") << " (max skew "
          << adm.max_skew << ", delays in [" << adm.min_delay << ", " << adm.max_delay << "])\n";

  {
    RenderOptions ro;
    ro.t_min = t - params.u;
    ro.t_max = t + (k + 2) * quarter + params.u;
    details << "R1 (recorded):\n" << render_timeline(r1, ro) << "R2 (shifted):\n"
            << render_timeline(r2, ro);
  }
  const auto r2_check = lin::check_linearizability(type, r2);
  details << "R2 linearizable: " << (r2_check.linearizable ? "yes (NOT the expected violation)"
                                                           : "NO (violation as proven)")
          << "\n";
  result.unsafe_violated = r1_ok && adm.admissible && !r2_check.linearizable;

  // Standard Algorithm 1 under the same adversary -- closed-loop workload of
  // the same shape -- stays linearizable, and stays linearizable even after
  // the same shift (a correct algorithm is correct in every admissible run).
  TimingPolicy safe = TimingPolicy::standard(params, /*X=*/0);
  std::vector<ScriptOp> p0_script = spec.rho;
  for (int i = 0; i < (k + 2 + 1) / 2; ++i) p0_script.push_back(ScriptOp{spec.aop, spec.aop_arg});
  std::vector<TimedScript> safe_scripts = {
      TimedScript{0, 0, p0_script},
      TimedScript{t, 1, std::vector<ScriptOp>((k + 2) / 2, ScriptOp{spec.aop, spec.aop_arg})},
  };
  std::vector<TimedCall> safe_calls = {
      TimedCall{t + quarter, 2, spec.mutator_op, spec.mutator_arg}};
  const sim::RunRecord safe_run =
      run_algorithm_one(type, params, safe, {}, delays, safe_calls, safe_scripts);
  const bool safe_live = lin::check_linearizability(type, safe_run).linearizable;
  const sim::RunRecord safe_shifted = shift_run(safe_run, x);
  const AdmissibilityReport safe_adm = check_admissibility(safe_shifted);
  const bool safe_after_shift =
      !safe_adm.admissible || lin::check_linearizability(type, safe_shifted).linearizable;
  result.safe_survived = safe_live && safe_after_shift;
  details << "standard Algorithm 1: live " << (safe_live ? "linearizable" : "VIOLATED")
          << ", after same shift "
          << (safe_after_shift ? "linearizable/na" : "VIOLATED") << "\n";

  result.details = details.str();
  return result;
}

// ---------------------------------------------------------------------------
// Theorem 3
// ---------------------------------------------------------------------------

ExperimentResult theorem3_last_sensitive(const adt::DataType& type, const Theorem3Spec& spec,
                                         const ModelParams& params) {
  params.validate();
  const int k = static_cast<int>(spec.args.size());
  if (k < 2) throw std::invalid_argument("theorem3: needs k >= 2 arguments");
  if (params.n < k) throw std::invalid_argument("theorem3: needs n >= k");
  const Time bound = (1.0 - 1.0 / k) * params.u;
  if (params.eps + 1e-12 < bound) {
    throw std::invalid_argument("theorem3: needs eps >= (1-1/k)u");
  }

  ExperimentResult result;
  result.name = "Theorem 3: last-sensitive |OP| >= (1-1/k)u, k=" + std::to_string(k) + " (" +
                type.name() + "::" + spec.op + ")";
  result.bound = bound;

  // The proof's shift vector with z = k-1 (timestamps tie at t, broken by
  // process id, so the algorithm linearizes p_{k-1}'s instance last).
  const int z = k - 1;
  std::vector<Time> x(static_cast<std::size_t>(params.n), 0.0);
  for (int i = 0; i < k; ++i) {
    const int mod = ((z - i) % k + k) % k;
    x[static_cast<std::size_t>(i)] =
        (-(k - 1.0) / (2.0 * k) + static_cast<double>(mod) / k) * params.u;
  }

  // Live equivalent of R2 = shift(R1, x): clock offsets -x_i, invocations at
  // t + x_i, delays D'_ij = D_ij - x_i + x_j (Claim 3 proves validity).
  std::vector<std::vector<Time>> base(
      static_cast<std::size_t>(params.n),
      std::vector<Time>(static_cast<std::size_t>(params.n), params.d - params.u / 2));
  for (int i = 0; i < k; ++i) {
    for (int jj = 0; jj < k; ++jj) {
      const int mod = ((i - jj) % k + k) % k;
      base[static_cast<std::size_t>(i)][static_cast<std::size_t>(jj)] =
          params.d - static_cast<double>(mod) / k * params.u;
    }
  }
  std::vector<std::vector<Time>> shifted_matrix = base;
  for (int i = 0; i < params.n; ++i) {
    for (int jj = 0; jj < params.n; ++jj) {
      shifted_matrix[static_cast<std::size_t>(i)][static_cast<std::size_t>(jj)] -=
          x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(jj)];
    }
  }
  auto delays = std::make_shared<sim::MatrixDelay>(shifted_matrix);

  std::vector<Time> offsets(static_cast<std::size_t>(params.n), 0.0);
  for (int i = 0; i < params.n; ++i) offsets[static_cast<std::size_t>(i)] = -x[static_cast<std::size_t>(i)];

  const Time t = quiescence_bound(params, spec.rho.size()) + params.u;
  const Time t_probe = t + 3 * (params.d + params.u + params.eps + 1);

  // A tiny per-process stagger makes the timestamp order strictly
  // increasing in the process id (the proof gets the same effect from the
  // (clock, id) tie-break over exact reals; with floating-point times an
  // explicit margin is the robust way to pin last(pi) = p_{k-1}).  gamma is
  // five orders of magnitude below every bound margin in the construction.
  const Time gamma = 1e-6;
  std::vector<TimedCall> calls;
  for (int i = 0; i < k; ++i) {
    calls.push_back(
        TimedCall{t + x[static_cast<std::size_t>(i)] + i * gamma, static_cast<ProcId>(i),
                  spec.op, spec.args[static_cast<std::size_t>(i)]});
  }

  std::ostringstream details;

  auto run_with = [&](const TimingPolicy& timing) {
    std::vector<TimedScript> scripts;
    if (!spec.rho.empty()) scripts.push_back(TimedScript{0, 0, spec.rho});
    scripts.push_back(TimedScript{t_probe, 0, spec.probe});
    return run_algorithm_one(type, params, timing, offsets, delays, calls, scripts);
  };

  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  unsafe.mop_respond = spec.unsafe_fraction * bound;
  result.unsafe_latency = unsafe.mop_respond;

  const sim::RunRecord unsafe_run = run_with(unsafe);
  const auto unsafe_check = lin::check_linearizability(type, unsafe_run);
  result.unsafe_violated = !unsafe_check.linearizable;
  {
    // The Figure 1 timeline: the k concurrent instances under the shifted
    // schedule (op_z finishes before op_{z+1 mod k} begins).
    RenderOptions ro;
    ro.t_min = t - params.u;
    ro.t_max = t + 2 * params.u;
    details << render_timeline(unsafe_run, ro);
  }

  // Sanity detail: op_z must respond strictly before op_{(z+1)%k} is
  // invoked, which is what pins its place in real-time order.
  Time z_response = -1, next_invoke = -1;
  for (const auto& op : unsafe_run.ops) {
    if (op.op == spec.op && op.proc == z) z_response = op.response_real;
    if (op.op == spec.op && op.proc == (z + 1) % k) next_invoke = op.invoke_real;
  }
  details << "op_z responds at " << z_response << ", op_{z+1} invoked at " << next_invoke
          << " (precedes: " << (z_response < next_invoke ? "yes" : "NO") << ")\n";
  for (const auto& op : unsafe_run.ops) {
    if (op.invoke_real >= t - 1.0) details << "  " << op.to_string() << "\n";
  }
  details << "unsafe run linearizable: " << (unsafe_check.linearizable ? "yes (unexpected)" : "NO (violation as proven)")
          << "\n";

  TimingPolicy safe = TimingPolicy::standard(params, /*X=*/0);
  const sim::RunRecord safe_run = run_with(safe);
  result.safe_survived = lin::check_linearizability(type, safe_run).linearizable;
  details << "standard Algorithm 1 (|MOP| = eps = " << safe.mop_respond
          << "): " << (result.safe_survived ? "linearizable" : "VIOLATED") << "\n";

  result.details = details.str();
  return result;
}

// ---------------------------------------------------------------------------
// Theorem 4
// ---------------------------------------------------------------------------

namespace {

/// The proof's delay matrix D^1 (Figure 2): edges into p0 carry d-m except
/// from p1; edges out of p1 carry d-m except to p0; everything else d.
std::vector<std::vector<Time>> theorem4_matrix(const ModelParams& params) {
  const auto n = static_cast<std::size_t>(params.n);
  const Time m = params.m();
  std::vector<std::vector<Time>> D(n, std::vector<Time>(n, params.d));
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 1) D[i][0] = params.d - m;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (j != 0) D[1][j] = params.d - m;
  }
  return D;
}

}  // namespace

ExperimentResult theorem4_pair_free(const adt::DataType& type, const Theorem4Spec& spec,
                                    const ModelParams& params) {
  params.validate();
  if (params.n < 2) throw std::invalid_argument("theorem4: needs n >= 2");
  const Time m = params.m();

  ExperimentResult result;
  result.name = "Theorem 4: pair-free |OP| >= d + min{eps,u,d/3} (" + type.name() +
                "::" + spec.op + ")";
  result.bound = params.d + m;

  auto delays = std::make_shared<sim::MatrixDelay>(theorem4_matrix(params));

  std::vector<Time> offsets(static_cast<std::size_t>(params.n), 0.0);
  offsets[0] = -m;  // the proof's C_0

  const Time t = quiescence_bound(params, spec.rho.size()) + m + 1;

  // p0's timestamp must be strictly below p1's so every replica linearizes
  // op0 first; the explicit gamma margin makes this robust to
  // floating-point rounding of the otherwise exactly-tied clock values.
  const Time gamma = 1e-6;
  std::vector<TimedCall> calls = {
      TimedCall{t, 1, spec.op, spec.arg1},
      TimedCall{t + m - gamma, 0, spec.op, spec.arg0},
  };
  std::vector<TimedScript> scripts;
  if (!spec.rho.empty()) scripts.push_back(TimedScript{0, 0, spec.rho});

  std::ostringstream details;

  // Unsafe: |OOP| = d + m/2, strictly between the previously known bound d
  // and the paper's new bound d + m.
  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  unsafe.execute_delay = params.u + m / 2;
  result.unsafe_latency = unsafe.oop_bound();

  const sim::RunRecord unsafe_run =
      run_algorithm_one(type, params, unsafe, offsets, delays, calls, scripts);
  const auto unsafe_check = lin::check_linearizability(type, unsafe_run);
  result.unsafe_violated = !unsafe_check.linearizable;
  {
    RenderOptions ro;
    ro.t_min = t - 1;
    ro.t_max = t + params.d + 2 * m;
    details << render_timeline(unsafe_run, ro);
  }
  for (const auto& op : unsafe_run.ops) {
    if (op.op == spec.op) details << "  " << op.to_string() << "\n";
  }
  details << "unsafe run (|OOP| = " << result.unsafe_latency << ") linearizable: "
          << (unsafe_check.linearizable ? "yes (unexpected)" : "NO (violation as proven)") << "\n";

  TimingPolicy safe = TimingPolicy::standard(params, /*X=*/0);
  const sim::RunRecord safe_run =
      run_algorithm_one(type, params, safe, offsets, delays, calls, scripts);
  result.safe_survived = lin::check_linearizability(type, safe_run).linearizable;
  details << "standard Algorithm 1 (|OOP| = " << safe.oop_bound()
          << "): " << (result.safe_survived ? "linearizable" : "VIOLATED") << "\n";

  result.details = details.str();
  return result;
}

ChopDemoResult theorem4_chop_demo(const adt::DataType& type, const Theorem4Spec& spec,
                                  const ModelParams& params) {
  params.validate();
  if (params.n < 3) throw std::invalid_argument("theorem4_chop_demo: needs n >= 3");
  const Time m = params.m();

  ChopDemoResult result;
  std::ostringstream details;

  // The proof's R2: offsets C_1 = (0, -m, 0, ...), delays D^1, p0 invokes
  // OP(arg0) at t, p1 invokes OP(arg1) at t + m.
  std::vector<Time> offsets(static_cast<std::size_t>(params.n), 0.0);
  offsets[1] = -m;
  auto delays = std::make_shared<sim::MatrixDelay>(theorem4_matrix(params));

  const Time t = quiescence_bound(params, spec.rho.size()) + m + 1;
  std::vector<TimedCall> calls = {
      TimedCall{t, 0, spec.op, spec.arg0},
      TimedCall{t + m, 1, spec.op, spec.arg1},
  };
  std::vector<TimedScript> scripts;
  if (!spec.rho.empty()) scripts.push_back(TimedScript{0, 0, spec.rho});

  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  unsafe.execute_delay = params.u + m / 2;  // |OOP| = d + m/2 < d + m

  const sim::RunRecord r2 =
      run_algorithm_one(type, params, unsafe, offsets, delays, calls, scripts);

  // Step 3 of the proof: shift p1 earlier by m.  Message delays from p1 to
  // p0 become d + m -- the single invalid edge (Figure 4).
  std::vector<Time> x(static_cast<std::size_t>(params.n), 0.0);
  x[1] = -m;
  const sim::RunRecord s2 = shift_run(r2, x);

  auto matrix = theorem4_matrix(params);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      matrix[i][j] -= x[i] - x[j];
    }
  }
  details << "delays after shifting p1 earlier by m (Figure 4):\n"
          << render_delay_matrix(matrix, params);
  int invalid_count = 0;
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      if (i == j) continue;
      if (matrix[i][j] < params.min_delay() - 1e-9 || matrix[i][j] > params.d + 1e-9) {
        ++invalid_count;
        details << "invalid edge p" << i << "->p" << j << " = " << matrix[i][j] << "\n";
      }
    }
  }
  result.one_invalid_edge = (invalid_count == 1) &&
                            (matrix[1][0] > params.d + 1e-9);
  details << "invalid edges: " << invalid_count << " (expected exactly p1->p0 = d+m = "
          << params.d + m << ")\n";

  const sim::RunRecord chopped = chop_run(s2, matrix, params.d - m);

  // Lemma 2 postconditions: every received delay valid; every unreceived
  // message's recipient view ends before send + d.
  const AdmissibilityReport adm = check_admissibility(chopped);
  bool delays_ok = true;
  for (const auto& v : adm.violations) {
    if (v.kind != Violation::Kind::kSkew) delays_ok = false;
  }
  result.chop_valid = delays_ok;
  details << "chopped fragment delay-valid: " << (delays_ok ? "yes" : "NO") << "\n";

  // p1's operation (invoked at t+m, shifted to t) must complete within the
  // fragment: the proof shows p1's view is chopped at t + d + m or later
  // while op1' responds before t + d + m.
  for (const auto& op : chopped.ops) {
    if (op.proc == 1 && op.op == spec.op) {
      result.op_survives_chop = op.complete();
      details << "p1's " << op.to_string() << " survives chop: "
              << (op.complete() ? "yes" : "NO") << "\n";
    }
  }

  result.details = details.str();
  return result;
}

// ---------------------------------------------------------------------------
// Theorem 5
// ---------------------------------------------------------------------------

namespace {

/// The proof's delay matrix for Theorem 5 (Figure 8): edges into p0 and p1
/// carry d - m; everything else d.
std::vector<std::vector<Time>> theorem5_matrix(const ModelParams& params) {
  const auto n = static_cast<std::size_t>(params.n);
  const Time m = params.m();
  std::vector<std::vector<Time>> D(n, std::vector<Time>(n, params.d));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 2 && j < n; ++j) {
      if (i != j) D[i][j] = params.d - m;
    }
  }
  return D;
}

}  // namespace

ExperimentResult theorem5_sum(const adt::DataType& type, const Theorem5Spec& spec,
                              const ModelParams& params) {
  params.validate();
  if (params.n < 3) throw std::invalid_argument("theorem5: needs n >= 3");
  const Time m = params.m();

  ExperimentResult result;
  result.name = "Theorem 5: |OP| + |AOP| >= d + min{eps,u,d/3} (" + type.name() + "::" +
                spec.op + " + " + spec.aop + ")";
  result.bound = params.d + m;

  auto delays = std::make_shared<sim::MatrixDelay>(theorem5_matrix(params));

  std::vector<Time> offsets(static_cast<std::size_t>(params.n), 0.0);
  offsets[1] = -m;  // the shifted run's C_2

  const Time t = quiescence_bound(params, spec.rho.size()) + m + 1;

  // Unsafe split: |OP| = m/2, |AOP| = d - m; sum = d - m/2 < d <= d + m.
  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  unsafe.mop_respond = m / 2;
  unsafe.aop_respond = params.d - m;
  unsafe.aop_backdate = 0;
  result.unsafe_latency = unsafe.mop_respond + unsafe.aop_respond;

  const Time t_aop = t + unsafe.mop_respond + m / 4;

  std::vector<TimedCall> calls = {
      TimedCall{t, 0, spec.op, spec.arg0},
      TimedCall{t, 1, spec.op, spec.arg1},
      TimedCall{t_aop, 0, spec.aop, spec.aop_arg},
      TimedCall{t_aop, 2, spec.aop, spec.aop_arg},
  };
  std::vector<TimedScript> scripts;
  if (!spec.rho.empty()) scripts.push_back(TimedScript{0, 0, spec.rho});

  std::ostringstream details;

  const sim::RunRecord unsafe_run =
      run_algorithm_one(type, params, unsafe, offsets, delays, calls, scripts);
  const auto unsafe_check = lin::check_linearizability(type, unsafe_run);
  result.unsafe_violated = !unsafe_check.linearizable;
  {
    RenderOptions ro;
    ro.t_min = t - 1;
    ro.t_max = t + params.d + 2 * m;
    details << render_timeline(unsafe_run, ro);
  }
  for (const auto& op : unsafe_run.ops) {
    if (op.invoke_real >= t - 1e-9) details << "  " << op.to_string() << "\n";
  }
  details << "unsafe run (sum = " << result.unsafe_latency << ") linearizable: "
          << (unsafe_check.linearizable ? "yes (unexpected)" : "NO (violation as proven)") << "\n";

  // Claims 6/7 analogue: the replicas linearize op1 (timestamp t - m) before
  // op0 (timestamp t); the accessor at p0 -- which has heard both -- must
  // return the rho.op1.op0 value, while the accessor at p2 -- which has
  // heard neither -- returns the rho value.
  {
    adt::Sequence rho_insts;
    auto state = type.make_initial_state();
    for (const auto& step : spec.rho) {
      rho_insts.push_back(adt::Instance{step.op, step.arg, state->apply(step.op, step.arg)});
    }
    const adt::Value ret_both = [&] {
      auto probe = state->clone();
      probe->apply(spec.op, spec.arg1);
      probe->apply(spec.op, spec.arg0);
      return probe->apply(spec.aop, spec.aop_arg);
    }();
    const adt::Value ret_neither = state->clone()->apply(spec.aop, spec.aop_arg);
    adt::Value aop_p0, aop_p2;
    for (const auto& op : unsafe_run.ops) {
      if (op.op != spec.aop || op.invoke_real < t - 1e-9) continue;
      if (op.proc == 0) aop_p0 = op.ret;
      if (op.proc == 2) aop_p2 = op.ret;
    }
    details << "claims: aop@p0 = " << aop_p0.to_string() << " (expects rho.op1.op0 value "
            << ret_both.to_string() << "), aop@p2 = " << aop_p2.to_string()
            << " (expects rho value " << ret_neither.to_string() << ")\n";
  }

  // The standard algorithm under the same adversary and schedule.  Its AOPs
  // take d - X and MOPs X + eps; with X = 0 the accessor calls at t_aop are
  // fine (the mutators responded at t + eps <= t_aop requires eps <= m/2 +
  // m/4 -- not guaranteed), so give the safe run its own valid schedule:
  // accessors issued closed-loop after the mutators complete.
  TimingPolicy safe = TimingPolicy::standard(params, /*X=*/0);
  const Time t_aop_safe = t + safe.mop_respond + m / 4;
  std::vector<TimedCall> safe_calls = {
      TimedCall{t, 0, spec.op, spec.arg0},
      TimedCall{t, 1, spec.op, spec.arg1},
      TimedCall{t_aop_safe, 0, spec.aop, spec.aop_arg},
      TimedCall{t_aop_safe, 2, spec.aop, spec.aop_arg},
  };
  const sim::RunRecord safe_run =
      run_algorithm_one(type, params, safe, offsets, delays, safe_calls, scripts);
  result.safe_survived = lin::check_linearizability(type, safe_run).linearizable;
  details << "standard Algorithm 1 (sum = " << safe.mop_bound() + safe.aop_bound()
          << "): " << (result.safe_survived ? "linearizable" : "VIOLATED") << "\n";

  result.details = details.str();
  return result;
}

ChopDemoResult theorem5_chop_demo(const adt::DataType& type, const Theorem5Spec& spec,
                                  const ModelParams& params) {
  params.validate();
  if (params.n < 3) throw std::invalid_argument("theorem5_chop_demo: needs n >= 3");
  const Time m = params.m();

  ChopDemoResult result;
  std::ostringstream details;

  if (2 * m <= params.u + 1e-12) {
    result.details = "inapplicable: needs 2m > u so that d - 2m is an invalid delay";
    return result;
  }

  // The proof's R1: offsets all 0, delays per Figure 8, OP at p0 and p1 at
  // t, accessors at p0/p1 at t_max and at p2 at t_max + m.
  auto delays = std::make_shared<sim::MatrixDelay>(theorem5_matrix(params));

  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  unsafe.mop_respond = m / 2;
  unsafe.aop_respond = params.d - m;
  unsafe.aop_backdate = 0;

  const Time t = quiescence_bound(params, spec.rho.size()) + m + 1;
  const Time t_max = t + unsafe.mop_respond;

  std::vector<TimedCall> calls = {
      TimedCall{t, 0, spec.op, spec.arg0},
      TimedCall{t, 1, spec.op, spec.arg1},
      TimedCall{t_max, 0, spec.aop, spec.aop_arg},
      TimedCall{t_max, 1, spec.aop, spec.aop_arg},
      TimedCall{t_max + m, 2, spec.aop, spec.aop_arg},
  };
  std::vector<TimedScript> scripts;
  if (!spec.rho.empty()) scripts.push_back(TimedScript{0, 0, spec.rho});

  const sim::RunRecord r1 =
      run_algorithm_one(type, params, unsafe, {}, delays, calls, scripts);

  // Shift p1 later by m: the single invalid edge becomes p1->p0 = d - 2m
  // (Figure 10).
  std::vector<Time> x(static_cast<std::size_t>(params.n), 0.0);
  x[1] = m;
  const sim::RunRecord s1 = shift_run(r1, x);

  auto matrix = theorem5_matrix(params);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      matrix[i][j] -= x[i] - x[j];
    }
  }
  details << "delays after shifting p1 later by m (Figure 10):\n"
          << render_delay_matrix(matrix, params);
  int invalid_count = 0;
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      if (i == j) continue;
      if (matrix[i][j] < params.min_delay() - 1e-9 || matrix[i][j] > params.d + 1e-9) {
        ++invalid_count;
        details << "invalid edge p" << i << "->p" << j << " = " << matrix[i][j] << "\n";
      }
    }
  }
  result.one_invalid_edge =
      (invalid_count == 1) && (matrix[1][0] < params.min_delay() - 1e-9);
  details << "invalid edges: " << invalid_count << " (expected exactly p1->p0 = d-2m = "
          << params.d - 2 * m << ")\n";

  const sim::RunRecord chopped = chop_run(s1, matrix, params.d - m);
  const AdmissibilityReport adm = check_admissibility(chopped);
  bool delays_ok = true;
  for (const auto& v : adm.violations) {
    if (v.kind != Violation::Kind::kSkew) delays_ok = false;
  }
  result.chop_valid = delays_ok;
  details << "chopped fragment delay-valid: " << (delays_ok ? "yes" : "NO") << "\n";

  // Claim 8: aop at p1 and aop at p2 survive the chop.
  bool aop1_ok = false, aop2_ok = false;
  for (const auto& op : chopped.ops) {
    if (op.op == spec.aop && op.proc == 1 && op.complete()) aop1_ok = true;
    if (op.op == spec.aop && op.proc == 2 && op.complete()) aop2_ok = true;
  }
  result.op_survives_chop = aop1_ok && aop2_ok;
  details << "aop at p1 survives: " << (aop1_ok ? "yes" : "NO") << ", aop at p2 survives: "
          << (aop2_ok ? "yes" : "NO") << "\n";

  result.details = details.str();
  return result;
}

}  // namespace lintime::shift

// ---------------------------------------------------------------------------
// Section 6.1: interfering pairs
// ---------------------------------------------------------------------------

namespace lintime::shift {

ExperimentResult interference_sum(const adt::DataType& type, const InterferenceSpec& spec,
                                  const sim::ModelParams& params) {
  params.validate();
  if (params.n < 2) throw std::invalid_argument("interference: needs n >= 2");

  ExperimentResult result;
  result.name = "Section 6.1: interfering pair |" + spec.mutator_op + "| + |" + spec.aop +
                "| >= d (" + type.name() + ")";
  result.bound = params.d;

  using core::TimingPolicy;
  using harness::ScriptOp;

  // Unsafe split: mutator at fraction/3 of d, accessor at 2*fraction/3.
  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  const double s1 = spec.unsafe_fraction * params.d / 3.0;
  const double s2 = spec.unsafe_fraction * params.d * 2.0 / 3.0;
  const adt::OpCategory mutator_cat = type.category(spec.mutator_op);
  if (mutator_cat == adt::OpCategory::kPureMutator) {
    unsafe.mop_respond = s1;
  } else {
    // Mixed mutator: shorten the execute path instead.
    unsafe.add_delay = s1 / 2;
    unsafe.execute_delay = s1 / 2;
  }
  unsafe.aop_respond = s2;
  unsafe.aop_backdate = 0;
  result.unsafe_latency = s1 + s2;

  const double t = (static_cast<double>(spec.rho.size()) + 1.0) *
                   (params.d + params.u + params.eps + 1.0);

  // Mutator at p0 completes, accessor at p1 starts right after; under the
  // max-delay adversary the announcement arrives at p1 only at t + d, after
  // the accessor responded at t + s1 + gamma + s2 < t + d.
  std::vector<sim::Time> offsets;
  auto delays = std::make_shared<sim::ConstantDelay>(params.d);
  const double gamma = (params.d - result.unsafe_latency) / 4;

  std::vector<harness::ScriptOp> rho = spec.rho;
  auto run_with = [&](const TimingPolicy& timing) {
    std::vector<TimedCall> calls = {
        TimedCall{t, 0, spec.mutator_op, spec.mutator_arg},
    };
    // The accessor starts after the mutator's response under either policy:
    // schedule it at t + (that policy's mutator latency) + gamma.
    const double mutator_latency =
        (mutator_cat == adt::OpCategory::kPureMutator) ? timing.mop_bound() : timing.oop_bound();
    calls.push_back(TimedCall{t + mutator_latency + gamma, 1, spec.aop, spec.aop_arg});
    std::vector<TimedScript> scripts;
    if (!rho.empty()) scripts.push_back(TimedScript{0, 0, rho});
    return run_algorithm_one(type, params, timing, offsets, delays, calls, scripts);
  };

  std::ostringstream details;

  const sim::RunRecord unsafe_run = run_with(unsafe);
  const auto unsafe_check = lin::check_linearizability(type, unsafe_run);
  result.unsafe_violated = !unsafe_check.linearizable;
  {
    RenderOptions ro;
    ro.t_min = t - 1;
    ro.t_max = t + params.d + 1;
    details << render_timeline(unsafe_run, ro);
  }
  details << "unsafe run (sum = " << fmt(result.unsafe_latency) << " < d = " << fmt(params.d)
          << ") linearizable: "
          << (unsafe_check.linearizable ? "yes (unexpected)" : "NO (stale read, as proven)")
          << "\n";

  const sim::RunRecord safe_run = run_with(TimingPolicy::standard(params, 0.0));
  result.safe_survived = lin::check_linearizability(type, safe_run).linearizable;
  details << "standard Algorithm 1 (sum = " << fmt(params.d + params.eps)
          << "): " << (result.safe_survived ? "linearizable" : "VIOLATED") << "\n";

  result.details = details.str();
  return result;
}

}  // namespace lintime::shift

// ---------------------------------------------------------------------------
// Theorem 4: the full five-run pipeline
// ---------------------------------------------------------------------------

namespace lintime::shift {

namespace {

/// A view fingerprint for indistinguishability claims: the sequence of
/// (trigger kind, local clock, responded, response) of one process's steps
/// in the local-clock window [c_lo, c_hi].  Message/timer ids differ across
/// runs and are excluded -- the model's "view" is exactly what the process
/// can observe.
std::vector<std::string> view_fingerprint(const sim::RunRecord& record, sim::ProcId proc,
                                          double c_lo, double c_hi) {
  std::vector<std::string> out;
  for (const auto& step : record.view_of(proc)) {
    if (step.clock_time < c_lo - 1e-9 || step.clock_time > c_hi + 1e-9) continue;
    std::ostringstream os;
    os << to_string(step.trigger) << '@' << step.clock_time << '/'
       << (step.responded ? step.response.to_string() : std::string("-"));
    out.push_back(os.str());
  }
  return out;
}

}  // namespace

Theorem4Pipeline theorem4_full_pipeline(const adt::DataType& type, const Theorem4Spec& spec,
                                        const sim::ModelParams& params) {
  params.validate();
  if (params.n < 3) throw std::invalid_argument("theorem4_full_pipeline: needs n >= 3");

  using core::TimingPolicy;

  Theorem4Pipeline result;
  std::ostringstream details;

  const double m = params.m();
  const double gamma = 1e-6;

  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  unsafe.execute_delay = params.u + m / 2;  // |OOP| = d + m/2 < d + m
  const double L = unsafe.oop_bound();

  const double t = quiescence_bound(params, spec.rho.size()) + m + 1;
  std::vector<TimedScript> scripts;
  if (!spec.rho.empty()) scripts.push_back(TimedScript{0, 0, spec.rho});

  const auto n = static_cast<std::size_t>(params.n);

  // The proof's D^1 (Figure 2).
  auto d1 = theorem4_matrix(params);

  // D^3: D^1 after shifting p1 earlier by m and repairing p1->p0 back to
  // d-m (Figure 5): into p0 all d-m, p1's other outgoing d, everyone->p1
  // d-m, rest d.
  std::vector<std::vector<double>> d3(n, std::vector<double>(n, params.d));
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) d3[i][0] = params.d - m;
    if (i != 1) d3[i][1] = params.d - m;
  }
  for (std::size_t j = 2; j < n; ++j) d3[1][j] = params.d;
  d3[0][1] = params.d - m;

  // D^4: D^3 after shifting p0 later by m and repairing p0->p1 back to d
  // (Figure 7): into p0 all d, p0->p1 = d, p0->others d-m, into p1 (from
  // i >= 2) d-m, p1->others d, rest d.
  std::vector<std::vector<double>> d4(n, std::vector<double>(n, params.d));
  for (std::size_t j = 2; j < n; ++j) d4[0][j] = params.d - m;
  for (std::size_t i = 2; i < n; ++i) d4[i][1] = params.d - m;

  // ---- R1: solo op0 at p0, offsets C1 = (0, -m, 0...), delays D^1.
  std::vector<double> c1(n, 0.0);
  c1[1] = -m;
  const sim::RunRecord r1 = run_algorithm_one(
      type, params, unsafe, c1, std::make_shared<sim::MatrixDelay>(d1),
      {TimedCall{t, 0, spec.op, spec.arg0}}, scripts);
  for (const auto& op : r1.ops) {
    if (op.proc == 0 && op.op == spec.op) result.ret0_solo = op.ret;
  }
  details << "R1: p0 solo " << spec.op << " -> " << result.ret0_solo.to_string() << "\n";

  // ---- R2: R1 plus op1 at p1 at t+m.
  const sim::RunRecord r2 = run_algorithm_one(
      type, params, unsafe, c1, std::make_shared<sim::MatrixDelay>(d1),
      {TimedCall{t, 0, spec.op, spec.arg0}, TimedCall{t + m + gamma, 1, spec.op, spec.arg1}},
      scripts);
  adt::Value ret0_r2, ret1_prime;
  double p0_resp_r2 = t + params.d + m;
  for (const auto& op : r2.ops) {
    if (op.invoke_real < t - 0.5) continue;
    if (op.proc == 0) {
      ret0_r2 = op.ret;
      p0_resp_r2 = op.response_real;
    }
    if (op.proc == 1) ret1_prime = op.ret;
  }
  details << "R2: p0 -> " << ret0_r2.to_string() << " (Claim 4 expects "
          << result.ret0_solo.to_string() << "), p1 -> " << ret1_prime.to_string() << "\n";

  // Claim 4: p0's view through its response is identical in R1 and R2.
  const double c_window_hi = p0_resp_r2;  // clock == real for p0 (offset 0)
  result.claim4_view_identity =
      view_fingerprint(r1, 0, t, c_window_hi) == view_fingerprint(r2, 0, t, c_window_hi) &&
      ret0_r2 == result.ret0_solo;
  details << "Claim 4 (p0 view identity R1/R2): "
          << (result.claim4_view_identity ? "HOLDS" : "FAILS") << "\n";

  // ---- R3: offsets 0, delays D^3, both ops at t (op1 gamma-later).
  const sim::RunRecord r3 = run_algorithm_one(
      type, params, unsafe, std::vector<double>(n, 0.0), std::make_shared<sim::MatrixDelay>(d3),
      {TimedCall{t, 0, spec.op, spec.arg0}, TimedCall{t + gamma, 1, spec.op, spec.arg1}},
      scripts);
  adt::Value ret0_r3, ret1_r3;
  for (const auto& op : r3.ops) {
    if (op.invoke_real < t - 0.5) continue;
    if (op.proc == 0) ret0_r3 = op.ret;
    if (op.proc == 1) ret1_r3 = op.ret;
  }
  details << "R3: p0 -> " << ret0_r3.to_string() << " (proof: still " 
          << result.ret0_solo.to_string() << "), p1 -> " << ret1_r3.to_string() << "\n";

  // ---- R4: offsets C0 = (-m, 0...), delays D^4, op1 at t, op0 at t+m.
  std::vector<double> c0(n, 0.0);
  c0[0] = -m;
  const sim::RunRecord r4 = run_algorithm_one(
      type, params, unsafe, c0, std::make_shared<sim::MatrixDelay>(d4),
      {TimedCall{t, 1, spec.op, spec.arg1}, TimedCall{t + m - gamma, 0, spec.op, spec.arg0}},
      scripts);
  adt::Value ret0_r4, ret1_r4;
  double p1_resp_r4 = t + L;
  for (const auto& op : r4.ops) {
    if (op.invoke_real < t - 0.5) continue;
    if (op.proc == 0) ret0_r4 = op.ret;
    if (op.proc == 1) {
      ret1_r4 = op.ret;
      p1_resp_r4 = op.response_real;
    }
  }

  // ---- R5: R4 without op0.
  const sim::RunRecord r5 = run_algorithm_one(
      type, params, unsafe, c0, std::make_shared<sim::MatrixDelay>(d4),
      {TimedCall{t, 1, spec.op, spec.arg1}}, scripts);
  adt::Value ret1_r5;
  for (const auto& op : r5.ops) {
    if (op.invoke_real < t - 0.5) continue;
    if (op.proc == 1) ret1_r5 = op.ret;
  }
  result.ret1_solo = ret1_r5;
  details << "R4: p0 -> " << ret0_r4.to_string() << ", p1 -> " << ret1_r4.to_string()
          << "; R5 (op0 deleted): p1 -> " << ret1_r5.to_string() << "\n";

  // Claim 5: p1's view through its response is identical in R4 and R5.
  result.claim5_view_identity =
      view_fingerprint(r4, 1, t, p1_resp_r4) == view_fingerprint(r5, 1, t, p1_resp_r4);
  result.same_ret_r4_r5 = (ret1_r4 == ret1_r5);
  details << "Claim 5 (p1 view identity R4/R5): "
          << (result.claim5_view_identity ? "HOLDS" : "FAILS") << "\n";

  // The punchline: with identical views p1 answers identically, so R4 or R5
  // must be non-linearizable.
  const bool r4_ok = lin::check_linearizability(type, r4).linearizable;
  const bool r5_ok = lin::check_linearizability(type, r5).linearizable;
  result.contradiction = !(r4_ok && r5_ok);
  details << "checker: R4 " << (r4_ok ? "linearizable" : "NOT linearizable") << ", R5 "
          << (r5_ok ? "linearizable" : "NOT linearizable") << " -> contradiction "
          << (result.contradiction ? "exhibited" : "NOT exhibited") << "\n";

  result.details = details.str();
  return result;
}

}  // namespace lintime::shift

// ---------------------------------------------------------------------------
// Theorem 5: the full pipeline (reversed-role form)
// ---------------------------------------------------------------------------

namespace lintime::shift {

Theorem5Pipeline theorem5_full_pipeline(const adt::DataType& type, const Theorem5Spec& spec,
                                        const sim::ModelParams& params) {
  params.validate();
  if (params.n < 3) throw std::invalid_argument("theorem5_full_pipeline: needs n >= 3");

  using core::TimingPolicy;

  Theorem5Pipeline result;
  std::ostringstream details;

  const double m = params.m();
  const double gamma = 1e-6;
  const auto n = static_cast<std::size_t>(params.n);

  // Unsafe sum below the bound: |OP| = m/2, |AOP| = d - m.
  TimingPolicy unsafe = TimingPolicy::standard(params, /*X=*/0);
  unsafe.mop_respond = m / 2;
  unsafe.aop_respond = params.d - m;
  unsafe.aop_backdate = 0;
  const double s_m = unsafe.mop_respond;

  const double t = quiescence_bound(params, spec.rho.size()) + m + 1;
  // Strictly after both mutators' responses (op1 is invoked gamma late, so
  // its response lands at t + gamma + s_m).
  const double t_max = t + s_m + 2 * gamma;
  std::vector<TimedScript> scripts;
  if (!spec.rho.empty()) scripts.push_back(TimedScript{0, 0, spec.rho});

  // ---- R1: the proof's Figure 8 run, offsets 0, delays D (into p0/p1: d-m,
  // else d).  p0's mutator gets the gamma-smaller timestamp, pinning the
  // linearization order the reversed-role case assumes.
  const auto d_r1 = theorem5_matrix(params);
  const sim::RunRecord r1 = run_algorithm_one(
      type, params, unsafe, std::vector<double>(n, 0.0),
      std::make_shared<sim::MatrixDelay>(d_r1),
      {TimedCall{t, 0, spec.op, spec.arg0}, TimedCall{t + gamma, 1, spec.op, spec.arg1},
       TimedCall{t_max, 0, spec.aop, spec.aop_arg}, TimedCall{t_max, 1, spec.aop, spec.aop_arg},
       TimedCall{t_max + m, 2, spec.aop, spec.aop_arg}},
      scripts);
  result.r1_linearizable = lin::check_linearizability(type, r1).linearizable;
  details << "R1 linearizable: " << (result.r1_linearizable ? "yes" : "NO") << "\n";

  // ---- R2: p0 shifted later by m, the invalid edge p0->p1 repaired to d
  // (the run the proof reaches after shift+chop+append+extend).  Delays:
  // into p0 all d; p0->p1 d; p0->others d-m; into p1 (from i>=2) d-m;
  // p1->others d; rest d.
  std::vector<std::vector<double>> d_r2(n, std::vector<double>(n, params.d));
  for (std::size_t j = 2; j < n; ++j) d_r2[0][j] = params.d - m;
  for (std::size_t i = 2; i < n; ++i) d_r2[i][1] = params.d - m;
  std::vector<double> c_r2(n, 0.0);
  c_r2[0] = -m;

  const std::vector<TimedCall> r2_calls = {
      TimedCall{t + m, 0, spec.op, spec.arg0},  // shifted later by m
      TimedCall{t + gamma, 1, spec.op, spec.arg1},
      TimedCall{t_max + m, 0, spec.aop, spec.aop_arg},
      TimedCall{t_max, 1, spec.aop, spec.aop_arg},
      TimedCall{t_max + m, 2, spec.aop, spec.aop_arg},
  };
  const sim::RunRecord r2 = run_algorithm_one(type, params, unsafe, c_r2,
                                              std::make_shared<sim::MatrixDelay>(d_r2),
                                              r2_calls, scripts);

  // ---- R3: R2 without p0's mutator.
  const std::vector<TimedCall> r3_calls = {
      TimedCall{t + gamma, 1, spec.op, spec.arg1},
      TimedCall{t_max + m, 0, spec.aop, spec.aop_arg},
      TimedCall{t_max, 1, spec.aop, spec.aop_arg},
      TimedCall{t_max + m, 2, spec.aop, spec.aop_arg},
  };
  const sim::RunRecord r3 = run_algorithm_one(type, params, unsafe, c_r2,
                                              std::make_shared<sim::MatrixDelay>(d_r2),
                                              r3_calls, scripts);

  // p1's accessor in R2 answers without having heard op0 (the repaired d
  // delay makes p0's announcement arrive only at t+m+d).
  adt::Value aop1_r2, aop1_r3;
  double aop1_resp = t + params.d;
  for (const auto& op : r2.ops) {
    if (op.op == spec.aop && op.proc == 1) {
      aop1_r2 = op.ret;
      aop1_resp = op.response_real;
    }
  }
  for (const auto& op : r3.ops) {
    if (op.op == spec.aop && op.proc == 1) aop1_r3 = op.ret;
  }
  result.aop1_misses_op0 = (aop1_r2 == aop1_r3);
  details << "aop@p1: R2 -> " << aop1_r2.to_string() << ", R3 -> " << aop1_r3.to_string()
          << "\n";

  // View identity for p1 through its accessor's response (the proof's
  // indistinguishability step).
  result.view_identity_r2_r3 =
      view_fingerprint(r2, 1, t, aop1_resp) == view_fingerprint(r3, 1, t, aop1_resp);
  details << "p1 view identity R2/R3 through aop response: "
          << (result.view_identity_r2_r3 ? "HOLDS" : "FAILS") << "\n";

  const bool r2_ok = lin::check_linearizability(type, r2).linearizable;
  result.r2_violated = !r2_ok;
  result.r3_linearizable = lin::check_linearizability(type, r3).linearizable;
  details << "checker: R2 " << (r2_ok ? "linearizable (unexpected)" : "NOT linearizable")
          << ", R3 " << (result.r3_linearizable ? "linearizable" : "NOT linearizable") << "\n";

  result.details = details.str();
  return result;
}

}  // namespace lintime::shift
