#include "shift/shift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lintime::shift {

namespace {

constexpr sim::Time kTol = 1e-9;

std::string pair_str(sim::ProcId a, sim::ProcId b) {
  std::ostringstream os;
  os << "p" << a << "->p" << b;
  return os.str();
}

}  // namespace

sim::RunRecord shift_run(const sim::RunRecord& run, const std::vector<sim::Time>& x) {
  if (x.size() != static_cast<std::size_t>(run.params.n)) {
    throw std::invalid_argument("shift_run: x.size() != n");
  }
  sim::RunRecord out = run;

  // Steps: real times move; local clock values are part of the view and do
  // not move.  (Theorem 1(1): the offset becomes c_i - x_i, which is exactly
  // clock_time - new_real_time.)
  for (auto& step : out.steps) {
    step.real_time += x[static_cast<std::size_t>(step.proc)];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.clock_offsets[i] -= x[i];
  }

  // Messages: Theorem 1(2) -- delay becomes delta - x_src + x_dst.
  for (auto& msg : out.messages) {
    msg.send_real += x[static_cast<std::size_t>(msg.src)];
    if (msg.received) msg.recv_real += x[static_cast<std::size_t>(msg.dst)];
  }

  // Operation instances move with their invoking process.  (Test
  // completeness before touching invoke_real -- complete() compares the two.)
  for (auto& op : out.ops) {
    const bool complete = op.complete();
    op.invoke_real += x[static_cast<std::size_t>(op.proc)];
    if (complete) {
      op.response_real += x[static_cast<std::size_t>(op.proc)];
    }
  }

  // Keep the global step order sorted by real time for readability.
  std::stable_sort(out.steps.begin(), out.steps.end(),
                   [](const sim::StepRecord& a, const sim::StepRecord& b) {
                     return a.real_time < b.real_time;
                   });
  return out;
}

AdmissibilityReport check_admissibility(const sim::RunRecord& run) {
  AdmissibilityReport report;
  const auto& p = run.params;

  // Clock skew.
  for (std::size_t i = 0; i < run.clock_offsets.size(); ++i) {
    for (std::size_t j = i + 1; j < run.clock_offsets.size(); ++j) {
      const sim::Time skew = std::abs(run.clock_offsets[i] - run.clock_offsets[j]);
      report.max_skew = std::max(report.max_skew, skew);
      if (skew > p.eps + kTol) {
        report.admissible = false;
        std::ostringstream os;
        os << "skew(p" << i << ", p" << j << ") = " << skew << " > eps = " << p.eps;
        report.violations.push_back({Violation::Kind::kSkew, os.str()});
      }
    }
  }

  // Per-process end-of-view times (for the unreceived-message condition).
  std::vector<sim::Time> view_end(static_cast<std::size_t>(p.n),
                                  -std::numeric_limits<sim::Time>::infinity());
  for (const auto& step : run.steps) {
    auto& end = view_end[static_cast<std::size_t>(step.proc)];
    end = std::max(end, step.real_time);
  }

  bool first = true;
  for (const auto& msg : run.messages) {
    if (msg.received) {
      const sim::Time delay = msg.delay();
      if (first) {
        report.min_delay = report.max_delay = delay;
        first = false;
      } else {
        report.min_delay = std::min(report.min_delay, delay);
        report.max_delay = std::max(report.max_delay, delay);
      }
      if (delay < p.min_delay() - kTol) {
        report.admissible = false;
        report.violations.push_back(
            {Violation::Kind::kDelayLow, pair_str(msg.src, msg.dst) + " delay " +
                                             std::to_string(delay) + " < d-u"});
      } else if (delay > p.d + kTol) {
        report.admissible = false;
        report.violations.push_back(
            {Violation::Kind::kDelayHigh, pair_str(msg.src, msg.dst) + " delay " +
                                              std::to_string(delay) + " > d"});
      }
    } else {
      // Unreceived message: the recipient's view must end before send + d.
      const sim::Time end = view_end[static_cast<std::size_t>(msg.dst)];
      if (end >= msg.send_real + p.d - kTol) {
        report.admissible = false;
        report.violations.push_back(
            {Violation::Kind::kUnreceivedTooLate,
             pair_str(msg.src, msg.dst) + " unreceived but recipient view extends to " +
                 std::to_string(end)});
      }
    }
  }
  return report;
}

std::optional<std::vector<std::vector<sim::Time>>> extract_delay_matrix(const sim::RunRecord& run,
                                                                        sim::Time fill) {
  const auto n = static_cast<std::size_t>(run.params.n);
  std::vector<std::vector<sim::Time>> matrix(n, std::vector<sim::Time>(n, fill));
  std::vector<std::vector<bool>> seen(n, std::vector<bool>(n, false));
  for (const auto& msg : run.messages) {
    if (!msg.received) continue;
    const auto s = static_cast<std::size_t>(msg.src);
    const auto r = static_cast<std::size_t>(msg.dst);
    if (!seen[s][r]) {
      matrix[s][r] = msg.delay();
      seen[s][r] = true;
    } else if (std::abs(matrix[s][r] - msg.delay()) > kTol) {
      return std::nullopt;  // not pair-wise uniform
    }
  }
  return matrix;
}

std::vector<std::vector<sim::Time>> shortest_paths(
    const std::vector<std::vector<sim::Time>>& matrix) {
  const std::size_t n = matrix.size();
  auto dist = matrix;
  for (std::size_t i = 0; i < n; ++i) dist[i][i] = 0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  return dist;
}

sim::RunRecord chop_run(const sim::RunRecord& run,
                        const std::vector<std::vector<sim::Time>>& matrix, sim::Time delta) {
  const auto& p = run.params;
  const std::size_t n = matrix.size();
  if (n != static_cast<std::size_t>(p.n)) throw std::invalid_argument("chop_run: matrix size");

  // Locate the unique invalid entry (s, r).
  std::optional<std::pair<std::size_t, std::size_t>> invalid;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const sim::Time dij = matrix[i][j];
      if (dij < p.min_delay() - kTol || dij > p.d + kTol) {
        if (invalid.has_value()) {
          throw std::invalid_argument("chop_run: more than one invalid delay");
        }
        invalid = {i, j};
      }
    }
  }
  if (!invalid.has_value()) {
    throw std::invalid_argument("chop_run: no invalid delay; nothing to chop");
  }
  const auto [s, r] = *invalid;

  // First send on the invalid link.
  sim::Time t_m = std::numeric_limits<sim::Time>::infinity();
  for (const auto& msg : run.messages) {
    if (static_cast<std::size_t>(msg.src) == s && static_cast<std::size_t>(msg.dst) == r) {
      t_m = std::min(t_m, msg.send_real);
    }
  }
  if (!std::isfinite(t_m)) {
    throw std::invalid_argument("chop_run: no message on the invalid link");
  }

  const sim::Time t_star = t_m + std::min(matrix[s][r], delta);

  // Per-process cut times: r is cut at t*, everyone else at t* + shortest
  // path from r (with respect to the *valid* entries of D -- Lemma 2 uses
  // the delays in D; the invalid edge itself participates as stated).
  const auto dist = shortest_paths(matrix);
  std::vector<sim::Time> cut(n);
  for (std::size_t i = 0; i < n; ++i) {
    cut[i] = t_star + dist[r][i];
  }

  sim::RunRecord out;
  out.params = run.params;
  out.clock_offsets = run.clock_offsets;

  for (const auto& step : run.steps) {
    if (step.real_time < cut[static_cast<std::size_t>(step.proc)] - kTol) {
      out.steps.push_back(step);
    }
  }
  for (auto msg : run.messages) {
    if (msg.send_real >= cut[static_cast<std::size_t>(msg.src)] - kTol) continue;  // never sent
    if (msg.received && msg.recv_real >= cut[static_cast<std::size_t>(msg.dst)] - kTol) {
      msg.received = false;  // sent but no longer received within the fragment
      msg.recv_real = 0;
    }
    out.messages.push_back(msg);
  }
  for (auto op : run.ops) {
    if (op.invoke_real >= cut[static_cast<std::size_t>(op.proc)] - kTol) continue;
    if (op.complete() && op.response_real >= cut[static_cast<std::size_t>(op.proc)] - kTol) {
      op.response_real = -1;  // invoked but not yet responded within fragment
    }
    out.ops.push_back(op);
  }
  return out;
}

}  // namespace lintime::shift
