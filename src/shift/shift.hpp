#pragma once
// The classic shifting technique (Section 2.4, Theorem 1) and the paper's
// new shift-and-chop technique (Section 4.1, Lemma 2), operating on recorded
// runs.
//
// shift(R, x) adds x[i] to the real time of every step of process i.  Each
// process's *view* (sequence of steps with local clock values) is untouched
// -- only real times move -- so the result is again a run of the same
// algorithm; what changes are the clock offsets (c_i - x_i) and the message
// delays (delta - x_src + x_dst), exactly as Theorem 1 states.  Whether the
// result is still admissible is checked separately.
//
// chop(R, D, delta) truncates a run fragment with pair-wise uniform delays
// (matrix D) containing exactly one invalid delay, cutting each process's
// view just before information from the invalid link could reach it, and
// yields a fragment whose delays are all valid (Lemma 2).

#include <optional>
#include <string>
#include <vector>

#include "sim/run_record.hpp"

namespace lintime::shift {

/// Theorem 1: shifts process i's steps by x[i].  Recomputes clock offsets
/// and message endpoint times; operation invocation/response times move with
/// their process's steps.  The input record is not modified.
[[nodiscard]] sim::RunRecord shift_run(const sim::RunRecord& run, const std::vector<sim::Time>& x);

/// One admissibility violation found in a record.
struct Violation {
  enum class Kind { kSkew, kDelayLow, kDelayHigh, kUnreceivedTooLate } kind;
  std::string detail;
};

struct AdmissibilityReport {
  bool admissible = true;
  sim::Time max_skew = 0;
  sim::Time min_delay = 0;  ///< over received messages (0 if none)
  sim::Time max_delay = 0;
  std::vector<Violation> violations;
};

/// Checks the two admissibility conditions of Section 2.2: clock skew at
/// most eps, and received-message delays within [d-u, d] (plus the
/// unreceived-message condition: if a message to p has no receive, p's view
/// must end before send + d).
[[nodiscard]] AdmissibilityReport check_admissibility(const sim::RunRecord& run);

/// Extracts the pair-wise uniform delay matrix realized by a record's
/// messages.  Entries for process pairs with no messages are filled with
/// `fill`.  Returns nullopt if some pair's messages have non-uniform delays.
[[nodiscard]] std::optional<std::vector<std::vector<sim::Time>>> extract_delay_matrix(
    const sim::RunRecord& run, sim::Time fill);

/// Lemma 2: chops run fragment `run`, whose messages have pair-wise uniform
/// delays given by `matrix` with exactly one invalid entry (src, dst), at
/// parameter delta in [d-u, d].  Steps of dst at or after
/// t* = (first send src->dst) + min(matrix[src][dst], delta) are dropped;
/// steps of every other process i are dropped from t* + shortestpath(dst, i)
/// on.  Messages whose receive falls beyond the receiver's cut become
/// unreceived; operations whose response falls beyond the cut become
/// incomplete.  Throws if the number of invalid entries is not exactly one.
[[nodiscard]] sim::RunRecord chop_run(const sim::RunRecord& run,
                                      const std::vector<std::vector<sim::Time>>& matrix,
                                      sim::Time delta);

/// All-pairs shortest path over the delay matrix (used by chop).
[[nodiscard]] std::vector<std::vector<sim::Time>> shortest_paths(
    const std::vector<std::vector<sim::Time>>& matrix);

}  // namespace lintime::shift
