#include "shift/render.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace lintime::shift {

namespace {

/// Maps a real time to a column in [0, width-1], clipping.
int column_of(double t, double t_min, double t_max, int width) {
  if (t <= t_min) return 0;
  if (t >= t_max) return width - 1;
  return static_cast<int>((t - t_min) / (t_max - t_min) * (width - 1));
}

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

std::string render_timeline(const sim::RunRecord& record, const RenderOptions& options) {
  double t_min = options.t_min;
  double t_max = options.t_max;
  if (t_max < t_min) t_max = record.last_time();
  if (t_max <= t_min) t_max = t_min + 1;
  const int width = std::max(options.width, 20);

  std::ostringstream out;
  out << "t: " << std::left << std::setw(width - 8) << fmt(t_min) << fmt(t_max) << "\n";

  for (sim::ProcId p = 0; p < record.params.n; ++p) {
    std::string lane(static_cast<std::size_t>(width), ' ');
    lane.front() = '|';
    lane.back() = '|';

    for (const auto& op : record.ops) {
      if (op.proc != p) continue;
      const double end = op.complete() ? op.response_real : t_max;
      if (end < t_min || op.invoke_real > t_max) continue;

      const int c0 = column_of(op.invoke_real, t_min, t_max, width);
      const int c1 = std::max(column_of(end, t_min, t_max, width), c0 + 1);
      lane[static_cast<std::size_t>(c0)] = '[';
      lane[static_cast<std::size_t>(c1)] = op.complete() ? ']' : '>';
      for (int c = c0 + 1; c < c1; ++c) lane[static_cast<std::size_t>(c)] = '.';
      // Label inside the interval when it fits, otherwise in the free space
      // right of the closing bracket (short intervals would otherwise be
      // unlabelled).
      std::string label = op.op + "(" + op.arg.to_string() + ")";
      if (op.complete()) label += "->" + op.ret.to_string();
      int c = (static_cast<int>(label.size()) <= c1 - c0 - 1) ? c0 + 1 : c1 + 1;
      for (const char ch : label) {
        if (c >= width - 1) break;
        auto& cell = lane[static_cast<std::size_t>(c)];
        if (cell != ' ' && cell != '.') break;  // ran into another op
        cell = ch;
        ++c;
      }
    }

    out << "p" << p << std::string(p < 10 ? 2 : 1, ' ') << lane << "\n";
  }

  if (options.show_messages) {
    for (const auto& msg : record.messages) {
      if (msg.send_real > t_max || (msg.received && msg.recv_real < t_min)) continue;
      out << "  msg#" << msg.id << " p" << msg.src << "@" << fmt(msg.send_real) << " -> p"
          << msg.dst;
      if (msg.received) {
        out << "@" << fmt(msg.recv_real) << " (delay " << fmt(msg.delay()) << ")";
      } else {
        out << " (unreceived)";
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string render_delay_matrix(const std::vector<std::vector<double>>& matrix,
                                const sim::ModelParams& params) {
  const std::size_t n = matrix.size();
  std::ostringstream out;
  out << std::setw(8) << "delay";
  for (std::size_t j = 0; j < n; ++j) out << std::setw(8) << ("->p" + std::to_string(j));
  out << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    out << std::setw(8) << ("p" + std::to_string(i));
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        out << std::setw(8) << "-";
        continue;
      }
      const double dij = matrix[i][j];
      std::string cell = fmt(dij);
      if (dij < params.min_delay() - 1e-9 || dij > params.d + 1e-9) {
        cell += '!';
      } else if (std::abs(dij - params.d) < 1e-9) {
        cell += '*';
      }
      out << std::setw(8) << cell;
    }
    out << "\n";
  }
  out << "  ('!' = outside [d-u, d] = [" << fmt(params.min_delay()) << ", " << fmt(params.d)
      << "], '*' = exactly d)\n";
  return out.str();
}

}  // namespace lintime::shift
