#pragma once
// Lundelius-Lynch clock synchronization (the paper's reference [16]).
//
// The paper assumes clocks are pre-synchronized to within eps, and notes
// (Sections 5 and 6.1) that the optimal achievable skew with delays in
// [d-u, d] and no drift is eps = (1 - 1/n) u.  This module implements the
// classic averaging algorithm that achieves it, so the assumption is itself
// reproduced rather than stubbed:
//
//   * every process sends its local clock reading to every other process;
//   * a receiver estimates the sender's offset relative to itself as
//     (T_send_local + d - u/2) - T_recv_local, which has error at most u/2;
//   * each process sets its logical clock to local + average of the n
//     estimated differences (counting itself as 0).
//
// Averaging the +-u/2 errors over n processes leaves a worst-case pairwise
// logical skew of (1 - 1/n) u, which is optimal [Lundelius-Lynch 1984].

#include <memory>
#include <vector>

#include "sim/delay_model.hpp"
#include "sim/model_params.hpp"

namespace lintime::clocksync {

struct SyncOutcome {
  /// Logical-clock adjustment computed by each process (added to its local
  /// clock).
  std::vector<sim::Time> adjustments;
  /// Resulting logical offsets (hardware offset + adjustment) per process.
  std::vector<sim::Time> logical_offsets;
  /// max_{i,j} |logical_i - logical_j|.
  sim::Time achieved_skew = 0;
  /// The (1 - 1/n) u optimum for reference.
  sim::Time optimal_skew = 0;
};

/// Runs the synchronization round in the simulator with the given hardware
/// clock offsets (arbitrary -- sync does not need a prior bound) and delay
/// model.  Deterministic.
[[nodiscard]] SyncOutcome synchronize(const sim::ModelParams& params,
                                      const std::vector<sim::Time>& hardware_offsets,
                                      std::shared_ptr<sim::DelayModel> delays);

}  // namespace lintime::clocksync
