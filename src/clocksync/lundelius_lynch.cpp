#include "clocksync/lundelius_lynch.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/process.hpp"
#include "sim/world.hpp"

namespace lintime::clocksync {

namespace {

class SyncProcess final : public sim::Process {
 public:
  explicit SyncProcess(std::vector<sim::Time>& adjustments) : adjustments_(adjustments) {}

  void on_start(sim::Context& ctx) override {
    // Wire format: the sender's local clock at send time, in Payload::clock.
    sim::Payload reading;
    reading.clock = ctx.local_time();
    ctx.broadcast(std::move(reading));
  }

  void on_invoke(sim::Context&, const std::string&, const adt::Value&) override {
    throw std::logic_error("clock sync handles no operations");
  }

  void on_message(sim::Context& ctx, sim::ProcId /*src*/, const sim::Payload& payload) override {
    const sim::Time sender_local = payload.clock;
    const auto& p = ctx.params();
    // Midpoint delay estimate: the true receive-time reading of the sender's
    // clock is T_s + delta for delta in [d-u, d]; using d - u/2 bounds the
    // estimation error by u/2.
    const sim::Time estimated_diff =
        (sender_local + p.d - p.u / 2.0) - ctx.local_time();
    sum_diffs_ += estimated_diff;
    if (++received_ == ctx.n() - 1) {
      // Average over all n processes, counting our own difference as 0.
      adjustments_[static_cast<std::size_t>(ctx.self())] = sum_diffs_ / ctx.n();
    }
  }

  void on_timer(sim::Context&, sim::TimerId, const sim::Payload&) override {
    throw std::logic_error("clock sync sets no timers");
  }

 private:
  std::vector<sim::Time>& adjustments_;
  sim::Time sum_diffs_ = 0;
  int received_ = 0;
};

}  // namespace

SyncOutcome synchronize(const sim::ModelParams& params,
                        const std::vector<sim::Time>& hardware_offsets,
                        std::shared_ptr<sim::DelayModel> delays) {
  if (hardware_offsets.size() != static_cast<std::size_t>(params.n)) {
    throw std::invalid_argument("synchronize: offsets size != n");
  }

  SyncOutcome outcome;
  outcome.adjustments.assign(hardware_offsets.size(), 0.0);

  sim::WorldConfig config;
  config.params = params;
  // The sync round runs before any skew bound holds; hardware offsets are
  // arbitrary.
  config.params.eps = std::numeric_limits<sim::Time>::infinity();
  config.enforce_valid_skew = false;
  config.clock_offsets = hardware_offsets;
  config.delays = std::move(delays);

  sim::World world(config, [&outcome](sim::ProcId) {
    return std::make_unique<SyncProcess>(outcome.adjustments);
  });
  world.run();

  outcome.logical_offsets.resize(hardware_offsets.size());
  for (std::size_t i = 0; i < hardware_offsets.size(); ++i) {
    outcome.logical_offsets[i] = hardware_offsets[i] + outcome.adjustments[i];
  }
  for (std::size_t i = 0; i < outcome.logical_offsets.size(); ++i) {
    for (std::size_t j = i + 1; j < outcome.logical_offsets.size(); ++j) {
      outcome.achieved_skew = std::max(
          outcome.achieved_skew, std::abs(outcome.logical_offsets[i] - outcome.logical_offsets[j]));
    }
  }
  outcome.optimal_skew = (1.0 - 1.0 / params.n) * params.u;
  return outcome;
}

}  // namespace lintime::clocksync
