#include "scenario/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

namespace lintime::scenario {

namespace {

struct SectionSchema {
  const char* name;
  std::vector<const char*> keys;
};

/// Every base section and every key it may contain.  A key listed here may
/// still be rejected by expand() when it does not apply to the resolved
/// delays/workload kind -- strictness cuts both ways.
const std::vector<SectionSchema>& schema() {
  static const std::vector<SectionSchema> kSchema = {
      {"scenario", {"name", "type", "check", "bench-ops"}},
      {"model", {"n", "d", "u", "eps"}},
      {"store", {"keys", "shards"}},
      {"run", {"algo", "scheduler", "record", "max-events", "x-frac", "x-abs"}},
      {"delays", {"kind", "value", "lo", "hi", "seed", "matrix"}},
      {"clocks", {"drift", "rates", "offsets"}},
      {"faults",
       {"drop", "drop-seed", "crash", "link-drop", "partition-a", "partition-b",
        "partition-start", "partition-cut", "partition-period", "partition-cycles"}},
      {"workload",
       {"kind", "ops-per-proc", "seed", "start", "gap", "rounds", "stagger", "round-gap",
        "zipf-theta", "loop", "spacing", "think", "burst", "burst-gap", "op", "arg", "rho"}},
  };
  return kSchema;
}

const SectionSchema* find_schema(const std::string& name) {
  for (const auto& s : schema()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

bool valid_ident(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' && c != '_') return false;
  }
  return true;
}

void check_sweep_key(const TomlDoc& doc, const TomlSection& sec, const std::string& key,
                     int line, bool allow_set) {
  if (key == "name") return;
  if (key.rfind("axis.", 0) == 0 || key.rfind("tag.", 0) == 0) {
    const std::string suffix = key.substr(key.find('.') + 1);
    if (!valid_ident(suffix)) {
      toml_fail(doc.file, line, "malformed key '" + key + "' in [" + sec.name + "]");
    }
    if (key.rfind("axis.", 0) == 0 && suffix == "index") {
      toml_fail(doc.file, line, "axis name 'index' is reserved (the built-in $index)");
    }
    return;
  }
  if (key.rfind("set.", 0) == 0) {
    if (!allow_set) {
      toml_fail(doc.file, line,
                "'" + key + "': set.* overrides are only allowed in [sweep.*] sections "
                "(put the key directly in its section instead)");
    }
    const std::string rest = key.substr(4);
    const std::size_t dot = rest.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= rest.size()) {
      toml_fail(doc.file, line, "malformed override '" + key + "' (expected set.<section>.<key>)");
    }
    const std::string target_sec = rest.substr(0, dot);
    const std::string target_key = rest.substr(dot + 1);
    const SectionSchema* s = find_schema(target_sec);
    if (s == nullptr || target_sec == "scenario") {
      toml_fail(doc.file, line, "override '" + key + "' targets unknown section [" +
                                    target_sec + "]");
    }
    if (std::find_if(s->keys.begin(), s->keys.end(), [&](const char* k) {
          return target_key == k;
        }) == s->keys.end()) {
      toml_fail(doc.file, line, "override '" + key + "' targets unknown key '" + target_key +
                                    "' in section [" + target_sec + "]");
    }
    return;
  }
  toml_fail(doc.file, line, "unknown key '" + key + "' in section [" + sec.name + "]" +
                                " (expected name, axis.*, tag.*" +
                                (allow_set ? ", or set.<section>.<key>)" : ")"));
}

void validate(const TomlDoc& doc) {
  bool saw_grid = false;
  bool saw_sweep = false;

  for (const TomlSection& sec : doc.sections) {
    if (sec.name == "grid" || sec.name.rfind("sweep.", 0) == 0) {
      const bool is_sweep = sec.name != "grid";
      if (is_sweep) {
        saw_sweep = true;
        if (!valid_ident(sec.name.substr(6))) {
          toml_fail(doc.file, sec.line, "malformed sweep name [" + sec.name + "]");
        }
      } else {
        saw_grid = true;
      }
      for (const auto& [key, value] : sec.entries) {
        check_sweep_key(doc, sec, key, value.line, is_sweep);
      }
      continue;
    }
    const SectionSchema* s = find_schema(sec.name);
    if (s == nullptr) {
      std::string known;
      for (const auto& k : schema()) {
        known += "[";
        known += k.name;
        known += "], ";
      }
      known += "[grid], [sweep.*]";
      toml_fail(doc.file, sec.line, "unknown section [" + sec.name + "] (expected " + known + ")");
    }
    for (const auto& [key, value] : sec.entries) {
      if (std::find_if(s->keys.begin(), s->keys.end(),
                       [&](const char* k) { return key == k; }) == s->keys.end()) {
        std::string known;
        for (const char* k : s->keys) {
          if (!known.empty()) known += ", ";
          known += k;
        }
        toml_fail(doc.file, value.line, "unknown key '" + key + "' in section [" + sec.name +
                                            "] (expected one of: " + known + ")");
      }
    }
  }

  if (saw_grid && saw_sweep) {
    toml_fail(doc.file, doc.find("grid")->line,
              "[grid] and [sweep.*] sections cannot be mixed (use sweeps only)");
  }
}

const TomlValue& require_string(const TomlDoc& doc, const char* section, const char* key) {
  const TomlSection* sec = doc.find(section);
  if (sec == nullptr) {
    toml_fail(doc.file, 0, "missing required section [" + std::string(section) + "]");
  }
  const TomlValue* v = sec->find(key);
  if (v == nullptr) {
    toml_fail(doc.file, sec->line,
              "section [" + std::string(section) + "] is missing required key '" + key + "'");
  }
  if (v->kind != TomlValue::Kind::kString) {
    toml_fail(doc.file, v->line, std::string("key '") + key + "' must be a string, got " +
                                     v->kind_name());
  }
  return *v;
}

Scenario finish(TomlDoc doc) {
  Scenario s;
  s.doc = std::move(doc);
  validate(s.doc);
  s.name = require_string(s.doc, "scenario", "name").str;
  s.type_name = require_string(s.doc, "scenario", "type").str;
  if (s.doc.find("model") == nullptr) {
    toml_fail(s.doc.file, 0, "missing required section [model]");
  }
  if (s.doc.find("workload") == nullptr) {
    toml_fail(s.doc.file, 0, "missing required section [workload]");
  }
  return s;
}

}  // namespace

Scenario parse_scenario(const std::string& text, std::string file) {
  return finish(parse_toml(text, std::move(file)));
}

Scenario load_scenario_file(const std::string& path) {
  return finish(parse_toml_file(path));
}

}  // namespace lintime::scenario
