#pragma once
// Strict mini-TOML document parser, the scenario DSL's surface syntax --
// the same deliberately small dialect detlint.toml is written in:
// `[section]` headers, `key = value` lines, `#` comments, double-quoted
// strings, and single-line arrays of scalars.  No nesting, no multi-line
// values, no bare keys without sections.  Every malformed construct is a
// hard error thrown as "file:line: message" (std::runtime_error), so a typo
// in a scenario file can never silently change an experiment.
//
// This layer is purely syntactic; the schema (which sections and keys
// exist, which values are legal) lives in scenario.hpp and is just as
// strict.

#include <cstdint>
#include <string>
#include <vector>

namespace lintime::scenario {

/// One scalar or single-line array value, with its source line for error
/// reporting downstream.  Numeric literals keep both views: `i` is only
/// meaningful for kInt, `num` is set for kInt and kFloat.
struct TomlValue {
  enum class Kind { kString, kInt, kFloat, kBool, kArray };
  Kind kind = Kind::kString;
  std::string str;               ///< kString payload
  std::int64_t i = 0;            ///< kInt payload
  double num = 0;                ///< kInt / kFloat payload
  bool b = false;                ///< kBool payload
  std::vector<TomlValue> items;  ///< kArray payload (scalars only)
  int line = 0;

  [[nodiscard]] const char* kind_name() const;
};

/// One `[section]`: ordered key/value entries.  Duplicate keys within a
/// section are parse errors.
struct TomlSection {
  std::string name;
  int line = 0;
  std::vector<std::pair<std::string, TomlValue>> entries;

  /// The value for `key`, or nullptr if absent.
  [[nodiscard]] const TomlValue* find(const std::string& key) const;
};

/// A parsed document: sections in file order.  Duplicate section names are
/// parse errors; keys before the first section header are too.
struct TomlDoc {
  std::string file;  ///< display name used in error messages
  std::vector<TomlSection> sections;

  [[nodiscard]] const TomlSection* find(const std::string& name) const;
};

/// Throws std::runtime_error("file:line: what").
[[noreturn]] void toml_fail(const std::string& file, int line, const std::string& what);

/// Parses a document from text; `file` is only used in error messages.
[[nodiscard]] TomlDoc parse_toml(const std::string& text, std::string file);

/// Reads and parses `path`; throws std::runtime_error if unreadable.
[[nodiscard]] TomlDoc parse_toml_file(const std::string& path);

}  // namespace lintime::scenario
