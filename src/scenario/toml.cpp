#include "scenario/toml.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lintime::scenario {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Strips a `#` comment, respecting quoted strings (scenario names may
/// legitimately contain '#', e.g. the table-bench job names).
std::string strip_comment(const std::string& line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
    if (c == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

bool valid_key(const std::string& key) {
  if (key.empty()) return false;
  for (const char c : key) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' && c != '_' && c != '.') {
      return false;
    }
  }
  return true;
}

/// Parses one double-quoted string starting at text[pos]; advances pos past
/// the closing quote.  Supports \" and \\ escapes only.
std::string parse_quoted(const std::string& file, int line, const std::string& text,
                         std::size_t& pos) {
  std::string out;
  ++pos;  // opening quote
  while (pos < text.size() && text[pos] != '"') {
    if (text[pos] == '\\') {
      ++pos;
      if (pos >= text.size() || (text[pos] != '"' && text[pos] != '\\')) {
        toml_fail(file, line, "unsupported escape in string (only \\\" and \\\\)");
      }
    }
    out += text[pos++];
  }
  if (pos >= text.size()) toml_fail(file, line, "unterminated string");
  ++pos;  // closing quote
  return out;
}

TomlValue parse_scalar(const std::string& file, int line, const std::string& token) {
  TomlValue v;
  v.line = line;
  if (token == "true" || token == "false") {
    v.kind = TomlValue::Kind::kBool;
    v.b = token == "true";
    return v;
  }
  // Integer literal: optional sign, digits only.  Everything else numeric
  // (decimal point, exponent) is a float.
  bool integral = !token.empty();
  for (std::size_t i = 0; i < token.size(); ++i) {
    const char c = token[i];
    if (i == 0 && (c == '+' || c == '-')) {
      if (token.size() == 1) integral = false;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      integral = false;
      break;
    }
  }
  const char* begin = token.c_str();
  char* end = nullptr;
  if (integral) {
    v.kind = TomlValue::Kind::kInt;
    errno = 0;
    v.i = std::strtoll(begin, &end, 10);
    // strtoll consumes every digit even on overflow, so ERANGE is the only
    // signal that the literal does not fit in long long.
    if (errno == ERANGE || end != begin + token.size()) {
      toml_fail(file, line, "integer literal out of range: " + token);
    }
    v.num = static_cast<double>(v.i);
    return v;
  }
  v.kind = TomlValue::Kind::kFloat;
  v.num = std::strtod(begin, &end);
  if (end != begin + token.size() || token.empty()) {
    toml_fail(file, line,
              "expected a value (quoted string, number, bool or [array]), got: " + token);
  }
  return v;
}

TomlValue parse_value(const std::string& file, int line, const std::string& raw) {
  const std::string text = trim(raw);
  if (text.empty()) toml_fail(file, line, "missing value after '='");

  if (text.front() == '"') {
    std::size_t pos = 0;
    TomlValue v;
    v.kind = TomlValue::Kind::kString;
    v.line = line;
    v.str = parse_quoted(file, line, text, pos);
    if (pos != text.size()) toml_fail(file, line, "trailing characters after string");
    return v;
  }

  if (text.front() == '[') {
    if (text.back() != ']') toml_fail(file, line, "unterminated array (single-line only)");
    TomlValue v;
    v.kind = TomlValue::Kind::kArray;
    v.line = line;
    // Split on top-level commas, respecting quoted elements.
    const std::string body = text.substr(1, text.size() - 2);
    std::string item;
    bool in_string = false;
    for (std::size_t i = 0; i <= body.size(); ++i) {
      const bool end = i == body.size();
      const char c = end ? ',' : body[i];
      if (!end && c == '"' && (i == 0 || body[i - 1] != '\\')) in_string = !in_string;
      if (c == ',' && !in_string) {
        const std::string t = trim(item);
        item.clear();
        if (t.empty()) {
          if (end && v.items.empty()) break;  // "[]": empty array
          if (end) break;                     // trailing comma
          toml_fail(file, line, "empty array element");
        }
        if (t.front() == '"') {
          std::size_t pos = 0;
          TomlValue s;
          s.kind = TomlValue::Kind::kString;
          s.line = line;
          s.str = parse_quoted(file, line, t, pos);
          if (pos != t.size()) toml_fail(file, line, "trailing characters after string");
          v.items.push_back(std::move(s));
        } else {
          v.items.push_back(parse_scalar(file, line, t));
        }
      } else if (!end) {
        item += c;
      }
    }
    if (in_string) toml_fail(file, line, "unterminated string in array");
    return v;
  }

  return parse_scalar(file, line, text);
}

}  // namespace

const char* TomlValue::kind_name() const {
  switch (kind) {
    case Kind::kString: return "string";
    case Kind::kInt: return "integer";
    case Kind::kFloat: return "float";
    case Kind::kBool: return "bool";
    case Kind::kArray: return "array";
  }
  return "?";
}

const TomlValue* TomlSection::find(const std::string& key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return &v;
  }
  return nullptr;
}

const TomlSection* TomlDoc::find(const std::string& name) const {
  for (const auto& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void toml_fail(const std::string& file, int line, const std::string& what) {
  throw std::runtime_error(file + ":" + std::to_string(line) + ": " + what);
}

TomlDoc parse_toml(const std::string& text, std::string file) {
  TomlDoc doc;
  doc.file = std::move(file);

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  TomlSection* current = nullptr;
  while (std::getline(in, line)) {
    ++lineno;
    line = trim(strip_comment(line));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') toml_fail(doc.file, lineno, "unterminated section header");
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (!valid_key(name)) toml_fail(doc.file, lineno, "malformed section name [" + name + "]");
      if (doc.find(name) != nullptr) {
        toml_fail(doc.file, lineno, "duplicate section [" + name + "]");
      }
      doc.sections.push_back(TomlSection{name, lineno, {}});
      current = &doc.sections.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      toml_fail(doc.file, lineno, "expected 'key = value' or '[section]', got: " + line);
    }
    const std::string key = trim(line.substr(0, eq));
    if (!valid_key(key)) toml_fail(doc.file, lineno, "malformed key '" + key + "'");
    if (current == nullptr) {
      toml_fail(doc.file, lineno, "key '" + key + "' before any [section] header");
    }
    if (current->find(key) != nullptr) {
      toml_fail(doc.file, lineno,
                "duplicate key '" + key + "' in section [" + current->name + "]");
    }
    current->entries.emplace_back(key, parse_value(doc.file, lineno, line.substr(eq + 1)));
  }
  return doc;
}

TomlDoc parse_toml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("scenario: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_toml(buf.str(), path);
}

}  // namespace lintime::scenario
