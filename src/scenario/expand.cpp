#include "scenario/expand.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "adt/counter_type.hpp"
#include "adt/deque_type.hpp"
#include "adt/fingerprint.hpp"
#include "adt/max_register_type.hpp"
#include "adt/pool_type.hpp"
#include "adt/pqueue_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "campaign/grid.hpp"
#include "campaign/sink.hpp"
#include "harness/workload.hpp"
#include "sim/delay_model.hpp"
#include "sim/fault.hpp"

namespace lintime::scenario {

namespace {

using campaign::fmt_double;

bool parse_full_int(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool parse_full_num(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// Canonicalizes one scalar exactly like campaign::Grid's axis overloads:
/// integers in decimal, floats via shortest round-trip formatting.
std::string canonical_scalar(const TomlDoc& doc, const TomlValue& v) {
  switch (v.kind) {
    case TomlValue::Kind::kInt: return std::to_string(v.i);
    case TomlValue::Kind::kFloat: return fmt_double(v.num);
    case TomlValue::Kind::kString: return v.str;
    default:
      toml_fail(doc.file, v.line, std::string("axis values must be numbers or strings, got ") +
                                      v.kind_name());
  }
}

/// Canonicalizes a raw CLI override string by the same rules.
std::string canonical_raw(const std::string& s) {
  std::int64_t i = 0;
  if (parse_full_int(s, i)) return std::to_string(i);
  double d = 0;
  if (parse_full_num(s, d)) return fmt_double(d);
  return s;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_';
}

/// One job's view of the document: the base sections with the enclosing
/// sweep's set.<section>.<key> overrides layered on top, plus the axis
/// environment ($axis values and the built-in $index).
struct JobView {
  const TomlDoc& doc;
  const TomlSection* sweep = nullptr;
  std::map<std::string, std::string> env;

  [[nodiscard]] const TomlValue* find(const std::string& section, const std::string& key) const {
    if (sweep != nullptr) {
      if (const TomlValue* v = sweep->find("set." + section + "." + key)) return v;
    }
    const TomlSection* s = doc.find(section);
    return s != nullptr ? s->find(key) : nullptr;
  }

  /// True if the section exists or any override targets it.
  [[nodiscard]] bool has_section(const std::string& section) const {
    if (doc.find(section) != nullptr) return true;
    if (sweep != nullptr) {
      const std::string prefix = "set." + section + ".";
      for (const auto& [k, v] : sweep->entries) {
        if (k.rfind(prefix, 0) == 0) return true;
      }
    }
    return false;
  }

  /// The effective keys of a section (base keys plus override keys), with
  /// the line each was set on -- for per-kind applicability checks.
  [[nodiscard]] std::vector<std::pair<std::string, int>> keys_of(
      const std::string& section) const {
    std::vector<std::pair<std::string, int>> out;
    if (const TomlSection* s = doc.find(section)) {
      for (const auto& [k, v] : s->entries) out.emplace_back(k, v.line);
    }
    if (sweep != nullptr) {
      const std::string prefix = "set." + section + ".";
      for (const auto& [k, v] : sweep->entries) {
        if (k.rfind(prefix, 0) == 0) out.emplace_back(k.substr(prefix.size()), v.line);
      }
    }
    return out;
  }

  [[nodiscard]] const std::string& env_get(int line, const std::string& name) const {
    const auto it = env.find(name);
    if (it == env.end()) {
      toml_fail(doc.file, line, "reference '$" + name + "' names no axis of this sweep");
    }
    return it->second;
  }
};

/// Resolves "$axis", "$axis*K" or "$axis/K" to its canonical string.
std::string resolve_ref(const JobView& jv, const TomlValue& v) {
  const std::string& s = v.str;
  std::size_t pos = 1;
  while (pos < s.size() && ident_char(s[pos])) ++pos;
  const std::string name = s.substr(1, pos - 1);
  const std::string& base = jv.env_get(v.line, name);
  if (pos == s.size()) return base;

  const char op = s[pos];
  std::int64_t k = 0;
  if ((op != '*' && op != '/') || !parse_full_int(s.substr(pos + 1), k) || k <= 0) {
    toml_fail(jv.doc.file, v.line,
              "bad reference '" + s + "' (expected $axis, $axis*K or $axis/K)");
  }
  std::int64_t value = 0;
  if (!parse_full_int(base, value)) {
    toml_fail(jv.doc.file, v.line,
              "reference '" + s + "': axis value '" + base + "' is not an integer");
  }
  if (op == '*') return std::to_string(value * k);
  if (value % k != 0) {
    toml_fail(jv.doc.file, v.line,
              "reference '" + s + "': " + base + " is not divisible by " + std::to_string(k));
  }
  return std::to_string(value / k);
}

/// A string value resolved: a whole-value "$..." reference, or the literal.
std::string resolve_str(const JobView& jv, const TomlValue& v, const char* key) {
  if (v.kind != TomlValue::Kind::kString) {
    toml_fail(jv.doc.file, v.line,
              std::string("key '") + key + "' must be a string, got " + v.kind_name());
  }
  if (!v.str.empty() && v.str.front() == '$') return resolve_ref(jv, v);
  return v.str;
}

std::int64_t resolve_int(const JobView& jv, const TomlValue& v, const char* key) {
  if (v.kind == TomlValue::Kind::kInt) return v.i;
  if (v.kind == TomlValue::Kind::kString && !v.str.empty() && v.str.front() == '$') {
    const std::string s = resolve_ref(jv, v);
    std::int64_t out = 0;
    if (parse_full_int(s, out)) return out;
    toml_fail(jv.doc.file, v.line,
              std::string("key '") + key + "': resolved value '" + s + "' is not an integer");
  }
  toml_fail(jv.doc.file, v.line,
            std::string("key '") + key + "' must be an integer or a $reference, got " +
                v.kind_name());
}

double resolve_num(const JobView& jv, const TomlValue& v, const char* key) {
  if (v.kind == TomlValue::Kind::kInt || v.kind == TomlValue::Kind::kFloat) return v.num;
  if (v.kind == TomlValue::Kind::kString && !v.str.empty() && v.str.front() == '$') {
    const std::string s = resolve_ref(jv, v);
    double out = 0;
    if (parse_full_num(s, out)) return out;
    toml_fail(jv.doc.file, v.line,
              std::string("key '") + key + "': resolved value '" + s + "' is not numeric");
  }
  toml_fail(jv.doc.file, v.line,
            std::string("key '") + key + "' must be a number or a $reference, got " +
                v.kind_name());
}

bool resolve_bool(const JobView& jv, const TomlValue& v, const char* key) {
  if (v.kind != TomlValue::Kind::kBool) {
    toml_fail(jv.doc.file, v.line,
              std::string("key '") + key + "' must be true or false, got " + v.kind_name());
  }
  return v.b;
}

// Getter helpers with defaults / required-ness against a JobView.
std::int64_t get_int(const JobView& jv, const char* sec, const char* key, std::int64_t def) {
  const TomlValue* v = jv.find(sec, key);
  return v != nullptr ? resolve_int(jv, *v, key) : def;
}
double get_num(const JobView& jv, const char* sec, const char* key, double def) {
  const TomlValue* v = jv.find(sec, key);
  return v != nullptr ? resolve_num(jv, *v, key) : def;
}
std::string get_str(const JobView& jv, const char* sec, const char* key, std::string def) {
  const TomlValue* v = jv.find(sec, key);
  return v != nullptr ? resolve_str(jv, *v, key) : std::move(def);
}
bool get_bool(const JobView& jv, const char* sec, const char* key, bool def) {
  const TomlValue* v = jv.find(sec, key);
  return v != nullptr ? resolve_bool(jv, *v, key) : def;
}

const TomlValue& require(const JobView& jv, const char* sec, const char* key) {
  const TomlValue* v = jv.find(sec, key);
  if (v == nullptr) {
    const TomlSection* s = jv.doc.find(sec);
    toml_fail(jv.doc.file, s != nullptr ? s->line : 0,
              "section [" + std::string(sec) + "] is missing required key '" + key + "'");
  }
  return *v;
}

/// Substitutes every "$ident" (axes of this sweep plus "$index") in a
/// name/tag template.
std::string substitute(const JobView& jv, const TomlValue& v) {
  const std::string& s = v.str;
  std::string out;
  for (std::size_t i = 0; i < s.size();) {
    if (s[i] != '$') {
      out += s[i++];
      continue;
    }
    std::size_t j = i + 1;
    while (j < s.size() && ident_char(s[j])) ++j;
    if (j == i + 1) toml_fail(jv.doc.file, v.line, "lone '$' in template '" + s + "'");
    out += jv.env_get(v.line, s.substr(i + 1, j - i - 1));
    i = j;
  }
  return out;
}

/// Verifies every effective key of `section` is applicable to the resolved
/// kind.  Strictness guard: a leftover `seed` on a constant-delay section is
/// an error, not dead weight.
void check_keys(const JobView& jv, const std::string& section, const std::string& kind,
                const std::set<std::string>& allowed) {
  for (const auto& [key, line] : jv.keys_of(section)) {
    if (key == "kind" || allowed.count(key) != 0) continue;
    toml_fail(jv.doc.file, line, "key '" + key + "' does not apply to [" + section +
                                     "] kind \"" + kind + "\"");
  }
}

adt::Value parse_arg(const JobView& jv, const TomlValue& v) {
  if (v.kind == TomlValue::Kind::kInt) return adt::Value{v.i};
  // The string "nil" is the no-argument marker (the paper's "-"), so sweeps
  // can override an integer base arg back to nil.
  if (v.kind == TomlValue::Kind::kString) {
    return v.str == "nil" ? adt::Value::nil() : adt::Value{v.str};
  }
  toml_fail(jv.doc.file, v.line,
            std::string("operation arguments must be integers, strings or \"nil\", got ") +
                v.kind_name());
}

/// Parses one "op" / "op:INT" script step.
harness::ScriptOp parse_script_op(const JobView& jv, const TomlValue& v) {
  if (v.kind != TomlValue::Kind::kString) {
    toml_fail(jv.doc.file, v.line,
              std::string("script steps must be \"op\" or \"op:arg\" strings, got ") +
                  v.kind_name());
  }
  const std::size_t colon = v.str.find(':');
  if (colon == std::string::npos) return harness::ScriptOp{v.str, adt::Value::nil()};
  std::int64_t arg = 0;
  if (colon == 0 || !parse_full_int(v.str.substr(colon + 1), arg)) {
    toml_fail(jv.doc.file, v.line, "bad script step '" + v.str + "' (expected op or op:INT)");
  }
  return harness::ScriptOp{v.str.substr(0, colon), adt::Value{arg}};
}

std::vector<double> num_array(const JobView& jv, const TomlValue& v, const char* key) {
  if (v.kind != TomlValue::Kind::kArray) {
    toml_fail(jv.doc.file, v.line,
              std::string("key '") + key + "' must be an array, got " + v.kind_name());
  }
  std::vector<double> out;
  out.reserve(v.items.size());
  for (const auto& item : v.items) out.push_back(resolve_num(jv, item, key));
  return out;
}

std::vector<int> int_array(const JobView& jv, const TomlValue& v, const char* key) {
  if (v.kind != TomlValue::Kind::kArray) {
    toml_fail(jv.doc.file, v.line,
              std::string("key '") + key + "' must be an array, got " + v.kind_name());
  }
  std::vector<int> out;
  out.reserve(v.items.size());
  for (const auto& item : v.items) {
    out.push_back(static_cast<int>(resolve_int(jv, item, key)));
  }
  return out;
}

harness::AlgoKind parse_algo(const JobView& jv, const TomlValue& v) {
  const std::string s = resolve_str(jv, v, "algo");
  if (s == "algorithm1") return harness::AlgoKind::kAlgorithmOne;
  if (s == "centralized") return harness::AlgoKind::kCentralized;
  if (s == "all-oop") return harness::AlgoKind::kAllOop;
  if (s == "zero-wait") return harness::AlgoKind::kZeroWait;
  if (s == "seq-consistent") return harness::AlgoKind::kSeqConsistent;
  if (s == "sharded-serving") return harness::AlgoKind::kShardedServing;
  toml_fail(jv.doc.file, v.line,
            "unknown algo \"" + s +
                "\" (expected algorithm1, centralized, all-oop, zero-wait, seq-consistent or "
                "sharded-serving)");
}

/// Fault-plane schedule strings: "P@T" crashes and "S>D@F..U" link windows
/// (S/D an integer process id or "*").
sim::CrashEvent parse_crash(const JobView& jv, const TomlValue& v, const std::string& s) {
  const std::size_t at = s.find('@');
  std::int64_t proc = 0;
  double when = 0;
  if (at == std::string::npos || !parse_full_int(s.substr(0, at), proc) ||
      !parse_full_num(s.substr(at + 1), when)) {
    toml_fail(jv.doc.file, v.line, "bad crash '" + s + "' (expected PROC@TIME, e.g. \"2@50\")");
  }
  return sim::CrashEvent{static_cast<int>(proc), when};
}

int parse_endpoint(const JobView& jv, const TomlValue& v, const std::string& s,
                   const std::string& whole) {
  if (s == "*") return sim::kAnyProc;
  std::int64_t p = 0;
  if (!parse_full_int(s, p)) {
    toml_fail(jv.doc.file, v.line, "bad link-drop '" + whole + "' (endpoint '" + s +
                                       "' is neither a process id nor *)");
  }
  return static_cast<int>(p);
}

sim::LinkWindow parse_link(const JobView& jv, const TomlValue& v, const std::string& s) {
  const std::size_t gt = s.find('>');
  const std::size_t at = s.find('@');
  const std::size_t dots = s.find("..");
  double from = 0;
  double until = 0;
  if (gt == std::string::npos || at == std::string::npos || dots == std::string::npos ||
      gt > at || at > dots || !parse_full_num(s.substr(at + 1, dots - at - 1), from) ||
      !parse_full_num(s.substr(dots + 2), until)) {
    toml_fail(jv.doc.file, v.line,
              "bad link-drop '" + s + "' (expected SRC>DST@FROM..UNTIL, e.g. \"0>1@10..20\")");
  }
  return sim::LinkWindow{parse_endpoint(jv, v, s.substr(0, gt), s),
                         parse_endpoint(jv, v, s.substr(gt + 1, at - gt - 1), s), from, until};
}

// ---------------------------------------------------------------------------
// Per-section builders.  Each also appends to `desc`, the canonical job
// description line the corpus digests pin.

sim::ModelParams build_model(const JobView& jv, std::string& desc) {
  sim::ModelParams params{static_cast<int>(resolve_int(jv, require(jv, "model", "n"), "n")),
                          resolve_num(jv, require(jv, "model", "d"), "d"),
                          resolve_num(jv, require(jv, "model", "u"), "u"), 0.0};
  const TomlValue& eps = require(jv, "model", "eps");
  if (eps.kind == TomlValue::Kind::kString && eps.str == "optimal") {
    params.eps = params.optimal_eps();
  } else {
    params.eps = resolve_num(jv, eps, "eps");
  }
  desc += "|n=" + std::to_string(params.n) + "|d=" + fmt_double(params.d) +
          "|u=" + fmt_double(params.u) + "|eps=" + fmt_double(params.eps);
  return params;
}

void build_run(const JobView& jv, const sim::ModelParams& params, harness::RunSpec& spec,
               std::string& desc) {
  const TomlValue* algo = jv.find("run", "algo");
  spec.algo = algo != nullptr ? parse_algo(jv, *algo) : harness::AlgoKind::kAlgorithmOne;

  const TomlValue* frac = jv.find("run", "x-frac");
  const TomlValue* abs = jv.find("run", "x-abs");
  if (frac != nullptr && abs != nullptr) {
    toml_fail(jv.doc.file, abs->line, "x-frac and x-abs are mutually exclusive");
  }
  // X is meaningful only for the Algorithm 1 family; other algorithms force
  // X = 0 so an axis-driven x-frac can ride along a $algo axis (the latency
  // grid shape) without erroring on the baseline's points.
  if (spec.algo == harness::AlgoKind::kAlgorithmOne || spec.algo == harness::AlgoKind::kAllOop) {
    if (abs != nullptr) {
      spec.X = resolve_num(jv, *abs, "x-abs");
    } else if (frac != nullptr) {
      spec.X = (params.d - params.eps) * resolve_num(jv, *frac, "x-frac");
    }
  }

  const std::string sched = get_str(jv, "run", "scheduler", "ring");
  if (sched == "ring") {
    spec.scheduler = sim::SchedulerKind::kEventRing;
  } else if (sched == "heap") {
    spec.scheduler = sim::SchedulerKind::kBinaryHeap;
  } else {
    toml_fail(jv.doc.file, jv.find("run", "scheduler")->line,
              "unknown scheduler \"" + sched + "\" (expected ring or heap)");
  }

  const std::string record = get_str(jv, "run", "record", "full");
  if (record == "full") {
    spec.record_detail = sim::RecordDetail::kFull;
  } else if (record == "ops-only") {
    spec.record_detail = sim::RecordDetail::kOpsOnly;
  } else {
    toml_fail(jv.doc.file, jv.find("run", "record")->line,
              "unknown record detail \"" + record + "\" (expected full or ops-only)");
  }

  const std::int64_t max_events = get_int(jv, "run", "max-events", 10'000'000);
  if (max_events < 1) {
    toml_fail(jv.doc.file, jv.find("run", "max-events")->line, "max-events must be >= 1");
  }
  spec.max_events = static_cast<std::uint64_t>(max_events);

  desc += std::string("|algo=") + harness::to_string(spec.algo) + "|X=" + fmt_double(spec.X) +
          "|sched=" + sched + "|record=" + record + "|max-events=" + std::to_string(max_events);
}

void build_delays(const JobView& jv, const sim::ModelParams& params, harness::RunSpec& spec,
                  std::string& desc) {
  if (!jv.has_section("delays")) {
    desc += "|delays=default";
    return;  // harness default: ConstantDelay(d)
  }
  const std::string kind = resolve_str(jv, require(jv, "delays", "kind"), "kind");
  if (kind == "constant") {
    check_keys(jv, "delays", kind, {"value"});
    const double value = get_num(jv, "delays", "value", params.d);
    spec.delays = std::make_shared<sim::ConstantDelay>(value);
    desc += "|delays=constant(" + fmt_double(value) + ")";
  } else if (kind == "uniform-random") {
    check_keys(jv, "delays", kind, {"lo", "hi", "seed"});
    const double lo = get_num(jv, "delays", "lo", params.min_delay());
    const double hi = get_num(jv, "delays", "hi", params.d);
    const auto seed =
        static_cast<std::uint64_t>(resolve_int(jv, require(jv, "delays", "seed"), "seed"));
    spec.delays = std::make_shared<sim::UniformRandomDelay>(lo, hi, seed);
    desc += "|delays=uniform-random(" + fmt_double(lo) + "," + fmt_double(hi) + "," +
            std::to_string(seed) + ")";
  } else if (kind == "matrix") {
    check_keys(jv, "delays", kind, {"matrix"});
    const TomlValue& m = require(jv, "delays", "matrix");
    const std::vector<double> flat = num_array(jv, m, "matrix");
    const auto n = static_cast<std::size_t>(params.n);
    if (flat.size() != n * n) {
      toml_fail(jv.doc.file, m.line, "matrix must have n*n = " + std::to_string(n * n) +
                                         " entries (row-major), got " +
                                         std::to_string(flat.size()));
    }
    std::vector<std::vector<sim::Time>> rows(n, std::vector<sim::Time>(n));
    desc += "|delays=matrix(";
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        rows[i][j] = flat[i * n + j];
        desc += fmt_double(flat[i * n + j]);
        desc += ',';
      }
    }
    desc += ')';
    spec.delays = std::make_shared<sim::MatrixDelay>(std::move(rows));
  } else {
    toml_fail(jv.doc.file, jv.find("delays", "kind")->line,
              "unknown delays kind \"" + kind +
                  "\" (expected constant, uniform-random or matrix)");
  }
}

void build_clocks(const JobView& jv, const sim::ModelParams& params, harness::RunSpec& spec,
                  std::string& desc) {
  if (!jv.has_section("clocks")) return;
  const TomlValue* drift = jv.find("clocks", "drift");
  const TomlValue* rates = jv.find("clocks", "rates");
  if (drift != nullptr && rates != nullptr) {
    toml_fail(jv.doc.file, rates->line, "clocks drift and rates are mutually exclusive");
  }
  if (drift != nullptr) {
    // Alternating +/- drift, the robustness-campaign shape.
    const double level = resolve_num(jv, *drift, "drift");
    spec.clock_rates.reserve(static_cast<std::size_t>(params.n));
    for (int p = 0; p < params.n; ++p) {
      spec.clock_rates.push_back(p % 2 == 0 ? 1.0 + level : 1.0 - level);
    }
    desc += "|drift=" + fmt_double(level);
  } else if (rates != nullptr) {
    spec.clock_rates = num_array(jv, *rates, "rates");
    if (spec.clock_rates.size() != static_cast<std::size_t>(params.n)) {
      toml_fail(jv.doc.file, rates->line, "rates must list one rate per process (n = " +
                                              std::to_string(params.n) + ")");
    }
    desc += "|rates=";
    for (const double r : spec.clock_rates) (desc += fmt_double(r)) += ',';
  }
  if (const TomlValue* offsets = jv.find("clocks", "offsets")) {
    spec.clock_offsets = num_array(jv, *offsets, "offsets");
    if (spec.clock_offsets.size() != static_cast<std::size_t>(params.n)) {
      toml_fail(jv.doc.file, offsets->line, "offsets must list one offset per process (n = " +
                                                std::to_string(params.n) + ")");
    }
    desc += "|offsets=";
    for (const double o : spec.clock_offsets) (desc += fmt_double(o)) += ',';
  }
}

void build_faults(const JobView& jv, const sim::ModelParams& params, harness::RunSpec& spec,
                  std::string& desc) {
  if (!jv.has_section("faults")) return;
  spec.drop_probability = get_num(jv, "faults", "drop", 0.0);
  spec.drop_seed = static_cast<std::uint64_t>(get_int(jv, "faults", "drop-seed", 0));
  if (spec.drop_probability != 0) {
    desc += "|drop=" + fmt_double(spec.drop_probability) + "|drop-seed=" +
            std::to_string(spec.drop_seed);
  }

  if (const TomlValue* crash = jv.find("faults", "crash")) {
    if (crash->kind != TomlValue::Kind::kArray) {
      toml_fail(jv.doc.file, crash->line, "crash must be an array of \"PROC@TIME\" strings");
    }
    desc += "|crash=";
    for (const auto& item : crash->items) {
      const std::string s = resolve_str(jv, item, "crash");
      spec.faults.crashes.push_back(parse_crash(jv, item, s));
      (desc += s) += ',';
    }
  }
  if (const TomlValue* links = jv.find("faults", "link-drop")) {
    if (links->kind != TomlValue::Kind::kArray) {
      toml_fail(jv.doc.file, links->line,
                "link-drop must be an array of \"SRC>DST@FROM..UNTIL\" strings");
    }
    desc += "|link-drop=";
    for (const auto& item : links->items) {
      const std::string s = resolve_str(jv, item, "link-drop");
      spec.faults.link_drops.push_back(parse_link(jv, item, s));
      (desc += s) += ',';
    }
  }

  const TomlValue* pa = jv.find("faults", "partition-a");
  const TomlValue* pb = jv.find("faults", "partition-b");
  if ((pa != nullptr) != (pb != nullptr)) {
    const TomlValue* present = pa != nullptr ? pa : pb;
    toml_fail(jv.doc.file, present->line, "partition-a and partition-b must both be present");
  }
  if (pa != nullptr) {
    const TomlValue& cut = require(jv, "faults", "partition-cut");
    const TomlValue& period = require(jv, "faults", "partition-period");
    const double start = get_num(jv, "faults", "partition-start", 0.0);
    const std::int64_t cycles = get_int(jv, "faults", "partition-cycles", 1);
    try {
      const auto windows = sim::partition_cycles(
          int_array(jv, *pa, "partition-a"), int_array(jv, *pb, "partition-b"), start,
          resolve_num(jv, cut, "partition-cut"), resolve_num(jv, period, "partition-period"),
          static_cast<int>(cycles));
      spec.faults.link_drops.insert(spec.faults.link_drops.end(), windows.begin(),
                                    windows.end());
    } catch (const std::exception& e) {
      toml_fail(jv.doc.file, pa->line, std::string("bad partition schedule: ") + e.what());
    }
    desc += "|partition=a" + std::to_string(pa->items.size()) + ":b" +
            std::to_string(pb->items.size()) + "@" + fmt_double(start) + "/" +
            fmt_double(resolve_num(jv, cut, "partition-cut")) + "/" +
            fmt_double(resolve_num(jv, period, "partition-period")) + "x" +
            std::to_string(cycles);
  } else {
    for (const char* key :
         {"partition-start", "partition-cut", "partition-period", "partition-cycles"}) {
      if (const TomlValue* v = jv.find("faults", key)) {
        toml_fail(jv.doc.file, v->line,
                  std::string("'") + key + "' requires partition-a and partition-b");
      }
    }
  }

  try {
    spec.faults.validate(params.n);
  } catch (const std::exception& e) {
    const TomlSection* sec = jv.doc.find("faults");
    toml_fail(jv.doc.file,
              sec != nullptr ? sec->line : (jv.sweep != nullptr ? jv.sweep->line : 0),
              std::string("bad fault schedule: ") + e.what());
  }
}

std::shared_ptr<const harness::WorkloadGen> build_workload(const JobView& jv,
                                                           std::string& desc) {
  const std::string kind = resolve_str(jv, require(jv, "workload", "kind"), "kind");
  std::shared_ptr<const harness::WorkloadGen> gen;
  if (kind == "random-scripts") {
    check_keys(jv, "workload", kind, {"ops-per-proc", "seed", "start", "gap"});
    gen = std::make_shared<harness::RandomScriptsGen>(
        static_cast<int>(resolve_int(jv, require(jv, "workload", "ops-per-proc"),
                                     "ops-per-proc")),
        static_cast<std::uint64_t>(resolve_int(jv, require(jv, "workload", "seed"), "seed")),
        get_num(jv, "workload", "start", 0.0), get_num(jv, "workload", "gap", 0.0));
  } else if (kind == "staggered-rounds") {
    check_keys(jv, "workload", kind, {"rounds", "seed", "stagger", "round-gap"});
    gen = std::make_shared<harness::StaggeredRoundsGen>(
        static_cast<int>(resolve_int(jv, require(jv, "workload", "rounds"), "rounds")),
        static_cast<std::uint64_t>(resolve_int(jv, require(jv, "workload", "seed"), "seed")),
        get_num(jv, "workload", "stagger", 0.25), get_num(jv, "workload", "round-gap", 40.0));
  } else if (kind == "sharded") {
    check_keys(jv, "workload", kind,
               {"ops-per-proc", "seed", "zipf-theta", "loop", "spacing", "think", "burst",
                "burst-gap"});
    harness::ShardedWorkloadGen::Options o;
    o.ops_per_proc = static_cast<int>(
        resolve_int(jv, require(jv, "workload", "ops-per-proc"), "ops-per-proc"));
    o.seed =
        static_cast<std::uint64_t>(resolve_int(jv, require(jv, "workload", "seed"), "seed"));
    o.zipf_theta = get_num(jv, "workload", "zipf-theta", 0.0);
    const std::string loop = get_str(jv, "workload", "loop", "open");
    if (loop != "open" && loop != "closed") {
      toml_fail(jv.doc.file, jv.find("workload", "loop")->line,
                "unknown loop \"" + loop + "\" (expected open or closed)");
    }
    o.closed_loop = loop == "closed";
    o.spacing = get_num(jv, "workload", "spacing", 20.0);
    o.think = get_num(jv, "workload", "think", 0.0);
    o.burst = static_cast<int>(get_int(jv, "workload", "burst", 0));
    o.burst_gap = get_num(jv, "workload", "burst-gap", 0.0);
    gen = std::make_shared<harness::ShardedWorkloadGen>(o);
  } else if (kind == "worst-latency") {
    check_keys(jv, "workload", kind, {"op", "arg", "rho"});
    const std::string op = resolve_str(jv, require(jv, "workload", "op"), "op");
    adt::Value arg = adt::Value::nil();
    if (const TomlValue* a = jv.find("workload", "arg")) arg = parse_arg(jv, *a);
    std::vector<harness::ScriptOp> rho;
    if (const TomlValue* r = jv.find("workload", "rho")) {
      if (r->kind != TomlValue::Kind::kArray) {
        toml_fail(jv.doc.file, r->line, "rho must be an array of \"op\" / \"op:INT\" strings");
      }
      for (const auto& item : r->items) rho.push_back(parse_script_op(jv, item));
    }
    gen = std::make_shared<harness::WorstLatencyGen>(op, std::move(arg), std::move(rho));
  } else if (kind == "none") {
    check_keys(jv, "workload", kind, {});
    desc += "|workload=none";
    return nullptr;
  } else {
    toml_fail(jv.doc.file, jv.find("workload", "kind")->line,
              "unknown workload kind \"" + kind +
                  "\" (expected random-scripts, staggered-rounds, sharded, worst-latency or "
                  "none)");
  }
  desc += "|workload=" + gen->describe();
  return gen;
}

/// Axes of one sweep, in declaration order, values canonicalized; CLI
/// overrides applied.
campaign::Grid sweep_grid(const TomlDoc& doc, const TomlSection& sweep,
                          const std::vector<AxisOverride>& overrides,
                          std::vector<bool>& override_used, bool& has_axes) {
  campaign::Grid grid;
  has_axes = false;
  for (const auto& [key, value] : sweep.entries) {
    if (key.rfind("axis.", 0) != 0) continue;
    has_axes = true;
    const std::string name = key.substr(5);

    std::vector<std::string> values;
    bool overridden = false;
    for (std::size_t i = 0; i < overrides.size(); ++i) {
      if (overrides[i].axis != name) continue;
      override_used[i] = true;
      overridden = true;
      for (const std::string& raw : overrides[i].values) values.push_back(canonical_raw(raw));
    }
    if (!overridden) {
      if (value.kind == TomlValue::Kind::kArray) {
        for (const auto& item : value.items) values.push_back(canonical_scalar(doc, item));
      } else if (value.kind == TomlValue::Kind::kString &&
                 value.str.find("..") != std::string::npos) {
        const std::size_t dots = value.str.find("..");
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        if (!parse_full_int(value.str.substr(0, dots), lo) ||
            !parse_full_int(value.str.substr(dots + 2), hi) || hi < lo) {
          toml_fail(doc.file, value.line, "bad range '" + value.str + "' (expected LO..HI)");
        }
        for (std::int64_t v = lo; v <= hi; ++v) values.push_back(std::to_string(v));
      } else {
        values.push_back(canonical_scalar(doc, value));
      }
    }
    if (values.empty()) toml_fail(doc.file, value.line, "axis '" + name + "' has no values");
    grid.axis(name, std::move(values));
  }
  return grid;
}

}  // namespace

std::unique_ptr<adt::DataType> make_data_type(const std::string& name) {
  if (name == "queue") return std::make_unique<adt::QueueType>();
  if (name == "stack") return std::make_unique<adt::StackType>();
  if (name == "register") return std::make_unique<adt::RegisterType>();
  if (name == "rmw_register") return std::make_unique<adt::RmwRegisterType>();
  if (name == "max_register") return std::make_unique<adt::MaxRegisterType>();
  if (name == "set") return std::make_unique<adt::SetType>();
  if (name == "counter") return std::make_unique<adt::CounterType>();
  if (name == "pqueue") return std::make_unique<adt::PriorityQueueType>();
  if (name == "deque") return std::make_unique<adt::DequeType>();
  if (name == "pool") return std::make_unique<adt::PoolType>();
  if (name == "tree") return std::make_unique<adt::TreeType>();
  throw std::runtime_error("scenario: unknown data type \"" + name + "\"");
}

ScenarioCampaign expand(const Scenario& sc, const std::vector<AxisOverride>& overrides) {
  ScenarioCampaign out;
  out.spec.name = sc.name;
  out.base_type = make_data_type(sc.type_name);

  const TomlDoc& doc = sc.doc;
  {
    JobView top{doc, nullptr, {}};
    out.bench_ops = get_bool(top, "scenario", "bench-ops", false);
  }

  // Sweeps in file order; a scenario with no [grid]/[sweep.*] is one job.
  std::vector<const TomlSection*> sweeps;
  for (const TomlSection& sec : doc.sections) {
    if (sec.name == "grid" || sec.name.rfind("sweep.", 0) == 0) sweeps.push_back(&sec);
  }
  if (sweeps.empty()) sweeps.push_back(nullptr);

  std::vector<bool> override_used(overrides.size(), false);
  std::map<std::string, const core::ShardedStore*> store_cache;
  std::size_t index = 0;

  for (const TomlSection* sweep : sweeps) {
    std::vector<campaign::GridPoint> points;
    if (sweep != nullptr) {
      bool has_axes = false;
      campaign::Grid grid = sweep_grid(doc, *sweep, overrides, override_used, has_axes);
      if (has_axes) {
        points = grid.points();
      } else {
        points.emplace_back(std::vector<std::pair<std::string, std::string>>{});
      }
    } else {
      points.emplace_back(std::vector<std::pair<std::string, std::string>>{});
    }

    for (const auto& point : points) {
      JobView jv{doc, sweep, {}};
      for (const auto& [axis, value] : point.coords()) jv.env[axis] = value;
      jv.env["index"] = std::to_string(index);

      campaign::Job job;
      std::string desc;

      // Name: the sweep's template, or the grid-point label (the historical
      // Job naming), or the scenario name for single-job scenarios.
      const TomlValue* name_tmpl = sweep != nullptr ? sweep->find("name") : nullptr;
      if (name_tmpl != nullptr) {
        job.name = substitute(jv, *name_tmpl);
      } else {
        job.name = point.coords().empty() ? sc.name : point.label();
      }

      // Tags: explicit tag.* templates in declaration order, else the grid
      // coordinates.
      bool tagged = false;
      if (sweep != nullptr) {
        for (const auto& [key, value] : sweep->entries) {
          if (key.rfind("tag.", 0) != 0) continue;
          tagged = true;
          if (value.kind != TomlValue::Kind::kString) {
            toml_fail(doc.file, value.line,
                      std::string("tag values must be strings, got ") + value.kind_name());
          }
          job.tags.emplace_back(key.substr(4), substitute(jv, value));
        }
      }
      if (!tagged) job.tags = point.coords();

      desc += "name=" + job.name + "|tags=";
      for (const auto& [k, v] : job.tags) desc += k + "=" + v + ",";

      job.spec.params = build_model(jv, desc);
      build_run(jv, job.spec.params, job.spec, desc);
      build_delays(jv, job.spec.params, job.spec, desc);
      build_clocks(jv, job.spec.params, job.spec, desc);
      build_faults(jv, job.spec.params, job.spec, desc);
      job.spec.workload = build_workload(jv, desc);

      // Data type: the base type, or a ShardedStore over it ([store]),
      // cached by (keys, shards) so sibling jobs share one keyspace.
      if (jv.has_section("store")) {
        const auto keys = resolve_int(jv, require(jv, "store", "keys"), "keys");
        const auto shards = resolve_int(jv, require(jv, "store", "shards"), "shards");
        if (keys < 1 || shards < 1) {
          const TomlSection* sec = doc.find("store");
          toml_fail(doc.file, sec != nullptr ? sec->line : 0,
                    "store keys and shards must be >= 1");
        }
        const std::string cache_key = std::to_string(keys) + "/" + std::to_string(shards);
        auto it = store_cache.find(cache_key);
        if (it == store_cache.end()) {
          out.stores.push_back(std::make_unique<core::ShardedStore>(
              *out.base_type, keys, static_cast<int>(shards)));
          it = store_cache.emplace(cache_key, out.stores.back().get()).first;
        }
        job.type = it->second;
        desc += "|store=" + cache_key;
      } else {
        if (job.spec.algo == harness::AlgoKind::kShardedServing) {
          toml_fail(doc.file, doc.find("run") != nullptr ? doc.find("run")->line : 0,
                    "algo sharded-serving requires a [store] section");
        }
        job.type = out.base_type.get();
      }
      desc += "|type=" + job.type->name();

      job.check_linearizability = get_bool(jv, "scenario", "check", false);
      desc += job.check_linearizability ? "|check" : "|nocheck";

      out.job_descriptions.push_back(std::move(desc));
      out.spec.jobs.push_back(std::move(job));
      ++index;
    }
  }

  for (std::size_t i = 0; i < overrides.size(); ++i) {
    if (!override_used[i]) {
      throw std::runtime_error("scenario: axis override '" + overrides[i].axis +
                               "' matches no axis of " + doc.file);
    }
  }
  return out;
}

std::string campaign_digest(const ScenarioCampaign& c) {
  adt::FpHasher h;
  h.mix_bytes(c.spec.name);
  h.mix(c.job_descriptions.size());
  for (const std::string& d : c.job_descriptions) h.mix_bytes(d);
  const adt::Fingerprint fp = h.finish();
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(fp.hi),
                static_cast<unsigned long long>(fp.lo));
  return buf;
}

}  // namespace lintime::scenario
