#pragma once
// Scenario expansion: a structurally valid Scenario (scenario.hpp) becomes a
// campaign::CampaignSpec -- every sweep's axes cartesian-expanded, every
// value reference resolved, one Job per grid point -- plus the owning
// storage the jobs point into (the data type, any sharded stores).
//
// Determinism contract: expansion is a pure function of (scenario text, axis
// overrides).  Job order is sweep order in the file, points row-major with
// the last declared axis varying fastest (campaign::Grid).  Numeric axis
// values are canonicalized exactly like Grid's numeric axes (sink.hpp
// fmt_double for floats, decimal for integers), so a scenario file that
// transcribes one of the historical hard-coded grids expands to the same
// names, tags and specs -- and therefore byte-identical JSON/CSV artifacts.
//
// Every semantic error -- unknown enum value, bad reference, malformed fault
// schedule, key not applicable to the resolved kind -- throws
// std::runtime_error("file:line: message"), same format as the parser.

#include <memory>
#include <string>
#include <vector>

#include "adt/data_type.hpp"
#include "campaign/campaign.hpp"
#include "core/sharded_store.hpp"
#include "scenario/scenario.hpp"

namespace lintime::scenario {

/// Replaces the values of one named axis everywhere it is declared (the CLI
/// `--axis name=v1,v2` escape hatch; `--serving-ops N` is sugar for
/// `--axis ops=N`).  Values are canonicalized like axis literals.  An
/// override naming an axis no sweep declares is an error.
struct AxisOverride {
  std::string axis;
  std::vector<std::string> values;
};

/// An expanded campaign plus the storage its jobs borrow.  Move-only; must
/// outlive any campaign::run_campaign call on `spec`.
struct ScenarioCampaign {
  campaign::CampaignSpec spec;

  /// [scenario] bench-ops: report completed-op throughput in bench entries.
  bool bench_ops = false;

  /// One canonical line per job describing everything that determines it
  /// (params, algo, X, delays, faults, workload, ...).  campaign_digest()
  /// hashes these; golden tests pin them so a silent change to expansion
  /// semantics cannot masquerade as a no-op.
  std::vector<std::string> job_descriptions;

  /// The [scenario] type instance every non-store job points at.
  std::unique_ptr<adt::DataType> base_type;
  /// One store per distinct (keys, shards) pair, shared across the jobs
  /// that request it ([store] section).
  std::vector<std::unique_ptr<core::ShardedStore>> stores;
};

/// Instantiates a registered data type by name: queue, stack, register,
/// rmw_register, max_register, set, counter, pqueue, deque, pool, tree.
/// Throws std::runtime_error on unknown names.
[[nodiscard]] std::unique_ptr<adt::DataType> make_data_type(const std::string& name);

/// detlint:entry-point -- expansion feeds RunSpecs straight into the
/// deterministic campaign executor.
[[nodiscard]] ScenarioCampaign expand(const Scenario& sc,
                                      const std::vector<AxisOverride>& overrides = {});

/// 128-bit hex digest over the campaign name and job descriptions; the
/// checked-in corpus digests (scenarios/digests.txt) pin these.
[[nodiscard]] std::string campaign_digest(const ScenarioCampaign& c);

}  // namespace lintime::scenario
