#pragma once
// Scenario schema: which sections and keys a scenario file may contain.
// parse_scenario() runs the strict structural pass -- unknown sections,
// unknown keys, malformed axis/tag/set keys, missing required sections --
// all hard errors with file:line.  Value semantics (enum values, axis
// references, numeric ranges) are checked by expand() with the same error
// format, so every way a scenario can be wrong names the offending line.
//
// Grammar summary (full reference: DESIGN.md, "Scenario grammar"):
//
//   [scenario]  name, type, check, bench-ops
//   [model]     n, d, u, eps ("optimal" or a number)
//   [store]     keys, shards        # wraps `type` in a core::ShardedStore
//   [run]       algo, scheduler, record, max-events, x-frac, x-abs
//   [delays]    kind ("constant" | "uniform-random" | "matrix"), value,
//               lo, hi, seed, matrix
//   [clocks]    drift, rates, offsets
//   [faults]    drop, drop-seed, crash, link-drop,
//               partition-a, partition-b, partition-start, partition-cut,
//               partition-period, partition-cycles
//   [workload]  kind ("random-scripts" | "staggered-rounds" | "sharded" |
//               "worst-latency" | "none") + kind-specific keys
//   [grid]      name, axis.<a>, tag.<t>      # single anonymous sweep
//   [sweep.<s>] name, axis.<a>, tag.<t>, set.<section>.<key>
//
// Scalar values may reference an axis of the enclosing sweep: "$axis",
// "$axis*K", "$axis/K" (K a positive integer literal; * and / require an
// integer-valued axis).  Job-name and tag templates substitute every
// embedded "$axis", plus the built-in "$index" (global job index).

#include <string>

#include "scenario/toml.hpp"

namespace lintime::scenario {

/// A structurally validated scenario: the document plus the two identifiers
/// every consumer needs before expansion.
struct Scenario {
  TomlDoc doc;
  std::string name;       ///< [scenario] name
  std::string type_name;  ///< [scenario] type (registry name, e.g. "queue")
};

/// Parses and structurally validates; throws std::runtime_error
/// ("file:line: message") on any violation.
[[nodiscard]] Scenario parse_scenario(const std::string& text, std::string file);

/// Reads `path`, then parse_scenario().
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

}  // namespace lintime::scenario
