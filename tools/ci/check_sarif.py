#!/usr/bin/env python3
"""Structural validator for detlint's SARIF 2.1.0 output.

Stdlib-only: no jsonschema dependency.  Checks the invariants the upload
consumer (github/codeql-action/upload-sarif) and our triage docs rely on:
schema/version markers, the detlint driver with a complete rule catalog,
and well-formed results whose ruleIds resolve against that catalog.
"""

import json
import sys


def fail(message: str) -> None:
    print(f"check_sarif: {message}", file=sys.stderr)
    sys.exit(1)


def require(obj, key, kind, where):
    if not isinstance(obj, dict) or key not in obj:
        fail(f"{where} is missing '{key}'")
    value = obj[key]
    if not isinstance(value, kind):
        fail(f"{where}.{key} must be {kind.__name__}")
    return value


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_sarif.py report.sarif")
    with open(sys.argv[1], encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"not valid JSON: {err}")

    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("version") != "2.1.0":
        fail(f"version must be '2.1.0', got {doc.get('version')!r}")
    schema = require(doc, "$schema", str, "log")
    if "sarif-schema-2.1.0" not in schema:
        fail(f"$schema does not name sarif-schema-2.1.0: {schema}")

    runs = require(doc, "runs", list, "log")
    if len(runs) != 1:
        fail(f"expected exactly one run, got {len(runs)}")
    run = runs[0]

    tool = require(run, "tool", dict, "run")
    driver = require(tool, "driver", dict, "run.tool")
    if require(driver, "name", str, "driver") != "detlint":
        fail("driver.name must be 'detlint'")
    require(driver, "version", str, "driver")

    rules = require(driver, "rules", list, "driver")
    if not rules:
        fail("driver.rules is empty")
    rule_ids = set()
    for i, rule in enumerate(rules):
        rule_id = require(rule, "id", str, f"rules[{i}]")
        desc = require(rule, "shortDescription", dict, f"rules[{i}]")
        if not require(desc, "text", str, f"rules[{i}].shortDescription"):
            fail(f"rules[{i}].shortDescription.text is empty")
        if rule_id in rule_ids:
            fail(f"duplicate rule id {rule_id!r}")
        rule_ids.add(rule_id)

    results = require(run, "results", list, "run")
    for i, result in enumerate(results):
        where = f"results[{i}]"
        rule_id = require(result, "ruleId", str, where)
        if rule_id not in rule_ids:
            fail(f"{where}.ruleId {rule_id!r} is not in the driver catalog")
        if require(result, "level", str, where) not in ("error", "warning", "note"):
            fail(f"{where}.level is not a SARIF level")
        message = require(result, "message", dict, where)
        if not require(message, "text", str, f"{where}.message"):
            fail(f"{where}.message.text is empty")
        prints = require(result, "partialFingerprints", dict, where)
        if "detlint/v1" not in prints:
            fail(f"{where}.partialFingerprints is missing detlint/v1")
        locations = require(result, "locations", list, where)
        if len(locations) != 1:
            fail(f"{where} must carry exactly one location")
        physical = require(locations[0], "physicalLocation", dict, f"{where}.locations[0]")
        artifact = require(physical, "artifactLocation", dict, f"{where}.physicalLocation")
        if not require(artifact, "uri", str, f"{where}.artifactLocation"):
            fail(f"{where}.artifactLocation.uri is empty")
        region = require(physical, "region", dict, f"{where}.physicalLocation")
        start = require(region, "startLine", int, f"{where}.region")
        if start < 1:
            fail(f"{where}.region.startLine must be >= 1")

    print(f"check_sarif: OK ({len(results)} result(s), {len(rules)} rule(s))")


if __name__ == "__main__":
    main()
