#!/usr/bin/env python3
"""Pins the shape of `detlint --json` output.

Stdlib-only on purpose: CI (and anyone locally) can run it with a bare
python3.  Reads the JSON document from the file named on the command line,
or from stdin when no argument is given.  Exits nonzero with a message on
the first shape violation.
"""

import json
import sys

FINDING_KEYS = {
    "file": str,
    "line": int,
    "rule": str,
    "message": str,
    "excerpt": str,
    "function": str,
    "capability": str,
    "fingerprint": str,
}


def fail(message: str) -> None:
    print(f"check_detlint_json: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) > 2:
        fail("usage: check_detlint_json.py [report.json]")
    if len(sys.argv) == 2:
        with open(sys.argv[1], encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        fail(f"not valid JSON: {err}")

    if not isinstance(doc, dict):
        fail("top level must be an object")
    if set(doc) != {"count", "findings"}:
        fail(f"top-level keys must be exactly count+findings, got {sorted(doc)}")
    if not isinstance(doc["count"], int):
        fail("count must be an integer")
    if not isinstance(doc["findings"], list):
        fail("findings must be a list")
    if doc["count"] != len(doc["findings"]):
        fail(f"count={doc['count']} but {len(doc['findings'])} findings listed")

    for i, finding in enumerate(doc["findings"]):
        if not isinstance(finding, dict):
            fail(f"findings[{i}] is not an object")
        if set(finding) != set(FINDING_KEYS):
            fail(
                f"findings[{i}] keys must be exactly {sorted(FINDING_KEYS)}, "
                f"got {sorted(finding)}"
            )
        for key, expected in FINDING_KEYS.items():
            if not isinstance(finding[key], expected):
                fail(f"findings[{i}].{key} must be {expected.__name__}")
        if finding["line"] < 0:
            fail(f"findings[{i}].line is negative")
        if not finding["rule"]:
            fail(f"findings[{i}].rule is empty")
        if not finding["fingerprint"]:
            fail(f"findings[{i}].fingerprint is empty")

    print(f"check_detlint_json: OK ({doc['count']} finding(s))")


if __name__ == "__main__":
    main()
