#!/usr/bin/env python3
"""Fail-soft serving-throughput regression check for the CI bench smoke.

Compares the fresh BM_ServingThroughput_Ring/100000 ops_per_sec from a
google-benchmark JSON file against the committed baseline and prints a
GitHub `::warning::` annotation when throughput dropped by more than the
threshold (default 20%).  ALWAYS exits 0: CI runners are shared and noisy,
so a slow run must never block a merge -- the annotation puts the number in
front of a human instead.

Stdlib-only on purpose: CI (and anyone locally) can run it with a bare
python3.

    python3 tools/ci/check_bench_regress.py \
        --fresh BENCH_serving_smoke.json \
        --baseline tools/ci/bench_baseline.json
"""

import argparse
import json
import sys

BENCH_NAME = "BM_ServingThroughput_Ring/100000"


def warn(message: str) -> None:
    # `::warning::` renders as an annotation on the workflow run.
    print(f"::warning::check_bench_regress: {message}")


def fresh_ops_per_sec(path: str) -> float | None:
    """ops_per_sec of the smoke benchmark from google-benchmark JSON output.

    Returns None (after printing a warning) on any shape surprise: a missing
    artifact must surface as an annotation, not a hard failure.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        warn(f"cannot read fresh benchmark JSON {path}: {err}")
        return None
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) carry the same counters; the
        # plain repetition row is the first match and what we compare.
        if bench.get("name") == BENCH_NAME and "ops_per_sec" in bench:
            return float(bench["ops_per_sec"])
    warn(f"{path} has no '{BENCH_NAME}' entry with an ops_per_sec counter")
    return None


def baseline_ops_per_sec(path: str) -> float | None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        warn(f"cannot read baseline {path}: {err}")
        return None
    entry = doc.get(BENCH_NAME)
    if not isinstance(entry, dict) or "ops_per_sec" not in entry:
        warn(f"baseline {path} has no ops_per_sec for '{BENCH_NAME}'")
        return None
    return float(entry["ops_per_sec"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="google-benchmark JSON from this run")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="warn when fresh ops/s falls more than this fraction below baseline",
    )
    args = parser.parse_args()

    fresh = fresh_ops_per_sec(args.fresh)
    base = baseline_ops_per_sec(args.baseline)
    if fresh is None or base is None or base <= 0:
        sys.exit(0)  # fail-soft: the warning above is the whole report

    ratio = fresh / base
    line = (
        f"{BENCH_NAME}: fresh {fresh:,.0f} ops/s vs baseline {base:,.0f} ops/s "
        f"({ratio:.2f}x)"
    )
    if ratio < 1.0 - args.threshold:
        warn(f"serving throughput regressed >{args.threshold:.0%}: {line}")
    else:
        print(f"check_bench_regress: OK — {line}")
    sys.exit(0)


if __name__ == "__main__":
    main()
