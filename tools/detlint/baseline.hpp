#pragma once
// detlint ratchet baseline: known findings are recorded with stable
// fingerprints so CI fails only on *new* findings while the legacy count
// can only go down.
//
// A fingerprint is `rule@scope#context[~ordinal]` where scope is the
// qualified enclosing function (the file path at namespace scope) and
// context is the whitespace-normalized source excerpt.  Line numbers are
// deliberately absent: editing unrelated code above a baselined finding
// must not resurrect it.  The ordinal disambiguates identical (rule,
// scope, context) triples, numbered in report order.
//
// Workflow: `detlint --write-baseline detlint-baseline.json` records the
// current findings; `detlint --baseline detlint-baseline.json` then exits 0
// unless a finding outside the baseline appears.  Entries whose finding was
// fixed are reported as stale — re-run --write-baseline to ratchet the
// file down (it should only ever shrink).

#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace detlint {

struct BaselineEntry {
  std::string fingerprint;
  std::string rule;
  std::string scope;
  std::string context;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Fills `Finding::fingerprint` for every finding (idempotent; ordinals are
/// assigned in list order, so pass the full, sorted report).
void assign_fingerprints(std::vector<Finding>& findings);

Baseline baseline_from(const std::vector<Finding>& findings);

/// Parses the baseline JSON written by write_baseline.  Throws
/// std::runtime_error on malformed input.
Baseline parse_baseline(const std::string& text);
Baseline load_baseline(const std::filesystem::path& path);

/// Deterministic JSON, entries sorted by fingerprint.
void write_baseline(std::ostream& os, const Baseline& baseline);

struct BaselineDiff {
  /// Findings absent from the baseline — the ones that fail CI.
  std::vector<Finding> fresh;
  /// How many findings the baseline absorbed.
  std::size_t matched = 0;
  /// Baseline entries that no longer match any finding (fixed since the
  /// baseline was written; ratchet candidates).
  std::vector<BaselineEntry> stale;
};

BaselineDiff diff_against(const Baseline& baseline, const std::vector<Finding>& findings);

}  // namespace detlint
