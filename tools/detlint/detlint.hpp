#pragma once
// detlint — a determinism & concurrency static-analysis pass for this repo.
//
// The simulator, checker, and campaign subsystems promise byte-identical
// output for a given seed at any parallelism level (DESIGN.md, "Determinism
// contract").  detlint audits the source tree for the construct classes that
// historically break that promise: wall-clock reads, unseeded randomness,
// iteration over hash containers, pointer-derived ordering, mutable static
// state, and ad-hoc thread spawning.
//
// It is a token/line-level scanner on purpose: no libclang dependency, runs
// in milliseconds, and the rules target idioms that are reliably visible at
// the token level.  Comments and string/char literals are stripped before
// rules run, so prose never trips a rule.  False positives are expected to
// be rare and are silenced with a `detlint:allow` comment — the marker, a
// parenthesized rule list, and a reason — on the offending line (or alone
// on the line above), or with per-rule path allowlists in detlint.toml.

#include <filesystem>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace detlint {

/// One rule violation.  `file` is the path exactly as scanned (repo-relative
/// when walking configured roots), `line` is 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string excerpt;
};

struct RuleConfig {
  bool enabled = true;
  /// Glob patterns (see glob_match) of paths where this rule is off.
  std::vector<std::string> allow_paths;
};

struct Config {
  /// Directories (repo-relative) to walk when no explicit paths are given.
  std::vector<std::string> roots = {"src", "bench", "examples"};
  /// File extensions eligible for scanning.
  std::vector<std::string> extensions = {".cpp", ".hpp", ".h", ".cc"};
  /// Glob patterns of paths excluded from scanning entirely.
  std::vector<std::string> exclude;
  /// Per-rule overrides, keyed by rule id.
  std::map<std::string, RuleConfig> rules;

  [[nodiscard]] bool rule_enabled(const std::string& rule, const std::string& path) const;
};

/// All rule ids, in stable reporting order.
const std::vector<std::string>& all_rules();

/// One-line description of a rule id (empty for unknown ids).
std::string rule_description(const std::string& rule);

/// Minimal-TOML config loader (sections, string/bool scalars, single-line
/// string arrays).  Throws std::runtime_error with file:line on bad syntax
/// or unknown rule ids.
Config load_config(const std::filesystem::path& path);

/// `*` matches any run of characters (including '/'), `?` exactly one.
/// Patterns are matched against the full repo-relative path.
bool glob_match(const std::string& pattern, const std::string& path);

/// Scans one file's contents.  `path` is used for reporting and for
/// allowlist matching.
std::vector<Finding> scan_source(const std::string& path, const std::string& text,
                                 const Config& config);

/// Walks the configured roots under `root` (or `paths`, when non-empty:
/// files or directories, repo-relative) and scans every eligible file.
/// File order — and therefore finding order — is sorted, so output is
/// deterministic.  Throws std::runtime_error if a requested path is absent.
std::vector<Finding> scan_tree(const std::filesystem::path& root, const Config& config,
                               const std::vector<std::string>& paths = {});

/// Human-readable report: "file:line: [rule] message" plus the source line.
void write_human(std::ostream& os, const std::vector<Finding>& findings);

/// Machine-readable report: {"count": N, "findings": [...]}.
std::string to_json(const std::vector<Finding>& findings);

}  // namespace detlint
