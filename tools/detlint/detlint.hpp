#pragma once
// detlint — a determinism & concurrency static-analysis pass for this repo.
//
// The simulator, checker, and campaign subsystems promise byte-identical
// output for a given seed at any parallelism level (DESIGN.md, "Determinism
// contract").  detlint audits the source tree for the construct classes that
// historically break that promise: wall-clock reads, unseeded randomness,
// iteration over hash containers, pointer-derived ordering, mutable static
// state, and ad-hoc thread spawning.
//
// v2 layers an interprocedural pass on top of the original token scanner:
//
//   1. a symbol pass recovers function definitions (qualified names, body
//      extents) and `detlint:capability` grant markers (symbols.hpp) from
//      the token stream — heuristic, no full C++ parse (symbols.hpp);
//   2. a call-graph pass links call tokens to known definitions by
//      qualified-name suffix / base-name matching (callgraph.hpp);
//   3. a reachability pass flags banned tokens whose enclosing function is
//      reachable from a deterministic entry point (detlint.toml,
//      `[capability.deterministic] entry-points`) without crossing a
//      function granted the matching capability (reachability.hpp);
//   4. a ratchet baseline keyed by stable fingerprints — rule + qualified
//      function + token context, never line numbers — so CI fails only on
//      *new* findings (baseline.hpp);
//   5. SARIF 2.1.0 output for PR-diff annotation in CI (sarif.hpp).
//
// It remains a token/line-level tool on purpose: no libclang dependency,
// runs in milliseconds, and the rules target idioms that are reliably
// visible at the token level.  Comments and string/char literals are
// stripped before rules run, so prose never trips a rule.  False positives
// are silenced with a `detlint:allow` comment — the marker, a parenthesized
// rule list, and a reason — on the offending line (or alone on the line
// above), or with per-rule path allowlists in detlint.toml.  Banned tokens
// inside a function carrying a matching capability grant are sanctioned at
// function granularity (the v2 replacement for whole-file allowlists on
// code that *is* the exception, e.g. the campaign executor's thread pool).

#include <filesystem>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace detlint {

/// One rule violation.  `file` is the path exactly as scanned (repo-relative
/// when walking configured roots), `line` is 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string excerpt;
  /// Qualified enclosing function ("" at namespace scope / unknown).
  std::string function;
  /// Capability implied by the rule ("" when the rule maps to none).
  std::string capability;
  /// Stable identity for baselines (see baseline.hpp); line-number free.
  std::string fingerprint;
};

struct RuleConfig {
  bool enabled = true;
  /// Glob patterns (see glob_match) of paths where this rule is off.
  std::vector<std::string> allow_paths;
};

struct Config {
  /// Directories (repo-relative) to walk when no explicit paths are given.
  std::vector<std::string> roots = {"src", "bench", "examples"};
  /// File extensions eligible for scanning.
  std::vector<std::string> extensions = {".cpp", ".hpp", ".h", ".cc"};
  /// Glob patterns of paths excluded from scanning entirely.
  std::vector<std::string> exclude;
  /// Per-rule overrides, keyed by rule id.
  std::map<std::string, RuleConfig> rules;
  /// Qualified names of deterministic entry points
  /// (`[capability.deterministic] entry-points` in detlint.toml).  Matched
  /// against recovered definitions by `::`-boundary suffix, so
  /// "lin::check" finds "lintime::lin::check".
  std::vector<std::string> deterministic_entries;

  [[nodiscard]] bool rule_enabled(const std::string& rule, const std::string& path) const;
};

/// All rule ids, in stable reporting order.
const std::vector<std::string>& all_rules();

/// One-line description of a rule id (empty for unknown ids).
std::string rule_description(const std::string& rule);

/// All capability ids grantable via the `detlint:capability` marker.
const std::vector<std::string>& all_capabilities();

/// Capability implied by a rule id ("" for rules outside the model).
std::string rule_capability(const std::string& rule);

/// Minimal-TOML config loader (sections, string/bool scalars, single-line
/// string arrays).  Throws std::runtime_error with file:line on bad syntax
/// or unknown rule ids.
Config load_config(const std::filesystem::path& path);

/// `*` matches any run of characters (including '/'), `?` exactly one.
/// Patterns are matched against the full repo-relative path.
bool glob_match(const std::string& pattern, const std::string& path);

/// Scans one file's contents (flat rules + per-file capability grants; no
/// cross-file reachability).  `path` is used for reporting and for
/// allowlist matching.
std::vector<Finding> scan_source(const std::string& path, const std::string& text,
                                 const Config& config);

// ---------------------------------------------------------------------------
// Whole-tree analysis (flat rules + interprocedural reachability + audit).
// ---------------------------------------------------------------------------

/// Stale-suppression audit (--audit-suppressions): every suppression channel
/// that no longer suppresses anything.  Warn-only by design — stale entries
/// are debt, not errors.
struct AuditReport {
  struct StaleInline {
    std::string file;
    int line = 0;       // line carrying the detlint:allow marker
    std::string rule;
  };
  struct StaleAllowGlob {
    std::string rule;
    std::string pattern;
  };
  struct StaleGrant {
    std::string file;
    int line = 0;       // function header line
    std::string function;
    std::string capability;
  };
  std::vector<StaleInline> stale_inline;
  std::vector<StaleAllowGlob> stale_allow_globs;
  std::vector<StaleGrant> stale_grants;

  [[nodiscard]] bool empty() const {
    return stale_inline.empty() && stale_allow_globs.empty() && stale_grants.empty();
  }
};

struct Analysis {
  /// Flat + det-reachability findings, sorted by (file, line, rule), with
  /// fingerprints assigned.
  std::vector<Finding> findings;
  AuditReport audit;
};

/// Walks the configured roots under `root` (or `paths`, when non-empty:
/// files or directories, repo-relative) and runs every pass.  File order —
/// and therefore finding order — is sorted, so output is deterministic.
/// Throws std::runtime_error if a requested path is absent.
Analysis analyze_tree(const std::filesystem::path& root, const Config& config,
                      const std::vector<std::string>& paths = {});

/// Back-compat wrapper: analyze_tree(...).findings.
std::vector<Finding> scan_tree(const std::filesystem::path& root, const Config& config,
                               const std::vector<std::string>& paths = {});

/// Human-readable report: "file:line: [rule] message" plus the source line.
void write_human(std::ostream& os, const std::vector<Finding>& findings);

/// Human-readable audit report (one "stale ..." line per entry).
void write_audit(std::ostream& os, const AuditReport& report);

/// Machine-readable report: {"count": N, "findings": [...]} where each
/// finding carries file, line, rule, message, excerpt, function,
/// capability, and fingerprint (tools/ci/check_detlint_json.py pins the
/// shape).
std::string to_json(const std::vector<Finding>& findings);

}  // namespace detlint
