// detlint scanner: comment/string stripping, inline suppressions, the flat
// rule engines, and the per-file scan that layers capability grants on top.
// Everything here is deliberately line/token-level — see detlint.hpp for the
// rationale.  Cross-file passes (call graph, reachability, baselines) live
// in analyze.cpp and friends.

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <stdexcept>

#include "detail.hpp"
#include "detlint.hpp"
#include "scan_internal.hpp"
#include "symbols.hpp"

namespace detlint {

namespace detail {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_word(const std::string& s, const std::string& word, std::size_t pos) {
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

bool has_word(const std::string& s, const std::string& word) {
  return find_word(s, word) != std::string::npos;
}

std::size_t skip_ws(const std::string& s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])) != 0) ++pos;
  return pos;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      if (!cur.empty() && cur.back() == '\r') cur.pop_back();
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

std::size_t match_angle(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    else if (s[i] == '>') {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

namespace {

bool is_hex(char c) { return std::isxdigit(static_cast<unsigned char>(c)) != 0; }

bool ends_with_backslash(const std::string& line) {
  return !line.empty() && line.back() == '\\';
}

/// True if the '"' at `i` opens a raw string literal: directly preceded by
/// R carrying a valid encoding prefix (R, uR, u8R, UR, LR) that is not the
/// tail of a longer identifier.  `MACRO_R"x(y)"` is an ordinary string after
/// a macro token, not a raw string with delimiter "x" — mis-classifying it
/// used to swallow everything up to a `)x"` that never comes.
bool is_raw_quote(const std::string& line, std::size_t i) {
  if (i == 0 || line[i - 1] != 'R') return false;
  const std::size_t j = i - 1;  // index of 'R'
  if (j == 0) return true;
  const char p = line[j - 1];
  if (!is_ident(p)) return true;
  if ((p == 'u' || p == 'U' || p == 'L') && (j < 2 || !is_ident(line[j - 2]))) return true;
  if (p == '8' && j >= 2 && line[j - 2] == 'u' && (j < 3 || !is_ident(line[j - 3]))) {
    return true;
  }
  return false;
}

}  // namespace

StrippedSource strip_comments_and_strings(const std::vector<std::string>& raw) {
  StrippedSource out;
  out.code.reserve(raw.size());
  out.comments.reserve(raw.size());
  bool in_block_comment = false;
  bool in_line_comment = false;  // backslash-continued // comment
  bool in_raw_string = false;
  bool in_string = false;  // ordinary literal spliced across lines by '\'
  std::string raw_terminator;   // ")delim\"" of the active raw string

  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    std::string comment(line.size(), ' ');
    std::size_t i = 0;
    if (in_line_comment) {
      for (std::size_t k = 0; k < line.size(); ++k) comment[k] = line[k];
      in_line_comment = ends_with_backslash(line);
      out.code.push_back(std::move(code));
      out.comments.push_back(std::move(comment));
      continue;
    }
    while (i < line.size()) {
      if (in_block_comment) {
        const std::size_t end = line.find("*/", i);
        const std::size_t stop = end == std::string::npos ? line.size() : end;
        for (std::size_t k = i; k < stop; ++k) comment[k] = line[k];
        if (end == std::string::npos) { i = line.size(); break; }
        in_block_comment = false;
        i = end + 2;
        continue;
      }
      if (in_raw_string) {
        const std::size_t end = line.find(raw_terminator, i);
        if (end == std::string::npos) { i = line.size(); break; }
        in_raw_string = false;
        i = end + raw_terminator.size();
        continue;
      }
      if (in_string) {
        while (i < line.size()) {
          if (line[i] == '\\') { i += 2; continue; }
          if (line[i] == '"') { ++i; in_string = false; break; }
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        for (std::size_t k = i + 2; k < line.size(); ++k) comment[k] = line[k];
        in_line_comment = ends_with_backslash(line);
        break;  // line comment
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"') {
        if (is_raw_quote(line, i)) {
          // Raw string: R"delim( ... )delim".  The delimiter cannot contain
          // parentheses or newlines, so the first '(' closes it.
          const std::size_t open = line.find('(', i + 1);
          const std::string delim =
              open == std::string::npos ? "" : line.substr(i + 1, open - i - 1);
          raw_terminator = ")" + delim + "\"";
          const std::size_t end =
              open == std::string::npos ? std::string::npos : line.find(raw_terminator, open);
          if (end == std::string::npos) {
            in_raw_string = true;
            i = line.size();
          } else {
            i = end + raw_terminator.size();
          }
          continue;
        }
        in_string = true;
        ++i;
        continue;
      }
      if (c == '\'') {
        // Digit separator (1'000) keeps scanning as code.
        if (i > 0 && is_hex(line[i - 1]) && i + 1 < line.size() && is_hex(line[i + 1])) {
          code[i] = ' ';
          ++i;
          continue;
        }
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') { i += 2; continue; }
          if (line[i] == '\'') { ++i; break; }
          ++i;
        }
        continue;
      }
      code[i] = c;
      ++i;
    }
    // A string literal only survives the line boundary when the newline is
    // escaped; otherwise the (malformed) literal ends with the line.
    if (in_string && !ends_with_backslash(line)) in_string = false;
    out.code.push_back(std::move(code));
    out.comments.push_back(std::move(comment));
  }
  return out;
}

}  // namespace detail

namespace {

using detail::find_word;
using detail::has_word;
using detail::is_ident;
using detail::skip_ws;
using detail::StrippedSource;
using detail::trim;

/// Joins up to `max_lines` code lines starting at `start` — enough context
/// for declarations and for-headers that wrap.
std::string join_lines(const std::vector<std::string>& code, std::size_t start,
                       std::size_t max_lines = 4) {
  std::string out;
  for (std::size_t i = start; i < code.size() && i < start + max_lines; ++i) {
    out += code[i];
    out += ' ';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Inline suppressions: a comment holding the `detlint:allow` marker followed
// by a parenthesized, comma-separated rule list and an optional ": reason".
// A suppression on a code-bearing line covers that line; a suppression on a
// comment-only line covers the next line.  (The marker is spelled out here
// without its parenthesis so this very comment does not parse as one.)
// ---------------------------------------------------------------------------

struct Suppressions {
  // target line (1-based) -> suppressed rule ids
  std::map<int, std::set<std::string>> by_line;
  // (target line, rule) -> line carrying the marker (for audit reporting)
  std::map<std::pair<int, std::string>, int> marker_line;
  std::vector<Finding> errors;  // unknown rule ids => bad-suppression findings

  [[nodiscard]] bool covers(int line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) != 0;
  }
};

Suppressions collect_suppressions(const std::string& path, const std::vector<std::string>& raw,
                                  const StrippedSource& src) {
  static const std::string kMarker = "detlint:allow(";
  Suppressions sup;
  for (std::size_t i = 0; i < src.comments.size(); ++i) {
    const std::string& comment = src.comments[i];
    const std::size_t at = comment.find(kMarker);
    if (at == std::string::npos) continue;
    const std::size_t open = at + kMarker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) {
      sup.errors.push_back({path, static_cast<int>(i + 1), "bad-suppression",
                            "unterminated detlint:allow(...)", trim(raw[i]), "", "", ""});
      continue;
    }
    // Code-bearing lines shield themselves; comment-only lines shield the
    // next code-bearing line (so a multi-line explanatory comment works no
    // matter which of its lines carries the marker).
    std::size_t target_idx = i;
    if (trim(src.code[i]).empty()) {
      target_idx = i + 1;
      while (target_idx < src.code.size() && trim(src.code[target_idx]).empty()) ++target_idx;
    }
    const int target = static_cast<int>(target_idx + 1);
    std::stringstream list(comment.substr(open, close - open));
    std::string id;
    while (std::getline(list, id, ',')) {
      id = trim(id);
      if (id.empty()) continue;
      const auto& known = all_rules();
      if (std::find(known.begin(), known.end(), id) == known.end()) {
        sup.errors.push_back({path, static_cast<int>(i + 1), "bad-suppression",
                              "unknown rule '" + id + "' in detlint:allow", trim(raw[i]), "",
                              "", ""});
        continue;
      }
      sup.by_line[target].insert(id);
      sup.marker_line[{target, id}] = static_cast<int>(i + 1);
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Rule engines.  Each takes the stripped code lines and appends findings.
// ---------------------------------------------------------------------------

using Sink = std::vector<Finding>;

void emit(Sink& out, const std::string& path, std::size_t line_idx, const std::string& rule,
          const std::string& message, const std::vector<std::string>& raw) {
  out.push_back({path, static_cast<int>(line_idx + 1), rule, message,
                 line_idx < raw.size() ? trim(raw[line_idx]) : "", "", "", ""});
}

void rule_wall_clock(const std::string& path, const std::vector<std::string>& code,
                     const std::vector<std::string>& raw, Sink& out) {
  static const std::vector<std::string> kCalls = {"gettimeofday", "clock_gettime",
                                                  "timespec_get", "localtime", "gmtime",
                                                  "mktime"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    bool hit = line.find("_clock::now") != std::string::npos ||
               line.find("std::clock(") != std::string::npos ||
               line.find("std::time(") != std::string::npos;
    for (const auto& call : kCalls) {
      if (hit) break;
      hit = find_word(line, call) != std::string::npos;
    }
    if (!hit) {
      // Bare `time(nullptr)` / `time(NULL)` / `time(0)`.
      const std::size_t t = find_word(line, "time");
      if (t != std::string::npos) {
        std::size_t p = skip_ws(line, t + 4);
        if (p < line.size() && line[p] == '(') {
          p = skip_ws(line, p + 1);
          hit = line.compare(p, 7, "nullptr") == 0 || line.compare(p, 4, "NULL") == 0 ||
                (p < line.size() && line[p] == '0');
        }
      }
    }
    if (hit) {
      emit(out, path, i, "wall-clock",
           "wall-clock read: output would depend on real time; use the simulated clock or "
           "plumb a timestamp in",
           raw);
    }
  }
}

void rule_global_rand(const std::string& path, const std::vector<std::string>& code,
                      const std::vector<std::string>& raw, Sink& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    bool hit = has_word(line, "srand") || has_word(line, "random_device") ||
               has_word(line, "getrandom");
    if (!hit) {
      const std::size_t r = find_word(line, "rand");
      hit = r != std::string::npos && skip_ws(line, r + 4) < line.size() &&
            line[skip_ws(line, r + 4)] == '(';
    }
    if (hit) {
      emit(out, path, i, "global-rand",
           "unseeded/global randomness: results are not reproducible from the run seed; "
           "use a std::mt19937_64 seeded from the RunSpec",
           raw);
    }
  }
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> kEngines = {
      "mt19937",      "mt19937_64",    "default_random_engine",
      "minstd_rand",  "minstd_rand0",  "knuth_b",
      "ranlux24",     "ranlux48",      "ranlux24_base",
      "ranlux48_base"};
  return kEngines;
}

/// True if `name` is seeded somewhere in the file: `name(args)` (ctor init
/// list), `name{args}`, `name = ...`, or `name.seed(...)`.
bool seeded_elsewhere(const std::vector<std::string>& code, const std::string& name) {
  for (const std::string& line : code) {
    std::size_t pos = 0;
    while ((pos = find_word(line, name, pos)) != std::string::npos) {
      std::size_t p = skip_ws(line, pos + name.size());
      if (p < line.size()) {
        if (line[p] == '=' && (p + 1 >= line.size() || line[p + 1] != '=')) return true;
        if ((line[p] == '(' || line[p] == '{') && skip_ws(line, p + 1) < line.size() &&
            line[skip_ws(line, p + 1)] != ')' && line[skip_ws(line, p + 1)] != '}') {
          return true;
        }
        if (line.compare(p, 6, ".seed(") == 0) return true;
      }
      pos += name.size();
    }
  }
  return false;
}

void rule_unseeded_engine(const std::string& path, const std::vector<std::string>& code,
                          const std::vector<std::string>& raw, Sink& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (const std::string& engine : engine_names()) {
      std::size_t pos = 0;
      while ((pos = find_word(line, engine, pos)) != std::string::npos) {
        std::size_t p = skip_ws(line, pos + engine.size());
        pos += engine.size();
        // `std::mt19937_64(...)` / `{...}` temporary: unseeded iff empty args.
        if (p < line.size() && (line[p] == '(' || line[p] == '{')) {
          const char close = line[p] == '(' ? ')' : '}';
          if (skip_ws(line, p + 1) < line.size() && line[skip_ws(line, p + 1)] == close) {
            emit(out, path, i, "unseeded-engine",
                 "RNG engine constructed without a seed: sequence depends on the "
                 "implementation default, not the run seed",
                 raw);
          }
          continue;
        }
        // Declaration `mt19937_64 name;` — flag unless the name is seeded
        // elsewhere in this file (constructor init list, assignment, .seed).
        std::size_t q = p;
        while (q < line.size() && is_ident(line[q])) ++q;
        if (q == p) continue;  // template arg / nested-name use, not a decl
        const std::string name = line.substr(p, q - p);
        const std::size_t after = skip_ws(line, q);
        const bool bare_decl = after < line.size() && line[after] == ';';
        const bool empty_braces = after + 1 < line.size() && line[after] == '{' &&
                                  line[skip_ws(line, after + 1)] == '}';
        if ((bare_decl || empty_braces) && !seeded_elsewhere(code, name)) {
          emit(out, path, i, "unseeded-engine",
               "RNG engine '" + name +
                   "' is default-constructed and never seeded in this file; seed it from "
                   "the RunSpec so runs replay",
               raw);
        }
      }
    }
  }
}

struct UnorderedDecls {
  std::set<std::string> vars;     // variables of unordered container type
  std::set<std::string> aliases;  // using X = std::unordered_map<...>
};

UnorderedDecls collect_unordered_decls(const std::vector<std::string>& code) {
  static const std::vector<std::string> kTypes = {"unordered_map", "unordered_set",
                                                  "unordered_multimap", "unordered_multiset"};
  UnorderedDecls decls;
  // Pass 1: aliases, so `using Index = std::unordered_map<...>; Index x;` is
  // still tracked.
  for (const std::string& line : code) {
    const std::size_t u = find_word(line, "using");
    if (u == std::string::npos) continue;
    bool unordered = false;
    for (const auto& t : kTypes) unordered = unordered || has_word(line, t);
    if (!unordered) continue;
    std::size_t p = skip_ws(line, u + 5);
    std::size_t q = p;
    while (q < line.size() && is_ident(line[q])) ++q;
    if (q > p && skip_ws(line, q) < line.size() && line[skip_ws(line, q)] == '=') {
      decls.aliases.insert(line.substr(p, q - p));
    }
  }
  // Pass 2: variable declarations `unordered_map<...> name` / `Alias name`.
  for (const std::string& line : code) {
    std::vector<std::string> types(kTypes);
    types.insert(types.end(), decls.aliases.begin(), decls.aliases.end());
    for (const auto& type : types) {
      std::size_t pos = 0;
      while ((pos = find_word(line, type, pos)) != std::string::npos) {
        std::size_t p = skip_ws(line, pos + type.size());
        pos += type.size();
        if (p < line.size() && line[p] == '<') {
          const std::size_t close = detail::match_angle(line, p);
          if (close == std::string::npos) continue;
          p = skip_ws(line, close + 1);
        }
        while (p < line.size() && (line[p] == '&' || line[p] == '*')) p = skip_ws(line, p + 1);
        std::size_t q = p;
        while (q < line.size() && is_ident(line[q])) ++q;
        if (q > p) {
          const std::string name = line.substr(p, q - p);
          if (name != "const" && name != "constexpr") decls.vars.insert(name);
        }
      }
    }
  }
  return decls;
}

void rule_unordered_iter(const std::string& path, const std::vector<std::string>& code,
                         const std::vector<std::string>& raw, Sink& out) {
  const UnorderedDecls decls = collect_unordered_decls(code);
  static const std::vector<std::string> kBegin = {".begin", ".cbegin", ".rbegin", ".crbegin",
                                                  "->begin", "->cbegin"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    // Range-for whose range expression mentions an unordered variable (the
    // for-header may wrap, so analyze a small joined window).
    const std::size_t f = find_word(line, "for");
    if (f != std::string::npos) {
      const std::string stmt = join_lines(code, i);
      const std::size_t fs = find_word(stmt, "for", f);
      std::size_t p = fs == std::string::npos ? std::string::npos : skip_ws(stmt, fs + 3);
      if (p != std::string::npos && p < stmt.size() && stmt[p] == '(') {
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t close = std::string::npos;
        for (std::size_t k = p; k < stmt.size(); ++k) {
          if (stmt[k] == '(') ++depth;
          else if (stmt[k] == ')') {
            --depth;
            if (depth == 0) { close = k; break; }
          } else if (stmt[k] == ':' && depth == 1 &&
                     (k + 1 >= stmt.size() || stmt[k + 1] != ':') &&
                     (k == 0 || stmt[k - 1] != ':')) {
            colon = k;
          }
        }
        if (colon != std::string::npos && close != std::string::npos) {
          const std::string range = stmt.substr(colon + 1, close - colon - 1);
          bool hit = range.find("unordered_") != std::string::npos;
          for (const auto& name : decls.vars) hit = hit || has_word(range, name);
          for (const auto& name : decls.aliases) hit = hit || has_word(range, name);
          if (hit) {
            emit(out, path, i, "unordered-iter",
                 "iteration over an unordered container: order depends on hashing/allocation; "
                 "iterate a sorted view before this reaches any serialized output",
                 raw);
          }
        }
      }
    }
    // Explicit iterators: `um.begin()` and friends.
    for (const auto& name : decls.vars) {
      bool hit = false;
      std::size_t at = 0;
      while (!hit && (at = find_word(line, name, at)) != std::string::npos) {
        for (const auto& b : kBegin) {
          if (line.compare(at + name.size(), b.size(), b) == 0) { hit = true; break; }
        }
        at += name.size();
      }
      if (hit) {
        emit(out, path, i, "unordered-iter",
             "iterator over unordered container '" + name +
                 "': order depends on hashing/allocation",
             raw);
      }
    }
  }
}

void rule_pointer_key(const std::string& path, const std::vector<std::string>& code,
                      const std::vector<std::string>& raw, Sink& out) {
  static const std::vector<std::string> kOrdered = {"map", "set", "multimap", "multiset",
                                                    "less", "greater"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (const auto& type : kOrdered) {
      std::size_t pos = 0;
      while ((pos = find_word(line, type, pos)) != std::string::npos) {
        const std::size_t open = skip_ws(line, pos + type.size());
        pos += type.size();
        if (open >= line.size() || line[open] != '<') continue;
        // First top-level template argument.
        int depth = 0;
        std::size_t end = std::string::npos;
        for (std::size_t k = open; k < line.size(); ++k) {
          if (line[k] == '<' || line[k] == '(') ++depth;
          else if (line[k] == '>' || line[k] == ')') {
            --depth;
            if (depth == 0) { end = k; break; }
          } else if (line[k] == ',' && depth == 1) {
            end = k;
            break;
          }
        }
        if (end == std::string::npos) continue;
        const std::string key = trim(line.substr(open + 1, end - open - 1));
        if (!key.empty() && key.back() == '*') {
          emit(out, path, i, "pointer-key",
               "pointer-keyed ordered container/comparator: iteration order depends on "
               "allocation addresses (ASLR); key by a stable id, or use an unordered "
               "container and never iterate it",
               raw);
        }
      }
    }
  }
}

void rule_mutable_static(const std::string& path, const std::vector<std::string>& code,
                         const std::vector<std::string>& raw, Sink& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::size_t s = find_word(code[i], "static");
    if (s == std::string::npos) continue;
    // Join until the statement resolves into either a declarator terminator
    // (';'), an initializer ('='), or a body/ctor-args ('{' / '(').
    std::string stmt = join_lines(code, i);
    const std::size_t start = find_word(stmt, "static");
    if (start == std::string::npos) continue;
    stmt = stmt.substr(start + 6);
    const std::size_t cut = stmt.find_first_of(";{");
    if (cut != std::string::npos) stmt = stmt.substr(0, cut);
    // Immutable or non-variable statics are fine.
    if (has_word(stmt, "const") || has_word(stmt, "constexpr") || has_word(stmt, "class") ||
        has_word(stmt, "struct") || has_word(stmt, "union") || has_word(stmt, "enum")) {
      continue;
    }
    const std::size_t paren = stmt.find('(');
    const std::size_t eq = stmt.find('=');
    const bool is_function =
        paren != std::string::npos && (eq == std::string::npos || paren < eq);
    if (is_function) continue;
    if (trim(stmt).empty()) continue;  // `static` alone (e.g. macro fragment)
    emit(out, path, i, "mutable-static",
         "mutable static/global state: shared across runs and threads, so results can "
         "depend on execution history or interleaving; make it const/constexpr or pass "
         "state explicitly",
         raw);
  }
}

void rule_thread_spawn(const std::string& path, const std::vector<std::string>& code,
                       const std::vector<std::string>& raw, Sink& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    bool hit = line.find("std::async") != std::string::npos ||
               line.find("std::jthread") != std::string::npos ||
               line.find(".detach(") != std::string::npos ||
               has_word(line, "pthread_create");
    if (!hit) {
      std::size_t pos = 0;
      while ((pos = line.find("std::thread", pos)) != std::string::npos) {
        const std::size_t after = pos + 11;
        // `std::thread::hardware_concurrency` is a pure query, not a spawn.
        if (line.compare(after, 2, "::") != 0 &&
            (after >= line.size() || !is_ident(line[after]))) {
          hit = true;
          break;
        }
        pos = after;
      }
    }
    if (hit) {
      emit(out, path, i, "thread-spawn",
           "thread creation outside a function granted the 'threads' capability: "
           "parallelism must stay behind index-keyed result slots (or an equivalent "
           "deterministic protocol) to keep output order-independent",
           raw);
    }
  }
}

/// The typed-payload refactor removed std::any from the simulator message
/// plane (sim::Payload / PayloadVal carry a closed set of shapes inline);
/// this rule keeps it out of the hot-loop trees so the per-send heap
/// allocation + RTTI dispatch cannot creep back.  Scope is deliberately
/// narrow — src/sim, src/core and src/baseline — because std::any is fine
/// in cold code (tools, tests) and banning it repo-wide would be dogma, not
/// determinism.  `std::any_of` (the algorithm) must NOT match: the token
/// check requires a non-identifier character after "any".
void rule_any_payload(const std::string& path, const std::vector<std::string>& code,
                      const std::vector<std::string>& raw, Sink& out) {
  static const std::vector<std::string> kScopes = {"src/sim/", "src/core/", "src/baseline/"};
  bool in_scope = false;
  for (const auto& scope : kScopes) {
    in_scope = in_scope || path.compare(0, scope.size(), scope) == 0;
  }
  if (!in_scope) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    bool hit = has_word(line, "any_cast") || has_word(line, "make_any");
    if (!hit) {
      std::size_t pos = 0;
      while ((pos = line.find("std::any", pos)) != std::string::npos) {
        const std::size_t end = pos + 8;  // len("std::any")
        if (end >= line.size() || !is_ident(line[end])) {
          hit = true;
          break;
        }
        pos = end;  // std::any_of / std::any_thing: a longer identifier
      }
    }
    if (!hit) {
      const std::size_t h = line.find('#');
      hit = h != std::string::npos && find_word(line, "include", h) != std::string::npos &&
            line.find("<any>") != std::string::npos;
    }
    if (hit) {
      emit(out, path, i, "any-payload",
           "std::any in the simulator hot-loop trees: payloads are typed (sim::Payload / "
           "PayloadVal); type-erased values reintroduce a heap allocation and RTTI "
           "dispatch per send",
           raw);
    }
  }
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "wall-clock",     "global-rand",    "unseeded-engine", "unordered-iter",
      "pointer-key",    "mutable-static", "thread-spawn",    "any-payload",
      "bad-suppression", "bad-capability", "det-reachability"};
  return kRules;
}

std::string rule_description(const std::string& rule) {
  if (rule == "wall-clock") return "wall-clock reads (std::chrono::*_clock::now, time(), ...)";
  if (rule == "global-rand") return "unseeded/global randomness (rand, srand, random_device)";
  if (rule == "unseeded-engine") return "RNG engines constructed without an explicit seed";
  if (rule == "unordered-iter") return "iteration over std::unordered_{map,set} (hash order)";
  if (rule == "pointer-key") return "pointer-keyed ordered containers or comparators";
  if (rule == "mutable-static") return "mutable static/global state";
  if (rule == "thread-spawn") {
    return "std::thread/std::async/detach outside a 'threads'-granted function";
  }
  if (rule == "any-payload") {
    return "std::any / any_cast / make_any in the simulator hot-loop trees "
           "(src/sim, src/core, src/baseline)";
  }
  if (rule == "bad-suppression") return "malformed or unknown detlint:allow(...) markers";
  if (rule == "bad-capability") {
    return "malformed/unknown/unattached detlint:capability(...) annotations";
  }
  if (rule == "det-reachability") {
    return "banned token reachable from a deterministic entry point without a grant";
  }
  return "";
}

const std::vector<std::string>& all_capabilities() {
  static const std::vector<std::string> kCaps = {"threads", "rng", "wall-clock", "unordered",
                                                 "type-erasure"};
  return kCaps;
}

std::string rule_capability(const std::string& rule) {
  if (rule == "thread-spawn") return "threads";
  if (rule == "wall-clock") return "wall-clock";
  if (rule == "global-rand" || rule == "unseeded-engine") return "rng";
  if (rule == "unordered-iter" || rule == "pointer-key") return "unordered";
  if (rule == "any-payload") return "type-erasure";
  return "";
}

bool Config::rule_enabled(const std::string& rule, const std::string& path) const {
  const auto it = rules.find(rule);
  if (it == rules.end()) return true;
  if (!it->second.enabled) return false;
  for (const auto& pattern : it->second.allow_paths) {
    if (glob_match(pattern, path)) return false;
  }
  return true;
}

namespace internal {

FileScan scan_file(const std::string& path, const std::string& text, const Config& config) {
  FileScan fs;
  fs.path = path;
  fs.raw = detail::split_lines(text);
  fs.src = detail::strip_comments_and_strings(fs.raw);
  fs.symbols = extract_symbols(path, fs.raw, fs.src);
  Suppressions sup = collect_suppressions(path, fs.raw, fs.src);
  fs.suppressions = sup.by_line;
  fs.suppression_marker_line = sup.marker_line;

  const std::vector<std::string>& code = fs.src.code;
  Sink found;
  rule_wall_clock(path, code, fs.raw, found);
  rule_global_rand(path, code, fs.raw, found);
  rule_unseeded_engine(path, code, fs.raw, found);
  rule_unordered_iter(path, code, fs.raw, found);
  rule_pointer_key(path, code, fs.raw, found);
  rule_mutable_static(path, code, fs.raw, found);
  rule_thread_spawn(path, code, fs.raw, found);
  rule_any_payload(path, code, fs.raw, found);

  std::sort(found.begin(), found.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  // A line can legitimately trip one rule twice (two bad declarations); a
  // duplicate of the same (line, rule) adds noise, not information.
  found.erase(std::unique(found.begin(), found.end(),
                          [](const Finding& a, const Finding& b) {
                            return a.line == b.line && a.rule == b.rule;
                          }),
              found.end());
  for (Finding& f : found) {
    f.capability = rule_capability(f.rule);
    if (const FunctionDef* fn = enclosing_function(fs.symbols, f.line)) {
      f.function = fn->qualified_name;
    }
  }
  fs.raw_findings = std::move(found);

  for (const Finding& f : fs.raw_findings) {
    // Function-granularity capability grants come first: a granted token is
    // sanctioned, so a redundant inline allow on it shows up as stale in
    // the audit instead of silently double-covering.
    if (!f.capability.empty()) {
      const FunctionDef* fn = enclosing_function(fs.symbols, f.line);
      if (fn != nullptr && fn->capabilities.count(f.capability) != 0) {
        const int idx = static_cast<int>(fn - fs.symbols.functions.data());
        fs.grants_hit.insert({idx, f.capability});
        continue;
      }
    }
    if (sup.covers(f.line, f.rule)) {
      fs.suppressions_hit.insert({f.line, f.rule});
      continue;
    }
    if (!config.rule_enabled(f.rule, path)) continue;
    fs.kept.push_back(f);
  }
  for (const Finding& e : sup.errors) {
    if (config.rule_enabled(e.rule, path)) fs.kept.push_back(e);
  }
  for (const Finding& e : fs.symbols.errors) {
    if (config.rule_enabled(e.rule, path) && !sup.covers(e.line, e.rule)) {
      fs.kept.push_back(e);
    }
  }
  std::sort(fs.kept.begin(), fs.kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  fs.kept.erase(std::unique(fs.kept.begin(), fs.kept.end(),
                            [](const Finding& a, const Finding& b) {
                              return a.line == b.line && a.rule == b.rule;
                            }),
                fs.kept.end());
  return fs;
}

}  // namespace internal

std::vector<Finding> scan_source(const std::string& path, const std::string& text,
                                 const Config& config) {
  return internal::scan_file(path, text, config).kept;
}

}  // namespace detlint
