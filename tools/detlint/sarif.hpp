#pragma once
// detlint SARIF 2.1.0 output: one run, the detlint driver with the full
// rule catalog, one result per finding.  CI uploads the file via
// github/codeql-action/upload-sarif so findings annotate PR diffs;
// tools/ci/check_sarif.py pins the structure.

#include <ostream>
#include <vector>

#include "detlint.hpp"

namespace detlint {

/// Writes a complete SARIF 2.1.0 log.  `findings` should already carry
/// fingerprints (partialFingerprints lets the upload consumer track a
/// result across line moves, mirroring the baseline semantics).
void write_sarif(std::ostream& os, const std::vector<Finding>& findings);

}  // namespace detlint
