// detlint SARIF 2.1.0 writer (see sarif.hpp).

#include "sarif.hpp"

#include "detail.hpp"

namespace detlint {

namespace {

constexpr const char* kSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
    "sarif-schema-2.1.0.json";

std::string esc(const std::string& s) { return detail::json_escape(s); }

}  // namespace

void write_sarif(std::ostream& os, const std::vector<Finding>& findings) {
  os << "{\n"
     << "  \"$schema\": \"" << kSchema << "\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"detlint\",\n"
     << "          \"version\": \"2.0.0\",\n"
     << "          \"informationUri\": \"DESIGN.md\",\n"
     << "          \"rules\": [";
  const auto& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "            {\"id\": \"" << esc(rules[i]) << "\", \"shortDescription\": {\"text\": \""
       << esc(rule_description(rules[i])) << "\"}}";
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "        {\n"
       << "          \"ruleId\": \"" << esc(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << esc(f.message) << "\"},\n"
       << "          \"partialFingerprints\": {\"detlint/v1\": \"" << esc(f.fingerprint)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": {\"uri\": \"" << esc(f.file) << "\"},\n"
       << "                \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1)
       << "}\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }";
  }
  os << (findings.empty() ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
}

}  // namespace detlint
