#pragma once
// detlint reachability pass: decides, per capability, which functions a
// deterministic entry point can reach without crossing a capability grant.
//
// Entry points come from detlint.toml (`[capability.deterministic]
// entry-points`).  A capability grant marker (see symbols.hpp) cuts the
// BFS at the granted function: the grant sanctions that function *and*
// everything it calls, which is exactly the shape of "the executor IS the
// thread pool".  A banned token whose enclosing function is det-reachable
// for its capability becomes a `det-reachability` finding carrying the
// call chain — and inline `detlint:allow` markers are deliberately NOT
// consulted for it: once contract code can reach the token, the only valid
// answers are a typed capability grant or a restructure.

#include <map>
#include <string>
#include <vector>

#include "callgraph.hpp"

namespace detlint {

struct ReachablePaths {
  /// capability -> (node index -> call chain of qualified names, entry
  /// point first, the node itself last).
  std::map<std::string, std::map<int, std::vector<std::string>>> by_capability;
  /// Entry-point names from the config that matched no definition — each
  /// becomes a `bad-capability` finding (a typo'd entry protects nothing).
  std::vector<std::string> unmatched_entries;
};

ReachablePaths compute_reachability(const CallGraph& graph,
                                    const std::vector<std::string>& entries);

/// Formats the `det-reachability` message for a banned token of `rule`
/// inside `function`, reached via `path`.
std::string reachability_message(const std::string& rule, const std::string& capability,
                                 const std::vector<std::string>& path);

}  // namespace detlint
