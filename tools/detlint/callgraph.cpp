// detlint call-graph pass (see callgraph.hpp).

#include "callgraph.hpp"

#include <algorithm>
#include <array>
#include <set>

namespace detlint {

namespace {

using detail::is_ident;
using detail::skip_ws;

/// Tokens that look like calls but never are.
bool is_call_keyword(const std::string& word) {
  static const std::array<const char*, 24> kWords = {
      "if",       "for",          "while",     "switch",      "catch",
      "return",   "sizeof",       "alignof",   "alignas",     "decltype",
      "noexcept", "new",          "delete",    "throw",       "assert",
      "static_assert", "typeid",  "co_await",  "co_return",   "co_yield",
      "static_cast",   "dynamic_cast", "const_cast", "reinterpret_cast"};
  return std::any_of(kWords.begin(), kWords.end(),
                     [&](const char* w) { return word == w; });
}

/// Collects qualified call tokens (`name(` with optional `<...>` between)
/// from one stripped code line into `out`.
void collect_call_tokens(const std::string& line, std::set<std::string>& out) {
  std::size_t i = 0;
  while (i < line.size()) {
    if (!is_ident(line[i])) {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() && is_ident(line[i])) ++i;
    // Extend left over `Ns::` qualifiers already consumed?  We scan left to
    // right, so a qualified token arrives as ident "::" ident ... — stitch
    // forward instead: keep extending while `::ident` follows.
    std::string token = line.substr(start, i - start);
    while (i + 1 < line.size() && line[i] == ':' && line[i + 1] == ':') {
      std::size_t j = i + 2;
      std::size_t word = j;
      while (word < line.size() && is_ident(line[word])) ++word;
      if (word == j) break;
      token += "::" + line.substr(j, word - j);
      i = word;
    }
    std::size_t p = skip_ws(line, i);
    // Skip single-line template arguments: `max<int>(...)`.
    if (p < line.size() && line[p] == '<') {
      const std::size_t close = detail::match_angle(line, p);
      if (close != std::string::npos) p = skip_ws(line, close + 1);
    }
    if (p < line.size() && line[p] == '(') {
      const std::size_t base_at = token.rfind("::");
      const std::string base =
          base_at == std::string::npos ? token : token.substr(base_at + 2);
      if (!is_call_keyword(base) && base != "operator") out.insert(token);
    }
  }
}

/// True if `qualified` equals `suffix` or ends with `::suffix`.
bool suffix_match(const std::string& qualified, const std::string& suffix) {
  if (qualified == suffix) return true;
  if (qualified.size() <= suffix.size() + 2) return false;
  return qualified.compare(qualified.size() - suffix.size(), suffix.size(), suffix) == 0 &&
         qualified.compare(qualified.size() - suffix.size() - 2, 2, "::") == 0;
}

}  // namespace

std::vector<int> CallGraph::match_entry(const std::string& entry) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (suffix_match(nodes[i]->qualified_name, entry)) out.push_back(static_cast<int>(i));
  }
  return out;
}

CallGraph build_call_graph(const std::vector<const FileSymbols*>& files,
                           const std::vector<const detail::StrippedSource*>& sources) {
  CallGraph graph;
  std::vector<std::pair<int, int>> origin;  // node -> (file idx, fn idx)
  std::map<std::string, std::vector<int>> by_base;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (std::size_t gi = 0; gi < files[fi]->functions.size(); ++gi) {
      const FunctionDef& def = files[fi]->functions[gi];
      by_base[def.base_name()].push_back(static_cast<int>(graph.nodes.size()));
      origin.emplace_back(static_cast<int>(fi), static_cast<int>(gi));
      graph.nodes.push_back(&def);
    }
  }
  graph.edges.assign(graph.nodes.size(), {});

  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    const FunctionDef& caller = *graph.nodes[n];
    const detail::StrippedSource& src = *sources[static_cast<std::size_t>(origin[n].first)];
    std::set<std::string> tokens;
    for (int li = caller.body_begin; li <= caller.body_end; ++li) {
      if (li < 1 || static_cast<std::size_t>(li) > src.code.size()) break;
      collect_call_tokens(src.code[static_cast<std::size_t>(li - 1)], tokens);
    }
    std::set<int> callees;
    for (const std::string& token : tokens) {
      const std::size_t base_at = token.rfind("::");
      const std::string base =
          base_at == std::string::npos ? token : token.substr(base_at + 2);
      const auto it = by_base.find(base);
      if (it == by_base.end()) continue;
      if (base_at != std::string::npos) {
        // Qualified token: only suffix-matching definitions.
        for (const int idx : it->second) {
          if (suffix_match(graph.nodes[static_cast<std::size_t>(idx)]->qualified_name,
                           token)) {
            callees.insert(idx);
          }
        }
        continue;
      }
      // Unqualified: prefer same-file definitions when any exist.
      std::vector<int> same_file;
      for (const int idx : it->second) {
        if (graph.nodes[static_cast<std::size_t>(idx)]->file == caller.file) {
          same_file.push_back(idx);
        }
      }
      for (const int idx : same_file.empty() ? it->second : same_file) {
        callees.insert(idx);
      }
    }
    callees.erase(static_cast<int>(n));  // self-loops add nothing to reachability
    graph.edges[n].assign(callees.begin(), callees.end());
  }
  return graph;
}

}  // namespace detlint
