#pragma once
// detlint internal per-file scan surface: what analyze_tree (analyze.cpp)
// needs from the scanner (scanner.cpp) to run the interprocedural and audit
// passes on top of the flat rules.

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "detail.hpp"
#include "detlint.hpp"
#include "symbols.hpp"

namespace detlint::internal {

struct FileScan {
  std::string path;
  std::vector<std::string> raw;
  detail::StrippedSource src;
  FileSymbols symbols;
  /// Every rule hit, before config/suppression/grant filtering (all rules
  /// fire here regardless of Config so the audit pass can judge staleness).
  std::vector<Finding> raw_findings;
  /// The report for this file: filtered rule hits + bad-suppression /
  /// bad-capability errors, sorted and deduplicated.
  std::vector<Finding> kept;
  /// Inline suppressions: target line -> rules listed there, and the marker
  /// line the rule was written on (for audit reporting).
  std::map<int, std::set<std::string>> suppressions;
  std::map<std::pair<int, std::string>, int> suppression_marker_line;
  /// Subset of `suppressions` that matched at least one raw finding.
  std::set<std::pair<int, std::string>> suppressions_hit;
  /// (function index in symbols.functions, capability) grants that
  /// sanctioned at least one raw finding.
  std::set<std::pair<int, std::string>> grants_hit;
};

FileScan scan_file(const std::string& path, const std::string& text, const Config& config);

/// Sorted, deduplicated list of eligible repo-relative files under the
/// configured roots (or the explicit `paths`).  Throws on missing paths.
std::vector<std::string> list_files(const std::filesystem::path& root, const Config& config,
                                    const std::vector<std::string>& paths);

std::string read_file(const std::filesystem::path& abs, const std::string& rel);

}  // namespace detlint::internal
