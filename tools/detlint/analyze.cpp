// detlint whole-tree analysis: file discovery, the per-file flat scans, the
// cross-file call-graph/reachability layer, fingerprint assignment, and the
// stale-suppression audit.  This is the only place the passes meet; each
// individual pass stays testable on its own.

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "baseline.hpp"
#include "callgraph.hpp"
#include "detlint.hpp"
#include "reachability.hpp"
#include "scan_internal.hpp"

namespace detlint {

namespace internal {

namespace {

namespace fs = std::filesystem;

bool eligible_extension(const std::string& rel, const Config& config) {
  for (const std::string& ext : config.extensions) {
    if (rel.size() >= ext.size() &&
        rel.compare(rel.size() - ext.size(), ext.size(), ext) == 0) {
      return true;
    }
  }
  return false;
}

bool excluded(const std::string& rel, const Config& config) {
  for (const std::string& pattern : config.exclude) {
    if (glob_match(pattern, rel)) return true;
  }
  return false;
}

void add_tree(const fs::path& root, const fs::path& dir, const Config& config,
              std::vector<std::string>& out) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string rel = fs::relative(entry.path(), root).generic_string();
    if (!eligible_extension(rel, config) || excluded(rel, config)) continue;
    out.push_back(rel);
  }
}

}  // namespace

std::vector<std::string> list_files(const std::filesystem::path& root, const Config& config,
                                    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  if (paths.empty()) {
    for (const std::string& r : config.roots) {
      const fs::path dir = root / r;
      if (fs::is_directory(dir)) add_tree(root, dir, config, files);
    }
  } else {
    for (const std::string& p : paths) {
      const fs::path abs = root / p;
      if (fs::is_directory(abs)) {
        add_tree(root, abs, config, files);
      } else if (fs::is_regular_file(abs)) {
        // Explicitly named files are scanned even off-extension; the caller
        // asked for exactly this file.
        files.push_back(fs::path(p).generic_string());
      } else {
        throw std::runtime_error("detlint: no such file or directory: " + p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string read_file(const std::filesystem::path& abs, const std::string& rel) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) throw std::runtime_error("detlint: cannot read " + rel);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace internal

namespace {

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

}  // namespace

Analysis analyze_tree(const std::filesystem::path& root, const Config& config,
                      const std::vector<std::string>& paths) {
  const std::vector<std::string> files = internal::list_files(root, config, paths);
  std::vector<internal::FileScan> scans;
  scans.reserve(files.size());
  for (const std::string& rel : files) {
    scans.push_back(internal::scan_file(rel, internal::read_file(root / rel, rel), config));
  }

  std::vector<const FileSymbols*> symbol_files;
  std::vector<const detail::StrippedSource*> sources;
  symbol_files.reserve(scans.size());
  sources.reserve(scans.size());
  for (const internal::FileScan& scan : scans) {
    symbol_files.push_back(&scan.symbols);
    sources.push_back(&scan.src);
  }
  const CallGraph graph = build_call_graph(symbol_files, sources);
  const ReachablePaths reach = compute_reachability(graph, config.deterministic_entries);

  // detlint:allow(pointer-key): lookup-only index, never iterated
  std::map<const FunctionDef*, int> node_index;
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    node_index[graph.nodes[i]] = static_cast<int>(i);
  }

  Analysis out;
  for (internal::FileScan& scan : scans) {
    out.findings.insert(out.findings.end(), scan.kept.begin(), scan.kept.end());
    if (!config.rule_enabled("det-reachability", scan.path)) continue;
    for (const Finding& f : scan.raw_findings) {
      // A raw finding escalates to det-reachability when its capability's
      // BFS reached the enclosing function.  Granted functions are never in
      // the reachable set (the grant cuts the walk), so grant coverage is
      // already accounted for here.
      if (f.capability.empty() || f.function.empty()) continue;
      if (!config.rule_enabled(f.rule, scan.path)) continue;
      const FunctionDef* fn = enclosing_function(scan.symbols, f.line);
      if (fn == nullptr) continue;
      const auto ni = node_index.find(fn);
      if (ni == node_index.end()) continue;
      const auto cap_it = reach.by_capability.find(f.capability);
      if (cap_it == reach.by_capability.end()) continue;
      const auto path_it = cap_it->second.find(ni->second);
      if (path_it == cap_it->second.end()) continue;
      // Inline allows of the *base* rule are deliberately not consulted —
      // but one naming det-reachability itself is.
      const auto sup_it = scan.suppressions.find(f.line);
      if (sup_it != scan.suppressions.end() &&
          sup_it->second.count("det-reachability") != 0) {
        scan.suppressions_hit.insert({f.line, "det-reachability"});
        continue;
      }
      Finding r = f;
      r.rule = "det-reachability";
      r.message = reachability_message(f.rule, f.capability, path_it->second);
      out.findings.push_back(std::move(r));
    }
  }
  for (const std::string& entry : reach.unmatched_entries) {
    if (!config.rule_enabled("bad-capability", "detlint.toml")) continue;
    out.findings.push_back(
        {"detlint.toml", 0, "bad-capability",
         "deterministic entry point '" + entry +
             "' matches no function definition in the scanned tree; fix the name in "
             "[capability.deterministic] or remove it",
         "", "", "", ""});
  }
  sort_findings(out.findings);
  assign_fingerprints(out.findings);

  // ---- stale-suppression audit --------------------------------------------
  // Grant staleness needs "would the deterministic context reach this
  // function if grants were ignored": a grant that neither silences a flat
  // finding nor shields an entry-reachable subtree is decorative.
  std::vector<char> plain_reach(graph.nodes.size(), 0);
  std::vector<int> queue;
  for (const std::string& entry : config.deterministic_entries) {
    for (const int idx : graph.match_entry(entry)) {
      if (plain_reach[idx] == 0) {
        plain_reach[idx] = 1;
        queue.push_back(idx);
      }
    }
  }
  for (std::size_t q = 0; q < queue.size(); ++q) {
    for (const int next : graph.edges[queue[q]]) {
      if (plain_reach[next] == 0) {
        plain_reach[next] = 1;
        queue.push_back(next);
      }
    }
  }

  for (const internal::FileScan& scan : scans) {
    for (const auto& [key, marker] : scan.suppression_marker_line) {
      if (scan.suppressions_hit.count(key) == 0) {
        out.audit.stale_inline.push_back({scan.path, marker, key.second});
      }
    }
    for (std::size_t i = 0; i < scan.symbols.functions.size(); ++i) {
      const FunctionDef& fn = scan.symbols.functions[i];
      const auto ni = node_index.find(&fn);
      const bool shields =
          ni != node_index.end() && plain_reach[ni->second] != 0;
      for (const std::string& cap : fn.capabilities) {
        if (shields || scan.grants_hit.count({static_cast<int>(i), cap}) != 0) continue;
        out.audit.stale_grants.push_back({scan.path, fn.header_line, fn.qualified_name, cap});
      }
    }
  }
  for (const auto& [rule, rule_config] : config.rules) {
    for (const std::string& pattern : rule_config.allow_paths) {
      bool used = false;
      for (const internal::FileScan& scan : scans) {
        if (used) break;
        if (!glob_match(pattern, scan.path)) continue;
        for (const Finding& f : scan.raw_findings) {
          if (f.rule == rule) {
            used = true;
            break;
          }
        }
      }
      if (!used) out.audit.stale_allow_globs.push_back({rule, pattern});
    }
  }
  return out;
}

std::vector<Finding> scan_tree(const std::filesystem::path& root, const Config& config,
                               const std::vector<std::string>& paths) {
  return analyze_tree(root, config, paths).findings;
}

}  // namespace detlint
