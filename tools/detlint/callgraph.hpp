#pragma once
// detlint call-graph pass: links call tokens in each recovered function
// body to known definitions across all scanned translation units.
//
// Resolution is heuristic and deliberately over-approximate (an extra edge
// can at worst surface a banned token the reachability pass then reports;
// a missing edge silently weakens the interprocedural layer — the flat
// rules still see every token):
//   - a qualified call token `a::b` links to every definition whose
//     qualified name equals it or ends with `::a::b`;
//   - an unqualified token links to every definition sharing its base
//     name, preferring same-file definitions when any exist (keeps a
//     generic name like `run` from fanning out across subsystems);
//   - member-call tokens (`obj.f(...)`, `p->f(...)`) resolve by base name
//     like any other unqualified token.
// Calls through function pointers / std::function / virtual dispatch
// produce no edges — the documented known limit (DESIGN.md §5).

#include <map>
#include <string>
#include <vector>

#include "symbols.hpp"

namespace detlint {

struct CallGraph {
  /// Node order: files in scan order, functions in header_line order.
  std::vector<const FunctionDef*> nodes;
  /// Adjacency: caller index -> sorted unique callee indices.
  std::vector<std::vector<int>> edges;

  /// Indices of every node matching `entry` (qualified-name suffix match on
  /// a `::` boundary, e.g. "lin::check" matches "lintime::lin::check").
  [[nodiscard]] std::vector<int> match_entry(const std::string& entry) const;
};

/// `sources[i]` must be the stripped code whose symbols are `files[i]`.
CallGraph build_call_graph(const std::vector<const FileSymbols*>& files,
                           const std::vector<const detail::StrippedSource*>& sources);

}  // namespace detlint
