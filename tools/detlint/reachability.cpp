// detlint reachability pass (see reachability.hpp).

#include "reachability.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace detlint {

ReachablePaths compute_reachability(const CallGraph& graph,
                                    const std::vector<std::string>& entries) {
  ReachablePaths out;
  std::set<int> any_entry;
  std::vector<std::pair<std::string, std::vector<int>>> matched;
  for (const std::string& entry : entries) {
    std::vector<int> nodes = graph.match_entry(entry);
    if (nodes.empty()) {
      out.unmatched_entries.push_back(entry);
      continue;
    }
    for (const int n : nodes) any_entry.insert(n);
    matched.emplace_back(entry, std::move(nodes));
  }

  for (const std::string& cap : all_capabilities()) {
    std::map<int, std::vector<std::string>>& reach = out.by_capability[cap];
    // Deterministic BFS: entries in declaration order, neighbors in sorted
    // index order, so the reported call chain never depends on map layout.
    std::deque<int> frontier;
    std::map<int, int> parent;  // node -> predecessor (-1 for entries)
    for (const auto& [entry, nodes] : matched) {
      for (const int n : nodes) {
        const FunctionDef& def = *graph.nodes[static_cast<std::size_t>(n)];
        if (def.capabilities.count(cap) != 0) continue;  // granted at the root
        if (parent.emplace(n, -1).second) frontier.push_back(n);
      }
    }
    while (!frontier.empty()) {
      const int n = frontier.front();
      frontier.pop_front();
      for (const int m : graph.edges[static_cast<std::size_t>(n)]) {
        const FunctionDef& def = *graph.nodes[static_cast<std::size_t>(m)];
        if (def.capabilities.count(cap) != 0) continue;  // grant cuts the BFS
        if (parent.emplace(m, n).second) frontier.push_back(m);
      }
    }
    for (const auto& [node, pred] : parent) {
      std::vector<std::string> path;
      int cur = node;
      while (cur != -1) {
        path.push_back(graph.nodes[static_cast<std::size_t>(cur)]->qualified_name);
        cur = parent.at(cur);
      }
      std::reverse(path.begin(), path.end());
      reach.emplace(node, std::move(path));
    }
  }
  return out;
}

std::string reachability_message(const std::string& rule, const std::string& capability,
                                 const std::vector<std::string>& path) {
  std::string chain;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) chain += " -> ";
    chain += path[i];
  }
  return "banned token (" + rule + ") is reachable from deterministic entry point '" +
         (path.empty() ? std::string("?") : path.front()) + "' via " + chain +
         " without a '" + capability +
         "' grant; annotate the owning function with // detlint:capability(" + capability +
         "): <reason>, or restructure so contract code cannot reach it";
}

}  // namespace detlint
