#pragma once
// detlint internals shared between the scanner, the symbol pass, and the
// reporters.  Nothing here is part of the public surface in detlint.hpp;
// the split exists so symbols.cpp / callgraph.cpp can reuse the comment-
// and-string stripper instead of growing a second, subtly different lexer.

#include <cstddef>
#include <string>
#include <vector>

namespace detlint::detail {

bool is_ident(char c);

/// Whole-word occurrence of `word` in `s` starting at `pos`, else npos.
std::size_t find_word(const std::string& s, const std::string& word, std::size_t pos = 0);
bool has_word(const std::string& s, const std::string& word);

std::size_t skip_ws(const std::string& s, std::size_t pos);
std::string trim(const std::string& s);
std::vector<std::string> split_lines(const std::string& text);

/// The two channels of a source file: `code` has comments and string/char
/// literals blanked (replaced by spaces, so column numbers stay meaningful);
/// `comments` has the inverse — only comment text survives.  Rules run on
/// `code`; suppression/capability markers are honored only in `comments`, so
/// a string literal mentioning them is inert.  Handles //, /*...*/, "..."
/// with escapes, raw strings R"delim(...)delim" (with encoding prefixes and
/// custom delimiters), '...' char literals, C++14 digit separators
/// (1'000'000), and backslash line continuations of // comments and of
/// ordinary string literals.
struct StrippedSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

StrippedSource strip_comments_and_strings(const std::vector<std::string>& raw);

/// Matches `<...>` starting at the '<' at `open`; returns the index of the
/// matching '>' or npos.  Single-line only, which covers declarations.
std::size_t match_angle(const std::string& s, std::size_t open);

/// JSON string-body escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

}  // namespace detlint::detail
