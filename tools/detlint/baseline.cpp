// detlint ratchet baseline (see baseline.hpp).  The JSON reader below is a
// minimal parser for exactly the flat shape write_baseline emits — same
// philosophy as the mini-TOML config: no dependency, strict errors.

#include "baseline.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "detail.hpp"

namespace detlint {

namespace {

std::string normalize_context(const std::string& excerpt) {
  std::string out;
  bool in_ws = false;
  for (const char c : excerpt) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      in_ws = !out.empty();
      continue;
    }
    if (in_ws) out.push_back(' ');
    in_ws = false;
    out.push_back(c);
  }
  return out;
}

std::string scope_of(const Finding& f) {
  return f.function.empty() ? f.file : f.function;
}

/// Fingerprint without the ordinal suffix.
std::string fingerprint_stem(const Finding& f) {
  return f.rule + "@" + scope_of(f) + "#" + normalize_context(f.excerpt);
}

// --- tiny JSON reader for the baseline file shape ---------------------------

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("detlint baseline: " + what + " at offset " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  void expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  std::string string_value() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // \u00XX — write_baseline only emits control characters here.
            if (pos + 4 > text.size()) fail("truncated \\u escape");
            c = static_cast<char>(std::stoi(text.substr(pos, 4), nullptr, 16));
            pos += 4;
            break;
          }
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }
  long int_value() {
    skip_ws();
    std::size_t end = pos;
    if (end < text.size() && text[end] == '-') ++end;
    while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end])) != 0) {
      ++end;
    }
    if (end == pos) fail("expected an integer");
    const long value = std::stol(text.substr(pos, end - pos));
    pos = end;
    return value;
  }
};

}  // namespace

void assign_fingerprints(std::vector<Finding>& findings) {
  std::map<std::string, int> seen;
  for (Finding& f : findings) {
    const std::string stem = fingerprint_stem(f);
    const int ordinal = seen[stem]++;
    f.fingerprint = ordinal == 0 ? stem : stem + "~" + std::to_string(ordinal);
  }
}

Baseline baseline_from(const std::vector<Finding>& findings) {
  Baseline out;
  out.entries.reserve(findings.size());
  for (const Finding& f : findings) {
    out.entries.push_back(
        {f.fingerprint, f.rule, scope_of(f), normalize_context(f.excerpt)});
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

Baseline parse_baseline(const std::string& text) {
  JsonCursor cur{text};
  Baseline out;
  cur.expect('{');
  bool first_key = true;
  while (!cur.peek('}')) {
    if (!first_key) cur.expect(',');
    first_key = false;
    const std::string key = cur.string_value();
    cur.expect(':');
    if (key == "version") {
      const long version = cur.int_value();
      if (version != 1) {
        throw std::runtime_error("detlint baseline: unsupported version " +
                                 std::to_string(version));
      }
    } else if (key == "findings") {
      cur.expect('[');
      bool first = true;
      while (!cur.peek(']')) {
        if (!first) cur.expect(',');
        first = false;
        cur.expect('{');
        BaselineEntry entry;
        bool first_field = true;
        while (!cur.peek('}')) {
          if (!first_field) cur.expect(',');
          first_field = false;
          const std::string field = cur.string_value();
          cur.expect(':');
          const std::string value = cur.string_value();
          if (field == "fingerprint") entry.fingerprint = value;
          else if (field == "rule") entry.rule = value;
          else if (field == "scope") entry.scope = value;
          else if (field == "context") entry.context = value;
          else cur.fail("unknown finding field '" + field + "'");
        }
        cur.expect('}');
        if (entry.fingerprint.empty()) cur.fail("finding without a fingerprint");
        out.entries.push_back(std::move(entry));
      }
      cur.expect(']');
    } else {
      cur.fail("unknown key '" + key + "'");
    }
  }
  cur.expect('}');
  return out;
}

Baseline load_baseline(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("detlint: cannot read baseline " + path.string());
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_baseline(text.str());
}

void write_baseline(std::ostream& os, const Baseline& baseline) {
  Baseline sorted = baseline;
  std::sort(sorted.entries.begin(), sorted.entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  os << "{\n  \"version\": 1,\n  \"findings\": [";
  for (std::size_t i = 0; i < sorted.entries.size(); ++i) {
    const BaselineEntry& e = sorted.entries[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"fingerprint\": \"" << detail::json_escape(e.fingerprint)
       << "\", \"rule\": \"" << detail::json_escape(e.rule) << "\", \"scope\": \""
       << detail::json_escape(e.scope) << "\", \"context\": \""
       << detail::json_escape(e.context) << "\"}";
  }
  os << (sorted.entries.empty() ? "]" : "\n  ]") << "\n}\n";
}

BaselineDiff diff_against(const Baseline& baseline, const std::vector<Finding>& findings) {
  BaselineDiff diff;
  std::map<std::string, int> budget;
  for (const BaselineEntry& e : baseline.entries) ++budget[e.fingerprint];
  for (const Finding& f : findings) {
    const auto it = budget.find(f.fingerprint);
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++diff.matched;
    } else {
      diff.fresh.push_back(f);
    }
  }
  for (const BaselineEntry& e : baseline.entries) {
    auto& remaining = budget[e.fingerprint];
    if (remaining > 0) {
      --remaining;
      diff.stale.push_back(e);
    }
  }
  return diff;
}

}  // namespace detlint
