// detlint CLI.  Exit codes: 0 = clean, 1 = findings, 2 = usage/config error.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: detlint [options] [paths...]\n"
        "\n"
        "Scans C++ sources for determinism & concurrency hazards.  With no\n"
        "paths, scans the roots configured in detlint.toml.\n"
        "\n"
        "options:\n"
        "  --root DIR     repo root to scan from (default: .)\n"
        "  --config FILE  config file (default: <root>/detlint.toml if present)\n"
        "  --json         machine-readable output on stdout\n"
        "  --list-rules   print rule ids and descriptions, then exit\n"
        "  -h, --help     this message\n"
        "\n"
        "Suppress a finding with `// detlint:allow(<rule>): <reason>` on the\n"
        "offending line, or alone on the line above it.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::string config_path;
  bool json = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& rule : detlint::all_rules()) {
        std::cout << rule << "  —  " << detlint::rule_description(rule) << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--root" || arg == "--config") {
      if (i + 1 >= argc) {
        std::cerr << "detlint: " << arg << " needs an argument\n";
        return 2;
      }
      if (arg == "--config") config_path = argv[i + 1];
      else root = argv[i + 1];
      ++i;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
    paths.push_back(arg);
  }

  try {
    detlint::Config config;
    if (!config_path.empty()) {
      config = detlint::load_config(config_path);
    } else if (std::filesystem::exists(root / "detlint.toml")) {
      config = detlint::load_config(root / "detlint.toml");
    }

    const std::vector<detlint::Finding> findings = detlint::scan_tree(root, config, paths);
    if (json) {
      std::cout << detlint::to_json(findings);
    } else {
      detlint::write_human(std::cout, findings);
      if (findings.empty()) {
        std::cout << "detlint: clean\n";
      } else {
        std::cout << "detlint: " << findings.size() << " finding"
                  << (findings.size() == 1 ? "" : "s") << "\n";
      }
    }
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
