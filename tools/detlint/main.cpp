// detlint CLI.  Exit codes: 0 = clean (or all findings baselined), 1 =
// reportable findings, 2 = usage/config error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "detlint.hpp"
#include "sarif.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: detlint [options] [paths...]\n"
        "\n"
        "Scans C++ sources for determinism & concurrency hazards.  With no\n"
        "paths, scans the roots configured in detlint.toml.\n"
        "\n"
        "options:\n"
        "  --root DIR             repo root to scan from (default: .)\n"
        "  --config FILE          config file (default: <root>/detlint.toml if present)\n"
        "  --json                 machine-readable output on stdout\n"
        "  --sarif FILE           also write a SARIF 2.1.0 log to FILE\n"
        "  --baseline FILE        ratchet mode: exit 1 only on findings absent\n"
        "                         from FILE; stale entries are warned about\n"
        "  --write-baseline FILE  record the current findings as the baseline\n"
        "                         and exit 0\n"
        "  --audit-suppressions   report stale detlint:allow / capability /\n"
        "                         allow-glob suppressions and exit 0\n"
        "  --list-rules           print rule ids and descriptions, then exit\n"
        "  -h, --help             this message\n"
        "\n"
        "Suppress a finding with `// detlint:allow(<rule>): <reason>` on the\n"
        "offending line, or alone on the line above it.  Sanction a whole\n"
        "function with `// detlint:capability(<caps>): <reason>` above its\n"
        "definition (caps: threads, rng, wall-clock, unordered).\n";
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::string config_path;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool json = false;
  bool audit = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& rule : detlint::all_rules()) {
        std::cout << rule << "  —  " << detlint::rule_description(rule) << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--audit-suppressions") {
      audit = true;
      continue;
    }
    if (arg == "--root" || arg == "--config" || arg == "--sarif" || arg == "--baseline" ||
        arg == "--write-baseline") {
      if (i + 1 >= argc) {
        std::cerr << "detlint: " << arg << " needs an argument\n";
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--config") config_path = value;
      else if (arg == "--sarif") sarif_path = value;
      else if (arg == "--baseline") baseline_path = value;
      else if (arg == "--write-baseline") write_baseline_path = value;
      else root = value;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
    paths.push_back(arg);
  }
  if (!baseline_path.empty() && !write_baseline_path.empty()) {
    std::cerr << "detlint: --baseline and --write-baseline are mutually exclusive\n";
    return 2;
  }

  try {
    detlint::Config config;
    if (!config_path.empty()) {
      config = detlint::load_config(config_path);
    } else if (std::filesystem::exists(root / "detlint.toml")) {
      config = detlint::load_config(root / "detlint.toml");
    }

    const detlint::Analysis analysis = detlint::analyze_tree(root, config, paths);
    const std::vector<detlint::Finding>& findings = analysis.findings;

    if (!sarif_path.empty()) {
      std::ostringstream sarif;
      detlint::write_sarif(sarif, findings);
      if (!write_text_file(sarif_path, sarif.str())) {
        std::cerr << "detlint: cannot write " << sarif_path << "\n";
        return 2;
      }
    }

    if (audit) {
      detlint::write_audit(std::cout, analysis.audit);
      return 0;  // warn-only by design: stale suppressions are debt, not errors
    }

    if (!write_baseline_path.empty()) {
      std::ostringstream baseline;
      detlint::write_baseline(baseline, detlint::baseline_from(findings));
      if (!write_text_file(write_baseline_path, baseline.str())) {
        std::cerr << "detlint: cannot write " << write_baseline_path << "\n";
        return 2;
      }
      std::cout << "detlint: wrote " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << " to " << write_baseline_path << "\n";
      return 0;
    }

    std::vector<detlint::Finding> report = findings;
    if (!baseline_path.empty()) {
      const detlint::Baseline baseline = detlint::load_baseline(baseline_path);
      detlint::BaselineDiff diff = detlint::diff_against(baseline, findings);
      for (const detlint::BaselineEntry& e : diff.stale) {
        std::cerr << "detlint: warning: stale baseline entry " << e.fingerprint
                  << " (fixed since the baseline was written; re-run --write-baseline)\n";
      }
      if (diff.matched > 0) {
        std::cout << "detlint: " << diff.matched << " baselined finding"
                  << (diff.matched == 1 ? "" : "s") << " suppressed\n";
      }
      report = std::move(diff.fresh);
    }

    if (json) {
      std::cout << detlint::to_json(report);
    } else {
      detlint::write_human(std::cout, report);
      if (report.empty()) {
        std::cout << "detlint: clean\n";
      } else {
        std::cout << "detlint: " << report.size() << " finding"
                  << (report.size() == 1 ? "" : "s") << "\n";
      }
    }
    return report.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
