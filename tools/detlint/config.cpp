// detlint config: a deliberately minimal TOML subset — `[section]` headers,
// `key = value` with string/bool scalars and single-line string arrays.
// Unknown sections, keys, and rule ids are hard errors so a typo in
// detlint.toml cannot silently disable a rule.

#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "detail.hpp"

namespace detlint {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void fail(const std::filesystem::path& file, int line, const std::string& what) {
  throw std::runtime_error(file.string() + ":" + std::to_string(line) + ": " + what);
}

/// Parses `"a"` -> a.  Quotes are required for strings.
std::string parse_string(const std::filesystem::path& file, int line, const std::string& v) {
  if (v.size() < 2 || v.front() != '"' || v.back() != '"') {
    fail(file, line, "expected a double-quoted string, got: " + v);
  }
  return v.substr(1, v.size() - 2);
}

std::vector<std::string> parse_string_array(const std::filesystem::path& file, int line,
                                            const std::string& v) {
  if (v.size() < 2 || v.front() != '[' || v.back() != ']') {
    fail(file, line, "expected a single-line array [\"...\"], got: " + v);
  }
  std::vector<std::string> out;
  std::stringstream body(v.substr(1, v.size() - 2));
  std::string item;
  while (std::getline(body, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    out.push_back(parse_string(file, line, item));
  }
  return out;
}

bool parse_bool(const std::filesystem::path& file, int line, const std::string& v) {
  if (v == "true") return true;
  if (v == "false") return false;
  fail(file, line, "expected true or false, got: " + v);
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& path) {
  // Iterative wildcard match: '*' matches any run (including '/'), '?' one
  // character.  Classic two-pointer algorithm with backtracking to the last
  // star.
  std::size_t p = 0;
  std::size_t s = 0;
  std::size_t star = std::string::npos;
  std::size_t star_s = 0;
  while (s < path.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == path[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_s = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++star_s;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

Config load_config(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("detlint: cannot read config " + path.string());

  Config config;
  std::string section;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(path, lineno, "unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section != "scan" && section != "capability.deterministic") {
        if (section.rfind("rule.", 0) != 0) {
          fail(path, lineno,
               "unknown section [" + section +
                   "] (expected [scan], [capability.deterministic], or [rule.<id>])");
        }
        const std::string rule = section.substr(5);
        const auto& known = all_rules();
        if (std::find(known.begin(), known.end(), rule) == known.end()) {
          fail(path, lineno, "unknown rule '" + rule + "' (see detlint --list-rules)");
        }
        config.rules[rule];  // materialize with defaults
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(path, lineno, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (section == "scan") {
      if (key == "roots") config.roots = parse_string_array(path, lineno, value);
      else if (key == "extensions") config.extensions = parse_string_array(path, lineno, value);
      else if (key == "exclude") config.exclude = parse_string_array(path, lineno, value);
      else fail(path, lineno, "unknown key '" + key + "' in [scan]");
    } else if (section == "capability.deterministic") {
      if (key == "entry-points") {
        config.deterministic_entries = parse_string_array(path, lineno, value);
        for (const std::string& entry : config.deterministic_entries) {
          if (entry.empty()) fail(path, lineno, "empty entry-point name");
        }
      } else {
        fail(path, lineno, "unknown key '" + key + "' in [capability.deterministic]");
      }
    } else if (section.rfind("rule.", 0) == 0) {
      RuleConfig& rule = config.rules[section.substr(5)];
      if (key == "enabled") rule.enabled = parse_bool(path, lineno, value);
      else if (key == "allow") rule.allow_paths = parse_string_array(path, lineno, value);
      else fail(path, lineno, "unknown key '" + key + "' in [" + section + "]");
    } else {
      fail(path, lineno, "key outside any section");
    }
  }
  return config;
}

namespace detail {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace detail

void write_human(std::ostream& os, const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    if (!f.excerpt.empty()) os << "    " << f.excerpt << "\n";
  }
}

void write_audit(std::ostream& os, const AuditReport& report) {
  for (const auto& s : report.stale_inline) {
    os << s.file << ":" << s.line << ": stale detlint:allow(" << s.rule
       << ") — no finding of that rule is suppressed here anymore; remove it\n";
  }
  for (const auto& s : report.stale_grants) {
    os << s.file << ":" << s.line << ": stale detlint:capability(" << s.capability
       << ") on '" << s.function
       << "' — it suppresses no finding and shields no entry-reachable code; remove it\n";
  }
  for (const auto& s : report.stale_allow_globs) {
    os << "detlint.toml: stale allow pattern \"" << s.pattern << "\" under [rule." << s.rule
       << "] — no file matching it trips the rule anymore; remove it\n";
  }
  if (report.empty()) {
    os << "detlint: no stale suppressions\n";
  } else {
    const std::size_t n = report.stale_inline.size() + report.stale_grants.size() +
                          report.stale_allow_globs.size();
    os << "detlint: " << n << " stale suppression" << (n == 1 ? "" : "s") << "\n";
  }
}

std::string to_json(const std::vector<Finding>& findings) {
  using detail::json_escape;
  std::ostringstream os;
  os << "{\"count\":" << findings.size() << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) os << ",";
    os << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line << ",\"rule\":\""
       << json_escape(f.rule) << "\",\"message\":\"" << json_escape(f.message)
       << "\",\"excerpt\":\"" << json_escape(f.excerpt) << "\",\"function\":\""
       << json_escape(f.function) << "\",\"capability\":\"" << json_escape(f.capability)
       << "\",\"fingerprint\":\"" << json_escape(f.fingerprint) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace detlint
