#pragma once
// detlint symbol pass: recovers function definitions and capability grants
// from the stripped token stream of one translation unit.
//
// This is a heuristic, not a parser.  It tracks a brace-matched scope stack
// (namespaces, class bodies, function bodies, plain blocks), classifies
// each `{` from the statement head that precedes it, and qualifies function
// names with the namespace/class scopes in effect.  Lambdas and control-flow
// blocks are anonymous scopes, so tokens inside them attribute to the
// enclosing function — exactly the attribution the reachability pass wants.
// Known limits (documented in DESIGN.md §5): calls through function
// pointers / std::function / virtual dispatch produce no edges, and
// preprocessor-conditional brace imbalance can truncate extents.  The flat
// rules do not depend on this pass, so its misses weaken only the
// interprocedural layer, never the token-level one.

#include <set>
#include <string>
#include <vector>

#include "detail.hpp"
#include "detlint.hpp"

namespace detlint {

/// One function definition recovered from the token stream.
struct FunctionDef {
  /// Fully qualified: enclosing namespaces/classes + the declarator name
  /// (itself possibly qualified, e.g. an out-of-line "World::run").
  std::string qualified_name;
  std::string file;
  int header_line = 0;  ///< 1-based line of the name token.
  int body_begin = 0;   ///< line of the opening '{'.
  int body_end = 0;     ///< line of the matching '}'.
  /// Capabilities granted via the `detlint:capability` marker — the marker,
  /// a parenthesized `|`-separated capability list, and a `: reason`.  (The
  /// grammar is spelled out in DESIGN.md §5; this comment avoids writing the
  /// marker with its parenthesis so it does not parse as a grant.)
  std::set<std::string> capabilities;

  [[nodiscard]] std::string base_name() const {
    const std::size_t sep = qualified_name.rfind("::");
    return sep == std::string::npos ? qualified_name : qualified_name.substr(sep + 2);
  }
  [[nodiscard]] bool contains_line(int line) const {
    return header_line <= line && line <= body_end;
  }
};

struct FileSymbols {
  /// In header_line order.
  std::vector<FunctionDef> functions;
  /// Malformed/unknown/unattached capability annotations ("bad-capability").
  std::vector<Finding> errors;
};

/// Extracts every function definition and attaches capability annotations.
/// An annotation on a code-bearing line grants the function enclosing that
/// line; on a comment-only line it grants the function whose definition the
/// next code-bearing line belongs to (so a grant sits naturally above the
/// signature, like a doc comment).
FileSymbols extract_symbols(const std::string& path, const std::vector<std::string>& raw,
                            const detail::StrippedSource& src);

/// Innermost function whose [header_line, body_end] covers `line` (1-based);
/// nullptr at namespace scope.
const FunctionDef* enclosing_function(const FileSymbols& symbols, int line);

}  // namespace detlint
