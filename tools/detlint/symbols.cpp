// detlint symbol pass (see symbols.hpp).  One streaming walk over the
// stripped code classifies every '{' from the statement head preceding it,
// maintaining a namespace/class/function scope stack; a second walk over the
// comment channel attaches capability grants to the functions they cover.

#include "symbols.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstring>
#include <sstream>

namespace detlint {

namespace {

using detail::is_ident;
using detail::skip_ws;
using detail::trim;

/// Keywords that can precede '(' without naming a function.
bool is_head_keyword(const std::string& word) {
  static const std::array<const char*, 18> kWords = {
      "if",     "for",      "while",  "switch",    "catch",         "return",
      "sizeof", "alignof",  "alignas", "decltype", "noexcept",      "new",
      "delete", "throw",    "assert", "static_assert", "co_await",  "co_return"};
  return std::any_of(kWords.begin(), kWords.end(),
                     [&](const char* w) { return word == w; });
}

std::size_t match_paren(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')') {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

bool is_operator_symbol(char c) {
  return std::strchr("+-*/%^&|~!=<>,", c) != nullptr;
}

/// Scans backwards from `open` (index of '(') for the qualified declarator
/// name: `ident`, `Ns::Cls::ident`, `~Dtor`, `operator==`, `operator()`,
/// `Stack<T>::push` (template arguments skipped).  Returns "" when no name
/// precedes the paren (lambdas, grouping parens).  `start` receives the
/// index of the name's first character.
std::string back_scan_name(const std::string& s, std::size_t open, std::size_t* start) {
  std::size_t j = open;
  while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1])) != 0) --j;
  if (j == 0) return "";

  std::string name;
  // operator()/operator[] : the args-paren is preceded by the empty pair.
  if ((s[j - 1] == ')' && j >= 2 && s[j - 2] == '(') ||
      (s[j - 1] == ']' && j >= 2 && s[j - 2] == '[')) {
    const std::string pair = s[j - 1] == ')' ? "()" : "[]";
    std::size_t k = j - 2;
    while (k > 0 && std::isspace(static_cast<unsigned char>(s[k - 1])) != 0) --k;
    if (k >= 8 && s.compare(k - 8, 8, "operator") == 0) {
      name = "operator" + pair;
      j = k - 8;
    } else {
      return "";
    }
  } else if (is_operator_symbol(s[j - 1])) {
    std::size_t k = j;
    while (k > 0 && is_operator_symbol(s[k - 1])) --k;
    std::size_t w = k;
    while (w > 0 && std::isspace(static_cast<unsigned char>(s[w - 1])) != 0) --w;
    if (w >= 8 && s.compare(w - 8, 8, "operator") == 0) {
      name = "operator" + s.substr(k, j - k);
      j = w - 8;
    } else {
      return "";
    }
  } else if (is_ident(s[j - 1])) {
    std::size_t k = j;
    while (k > 0 && is_ident(s[k - 1])) --k;
    name = s.substr(k, j - k);
    j = k;
    if (j > 0 && s[j - 1] == '~') {
      name = "~" + name;
      --j;
    }
  } else {
    return "";
  }

  // Prepend `Qualifier::` components, skipping `<...>` template arguments.
  while (true) {
    std::size_t k = j;
    if (k >= 2 && s[k - 1] == ':' && s[k - 2] == ':') {
      k -= 2;
    } else {
      break;
    }
    if (k > 0 && s[k - 1] == '>') {
      int depth = 0;
      std::size_t g = k;
      while (g > 0) {
        if (s[g - 1] == '>') ++depth;
        else if (s[g - 1] == '<') {
          --depth;
          if (depth == 0) { --g; break; }
        }
        --g;
      }
      k = g;
    }
    std::size_t w = k;
    while (w > 0 && is_ident(s[w - 1])) --w;
    if (w == k) break;  // `::name` at global scope: stop, keep what we have
    name = s.substr(w, k - w) + "::" + name;
    j = w;
  }
  *start = j;
  return name;
}

/// True if the text between a declarator's ')' and its '{' is something a
/// function definition can carry: cv/ref qualifiers, noexcept(...),
/// override/final, trailing return (everything after `->` accepted),
/// requires-clauses, function-try-blocks, or a ctor-init list (leading ':').
bool valid_trailer(std::string t) {
  t = trim(t);
  if (t.empty()) return true;
  if (t[0] == ':' && (t.size() < 2 || t[1] != ':')) return true;  // ctor-init
  const std::size_t arrow = t.find("->");
  if (arrow != std::string::npos) t = t.substr(0, arrow);
  const std::size_t req = detail::find_word(t, "requires");
  if (req != std::string::npos) t = t.substr(0, req);
  // Drop parenthesized groups (noexcept(expr)).
  std::string flat;
  int depth = 0;
  for (const char c : t) {
    if (c == '(') { ++depth; continue; }
    if (c == ')') { if (depth > 0) --depth; continue; }
    if (depth == 0) flat.push_back(c);
  }
  std::istringstream words(flat);
  std::string word;
  while (words >> word) {
    std::string w;
    for (const char c : word) {
      if (is_ident(c)) w.push_back(c);
    }
    if (w.empty()) continue;
    if (w != "const" && w != "noexcept" && w != "override" && w != "final" &&
        w != "mutable" && w != "volatile" && w != "throw" && w != "try") {
      return false;
    }
  }
  return true;
}

struct Scope {
  enum class Kind { kNamespace, kType, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;      // namespace/type component ("" when anonymous)
  int func_index = -1;   // index into FileSymbols::functions for kFunction
};

struct BraceClass {
  Scope::Kind kind = Scope::Kind::kBlock;
  std::string name;
  int header_line = 0;
};

/// Name/line of the first plausible function declarator in `head`, or "".
struct Candidate {
  std::string name;
  int line = 0;
  std::size_t after_args = std::string::npos;  // index just past the ')'
};

Candidate find_candidate(const std::string& head, const std::vector<int>& lines) {
  Candidate out;
  int depth = 0;
  std::size_t i = 0;
  while (i < head.size()) {
    const char c = head[i];
    if (c == '(' && depth == 0) {
      std::size_t start = 0;
      const std::string name = back_scan_name(head, i, &start);
      const std::size_t close = match_paren(head, i);
      if (close == std::string::npos) return out;  // unbalanced: not a head
      if (name.empty() || is_head_keyword(name)) {
        i = close + 1;
        continue;
      }
      out.name = name;
      out.line = lines[std::min(start, lines.size() - 1)];
      out.after_args = close + 1;
      return out;
    }
    if (c == '(') ++depth;
    else if (c == ')') --depth;
    ++i;
  }
  return out;
}

BraceClass classify(const std::string& raw_head, const std::vector<int>& raw_lines,
                    bool* pending_ctor, std::string* pending_name, int* pending_line) {
  BraceClass out;
  // Keep head and line map in lockstep through attribute stripping.
  std::string head;
  std::vector<int> lines;
  {
    std::size_t i = 0;
    while (i < raw_head.size()) {
      if (raw_head.compare(i, 2, "[[") == 0) {
        const std::size_t close = raw_head.find("]]", i + 2);
        if (close == std::string::npos) break;
        i = close + 2;
        continue;
      }
      head.push_back(raw_head[i]);
      lines.push_back(raw_lines[i]);
      ++i;
    }
  }
  const std::string trimmed = trim(head);

  // A ctor whose member initializers use braces resets the head at each
  // init-brace; the body '{' then follows a head that is empty or starts
  // with the next `, member` fragment.  `pending_ctor` carries the ctor
  // across those resets.
  if (*pending_ctor) {
    const bool init_continues = !trimmed.empty() && trimmed.back() != ')' &&
                                is_ident(trimmed.back());
    if (trimmed.empty() || trimmed[0] == ',' || init_continues) {
      if (init_continues) return out;  // another init-brace: stay pending
      *pending_ctor = false;
      out.kind = Scope::Kind::kFunction;
      out.name = *pending_name;
      out.header_line = *pending_line;
      return out;
    }
    *pending_ctor = false;  // anything else cancels the pending ctor
  }

  if (trimmed.empty()) return out;

  const std::size_t ns = detail::find_word(head, "namespace");
  if (ns != std::string::npos) {
    std::size_t p = skip_ws(head, ns + 9);
    if (head.compare(p, 6, "inline") == 0) p = skip_ws(head, p + 6);
    std::size_t q = p;
    while (q < head.size() && (is_ident(head[q]) || head[q] == ':')) ++q;
    out.kind = Scope::Kind::kNamespace;
    out.name = head.substr(p, q - p);
    while (!out.name.empty() && out.name.back() == ':') out.name.pop_back();
    return out;
  }

  const Candidate cand = find_candidate(head, lines);
  if (!cand.name.empty()) {
    const std::string trailer = head.substr(cand.after_args);
    const std::string tt = trim(trailer);
    const bool ctor_init = !tt.empty() && tt[0] == ':' && (tt.size() < 2 || tt[1] != ':');
    if (ctor_init && is_ident(tt.back())) {
      // `Foo() : member_` + '{' — an init-brace, not the body yet.
      *pending_ctor = true;
      *pending_name = cand.name;
      *pending_line = cand.line;
      return out;
    }
    if (valid_trailer(trailer)) {
      out.kind = Scope::Kind::kFunction;
      out.name = cand.name;
      out.header_line = cand.line;
      return out;
    }
  }

  // Class-head: last kind keyword wins, so `template <class T> struct Foo`
  // names Foo, not T.
  std::size_t kind_at = std::string::npos;
  std::size_t kind_len = 0;
  for (const std::string kw : {"class", "struct", "union", "enum"}) {
    std::size_t at = 0;
    while ((at = detail::find_word(head, kw, at)) != std::string::npos) {
      if (kind_at == std::string::npos || at > kind_at) {
        kind_at = at;
        kind_len = kw.size();
      }
      at += kw.size();
    }
  }
  if (kind_at != std::string::npos) {
    std::size_t p = skip_ws(head, kind_at + kind_len);
    // `enum class X` / `enum struct X`.
    for (const std::string kw : {"class", "struct"}) {
      if (head.compare(p, kw.size(), kw) == 0 &&
          (p + kw.size() >= head.size() || !is_ident(head[p + kw.size()]))) {
        p = skip_ws(head, p + kw.size());
      }
    }
    std::size_t q = p;
    while (q < head.size() && is_ident(head[q])) ++q;
    out.kind = Scope::Kind::kType;
    out.name = head.substr(p, q - p);
    return out;
  }
  return out;
}

// -- capability annotations --------------------------------------------------

FunctionDef* annotation_target(FileSymbols& symbols, int line) {
  // Innermost containing function first (grant written inside/at the
  // definition), else the next function that starts at or below the line
  // (grant written above the signature).
  FunctionDef* inner = nullptr;
  for (FunctionDef& f : symbols.functions) {
    if (f.contains_line(line) &&
        (inner == nullptr || f.header_line > inner->header_line)) {
      inner = &f;
    }
  }
  if (inner != nullptr) return inner;
  FunctionDef* next = nullptr;
  for (FunctionDef& f : symbols.functions) {
    if (f.header_line >= line && (next == nullptr || f.header_line < next->header_line)) {
      next = &f;
    }
  }
  return next;
}

void collect_capabilities(const std::string& path, const std::vector<std::string>& raw,
                          const detail::StrippedSource& src, FileSymbols& symbols) {
  static const std::string kMarker = "detlint:capability(";
  for (std::size_t i = 0; i < src.comments.size(); ++i) {
    const std::string& comment = src.comments[i];
    const std::size_t at = comment.find(kMarker);
    if (at == std::string::npos) continue;
    const std::size_t open = at + kMarker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) {
      symbols.errors.push_back({path, static_cast<int>(i + 1), "bad-capability",
                                "unterminated detlint:capability(...)", trim(raw[i]), "", "",
                                ""});
      continue;
    }
    // Same targeting as detlint:allow — a code-bearing line grants its own
    // enclosing function, a comment-only line grants the next definition.
    std::size_t target_idx = i;
    if (trim(src.code[i]).empty()) {
      target_idx = i + 1;
      while (target_idx < src.code.size() && trim(src.code[target_idx]).empty()) ++target_idx;
    }
    FunctionDef* target = annotation_target(symbols, static_cast<int>(target_idx + 1));
    std::stringstream list(comment.substr(open, close - open));
    std::string id;
    bool any = false;
    while (std::getline(list, id, '|')) {
      std::stringstream inner(id);
      std::string cap;
      while (std::getline(inner, cap, ',')) {
        cap = trim(cap);
        if (cap.empty()) continue;
        any = true;
        const auto& known = all_capabilities();
        if (std::find(known.begin(), known.end(), cap) == known.end()) {
          symbols.errors.push_back({path, static_cast<int>(i + 1), "bad-capability",
                                    "unknown capability '" + cap +
                                        "' in detlint:capability (known: threads, rng, "
                                        "wall-clock, unordered)",
                                    trim(raw[i]), "", "", ""});
          continue;
        }
        if (target == nullptr) {
          symbols.errors.push_back({path, static_cast<int>(i + 1), "bad-capability",
                                    "detlint:capability annotation attaches to no function "
                                    "definition",
                                    trim(raw[i]), "", "", ""});
          break;
        }
        target->capabilities.insert(cap);
      }
    }
    if (!any) {
      symbols.errors.push_back({path, static_cast<int>(i + 1), "bad-capability",
                                "empty capability list in detlint:capability(...)",
                                trim(raw[i]), "", "", ""});
    }
  }
}

}  // namespace

FileSymbols extract_symbols(const std::string& path, const std::vector<std::string>& raw,
                            const detail::StrippedSource& src) {
  FileSymbols out;
  std::vector<Scope> stack;
  std::string head;
  std::vector<int> head_lines;
  int paren_depth = 0;
  bool pending_ctor = false;
  std::string pending_name;
  int pending_line = 0;
  bool in_directive = false;  // preprocessor line (+ backslash continuations)

  const auto qualified_prefix = [&stack]() {
    std::string prefix;
    for (const Scope& s : stack) {
      if ((s.kind == Scope::Kind::kNamespace || s.kind == Scope::Kind::kType) &&
          !s.name.empty()) {
        prefix += s.name + "::";
      }
    }
    return prefix;
  };

  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    const int lineno = static_cast<int>(li + 1);

    if (in_directive) {
      in_directive = !raw[li].empty() && raw[li].back() == '\\';
      continue;
    }
    const std::size_t first = skip_ws(line, 0);
    if (first < line.size() && line[first] == '#') {
      in_directive = !raw[li].empty() && raw[li].back() == '\\';
      continue;
    }

    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '(') ++paren_depth;
      else if (c == ')') paren_depth = paren_depth > 0 ? paren_depth - 1 : 0;

      if (c == ';' && paren_depth == 0) {
        head.clear();
        head_lines.clear();
        pending_ctor = false;
        continue;
      }
      if (c == '{') {
        Scope scope;
        if (paren_depth > 0) {
          scope.kind = Scope::Kind::kBlock;  // brace inside parens: lambda arg
        } else {
          const BraceClass cls =
              classify(head, head_lines, &pending_ctor, &pending_name, &pending_line);
          scope.kind = cls.kind;
          scope.name = cls.name;
          if (cls.kind == Scope::Kind::kFunction) {
            FunctionDef def;
            std::string name = cls.name;
            if (name.rfind("::", 0) == 0) name = name.substr(2);
            def.qualified_name = qualified_prefix() + name;
            def.file = path;
            def.header_line = cls.header_line;
            def.body_begin = lineno;
            def.body_end = lineno;  // patched at the matching '}'
            scope.func_index = static_cast<int>(out.functions.size());
            out.functions.push_back(std::move(def));
          }
        }
        stack.push_back(std::move(scope));
        head.clear();
        head_lines.clear();
        continue;
      }
      if (c == '}') {
        if (!stack.empty()) {
          if (stack.back().func_index >= 0) {
            out.functions[static_cast<std::size_t>(stack.back().func_index)].body_end = lineno;
          }
          stack.pop_back();
        }
        head.clear();
        head_lines.clear();
        continue;
      }
      head.push_back(c);
      head_lines.push_back(lineno);
    }
    head.push_back(' ');
    head_lines.push_back(lineno);
  }

  // Unterminated bodies (macro brace imbalance): extend to end of file so
  // enclosing_function still answers.
  for (const Scope& s : stack) {
    if (s.func_index >= 0) {
      out.functions[static_cast<std::size_t>(s.func_index)].body_end =
          static_cast<int>(src.code.size());
    }
  }

  std::sort(out.functions.begin(), out.functions.end(),
            [](const FunctionDef& a, const FunctionDef& b) {
              return a.header_line < b.header_line;
            });
  collect_capabilities(path, raw, src, out);
  return out;
}

const FunctionDef* enclosing_function(const FileSymbols& symbols, int line) {
  const FunctionDef* inner = nullptr;
  for (const FunctionDef& f : symbols.functions) {
    if (f.contains_line(line) &&
        (inner == nullptr || f.header_line > inner->header_line)) {
      inner = &f;
    }
  }
  return inner;
}

}  // namespace detlint
