// Trace inspector: records an adversarial run, saves it with the trace
// serializer, reloads it, and analyzes it -- latencies, admissibility,
// linearizability (with witness), and the effect of a shift.
//
// Usage:
//   ./build/examples/trace_inspector            # self-demo (generates a run)
//   ./build/examples/trace_inspector FILE       # inspect a saved trace
//
// Traces are the text format of src/sim/trace_io.hpp; the self-demo writes
// one to /tmp/lintime_demo.trace so you can try the file mode immediately.

#include <cstdio>
#include <fstream>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "shift/shift.hpp"
#include "sim/trace_io.hpp"

namespace {

lintime::sim::RunRecord make_demo_run() {
  using lintime::adt::Value;
  lintime::adt::QueueType queue;
  lintime::harness::RunSpec spec;
  spec.params = lintime::sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.clock_offsets = {0.5, -0.5, 0.0};
  spec.delays = std::make_shared<lintime::sim::UniformRandomDelay>(8.0, 10.0, 11);
  spec.scripts = {
      {{"enqueue", Value{1}}, {"enqueue", Value{2}}},
      {{"dequeue", Value::nil()}, {"peek", Value::nil()}},
      {{"enqueue", Value{3}}, {"dequeue", Value::nil()}},
  };
  return lintime::harness::execute(queue, spec).record;
}

void inspect(const lintime::sim::RunRecord& record) {
  lintime::adt::QueueType queue;

  std::printf("model: n=%d, d=%g, u=%g, eps=%g\n", record.params.n, record.params.d,
              record.params.u, record.params.eps);
  std::printf("steps: %zu, messages: %zu, operations: %zu, last time: %g\n\n",
              record.steps.size(), record.messages.size(), record.ops.size(),
              record.last_time());

  std::printf("operations:\n");
  for (const auto& op : record.ops) std::printf("  %s\n", op.to_string().c_str());

  const auto adm = lintime::shift::check_admissibility(record);
  std::printf("\nadmissible: %s (max skew %g, delays in [%g, %g])\n",
              adm.admissible ? "yes" : "NO", adm.max_skew, adm.min_delay, adm.max_delay);
  for (const auto& v : adm.violations) std::printf("  violation: %s\n", v.detail.c_str());

  const auto check = lintime::lin::check_linearizability(queue, record);
  std::printf("linearizable: %s (%zu nodes)\n", check.linearizable ? "yes" : "NO",
              check.nodes_expanded);
  if (check.linearizable) {
    std::printf("witness: %s\n", check.witness_to_string(record.ops).c_str());
  }

  // What happens if the adversary had shifted p0 half a unit later?
  std::vector<double> x(static_cast<std::size_t>(record.params.n), 0.0);
  x[0] = 0.5;
  const auto shifted = lintime::shift::shift_run(record, x);
  const auto adm2 = lintime::shift::check_admissibility(shifted);
  std::printf("\nafter shift(p0 += 0.5): admissible: %s", adm2.admissible ? "yes" : "NO");
  if (adm2.admissible) {
    std::printf(", linearizable: %s",
                lintime::lin::check_linearizability(queue, shifted).linearizable ? "yes" : "NO");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    inspect(lintime::sim::read_record(in));
    return 0;
  }

  const auto record = make_demo_run();
  const char* path = "/tmp/lintime_demo.trace";
  {
    std::ofstream out(path);
    lintime::sim::write_record(out, record);
  }
  std::printf("(self-demo: trace written to %s; re-run with that path)\n\n", path);

  std::ifstream in(path);
  inspect(lintime::sim::read_record(in));
  return 0;
}
