// Campaign demo: load a declarative scenario file, expand it into a
// campaign, run every job on the worker pool, and emit machine-readable
// metrics.
//
// Demonstrates the scenario + campaign public API:
//   1. parse and validate a scenario file (scenario::load_scenario_file) --
//      every malformed construct is a hard "file:line: message" error,
//   2. expand it into jobs (scenario::expand): axes cartesian-expanded,
//      $references resolved, one harness::RunSpec per grid point,
//   3. execute the campaign (deterministic: results are keyed by job
//      index, so any --jobs count yields byte-identical output),
//   4. aggregate latencies and print / serialize the results.
//
// Build & run:  ./build/examples/campaign_demo [scenario.toml]
// (default: the checked-in scenarios/demo.toml)

#include <cstdio>

#include "campaign/executor.hpp"
#include "campaign/sink.hpp"
#include "scenario/expand.hpp"
#include "scenario/scenario.hpp"

#ifndef LINTIME_SCENARIO_DIR
#define LINTIME_SCENARIO_DIR "scenarios"
#endif

int main(int argc, char** argv) {
  namespace campaign = lintime::campaign;
  namespace scenario = lintime::scenario;

  const std::string path =
      argc > 1 ? argv[1] : std::string(LINTIME_SCENARIO_DIR) + "/demo.toml";

  scenario::ScenarioCampaign expanded;
  try {
    const auto sc = scenario::load_scenario_file(path);
    expanded = scenario::expand(sc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_demo: %s\n", e.what());
    return 1;
  }

  std::printf("scenario %s: %zu jobs (digest %s)\n\n", expanded.spec.name.c_str(),
              expanded.spec.jobs.size(), scenario::campaign_digest(expanded).c_str());

  campaign::ExecutorOptions opts;
  opts.jobs = 2;
  const auto result = campaign::run_campaign(expanded.spec, opts);

  std::printf("  %-28s %-14s %s\n", "job", "verdict", "mean latency per op");
  for (const auto& job : result.jobs) {
    std::string latencies;
    for (const auto& [op, samples] : job.latency_samples) {
      const auto m = campaign::reduce_samples(samples);
      latencies += op + "=" + campaign::fmt_double(m.mean) + " ";
    }
    std::printf("  %-28s %-14s %s\n", job.name.c_str(), campaign::to_string(job.metrics.verdict),
                latencies.c_str());
  }

  const auto agg = result.aggregate();
  std::printf("\naggregate: %zu/%zu linearizable, %zu messages sent\n", agg.jobs_linearizable,
              agg.jobs_checked, agg.messages_sent);

  // The same result as JSON (what `campaign_runner --json` writes).
  std::printf("\nJSON (first 400 chars):\n%.400s...\n", campaign::to_json(result).c_str());

  return agg.jobs_failed == 0 && agg.jobs_linearizable == agg.jobs_checked ? 0 : 1;
}
