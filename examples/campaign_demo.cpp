// Campaign demo: sweep Algorithm 1's tradeoff parameter X over a small
// parameter grid, run every point as an independent job on the worker
// pool, and emit machine-readable metrics.
//
// Demonstrates the campaign public API:
//   1. declare a parameter grid (campaign::Grid),
//   2. expand each grid point into a harness::RunSpec job,
//   3. execute the campaign (deterministic: results are keyed by job
//      index, so any --jobs count yields byte-identical output),
//   4. aggregate latencies and print / serialize the results.
//
// Build & run:  ./build/examples/campaign_demo

#include <cstdio>

#include "adt/queue_type.hpp"
#include "campaign/executor.hpp"
#include "campaign/grid.hpp"
#include "campaign/sink.hpp"
#include "harness/runner.hpp"

int main() {
  using lintime::adt::Value;
  namespace campaign = lintime::campaign;
  namespace harness = lintime::harness;

  lintime::adt::QueueType queue;

  // 4 X-fractions x 3 seeds = 12 jobs over the canonical 5-process model.
  campaign::Grid grid;
  grid.axis("xfrac", std::vector<double>{0.0, 0.25, 0.5, 1.0});
  grid.axis("seed", std::vector<int>{1, 2, 3});

  lintime::sim::ModelParams params{5, 10.0, 2.0, 0.0};
  params.eps = params.optimal_eps();

  campaign::CampaignSpec spec;
  spec.name = "campaign-demo";
  for (const auto& pt : grid.points()) {
    campaign::Job job;
    job.name = pt.label();
    job.tags = pt.coords();
    job.type = &queue;
    job.check_linearizability = true;
    job.spec.params = params;
    job.spec.algo = harness::AlgoKind::kAlgorithmOne;
    job.spec.X = (params.d - params.eps) * pt.num("xfrac");
    job.spec.scripts = harness::random_scripts(
        queue, params.n, 3, static_cast<std::uint64_t>(pt.integer("seed")) * 7u);
    spec.jobs.push_back(std::move(job));
  }

  campaign::ExecutorOptions opts;
  opts.jobs = 2;
  const auto result = campaign::run_campaign(spec, opts);

  std::printf("campaign %s: %zu jobs\n\n", result.name.c_str(), result.jobs.size());
  std::printf("  %-28s %-14s %s\n", "job", "verdict", "mean latency per op");
  for (const auto& job : result.jobs) {
    std::string latencies;
    for (const auto& [op, samples] : job.latency_samples) {
      const auto m = campaign::reduce_samples(samples);
      latencies += op + "=" + campaign::fmt_double(m.mean) + " ";
    }
    std::printf("  %-28s %-14s %s\n", job.name.c_str(), campaign::to_string(job.metrics.verdict),
                latencies.c_str());
  }

  const auto agg = result.aggregate();
  std::printf("\naggregate: %zu/%zu linearizable, %zu messages sent\n", agg.jobs_linearizable,
              agg.jobs_checked, agg.messages_sent);

  // The same result as JSON (what `campaign_runner --json` writes).
  std::printf("\nJSON (first 400 chars):\n%.400s...\n", campaign::to_json(result).c_str());

  return agg.jobs_failed == 0 && agg.jobs_linearizable == agg.jobs_checked ? 0 : 1;
}
