// Adversary demo: what the lower bounds mean in practice.
//
// Runs two algorithms against the same adversarial schedule from the proof
// of Theorem 4 (pair-free operations need at least d + min{eps,u,d/3}):
//   * an UNSAFE variant of Algorithm 1 whose dequeues respond at d + m/2 --
//     faster than the paper's bound -- and which the adversary breaks (two
//     processes dequeue the same element; the checker proves no
//     linearization exists);
//   * the standard Algorithm 1 (dequeues at d + eps), which survives.
//
// Also shows the zero-wait strawman losing instantly.
//
// Build & run:  ./build/examples/adversary_demo

#include <cstdio>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "shift/theorems.hpp"

int main() {
  using lintime::adt::Value;
  namespace harness = lintime::harness;
  namespace shift = lintime::shift;

  lintime::sim::ModelParams params{3, 10.0, 2.0, 0.0};
  params.eps = params.optimal_eps();

  lintime::adt::QueueType queue;

  std::printf("=== Theorem 4 adversary vs. dequeue (pair-free) ===\n");
  std::printf("bound: d + min{eps, u, d/3} = %.2f\n\n", params.d + params.m());

  shift::Theorem4Spec spec;
  spec.op = "dequeue";
  spec.arg0 = Value::nil();
  spec.arg1 = Value::nil();
  spec.rho = {harness::ScriptOp{"enqueue", Value{7}}};

  const auto result = shift::theorem4_pair_free(queue, spec, params);
  std::printf("%s\n", result.name.c_str());
  std::printf("unsafe |OOP| = %.2f (< bound %.2f)\n", result.unsafe_latency, result.bound);
  std::printf("%s\n", result.details.c_str());
  std::printf("=> unsafe algorithm broken: %s; standard Algorithm 1 survived: %s\n\n",
              result.unsafe_violated ? "YES" : "no", result.safe_survived ? "YES" : "no");

  std::printf("=== Zero-wait strawman ===\n");
  harness::RunSpec zw;
  zw.params = params;
  zw.algo = harness::AlgoKind::kZeroWait;
  zw.calls = {
      harness::Call{0.0, 0, "enqueue", Value{7}},
      harness::Call{20.0, 1, "dequeue", Value::nil()},
      harness::Call{21.0, 2, "dequeue", Value::nil()},
  };
  const auto zw_result = harness::execute(queue, zw);
  for (const auto& op : zw_result.record.ops) {
    std::printf("  %s\n", op.to_string().c_str());
  }
  const bool zw_linearizable =
      lintime::lin::check_linearizability(queue, zw_result.record).linearizable;
  std::printf("=> zero-wait run linearizable: %s (both dequeues returned the head)\n",
              zw_linearizable ? "yes" : "NO");

  return (result.demonstrated() && !zw_linearizable) ? 0 : 1;
}
