// Collaborative document outline: the paper's rooted-tree data type used as
// a shared outline edited concurrently from three sites.
//
// Site 0 builds the skeleton, site 1 re-parents a section (move), site 2
// queries depths while edits are in flight.  All replicas converge to the
// same tree and the run is machine-checked linearizable, despite skewed
// clocks and adversarial (maximal) message delays.
//
// Build & run:  ./build/examples/collaborative_tree

#include <cstdio>

#include "adt/tree_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

int main() {
  using lintime::adt::TreeType;
  using lintime::adt::Value;
  namespace harness = lintime::harness;

  lintime::sim::ModelParams params{3, 10.0, 2.0, 0.0};
  params.eps = params.optimal_eps();

  harness::RunSpec spec;
  spec.params = params;
  spec.X = 0.0;  // favour fast queries: |depth| = d, |insert/move| = eps
  spec.delays = std::make_shared<lintime::sim::ConstantDelay>(params.d);  // worst case
  spec.clock_offsets = {params.eps / 2, -params.eps / 2, 0.0};            // max skew

  // Node ids: 1 = "Introduction", 2 = "Methods", 3 = "Results",
  //           4 = "Appendix" (moved under Methods mid-session).
  spec.scripts = {
      {
          {"insert", TreeType::edge(0, 1)},
          {"insert", TreeType::edge(0, 2)},
          {"insert", TreeType::edge(0, 3)},
          {"insert", TreeType::edge(0, 4)},
      },
      {
          {"move", TreeType::edge(2, 4)},  // Appendix -> under Methods
          {"depth", Value{4}},
          {"remove", Value{3}},            // drop "Results"
      },
      {
          {"depth", Value{1}},
          {"depth", Value{4}},
          {"parent", Value{4}},
          {"depth", Value{3}},
      },
  };

  lintime::adt::TreeType tree;
  const auto result = harness::execute(tree, spec);

  std::printf("edit session:\n");
  for (const auto& op : result.record.ops) {
    std::printf("  %s\n", op.to_string().c_str());
  }

  std::printf("\nlatencies: mutators max %.2f (bound eps = %.2f), queries max %.2f "
              "(bound d-X = %.2f)\n",
              std::max(result.stats_for("insert").max, result.stats_for("move").max),
              params.eps, result.stats_for("depth").max, params.d - spec.X);

  bool converged = true;
  for (const auto& s : result.final_states) converged &= (s == result.final_states[0]);
  std::printf("\nfinal outline (all %s): %s\n", converged ? "replicas agree" : "DIVERGED",
              result.final_states[0].c_str());

  const bool ok =
      lintime::lin::check_linearizability(tree, result.record).linearizable && converged;
  std::printf("linearizable: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
