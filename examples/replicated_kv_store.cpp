// Replicated key-value store built on the public DataType API.
//
// The paper's algorithm works for *arbitrary* data types: this example
// defines a new one (a map of string-keyed registers with put/get/cas) from
// scratch, never touching the library internals, and runs a geo-replicated
// session across 4 sites.  `get` is a pure accessor (fast: d-X), `put` a
// pure mutator (fast: X+eps), and `cas` a mixed operation (d+eps) -- the
// per-class speedups apply to user-defined types automatically.
//
// Build & run:  ./build/examples/replicated_kv_store

#include <cstdio>
#include <map>
#include <sstream>

#include "adt/data_type.hpp"
#include "adt/state_base.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace {

using lintime::adt::DataType;
using lintime::adt::OpCategory;
using lintime::adt::OpSpec;
using lintime::adt::StateBase;
using lintime::adt::Value;
using lintime::adt::ValueVec;

/// State: string key -> integer value.  cas([k, expect, desired]) returns 1
/// and stores `desired` iff the current value (0 if absent) equals `expect`.
class KvState final : public StateBase<KvState> {
 public:
  Value apply(const std::string& op, const Value& arg) override {
    if (op == "put") {
      const auto& kv = arg.as_vec();
      map_[kv[0].as_str()] = kv[1].as_int();
      return Value::nil();
    }
    if (op == "get") {
      const auto it = map_.find(arg.as_str());
      return it == map_.end() ? Value{0} : Value{it->second};
    }
    if (op == "cas") {
      const auto& kcd = arg.as_vec();
      auto& slot = map_[kcd[0].as_str()];
      if (slot != kcd[1].as_int()) return Value{0};
      slot = kcd[2].as_int();
      return Value{1};
    }
    throw std::invalid_argument("kv: unknown op " + op);
  }

  [[nodiscard]] std::string canonical() const override {
    std::ostringstream os;
    os << "kv:";
    for (const auto& [k, v] : map_) os << k << '=' << v << ',';
    return os.str();
  }

 private:
  std::map<std::string, std::int64_t> map_;
};

class KvStoreType final : public DataType {
 public:
  [[nodiscard]] std::string name() const override { return "kv_store"; }
  [[nodiscard]] const std::vector<OpSpec>& ops() const override {
    static const std::vector<OpSpec> kOps = {
        {"put", OpCategory::kPureMutator, true},
        {"get", OpCategory::kPureAccessor, true},
        {"cas", OpCategory::kMixed, true},
    };
    return kOps;
  }
  [[nodiscard]] std::unique_ptr<lintime::adt::ObjectState> make_initial_state() const override {
    return std::make_unique<KvState>();
  }
  [[nodiscard]] std::vector<Value> sample_args(const std::string& op) const override {
    if (op == "get") return {Value{"x"}, Value{"y"}};
    if (op == "put") return {Value{ValueVec{Value{"x"}, Value{1}}}};
    return {Value{ValueVec{Value{"x"}, Value{0}, Value{1}}}};
  }
};

Value put(const char* k, std::int64_t v) { return Value{ValueVec{Value{k}, Value{v}}}; }
Value cas(const char* k, std::int64_t expect, std::int64_t desired) {
  return Value{ValueVec{Value{k}, Value{expect}, Value{desired}}};
}

}  // namespace

int main() {
  namespace harness = lintime::harness;

  lintime::sim::ModelParams params{4, 10.0, 2.0, 0.0};
  params.eps = params.optimal_eps();

  harness::RunSpec spec;
  spec.params = params;
  spec.X = 2.0;  // reads at d-X = 8, writes at X+eps = 3.5
  spec.delays = std::make_shared<lintime::sim::UniformRandomDelay>(params.min_delay(), params.d,
                                                                   2026);

  // Four sites: two writers racing a compare-and-swap, two readers.
  spec.scripts = {
      {{"put", put("cart", 1)}, {"cas", cas("cart", 1, 2)}},
      {{"put", put("stock", 10)}, {"cas", cas("cart", 1, 3)}},
      {{"get", Value{"cart"}}, {"get", Value{"stock"}}, {"get", Value{"cart"}}},
      {{"get", Value{"stock"}}, {"put", put("stock", 9)}},
  };

  KvStoreType kv;
  const auto result = harness::execute(kv, spec);

  std::printf("session transcript:\n");
  for (const auto& op : result.record.ops) {
    std::printf("  %s\n", op.to_string().c_str());
  }

  std::printf("\nlatency by operation class:\n");
  for (const auto& [op, stats] : result.latency) {
    std::printf("  %-4s  max=%.2f  (class bound: %s)\n", op.c_str(), stats.max,
                op == "get"   ? "d-X = 8.0"
                : op == "put" ? "X+eps = 3.5"
                              : "d+eps = 11.5");
  }

  // At most one of the two racing cas(cart, 1, _) calls may have won.
  int cas_wins = 0;
  for (const auto& op : result.record.ops) {
    if (op.op == "cas" && op.ret == Value{1}) ++cas_wins;
  }
  std::printf("\ncompare-and-swap winners: %d (must be exactly 1)\n", cas_wins);

  const bool ok =
      lintime::lin::check_linearizability(kv, result.record).linearizable && cas_wins == 1;
  std::printf("linearizable: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
