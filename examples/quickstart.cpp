// Quickstart: a linearizable FIFO queue shared by five processes.
//
// Demonstrates the core public API:
//   1. pick a data type (adt::QueueType),
//   2. describe the system model (n, d, u, eps) and the tradeoff X,
//   3. drive a workload through the harness,
//   4. inspect responses, per-class latencies, and machine-checked
//      linearizability.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

int main() {
  using lintime::adt::Value;
  namespace harness = lintime::harness;

  // The model of the paper: 5 processes, message delays in [d-u, d] =
  // [8, 10], clocks synchronized to within eps = (1 - 1/n) u = 1.6.
  lintime::sim::ModelParams params{5, 10.0, 2.0, 0.0};
  params.eps = params.optimal_eps();

  harness::RunSpec spec;
  spec.params = params;
  spec.algo = harness::AlgoKind::kAlgorithmOne;
  spec.X = 4.0;  // tradeoff: |peek| = d-X = 6, |enqueue| = X+eps = 5.6

  // Each process runs its own little script, concurrently with the others.
  spec.scripts = {
      {{"enqueue", Value{1}}, {"enqueue", Value{2}}},
      {{"enqueue", Value{10}}, {"peek", Value::nil()}},
      {{"dequeue", Value::nil()}},
      {{"peek", Value::nil()}, {"dequeue", Value::nil()}},
      {{"enqueue", Value{99}}},
  };

  lintime::adt::QueueType queue;
  const auto result = harness::execute(queue, spec);

  std::printf("operations (real-time order of invocation):\n");
  for (const auto& op : result.record.ops) {
    std::printf("  %s\n", op.to_string().c_str());
  }

  std::printf("\nper-operation latency (time units):\n");
  for (const auto& [op, stats] : result.latency) {
    std::printf("  %-8s  count=%zu  min=%.2f  max=%.2f\n", op.c_str(), stats.count, stats.min,
                stats.max);
  }

  const auto check = lintime::lin::check_linearizability(queue, result.record);
  std::printf("\nlinearizable: %s\n", check.linearizable ? "YES" : "NO");
  if (check.linearizable) {
    std::printf("witness: %s\n", check.witness_to_string(result.record.ops).c_str());
  }

  std::printf("\nreplica convergence: ");
  bool converged = true;
  for (const auto& s : result.final_states) converged &= (s == result.final_states[0]);
  std::printf("%s (%s)\n", converged ? "YES" : "NO", result.final_states[0].c_str());

  return check.linearizable && converged ? 0 : 1;
}
