// Tradeoff explorer: sweeps the algorithm parameter X across [0, d-eps] and
// prints the measured response time of each operation class, side by side
// with the folklore baselines.  This is the "knob" of Section 5.1.2: X
// moves time between pure accessors (d-X) and pure mutators (X+eps) while
// mixed operations stay at d+eps and the centralized baseline at 2d.
//
// Build & run:  ./build/examples/tradeoff_explorer [n] [d] [u]

#include <cstdio>
#include <cstdlib>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"

int main(int argc, char** argv) {
  using lintime::adt::Value;
  namespace harness = lintime::harness;

  lintime::sim::ModelParams params{5, 10.0, 2.0, 0.0};
  if (argc > 1) params.n = std::atoi(argv[1]);
  if (argc > 2) params.d = std::atof(argv[2]);
  if (argc > 3) params.u = std::atof(argv[3]);
  params.eps = params.optimal_eps();
  params.validate();

  lintime::adt::QueueType queue;

  auto measure = [&](harness::AlgoKind algo, double X) {
    harness::RunSpec spec;
    spec.params = params;
    spec.algo = algo;
    spec.X = X;
    spec.delays = std::make_shared<lintime::sim::ConstantDelay>(params.d);
    spec.calls = {
        harness::Call{0.0, 1, "enqueue", Value{1}},
        harness::Call{40.0, 2, "peek", Value::nil()},
        harness::Call{80.0, 3, "dequeue", Value::nil()},
    };
    return harness::execute(queue, spec);
  };

  std::printf("model: n=%d, d=%.1f, u=%.1f, eps=(1-1/n)u=%.2f\n\n", params.n, params.d,
              params.u, params.eps);
  std::printf("%8s  %12s  %12s  %12s\n", "X", "|AOP| (peek)", "|MOP| (enq)", "|OOP| (deq)");

  const int steps = 10;
  for (int i = 0; i <= steps; ++i) {
    const double X = (params.d - params.eps) * i / steps;
    const auto r = measure(harness::AlgoKind::kAlgorithmOne, X);
    std::printf("%8.2f  %12.2f  %12.2f  %12.2f\n", X, r.stats_for("peek").max,
                r.stats_for("enqueue").max, r.stats_for("dequeue").max);
  }

  const auto central = measure(harness::AlgoKind::kCentralized, 0.0);
  const auto all_oop = measure(harness::AlgoKind::kAllOop, 0.0);
  std::printf("\nbaselines (worst case over the same workload):\n");
  std::printf("  centralized: peek=%.2f enqueue=%.2f dequeue=%.2f  (folklore 2d = %.1f)\n",
              central.stats_for("peek").max, central.stats_for("enqueue").max,
              central.stats_for("dequeue").max, 2 * params.d);
  std::printf("  all-OOP:     peek=%.2f enqueue=%.2f dequeue=%.2f  (uniform d+eps = %.2f)\n",
              all_oop.stats_for("peek").max, all_oop.stats_for("enqueue").max,
              all_oop.stats_for("dequeue").max, params.d + params.eps);
  return 0;
}
