// Non-deterministic data types (the paper's future-work direction,
// Section 6.2): a task pool whose take() may hand out ANY pending task.
//
// Workers put and take tasks concurrently.  The replicas run the
// deterministic resolution (take = smallest id) through Algorithm 1; the run
// is then validated twice:
//   * against the deterministic specification, and
//   * against the relaxed non-deterministic one (any element is a legal
//     take) -- the specification under which future, faster implementations
//     could be correct even though no deterministic resolution explains
//     their behaviour.
//
// Build & run:  ./build/examples/nondet_pool

#include <cstdio>

#include "adt/pool_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "lin/nondet_checker.hpp"

int main() {
  using lintime::adt::Value;
  namespace harness = lintime::harness;

  lintime::sim::ModelParams params{4, 10.0, 2.0, 0.0};
  params.eps = params.optimal_eps();

  harness::RunSpec spec;
  spec.params = params;
  spec.X = 1.0;  // fast puts (X+eps = 2.5), size queries at d-X = 9
  spec.delays =
      std::make_shared<lintime::sim::UniformRandomDelay>(params.min_delay(), params.d, 7);

  // Producers at p0/p1, consumers at p2/p3.
  spec.scripts = {
      {{"put", Value{101}}, {"put", Value{102}}, {"size", Value::nil()}},
      {{"put", Value{201}}, {"put", Value{202}}},
      {{"take", Value::nil()}, {"take", Value::nil()}},
      {{"take", Value::nil()}, {"size", Value::nil()}},
  };

  lintime::adt::PoolType pool;
  lintime::adt::PoolNondetSpec nondet_spec;
  const auto result = harness::execute(pool, spec);

  std::printf("task pool session:\n");
  for (const auto& op : result.record.ops) {
    std::printf("  %s\n", op.to_string().c_str());
  }

  const auto det = lintime::lin::check_linearizability(pool, result.record);
  const auto relaxed = lintime::lin::check_linearizability_nondet(nondet_spec, result.record);
  std::printf("\nlinearizable w.r.t. deterministic (min-take) spec: %s\n",
              det.linearizable ? "YES" : "NO");
  std::printf("linearizable w.r.t. non-deterministic (any-take) spec: %s\n",
              relaxed.linearizable ? "YES" : "NO");

  // A history only the relaxed spec accepts: both puts complete before the
  // takes start, yet the takes come out in non-minimal order.  No min-take
  // resolution explains it; an any-take implementation could produce it.
  std::vector<lintime::sim::OpRecord> twisted;
  auto add = [&twisted](int proc, const char* op, Value arg, Value ret, double inv,
                        double resp) {
    lintime::sim::OpRecord r;
    r.proc = proc;
    r.op = op;
    r.arg = std::move(arg);
    r.ret = std::move(ret);
    r.invoke_real = inv;
    r.response_real = resp;
    r.uid = twisted.size() + 1;
    twisted.push_back(r);
  };
  add(0, "put", Value{1}, Value::nil(), 0, 1);
  add(0, "put", Value{2}, Value::nil(), 2, 3);
  add(1, "take", Value::nil(), Value{2}, 4, 5);  // non-minimal!
  add(2, "take", Value::nil(), Value{1}, 6, 7);
  const auto det2 = lintime::lin::check_linearizability(pool, twisted);
  const auto relaxed2 = lintime::lin::check_linearizability_nondet(nondet_spec, twisted);
  std::printf("\nsequential history put(1).put(2).take->2.take->1:\n");
  std::printf("  deterministic spec: %s, non-deterministic spec: %s\n",
              det2.linearizable ? "accepted" : "REJECTED",
              relaxed2.linearizable ? "accepted" : "REJECTED");

  return det.linearizable && relaxed.linearizable && !det2.linearizable &&
                 relaxed2.linearizable
             ? 0
             : 1;
}
