// Tests for the metrics reductions: nearest-rank percentiles, sample
// reduction, and record-to-JobMetrics reduction.

#include "campaign/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lintime::campaign {
namespace {

TEST(MetricsTest, PercentileNearestRank) {
  const std::vector<double> ten = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(ten, 0.0), 1);
  EXPECT_DOUBLE_EQ(percentile(ten, 0.50), 5);   // ceil(0.50 * 10) = 5
  EXPECT_DOUBLE_EQ(percentile(ten, 0.90), 9);
  EXPECT_DOUBLE_EQ(percentile(ten, 0.99), 10);  // ceil(9.9) = 10
  EXPECT_DOUBLE_EQ(percentile(ten, 1.0), 10);

  const std::vector<double> one = {42};
  EXPECT_DOUBLE_EQ(percentile(one, 0.5), 42);
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 42);
}

TEST(MetricsTest, PercentileRejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(MetricsTest, ReduceSamplesSortsInternally) {
  const auto m = reduce_samples({5, 1, 3, 2, 4});
  EXPECT_EQ(m.count, 5u);
  EXPECT_DOUBLE_EQ(m.min, 1);
  EXPECT_DOUBLE_EQ(m.max, 5);
  EXPECT_DOUBLE_EQ(m.mean, 3);
  EXPECT_DOUBLE_EQ(m.p50, 3);

  const auto empty = reduce_samples({});
  EXPECT_EQ(empty.count, 0u);
}

TEST(MetricsTest, ReduceRecordCountsAndVerdictDefault) {
  sim::RunRecord record;
  auto add = [&record](const std::string& op, double inv, double resp) {
    sim::OpRecord r;
    r.op = op;
    r.invoke_real = inv;
    r.response_real = resp;
    record.ops.push_back(r);
  };
  add("read", 0, 2);
  add("read", 10, 13);
  add("write", 0, 5);
  add("write", 20, -1);  // incomplete: invoked, never responded

  sim::MessageRecord msg;
  msg.received = true;
  record.messages.push_back(msg);
  msg.received = false;
  record.messages.push_back(msg);

  const auto m = reduce_record(record);
  EXPECT_EQ(m.ops_invoked, 4u);
  EXPECT_EQ(m.ops_complete, 3u);
  EXPECT_EQ(m.ops.at("read").count, 2u);
  EXPECT_DOUBLE_EQ(m.ops.at("read").min, 2);
  EXPECT_DOUBLE_EQ(m.ops.at("read").max, 3);
  EXPECT_EQ(m.ops.at("write").count, 1u);  // the incomplete write is excluded
  EXPECT_EQ(m.messages_sent, 2u);
  EXPECT_EQ(m.messages_dropped, 1u);
  EXPECT_EQ(m.verdict, JobMetrics::Verdict::kNotChecked);
}

TEST(MetricsTest, VerdictToString) {
  EXPECT_STREQ(to_string(JobMetrics::Verdict::kNotChecked), "not-checked");
  EXPECT_STREQ(to_string(JobMetrics::Verdict::kLinearizable), "linearizable");
  EXPECT_STREQ(to_string(JobMetrics::Verdict::kViolation), "violation");
}

}  // namespace
}  // namespace lintime::campaign
