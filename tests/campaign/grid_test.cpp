// Tests for parameter-grid expansion: deterministic ordering, value
// canonicalization, labels, and spec-error detection.

#include "campaign/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lintime::campaign {
namespace {

TEST(GridTest, CartesianProductFirstAxisSlowest) {
  Grid grid;
  grid.axis("a", std::vector<std::string>{"x", "y"});
  grid.axis("b", std::vector<int>{1, 2, 3});
  EXPECT_EQ(grid.size(), 6u);

  const auto pts = grid.points();
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0].label(), "a=x/b=1");
  EXPECT_EQ(pts[1].label(), "a=x/b=2");
  EXPECT_EQ(pts[2].label(), "a=x/b=3");
  EXPECT_EQ(pts[3].label(), "a=y/b=1");
  EXPECT_EQ(pts[5].label(), "a=y/b=3");
}

TEST(GridTest, AccessorsParseCanonicalValues) {
  Grid grid;
  grid.axis("xfrac", std::vector<double>{0.25});
  grid.range("seed", 7, 7);
  const auto pts = grid.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].get("xfrac"), "0.25");
  EXPECT_DOUBLE_EQ(pts[0].num("xfrac"), 0.25);
  EXPECT_EQ(pts[0].integer("seed"), 7);
  EXPECT_THROW((void)pts[0].get("nope"), std::out_of_range);
  EXPECT_THROW((void)pts[0].integer("xfrac"), std::invalid_argument);
}

TEST(GridTest, DoubleAxisUsesShortestRoundTrip) {
  // 0.1 must come out as "0.1", not a 17-digit expansion; the label is part
  // of the job name and must be stable and human-readable.
  Grid grid;
  grid.axis("v", std::vector<double>{0.1, 1.0 / 3.0});
  const auto pts = grid.points();
  EXPECT_EQ(pts[0].get("v"), "0.1");
  EXPECT_DOUBLE_EQ(pts[1].num("v"), 1.0 / 3.0);  // round-trips exactly
}

TEST(GridTest, RangeIsInclusive) {
  Grid grid;
  grid.range("seed", 1, 4);
  EXPECT_EQ(grid.size(), 4u);
  const auto pts = grid.points();
  EXPECT_EQ(pts.front().integer("seed"), 1);
  EXPECT_EQ(pts.back().integer("seed"), 4);
  EXPECT_THROW(Grid().range("bad", 3, 2), std::invalid_argument);
}

TEST(GridTest, SpecErrorsDetectedAtExpansion) {
  EXPECT_THROW((void)Grid().points(), std::logic_error);

  Grid empty_axis;
  empty_axis.axis("a", std::vector<std::string>{});
  EXPECT_THROW((void)empty_axis.points(), std::invalid_argument);

  Grid dup;
  dup.axis("a", std::vector<int>{1}).axis("a", std::vector<int>{2});
  EXPECT_THROW((void)dup.points(), std::invalid_argument);
}

TEST(GridTest, SizeOfEmptyGridIsZero) {
  EXPECT_EQ(Grid().size(), 0u);
}

}  // namespace
}  // namespace lintime::campaign
