// Tests for the campaign executor and sinks.  The load-bearing property is
// the determinism contract: results are keyed by job index, so every byte a
// sink emits is identical no matter how many worker threads ran the jobs.

#include "campaign/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "campaign/grid.hpp"
#include "campaign/sink.hpp"
#include "sim/delay_model.hpp"

namespace lintime::campaign {
namespace {

using adt::Value;

/// A small but non-trivial campaign: a grid over X-fraction and seed, with
/// random workloads, seeded random delays and one message-dropping job.
CampaignSpec small_campaign(const adt::DataType& type) {
  sim::ModelParams params{3, 10.0, 2.0, 0.0};
  params.eps = params.optimal_eps();

  Grid grid;
  grid.axis("xfrac", std::vector<double>{0.0, 0.5, 1.0});
  grid.range("seed", 1, 3);

  CampaignSpec spec;
  spec.name = "test-campaign";
  for (const auto& pt : grid.points()) {
    Job job;
    job.name = pt.label();
    job.tags = pt.coords();
    job.type = &type;
    job.check_linearizability = true;
    job.spec.params = params;
    job.spec.X = (params.d - params.eps) * pt.num("xfrac");
    const auto seed = static_cast<std::uint64_t>(pt.integer("seed"));
    job.spec.scripts = harness::random_scripts(type, params.n, 3, seed * 17);
    job.spec.delays =
        std::make_shared<sim::UniformRandomDelay>(params.min_delay(), params.d, seed);
    spec.jobs.push_back(std::move(job));
  }
  // One lossy job exercising the drop-seed path through the executor.
  Job lossy;
  lossy.name = "lossy";
  lossy.type = &type;
  lossy.spec.params = params;
  lossy.spec.scripts = harness::random_scripts(type, params.n, 3, 5);
  lossy.spec.drop_probability = 0.2;
  lossy.spec.drop_seed = 42;
  spec.jobs.push_back(std::move(lossy));
  return spec;
}

TEST(ExecutorTest, RunsAllJobsInSpecOrder) {
  adt::QueueType queue;
  const auto spec = small_campaign(queue);
  const auto result = run_campaign(spec);
  ASSERT_EQ(result.jobs.size(), spec.jobs.size());
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    EXPECT_EQ(result.jobs[i].index, i);
    EXPECT_EQ(result.jobs[i].name, spec.jobs[i].name);
    EXPECT_TRUE(result.jobs[i].ok) << result.jobs[i].error;
    EXPECT_GT(result.jobs[i].metrics.ops_complete, 0u);
    EXPECT_FALSE(result.jobs[i].latency_samples.empty());
  }
  const auto agg = result.aggregate();
  EXPECT_EQ(agg.jobs_total, spec.jobs.size());
  EXPECT_EQ(agg.jobs_failed, 0u);
  EXPECT_EQ(agg.jobs_checked, spec.jobs.size() - 1);  // "lossy" is unchecked
  EXPECT_GT(agg.messages_sent, 0u);
}

TEST(ExecutorTest, SinkOutputByteIdenticalAcrossThreadCounts) {
  // Each run gets a freshly built (but identical) spec: the per-job seeded
  // delay models are stateful, so reusing one spec object would carry RNG
  // state from the first execution into the second.
  adt::QueueType queue;

  ExecutorOptions serial;
  serial.jobs = 1;
  const auto a = run_campaign(small_campaign(queue), serial);

  ExecutorOptions parallel;
  parallel.jobs = 4;
  const auto b = run_campaign(small_campaign(queue), parallel);

  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(to_csv(a), to_csv(b));
}

TEST(ExecutorTest, RecordsKeptOnlyOnRequest) {
  adt::QueueType queue;
  auto spec = small_campaign(queue);
  spec.jobs.resize(2);

  const auto dropped = run_campaign(spec);
  EXPECT_TRUE(dropped.jobs[0].run.record.ops.empty());
  EXPECT_FALSE(dropped.jobs[0].latency_samples.empty());  // survives the drop

  ExecutorOptions keep;
  keep.keep_records = true;
  const auto kept = run_campaign(spec, keep);
  EXPECT_FALSE(kept.jobs[0].run.record.ops.empty());
}

TEST(ExecutorTest, JobExceptionCapturedNotPropagated) {
  adt::QueueType queue;
  CampaignSpec spec;
  spec.name = "failing";
  Job bad;
  bad.name = "unknown-op";
  bad.type = &queue;
  bad.spec.params = sim::ModelParams{2, 10.0, 2.0, 1.0};
  bad.spec.scripts = {{harness::ScriptOp{"frobnicate", Value::nil()}}, {}};
  spec.jobs.push_back(std::move(bad));

  const auto result = run_campaign(spec);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].ok);
  EXPECT_FALSE(result.jobs[0].error.empty());
  EXPECT_EQ(result.aggregate().jobs_failed, 1u);

  // The failure still round-trips through the sinks.
  EXPECT_NE(to_json(result).find("\"ok\":false"), std::string::npos);
}

TEST(ExecutorTest, SpecErrorsThrowBeforeAnyJobRuns) {
  adt::QueueType queue;
  const sim::ModelParams params{2, 10.0, 2.0, 1.0};

  CampaignSpec null_type;
  null_type.jobs.emplace_back();
  null_type.jobs[0].name = "j";
  EXPECT_THROW((void)run_campaign(null_type), std::invalid_argument);

  CampaignSpec dup;
  for (int i = 0; i < 2; ++i) {
    Job j;
    j.name = "same";
    j.type = &queue;
    j.spec.params = params;
    dup.jobs.push_back(std::move(j));
  }
  EXPECT_THROW((void)run_campaign(dup), std::invalid_argument);
}

TEST(ExecutorTest, SharedStatefulDelayModelRejected) {
  adt::QueueType queue;
  const sim::ModelParams params{2, 10.0, 2.0, 1.0};
  auto make_spec = [&](std::shared_ptr<sim::DelayModel> shared) {
    CampaignSpec spec;
    for (int i = 0; i < 2; ++i) {
      Job j;
      j.name = "job" + std::to_string(i);
      j.type = &queue;
      j.spec.params = params;
      j.spec.scripts = {{harness::ScriptOp{"enqueue", Value{i}}}, {}};
      j.spec.delays = shared;
      spec.jobs.push_back(std::move(j));
    }
    return spec;
  };

  // A stateful model shared by two jobs would make results depend on the
  // order worker threads consume randomness: reject up front.
  const auto rng = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 1);
  EXPECT_THROW((void)run_campaign(make_spec(rng)), std::invalid_argument);

  // Stateless models are safe to share; per-job stateful models are fine.
  const auto constant = std::make_shared<sim::ConstantDelay>(9.0);
  EXPECT_NO_THROW((void)run_campaign(make_spec(constant)));
  auto per_job = make_spec(nullptr);
  per_job.jobs[0].spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 1);
  per_job.jobs[1].spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 2);
  EXPECT_NO_THROW((void)run_campaign(per_job));
}

TEST(ExecutorTest, ProgressCallbackSeesEveryJob) {
  adt::RegisterType reg;
  CampaignSpec spec;
  for (int i = 0; i < 5; ++i) {
    Job j;
    j.name = "w" + std::to_string(i);
    j.type = &reg;
    j.spec.params = sim::ModelParams{2, 10.0, 2.0, 1.0};
    j.spec.scripts = {{harness::ScriptOp{"write", Value{i}}}, {}};
    spec.jobs.push_back(std::move(j));
  }
  std::vector<std::size_t> seen;
  ExecutorOptions opts;
  opts.jobs = 2;
  opts.on_progress = [&seen](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 5u);
    seen.push_back(done);
  };
  (void)run_campaign(spec, opts);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.back(), 5u);  // counts are cumulative and end at total
}

TEST(ExecutorTest, ResolveJobsClampsToJobCountAndFloorOne) {
  EXPECT_EQ(resolve_jobs(4, 100), 4);
  EXPECT_EQ(resolve_jobs(8, 3), 3);
  EXPECT_EQ(resolve_jobs(5, 0), 1);  // empty campaign still gets a worker
  // 0 (and any non-positive request) means the hardware default, clamped to
  // [1, job_count].
  EXPECT_GE(resolve_jobs(0, 10), 1);
  EXPECT_LE(resolve_jobs(0, 2), 2);
  EXPECT_GE(resolve_jobs(-2, 10), 1);
}

TEST(SinkTest, FmtDoubleShortestRoundTrip) {
  EXPECT_EQ(fmt_double(0.1), "0.1");
  EXPECT_EQ(fmt_double(0.0), "0");
  EXPECT_EQ(fmt_double(-0.0), "0");
  EXPECT_EQ(fmt_double(5.0), "5");
  EXPECT_EQ(fmt_double(10.0), "10");
  EXPECT_EQ(fmt_double(-3.0), "-3");
  EXPECT_EQ(fmt_double(8.4), "8.4");
}

TEST(SinkTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(SinkTest, CsvHasHeaderAndOneRowPerJobOp) {
  adt::RegisterType reg;
  CampaignSpec spec;
  spec.name = "csv-test";
  Job j;
  j.name = "writes";
  j.type = &reg;
  j.spec.params = sim::ModelParams{2, 10.0, 2.0, 1.0};
  j.spec.scripts = {{harness::ScriptOp{"write", Value{1}}, harness::ScriptOp{"read", Value::nil()}},
                    {}};
  spec.jobs.push_back(std::move(j));

  const auto csv = to_csv(run_campaign(spec));
  EXPECT_EQ(csv.rfind("campaign,index,job,tags,ok,", 0), 0u);  // header first
  // header + one row per op (read, write).
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

}  // namespace
}  // namespace lintime::campaign
