// Tests for the Lundelius-Lynch clock synchronization substrate: achieved
// logical skew is at most (1 - 1/n) u under every delay assignment we throw
// at it, including the worst-case asymmetric one.

#include "clocksync/lundelius_lynch.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace lintime::clocksync {
namespace {

constexpr double kTol = 1e-9;

TEST(ClockSyncTest, AlreadySynchronizedStaysSynchronized) {
  sim::ModelParams p{4, 10.0, 2.0, 1.5};
  const auto outcome =
      synchronize(p, {0, 0, 0, 0}, std::make_shared<sim::ConstantDelay>(9.0));
  EXPECT_LE(outcome.achieved_skew, outcome.optimal_skew + kTol);
}

TEST(ClockSyncTest, SymmetricDelaysGiveNearPerfectSync) {
  // With all delays equal to d - u/2 the midpoint estimate is exact, so
  // arbitrary hardware offsets collapse to (near) zero skew.
  sim::ModelParams p{3, 10.0, 2.0, 100.0};
  const auto outcome =
      synchronize(p, {5.0, -3.0, 11.0}, std::make_shared<sim::ConstantDelay>(9.0));
  EXPECT_NEAR(outcome.achieved_skew, 0.0, kTol);
}

TEST(ClockSyncTest, WorstCaseAsymmetryWithinOptimalBound) {
  // Adversarial delays: everything p0 sends is fast (d-u), everything p0
  // receives is slow (d) -- the classic worst case for estimating p0.
  for (const int n : {2, 3, 4, 5, 8}) {
    sim::ModelParams p{n, 10.0, 2.0, 100.0};
    auto delays = std::make_shared<sim::FunctionDelay>(
        [&p](sim::ProcId src, sim::ProcId, sim::Time, std::uint64_t) {
          return src == 0 ? p.min_delay() : p.d;
        });
    const auto outcome = synchronize(p, std::vector<sim::Time>(static_cast<std::size_t>(n), 0.0),
                                     delays);
    EXPECT_LE(outcome.achieved_skew, (1.0 - 1.0 / n) * p.u + kTol) << "n=" << n;
  }
}

TEST(ClockSyncTest, RandomDelaysWithinOptimalBound) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::ModelParams p{5, 10.0, 2.0, 100.0};
    const auto outcome = synchronize(
        p, {1.0, -2.0, 0.5, 3.0, -1.5},
        std::make_shared<sim::UniformRandomDelay>(p.min_delay(), p.d, seed));
    EXPECT_LE(outcome.achieved_skew, outcome.optimal_skew + kTol) << "seed=" << seed;
  }
}

TEST(ClockSyncTest, AdjustmentsCancelHardwareOffsets) {
  sim::ModelParams p{3, 10.0, 2.0, 100.0};
  const std::vector<sim::Time> hw = {4.0, -4.0, 0.0};
  const auto outcome = synchronize(p, hw, std::make_shared<sim::ConstantDelay>(9.0));
  // Logical offsets are uniform across processes (common value irrelevant).
  EXPECT_NEAR(outcome.logical_offsets[0], outcome.logical_offsets[1], kTol);
  EXPECT_NEAR(outcome.logical_offsets[1], outcome.logical_offsets[2], kTol);
}

TEST(ClockSyncTest, OptimalSkewFormula) {
  sim::ModelParams p{5, 10.0, 2.0, 1.0};
  const auto outcome = synchronize(p, {0, 0, 0, 0, 0}, std::make_shared<sim::ConstantDelay>(9.0));
  EXPECT_DOUBLE_EQ(outcome.optimal_skew, 1.6);  // (1 - 1/5) * 2
}

TEST(ClockSyncTest, WrongOffsetsSizeThrows) {
  sim::ModelParams p{3, 10.0, 2.0, 1.0};
  EXPECT_THROW((void)synchronize(p, {0.0}, std::make_shared<sim::ConstantDelay>(9.0)),
               std::invalid_argument);
}

TEST(ClockSyncTest, SyncedClocksSatisfyAlgorithmOnePrecondition) {
  // End-to-end: synchronize, then feed the achieved offsets to the model as
  // eps -- they must fit within the paper's assumed (1-1/n)u bound used by
  // the tables.
  sim::ModelParams p{5, 10.0, 2.0, 100.0};
  auto delays = std::make_shared<sim::UniformRandomDelay>(p.min_delay(), p.d, 99);
  const auto outcome = synchronize(p, {2.0, -1.0, 0.0, 1.0, -2.0}, delays);
  EXPECT_LE(outcome.achieved_skew, (1.0 - 1.0 / 5) * p.u + kTol);
}

}  // namespace
}  // namespace lintime::clocksync
