// Integration tests backing Tables 1-4: for each data type, the measured
// worst-case latency of Algorithm 1 matches the paper's upper-bound column
// exactly, beats the centralized folklore baseline, and sits above the
// paper's lower-bound column (with the unsafe variants violating it, covered
// in shift/theorems_test.cpp).

#include <gtest/gtest.h>

#include <memory>

#include "adt/queue_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime {
namespace {

using adt::Value;
using harness::AlgoKind;
using harness::RunSpec;

sim::ModelParams table_params() {
  sim::ModelParams p{5, 10.0, 2.0, 0.0};
  p.eps = p.optimal_eps();  // (1 - 1/n) u = 1.6, as the paper's examples assume
  return p;
}

/// Worst-case measured latencies under the max-delay adversary with a
/// closed-loop mixed workload.
harness::RunResult measure(const adt::DataType& type, AlgoKind algo, double X) {
  RunSpec spec;
  spec.params = table_params();
  spec.algo = algo;
  spec.X = X;
  spec.delays = std::make_shared<sim::ConstantDelay>(spec.params.d);
  spec.scripts = harness::random_scripts(type, spec.params.n, 6, 2024);
  auto result = harness::execute(type, spec);
  return result;
}

class TableTest : public ::testing::TestWithParam<double> {};  // X values

TEST_P(TableTest, Table1RmwRegisterUpperBounds) {
  const double X = GetParam();
  adt::RmwRegisterType reg;
  const auto p = table_params();
  const auto result = measure(reg, AlgoKind::kAlgorithmOne, X);
  EXPECT_NEAR(result.stats_for("read").max, p.d - X, 1e-9);
  EXPECT_NEAR(result.stats_for("write").max, X + p.eps, 1e-9);
  EXPECT_LE(result.stats_for("fetch_add").max, p.d + p.eps + 1e-9);
  EXPECT_TRUE(lin::check_linearizability(reg, result.record).linearizable);
}

TEST_P(TableTest, Table2QueueUpperBounds) {
  const double X = GetParam();
  adt::QueueType queue;
  const auto p = table_params();
  const auto result = measure(queue, AlgoKind::kAlgorithmOne, X);
  EXPECT_NEAR(result.stats_for("peek").max, p.d - X, 1e-9);
  EXPECT_NEAR(result.stats_for("enqueue").max, X + p.eps, 1e-9);
  EXPECT_LE(result.stats_for("dequeue").max, p.d + p.eps + 1e-9);
  EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable);
}

TEST_P(TableTest, Table3StackUpperBounds) {
  const double X = GetParam();
  adt::StackType st;
  const auto p = table_params();
  const auto result = measure(st, AlgoKind::kAlgorithmOne, X);
  EXPECT_NEAR(result.stats_for("peek").max, p.d - X, 1e-9);
  EXPECT_NEAR(result.stats_for("push").max, X + p.eps, 1e-9);
  EXPECT_LE(result.stats_for("pop").max, p.d + p.eps + 1e-9);
  EXPECT_TRUE(lin::check_linearizability(st, result.record).linearizable);
}

TEST_P(TableTest, Table4TreeUpperBounds) {
  const double X = GetParam();
  adt::TreeType tree;
  const auto p = table_params();
  const auto result = measure(tree, AlgoKind::kAlgorithmOne, X);
  EXPECT_NEAR(result.stats_for("depth").max, p.d - X, 1e-9);
  EXPECT_NEAR(result.stats_for("insert").max, X + p.eps, 1e-9);
  EXPECT_NEAR(result.stats_for("remove").max, X + p.eps, 1e-9);
  EXPECT_TRUE(lin::check_linearizability(tree, result.record).linearizable);
}

INSTANTIATE_TEST_SUITE_P(XValues, TableTest, ::testing::Values(0.0, 4.2, 8.4),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "X" + std::to_string(static_cast<int>(info.param * 10));
                         });

TEST(TableComparisonTest, AlgorithmOneBeatsCentralizedOnEveryClass) {
  // Sum over classes: with X = (d-eps)/2 every class is strictly below the
  // centralized baseline's worst case 2d.
  adt::QueueType queue;
  const auto p = table_params();
  const double X = (p.d - p.eps) / 2;

  const auto ours = measure(queue, AlgoKind::kAlgorithmOne, X);
  const auto central = measure(queue, AlgoKind::kCentralized, 0.0);

  for (const auto& [op, stats] : ours.latency) {
    EXPECT_LT(stats.max, 2 * p.d) << op;
  }
  // Centralized remote ops hit 2d under the max-delay adversary.
  double central_max = 0;
  for (const auto& [op, stats] : central.latency) central_max = std::max(central_max, stats.max);
  EXPECT_NEAR(central_max, 2 * p.d, 1e-9);
}

TEST(TableComparisonTest, WritePlusReadMatchesDPlusEps) {
  // Table 1's "Write + Read" row: |Write| + |Read| = (X+eps) + (d-X) = d+eps
  // for every X -- the tradeoff moves time between the two, never the sum.
  adt::RmwRegisterType reg;
  const auto p = table_params();
  for (const double X : {0.0, 2.0, 7.0}) {
    const auto result = measure(reg, AlgoKind::kAlgorithmOne, X);
    EXPECT_NEAR(result.stats_for("write").max + result.stats_for("read").max, p.d + p.eps,
                1e-9);
  }
}

TEST(TableComparisonTest, SumLowerBoundConsistency) {
  // d + min{eps,u,d/3} <= d + eps: the paper's upper bound for the sum is
  // tight when eps < d/3 and eps <= u (Section 6.1).
  const auto p = table_params();
  EXPECT_LE(p.d + p.m(), p.d + p.eps + 1e-12);
  EXPECT_DOUBLE_EQ(p.m(), p.eps);  // here eps = 1.6 < u = 2 < d/3 = 3.33
}

}  // namespace
}  // namespace lintime
