// Integration tests for the model-level properties the paper's lower bounds
// assume of algorithms (Section 2.3) -- Eventual Quiescence and History
// Oblivion -- plus the end-to-end pipeline: synchronize clocks with the
// Lundelius-Lynch substrate, then run Algorithm 1 on the achieved skew.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "adt/queue_type.hpp"
#include "clocksync/lundelius_lynch.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "sim/world.hpp"

namespace lintime {
namespace {

using adt::Value;

TEST(ModelPropertiesTest, EventualQuiescence) {
  // Every complete admissible run with finitely many operations is finite:
  // the event queue drains, and the last step happens within one
  // message+settle window of the last response.
  adt::QueueType queue;
  harness::RunSpec spec;
  spec.params = sim::ModelParams{4, 10.0, 2.0, 1.5};
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 9);
  spec.scripts = harness::random_scripts(queue, 4, 5, 77);
  const auto result = harness::execute(queue, spec);  // would throw on runaway

  double last_response = 0;
  for (const auto& op : result.record.ops) {
    last_response = std::max(last_response, op.response_real);
  }
  const double bound = last_response + spec.params.d + spec.params.u + spec.params.eps;
  EXPECT_LE(result.record.last_time(), bound);
}

TEST(ModelPropertiesTest, HistoryOblivionAcrossDelayAssignments) {
  // The same operation sequence executed solo at p0 leaves every process in
  // the same final state regardless of message delays and clock offsets --
  // the History Oblivion condition the chop/append constructions rely on.
  adt::QueueType queue;
  const std::vector<harness::ScriptOp> rho = {
      {"enqueue", Value{1}}, {"enqueue", Value{2}}, {"dequeue", Value::nil()},
      {"peek", Value::nil()}, {"enqueue", Value{3}},
  };

  auto run_with = [&](std::shared_ptr<sim::DelayModel> delays, std::vector<double> offsets) {
    harness::RunSpec spec;
    spec.params = sim::ModelParams{3, 10.0, 2.0, 1.5};
    spec.delays = std::move(delays);
    spec.clock_offsets = std::move(offsets);
    spec.scripts = {rho, {}, {}};
    return harness::execute(queue, spec).final_states;
  };

  const auto a = run_with(std::make_shared<sim::ConstantDelay>(10.0), {});
  const auto b = run_with(std::make_shared<sim::ConstantDelay>(8.0), {0.7, -0.7, 0.0});
  const auto c =
      run_with(std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 123), {-0.5, 0.5, 0.2});

  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  for (const auto& state : a) EXPECT_EQ(state, a[0]);
}

TEST(ModelPropertiesTest, ClockSyncThenAlgorithmOnePipeline) {
  // Start from badly skewed hardware clocks, synchronize to (1-1/n)u, and
  // run Algorithm 1 with the achieved logical offsets: linearizable.
  sim::ModelParams params{5, 10.0, 2.0, 0.0};
  params.eps = params.optimal_eps();

  const std::vector<double> hardware = {3.0, -2.0, 5.0, 0.0, -4.0};
  const auto sync = clocksync::synchronize(
      params, hardware, std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 31));
  ASSERT_LE(sync.achieved_skew, params.eps + 1e-9);

  // Re-center the logical offsets (a common additive constant is
  // unobservable) and feed them to the algorithm run.
  std::vector<double> offsets = sync.logical_offsets;
  const double mean =
      std::accumulate(offsets.begin(), offsets.end(), 0.0) / static_cast<double>(offsets.size());
  for (auto& c : offsets) c -= mean;

  adt::QueueType queue;
  harness::RunSpec spec;
  spec.params = params;
  spec.clock_offsets = offsets;
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 32);
  spec.scripts = harness::random_scripts(queue, 5, 4, 55);
  const auto result = harness::execute(queue, spec);

  EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable);
  for (const auto& state : result.final_states) EXPECT_EQ(state, result.final_states[0]);
}

TEST(ModelPropertiesTest, DeterministicReplayBitForBit) {
  // The simulator is deterministic: identical configurations produce
  // identical records (the property the record-level shifting machinery
  // depends on).
  adt::QueueType queue;
  auto run_once = [&queue] {
    harness::RunSpec spec;
    spec.params = sim::ModelParams{4, 10.0, 2.0, 1.5};
    spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 2024);
    spec.scripts = harness::random_scripts(queue, 4, 6, 2024);
    return harness::execute(queue, spec).record;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].real_time, b.steps[i].real_time);
    EXPECT_EQ(a.steps[i].proc, b.steps[i].proc);
    EXPECT_EQ(a.steps[i].trigger, b.steps[i].trigger);
  }
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].ret, b.ops[i].ret);
    EXPECT_EQ(a.ops[i].response_real, b.ops[i].response_real);
  }
}

}  // namespace
}  // namespace lintime
