// EventRing tests: unit coverage of the calendar queue's ordering contract
// (time order, tie ranks, FIFO sequence, far staging, sparse jumps, the
// bucket-aliasing regression) plus the scheduler-equivalence suite: 60
// seeded workloads run under both the event ring and the legacy binary
// heap, asserting BYTE-identical serialized records -- including tie
// storms, drift/drop extensions, and the timers_before_deliveries ablation
// in both directions.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <string>
#include <vector>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "harness/runner.hpp"
#include "sim/event_ring.hpp"
#include "sim/trace_io.hpp"
#include "sim/world.hpp"

namespace lintime::sim {
namespace {

RingEvent ev(Time when, int tie_rank, std::uint64_t seq) {
  RingEvent e;
  e.when = when;
  e.order = ring_order(tie_rank, seq);
  e.id = seq;  // so tests can identify events after popping
  return e;
}

TEST(EventRingTest, PopsInTimeOrder) {
  EventRing ring(EventRing::width_for(10.0));
  const std::vector<double> times = {5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0};
  std::uint64_t seq = 0;
  for (const double t : times) ring.push(ev(t, 0, seq++));
  double prev = -1;
  while (!ring.empty()) {
    const RingEvent e = ring.pop();
    EXPECT_GT(e.when, prev);
    prev = e.when;
  }
}

TEST(EventRingTest, FifoAmongEqualTimes) {
  EventRing ring(EventRing::width_for(10.0));
  for (std::uint64_t s : {7u, 3u, 9u, 1u, 5u}) ring.push(ev(4.0, 0, s));
  std::uint64_t prev = 0;
  while (!ring.empty()) {
    const RingEvent e = ring.pop();
    EXPECT_GT(e.id, prev);  // ascending seq = FIFO among ties
    prev = e.id;
  }
}

TEST(EventRingTest, TieRankDominatesSequence) {
  EventRing ring(EventRing::width_for(10.0));
  ring.push(ev(4.0, 1, 1));  // earlier seq, higher rank
  ring.push(ev(4.0, 0, 2));  // later seq, lower rank -- must pop first
  EXPECT_EQ(ring.pop().id, 2u);
  EXPECT_EQ(ring.pop().id, 1u);
}

TEST(EventRingTest, SparseScheduleJumpsEmptyEpochs) {
  // Events 10^6 time units apart: the ring must jump, not crawl epoch by
  // epoch (this test hangs if it crawls).
  EventRing ring(EventRing::width_for(10.0));
  for (int i = 0; i < 5; ++i) ring.push(ev(i * 1e6, 0, static_cast<std::uint64_t>(i)));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ring.pop().id, static_cast<std::uint64_t>(i));
  EXPECT_TRUE(ring.empty());
}

TEST(EventRingTest, FarEventsStageInCorrectOrder) {
  // A beyond-horizon event pushed FIRST must still pop after every
  // in-horizon event that precedes it in time.
  EventRing ring(1, 8);  // tiny ring: horizon = 8 ticks
  ring.push(ev(100.0 / kTickGrid, 0, 0));  // bucket 100, far
  for (int i = 1; i <= 9; ++i) ring.push(ev(i / kTickGrid, 0, static_cast<std::uint64_t>(i)));
  std::vector<std::uint64_t> popped;
  while (!ring.empty()) popped.push_back(ring.pop().id);
  EXPECT_EQ(popped, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 0}));
}

TEST(EventRingTest, BucketAliasingRegression) {
  // Regression: a staged event exactly B buckets ahead of the draining
  // bucket must NOT enter the slot the draining bucket still occupies (it
  // would pop a whole revolution early).  Buckets 1..9 on an 8-bucket ring
  // exercise the alias pair (1, 9).
  EventRing ring(1, 8);
  for (int i = 9; i >= 1; --i) ring.push(ev(i / kTickGrid, 0, static_cast<std::uint64_t>(i)));
  std::uint64_t prev = 0;
  while (!ring.empty()) {
    const RingEvent e = ring.pop();
    EXPECT_EQ(e.id, prev + 1);
    prev = e.id;
  }
  EXPECT_EQ(prev, 9u);
}

TEST(EventRingTest, PushDuringDrainMergesInKeyOrder) {
  EventRing ring(EventRing::width_for(10.0));
  ring.push(ev(1.0, 0, 1));
  ring.push(ev(1.0, 0, 5));
  EXPECT_EQ(ring.pop().id, 1u);
  // Same time, seq between the popped and the pending event: pops next.
  ring.push(ev(1.0, 0, 3));
  // Same time, rank 1: pops after every rank-0 event.
  ring.push(ev(1.0, 1, 2));
  EXPECT_EQ(ring.pop().id, 3u);
  EXPECT_EQ(ring.pop().id, 5u);
  EXPECT_EQ(ring.pop().id, 2u);
  EXPECT_TRUE(ring.empty());
}

TEST(EventRingTest, PopEmptyThrows) {
  EventRing ring;
  EXPECT_THROW(ring.pop(), std::logic_error);
}

TEST(EventRingTest, RandomizedAgainstBinaryHeap) {
  // Differential check against the legacy scheduler the ring replaced: a
  // min-heap on (when, order).  Pushes and pops interleave exactly as the
  // World's dispatch loop interleaves them (including same-time pushes
  // during a pop epoch), and the two pop sequences must match event for
  // event.
  struct HeapGreater {
    bool operator()(const RingEvent& a, const RingEvent& b) const {
      return ring_event_less(b, a);
    }
  };
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::mt19937_64 rng(seed);
    EventRing ring(EventRing::width_for(10.0));
    std::priority_queue<RingEvent, std::vector<RingEvent>, HeapGreater> heap;
    double now = 0;
    std::uint64_t seq = 0;
    int checked = 0;
    for (int round = 0; round < 2000; ++round) {
      const int pushes = static_cast<int>(rng() % 4);
      for (int i = 0; i < pushes; ++i) {
        // Monotone times (the World never schedules in the past), mixed
        // ranks, occasional far-future spikes and exact ties with `now`.
        const double jump = (rng() % 20 == 0) ? 5000.0 : 0.0;
        const double delta = static_cast<double>(rng() % 1000) / 100.0 + jump;
        const RingEvent e = ev(now + delta, static_cast<int>(rng() % 3), seq++);
        ring.push(e);
        heap.push(e);
      }
      if (!ring.empty() && rng() % 2 == 0) {
        const RingEvent r = ring.pop();
        const RingEvent h = heap.top();
        heap.pop();
        ASSERT_EQ(r.id, h.id) << "seed " << seed << " after " << checked << " pops";
        now = r.when;
        ++checked;
      }
    }
    while (!ring.empty()) {
      const RingEvent r = ring.pop();
      const RingEvent h = heap.top();
      heap.pop();
      ASSERT_EQ(r.id, h.id) << "seed " << seed << " drain after " << checked << " pops";
      ++checked;
    }
    EXPECT_TRUE(heap.empty()) << "seed " << seed;
    EXPECT_GT(checked, 1000) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Scheduler equivalence: event ring vs. legacy binary heap
// ---------------------------------------------------------------------------

std::string ops_to_string(const RunRecord& record) {
  std::string out;
  for (const auto& op : record.ops) {
    out += op.to_string();
    out += '\n';
  }
  return out;
}

/// Runs one spec under the full {heap, ring} x {kFull, kOpsOnly} matrix and
/// asserts byte-identical records between schedulers at each detail level,
/// plus byte-identical ops arrays across ALL four runs (the detail knob
/// changes what is recorded, never what happens).  `make_spec` is invoked
/// once per run: stateful delay models draw from a sequential RNG, so each
/// run needs a freshly seeded instance.
void expect_schedulers_agree(const adt::DataType& type,
                             const std::function<harness::RunSpec()>& make_spec,
                             const std::string& label) {
  harness::RunResult runs[2][2];  // [scheduler][detail]
  for (const auto sched : {SchedulerKind::kBinaryHeap, SchedulerKind::kEventRing}) {
    for (const auto detail : {RecordDetail::kFull, RecordDetail::kOpsOnly}) {
      harness::RunSpec spec = make_spec();
      spec.scheduler = sched;
      spec.record_detail = detail;
      runs[sched == SchedulerKind::kEventRing ? 1 : 0]
          [detail == RecordDetail::kOpsOnly ? 1 : 0] = harness::execute(type, spec);
    }
  }
  EXPECT_EQ(record_to_string(runs[0][0].record), record_to_string(runs[1][0].record))
      << label << " (full detail)";
  EXPECT_EQ(record_to_string(runs[0][1].record), record_to_string(runs[1][1].record))
      << label << " (ops only)";
  EXPECT_EQ(runs[0][0].final_states, runs[1][0].final_states) << label;
  const std::string ops = ops_to_string(runs[0][0].record);
  EXPECT_EQ(ops, ops_to_string(runs[0][1].record)) << label << " (heap, detail levels)";
  EXPECT_EQ(ops, ops_to_string(runs[1][1].record)) << label << " (ring ops-only vs heap full)";
}

TEST(SchedulerEquivalenceTest, SixtySeedsByteIdentical) {
  adt::QueueType queue;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto make_spec = [&queue, seed] {
      harness::RunSpec spec;
      const int n = 2 + static_cast<int>(seed % 4);  // 2..5 processes
      spec.params = ModelParams{n, 10.0, 2.0, 0.0};
      spec.params.eps = spec.params.optimal_eps();
      spec.X = (seed % 3 == 0) ? (spec.params.d - spec.params.eps) / 2 : 0.0;
      spec.delays = std::make_shared<UniformRandomDelay>(spec.params.min_delay(),
                                                         spec.params.d, seed);
      // Every third seed adds the model extensions (drift + loss); every
      // fourth skews the clocks.
      if (seed % 3 == 1) {
        spec.clock_rates.assign(static_cast<std::size_t>(n), 1.0);
        spec.clock_rates[0] = 1.01;
        spec.clock_rates[1] = 0.99;
        spec.drop_probability = 0.1;
        spec.drop_seed = seed * 13;
      }
      if (seed % 4 == 1) {
        for (int p = 0; p < n; ++p) spec.clock_offsets.push_back((p % 2 == 0) ? 0.4 : -0.4);
      }
      spec.scripts = harness::random_scripts(queue, n, 5, seed * 31);
      return spec;
    };
    expect_schedulers_agree(queue, make_spec, "seed " + std::to_string(seed));
  }
}

TEST(SchedulerEquivalenceTest, TieStormByteIdentical) {
  // Every process invokes at the SAME instants under constant delays:
  // maximal (when)-ties, so ordering is decided purely by tie rank and FIFO
  // sequence -- the part of the contract the ring must preserve exactly.
  adt::QueueType queue;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto make_spec = [&queue, seed] {
      harness::RunSpec spec;
      spec.params = ModelParams{4, 10.0, 2.0, 0.0};
      spec.params.eps = spec.params.optimal_eps();
      const auto scripts = harness::random_scripts(queue, 4, 6, seed);
      for (int i = 0; i < 6; ++i) {
        for (int p = 0; p < 4; ++p) {
          spec.calls.push_back(harness::Call{20.0 * i, p,
                                             scripts[static_cast<std::size_t>(p)][i].op,
                                             scripts[static_cast<std::size_t>(p)][i].arg});
        }
      }
      return spec;
    };
    expect_schedulers_agree(queue, make_spec, "tie storm seed " + std::to_string(seed));
  }
}

TEST(SchedulerEquivalenceTest, BroadcastTieStormByteIdentical) {
  // All six processes invoke MUTATORS at the same instants under the default
  // constant delay, so every epoch fans n*(n-1) broadcast deliveries out to
  // identical arrival times.  The ring's shared-payload fan-out (one stored
  // payload, n-1 referencing entries) must replay the heap's per-send
  // delivery order exactly -- at both record detail levels, via the matrix
  // in expect_schedulers_agree.
  adt::QueueType queue;
  for (const std::uint64_t seed : {3u, 14u, 15u, 92u}) {
    const auto make_spec = [seed] {
      harness::RunSpec spec;
      spec.params = ModelParams{6, 10.0, 2.0, 0.0};
      spec.params.eps = spec.params.optimal_eps();
      std::mt19937_64 rng(seed);
      for (int i = 0; i < 5; ++i) {
        for (int p = 0; p < 6; ++p) {
          spec.calls.push_back(harness::Call{
              30.0 * i, p, "enqueue", adt::Value{static_cast<std::int64_t>(rng() % 100)}});
        }
      }
      return spec;
    };
    expect_schedulers_agree(queue, make_spec, "broadcast storm seed " + std::to_string(seed));
  }
}

TEST(SchedulerEquivalenceTest, TimersBeforeDeliveriesBothWays) {
  // The tie-rank ablation flips which kind wins equal-time ties; the ring
  // must agree with the heap under BOTH settings.
  adt::QueueType queue;
  const auto params = [] {
    ModelParams p{3, 10.0, 2.0, 0.0};
    p.eps = p.optimal_eps();
    return p;
  }();
  for (const bool timers_first : {false, true}) {
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
      std::string run[2];
      for (const auto sched : {SchedulerKind::kBinaryHeap, SchedulerKind::kEventRing}) {
        WorldConfig config;
        config.type = nullptr;
        config.params = params;
        config.timers_before_deliveries = timers_first;
        config.scheduler = sched;
        config.delays = std::make_shared<UniformRandomDelay>(params.min_delay(), params.d, seed);
        World world(config, [&](ProcId) {
          return std::make_unique<core::AlgorithmOneProcess>(
              queue, core::TimingPolicy::standard(params, 0.0));
        });
        for (int i = 0; i < 4; ++i) {
          for (int p = 0; p < 3; ++p) {
            world.invoke_at(25.0 * i, p, i % 2 == 0 ? "enqueue" : "dequeue",
                            adt::Value{i * 3 + p});
          }
        }
        world.run();
        run[sched == SchedulerKind::kEventRing ? 1 : 0] = record_to_string(world.record());
      }
      EXPECT_EQ(run[0], run[1]) << "timers_first=" << timers_first << " seed " << seed;
    }
  }
}

TEST(SchedulerEquivalenceTest, OpsOnlyRecordingKeepsOpsIdentical) {
  // kOpsOnly drops steps and messages but the ops array must be identical
  // byte for byte with a full-detail run.
  adt::QueueType queue;
  harness::RunSpec spec;
  spec.params = ModelParams{4, 10.0, 2.0, 0.0};
  spec.params.eps = spec.params.optimal_eps();
  spec.delays = std::make_shared<UniformRandomDelay>(spec.params.min_delay(), spec.params.d, 9);
  spec.scripts = harness::random_scripts(queue, 4, 6, 77);
  const auto full = harness::execute(queue, spec);
  // Fresh delay model: UniformRandomDelay draws sequentially per run.
  spec.delays = std::make_shared<UniformRandomDelay>(spec.params.min_delay(), spec.params.d, 9);
  spec.record_detail = RecordDetail::kOpsOnly;
  const auto lean = harness::execute(queue, spec);

  EXPECT_TRUE(lean.record.steps.empty());
  EXPECT_TRUE(lean.record.messages.empty());
  ASSERT_EQ(full.record.ops.size(), lean.record.ops.size());
  for (std::size_t i = 0; i < full.record.ops.size(); ++i) {
    EXPECT_EQ(full.record.ops[i].to_string(), lean.record.ops[i].to_string()) << "op " << i;
  }
}

}  // namespace
}  // namespace lintime::sim
