// Tests for the SlotMap side-table container (sequential ids, near-FIFO
// consumption) and for the OpId stamping the World performs when its config
// names a data type.

#include "sim/slot_map.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "adt/queue_type.hpp"
#include "baseline/zero_wait.hpp"
#include "sim/world.hpp"

namespace lintime::sim {
namespace {

TEST(SlotMapTest, InsertFindTakeRoundTrip) {
  SlotMap<std::string> m;
  EXPECT_TRUE(m.empty());
  m.insert(1, "a");
  m.insert(2, "b");
  m.insert(3, "c");
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(*m.find(2), "b");
  EXPECT_EQ(m.find(4), nullptr);

  const auto b = m.take(2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, "b");
  EXPECT_EQ(m.find(2), nullptr);
  EXPECT_FALSE(m.take(2).has_value());  // double-take misses
  EXPECT_FALSE(m.empty());
}

TEST(SlotMapTest, MissesOnUnknownAndConsumedIds) {
  SlotMap<int> m;
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_FALSE(m.take(7).has_value());
  m.insert(1, 10);
  ASSERT_TRUE(m.take(1).has_value());
  // Slot 1 was trimmed; a stale insert below the base is ignored.
  m.insert(1, 99);
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST(SlotMapTest, OutOfOrderTakeAndSparseIds) {
  SlotMap<int> m;
  for (std::uint64_t id = 1; id <= 8; ++id) m.insert(id, static_cast<int>(id) * 10);
  // Consume out of order (a cancelled timer mid-queue).
  EXPECT_EQ(m.take(5).value(), 50);
  EXPECT_EQ(m.take(1).value(), 10);
  EXPECT_EQ(m.take(2).value(), 20);
  EXPECT_EQ(*m.find(3), 30);
  EXPECT_EQ(m.find(5), nullptr);
  for (const std::uint64_t id : {3, 4, 6, 7, 8}) {
    EXPECT_TRUE(m.take(id).has_value()) << id;
  }
  EXPECT_TRUE(m.empty());
  // After full drain new sequential ids keep working.
  m.insert(9, 90);
  EXPECT_EQ(*m.find(9), 90);
}

TEST(SlotMapTest, EraseDropsWithoutReturning) {
  SlotMap<int> m;
  m.insert(1, 1);
  m.erase(1);
  EXPECT_EQ(m.find(1), nullptr);
  m.erase(42);  // erasing a missing id is a no-op
}

WorldConfig config2() {
  WorldConfig c;
  c.params = ModelParams{2, 10.0, 2.0, 1.0};
  return c;
}

TEST(WorldOpIdTest, RecordsCarryInternedIdsWhenTypeIsSet) {
  adt::QueueType queue;
  WorldConfig c = config2();
  c.type = &queue;
  World w(c, [&](ProcId) { return std::make_unique<baseline::ZeroWaitProcess>(queue); });
  w.invoke_at(0.0, 0, "enqueue", adt::Value{1});
  w.invoke_at(1.0, 1, "enqueue", adt::Value{2});
  w.invoke_at(2.0, 0, "dequeue", adt::Value::nil());
  w.run();
  ASSERT_EQ(w.ops().size(), 3u);
  for (const auto& op : w.ops()) {
    ASSERT_TRUE(op.op_id.valid()) << op.op;
    EXPECT_EQ(op.op_id, queue.op_id(op.op));
  }
}

TEST(WorldOpIdTest, RecordsStayUnresolvedWithoutType) {
  adt::QueueType queue;
  World w(config2(), [&](ProcId) { return std::make_unique<baseline::ZeroWaitProcess>(queue); });
  w.invoke_at(0.0, 0, "enqueue", adt::Value{1});
  w.run();
  ASSERT_EQ(w.ops().size(), 1u);
  EXPECT_FALSE(w.ops()[0].op_id.valid());
}

}  // namespace
}  // namespace lintime::sim
