// Unit tests for the delay models (the simulator's adversary interface).

#include "sim/delay_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace lintime::sim {
namespace {

TEST(DelayModelTest, ConstantDelay) {
  ConstantDelay m(9.5);
  EXPECT_EQ(m.delay(0, 1, 0.0, 0), 9.5);
  EXPECT_EQ(m.delay(2, 0, 100.0, 7), 9.5);
}

TEST(DelayModelTest, MatrixDelayPerPair) {
  MatrixDelay m({{0, 1, 2}, {3, 0, 5}, {6, 7, 0}});
  EXPECT_EQ(m.delay(0, 1, 0.0, 0), 1);
  EXPECT_EQ(m.delay(1, 2, 0.0, 0), 5);
  EXPECT_EQ(m.delay(2, 0, 0.0, 0), 6);
}

TEST(DelayModelTest, MatrixUniformFactory) {
  auto m = MatrixDelay::uniform(3, 8.0);
  for (ProcId i = 0; i < 3; ++i) {
    for (ProcId j = 0; j < 3; ++j) {
      EXPECT_EQ(m.delay(i, j, 0.0, 0), 8.0);
    }
  }
}

TEST(DelayModelTest, MatrixAtAllowsEditing) {
  auto m = MatrixDelay::uniform(2, 8.0);
  m.at(0, 1) = 9.0;
  EXPECT_EQ(m.delay(0, 1, 0.0, 0), 9.0);
  EXPECT_EQ(m.delay(1, 0, 0.0, 0), 8.0);
}

TEST(DelayModelTest, UniformRandomInRange) {
  UniformRandomDelay m(8.0, 10.0, 42);
  for (int i = 0; i < 1000; ++i) {
    const Time d = m.delay(0, 1, 0.0, static_cast<std::uint64_t>(i));
    EXPECT_GE(d, 8.0);
    EXPECT_LE(d, 10.0);
  }
}

TEST(DelayModelTest, UniformRandomDeterministicPerSeed) {
  UniformRandomDelay a(8.0, 10.0, 7);
  UniformRandomDelay b(8.0, 10.0, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.delay(0, 1, 0.0, 0), b.delay(0, 1, 0.0, 0));
  }
}

TEST(DelayModelTest, UniformRandomDiffersAcrossSeeds) {
  UniformRandomDelay a(8.0, 10.0, 7);
  UniformRandomDelay b(8.0, 10.0, 8);
  bool differ = false;
  for (int i = 0; i < 50; ++i) {
    if (a.delay(0, 1, 0.0, 0) != b.delay(0, 1, 0.0, 0)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(DelayModelTest, PiecewiseSwitchesAtTime) {
  auto before = std::make_shared<ConstantDelay>(8.0);
  auto after = std::make_shared<ConstantDelay>(10.0);
  PiecewiseDelay m(before, 100.0, after);
  EXPECT_EQ(m.delay(0, 1, 99.9, 0), 8.0);
  EXPECT_EQ(m.delay(0, 1, 100.0, 0), 10.0);
  EXPECT_EQ(m.delay(0, 1, 200.0, 0), 10.0);
}

TEST(DelayModelTest, PiecewiseBoundaryUsesAfterModel) {
  // The switch is inclusive: a message sent exactly at switch_time must use
  // the `after` model.  Campaigns that schedule a regime change at a send
  // instant depend on this being exact, not a <= vs < accident.
  auto before = std::make_shared<ConstantDelay>(8.0);
  auto after = std::make_shared<ConstantDelay>(10.0);
  PiecewiseDelay m(before, 50.0, after);
  EXPECT_DOUBLE_EQ(m.delay(0, 1, std::nextafter(50.0, 0.0), 0), 8.0);
  EXPECT_DOUBLE_EQ(m.delay(0, 1, 50.0, 0), 10.0);
  EXPECT_DOUBLE_EQ(m.delay(0, 1, std::nextafter(50.0, 100.0), 0), 10.0);
}

TEST(DelayModelTest, StatelessnessClassification) {
  // The campaign executor refuses to share stateful models across jobs;
  // these classifications are what that check keys on.
  EXPECT_TRUE(ConstantDelay(9.0).is_stateless());
  EXPECT_TRUE(MatrixDelay::uniform(2, 8.0).is_stateless());
  EXPECT_FALSE(UniformRandomDelay(8.0, 10.0, 1).is_stateless());
  auto c8 = std::make_shared<ConstantDelay>(8.0);
  auto c10 = std::make_shared<ConstantDelay>(10.0);
  EXPECT_TRUE(PiecewiseDelay(c8, 50.0, c10).is_stateless());
  auto rng = std::make_shared<UniformRandomDelay>(8.0, 10.0, 1);
  EXPECT_FALSE(PiecewiseDelay(c8, 50.0, rng).is_stateless());
}

TEST(DelayModelTest, FunctionDelayDelegates) {
  FunctionDelay m([](ProcId s, ProcId r, Time, std::uint64_t) {
    return 8.0 + static_cast<Time>(s) + static_cast<Time>(r) / 10.0;
  });
  EXPECT_DOUBLE_EQ(m.delay(1, 2, 0.0, 0), 9.2);
}

}  // namespace
}  // namespace lintime::sim
