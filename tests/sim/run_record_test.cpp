// Unit tests for run records (timed views).

#include "sim/run_record.hpp"

#include <gtest/gtest.h>

namespace lintime::sim {
namespace {

TEST(RunRecordTest, LastTimeOfEmptyIsZero) {
  RunRecord r;
  EXPECT_EQ(r.last_time(), 0.0);
}

TEST(RunRecordTest, LastAndFirstTime) {
  RunRecord r;
  StepRecord a;
  a.proc = 0;
  a.real_time = 3.0;
  StepRecord b;
  b.proc = 1;
  b.real_time = 7.5;
  r.steps = {a, b};
  EXPECT_EQ(r.first_time(), 3.0);
  EXPECT_EQ(r.last_time(), 7.5);
}

TEST(RunRecordTest, OpRecordCompleteness) {
  OpRecord op;
  op.invoke_real = 5.0;
  EXPECT_FALSE(op.complete());
  op.response_real = 5.0;
  EXPECT_TRUE(op.complete());
  EXPECT_EQ(op.latency(), 0.0);
  op.response_real = 8.0;
  EXPECT_EQ(op.latency(), 3.0);
}

TEST(RunRecordTest, MessageDelay) {
  MessageRecord m;
  m.send_real = 2.0;
  m.recv_real = 11.0;
  EXPECT_EQ(m.delay(), 9.0);
}

TEST(RunRecordTest, OpRecordToStringMentionsEverything) {
  OpRecord op;
  op.proc = 2;
  op.op = "enqueue";
  op.arg = adt::Value{5};
  op.ret = adt::Value::nil();
  op.invoke_real = 1.0;
  op.response_real = 2.0;
  const std::string s = op.to_string();
  EXPECT_NE(s.find("p2"), std::string::npos);
  EXPECT_NE(s.find("enqueue"), std::string::npos);
  EXPECT_NE(s.find("5"), std::string::npos);
}

}  // namespace
}  // namespace lintime::sim
