// Tests for the model-extension knobs (clock drift, message loss): defaults
// preserve the paper's model exactly; the knobs do what they say.

#include <gtest/gtest.h>

#include <memory>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "core/algorithm_one.hpp"
#include "core/timing_policy.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "sim/trace_io.hpp"
#include "sim/world.hpp"

namespace lintime::sim {
namespace {

using adt::Value;

/// Probe process exposing its local clock.
class ClockProbe : public Process {
 public:
  explicit ClockProbe(std::vector<double>& readings) : readings_(readings) {}
  void on_invoke(Context& ctx, const std::string&, const adt::Value&) override {
    readings_.push_back(ctx.local_time());
    ctx.set_timer(10.0, Payload{});  // 10 local units
  }
  void on_message(Context&, ProcId, const Payload&) override {}
  void on_timer(Context& ctx, TimerId, const Payload&) override {
    readings_.push_back(ctx.local_time());
    ctx.respond(adt::Value::nil());
  }

 private:
  std::vector<double>& readings_;
};

TEST(ExtensionsTest, DriftingClockRunsFast) {
  std::vector<double> readings;
  WorldConfig config;
  config.params = ModelParams{2, 10.0, 2.0, 1.0};
  config.clock_rates = {1.1, 1.0};
  World world(config, [&](ProcId) { return std::make_unique<ClockProbe>(readings); });
  world.invoke_at(100.0, 0, "probe", Value::nil());
  world.run();
  ASSERT_EQ(readings.size(), 2u);
  EXPECT_NEAR(readings[0], 110.0, 1e-6);  // local = 1.1 * real
  EXPECT_NEAR(readings[1], 120.0, 1e-6);  // timer measured 10 LOCAL units
  // ...which took 10/1.1 real time:
  EXPECT_NEAR(world.record().steps.back().real_time, 100.0 + 10.0 / 1.1, 1e-6);
}

TEST(ExtensionsTest, UnitRatesReproduceBaseline) {
  adt::QueueType queue;
  auto run = [&queue](std::vector<double> rates) {
    harness::RunSpec spec;
    spec.params = ModelParams{3, 10.0, 2.0, 1.0};
    spec.scripts = harness::random_scripts(queue, 3, 4, 5);
    sim::WorldConfig config;
    config.params = spec.params;
    config.clock_rates = std::move(rates);
    World world(config, [&](ProcId) {
      return std::make_unique<core::AlgorithmOneProcess>(
          queue, core::TimingPolicy::standard(spec.params, 0.0));
    });
    world.invoke_at(0.0, 0, "enqueue", Value{1});
    world.invoke_at(30.0, 1, "dequeue", Value::nil());
    world.run();
    return world.record();
  };
  const auto a = run({});
  const auto b = run({1.0, 1.0, 1.0});
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].response_real, b.ops[i].response_real);
    EXPECT_EQ(a.ops[i].ret, b.ops[i].ret);
  }
}

TEST(ExtensionsTest, NonPositiveRateRejected) {
  WorldConfig config;
  config.params = ModelParams{2, 10.0, 2.0, 1.0};
  config.clock_rates = {0.0, 1.0};
  EXPECT_THROW(World(config, [](ProcId) -> std::unique_ptr<Process> { return nullptr; }),
               std::invalid_argument);
}

TEST(ExtensionsTest, DropProbabilityDropsMessages) {
  adt::RegisterType reg;
  WorldConfig config;
  config.params = ModelParams{4, 10.0, 2.0, 1.0};
  config.drop_probability = 0.5;
  config.drop_seed = 7;
  World world(config, [&](ProcId) {
    return std::make_unique<core::AlgorithmOneProcess>(
        reg, core::TimingPolicy::standard(config.params, 0.0));
  });
  for (int i = 0; i < 10; ++i) world.invoke_at(i * 20.0, i % 4, "write", Value{i});
  world.run();
  std::size_t dropped = 0;
  for (const auto& m : world.record().messages) {
    if (!m.received) ++dropped;
  }
  EXPECT_GT(dropped, 5u);
  EXPECT_LT(dropped, world.record().messages.size());
}

TEST(ExtensionsTest, ZeroDropKeepsReliability) {
  adt::RegisterType reg;
  WorldConfig config;
  config.params = ModelParams{3, 10.0, 2.0, 1.0};
  World world(config, [&](ProcId) {
    return std::make_unique<core::AlgorithmOneProcess>(
        reg, core::TimingPolicy::standard(config.params, 0.0));
  });
  world.invoke_at(0.0, 0, "write", Value{1});
  world.run();
  for (const auto& m : world.record().messages) EXPECT_TRUE(m.received);
}

TEST(ExtensionsTest, SameDropSeedReproducesIdenticalRecord) {
  // The adversary's coin flips are a pure function of drop_seed, so two runs
  // with the same seed (and the same workload) must produce records that are
  // identical step for step -- the property the campaign executor's
  // determinism contract is built on.
  adt::QueueType queue;
  auto run = [&queue]() {
    harness::RunSpec spec;
    spec.params = ModelParams{4, 10.0, 2.0, 1.0};
    spec.scripts = harness::random_scripts(queue, 4, 5, 11);
    spec.drop_probability = 0.3;
    spec.drop_seed = 99;
    return harness::execute(queue, spec).record;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(record_to_string(a), record_to_string(b));
  std::size_t dropped = 0;
  for (const auto& m : a.messages) {
    if (!m.received) ++dropped;
  }
  EXPECT_GT(dropped, 0u);  // the adversary actually acted
}

TEST(ExtensionsTest, DifferentDropSeedChangesRecord) {
  adt::RegisterType reg;
  auto run = [&reg](std::uint64_t seed) {
    harness::RunSpec spec;
    spec.params = ModelParams{4, 10.0, 2.0, 1.0};
    spec.scripts = harness::random_scripts(reg, 4, 6, 3);
    spec.drop_probability = 0.5;
    spec.drop_seed = seed;
    std::size_t dropped = 0;
    for (const auto& m : harness::execute(reg, spec).record.messages) {
      if (!m.received) ++dropped;
    }
    return dropped;
  };
  // At p=0.5 over dozens of messages, two seeds agreeing on every flip would
  // mean the seed is ignored; drop counts differing is the cheap witness.
  EXPECT_NE(run(5), run(6));
}

TEST(ExtensionsTest, MessageLossBreaksLinearizabilityEventually) {
  // With the reliability assumption violated, some replica misses a mutator
  // forever and a later accessor there returns a stale value.
  adt::RegisterType reg;
  WorldConfig config;
  config.params = ModelParams{3, 10.0, 2.0, 1.0};
  config.drop_probability = 0.9;
  config.drop_seed = 3;
  World world(config, [&](ProcId) {
    return std::make_unique<core::AlgorithmOneProcess>(
        reg, core::TimingPolicy::standard(config.params, 0.0));
  });
  world.invoke_at(0.0, 0, "write", Value{5});
  world.invoke_at(50.0, 1, "read", Value::nil());
  world.run();
  const auto check = lin::check_linearizability(reg, world.record());
  EXPECT_FALSE(check.linearizable);  // the read at p1 never heard the write
}

}  // namespace
}  // namespace lintime::sim
