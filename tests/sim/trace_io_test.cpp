// Round-trip tests for run-record serialization.

#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/tree_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "shift/shift.hpp"

namespace lintime::sim {
namespace {

using adt::Value;

RunRecord sample_record() {
  adt::QueueType queue;
  harness::RunSpec spec;
  spec.params = ModelParams{3, 10.0, 2.0, 1.5};
  spec.clock_offsets = {0.7, -0.7, 0.3};
  spec.delays = std::make_shared<UniformRandomDelay>(8.0, 10.0, 5);
  spec.scripts = harness::random_scripts(queue, 3, 4, 88);
  return harness::execute(queue, spec).record;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const RunRecord a = sample_record();
  const RunRecord b = record_from_string(record_to_string(a));

  EXPECT_EQ(a.params.n, b.params.n);
  EXPECT_EQ(a.params.d, b.params.d);
  EXPECT_EQ(a.clock_offsets, b.clock_offsets);

  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].proc, b.steps[i].proc);
    EXPECT_EQ(a.steps[i].real_time, b.steps[i].real_time);
    EXPECT_EQ(a.steps[i].clock_time, b.steps[i].clock_time);
    EXPECT_EQ(a.steps[i].trigger, b.steps[i].trigger);
    EXPECT_EQ(a.steps[i].responded, b.steps[i].responded);
    EXPECT_EQ(a.steps[i].arg, b.steps[i].arg);
    EXPECT_EQ(a.steps[i].response, b.steps[i].response);
    EXPECT_EQ(a.steps[i].sent_message_ids, b.steps[i].sent_message_ids);
  }

  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].send_real, b.messages[i].send_real);
    EXPECT_EQ(a.messages[i].recv_real, b.messages[i].recv_real);
    EXPECT_EQ(a.messages[i].received, b.messages[i].received);
  }

  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].op, b.ops[i].op);
    EXPECT_EQ(a.ops[i].arg, b.ops[i].arg);
    EXPECT_EQ(a.ops[i].ret, b.ops[i].ret);
    EXPECT_EQ(a.ops[i].invoke_real, b.ops[i].invoke_real);
    EXPECT_EQ(a.ops[i].response_real, b.ops[i].response_real);
  }
}

TEST(TraceIoTest, CheckerVerdictSurvivesRoundTrip) {
  adt::QueueType queue;
  const RunRecord a = sample_record();
  const RunRecord b = record_from_string(record_to_string(a));
  EXPECT_EQ(lin::check_linearizability(queue, a).linearizable,
            lin::check_linearizability(queue, b).linearizable);
}

TEST(TraceIoTest, ShiftOfDeserializedRecordMatches) {
  const RunRecord a = sample_record();
  const RunRecord b = record_from_string(record_to_string(a));
  const std::vector<double> x = {0.25, -0.25, 0.0};
  const auto sa = shift::shift_run(a, x);
  const auto sb = shift::shift_run(b, x);
  ASSERT_EQ(sa.messages.size(), sb.messages.size());
  for (std::size_t i = 0; i < sa.messages.size(); ++i) {
    EXPECT_EQ(sa.messages[i].recv_real, sb.messages[i].recv_real);
  }
}

TEST(TraceIoTest, VectorValuesRoundTrip) {
  // Tree edges exercise nested vector arguments.
  adt::TreeType tree;
  harness::RunSpec spec;
  spec.params = ModelParams{3, 10.0, 2.0, 1.5};
  spec.calls = {
      harness::Call{0.0, 0, "insert", adt::TreeType::edge(0, 1)},
      harness::Call{30.0, 1, "depth", Value{1}},
  };
  const auto a = harness::execute(tree, spec).record;
  const auto b = record_from_string(record_to_string(a));
  EXPECT_EQ(b.ops[0].arg, adt::TreeType::edge(0, 1));
  EXPECT_EQ(b.ops[1].ret, Value{1});
}

TEST(TraceIoTest, StringValuesRoundTrip) {
  RunRecord a;
  a.params = ModelParams{2, 10.0, 2.0, 1.0};
  a.clock_offsets = {0.0, 0.0};
  OpRecord op;
  op.proc = 0;
  op.op = "put";
  op.arg = Value{adt::ValueVec{Value{"key with spaces"}, Value{42}}};
  op.ret = Value::nil();
  op.invoke_real = 1;
  op.response_real = 2;
  a.ops.push_back(op);
  const auto b = record_from_string(record_to_string(a));
  ASSERT_EQ(b.ops.size(), 1u);
  EXPECT_EQ(b.ops[0].arg, a.ops[0].arg);
}

TEST(TraceIoTest, MalformedInputThrows) {
  EXPECT_THROW((void)record_from_string("garbage line\n"), std::invalid_argument);
  EXPECT_THROW((void)record_from_string(""), std::invalid_argument);
  EXPECT_THROW((void)record_from_string("offset 0 1.5\n"), std::invalid_argument);
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored)  {
  const auto b = record_from_string("# hello\n\nparams 2 10 2 1\n# bye\n");
  EXPECT_EQ(b.params.n, 2);
}

}  // namespace
}  // namespace lintime::sim
