// Replay: re-simulating a workload while forcing each message's delay to the
// value recorded in a previous run reproduces that run exactly.  This is the
// debugging loop trace_inspector supports, and a strong determinism check:
// the recorded delays are keyed only by global send sequence, so any
// divergence in send order would surface immediately.

#include <gtest/gtest.h>

#include <map>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"

namespace lintime::sim {
namespace {

using adt::Value;

/// Delay model that replays a recorded run's per-message delays by send id.
std::shared_ptr<DelayModel> replay_delays(const RunRecord& record) {
  auto by_id = std::make_shared<std::map<std::uint64_t, double>>();
  for (const auto& msg : record.messages) {
    (*by_id)[msg.id] = msg.delay();
  }
  return std::make_shared<FunctionDelay>(
      [by_id](ProcId, ProcId, Time, std::uint64_t seq) { return by_id->at(seq); });
}

harness::RunSpec base_spec(std::shared_ptr<DelayModel> delays) {
  adt::QueueType queue;
  harness::RunSpec spec;
  spec.params = ModelParams{4, 10.0, 2.0, 1.5};
  spec.clock_offsets = {0.7, -0.7, 0.3, -0.3};
  spec.delays = std::move(delays);
  return spec;
}

TEST(ReplayTest, ReplayedDelaysReproduceTheRunExactly) {
  adt::QueueType queue;

  auto spec = base_spec(std::make_shared<UniformRandomDelay>(8.0, 10.0, 321));
  spec.scripts = harness::random_scripts(queue, 4, 6, 99);
  const auto original = harness::execute(queue, spec).record;

  auto replay_spec = base_spec(replay_delays(original));
  replay_spec.scripts = harness::random_scripts(queue, 4, 6, 99);
  const auto replayed = harness::execute(queue, replay_spec).record;

  ASSERT_EQ(original.ops.size(), replayed.ops.size());
  for (std::size_t i = 0; i < original.ops.size(); ++i) {
    EXPECT_EQ(original.ops[i].ret, replayed.ops[i].ret);
    EXPECT_EQ(original.ops[i].invoke_real, replayed.ops[i].invoke_real);
    EXPECT_EQ(original.ops[i].response_real, replayed.ops[i].response_real);
  }
  ASSERT_EQ(original.messages.size(), replayed.messages.size());
  for (std::size_t i = 0; i < original.messages.size(); ++i) {
    EXPECT_EQ(original.messages[i].recv_real, replayed.messages[i].recv_real);
    EXPECT_EQ(original.messages[i].src, replayed.messages[i].src);
    EXPECT_EQ(original.messages[i].dst, replayed.messages[i].dst);
  }
  ASSERT_EQ(original.steps.size(), replayed.steps.size());
  for (std::size_t i = 0; i < original.steps.size(); ++i) {
    EXPECT_EQ(original.steps[i].real_time, replayed.steps[i].real_time);
    EXPECT_EQ(original.steps[i].proc, replayed.steps[i].proc);
    EXPECT_EQ(original.steps[i].trigger, replayed.steps[i].trigger);
  }
}

TEST(ReplayTest, ReplayFromSerializedTraceAlsoReproduces) {
  // The full loop: run -> serialize -> parse -> replay.
  adt::QueueType queue;
  auto spec = base_spec(std::make_shared<UniformRandomDelay>(8.0, 10.0, 55));
  spec.scripts = harness::random_scripts(queue, 4, 4, 7);
  const auto original = harness::execute(queue, spec).record;

  // (Round-trip through text happens in trace_io_test; here we only need the
  // record itself to drive the replay.)
  auto replay_spec = base_spec(replay_delays(original));
  replay_spec.scripts = harness::random_scripts(queue, 4, 4, 7);
  const auto replayed = harness::execute(queue, replay_spec).record;
  ASSERT_EQ(original.ops.size(), replayed.ops.size());
  for (std::size_t i = 0; i < original.ops.size(); ++i) {
    EXPECT_EQ(original.ops[i].ret, replayed.ops[i].ret);
  }
}

}  // namespace
}  // namespace lintime::sim
