// Unit tests for the discrete-event kernel: event ordering, timers and
// cancellation, message delivery, clock offsets, trace recording, and the
// model's user constraint (one pending invocation per process).

#include "sim/world.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "adt/register_type.hpp"

namespace lintime::sim {
namespace {

/// Scriptable probe process for kernel tests.  Payloads are typed records;
/// the probe's tag vocabulary below maps to the names its log strings use.
class Probe : public Process {
 public:
  struct Log {
    std::vector<std::string> events;
    std::vector<Time> local_times;
  };

  enum Tag : std::uint32_t { kHello, kAll, kTick, kCancelled };

  static const char* tag_name(std::uint32_t tag) {
    switch (tag) {
      case kHello: return "hello";
      case kAll: return "all";
      case kTick: return "tick";
      case kCancelled: return "cancelled";
      default: return "?";
    }
  }

  static Payload tagged(std::uint32_t tag) {
    Payload p;
    p.tag = tag;
    return p;
  }

  explicit Probe(Log& log) : log_(log) {}

  void on_invoke(Context& ctx, const std::string& op, const adt::Value& arg) override {
    log_.events.push_back("invoke:" + op);
    log_.local_times.push_back(ctx.local_time());
    if (op == "ping") {
      ctx.send((ctx.self() + 1) % ctx.n(), tagged(kHello));
      ctx.respond(adt::Value::nil());
    } else if (op == "timer") {
      timer_ = ctx.set_timer(arg.is_int() ? static_cast<Time>(arg.as_int()) : 1.0,
                             tagged(kTick));
      ctx.respond(adt::Value::nil());
    } else if (op == "timer_cancel") {
      auto id = ctx.set_timer(1.0, tagged(kCancelled));
      ctx.cancel_timer(id);
      ctx.respond(adt::Value::nil());
    } else if (op == "broadcast") {
      ctx.broadcast(tagged(kAll));
      ctx.respond(adt::Value::nil());
    } else if (op == "silent") {
      ctx.respond(adt::Value{ctx.self()});
    } else if (op == "never") {
      // No response: used to test the pending-invocation constraint.
    }
  }

  void on_message(Context& ctx, ProcId src, const Payload& payload) override {
    log_.events.push_back("msg:" + std::string(tag_name(payload.tag)) + ":from" +
                          std::to_string(src));
    log_.local_times.push_back(ctx.local_time());
  }

  void on_timer(Context& ctx, TimerId, const Payload& data) override {
    log_.events.push_back("timer:" + std::string(tag_name(data.tag)));
    log_.local_times.push_back(ctx.local_time());
  }

 private:
  Log& log_;
  TimerId timer_;
};

WorldConfig config3() {
  WorldConfig c;
  c.params = ModelParams{3, 10.0, 2.0, 1.0};
  return c;
}

TEST(WorldTest, MessageArrivesWithConstantDelay) {
  Probe::Log log;
  WorldConfig c = config3();
  c.delays = std::make_shared<ConstantDelay>(10.0);
  World w(c, [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(5.0, 0, "ping", adt::Value::nil());
  w.run();
  ASSERT_EQ(w.record().messages.size(), 1u);
  EXPECT_EQ(w.record().messages[0].send_real, 5.0);
  EXPECT_EQ(w.record().messages[0].recv_real, 15.0);
  EXPECT_TRUE(w.record().messages[0].received);
}

TEST(WorldTest, InvalidDelayRejectedWhenEnforced) {
  Probe::Log log;
  WorldConfig c = config3();
  c.delays = std::make_shared<ConstantDelay>(3.0);  // below d-u = 8
  World w(c, [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(0.0, 0, "ping", adt::Value::nil());
  EXPECT_THROW(w.run(), std::logic_error);
}

TEST(WorldTest, InvalidDelayAllowedWhenNotEnforced) {
  Probe::Log log;
  WorldConfig c = config3();
  c.delays = std::make_shared<ConstantDelay>(3.0);
  c.enforce_valid_delays = false;
  World w(c, [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(0.0, 0, "ping", adt::Value::nil());
  EXPECT_NO_THROW(w.run());
}

TEST(WorldTest, TimerFiresAtRequestedDelay) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(2.0, 0, "timer", adt::Value{7});
  w.run();
  ASSERT_EQ(log.events.back(), "timer:tick");
  // Timer set at local time 2 (offset 0) for +7.
  EXPECT_DOUBLE_EQ(log.local_times.back(), 9.0);
}

TEST(WorldTest, CancelledTimerNeverFires) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(0.0, 0, "timer_cancel", adt::Value::nil());
  w.run();
  for (const auto& ev : log.events) {
    EXPECT_EQ(ev.find("cancelled"), std::string::npos) << ev;
  }
}

TEST(WorldTest, ClockOffsetsShiftLocalTime) {
  Probe::Log log;
  WorldConfig c = config3();
  c.clock_offsets = {0.5, -0.5, 0.0};
  World w(c, [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(10.0, 0, "silent", adt::Value::nil());
  w.run();
  EXPECT_DOUBLE_EQ(log.local_times.back(), 10.5);
}

TEST(WorldTest, ExcessiveSkewRejected) {
  Probe::Log log;
  WorldConfig c = config3();  // eps = 1
  c.clock_offsets = {2.0, 0.0, 0.0};
  EXPECT_THROW(World(c, [&](ProcId) { return std::make_unique<Probe>(log); }),
               std::invalid_argument);
}

TEST(WorldTest, BroadcastReachesAllOthers) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(0.0, 1, "broadcast", adt::Value::nil());
  w.run();
  int received = 0;
  for (const auto& ev : log.events) {
    if (ev.rfind("msg:all", 0) == 0) ++received;
  }
  EXPECT_EQ(received, 2);
  EXPECT_EQ(w.record().messages.size(), 2u);
}

TEST(WorldTest, SecondInvocationWhilePendingThrows) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(0.0, 0, "never", adt::Value::nil());
  w.invoke_at(1.0, 0, "silent", adt::Value::nil());
  EXPECT_THROW(w.run(), std::logic_error);
}

TEST(WorldTest, OpRecordCapturesInterval) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(4.0, 2, "silent", adt::Value::nil());
  w.run();
  ASSERT_EQ(w.record().ops.size(), 1u);
  const auto& op = w.record().ops[0];
  EXPECT_EQ(op.proc, 2);
  EXPECT_EQ(op.invoke_real, 4.0);
  EXPECT_EQ(op.response_real, 4.0);
  EXPECT_EQ(op.ret, adt::Value{2});
  EXPECT_TRUE(op.complete());
}

TEST(WorldTest, StepsRecordedInRealTimeOrder) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(1.0, 0, "ping", adt::Value::nil());
  w.invoke_at(2.0, 1, "timer", adt::Value{1});
  w.run();
  const auto& steps = w.record().steps;
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_LE(steps[i - 1].real_time, steps[i].real_time);
  }
}

TEST(WorldTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Probe::Log log;
    WorldConfig c;
    c.params = ModelParams{4, 10.0, 2.0, 1.0};
    c.delays = std::make_shared<UniformRandomDelay>(8.0, 10.0, 99);
    World w(c, [&](ProcId) { return std::make_unique<Probe>(log); });
    w.invoke_at(0.0, 0, "broadcast", adt::Value::nil());
    w.invoke_at(0.5, 1, "broadcast", adt::Value::nil());
    w.run();
    std::string sig;
    for (const auto& m : w.record().messages) sig += std::to_string(m.recv_real) + ";";
    return sig;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(WorldTest, InvokeInThePastThrows) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(5.0, 0, "silent", adt::Value::nil());
  w.run();
  EXPECT_THROW(w.invoke_at(1.0, 0, "silent", adt::Value::nil()), std::invalid_argument);
}

TEST(WorldTest, ResponseHookObservesCompletion) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  std::vector<std::string> seen;
  w.set_response_hook([&seen](World&, const OpRecord& op) { seen.push_back(op.op); });
  w.invoke_at(0.0, 0, "silent", adt::Value::nil());
  w.run();
  EXPECT_EQ(seen, std::vector<std::string>{"silent"});
}

TEST(WorldTest, ViewOfFiltersSteps) {
  Probe::Log log;
  World w(config3(), [&](ProcId) { return std::make_unique<Probe>(log); });
  w.invoke_at(0.0, 0, "ping", adt::Value::nil());
  w.run();
  const auto view0 = w.record().view_of(0);
  const auto view1 = w.record().view_of(1);
  EXPECT_EQ(view0.size(), 1u);  // the invoke step
  EXPECT_EQ(view1.size(), 1u);  // the message receipt
  EXPECT_EQ(view0[0].trigger, Trigger::kInvoke);
  EXPECT_EQ(view1[0].trigger, Trigger::kMessage);
}

TEST(WorldTest, DropProbabilityOutsideUnitIntervalThrows) {
  Probe::Log log;
  const auto factory = [&](ProcId) { return std::make_unique<Probe>(log); };
  for (const double p : {-0.1, 1.5, std::numeric_limits<double>::quiet_NaN()}) {
    WorldConfig c = config3();
    c.drop_probability = p;
    try {
      World w(c, factory);
      FAIL() << "drop_probability " << p << " accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("drop_probability must be in [0, 1]"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(WorldTest, NonPositiveClockRateThrows) {
  Probe::Log log;
  const auto factory = [&](ProcId) { return std::make_unique<Probe>(log); };
  for (const double r : {0.0, -1.0, std::numeric_limits<double>::quiet_NaN()}) {
    WorldConfig c = config3();
    c.clock_rates = {1.0, r, 1.0};
    try {
      World w(c, factory);
      FAIL() << "clock rate " << r << " accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("clock_rates[1] must be > 0"), std::string::npos)
          << e.what();
    }
  }
}

TEST(WorldTest, InvokeAtIdRequiresConfiguredType) {
  Probe::Log log;
  WorldConfig c = config3();  // type left null
  World w(c, [&](ProcId) { return std::make_unique<Probe>(log); });
  EXPECT_THROW(w.invoke_at(1.0, 0, adt::OpId{}, adt::Value::nil()), std::logic_error);
}

TEST(WorldTest, InvokeAtIdMatchesStringOverload) {
  adt::RegisterType reg;
  const auto run = [&](bool by_id) {
    WorldConfig c = config3();
    c.type = &reg;
    Probe::Log log;
    World w(c, [&](ProcId) { return std::make_unique<Probe>(log); });
    // Probe responds to any invocation ("write" hits its default branch);
    // only the recorded op name/id matter here.
    if (by_id) {
      w.invoke_at(1.0, 0, reg.op_id(adt::RegisterType::kWrite), adt::Value{7});
    } else {
      w.invoke_at(1.0, 0, adt::RegisterType::kWrite, adt::Value{7});
    }
    w.run();
    return w.record();
  };
  const auto by_name = run(false);
  const auto by_id = run(true);
  ASSERT_EQ(by_id.ops.size(), 1u);
  EXPECT_EQ(by_id.ops[0].op, "write");
  EXPECT_TRUE(by_id.ops[0].op_id.valid());
  EXPECT_EQ(by_name.ops[0].to_string(), by_id.ops[0].to_string());
}

TEST(WorldTest, InvokeAtForeignIdThrows) {
  adt::RegisterType reg;
  WorldConfig c = config3();
  c.type = &reg;
  Probe::Log log;
  World w(c, [&](ProcId) { return std::make_unique<Probe>(log); });
  EXPECT_THROW(w.invoke_at(1.0, 0, adt::OpId{}, adt::Value::nil()), std::out_of_range);
}

}  // namespace
}  // namespace lintime::sim
