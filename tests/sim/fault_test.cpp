// Tests for the deterministic fault plane (sim/fault.hpp): schedule
// validation, partition compilation, crash / link-window semantics through
// the harness, and the two determinism contracts -- runs with a schedule
// replay byte-identically across 60 seeds, and an inactive schedule leaves
// records byte-identical to runs with no schedule at all (the drop-coin RNG
// stream is never perturbed).

#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "adt/queue_type.hpp"
#include "adt/value.hpp"
#include "harness/runner.hpp"
#include "sim/delay_model.hpp"
#include "sim/trace_io.hpp"

namespace lintime::sim {
namespace {

using adt::Value;

TEST(FaultScheduleTest, ValidAndEmptySchedulesPass) {
  FaultSchedule empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_NO_THROW(empty.validate(3));

  FaultSchedule full;
  full.crashes = {{2, 50.0}, {0, 10.0}};
  full.link_drops = {{0, 1, 5.0, 10.0},
                     {kAnyProc, 2, 5.0, 10.0},  // distinct pairs may overlap
                     {0, 1, 10.0, 20.0}};       // [5,10) and [10,20) do not overlap
  EXPECT_FALSE(full.empty());
  EXPECT_NO_THROW(full.validate(3));
}

TEST(FaultScheduleTest, ValidateRejectsMalformedSchedules) {
  const auto bad = [](FaultSchedule s, int n = 3) {
    EXPECT_THROW(s.validate(n), std::invalid_argument);
  };
  bad({{{3, 1.0}}, {}});            // crash proc out of range
  bad({{{-1, 1.0}}, {}});           // negative proc
  bad({{{1, -2.0}}, {}});           // negative crash time
  bad({{{1, 1.0}, {1, 2.0}}, {}});  // duplicate crash proc
  bad({{}, {{0, 3, 1.0, 2.0}}});    // dst out of range
  bad({{}, {{1, 1, 1.0, 2.0}}});    // self-link
  bad({{}, {{0, 1, 2.0, 2.0}}});    // empty window
  bad({{}, {{0, 1, 5.0, 2.0}}});    // inverted window
  bad({{}, {{0, 1, 0.0, 5.0}, {0, 1, 4.0, 6.0}}});  // overlap, same pair
}

TEST(FaultScheduleTest, PartitionCyclesCompileToLinkWindows) {
  const auto windows = partition_cycles({0, 1}, {2}, 30.0, 10.0, 50.0, 2);
  // 2 * |a| * |b| directed links per cycle, 2 cycles.
  ASSERT_EQ(windows.size(), 8u);
  for (const auto& w : windows) {
    const bool a_to_b = (w.src == 0 || w.src == 1) && w.dst == 2;
    const bool b_to_a = w.src == 2 && (w.dst == 0 || w.dst == 1);
    EXPECT_TRUE(a_to_b || b_to_a);
    const bool first = w.from == 30.0 && w.until == 40.0;
    const bool second = w.from == 80.0 && w.until == 90.0;
    EXPECT_TRUE(first || second);
  }
  FaultSchedule s;
  s.link_drops = windows;
  EXPECT_NO_THROW(s.validate(3));
}

TEST(FaultScheduleTest, PartitionCyclesRejectBadGroupsAndTiming) {
  EXPECT_THROW((void)partition_cycles({}, {1}, 0, 1, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)partition_cycles({0}, {0}, 0, 1, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)partition_cycles({0}, {1}, 0, 0, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)partition_cycles({0}, {1}, 0, 5, 2, 1), std::invalid_argument);  // cut > period
  EXPECT_THROW((void)partition_cycles({0}, {1}, 0, 1, 2, 0), std::invalid_argument);
}

/// A small open-loop spec: proc 2 invokes at t = 10 and t = 100, procs 0/1
/// at t = 10.
harness::RunSpec crash_spec() {
  harness::RunSpec spec;
  spec.params = ModelParams{3, 10.0, 2.0, 0.0};
  spec.params.eps = spec.params.optimal_eps();
  spec.delays = std::make_shared<ConstantDelay>(9.0);
  spec.calls = {{10.0, 0, "enqueue", Value{1}},
                {10.0, 1, "enqueue", Value{2}},
                {10.0, 2, "enqueue", Value{3}},
                {100.0, 2, "enqueue", Value{4}}};
  return spec;
}

TEST(FaultPlaneTest, CrashSilencesProcessFromItsTime) {
  adt::QueueType queue;

  auto baseline = crash_spec();
  const auto without = harness::execute(queue, baseline);
  EXPECT_EQ(without.record.ops.size(), 4u);

  auto spec = crash_spec();
  spec.faults.crashes = {{2, 50.0}};
  const auto with = harness::execute(queue, spec);

  // The invocation at t = 100 was discarded before recording; the one at
  // t = 10 completed before the crash.
  ASSERT_EQ(with.record.ops.size(), 3u);
  for (const auto& op : with.record.ops) EXPECT_TRUE(op.complete());

  // No step of the crashed process at or after the crash time, and nothing
  // arrives at it from then on.
  for (const auto& step : with.record.steps) {
    if (step.proc == 2) EXPECT_LT(step.real_time, 50.0);
  }
  for (const auto& msg : with.record.messages) {
    if (msg.dst == 2 && msg.recv_real >= 50.0) {
      EXPECT_FALSE(msg.received) << "message " << msg.id << " delivered to a crashed proc";
    }
  }
}

TEST(FaultPlaneTest, LinkWindowDropsExactlyItsDirectedInterval) {
  adt::QueueType queue;
  auto spec = crash_spec();
  spec.faults.link_drops = {{0, 1, 0.0, 1000.0}};
  const auto result = harness::execute(queue, spec);

  std::size_t cut = 0;
  std::size_t alive = 0;
  for (const auto& msg : result.record.messages) {
    if (msg.src == 0 && msg.dst == 1) {
      EXPECT_FALSE(msg.received);
      ++cut;
    } else {
      EXPECT_TRUE(msg.received);
      ++alive;
    }
  }
  EXPECT_GT(cut, 0u);    // the cut link carried traffic
  EXPECT_GT(alive, 0u);  // the reverse direction (1 -> 0) stayed up
}

/// The workload of the determinism runs: seeded scripts, seeded random
/// delays, seeded drops -- every RNG stream the fault plane must not
/// perturb.
harness::RunSpec seeded_spec(const adt::DataType& type, std::uint64_t seed) {
  harness::RunSpec spec;
  spec.params = ModelParams{3, 10.0, 2.0, 0.0};
  spec.params.eps = spec.params.optimal_eps();
  spec.scripts = harness::random_scripts(type, 3, 3, seed * 17);
  spec.delays =
      std::make_shared<UniformRandomDelay>(spec.params.min_delay(), spec.params.d, seed);
  spec.drop_probability = 0.1;
  spec.drop_seed = seed * 31;
  return spec;
}

TEST(FaultPlaneTest, SixtySeedReplayDeterminismWithScheduleOn) {
  adt::QueueType queue;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto a = seeded_spec(queue, seed);
    auto b = seeded_spec(queue, seed);
    const FaultSchedule schedule{{{2, 40.0}}, {{0, 1, 10.0, 30.0}}};
    a.faults = schedule;
    b.faults = schedule;
    const auto ra = harness::execute(queue, a);
    const auto rb = harness::execute(queue, b);
    ASSERT_EQ(record_to_string(ra.record), record_to_string(rb.record))
        << "schedule-on replay diverged at seed " << seed;
  }
}

TEST(FaultPlaneTest, SixtySeedInactiveScheduleByteIdenticalToNone) {
  adt::QueueType queue;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto off = seeded_spec(queue, seed);

    // A schedule that never fires: the crash and the window both live far
    // beyond quiescence.  The record must match a no-schedule run exactly
    // -- fault checks consume no randomness.
    auto inactive = seeded_spec(queue, seed);
    inactive.faults.crashes = {{2, 1.0e9}};
    inactive.faults.link_drops = {{0, 1, 1.0e9, 2.0e9}};

    const auto r_off = harness::execute(queue, off);
    const auto r_inactive = harness::execute(queue, inactive);
    ASSERT_EQ(record_to_string(r_off.record), record_to_string(r_inactive.record))
        << "inactive schedule perturbed the record at seed " << seed;
  }
}

}  // namespace
}  // namespace lintime::sim
