// The all-OOP baseline (Algorithm 1 with the category-erasing decorator):
// every operation costs d+eps; still linearizable.

#include "baseline/all_oop.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime::baseline {
namespace {

using adt::Value;
using harness::AlgoKind;
using harness::Call;
using harness::RunSpec;

TEST(AllMixedDecoratorTest, ErasesCategories) {
  adt::QueueType queue;
  AllMixedDataType wrapped(queue);
  for (const auto& spec : wrapped.ops()) {
    EXPECT_EQ(spec.category, adt::OpCategory::kMixed) << spec.name;
  }
  EXPECT_EQ(wrapped.ops().size(), queue.ops().size());
}

TEST(AllMixedDecoratorTest, ForwardsSemantics) {
  adt::QueueType queue;
  AllMixedDataType wrapped(queue);
  auto s = wrapped.make_initial_state();
  s->apply("enqueue", Value{4});
  EXPECT_EQ(s->apply("peek", Value::nil()), Value{4});
}

TEST(AllOopBaselineTest, EveryOperationCostsDPlusEps) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.algo = AlgoKind::kAllOop;
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{30.0, 1, "peek", Value::nil()},
      Call{60.0, 2, "dequeue", Value::nil()},
  };
  const auto result = harness::execute(queue, spec);
  const double expected = spec.params.d + spec.params.eps;
  EXPECT_DOUBLE_EQ(result.stats_for("enqueue").max, expected);
  EXPECT_DOUBLE_EQ(result.stats_for("peek").max, expected);
  EXPECT_DOUBLE_EQ(result.stats_for("dequeue").max, expected);
}

TEST(AllOopBaselineTest, StillLinearizableUnderRandomWorkload) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.algo = AlgoKind::kAllOop;
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 3);
  spec.scripts = harness::random_scripts(queue, 3, 4, 21);
  const auto result = harness::execute(queue, spec);
  EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable);
}

TEST(AllOopBaselineTest, SlowerThanSpecializedAlgorithmForAccessors) {
  adt::QueueType queue;
  RunSpec fast;
  fast.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  fast.algo = AlgoKind::kAlgorithmOne;
  fast.X = fast.params.d - fast.params.eps;  // accessors at d-X = eps
  fast.calls = {Call{0.0, 0, "peek", Value::nil()}};
  const auto fast_result = harness::execute(queue, fast);

  RunSpec slow = fast;
  slow.algo = AlgoKind::kAllOop;
  const auto slow_result = harness::execute(queue, slow);

  EXPECT_LT(fast_result.stats_for("peek").max, slow_result.stats_for("peek").max);
}

}  // namespace
}  // namespace lintime::baseline
