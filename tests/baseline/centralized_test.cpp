// The folklore centralized baseline: correctness, 2d worst-case latency,
// and linearizability under the property sweep.

#include "baseline/centralized.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime::baseline {
namespace {

using adt::Value;
using harness::AlgoKind;
using harness::Call;
using harness::RunSpec;

RunSpec base_spec(int n = 4) {
  RunSpec spec;
  spec.params = sim::ModelParams{n, 10.0, 2.0, 1.5};
  spec.algo = AlgoKind::kCentralized;
  return spec;
}

TEST(CentralizedTest, RemoteOperationTakesTwoMessageDelays) {
  adt::RegisterType reg;
  auto spec = base_spec();
  spec.delays = std::make_shared<sim::ConstantDelay>(10.0);
  spec.calls = {Call{0.0, 1, "write", Value{5}}};
  const auto result = harness::execute(reg, spec);
  EXPECT_DOUBLE_EQ(result.stats_for("write").max, 20.0);  // 2d
}

TEST(CentralizedTest, CoordinatorOperationIsInstant) {
  adt::RegisterType reg;
  auto spec = base_spec();
  spec.calls = {Call{0.0, 0, "write", Value{5}}};
  const auto result = harness::execute(reg, spec);
  EXPECT_DOUBLE_EQ(result.stats_for("write").max, 0.0);
}

TEST(CentralizedTest, ValuesFlowThroughCoordinator) {
  adt::QueueType queue;
  auto spec = base_spec();
  spec.calls = {
      Call{0.0, 1, "enqueue", Value{1}},
      Call{30.0, 2, "enqueue", Value{2}},
      Call{60.0, 3, "dequeue", Value::nil()},
      Call{90.0, 1, "peek", Value::nil()},
  };
  const auto result = harness::execute(queue, spec);
  EXPECT_EQ(result.record.ops[2].ret, Value{1});
  EXPECT_EQ(result.record.ops[3].ret, Value{2});
}

TEST(CentralizedTest, ConcurrentOpsLinearizable) {
  adt::QueueType queue;
  auto spec = base_spec();
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 5);
  spec.scripts = harness::random_scripts(queue, 4, 5, 77);
  const auto result = harness::execute(queue, spec);
  EXPECT_TRUE(lin::check_linearizability(queue, result.record).linearizable);
}

TEST(CentralizedTest, WorstCaseLatencyBoundedByTwoD) {
  adt::QueueType queue;
  auto spec = base_spec();
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 11);
  spec.scripts = harness::random_scripts(queue, 4, 5, 13);
  const auto result = harness::execute(queue, spec);
  for (const auto& [op, stats] : result.latency) {
    EXPECT_LE(stats.max, 2 * spec.params.d + 1e-9) << op;
  }
}

TEST(CentralizedTest, SkewDoesNotAffectCorrectness) {
  adt::RegisterType reg;
  auto spec = base_spec();
  spec.clock_offsets = {0.75, -0.75, 0.0, 0.5};
  spec.calls = {
      Call{0.0, 1, "write", Value{9}},
      Call{40.0, 2, "read", Value::nil()},
  };
  const auto result = harness::execute(reg, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{9});
}

}  // namespace
}  // namespace lintime::baseline
