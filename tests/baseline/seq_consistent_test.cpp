// Tests for the fast sequentially consistent baseline: zero-latency
// accessors and pure mutators, read-your-writes, SC always holds, and the
// SC-vs-linearizability gap is exhibited concretely.

#include "baseline/seq_consistent.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "lin/sc_checker.hpp"

namespace lintime::baseline {
namespace {

using adt::Value;
using harness::AlgoKind;
using harness::Call;
using harness::RunSpec;

RunSpec base_spec(int n = 3) {
  RunSpec spec;
  spec.params = sim::ModelParams{n, 10.0, 2.0, (1.0 - 1.0 / n) * 2.0};
  spec.algo = AlgoKind::kSeqConsistent;
  return spec;
}

TEST(SeqConsistentTest, PureMutatorRespondsInstantly) {
  adt::RegisterType reg;
  auto spec = base_spec();
  spec.calls = {Call{0.0, 0, "write", Value{5}}};
  const auto result = harness::execute(reg, spec);
  EXPECT_DOUBLE_EQ(result.stats_for("write").max, 0.0);
}

TEST(SeqConsistentTest, QuietAccessorRespondsInstantly) {
  adt::RegisterType reg;
  auto spec = base_spec();
  spec.calls = {Call{0.0, 1, "read", Value::nil()}};
  const auto result = harness::execute(reg, spec);
  EXPECT_DOUBLE_EQ(result.stats_for("read").max, 0.0);
}

TEST(SeqConsistentTest, ReadYourWritesWaitsForLocalApply) {
  adt::RegisterType reg;
  auto spec = base_spec();
  spec.calls = {
      Call{0.0, 0, "write", Value{7}},
      Call{1.0, 0, "read", Value::nil()},  // own write still unapplied
  };
  const auto result = harness::execute(reg, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{7});
  // The read waited until the write executed locally at d + eps, i.e. it
  // responded at time ~ d + eps > 1.
  EXPECT_GT(result.record.ops[1].response_real, spec.params.d);
}

TEST(SeqConsistentTest, RemoteReadMayBeStaleButScHolds) {
  adt::RegisterType reg;
  auto spec = base_spec();
  spec.calls = {
      Call{0.0, 0, "write", Value{5}},
      Call{1.0, 1, "read", Value::nil()},  // before the announcement lands
  };
  const auto result = harness::execute(reg, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{0});  // stale
  EXPECT_FALSE(lin::check_linearizability(reg, result.record).linearizable);
  EXPECT_TRUE(lin::check_sequential_consistency(reg, result.record).linearizable);
}

TEST(SeqConsistentTest, MixedOpsStillPayFullPrice) {
  adt::RmwRegisterType reg;
  auto spec = base_spec();
  spec.calls = {Call{0.0, 0, "fetch_add", Value{1}}};
  const auto result = harness::execute(reg, spec);
  EXPECT_NEAR(result.stats_for("fetch_add").max, spec.params.d + spec.params.eps, 1e-6);
}

TEST(SeqConsistentTest, ReplicasConverge) {
  adt::QueueType queue;
  auto spec = base_spec();
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 4);
  spec.scripts = harness::random_scripts(queue, 3, 5, 31);
  const auto result = harness::execute(queue, spec);
  // Convergence of the replicated state (final_states not populated for this
  // baseline through the harness; check via SC of the full history instead).
  EXPECT_TRUE(lin::check_sequential_consistency(queue, result.record).linearizable);
}

class ScSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScSweep, AlwaysSequentiallyConsistent) {
  const int seed = GetParam();
  adt::QueueType queue;
  auto spec = base_spec(4);
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0,
                                                          static_cast<std::uint64_t>(seed));
  spec.clock_offsets = {0.7, -0.7, 0.3, -0.3};
  spec.scripts = harness::random_scripts(queue, 4, 4, static_cast<std::uint64_t>(seed) * 7 + 1);
  const auto result = harness::execute(queue, spec);
  for (const auto& op : result.record.ops) EXPECT_TRUE(op.complete());
  EXPECT_TRUE(lin::check_sequential_consistency(queue, result.record).linearizable)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace lintime::baseline
