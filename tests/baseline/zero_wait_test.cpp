// The zero-wait UNSAFE baseline: instant responses, and -- importantly --
// demonstrably NOT linearizable under an adversarial schedule (this also
// guards the checker against vacuous passes).

#include "baseline/zero_wait.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"

namespace lintime::baseline {
namespace {

using adt::Value;
using harness::AlgoKind;
using harness::Call;
using harness::RunSpec;

TEST(ZeroWaitTest, InstantResponses) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.algo = AlgoKind::kZeroWait;
  spec.calls = {Call{0.0, 0, "enqueue", Value{1}}, Call{5.0, 0, "dequeue", Value::nil()}};
  const auto result = harness::execute(queue, spec);
  for (const auto& [op, stats] : result.latency) {
    EXPECT_DOUBLE_EQ(stats.max, 0.0) << op;
  }
}

TEST(ZeroWaitTest, SingleProcessSequentialIsStillCorrect) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.algo = AlgoKind::kZeroWait;
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{1.0, 0, "enqueue", Value{2}},
      Call{2.0, 0, "dequeue", Value::nil()},
  };
  const auto result = harness::execute(queue, spec);
  EXPECT_EQ(result.record.ops[2].ret, Value{1});
}

TEST(ZeroWaitTest, StaleReadViolatesLinearizability) {
  // p0 writes and the write completes (instantly); p1 reads long before the
  // announcement arrives: the read returns 0 although it strictly follows
  // the completed write -- the classic non-linearizable pattern.
  adt::RegisterType reg;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.algo = AlgoKind::kZeroWait;
  spec.calls = {
      Call{0.0, 0, "write", Value{5}},
      Call{1.0, 1, "read", Value::nil()},
  };
  const auto result = harness::execute(reg, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{0});  // stale
  EXPECT_FALSE(lin::check_linearizability(reg, result.record).linearizable);
}

TEST(ZeroWaitTest, DoubleDequeueViolatesLinearizability) {
  // Both processes dequeue the same element before hearing of each other.
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.algo = AlgoKind::kZeroWait;
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{20.0, 1, "dequeue", Value::nil()},
      Call{21.0, 2, "dequeue", Value::nil()},
  };
  const auto result = harness::execute(queue, spec);
  EXPECT_EQ(result.record.ops[1].ret, Value{1});
  EXPECT_EQ(result.record.ops[2].ret, Value{1});  // duplicated delivery
  EXPECT_FALSE(lin::check_linearizability(queue, result.record).linearizable);
}

}  // namespace
}  // namespace lintime::baseline
