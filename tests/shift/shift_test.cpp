// Tests for the classic shifting machinery: Theorem 1's formulas, view
// preservation, and the admissibility checker.

#include "shift/shift.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"

namespace lintime::shift {
namespace {

using adt::Value;
using harness::Call;
using harness::RunSpec;

/// A small concurrent run to shift around.
sim::RunRecord sample_run(double delay = 9.0) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.delays = std::make_shared<sim::ConstantDelay>(delay);
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{5.0, 1, "enqueue", Value{2}},
      Call{40.0, 2, "dequeue", Value::nil()},
  };
  return harness::execute(queue, spec).record;
}

TEST(ShiftTest, Theorem1ClockOffsets) {
  const auto r = sample_run();
  const auto shifted = shift_run(r, {0.5, -0.25, 0.0});
  EXPECT_DOUBLE_EQ(shifted.clock_offsets[0], r.clock_offsets[0] - 0.5);
  EXPECT_DOUBLE_EQ(shifted.clock_offsets[1], r.clock_offsets[1] + 0.25);
  EXPECT_DOUBLE_EQ(shifted.clock_offsets[2], r.clock_offsets[2]);
}

TEST(ShiftTest, Theorem1MessageDelays) {
  const auto r = sample_run(9.0);
  const std::vector<double> x = {0.5, -0.25, 0.0};
  const auto shifted = shift_run(r, x);
  ASSERT_EQ(shifted.messages.size(), r.messages.size());
  for (std::size_t i = 0; i < r.messages.size(); ++i) {
    const auto& before = r.messages[i];
    const auto& after = shifted.messages[i];
    EXPECT_NEAR(after.delay(),
                before.delay() - x[static_cast<std::size_t>(before.src)] +
                    x[static_cast<std::size_t>(before.dst)],
                1e-12);
  }
}

TEST(ShiftTest, ViewsPreservedClockTimesUnchanged) {
  // Each process's view -- the sequence of (clock_time, trigger) pairs -- is
  // identical before and after shifting; only real times move.
  const auto r = sample_run();
  const auto shifted = shift_run(r, {1.0, -1.0, 0.5});
  for (sim::ProcId p = 0; p < 3; ++p) {
    const auto before = r.view_of(p);
    const auto after = shifted.view_of(p);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_DOUBLE_EQ(before[i].clock_time, after[i].clock_time);
      EXPECT_EQ(before[i].trigger, after[i].trigger);
      EXPECT_NEAR(after[i].real_time,
                  before[i].real_time + (p == 0 ? 1.0 : p == 1 ? -1.0 : 0.5), 1e-12);
    }
  }
}

TEST(ShiftTest, OperationIntervalsMoveWithProcess) {
  const auto r = sample_run();
  const auto shifted = shift_run(r, {2.0, 0.0, 0.0});
  for (std::size_t i = 0; i < r.ops.size(); ++i) {
    const double dx = r.ops[i].proc == 0 ? 2.0 : 0.0;
    EXPECT_NEAR(shifted.ops[i].invoke_real, r.ops[i].invoke_real + dx, 1e-12);
    EXPECT_NEAR(shifted.ops[i].response_real, r.ops[i].response_real + dx, 1e-12);
  }
}

TEST(ShiftTest, ZeroShiftIsIdentity) {
  const auto r = sample_run();
  const auto shifted = shift_run(r, {0.0, 0.0, 0.0});
  EXPECT_EQ(shifted.clock_offsets, r.clock_offsets);
  ASSERT_EQ(shifted.ops.size(), r.ops.size());
  for (std::size_t i = 0; i < r.ops.size(); ++i) {
    EXPECT_DOUBLE_EQ(shifted.ops[i].invoke_real, r.ops[i].invoke_real);
  }
}

TEST(ShiftTest, ShiftComposes) {
  const auto r = sample_run();
  const auto once = shift_run(shift_run(r, {0.5, 0.0, 0.0}), {0.5, 0.0, -1.0});
  const auto direct = shift_run(r, {1.0, 0.0, -1.0});
  ASSERT_EQ(once.messages.size(), direct.messages.size());
  for (std::size_t i = 0; i < once.messages.size(); ++i) {
    EXPECT_NEAR(once.messages[i].recv_real, direct.messages[i].recv_real, 1e-12);
  }
}

TEST(ShiftTest, WrongVectorSizeThrows) {
  const auto r = sample_run();
  EXPECT_THROW((void)shift_run(r, {1.0}), std::invalid_argument);
}

TEST(AdmissibilityTest, OriginalRunAdmissible) {
  const auto r = sample_run();
  const auto report = check_admissibility(r);
  EXPECT_TRUE(report.admissible) << report.violations.size();
}

TEST(AdmissibilityTest, SmallShiftStaysAdmissible) {
  const auto r = sample_run(9.0);  // delays mid-range: slack u/2 = 1 each way
  const auto report = check_admissibility(shift_run(r, {0.4, -0.4, 0.0}));
  EXPECT_TRUE(report.admissible);
  EXPECT_NEAR(report.max_skew, 0.8, 1e-12);
}

TEST(AdmissibilityTest, LargeShiftBreaksSkew) {
  const auto r = sample_run();
  const auto report = check_admissibility(shift_run(r, {3.0, -3.0, 0.0}));  // skew 6 > eps 1
  EXPECT_FALSE(report.admissible);
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.kind == Violation::Kind::kSkew) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AdmissibilityTest, DelayViolationsDetectedBothWays) {
  const auto r = sample_run(9.0);
  // Shifting p0 late by 2 makes p0-incoming delays 11 (> d) and p0-outgoing
  // delays 7 (< d-u).
  const auto report = check_admissibility(shift_run(r, {2.0, -2.0, 0.0}));
  EXPECT_FALSE(report.admissible);
  bool low = false, high = false;
  for (const auto& v : report.violations) {
    if (v.kind == Violation::Kind::kDelayLow) low = true;
    if (v.kind == Violation::Kind::kDelayHigh) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(ExtractMatrixTest, RecoversUniformDelays) {
  const auto r = sample_run(9.0);
  const auto matrix = extract_delay_matrix(r, -1.0);
  ASSERT_TRUE(matrix.has_value());
  // Every pair that exchanged messages shows 9.0; silent pairs show fill.
  for (const auto& msg : r.messages) {
    EXPECT_DOUBLE_EQ(
        (*matrix)[static_cast<std::size_t>(msg.src)][static_cast<std::size_t>(msg.dst)], 9.0);
  }
}

TEST(ExtractMatrixTest, DetectsNonUniformDelays) {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, 3);
  spec.calls = {Call{0.0, 0, "enqueue", Value{1}}, Call{1.0, 0, "enqueue", Value{2}}};
  const auto record = harness::execute(queue, spec).record;
  EXPECT_FALSE(extract_delay_matrix(record, -1.0).has_value());
}

TEST(ShortestPathsTest, FloydWarshall) {
  const std::vector<std::vector<double>> m = {{0, 1, 10}, {1, 0, 1}, {10, 1, 0}};
  const auto d = shortest_paths(m);
  EXPECT_DOUBLE_EQ(d[0][2], 2.0);  // via node 1
  EXPECT_DOUBLE_EQ(d[0][0], 0.0);
  EXPECT_DOUBLE_EQ(d[2][0], 2.0);
}

}  // namespace
}  // namespace lintime::shift
