// The Theorem 5 proof pipeline (Figures 8-10) run live, reversed-role form.

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/tree_type.hpp"
#include "shift/theorems.hpp"

namespace lintime::shift {
namespace {

using adt::Value;
using harness::ScriptOp;

TEST(Theorem5PipelineTest, QueueEnqueuePeek) {
  adt::QueueType queue;
  Theorem5Spec spec;
  spec.op = "enqueue";
  spec.arg0 = Value{1};
  spec.arg1 = Value{2};
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  const auto p = theorem5_full_pipeline(queue, spec,
                                        sim::ModelParams{3, 10.0, 2.0, (1.0 - 1.0 / 3) * 2.0});
  EXPECT_TRUE(p.r1_linearizable) << p.details;
  EXPECT_TRUE(p.aop1_misses_op0) << p.details;
  EXPECT_TRUE(p.view_identity_r2_r3) << p.details;
  EXPECT_TRUE(p.r2_violated) << p.details;
  EXPECT_TRUE(p.r3_linearizable) << p.details;
}

TEST(Theorem5PipelineTest, TreeInsertDepth) {
  adt::TreeType tree;
  Theorem5Spec spec;
  spec.op = "insert";
  spec.arg0 = adt::TreeType::edge(0, 3);
  spec.arg1 = adt::TreeType::edge(1, 3);
  spec.aop = "depth";
  spec.aop_arg = Value{3};
  spec.rho = {ScriptOp{"insert", adt::TreeType::edge(0, 1)}};
  const auto p = theorem5_full_pipeline(tree, spec,
                                        sim::ModelParams{3, 10.0, 2.0, (1.0 - 1.0 / 3) * 2.0});
  EXPECT_TRUE(p.ok()) << p.details;
}

TEST(Theorem5PipelineTest, FiveProcesses) {
  adt::QueueType queue;
  Theorem5Spec spec;
  spec.op = "enqueue";
  spec.arg0 = Value{1};
  spec.arg1 = Value{2};
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  const auto p = theorem5_full_pipeline(queue, spec,
                                        sim::ModelParams{5, 10.0, 2.0, (1.0 - 1.0 / 5) * 2.0});
  EXPECT_TRUE(p.ok()) << p.details;
}

}  // namespace
}  // namespace lintime::shift
