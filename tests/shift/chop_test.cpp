// Tests for the chop procedure (Lemma 2): cutting a shifted run fragment
// with exactly one invalid delay yields a fragment whose delays are all
// valid.

#include <gtest/gtest.h>

#include <algorithm>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"
#include "shift/shift.hpp"

namespace lintime::shift {
namespace {

using adt::Value;
using harness::Call;
using harness::RunSpec;

/// A run with pair-wise uniform delays 9.0 and traffic on every edge.
sim::RunRecord busy_run() {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.delays = std::make_shared<sim::ConstantDelay>(9.0);
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{1}},
      Call{1.0, 1, "enqueue", Value{2}},
      Call{2.0, 2, "enqueue", Value{3}},
      Call{50.0, 0, "enqueue", Value{4}},
      Call{51.0, 1, "enqueue", Value{5}},
  };
  return harness::execute(queue, spec).record;
}

/// The uniform matrix with one edge overridden.
std::vector<std::vector<double>> matrix_with(int s, int r, double delay) {
  std::vector<std::vector<double>> m(3, std::vector<double>(3, 9.0));
  m[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)] = delay;
  return m;
}

TEST(ChopTest, ThrowsWithoutInvalidDelay) {
  const auto r = busy_run();
  EXPECT_THROW((void)chop_run(r, matrix_with(0, 1, 9.0), 9.0), std::invalid_argument);
}

TEST(ChopTest, ThrowsWithTwoInvalidDelays) {
  const auto r = busy_run();
  auto m = matrix_with(0, 1, 12.0);
  m[1][0] = 12.0;
  EXPECT_THROW((void)chop_run(r, m, 9.0), std::invalid_argument);
}

TEST(ChopTest, ChoppedFragmentHasValidDelays) {
  // Shift p1 late by 1.5: p1's outgoing delays drop to 7.5 (< d-u = 8).
  const auto r = busy_run();
  const auto shifted = shift_run(r, {0.0, 1.5, 0.0});
  auto matrix = matrix_with(1, 0, 7.5);
  matrix[1][2] = 7.5;
  // Two invalid edges -- not choppable as-is.
  EXPECT_THROW((void)chop_run(shifted, matrix, 9.0), std::invalid_argument);
}

TEST(ChopTest, SingleInvalidEdgeChopped) {
  // Shift both p1 and p2 late by 1.5: only edges INTO p0 from p1/p2 grow...
  // actually p1->p2 and p2->p1 stay 9; p1->p0 and p2->p0 become 10.5, and
  // p0->p1 / p0->p2 become 7.5.  Still several invalid edges.  For a clean
  // single-edge case, craft the matrix directly on the unshifted record: the
  // record's realized delays are uniform 9.0; declare p1->p0 as 12.0 "by
  // fiat" and chop -- chop only consults the matrix and the send times.
  const auto r = busy_run();
  const auto chopped = chop_run(r, matrix_with(1, 0, 12.0), 9.0);

  // t_m = first p1->anyone... specifically first p1->p0 send = 1.0 (p1's
  // broadcast at its first enqueue); t* = 1 + min(12, 9) = 10.
  // Cuts: p0 at 10; p1 at 10 + sp(p0->p1) = 19; p2 at 10 + 9 = 19.
  for (const auto& step : chopped.steps) {
    const double cut = step.proc == 0 ? 10.0 : 19.0;
    EXPECT_LT(step.real_time, cut) << "p" << step.proc;
  }

  // Messages received after the receiver's cut are marked unreceived.
  for (const auto& msg : chopped.messages) {
    if (msg.received) {
      const double cut = msg.dst == 0 ? 10.0 : 19.0;
      EXPECT_LT(msg.recv_real, cut);
      EXPECT_GE(msg.delay(), 8.0 - 1e-9);
      EXPECT_LE(msg.delay(), 10.0 + 1e-9);
    }
  }

  // Operations responding after the cut become incomplete, not lost.
  for (const auto& op : chopped.ops) {
    if (op.complete()) {
      const double cut = op.proc == 0 ? 10.0 : 19.0;
      EXPECT_LT(op.response_real, cut);
    }
  }
}

TEST(ChopTest, Lemma2NoMessageReceivedWithoutSend) {
  const auto r = busy_run();
  const auto chopped = chop_run(r, matrix_with(1, 0, 12.0), 9.0);
  // Every message present in the fragment was sent within the fragment: its
  // send step survives the sender's cut.
  for (const auto& msg : chopped.messages) {
    const double sender_cut = msg.src == 0 ? 10.0 : 19.0;
    EXPECT_LT(msg.send_real, sender_cut);
  }
}

TEST(ChopTest, UnreceivedMessagesSatisfyAdmissibilityRule) {
  // Lemma 2 condition 2: for unreceived messages the recipient's view ends
  // before send + d.
  const auto r = busy_run();
  const auto chopped = chop_run(r, matrix_with(1, 0, 12.0), 9.0);
  std::vector<double> view_end(3, -1.0);
  for (const auto& step : chopped.steps) {
    view_end[static_cast<std::size_t>(step.proc)] =
        std::max(view_end[static_cast<std::size_t>(step.proc)], step.real_time);
  }
  for (const auto& msg : chopped.messages) {
    if (!msg.received) {
      EXPECT_LT(view_end[static_cast<std::size_t>(msg.dst)], msg.send_real + 10.0);
    }
  }
}

TEST(ChopTest, DeltaBelowInvalidDelayChopsEarlier) {
  const auto r = busy_run();
  const auto a = chop_run(r, matrix_with(1, 0, 12.0), 9.0);   // t* = 1 + 9
  const auto b = chop_run(r, matrix_with(1, 0, 12.0), 8.0);   // t* = 1 + 8
  EXPECT_GE(a.steps.size(), b.steps.size());
}

TEST(ChopTest, NoTrafficOnInvalidLinkThrows) {
  // A run where p2 never sends to p0: only p0 invokes (its broadcasts create
  // p0->p1, p0->p2 only).
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
  spec.delays = std::make_shared<sim::ConstantDelay>(9.0);
  spec.calls = {Call{0.0, 0, "enqueue", Value{1}}};
  const auto record = harness::execute(queue, spec).record;
  EXPECT_THROW((void)chop_run(record, matrix_with(2, 0, 12.0), 9.0), std::invalid_argument);
}

}  // namespace
}  // namespace lintime::shift
