// Tests for the figure renderer.

#include "shift/render.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "harness/runner.hpp"

namespace lintime::shift {
namespace {

using adt::Value;
using harness::Call;
using harness::RunSpec;

sim::RunRecord small_run() {
  adt::QueueType queue;
  RunSpec spec;
  spec.params = sim::ModelParams{2, 10.0, 2.0, 1.0};
  spec.calls = {
      Call{0.0, 0, "enqueue", Value{5}},
      Call{20.0, 1, "peek", Value::nil()},
  };
  return harness::execute(queue, spec).record;
}

TEST(RenderTest, TimelineContainsOneLanePerProcess) {
  const auto text = render_timeline(small_run());
  EXPECT_NE(text.find("p0 "), std::string::npos);
  EXPECT_NE(text.find("p1 "), std::string::npos);
}

TEST(RenderTest, TimelineLabelsOperations) {
  const auto text = render_timeline(small_run());
  EXPECT_NE(text.find("enqueue(5)"), std::string::npos);
  EXPECT_NE(text.find("peek(nil)->5"), std::string::npos);
}

TEST(RenderTest, OperationsOrderedLeftToRight) {
  const auto text = render_timeline(small_run());
  // enqueue (t=0) must start left of peek (t=20) in their lanes.
  const auto p0 = text.find("enqueue");
  const auto p1 = text.find("peek");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  // Column within the lane: subtract position of the lane's line start.
  const auto line_start0 = text.rfind('\n', p0);
  const auto line_start1 = text.rfind('\n', p1);
  EXPECT_LT(p0 - line_start0, p1 - line_start1);
}

TEST(RenderTest, WindowClipsOperations) {
  RenderOptions opts;
  opts.t_min = 15;
  opts.t_max = 40;
  const auto text = render_timeline(small_run(), opts);
  EXPECT_EQ(text.find("enqueue"), std::string::npos);  // ended at 2.0
  EXPECT_NE(text.find("peek"), std::string::npos);
}

TEST(RenderTest, MessagesListedOnRequest) {
  RenderOptions opts;
  opts.show_messages = true;
  const auto text = render_timeline(small_run(), opts);
  EXPECT_NE(text.find("msg#"), std::string::npos);
  EXPECT_NE(text.find("delay 10"), std::string::npos);
}

TEST(RenderTest, DelayMatrixFlagsInvalidEntries) {
  sim::ModelParams params{3, 10.0, 2.0, 1.0};
  const std::vector<std::vector<double>> m = {
      {0, 10.0, 8.5}, {11.0, 0, 9.0}, {7.0, 8.0, 0}};
  const auto text = render_delay_matrix(m, params);
  EXPECT_NE(text.find("10*"), std::string::npos);  // exactly d
  EXPECT_NE(text.find("11!"), std::string::npos);  // above d
  EXPECT_NE(text.find("7!"), std::string::npos);   // below d-u
  EXPECT_NE(text.find("8.5"), std::string::npos);  // plain valid
}

}  // namespace
}  // namespace lintime::shift
