// Integration tests: the executable lower-bound constructions of
// Theorems 2-5.  Each must (a) break the unsafe-but-plausible algorithm with
// a checker-certified non-linearizable admissible run, and (b) leave the
// standard Algorithm 1 unharmed under the identical adversary.

#include "shift/theorems.hpp"

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"

namespace lintime::shift {
namespace {

using adt::Value;
using harness::ScriptOp;

sim::ModelParams params(int n) { return sim::ModelParams{n, 10.0, 2.0, (1.0 - 1.0 / n) * 2.0}; }

// ---------------------------------------------------------------------------
// Theorem 2
// ---------------------------------------------------------------------------

TEST(Theorem2Test, RegisterReadAgainstFetchAdd) {
  adt::RmwRegisterType reg;
  Theorem2Spec spec;
  spec.aop = "read";
  spec.aop_arg = Value::nil();
  spec.mutator_op = "fetch_add";
  spec.mutator_arg = Value{5};
  const auto result = theorem2_pure_accessor(reg, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
  EXPECT_DOUBLE_EQ(result.bound, 0.5);  // u/4
  EXPECT_LT(result.unsafe_latency, result.bound);
}

TEST(Theorem2Test, QueuePeekAgainstDequeue) {
  adt::QueueType queue;
  Theorem2Spec spec;
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  spec.mutator_op = "dequeue";
  spec.mutator_arg = Value::nil();
  spec.rho = {ScriptOp{"enqueue", Value{1}}};  // make peek/dequeue meaningful
  const auto result = theorem2_pure_accessor(queue, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem2Test, TreeDepthAgainstMove) {
  adt::TreeType tree;
  Theorem2Spec spec;
  spec.aop = "depth";
  spec.aop_arg = Value{4};
  spec.mutator_op = "move";
  spec.mutator_arg = adt::TreeType::edge(1, 4);
  spec.rho = {ScriptOp{"insert", adt::TreeType::edge(0, 1)},
              ScriptOp{"move", adt::TreeType::edge(0, 4)}};
  const auto result = theorem2_pure_accessor(tree, spec, params(4));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem2Test, RequiresThreeProcesses) {
  adt::RmwRegisterType reg;
  Theorem2Spec spec;
  spec.aop = "read";
  spec.aop_arg = Value::nil();
  spec.mutator_op = "fetch_add";
  spec.mutator_arg = Value{1};
  EXPECT_THROW((void)theorem2_pure_accessor(reg, spec, params(2)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Theorem 3
// ---------------------------------------------------------------------------

TEST(Theorem3Test, RegisterWritesAtKEqualsN) {
  adt::RegisterType reg;
  Theorem3Spec spec;
  spec.op = "write";
  spec.args = {Value{10}, Value{20}, Value{30}, Value{40}, Value{50}};
  spec.probe = {ScriptOp{"read", Value::nil()}};
  const auto result = theorem3_last_sensitive(reg, spec, params(5));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
  EXPECT_DOUBLE_EQ(result.bound, (1.0 - 1.0 / 5) * 2.0);
}

TEST(Theorem3Test, QueueEnqueues) {
  adt::QueueType queue;
  Theorem3Spec spec;
  spec.op = "enqueue";
  spec.args = {Value{1}, Value{2}, Value{3}, Value{4}};
  // Probe: dequeue everything; the order reveals which enqueue was last.
  spec.probe = std::vector<ScriptOp>(4, ScriptOp{"dequeue", Value::nil()});
  const auto result = theorem3_last_sensitive(queue, spec, params(4));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem3Test, StackPushes) {
  adt::StackType st;
  Theorem3Spec spec;
  spec.op = "push";
  spec.args = {Value{1}, Value{2}, Value{3}};
  spec.probe = std::vector<ScriptOp>(3, ScriptOp{"pop", Value::nil()});
  const auto result = theorem3_last_sensitive(st, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem3Test, TreeMoves) {
  adt::TreeType tree;
  Theorem3Spec spec;
  spec.op = "move";
  spec.args = {adt::TreeType::edge(0, 4), adt::TreeType::edge(1, 4),
               adt::TreeType::edge(2, 4)};
  spec.rho = {ScriptOp{"insert", adt::TreeType::edge(0, 1)},
              ScriptOp{"insert", adt::TreeType::edge(1, 2)}};
  spec.probe = {ScriptOp{"depth", Value{4}}, ScriptOp{"parent", Value{4}}};
  const auto result = theorem3_last_sensitive(tree, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem3Test, KTwoUsesHalfU) {
  adt::RegisterType reg;
  Theorem3Spec spec;
  spec.op = "write";
  spec.args = {Value{1}, Value{2}};
  spec.probe = {ScriptOp{"read", Value::nil()}};
  const auto result = theorem3_last_sensitive(reg, spec, params(4));
  EXPECT_DOUBLE_EQ(result.bound, 1.0);  // u/2
  EXPECT_TRUE(result.unsafe_violated) << result.details;
}

// ---------------------------------------------------------------------------
// Theorem 4
// ---------------------------------------------------------------------------

TEST(Theorem4Test, RmwFetchAdd) {
  adt::RmwRegisterType reg;
  Theorem4Spec spec;
  spec.op = "fetch_add";
  spec.arg0 = Value{100};
  spec.arg1 = Value{200};
  const auto result = theorem4_pair_free(reg, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
  EXPECT_GT(result.unsafe_latency, params(3).d);  // beyond the old bound d
  EXPECT_LT(result.unsafe_latency, result.bound);
}

TEST(Theorem4Test, QueueDequeue) {
  adt::QueueType queue;
  Theorem4Spec spec;
  spec.op = "dequeue";
  spec.arg0 = Value::nil();
  spec.arg1 = Value::nil();
  spec.rho = {ScriptOp{"enqueue", Value{7}}};  // both dequeues race for the head
  const auto result = theorem4_pair_free(queue, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem4Test, StackPop) {
  adt::StackType st;
  Theorem4Spec spec;
  spec.op = "pop";
  spec.arg0 = Value::nil();
  spec.arg1 = Value::nil();
  spec.rho = {ScriptOp{"push", Value{7}}};
  const auto result = theorem4_pair_free(st, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem4Test, ChopDemoBookkeeping) {
  adt::RmwRegisterType reg;
  Theorem4Spec spec;
  spec.op = "fetch_add";
  spec.arg0 = Value{100};
  spec.arg1 = Value{200};
  const auto demo = theorem4_chop_demo(reg, spec, params(3));
  EXPECT_TRUE(demo.one_invalid_edge) << demo.details;
  EXPECT_TRUE(demo.chop_valid) << demo.details;
  EXPECT_TRUE(demo.op_survives_chop) << demo.details;
}

// ---------------------------------------------------------------------------
// Theorem 5
// ---------------------------------------------------------------------------

TEST(Theorem5Test, QueueEnqueuePeek) {
  adt::QueueType queue;
  Theorem5Spec spec;
  spec.op = "enqueue";
  spec.arg0 = Value{1};
  spec.arg1 = Value{2};
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  const auto result = theorem5_sum(queue, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem5Test, TreeInsertDepth) {
  adt::TreeType tree;
  Theorem5Spec spec;
  spec.op = "insert";
  spec.arg0 = adt::TreeType::edge(0, 3);
  spec.arg1 = adt::TreeType::edge(1, 3);
  spec.aop = "depth";
  spec.aop_arg = Value{3};
  spec.rho = {ScriptOp{"insert", adt::TreeType::edge(0, 1)}};
  const auto result = theorem5_sum(tree, spec, params(3));
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(Theorem5Test, ChopDemoBookkeeping) {
  adt::QueueType queue;
  Theorem5Spec spec;
  spec.op = "enqueue";
  spec.arg0 = Value{1};
  spec.arg1 = Value{2};
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  // Needs 2m > u: with d=12, u=3, eps=2 -> m = 2, 2m = 4 > 3.
  sim::ModelParams p{3, 12.0, 3.0, 2.0};
  const auto demo = theorem5_chop_demo(queue, spec, p);
  EXPECT_TRUE(demo.one_invalid_edge) << demo.details;
  EXPECT_TRUE(demo.chop_valid) << demo.details;
  EXPECT_TRUE(demo.op_survives_chop) << demo.details;
}

TEST(Theorem5Test, ChopDemoInapplicableWhenUMajorizesM) {
  adt::QueueType queue;
  Theorem5Spec spec;
  spec.op = "enqueue";
  spec.arg0 = Value{1};
  spec.arg1 = Value{2};
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  // 2m <= u: m = min(0.5, 4, 10/3) = 0.5, 2m = 1 <= 4.
  sim::ModelParams p{3, 10.0, 4.0, 0.5};
  const auto demo = theorem5_chop_demo(queue, spec, p);
  EXPECT_FALSE(demo.ok());
  EXPECT_NE(demo.details.find("inapplicable"), std::string::npos);
}

}  // namespace
}  // namespace lintime::shift
