// The full Theorem 4 proof pipeline (runs R1..R5, Claims 4 and 5, and the
// final contradiction), executed live and verified mechanically.

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/stack_type.hpp"
#include "shift/theorems.hpp"

namespace lintime::shift {
namespace {

using adt::Value;
using harness::ScriptOp;

sim::ModelParams params5() { return sim::ModelParams{5, 10.0, 2.0, (1.0 - 1.0 / 5) * 2.0}; }

TEST(Theorem4PipelineTest, QueueDequeue) {
  adt::QueueType queue;
  Theorem4Spec spec;
  spec.op = "dequeue";
  spec.arg0 = Value::nil();
  spec.arg1 = Value::nil();
  spec.rho = {ScriptOp{"enqueue", Value{7}}, ScriptOp{"enqueue", Value{8}}};
  const auto p = theorem4_full_pipeline(queue, spec, params5());
  EXPECT_TRUE(p.claim4_view_identity) << p.details;
  EXPECT_TRUE(p.claim5_view_identity) << p.details;
  EXPECT_TRUE(p.same_ret_r4_r5) << p.details;
  EXPECT_TRUE(p.contradiction) << p.details;
  // Both dequeues' solo values are the head.
  EXPECT_EQ(p.ret0_solo, Value{7});
  EXPECT_EQ(p.ret1_solo, Value{7});
}

TEST(Theorem4PipelineTest, RmwFetchAdd) {
  adt::RmwRegisterType reg;
  Theorem4Spec spec;
  spec.op = "fetch_add";
  spec.arg0 = Value{100};
  spec.arg1 = Value{200};
  const auto p = theorem4_full_pipeline(reg, spec, params5());
  EXPECT_TRUE(p.ok()) << p.details;
  EXPECT_EQ(p.ret0_solo, Value{0});
  EXPECT_EQ(p.ret1_solo, Value{0});
}

TEST(Theorem4PipelineTest, StackPop) {
  adt::StackType st;
  Theorem4Spec spec;
  spec.op = "pop";
  spec.arg0 = Value::nil();
  spec.arg1 = Value::nil();
  spec.rho = {ScriptOp{"push", Value{9}}};
  const auto p = theorem4_full_pipeline(st, spec, params5());
  EXPECT_TRUE(p.ok()) << p.details;
}

TEST(Theorem4PipelineTest, WorksWithThreeProcesses) {
  adt::QueueType queue;
  Theorem4Spec spec;
  spec.op = "dequeue";
  spec.arg0 = Value::nil();
  spec.arg1 = Value::nil();
  spec.rho = {ScriptOp{"enqueue", Value{7}}};
  const auto p = theorem4_full_pipeline(queue, spec,
                                        sim::ModelParams{3, 10.0, 2.0, (1.0 - 1.0 / 3) * 2.0});
  EXPECT_TRUE(p.ok()) << p.details;
}

TEST(Theorem4PipelineTest, RejectsTwoProcesses) {
  adt::QueueType queue;
  Theorem4Spec spec;
  spec.op = "dequeue";
  EXPECT_THROW((void)theorem4_full_pipeline(queue, spec, sim::ModelParams{2, 10.0, 2.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lintime::shift
