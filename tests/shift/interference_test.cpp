// Tests for the Section 6.1 generalized interference bound and its witness
// search.

#include <gtest/gtest.h>

#include "adt/classify.hpp"
#include "adt/max_register_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/set_type.hpp"
#include "shift/theorems.hpp"

namespace lintime::shift {
namespace {

using adt::Value;
using harness::ScriptOp;

sim::ModelParams params3() { return sim::ModelParams{3, 10.0, 2.0, (1.0 - 1.0 / 3) * 2.0}; }

// ---------------------------------------------------------------------------
// Witness search
// ---------------------------------------------------------------------------

TEST(InterferenceWitnessTest, WriteInterferesWithRead) {
  adt::RegisterType reg;
  const auto w = adt::find_interference_witness(reg, "write", "read");
  ASSERT_TRUE(w.has_value());
  EXPECT_NE(w->ret_before, w->ret_after);
}

TEST(InterferenceWitnessTest, EnqueueInterferesWithPeek) {
  adt::QueueType queue;
  EXPECT_TRUE(adt::find_interference_witness(queue, "enqueue", "peek").has_value());
}

TEST(InterferenceWitnessTest, ReadDoesNotInterfereWithRead) {
  adt::RegisterType reg;
  EXPECT_FALSE(adt::find_interference_witness(reg, "read", "read").has_value());
}

TEST(InterferenceWitnessTest, SetAddInterferesWithContainsButNotSizeless) {
  adt::SetType set;
  EXPECT_TRUE(adt::find_interference_witness(set, "add", "contains").has_value());
  EXPECT_TRUE(adt::find_interference_witness(set, "add", "size").has_value());
  // erase of an absent element cannot change contains of another... but
  // erase of a present one does:
  EXPECT_TRUE(adt::find_interference_witness(set, "erase", "contains").has_value());
}

TEST(InterferenceWitnessTest, MaxWriteInterfersWithRead) {
  // Even the commutative max-register write interferes with read (raising
  // the maximum is observable), so it still pays the d sum bound despite
  // escaping Theorem 3.
  adt::MaxRegisterType reg;
  EXPECT_TRUE(adt::find_interference_witness(reg, "write_max", "read").has_value());
}

// ---------------------------------------------------------------------------
// Live experiments
// ---------------------------------------------------------------------------

TEST(InterferenceSumTest, RegisterWritePlusRead) {
  adt::RegisterType reg;
  InterferenceSpec spec;
  spec.mutator_op = "write";
  spec.mutator_arg = Value{5};
  spec.aop = "read";
  spec.aop_arg = Value::nil();
  const auto result = interference_sum(reg, spec, params3());
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
  EXPECT_DOUBLE_EQ(result.bound, 10.0);
  EXPECT_LT(result.unsafe_latency, result.bound);
}

TEST(InterferenceSumTest, QueueEnqueuePlusPeek) {
  adt::QueueType queue;
  InterferenceSpec spec;
  spec.mutator_op = "enqueue";
  spec.mutator_arg = Value{1};
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  const auto result = interference_sum(queue, spec, params3());
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(InterferenceSumTest, MaxRegisterStillPaysTheSumBound) {
  adt::MaxRegisterType reg;
  InterferenceSpec spec;
  spec.mutator_op = "write_max";
  spec.mutator_arg = Value{5};
  spec.aop = "read";
  spec.aop_arg = Value::nil();
  const auto result = interference_sum(reg, spec, params3());
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(InterferenceSumTest, MixedMutatorDequeueVersusPeek) {
  adt::QueueType queue;
  InterferenceSpec spec;
  spec.mutator_op = "dequeue";
  spec.mutator_arg = Value::nil();
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  spec.rho = {ScriptOp{"enqueue", Value{1}}, ScriptOp{"enqueue", Value{2}}};
  const auto result = interference_sum(queue, spec, params3());
  EXPECT_TRUE(result.unsafe_violated) << result.details;
  EXPECT_TRUE(result.safe_survived) << result.details;
}

TEST(InterferenceSumTest, FractionSweep) {
  adt::RegisterType reg;
  for (const double fraction : {0.3, 0.6, 0.9}) {
    InterferenceSpec spec;
    spec.mutator_op = "write";
    spec.mutator_arg = Value{5};
    spec.aop = "read";
    spec.aop_arg = Value::nil();
    spec.unsafe_fraction = fraction;
    const auto result = interference_sum(reg, spec, params3());
    EXPECT_TRUE(result.unsafe_violated) << "fraction " << fraction << "\n" << result.details;
  }
}

}  // namespace
}  // namespace lintime::shift
