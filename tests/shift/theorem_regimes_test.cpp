// Parameter-regime sweep for the Theorem 4/5 experiments: the bound
// d + min{eps, u, d/3} takes a different branch depending on which term is
// smallest, and the proofs' delay/skew constructions must work in every
// branch.  One parameterization per regime:
//   m = eps  :  eps < u, eps < d/3   (the paper's canonical case)
//   m = u    :  u < eps is impossible with optimal sync (eps = (1-1/n)u < u),
//               so we use eps slightly above u via an explicitly assumed
//               skew bound: eps = 3, u = 2, d = 30
//   m = d/3  :  d small relative to u, eps: d = 4.5, u = 2, eps = 1.8
// Theorem 3's bound (1-1/k)u is delay-regime independent but is swept over
// the same parameter sets as a robustness check.

#include <gtest/gtest.h>

#include "adt/queue_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "shift/theorems.hpp"

namespace lintime::shift {
namespace {

using adt::Value;
using harness::ScriptOp;

struct Regime {
  const char* name;
  sim::ModelParams params;
  const char* expected_branch;
};

class RegimeTest : public ::testing::TestWithParam<int> {
 protected:
  static Regime regime(int idx) {
    switch (idx) {
      case 0:
        return {"m_eq_eps", sim::ModelParams{3, 10.0, 2.0, (1.0 - 1.0 / 3) * 2.0}, "eps"};
      case 1:
        return {"m_eq_u", sim::ModelParams{3, 30.0, 2.0, 3.0}, "u"};
      default:
        return {"m_eq_d3", sim::ModelParams{3, 4.5, 2.0, 1.8}, "d/3"};
    }
  }
};

TEST_P(RegimeTest, MTakesTheExpectedBranch) {
  const auto r = regime(GetParam());
  const auto& p = r.params;
  const double m = p.m();
  switch (GetParam()) {
    case 0: EXPECT_DOUBLE_EQ(m, p.eps); break;
    case 1: EXPECT_DOUBLE_EQ(m, p.u); break;
    default: EXPECT_DOUBLE_EQ(m, p.d / 3); break;
  }
}

TEST_P(RegimeTest, Theorem4PairFreeHoldsInEveryRegime) {
  const auto r = regime(GetParam());
  adt::RmwRegisterType reg;
  Theorem4Spec spec;
  spec.op = "fetch_add";
  spec.arg0 = Value{100};
  spec.arg1 = Value{200};
  const auto result = theorem4_pair_free(reg, spec, r.params);
  EXPECT_TRUE(result.unsafe_violated) << r.name << "\n" << result.details;
  EXPECT_TRUE(result.safe_survived) << r.name << "\n" << result.details;
  EXPECT_DOUBLE_EQ(result.bound, r.params.d + r.params.m());
}

TEST_P(RegimeTest, Theorem4ChopBookkeepingHoldsInEveryRegime) {
  const auto r = regime(GetParam());
  adt::QueueType queue;
  Theorem4Spec spec;
  spec.op = "dequeue";
  spec.arg0 = Value::nil();
  spec.arg1 = Value::nil();
  spec.rho = {ScriptOp{"enqueue", Value{7}}};
  const auto demo = theorem4_chop_demo(queue, spec, r.params);
  EXPECT_TRUE(demo.one_invalid_edge) << r.name << "\n" << demo.details;
  EXPECT_TRUE(demo.chop_valid) << r.name << "\n" << demo.details;
  EXPECT_TRUE(demo.op_survives_chop) << r.name << "\n" << demo.details;
}

TEST_P(RegimeTest, Theorem5SumHoldsInEveryRegime) {
  const auto r = regime(GetParam());
  adt::QueueType queue;
  Theorem5Spec spec;
  spec.op = "enqueue";
  spec.arg0 = Value{1};
  spec.arg1 = Value{2};
  spec.aop = "peek";
  spec.aop_arg = Value::nil();
  const auto result = theorem5_sum(queue, spec, r.params);
  EXPECT_TRUE(result.unsafe_violated) << r.name << "\n" << result.details;
  EXPECT_TRUE(result.safe_survived) << r.name << "\n" << result.details;
}

TEST_P(RegimeTest, Theorem3HoldsInEveryRegime) {
  const auto r = regime(GetParam());
  adt::QueueType queue;
  Theorem3Spec spec;
  spec.op = "enqueue";
  spec.args = {Value{1}, Value{2}, Value{3}};
  spec.probe = std::vector<ScriptOp>(3, ScriptOp{"dequeue", Value::nil()});
  // Theorem 3 needs eps >= (1-1/k)u; true in all three regimes for k=3.
  const auto result = theorem3_last_sensitive(queue, spec, r.params);
  EXPECT_TRUE(result.unsafe_violated) << r.name << "\n" << result.details;
  EXPECT_TRUE(result.safe_survived) << r.name << "\n" << result.details;
}

std::string regime_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"MEqualsEps", "MEqualsU", "MEqualsDThird"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Regimes, RegimeTest, ::testing::Range(0, 3), regime_name);

}  // namespace
}  // namespace lintime::shift
