// Tests pinning the empirical classifier's verdicts for every operation of
// every shipped type -- the executable version of the paper's taxonomy
// (Figure 11), plus the Theorem 5 discriminator machinery.

#include "adt/classify.hpp"

#include <gtest/gtest.h>

#include "adt/counter_type.hpp"
#include "adt/deque_type.hpp"
#include "adt/max_register_type.hpp"
#include "adt/pool_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"

namespace lintime::adt {
namespace {

// ---------------------------------------------------------------------------
// Register
// ---------------------------------------------------------------------------

TEST(ClassifyRegister, WriteIsPureMutatorOverwriterLastSensitive) {
  RegisterType reg;
  const auto c = classify_op(reg, "write");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_TRUE(c.overwriter) << c.notes;
  EXPECT_TRUE(c.transposable) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 4) << c.notes;  // = classifier bound; extends to any k
  EXPECT_FALSE(c.pair_free) << c.notes;
}

TEST(ClassifyRegister, ReadIsPureAccessor) {
  RegisterType reg;
  const auto c = classify_op(reg, "read");
  EXPECT_TRUE(c.pure_accessor()) << c.notes;
  EXPECT_FALSE(c.pair_free) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 0) << c.notes;
}

// ---------------------------------------------------------------------------
// RMW register
// ---------------------------------------------------------------------------

TEST(ClassifyRmw, FetchAddIsMixedPairFree) {
  RmwRegisterType reg;
  const auto c = classify_op(reg, "fetch_add");
  EXPECT_TRUE(c.mixed()) << c.notes;
  EXPECT_TRUE(c.pair_free) << c.notes;     // the Theorem 4 class
  EXPECT_FALSE(c.transposable) << c.notes;
}

TEST(ClassifyRmw, SwapIsMixedPairFreeOverwriter) {
  RmwRegisterType reg;
  const auto c = classify_op(reg, "swap");
  EXPECT_TRUE(c.mixed()) << c.notes;
  EXPECT_TRUE(c.pair_free) << c.notes;
  // swap sets the whole state: whenever swap is legal after rho.op and after
  // rho with the same return, the results coincide.
  EXPECT_TRUE(c.overwriter) << c.notes;
}

TEST(ClassifyRmw, WriteStaysPureMutatorWithRmwPresent) {
  RmwRegisterType reg;
  const auto c = classify_op(reg, "write");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 4) << c.notes;
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

TEST(ClassifyQueue, EnqueueIsLastSensitivePureMutatorNotOverwriter) {
  QueueType q;
  const auto c = classify_op(q, "enqueue");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_FALSE(c.overwriter) << c.notes;  // enqueue adds, does not overwrite
  EXPECT_TRUE(c.transposable) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 4) << c.notes;
}

TEST(ClassifyQueue, DequeueIsMixedPairFree) {
  QueueType q;
  const auto c = classify_op(q, "dequeue");
  EXPECT_TRUE(c.mixed()) << c.notes;
  EXPECT_TRUE(c.pair_free) << c.notes;  // two dequeues of the same head conflict
}

TEST(ClassifyQueue, PeekIsPureAccessor) {
  QueueType q;
  const auto c = classify_op(q, "peek");
  EXPECT_TRUE(c.pure_accessor()) << c.notes;
}

// ---------------------------------------------------------------------------
// Stack
// ---------------------------------------------------------------------------

TEST(ClassifyStack, PushIsLastSensitivePureMutator) {
  StackType st;
  const auto c = classify_op(st, "push");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_FALSE(c.overwriter) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 4) << c.notes;
}

TEST(ClassifyStack, PopIsMixedPairFree) {
  StackType st;
  const auto c = classify_op(st, "pop");
  EXPECT_TRUE(c.mixed()) << c.notes;
  EXPECT_TRUE(c.pair_free) << c.notes;
}

TEST(ClassifyStack, PeekIsPureAccessor) {
  StackType st;
  const auto c = classify_op(st, "peek");
  EXPECT_TRUE(c.pure_accessor()) << c.notes;
}

// ---------------------------------------------------------------------------
// Tree
// ---------------------------------------------------------------------------

TEST(ClassifyTree, InsertIsPureMutatorTransposable) {
  TreeType t;
  const auto c = classify_op(t, "insert");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_TRUE(c.transposable) << c.notes;
  // First-wins insert: last-sensitive at k=2 (order of two competing inserts
  // of the same node matters) but not beyond.
  EXPECT_EQ(c.last_sensitive_k, 2) << c.notes;
}

TEST(ClassifyTree, MoveIsLastSensitiveAtClassifierBound) {
  TreeType t;
  const auto c = classify_op(t, "move");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_TRUE(c.transposable) << c.notes;
  // Last-wins re-parenting: the last of k moves of node 4 under parents at
  // distinct depths determines its position -- k-wise last-sensitive.
  EXPECT_EQ(c.last_sensitive_k, 4) << c.notes;
}

TEST(ClassifyTree, RemoveIsLastSensitiveAtTwo) {
  TreeType t;
  const auto c = classify_op(t, "remove");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_TRUE(c.transposable) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 2) << c.notes;
}

TEST(ClassifyTree, DepthAndParentArePureAccessors) {
  TreeType t;
  EXPECT_TRUE(classify_op(t, "depth").pure_accessor());
  EXPECT_TRUE(classify_op(t, "parent").pure_accessor());
}

// ---------------------------------------------------------------------------
// Set / Counter: the commutative contrast cases
// ---------------------------------------------------------------------------

TEST(ClassifySet, AddIsCommutativePureMutator) {
  SetType set;
  const auto c = classify_op(set, "add");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_TRUE(c.transposable) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 0) << c.notes;  // adds commute: Theorem 3 n/a
}

TEST(ClassifySet, AddIfAbsentIsMixedPairFree) {
  SetType set;
  const auto c = classify_op(set, "add_if_absent");
  EXPECT_TRUE(c.mixed()) << c.notes;
  // Like dequeue, pair-free with op1 == op2: two add_if_absent(v) instances
  // both returning 1 are illegal in either order (the second returns 0), so
  // the test-and-set style operation falls in Theorem 4's class.
  EXPECT_TRUE(c.pair_free) << c.notes;
}

TEST(ClassifyCounter, IncIsCommutativePureMutator) {
  CounterType ctr;
  const auto c = classify_op(ctr, "inc");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 0) << c.notes;
}

TEST(ClassifyCounter, FetchIncIsPairFree) {
  CounterType ctr;
  const auto c = classify_op(ctr, "fetch_inc");
  EXPECT_TRUE(c.mixed()) << c.notes;
  EXPECT_TRUE(c.pair_free) << c.notes;
}

// ---------------------------------------------------------------------------
// Pool: the deterministic resolution of the nondeterministic bag
// ---------------------------------------------------------------------------

TEST(ClassifyPool, PutIsCommutativePureMutator) {
  PoolType pool;
  const auto c = classify_op(pool, "put");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_TRUE(c.transposable) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 0) << c.notes;  // a bag forgets insertion order
  EXPECT_FALSE(c.overwriter) << c.notes;
}

TEST(ClassifyPool, TakeIsMixedPairFree) {
  // Under the min-take resolution, two takes of the same element conflict in
  // both orders: Theorem 4's d+m applies to the deterministic pool.
  PoolType pool;
  const auto c = classify_op(pool, "take");
  EXPECT_TRUE(c.mixed()) << c.notes;
  EXPECT_TRUE(c.pair_free) << c.notes;
}

TEST(ClassifyPool, SizeIsPureAccessor) {
  PoolType pool;
  EXPECT_TRUE(classify_op(pool, "size").pure_accessor());
}

// ---------------------------------------------------------------------------
// Declared vs. empirical categories agree for every op of every type.
// ---------------------------------------------------------------------------

TEST(ClassifyConsistency, DeclaredCategoriesMatchEmpirical) {
  const RegisterType reg;
  const RmwRegisterType rmw;
  const QueueType q;
  const StackType st;
  const TreeType tree;
  const SetType set;
  const CounterType ctr;
  const PoolType pool;
  const MaxRegisterType maxreg;
  const DequeType deque;
  const DataType* types[] = {&reg, &rmw, &q, &st, &tree, &set, &ctr, &pool, &maxreg, &deque};
  for (const auto* type : types) {
    for (const auto& c : classify_all(*type)) {
      EXPECT_EQ(c.implied_category(), type->category(c.op))
          << type->name() << "::" << c.op << " -- " << c.notes;
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 5 discriminators
// ---------------------------------------------------------------------------

TEST(Discriminator, PeekDiscriminatesEnqueueOrders) {
  QueueType q;
  const Sequence e1 = {Instance{"enqueue", 1, Value::nil()}};
  const Sequence e21 = {Instance{"enqueue", 2, Value::nil()},
                        Instance{"enqueue", 1, Value::nil()}};
  const auto disc = find_discriminator(q, e1, e21, "peek");
  ASSERT_TRUE(disc.has_value());
  EXPECT_EQ(disc->ret1, Value{1});
  EXPECT_EQ(disc->ret2, Value{2});
}

TEST(Discriminator, NoDiscriminatorForIdenticalStates) {
  QueueType q;
  const Sequence e1 = {Instance{"enqueue", 1, Value::nil()}};
  EXPECT_FALSE(find_discriminator(q, e1, e1, "peek").has_value());
}

TEST(Theorem5Witness, QueueEnqueuePeekSatisfiesHypotheses) {
  // The paper's example pair: enqueue + peek on a queue.
  QueueType q;
  const auto witness = find_theorem5_witness(q, "enqueue", "peek");
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->disc_a.ret1, witness->disc_a.ret2);
  EXPECT_NE(witness->disc_b.ret1, witness->disc_b.ret2);
  EXPECT_NE(witness->disc_c.ret1, witness->disc_c.ret2);
}

TEST(Theorem5Witness, StackPushPeekFailsHypotheses) {
  // The paper's counter-example: peek depends only on the last push, so no
  // discriminator set exists.
  StackType st;
  EXPECT_FALSE(find_theorem5_witness(st, "push", "peek").has_value());
}

TEST(Theorem5Witness, TreeInsertDepthSatisfiesHypotheses) {
  // First-wins insert + depth (the Table 4 "Insert + Depth" row).
  TreeType t;
  EXPECT_TRUE(find_theorem5_witness(t, "insert", "depth").has_value());
}

TEST(Theorem5Witness, TreeMoveDepthSatisfiedOnlyByDistinctChildren) {
  // Two moves of the *same* child are mutually overwriting (the last wins),
  // so they admit no discriminators; but moves of two distinct children
  // change disjoint parts of the state and depth() tells the orders apart,
  // so the existential hypotheses of Theorem 5 are satisfied.
  TreeType t;
  EXPECT_TRUE(find_theorem5_witness(t, "move", "depth").has_value());
}

}  // namespace
}  // namespace lintime::adt
