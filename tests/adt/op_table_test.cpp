// Tests for the interned operation-identity layer: OpTable construction and
// lookup, DataType's id-based spec/category access, and the binding contract
// between DataType::initial_state() and ObjectState::apply(OpId).

#include "adt/op_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "adt/data_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"

namespace lintime::adt {
namespace {

OpTable make_table() {
  return OpTable{{
      OpSpec{"write", OpCategory::kPureMutator, true},
      OpSpec{"read", OpCategory::kPureAccessor, false},
      OpSpec{"swap", OpCategory::kMixed, true},
  }};
}

TEST(OpTableTest, FindResolvesEveryDeclaredOp) {
  const OpTable table = make_table();
  ASSERT_EQ(table.size(), 3u);
  for (std::uint32_t i = 0; i < table.size(); ++i) {
    const OpId id = table.find(table.specs()[i].name);
    ASSERT_TRUE(id.valid());
    EXPECT_EQ(id.index(), i);  // ids are declaration-order indices
    EXPECT_EQ(table.spec(id).name, table.specs()[i].name);
    EXPECT_EQ(table.name_of(id), table.specs()[i].name);
  }
}

TEST(OpTableTest, FindUnknownReturnsInvalid) {
  const OpTable table = make_table();
  EXPECT_FALSE(table.find("nonsense").valid());
  EXPECT_FALSE(table.find("").valid());
  EXPECT_FALSE(OpId{}.valid());
}

TEST(OpTableTest, SpecOnBadIdThrows) {
  const OpTable table = make_table();
  EXPECT_THROW((void)table.spec(OpId{}), std::out_of_range);
  EXPECT_THROW((void)table.spec(OpId{99}), std::out_of_range);
}

TEST(OpTableTest, DuplicateNamesRejected) {
  EXPECT_THROW(OpTable({OpSpec{"op", OpCategory::kMixed, true},
                        OpSpec{"op", OpCategory::kMixed, true}}),
               std::invalid_argument);
}

TEST(OpTableTest, OpIdComparesAndHashes) {
  const OpId a{1};
  const OpId b{1};
  const OpId c{2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(std::hash<OpId>{}(a), std::hash<OpId>{}(b));
}

TEST(OpTableTest, DataTypeOpIdRoundTrips) {
  QueueType queue;
  for (const auto& spec : queue.ops()) {
    const OpId id = queue.op_id(spec.name);
    ASSERT_TRUE(id.valid());
    EXPECT_EQ(queue.spec(id).name, spec.name);
    EXPECT_EQ(queue.category(id), spec.category);
    EXPECT_EQ(queue.find_op(spec.name), id);
  }
}

TEST(OpTableTest, DataTypeOpIdThrowsWithNamedOp) {
  QueueType queue;
  try {
    (void)queue.op_id("frobnicate");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must still name the unknown operation (satellite: spec()
    // keeps its contract after the linear scan became a table lookup).
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
  EXPECT_FALSE(queue.find_op("frobnicate").valid());
  EXPECT_THROW((void)queue.spec("frobnicate"), std::invalid_argument);
}

TEST(OpTableTest, BoundStateDispatchesOnId) {
  RegisterType reg;
  auto state = reg.initial_state();
  const OpId write = reg.op_id("write");
  const OpId read = reg.op_id("read");
  EXPECT_EQ(state->apply(write, Value{42}), Value::nil());
  EXPECT_EQ(state->apply(read, Value::nil()), Value{42});
  // Id and string dispatch are the same operation.
  EXPECT_EQ(state->apply("read", Value::nil()), Value{42});
}

TEST(OpTableTest, CloneKeepsTheBinding) {
  RegisterType reg;
  auto state = reg.initial_state();
  state->apply(reg.op_id("write"), Value{7});
  auto copy = state->clone();
  EXPECT_EQ(copy->apply(reg.op_id("read"), Value::nil()), Value{7});
}

TEST(OpTableTest, TableIsStablePerType) {
  QueueType queue;
  EXPECT_EQ(&queue.table(), &queue.table());  // lazy cache resolves once
  EXPECT_EQ(queue.table().size(), queue.ops().size());
}

}  // namespace
}  // namespace lintime::adt
