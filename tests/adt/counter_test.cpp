// Sequential semantics of the counter.

#include "adt/counter_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(CounterTest, StartsAtZero) {
  CounterType c;
  auto s = c.make_initial_state();
  EXPECT_EQ(s->apply("read", Value::nil()), Value{0});
}

TEST(CounterTest, IncAdds) {
  CounterType c;
  auto s = c.make_initial_state();
  s->apply("inc", 5);
  s->apply("inc", 3);
  EXPECT_EQ(s->apply("read", Value::nil()), Value{8});
}

TEST(CounterTest, FetchIncReturnsOld) {
  CounterType c;
  auto s = c.make_initial_state();
  EXPECT_EQ(s->apply("fetch_inc", Value::nil()), Value{0});
  EXPECT_EQ(s->apply("fetch_inc", Value::nil()), Value{1});
  EXPECT_EQ(s->apply("read", Value::nil()), Value{2});
}

TEST(CounterTest, IncsCommute) {
  CounterType c;
  auto a = c.make_initial_state();
  auto b = c.make_initial_state();
  a->apply("inc", 1);
  a->apply("inc", 2);
  b->apply("inc", 2);
  b->apply("inc", 1);
  EXPECT_EQ(a->canonical(), b->canonical());
}

TEST(CounterTest, NegativeInc) {
  CounterType c;
  auto s = c.make_initial_state();
  s->apply("inc", -4);
  EXPECT_EQ(s->apply("read", Value::nil()), Value{-4});
}

}  // namespace
}  // namespace lintime::adt
