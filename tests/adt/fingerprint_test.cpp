// Property test for the state-fingerprint layer: over every shipped data
// type (and a composite product), randomized legal op sequences must produce
// states whose 128-bit fingerprint() agrees exactly with canonical()
// equality -- fingerprints are a drop-in identity for memoization, with
// canonical() retained for display and collision verification.

#include "adt/fingerprint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adt/counter_type.hpp"
#include "adt/data_type.hpp"
#include "adt/deque_type.hpp"
#include "adt/max_register_type.hpp"
#include "adt/pool_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "core/composite.hpp"

namespace lintime::adt {
namespace {

/// Deterministic LCG so the sampled sequences are identical on every run
/// and platform (detlint forbids ambient randomness in tests too).
class Lcg {
 public:
  explicit Lcg(unsigned seed) : s_(seed) {}
  unsigned next() {
    s_ = s_ * 1664525u + 1013904223u;
    return s_ >> 8;
  }

 private:
  unsigned s_;
};

/// Builds one state by applying `len` pseudo-random legal operations.
std::unique_ptr<ObjectState> sample_state(const DataType& type, int len, unsigned seed) {
  auto state = type.initial_state();
  Lcg rng(seed);
  for (int i = 0; i < len; ++i) {
    const auto& spec = type.ops()[rng.next() % type.ops().size()];
    const auto args = type.sample_args(spec.name);
    state->apply(spec.name, args[rng.next() % args.size()]);
  }
  return state;
}

void check_fingerprint_matches_canonical(const DataType& type) {
  struct Snapshot {
    std::string canonical;
    Fingerprint fp;
  };
  std::vector<Snapshot> snaps;
  for (unsigned seed = 1; seed <= 12; ++seed) {
    for (const int len : {0, 1, 3, 6, 10}) {
      auto state = sample_state(type, len, seed);
      snaps.push_back(Snapshot{state->canonical(), state->fingerprint()});
    }
  }
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    for (std::size_t j = i + 1; j < snaps.size(); ++j) {
      const bool canon_eq = snaps[i].canonical == snaps[j].canonical;
      const bool fp_eq = snaps[i].fp == snaps[j].fp;
      EXPECT_EQ(canon_eq, fp_eq)
          << type.name() << ": states '" << snaps[i].canonical << "' vs '"
          << snaps[j].canonical << "' disagree between canonical and fingerprint equality";
    }
  }
}

TEST(FingerprintTest, Register) { check_fingerprint_matches_canonical(RegisterType{}); }
TEST(FingerprintTest, RmwRegister) { check_fingerprint_matches_canonical(RmwRegisterType{}); }
TEST(FingerprintTest, Queue) { check_fingerprint_matches_canonical(QueueType{}); }
TEST(FingerprintTest, Stack) { check_fingerprint_matches_canonical(StackType{}); }
TEST(FingerprintTest, Tree) { check_fingerprint_matches_canonical(TreeType{}); }
TEST(FingerprintTest, Set) { check_fingerprint_matches_canonical(SetType{}); }
TEST(FingerprintTest, Counter) { check_fingerprint_matches_canonical(CounterType{}); }
TEST(FingerprintTest, MaxRegister) { check_fingerprint_matches_canonical(MaxRegisterType{}); }
TEST(FingerprintTest, Pool) { check_fingerprint_matches_canonical(PoolType{}); }
TEST(FingerprintTest, Deque) { check_fingerprint_matches_canonical(DequeType{}); }

TEST(FingerprintTest, Composite) {
  QueueType queue;
  CounterType counter;
  RegisterType reg;
  core::ProductType product({&queue, &counter, &reg});
  check_fingerprint_matches_canonical(product);
}

TEST(FingerprintTest, DeterministicAcrossRebuilds) {
  // The same sequence applied to a freshly built state yields the same
  // fingerprint -- no address, seed, or iteration-order dependence.
  QueueType queue;
  const auto a = sample_state(queue, 10, 99);
  const auto b = sample_state(queue, 10, 99);
  EXPECT_EQ(a->canonical(), b->canonical());
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
}

TEST(FingerprintTest, HasherMixesOrderAndFraming) {
  // mix_bytes is length-framed: ("ab", "c") and ("a", "bc") must differ.
  FpHasher h1;
  h1.mix_bytes("ab");
  h1.mix_bytes("c");
  FpHasher h2;
  h2.mix_bytes("a");
  h2.mix_bytes("bc");
  EXPECT_NE(h1.finish(), h2.finish());

  // Word order matters.
  FpHasher h3;
  h3.mix(1);
  h3.mix(2);
  FpHasher h4;
  h4.mix(2);
  h4.mix(1);
  EXPECT_NE(h3.finish(), h4.finish());
}

}  // namespace
}  // namespace lintime::adt
