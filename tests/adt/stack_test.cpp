// Sequential semantics of the LIFO stack (Table 3's object).

#include "adt/stack_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(StackTest, PopEmptyReturnsNil) {
  StackType st;
  auto s = st.make_initial_state();
  EXPECT_EQ(s->apply("pop", Value::nil()), Value::nil());
}

TEST(StackTest, PeekEmptyReturnsNil) {
  StackType st;
  auto s = st.make_initial_state();
  EXPECT_EQ(s->apply("peek", Value::nil()), Value::nil());
}

TEST(StackTest, LifoOrder) {
  StackType st;
  auto s = st.make_initial_state();
  s->apply("push", 1);
  s->apply("push", 2);
  s->apply("push", 3);
  EXPECT_EQ(s->apply("pop", Value::nil()), Value{3});
  EXPECT_EQ(s->apply("pop", Value::nil()), Value{2});
  EXPECT_EQ(s->apply("pop", Value::nil()), Value{1});
  EXPECT_EQ(s->apply("pop", Value::nil()), Value::nil());
}

TEST(StackTest, PeekSeesTop) {
  StackType st;
  auto s = st.make_initial_state();
  s->apply("push", 1);
  s->apply("push", 2);
  EXPECT_EQ(s->apply("peek", Value::nil()), Value{2});
  s->apply("pop", Value::nil());
  EXPECT_EQ(s->apply("peek", Value::nil()), Value{1});
}

TEST(StackTest, PeekDependsOnlyOnLastPush) {
  // The property the paper notes before Theorem 5: in push/peek-only runs,
  // peek is determined by the last push alone.
  StackType st;
  auto a = st.make_initial_state();
  auto b = st.make_initial_state();
  a->apply("push", 1);
  a->apply("push", 9);
  b->apply("push", 2);
  b->apply("push", 9);
  EXPECT_EQ(a->apply("peek", Value::nil()), b->apply("peek", Value::nil()));
}

TEST(StackTest, DeclaredCategories) {
  StackType st;
  EXPECT_EQ(st.category("push"), OpCategory::kPureMutator);
  EXPECT_EQ(st.category("pop"), OpCategory::kMixed);
  EXPECT_EQ(st.category("peek"), OpCategory::kPureAccessor);
}

}  // namespace
}  // namespace lintime::adt
