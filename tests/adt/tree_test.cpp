// Sequential semantics of the simple rooted tree (Table 4's object),
// including the algebraic properties its two insert flavours were designed
// to provide.

#include "adt/tree_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(TreeTest, RootAlwaysPresentAtDepthZero) {
  TreeType t;
  auto s = t.make_initial_state();
  EXPECT_EQ(s->apply("depth", 0), Value{0});
}

TEST(TreeTest, AbsentNodeHasDepthMinusOne) {
  TreeType t;
  auto s = t.make_initial_state();
  EXPECT_EQ(s->apply("depth", 5), Value{-1});
}

TEST(TreeTest, InsertAttachesChild) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  EXPECT_EQ(s->apply("depth", 1), Value{1});
  EXPECT_EQ(s->apply("parent", 1), Value{0});
}

TEST(TreeTest, InsertChainGivesIncreasingDepths) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  s->apply("insert", TreeType::edge(1, 2));
  s->apply("insert", TreeType::edge(2, 3));
  EXPECT_EQ(s->apply("depth", 3), Value{3});
}

TEST(TreeTest, InsertIsFirstWins) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  s->apply("insert", TreeType::edge(0, 2));
  s->apply("insert", TreeType::edge(1, 2));  // 2 already present: no-op
  EXPECT_EQ(s->apply("parent", 2), Value{0});
}

TEST(TreeTest, InsertUnderAbsentParentIsNoop) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(7, 1));
  EXPECT_EQ(s->apply("depth", 1), Value{-1});
}

TEST(TreeTest, MoveIsLastWins) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  s->apply("move", TreeType::edge(0, 4));
  s->apply("move", TreeType::edge(1, 4));
  EXPECT_EQ(s->apply("parent", 4), Value{1});
  EXPECT_EQ(s->apply("depth", 4), Value{2});
}

TEST(TreeTest, MoveRejectsCycle) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  s->apply("insert", TreeType::edge(1, 2));
  s->apply("move", TreeType::edge(2, 1));  // would make 1 a descendant of itself
  EXPECT_EQ(s->apply("parent", 1), Value{0});
}

TEST(TreeTest, MoveRejectsSelfParent) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  s->apply("move", TreeType::edge(1, 1));
  EXPECT_EQ(s->apply("parent", 1), Value{0});
}

TEST(TreeTest, MoveReparentsWholeSubtree) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  s->apply("insert", TreeType::edge(1, 2));
  s->apply("insert", TreeType::edge(0, 3));
  s->apply("move", TreeType::edge(3, 1));
  EXPECT_EQ(s->apply("depth", 2), Value{3});  // 0 -> 3 -> 1 -> 2
}

TEST(TreeTest, RemoveLeafSucceeds) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  s->apply("remove", 1);
  EXPECT_EQ(s->apply("depth", 1), Value{-1});
}

TEST(TreeTest, RemoveInnerNodeIsNoop) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  s->apply("insert", TreeType::edge(1, 2));
  s->apply("remove", 1);  // has child 2
  EXPECT_EQ(s->apply("depth", 1), Value{1});
}

TEST(TreeTest, RemoveRootIsNoop) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("remove", 0);
  EXPECT_EQ(s->apply("depth", 0), Value{0});
}

TEST(TreeTest, RemoveOrderSensitivity) {
  // The k=2 last-sensitivity witness for remove: removing the parent
  // succeeds only after its only child is gone.
  TreeType t;
  auto a = t.make_initial_state();
  a->apply("insert", TreeType::edge(0, 1));
  a->apply("insert", TreeType::edge(1, 2));
  auto b = a->clone();

  a->apply("remove", 2);
  a->apply("remove", 1);  // both gone
  b->apply("remove", 1);  // no-op: has child
  b->apply("remove", 2);
  EXPECT_EQ(a->apply("depth", 1), Value{-1});
  EXPECT_EQ(b->apply("depth", 1), Value{1});
}

TEST(TreeTest, ParentOfRootIsMinusOne) {
  TreeType t;
  auto s = t.make_initial_state();
  EXPECT_EQ(s->apply("parent", 0), Value{-1});
}

TEST(TreeTest, AccessorsDoNotMutate) {
  TreeType t;
  auto s = t.make_initial_state();
  s->apply("insert", TreeType::edge(0, 1));
  const std::string before = s->canonical();
  s->apply("depth", 1);
  s->apply("parent", 1);
  EXPECT_EQ(s->canonical(), before);
}

TEST(TreeTest, MalformedInsertArgIsNoop) {
  TreeType t;
  auto s = t.make_initial_state();
  const std::string before = s->canonical();
  s->apply("insert", Value{3});                     // not a pair
  s->apply("insert", Value{ValueVec{Value{0}}});    // too short
  EXPECT_EQ(s->canonical(), before);
}

}  // namespace
}  // namespace lintime::adt
