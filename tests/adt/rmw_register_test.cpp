// Sequential semantics of the RMW register (Table 1's object).

#include "adt/rmw_register_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(RmwRegisterTest, FetchAddReturnsOldAndAdds) {
  RmwRegisterType reg(10);
  auto s = reg.make_initial_state();
  EXPECT_EQ(s->apply("fetch_add", 5), Value{10});
  EXPECT_EQ(s->apply("read", Value::nil()), Value{15});
}

TEST(RmwRegisterTest, FetchAddChains) {
  RmwRegisterType reg;
  auto s = reg.make_initial_state();
  EXPECT_EQ(s->apply("fetch_add", 1), Value{0});
  EXPECT_EQ(s->apply("fetch_add", 1), Value{1});
  EXPECT_EQ(s->apply("fetch_add", 1), Value{2});
}

TEST(RmwRegisterTest, SwapReturnsOldAndOverwrites) {
  RmwRegisterType reg(3);
  auto s = reg.make_initial_state();
  EXPECT_EQ(s->apply("swap", 7), Value{3});
  EXPECT_EQ(s->apply("swap", 9), Value{7});
  EXPECT_EQ(s->apply("read", Value::nil()), Value{9});
}

TEST(RmwRegisterTest, WriteStillWorks) {
  RmwRegisterType reg;
  auto s = reg.make_initial_state();
  s->apply("write", 42);
  EXPECT_EQ(s->apply("read", Value::nil()), Value{42});
}

TEST(RmwRegisterTest, NegativeAdd) {
  RmwRegisterType reg(5);
  auto s = reg.make_initial_state();
  EXPECT_EQ(s->apply("fetch_add", -3), Value{5});
  EXPECT_EQ(s->apply("read", Value::nil()), Value{2});
}

TEST(RmwRegisterTest, DeclaredCategories) {
  RmwRegisterType reg;
  EXPECT_EQ(reg.category("read"), OpCategory::kPureAccessor);
  EXPECT_EQ(reg.category("write"), OpCategory::kPureMutator);
  EXPECT_EQ(reg.category("fetch_add"), OpCategory::kMixed);
  EXPECT_EQ(reg.category("swap"), OpCategory::kMixed);
}

}  // namespace
}  // namespace lintime::adt
