// Sequential semantics and taxonomy of the deque -- the type where the same
// accessor satisfies Theorem 5's hypotheses with one mutator (push_back +
// front, queue-like) and not the other (push_front + front, stack-like).

#include "adt/deque_type.hpp"

#include <gtest/gtest.h>

#include "adt/classify.hpp"

namespace lintime::adt {
namespace {

TEST(DequeTest, BothEndsEmptyReturnNil) {
  DequeType dq;
  auto s = dq.make_initial_state();
  EXPECT_EQ(s->apply("pop_front", Value::nil()), Value::nil());
  EXPECT_EQ(s->apply("pop_back", Value::nil()), Value::nil());
  EXPECT_EQ(s->apply("front", Value::nil()), Value::nil());
  EXPECT_EQ(s->apply("back", Value::nil()), Value::nil());
}

TEST(DequeTest, QueueBehaviour) {
  DequeType dq;
  auto s = dq.make_initial_state();
  s->apply("push_back", 1);
  s->apply("push_back", 2);
  EXPECT_EQ(s->apply("pop_front", Value::nil()), Value{1});
  EXPECT_EQ(s->apply("pop_front", Value::nil()), Value{2});
}

TEST(DequeTest, StackBehaviour) {
  DequeType dq;
  auto s = dq.make_initial_state();
  s->apply("push_back", 1);
  s->apply("push_back", 2);
  EXPECT_EQ(s->apply("pop_back", Value::nil()), Value{2});
  EXPECT_EQ(s->apply("pop_back", Value::nil()), Value{1});
}

TEST(DequeTest, MixedEnds) {
  DequeType dq;
  auto s = dq.make_initial_state();
  s->apply("push_front", 2);
  s->apply("push_front", 1);
  s->apply("push_back", 3);
  EXPECT_EQ(s->apply("front", Value::nil()), Value{1});
  EXPECT_EQ(s->apply("back", Value::nil()), Value{3});
  EXPECT_EQ(s->apply("pop_back", Value::nil()), Value{3});
  EXPECT_EQ(s->apply("pop_front", Value::nil()), Value{1});
  EXPECT_EQ(s->apply("front", Value::nil()), Value{2});
}

TEST(ClassifyDeque, PushesAreLastSensitivePureMutators) {
  DequeType dq;
  for (const char* op : {"push_front", "push_back"}) {
    const auto c = classify_op(dq, op);
    EXPECT_TRUE(c.pure_mutator()) << op << ": " << c.notes;
    EXPECT_TRUE(c.transposable) << op << ": " << c.notes;
    EXPECT_EQ(c.last_sensitive_k, 4) << op << ": " << c.notes;
  }
}

TEST(ClassifyDeque, PopsArePairFreeMixed) {
  DequeType dq;
  for (const char* op : {"pop_front", "pop_back"}) {
    const auto c = classify_op(dq, op);
    EXPECT_TRUE(c.mixed()) << op << ": " << c.notes;
    EXPECT_TRUE(c.pair_free) << op << ": " << c.notes;
  }
}

TEST(ClassifyDeque, EndsArePureAccessors) {
  DequeType dq;
  EXPECT_TRUE(classify_op(dq, "front").pure_accessor());
  EXPECT_TRUE(classify_op(dq, "back").pure_accessor());
}

TEST(ClassifyDeque, Theorem5AppliesPerEndExactlyLikeQueueVsStack) {
  // push_back + front: the paper's queue example.  push_front + front: the
  // paper's stack counterexample.  Same object, same accessor.
  DequeType dq;
  EXPECT_TRUE(find_theorem5_witness(dq, "push_back", "front").has_value());
  EXPECT_FALSE(find_theorem5_witness(dq, "push_front", "front").has_value());
  // And symmetrically for back.
  EXPECT_TRUE(find_theorem5_witness(dq, "push_front", "back").has_value());
  EXPECT_FALSE(find_theorem5_witness(dq, "push_back", "back").has_value());
}

}  // namespace
}  // namespace lintime::adt
