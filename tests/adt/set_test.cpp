// Sequential semantics of the set (commutative-mutator contrast type).

#include "adt/set_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(SetTest, ContainsInitiallyFalse) {
  SetType set;
  auto s = set.make_initial_state();
  EXPECT_EQ(s->apply("contains", 1), Value{0});
}

TEST(SetTest, AddThenContains) {
  SetType set;
  auto s = set.make_initial_state();
  s->apply("add", 1);
  EXPECT_EQ(s->apply("contains", 1), Value{1});
  EXPECT_EQ(s->apply("contains", 2), Value{0});
}

TEST(SetTest, AddIsIdempotent) {
  SetType set;
  auto s = set.make_initial_state();
  s->apply("add", 1);
  s->apply("add", 1);
  EXPECT_EQ(s->apply("size", Value::nil()), Value{1});
}

TEST(SetTest, EraseRemoves) {
  SetType set;
  auto s = set.make_initial_state();
  s->apply("add", 1);
  s->apply("erase", 1);
  EXPECT_EQ(s->apply("contains", 1), Value{0});
}

TEST(SetTest, EraseAbsentIsNoop) {
  SetType set;
  auto s = set.make_initial_state();
  const std::string before = s->canonical();
  s->apply("erase", 5);
  EXPECT_EQ(s->canonical(), before);
}

TEST(SetTest, SizeCounts) {
  SetType set;
  auto s = set.make_initial_state();
  s->apply("add", 1);
  s->apply("add", 2);
  s->apply("add", 3);
  s->apply("erase", 2);
  EXPECT_EQ(s->apply("size", Value::nil()), Value{2});
}

TEST(SetTest, AddIfAbsentReportsInsertion) {
  SetType set;
  auto s = set.make_initial_state();
  EXPECT_EQ(s->apply("add_if_absent", 4), Value{1});
  EXPECT_EQ(s->apply("add_if_absent", 4), Value{0});
}

TEST(SetTest, AddsCommute) {
  SetType set;
  auto a = set.make_initial_state();
  auto b = set.make_initial_state();
  a->apply("add", 1);
  a->apply("add", 2);
  b->apply("add", 2);
  b->apply("add", 1);
  EXPECT_EQ(a->canonical(), b->canonical());
}

}  // namespace
}  // namespace lintime::adt
