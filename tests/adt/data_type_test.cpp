// Tests for the sequence-level helpers (legality, completion, equivalence)
// and for the paper's three data-type constraints (Prefix Closure,
// Completeness, Determinism), checked as properties over all shipped types.

#include "adt/data_type.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "adt/counter_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"

namespace lintime::adt {
namespace {

Instance inst(const std::string& op, Value arg, Value ret) {
  return Instance{op, std::move(arg), std::move(ret)};
}

TEST(DataTypeTest, RunSequenceAcceptsLegal) {
  QueueType queue;
  const Sequence seq = {
      inst("enqueue", 1, Value::nil()),
      inst("enqueue", 2, Value::nil()),
      inst("dequeue", Value::nil(), 1),
      inst("peek", Value::nil(), 2),
  };
  EXPECT_TRUE(is_legal(queue, seq));
}

TEST(DataTypeTest, RunSequenceRejectsIllegal) {
  QueueType queue;
  const Sequence seq = {
      inst("enqueue", 1, Value::nil()),
      inst("dequeue", Value::nil(), 2),  // wrong return
  };
  EXPECT_FALSE(is_legal(queue, seq));
}

TEST(DataTypeTest, EmptySequenceIsLegal) {
  QueueType queue;
  EXPECT_TRUE(is_legal(queue, {}));
}

TEST(DataTypeTest, LegalReturnComputesUniqueResponse) {
  QueueType queue;
  const Sequence prefix = {inst("enqueue", 7, Value::nil())};
  EXPECT_EQ(legal_return(queue, prefix, "peek", Value::nil()), Value{7});
}

TEST(DataTypeTest, LegalReturnThrowsOnIllegalPrefix) {
  QueueType queue;
  const Sequence bad = {inst("dequeue", Value::nil(), 9)};
  EXPECT_THROW((void)legal_return(queue, bad, "peek", Value::nil()), std::invalid_argument);
}

TEST(DataTypeTest, CompleteBundlesInvocationWithResponse) {
  RegisterType reg;
  const Instance w = complete(reg, {}, "write", 5);
  EXPECT_EQ(w.ret, Value::nil());
  const Instance r = complete(reg, {w}, "read", Value::nil());
  EXPECT_EQ(r.ret, Value{5});
}

TEST(DataTypeTest, EquivalentDetectsEqualStates) {
  RegisterType reg;
  const Sequence a = {inst("write", 3, Value::nil())};
  const Sequence b = {inst("write", 1, Value::nil()), inst("write", 3, Value::nil())};
  EXPECT_TRUE(equivalent(reg, a, b));
}

TEST(DataTypeTest, EquivalentDetectsDifferentStates) {
  RegisterType reg;
  const Sequence a = {inst("write", 3, Value::nil())};
  const Sequence b = {inst("write", 4, Value::nil())};
  EXPECT_FALSE(equivalent(reg, a, b));
}

TEST(DataTypeTest, SpecLookupThrowsOnUnknownOp) {
  QueueType queue;
  EXPECT_THROW((void)queue.spec("nonsense"), std::invalid_argument);
}

TEST(DataTypeTest, OpsInCategoryFiltersCorrectly) {
  QueueType queue;
  EXPECT_EQ(queue.ops_in_category(OpCategory::kPureMutator),
            std::vector<std::string>{"enqueue"});
  EXPECT_EQ(queue.ops_in_category(OpCategory::kMixed), std::vector<std::string>{"dequeue"});
  EXPECT_EQ(queue.ops_in_category(OpCategory::kPureAccessor), std::vector<std::string>{"peek"});
}

// ---------------------------------------------------------------------------
// The paper's L(T) constraints as properties over every shipped type.
// ---------------------------------------------------------------------------

class AllTypesTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<DataType> make_type() const {
    switch (GetParam()) {
      case 0: return std::make_unique<RegisterType>();
      case 1: return std::make_unique<RmwRegisterType>();
      case 2: return std::make_unique<QueueType>();
      case 3: return std::make_unique<StackType>();
      case 4: return std::make_unique<TreeType>();
      case 5: return std::make_unique<SetType>();
      default: return std::make_unique<CounterType>();
    }
  }

  /// A short pseudo-random legal sequence.
  Sequence sample_sequence(const DataType& type, int len, unsigned seed) const {
    Sequence seq;
    auto state = type.make_initial_state();
    unsigned rng = seed;
    auto next = [&rng] {
      rng = rng * 1664525u + 1013904223u;
      return rng >> 8;
    };
    for (int i = 0; i < len; ++i) {
      const auto& spec = type.ops()[next() % type.ops().size()];
      const auto args = type.sample_args(spec.name);
      const Value arg = args[next() % args.size()];
      const Value ret = state->apply(spec.name, arg);
      seq.push_back(Instance{spec.name, arg, ret});
    }
    return seq;
  }
};

TEST_P(AllTypesTest, GeneratedSequencesAreLegal) {
  auto type = make_type();
  for (unsigned seed = 1; seed <= 20; ++seed) {
    EXPECT_TRUE(is_legal(*type, sample_sequence(*type, 8, seed)));
  }
}

TEST_P(AllTypesTest, PrefixClosure) {
  auto type = make_type();
  const Sequence seq = sample_sequence(*type, 10, 42);
  for (std::size_t len = 0; len <= seq.size(); ++len) {
    EXPECT_TRUE(is_legal(*type, Sequence(seq.begin(), seq.begin() + static_cast<long>(len))));
  }
}

TEST_P(AllTypesTest, CompletenessEveryInvocationHasAResponse) {
  auto type = make_type();
  const Sequence prefix = sample_sequence(*type, 6, 7);
  for (const auto& spec : type->ops()) {
    for (const auto& arg : type->sample_args(spec.name)) {
      Sequence extended = prefix;
      extended.push_back(complete(*type, prefix, spec.name, arg));
      EXPECT_TRUE(is_legal(*type, extended));
    }
  }
}

TEST_P(AllTypesTest, DeterminismNoSecondLegalResponse) {
  auto type = make_type();
  const Sequence prefix = sample_sequence(*type, 6, 13);
  for (const auto& spec : type->ops()) {
    for (const auto& arg : type->sample_args(spec.name)) {
      const Value ret = legal_return(*type, prefix, spec.name, arg);
      // Any instance with a different return value must be illegal.
      Sequence extended = prefix;
      extended.push_back(Instance{spec.name, arg, Value{ret == Value{-999} ? -998 : -999}});
      EXPECT_FALSE(is_legal(*type, extended));
    }
  }
}

TEST_P(AllTypesTest, CloneIsDeepAndIndependent) {
  auto type = make_type();
  auto state = type->make_initial_state();
  const auto& mutators = type->ops_in_category(OpCategory::kPureMutator);
  if (mutators.empty()) GTEST_SKIP();
  auto snapshot = state->clone();
  const std::string before = snapshot->canonical();
  state->apply(mutators[0], type->sample_args(mutators[0])[0]);
  EXPECT_EQ(snapshot->canonical(), before);
}

TEST_P(AllTypesTest, TypeHasAccessorAndMutator) {
  // Section 2.1: we only consider data types with at least one accessor and
  // at least one mutator.
  auto type = make_type();
  bool has_accessor = false, has_mutator = false;
  for (const auto& spec : type->ops()) {
    has_accessor |= spec.is_accessor();
    has_mutator |= spec.is_mutator();
  }
  EXPECT_TRUE(has_accessor);
  EXPECT_TRUE(has_mutator);
}

std::string all_types_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"Register", "RmwRegister", "Queue", "Stack",
                                "Tree",     "Set",         "Counter"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllTypes, AllTypesTest, ::testing::Range(0, 7), all_types_name);

}  // namespace
}  // namespace lintime::adt
