// Unit tests for the Value domain.

#include "adt/value.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lintime::adt {
namespace {

TEST(ValueTest, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_FALSE(v.is_int());
  EXPECT_FALSE(v.is_str());
  EXPECT_FALSE(v.is_vec());
}

TEST(ValueTest, NilFactoryEqualsDefault) { EXPECT_EQ(Value::nil(), Value{}); }

TEST(ValueTest, IntRoundTrip) {
  Value v{42};
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
}

TEST(ValueTest, NegativeInt) {
  Value v{-7};
  EXPECT_EQ(v.as_int(), -7);
}

TEST(ValueTest, StringRoundTrip) {
  Value v{"hello"};
  EXPECT_TRUE(v.is_str());
  EXPECT_EQ(v.as_str(), "hello");
}

TEST(ValueTest, VectorRoundTrip) {
  Value v{ValueVec{Value{1}, Value{"x"}}};
  ASSERT_TRUE(v.is_vec());
  ASSERT_EQ(v.as_vec().size(), 2u);
  EXPECT_EQ(v.as_vec()[0].as_int(), 1);
  EXPECT_EQ(v.as_vec()[1].as_str(), "x");
}

TEST(ValueTest, NestedVector) {
  Value inner{ValueVec{Value{1}, Value{2}}};
  Value outer{ValueVec{inner, Value{3}}};
  ASSERT_TRUE(outer.as_vec()[0].is_vec());
  EXPECT_EQ(outer.as_vec()[0].as_vec()[1].as_int(), 2);
}

TEST(ValueTest, EqualityByContent) {
  EXPECT_EQ(Value{5}, Value{5});
  EXPECT_NE(Value{5}, Value{6});
  EXPECT_NE(Value{5}, Value{"5"});
  EXPECT_NE(Value{5}, Value::nil());
  EXPECT_EQ(Value{ValueVec{Value{1}}}, Value{ValueVec{Value{1}}});
  EXPECT_NE(Value{ValueVec{Value{1}}}, Value{ValueVec{Value{2}}});
}

TEST(ValueTest, OrderingAcrossKinds) {
  // nil < int < string < vector
  EXPECT_LT(Value::nil(), Value{0});
  EXPECT_LT(Value{999}, Value{"a"});
  EXPECT_LT(Value{"zzz"}, Value{ValueVec{}});
}

TEST(ValueTest, OrderingWithinKind) {
  EXPECT_LT(Value{1}, Value{2});
  EXPECT_LT(Value{"a"}, Value{"b"});
  EXPECT_LT(Value{ValueVec{Value{1}}}, (Value{ValueVec{Value{1}, Value{0}}}));
  EXPECT_FALSE(Value{2} < Value{1});
  EXPECT_FALSE(Value::nil() < Value::nil());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::nil().to_string(), "nil");
  EXPECT_EQ(Value{7}.to_string(), "7");
  EXPECT_EQ(Value{"ab"}.to_string(), "\"ab\"");
  EXPECT_EQ((Value{ValueVec{Value{1}, Value{2}}}).to_string(), "[1, 2]");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value{5}.hash(), Value{5}.hash());
  EXPECT_EQ(Value{"x"}.hash(), Value{"x"}.hash());
  EXPECT_EQ((Value{ValueVec{Value{1}, Value{2}}}).hash(),
            (Value{ValueVec{Value{1}, Value{2}}}).hash());
}

TEST(ValueTest, HashDistinguishesTypicalValues) {
  std::unordered_set<Value> set;
  for (int i = 0; i < 100; ++i) set.insert(Value{i});
  set.insert(Value::nil());
  set.insert(Value{"a"});
  EXPECT_EQ(set.size(), 102u);
}

TEST(ValueTest, UsableAsUnorderedSetKey) {
  std::unordered_set<Value> set;
  set.insert(Value{ValueVec{Value{0}, Value{1}}});
  EXPECT_TRUE(set.contains(Value{ValueVec{Value{0}, Value{1}}}));
  EXPECT_FALSE(set.contains(Value{ValueVec{Value{1}, Value{0}}}));
}

}  // namespace
}  // namespace lintime::adt
