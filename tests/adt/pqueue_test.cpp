// Sequential semantics of the min-priority queue.

#include "adt/pqueue_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(PQueueTest, ExtractMinEmptyReturnsNil) {
  PriorityQueueType pq;
  auto s = pq.make_initial_state();
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value::nil());
}

TEST(PQueueTest, FindMinEmptyReturnsNil) {
  PriorityQueueType pq;
  auto s = pq.make_initial_state();
  EXPECT_EQ(s->apply("find_min", Value::nil()), Value::nil());
}

TEST(PQueueTest, ExtractsInValueOrder) {
  PriorityQueueType pq;
  auto s = pq.make_initial_state();
  s->apply("insert", 5);
  s->apply("insert", 1);
  s->apply("insert", 3);
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value{1});
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value{3});
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value{5});
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value::nil());
}

TEST(PQueueTest, FindMinDoesNotRemove) {
  PriorityQueueType pq;
  auto s = pq.make_initial_state();
  s->apply("insert", 2);
  s->apply("insert", 7);
  EXPECT_EQ(s->apply("find_min", Value::nil()), Value{2});
  EXPECT_EQ(s->apply("find_min", Value::nil()), Value{2});
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value{2});
  EXPECT_EQ(s->apply("find_min", Value::nil()), Value{7});
}

TEST(PQueueTest, DuplicatesAreMultiset) {
  PriorityQueueType pq;
  auto s = pq.make_initial_state();
  s->apply("insert", 4);
  s->apply("insert", 4);
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value{4});
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value{4});
  EXPECT_EQ(s->apply("extract_min", Value::nil()), Value::nil());
}

TEST(PQueueTest, InsertReturnsNilAndCanonicalIsSorted) {
  PriorityQueueType pq;
  auto s = pq.make_initial_state();
  EXPECT_EQ(s->apply("insert", 9), Value::nil());
  EXPECT_EQ(s->apply("insert", 2), Value::nil());
  EXPECT_EQ(s->canonical(), "pqueue:2,9,");
}

TEST(PQueueTest, FingerprintTracksState) {
  PriorityQueueType pq;
  auto a = pq.make_initial_state();
  auto b = pq.make_initial_state();
  a->apply("insert", 1);
  EXPECT_NE(a->fingerprint(), b->fingerprint());
  b->apply("insert", 1);
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
}

TEST(PQueueTest, DeclaresPriorityQueueMonitorFamily) {
  PriorityQueueType pq;
  EXPECT_EQ(pq.monitor_family(), MonitorFamily::kPriorityQueue);
}

}  // namespace
}  // namespace lintime::adt
