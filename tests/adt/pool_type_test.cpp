// Sequential semantics of the pool (bag) and its non-deterministic spec.

#include "adt/pool_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(PoolTest, TakeEmptyReturnsNil) {
  PoolType pool;
  auto s = pool.make_initial_state();
  EXPECT_EQ(s->apply("take", Value::nil()), Value::nil());
}

TEST(PoolTest, DeterministicResolutionTakesSmallest) {
  PoolType pool;
  auto s = pool.make_initial_state();
  s->apply("put", 3);
  s->apply("put", 1);
  s->apply("put", 2);
  EXPECT_EQ(s->apply("take", Value::nil()), Value{1});
  EXPECT_EQ(s->apply("take", Value::nil()), Value{2});
  EXPECT_EQ(s->apply("take", Value::nil()), Value{3});
}

TEST(PoolTest, MultisetSemantics) {
  PoolType pool;
  auto s = pool.make_initial_state();
  s->apply("put", 5);
  s->apply("put", 5);
  EXPECT_EQ(s->apply("size", Value::nil()), Value{2});
  EXPECT_EQ(s->apply("take", Value::nil()), Value{5});
  EXPECT_EQ(s->apply("size", Value::nil()), Value{1});
}

TEST(PoolTest, CanonicalEncodesMultiplicity) {
  PoolType pool;
  auto a = pool.make_initial_state();
  auto b = pool.make_initial_state();
  a->apply("put", 1);
  a->apply("put", 1);
  b->apply("put", 1);
  EXPECT_NE(a->canonical(), b->canonical());
}

TEST(PoolNondetSpecTest, TakeEnumeratesAllElements) {
  PoolNondetSpec spec;
  auto s = spec.make_initial_state();
  s->apply("put", 1);
  s->apply("put", 2);
  s->apply("put", 2);
  const auto outcomes = spec.outcomes(*s, "take", Value::nil());
  ASSERT_EQ(outcomes.size(), 2u);  // distinct elements 1 and 2
  EXPECT_EQ(outcomes[0].ret, Value{1});
  EXPECT_EQ(outcomes[1].ret, Value{2});
  // Removing one copy of 2 leaves the other.
  EXPECT_NE(outcomes[1].state->canonical().find("2x1"), std::string::npos);
}

TEST(PoolNondetSpecTest, TakeEmptySingleNilOutcome) {
  PoolNondetSpec spec;
  auto s = spec.make_initial_state();
  const auto outcomes = spec.outcomes(*s, "take", Value::nil());
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].ret, Value::nil());
}

TEST(PoolNondetSpecTest, PutAndSizeDeterministic) {
  PoolNondetSpec spec;
  auto s = spec.make_initial_state();
  EXPECT_EQ(spec.outcomes(*s, "put", Value{4}).size(), 1u);
  EXPECT_EQ(spec.outcomes(*s, "size", Value::nil()).size(), 1u);
}

TEST(PoolNondetSpecTest, OutcomesDoNotMutateInput) {
  PoolNondetSpec spec;
  auto s = spec.make_initial_state();
  s->apply("put", 7);
  const std::string before = s->canonical();
  (void)spec.outcomes(*s, "take", Value::nil());
  EXPECT_EQ(s->canonical(), before);
}

}  // namespace
}  // namespace lintime::adt
