// Sequential semantics of the FIFO queue (Table 2's object).

#include "adt/queue_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(QueueTest, DequeueEmptyReturnsNil) {
  QueueType q;
  auto s = q.make_initial_state();
  EXPECT_EQ(s->apply("dequeue", Value::nil()), Value::nil());
}

TEST(QueueTest, PeekEmptyReturnsNil) {
  QueueType q;
  auto s = q.make_initial_state();
  EXPECT_EQ(s->apply("peek", Value::nil()), Value::nil());
}

TEST(QueueTest, FifoOrder) {
  QueueType q;
  auto s = q.make_initial_state();
  s->apply("enqueue", 1);
  s->apply("enqueue", 2);
  s->apply("enqueue", 3);
  EXPECT_EQ(s->apply("dequeue", Value::nil()), Value{1});
  EXPECT_EQ(s->apply("dequeue", Value::nil()), Value{2});
  EXPECT_EQ(s->apply("dequeue", Value::nil()), Value{3});
  EXPECT_EQ(s->apply("dequeue", Value::nil()), Value::nil());
}

TEST(QueueTest, PeekDoesNotRemove) {
  QueueType q;
  auto s = q.make_initial_state();
  s->apply("enqueue", 5);
  EXPECT_EQ(s->apply("peek", Value::nil()), Value{5});
  EXPECT_EQ(s->apply("peek", Value::nil()), Value{5});
  EXPECT_EQ(s->apply("dequeue", Value::nil()), Value{5});
}

TEST(QueueTest, InterleavedEnqueueDequeue) {
  QueueType q;
  auto s = q.make_initial_state();
  s->apply("enqueue", 1);
  EXPECT_EQ(s->apply("dequeue", Value::nil()), Value{1});
  s->apply("enqueue", 2);
  s->apply("enqueue", 3);
  EXPECT_EQ(s->apply("dequeue", Value::nil()), Value{2});
  s->apply("enqueue", 4);
  EXPECT_EQ(s->apply("peek", Value::nil()), Value{3});
}

TEST(QueueTest, CanonicalReflectsContentAndOrder) {
  QueueType q;
  auto a = q.make_initial_state();
  auto b = q.make_initial_state();
  a->apply("enqueue", 1);
  a->apply("enqueue", 2);
  b->apply("enqueue", 2);
  b->apply("enqueue", 1);
  EXPECT_NE(a->canonical(), b->canonical());
}

TEST(QueueTest, DeclaredCategories) {
  QueueType q;
  EXPECT_EQ(q.category("enqueue"), OpCategory::kPureMutator);
  EXPECT_EQ(q.category("dequeue"), OpCategory::kMixed);
  EXPECT_EQ(q.category("peek"), OpCategory::kPureAccessor);
}

}  // namespace
}  // namespace lintime::adt
