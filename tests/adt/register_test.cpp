// Sequential semantics of the read/write register.

#include "adt/register_type.hpp"

#include <gtest/gtest.h>

namespace lintime::adt {
namespace {

TEST(RegisterTest, InitialValueIsReturnedByRead) {
  RegisterType reg(9);
  auto s = reg.make_initial_state();
  EXPECT_EQ(s->apply("read", Value::nil()), Value{9});
}

TEST(RegisterTest, DefaultInitialIsZero) {
  RegisterType reg;
  auto s = reg.make_initial_state();
  EXPECT_EQ(s->apply("read", Value::nil()), Value{0});
}

TEST(RegisterTest, WriteReturnsNil) {
  RegisterType reg;
  auto s = reg.make_initial_state();
  EXPECT_EQ(s->apply("write", 5), Value::nil());
}

TEST(RegisterTest, ReadReturnsLatestWrite) {
  RegisterType reg;
  auto s = reg.make_initial_state();
  s->apply("write", 5);
  s->apply("write", 8);
  EXPECT_EQ(s->apply("read", Value::nil()), Value{8});
}

TEST(RegisterTest, ReadDoesNotChangeState) {
  RegisterType reg;
  auto s = reg.make_initial_state();
  s->apply("write", 3);
  const std::string before = s->canonical();
  s->apply("read", Value::nil());
  EXPECT_EQ(s->canonical(), before);
}

TEST(RegisterTest, CanonicalEncodesValue) {
  RegisterType reg;
  auto a = reg.make_initial_state();
  auto b = reg.make_initial_state();
  a->apply("write", 1);
  b->apply("write", 2);
  EXPECT_NE(a->canonical(), b->canonical());
  b->apply("write", 1);
  EXPECT_EQ(a->canonical(), b->canonical());
}

TEST(RegisterTest, UnknownOpThrows) {
  RegisterType reg;
  auto s = reg.make_initial_state();
  EXPECT_THROW(s->apply("cas", 1), std::invalid_argument);
}

TEST(RegisterTest, DeclaredCategories) {
  RegisterType reg;
  EXPECT_EQ(reg.category("read"), OpCategory::kPureAccessor);
  EXPECT_EQ(reg.category("write"), OpCategory::kPureMutator);
}

}  // namespace
}  // namespace lintime::adt
