// Sequential semantics and classification of the max-register.

#include "adt/max_register_type.hpp"

#include <gtest/gtest.h>

#include "adt/classify.hpp"

namespace lintime::adt {
namespace {

TEST(MaxRegisterTest, KeepsMaximum) {
  MaxRegisterType reg;
  auto s = reg.make_initial_state();
  s->apply("write_max", 5);
  s->apply("write_max", 3);
  EXPECT_EQ(s->apply("read", Value::nil()), Value{5});
  s->apply("write_max", 9);
  EXPECT_EQ(s->apply("read", Value::nil()), Value{9});
}

TEST(MaxRegisterTest, InitialValueActsAsFloor) {
  MaxRegisterType reg(10);
  auto s = reg.make_initial_state();
  s->apply("write_max", 4);
  EXPECT_EQ(s->apply("read", Value::nil()), Value{10});
}

TEST(MaxRegisterTest, WritesCommute) {
  MaxRegisterType reg;
  auto a = reg.make_initial_state();
  auto b = reg.make_initial_state();
  a->apply("write_max", 2);
  a->apply("write_max", 7);
  b->apply("write_max", 7);
  b->apply("write_max", 2);
  EXPECT_EQ(a->canonical(), b->canonical());
}

TEST(MaxRegisterTest, WriteIsIdempotent) {
  MaxRegisterType reg;
  auto s = reg.make_initial_state();
  s->apply("write_max", 5);
  const std::string once = s->canonical();
  s->apply("write_max", 5);
  EXPECT_EQ(s->canonical(), once);
}

TEST(ClassifyMaxRegister, WriteMaxEscapesTheorem3) {
  // A pure mutator that is transposable but NOT last-sensitive and NOT an
  // overwriter: the (1-1/n)u hypothesis fails, unlike the plain register's
  // write -- syntax does not determine the lower bound, algebra does.
  MaxRegisterType reg;
  const auto c = classify_op(reg, "write_max");
  EXPECT_TRUE(c.pure_mutator()) << c.notes;
  EXPECT_TRUE(c.transposable) << c.notes;
  EXPECT_EQ(c.last_sensitive_k, 0) << c.notes;
  EXPECT_FALSE(c.overwriter) << c.notes;
  EXPECT_FALSE(c.pair_free) << c.notes;
}

TEST(ClassifyMaxRegister, ReadIsPureAccessor) {
  MaxRegisterType reg;
  EXPECT_TRUE(classify_op(reg, "read").pure_accessor());
}

}  // namespace
}  // namespace lintime::adt
