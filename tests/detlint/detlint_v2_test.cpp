// detlint v2 self-tests: symbol extraction, call graph, interprocedural
// reachability, ratchet baselines, SARIF shape, and the stale-suppression
// audit.  The flat-rule engines are covered by detlint_test.cpp; everything
// here exercises the layers on top of them.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline.hpp"
#include "callgraph.hpp"
#include "detail.hpp"
#include "detlint.hpp"
#include "sarif.hpp"
#include "symbols.hpp"

namespace {

using detlint::Analysis;
using detlint::Config;
using detlint::FileSymbols;
using detlint::Finding;
using detlint::FunctionDef;

std::filesystem::path fixture_dir() { return DETLINT_FIXTURE_DIR; }

FileSymbols symbols_of(const std::string& text) {
  const auto raw = detlint::detail::split_lines(text);
  const auto src = detlint::detail::strip_comments_and_strings(raw);
  return detlint::extract_symbols("test.cpp", raw, src);
}

const FunctionDef* find_function(const FileSymbols& symbols, const std::string& name) {
  for (const FunctionDef& f : symbols.functions) {
    if (f.qualified_name == name) return &f;
  }
  return nullptr;
}

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

/// Scratch tree on disk for analyze_tree tests that need custom sources.
class TempTree {
 public:
  TempTree() {
    dir_ = std::filesystem::temp_directory_path() /
           ("detlint_v2_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempTree() { std::filesystem::remove_all(dir_); }
  TempTree(const TempTree&) = delete;
  TempTree& operator=(const TempTree&) = delete;

  void write(const std::string& rel, const std::string& text) const {
    std::ofstream out(dir_ / rel, std::ios::binary);
    out << text;
  }
  [[nodiscard]] const std::filesystem::path& path() const { return dir_; }

 private:
  static int counter_;
  std::filesystem::path dir_;
};

int TempTree::counter_ = 0;

Config fixture_config(const std::string& tree) {
  return detlint::load_config(fixture_dir() / tree / "detlint.toml");
}

// --- symbol pass ------------------------------------------------------------

TEST(DetlintSymbols, QualifiesNamesWithNamespacesAndClasses) {
  const FileSymbols symbols = symbols_of(
      "namespace outer { namespace inner {\n"
      "struct Widget {\n"
      "  int area() const { return w_ * h_; }\n"
      "  int w_ = 0, h_ = 0;\n"
      "};\n"
      "int free_fn(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "}  // namespace inner\n"
      "}  // namespace outer\n");
  ASSERT_NE(find_function(symbols, "outer::inner::Widget::area"), nullptr);
  const FunctionDef* free_fn = find_function(symbols, "outer::inner::free_fn");
  ASSERT_NE(free_fn, nullptr);
  EXPECT_EQ(free_fn->header_line, 6);
  EXPECT_EQ(free_fn->body_begin, 6);
  EXPECT_EQ(free_fn->body_end, 8);
  EXPECT_TRUE(symbols.errors.empty());
}

TEST(DetlintSymbols, HandlesOutOfLineDefinitionsAndCtorInitBraces) {
  const FileSymbols symbols = symbols_of(
      "namespace sim {\n"
      "void World::run(int steps) {\n"
      "  (void)steps;\n"
      "}\n"
      "struct Pod {\n"
      "  Pod() : a_{1}, b_{2} {\n"
      "    a_ += b_;\n"
      "  }\n"
      "  int a_, b_;\n"
      "};\n"
      "}  // namespace sim\n");
  ASSERT_NE(find_function(symbols, "sim::World::run"), nullptr);
  const FunctionDef* ctor = find_function(symbols, "sim::Pod::Pod");
  ASSERT_NE(ctor, nullptr);
  EXPECT_EQ(ctor->body_end, 8);
}

TEST(DetlintSymbols, AttributesLinesToTheInnermostFunction) {
  const FileSymbols symbols = symbols_of(
      "void outer_fn() {\n"
      "  auto lambda = [] {\n"
      "    int inside = 1;\n"
      "    (void)inside;\n"
      "  };\n"
      "  lambda();\n"
      "}\n");
  const FunctionDef* fn = detlint::enclosing_function(symbols, 3);
  ASSERT_NE(fn, nullptr);
  // Lambdas are anonymous block scopes: tokens inside attribute to outer_fn.
  EXPECT_EQ(fn->qualified_name, "outer_fn");
}

TEST(DetlintSymbols, CapabilityMarkerAboveSignatureGrantsTheFunction) {
  const FileSymbols symbols = symbols_of(
      "// detlint:capability(threads): fixture reason\n"
      "void pool_start() {\n"
      "}\n"
      "void ungranted() {\n"
      "}\n");
  const FunctionDef* granted = find_function(symbols, "pool_start");
  ASSERT_NE(granted, nullptr);
  EXPECT_EQ(granted->capabilities.count("threads"), 1u);
  const FunctionDef* other = find_function(symbols, "ungranted");
  ASSERT_NE(other, nullptr);
  EXPECT_TRUE(other->capabilities.empty());
  EXPECT_TRUE(symbols.errors.empty());
}

TEST(DetlintSymbols, CapabilityListSplitsOnPipe) {
  const FileSymbols symbols = symbols_of(
      "// detlint:capability(threads|wall-clock): timing harness\n"
      "void harness() {\n"
      "}\n");
  const FunctionDef* fn = find_function(symbols, "harness");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->capabilities.count("threads"), 1u);
  EXPECT_EQ(fn->capabilities.count("wall-clock"), 1u);
}

TEST(DetlintSymbols, UnknownCapabilityIsAnError) {
  const FileSymbols symbols = symbols_of(
      "// detlint:capability(hyperspeed): nope\n"
      "void fn() {\n"
      "}\n");
  ASSERT_EQ(symbols.errors.size(), 1u);
  EXPECT_EQ(symbols.errors[0].rule, "bad-capability");
  EXPECT_NE(symbols.errors[0].message.find("hyperspeed"), std::string::npos);
}

TEST(DetlintSymbols, UnattachedCapabilityIsAnError) {
  const FileSymbols symbols = symbols_of(
      "int x = 0;\n"
      "// detlint:capability(threads): attaches to nothing\n");
  ASSERT_EQ(symbols.errors.size(), 1u);
  EXPECT_EQ(symbols.errors[0].rule, "bad-capability");
}

// --- call graph -------------------------------------------------------------

TEST(DetlintCallGraph, LinksQualifiedAndUnqualifiedCalls) {
  const std::string text =
      "namespace app {\n"
      "void leaf() {\n"
      "}\n"
      "void caller() {\n"
      "  leaf();\n"
      "  app::leaf();\n"
      "}\n"
      "}  // namespace app\n";
  const FileSymbols symbols = symbols_of(text);
  const auto src =
      detlint::detail::strip_comments_and_strings(detlint::detail::split_lines(text));
  const detlint::CallGraph graph = detlint::build_call_graph({&symbols}, {&src});
  ASSERT_EQ(graph.nodes.size(), 2u);
  int caller = -1;
  int leaf = -1;
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    if (graph.nodes[i]->qualified_name == "app::caller") caller = static_cast<int>(i);
    if (graph.nodes[i]->qualified_name == "app::leaf") leaf = static_cast<int>(i);
  }
  ASSERT_GE(caller, 0);
  ASSERT_GE(leaf, 0);
  EXPECT_EQ(graph.edges[static_cast<std::size_t>(caller)],
            (std::vector<int>{leaf}));
  EXPECT_TRUE(graph.edges[static_cast<std::size_t>(leaf)].empty());
}

TEST(DetlintCallGraph, EntryMatchingIsSuffixOnScopeBoundary) {
  const FileSymbols symbols = symbols_of(
      "namespace lintime { namespace lin {\n"
      "int check() {\n"
      "  return 0;\n"
      "}\n"
      "int recheck() {\n"
      "  return 1;\n"
      "}\n"
      "}}\n");
  const auto src =
      detlint::detail::strip_comments_and_strings(detlint::detail::split_lines(""));
  const detlint::CallGraph graph = detlint::build_call_graph({&symbols}, {&src});
  // "lin::check" matches lintime::lin::check; "check" must NOT match
  // recheck (suffix only on a :: boundary).
  EXPECT_EQ(graph.match_entry("lin::check").size(), 1u);
  EXPECT_EQ(graph.match_entry("check").size(), 1u);
  EXPECT_TRUE(graph.match_entry("heck").empty());
}

// --- reachability over the fixture trees ------------------------------------

TEST(DetlintReachability, DirectCallIsReported) {
  const Analysis analysis =
      detlint::analyze_tree(fixture_dir() / "reach_direct", fixture_config("reach_direct"));
  const auto rules = rules_of(analysis.findings);
  ASSERT_EQ(analysis.findings.size(), 2u);
  EXPECT_EQ(rules, (std::vector<std::string>{"det-reachability", "thread-spawn"}));
  EXPECT_NE(analysis.findings[0].message.find("demo::entry -> demo::spawner"),
            std::string::npos);
  EXPECT_EQ(analysis.findings[0].function, "demo::spawner");
  EXPECT_EQ(analysis.findings[0].capability, "threads");
}

TEST(DetlintReachability, TwoHopChainCrossesFiles) {
  const Analysis analysis =
      detlint::analyze_tree(fixture_dir() / "reach_two_hop", fixture_config("reach_two_hop"));
  ASSERT_EQ(analysis.findings.size(), 2u);
  EXPECT_EQ(analysis.findings[0].rule, "det-reachability");
  EXPECT_NE(
      analysis.findings[0].message.find("demo::entry -> demo::middle -> demo::spawner"),
      std::string::npos);
}

TEST(DetlintReachability, CapabilityGrantSilencesFlatAndReachability) {
  const Analysis analysis =
      detlint::analyze_tree(fixture_dir() / "reach_granted", fixture_config("reach_granted"));
  EXPECT_TRUE(analysis.findings.empty());
  // The grant is load-bearing (it suppresses the flat finding), so the
  // audit must not call it stale.
  EXPECT_TRUE(analysis.audit.stale_grants.empty());
}

TEST(DetlintReachability, FunctionPointerDispatchIsTheKnownMiss) {
  const Analysis analysis =
      detlint::analyze_tree(fixture_dir() / "reach_fnptr", fixture_config("reach_fnptr"));
  // The flat rule still fires; the call graph cannot see through the
  // pointer, so no det-reachability finding appears (documented limit).
  EXPECT_EQ(rules_of(analysis.findings), (std::vector<std::string>{"thread-spawn"}));
}

TEST(DetlintReachability, UnmatchedEntryPointBecomesBadCapability) {
  Config config = fixture_config("reach_direct");
  config.deterministic_entries = {"no::such::function"};
  const Analysis analysis = detlint::analyze_tree(fixture_dir() / "reach_direct", config);
  bool found = false;
  for (const Finding& f : analysis.findings) {
    if (f.rule == "bad-capability" && f.file == "detlint.toml" &&
        f.message.find("no::such::function") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DetlintReachability, InlineAllowOfBaseRuleDoesNotStopIt) {
  TempTree tree;
  tree.write("code.cpp",
             "#include <thread>\n"
             "namespace demo {\n"
             "void spawner() {\n"
             "  // detlint:allow(thread-spawn): trying to dodge the contract\n"
             "  std::thread t([] {});\n"
             "  t.join();\n"
             "}\n"
             "void entry() { spawner(); }\n"
             "}\n");
  Config config;
  config.deterministic_entries = {"entry"};
  const Analysis analysis = detlint::analyze_tree(tree.path(), config, {"code.cpp"});
  // The inline allow removes the flat finding but NOT the contract
  // violation: reachable code needs a typed grant or a restructure.
  EXPECT_EQ(rules_of(analysis.findings), (std::vector<std::string>{"det-reachability"}));
}

TEST(DetlintReachability, ExplicitReachabilityAllowIsHonored) {
  TempTree tree;
  tree.write("code.cpp",
             "#include <thread>\n"
             "namespace demo {\n"
             "void spawner() {\n"
             "  // detlint:allow(thread-spawn, det-reachability): fixture escape hatch\n"
             "  std::thread t([] {});\n"
             "  t.join();\n"
             "}\n"
             "void entry() { spawner(); }\n"
             "}\n");
  Config config;
  config.deterministic_entries = {"entry"};
  const Analysis analysis = detlint::analyze_tree(tree.path(), config, {"code.cpp"});
  EXPECT_TRUE(analysis.findings.empty());
}

// --- baselines --------------------------------------------------------------

std::vector<Finding> scan_with_fingerprints(const std::string& text) {
  std::vector<Finding> findings = detlint::scan_source("mem.cpp", text, Config{});
  detlint::assign_fingerprints(findings);
  return findings;
}

TEST(DetlintBaseline, FingerprintsSurviveLineShifts) {
  const std::string body =
      "void fn() {\n"
      "  auto now = std::chrono::steady_clock::now();\n"
      "  (void)now;\n"
      "}\n";
  const auto a = scan_with_fingerprints(body);
  const auto b = scan_with_fingerprints("// padding\n// more padding\n\n" + body);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].line, b[0].line);
  EXPECT_EQ(a[0].fingerprint, b[0].fingerprint);
}

TEST(DetlintBaseline, OrdinalsDisambiguateIdenticalFindings) {
  const auto findings = scan_with_fingerprints(
      "void fn() {\n"
      "  auto t0 = std::chrono::steady_clock::now();\n"
      "  auto t0b = std::chrono::steady_clock::now();\n"
      "  auto t0c = std::chrono::steady_clock::now();\n"
      "}\n");
  ASSERT_EQ(findings.size(), 3u);
  // Different excerpts -> different stems here; force identical context.
  std::vector<Finding> same = {findings[0], findings[0], findings[0]};
  detlint::assign_fingerprints(same);
  EXPECT_EQ(same[1].fingerprint, same[0].fingerprint + "~1");
  EXPECT_EQ(same[2].fingerprint, same[0].fingerprint + "~2");
}

TEST(DetlintBaseline, RoundTripThenRatchet) {
  const std::string original =
      "void fn() {\n"
      "  auto now = std::chrono::steady_clock::now();\n"
      "  std::mt19937_64 rng;\n"
      "}\n";
  const auto findings = scan_with_fingerprints(original);
  ASSERT_EQ(findings.size(), 2u);

  std::ostringstream text;
  detlint::write_baseline(text, detlint::baseline_from(findings));
  const detlint::Baseline parsed = detlint::parse_baseline(text.str());
  ASSERT_EQ(parsed.entries.size(), 2u);

  // Same source: everything matches, nothing fresh, nothing stale.
  const auto diff0 = detlint::diff_against(parsed, scan_with_fingerprints(original));
  EXPECT_TRUE(diff0.fresh.empty());
  EXPECT_EQ(diff0.matched, 2u);
  EXPECT_TRUE(diff0.stale.empty());

  // Inject one violation: exactly one fresh finding.
  const auto diff1 = detlint::diff_against(
      parsed, scan_with_fingerprints(
                  "void fn() {\n"
                  "  auto now = std::chrono::steady_clock::now();\n"
                  "  std::mt19937_64 rng;\n"
                  "  std::thread t([] {});\n"
                  "}\n"));
  ASSERT_EQ(diff1.fresh.size(), 1u);
  EXPECT_EQ(diff1.fresh[0].rule, "thread-spawn");

  // Fix one violation: it shows up as stale, nothing fresh.
  const auto diff2 = detlint::diff_against(
      parsed, scan_with_fingerprints(
                  "void fn() {\n"
                  "  auto now = std::chrono::steady_clock::now();\n"
                  "}\n"));
  EXPECT_TRUE(diff2.fresh.empty());
  ASSERT_EQ(diff2.stale.size(), 1u);
  EXPECT_EQ(diff2.stale[0].rule, "unseeded-engine");
}

TEST(DetlintBaseline, ParserRejectsGarbage) {
  EXPECT_THROW(detlint::parse_baseline("{\"version\": 2, \"findings\": []}"),
               std::runtime_error);
  EXPECT_THROW(detlint::parse_baseline("{\"surprise\": []}"), std::runtime_error);
  EXPECT_THROW(detlint::parse_baseline("not json"), std::runtime_error);
}

// --- SARIF ------------------------------------------------------------------

TEST(DetlintSarif, EmitsSchemaDriverRulesAndResults) {
  std::vector<Finding> findings = {{"src/a.cpp", 7, "wall-clock", "msg \"quoted\"",
                                    "excerpt", "ns::fn", "wall-clock", "wall-clock@ns::fn#x"}};
  std::ostringstream os;
  detlint::write_sarif(os, findings);
  const std::string sarif = os.str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"detlint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"wall-clock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"detlint/v1\": \"wall-clock@ns::fn#x\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("msg \\\"quoted\\\""), std::string::npos);
  // Every rule id appears in the driver catalog.
  for (const std::string& rule : detlint::all_rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule + "\""), std::string::npos) << rule;
  }
}

TEST(DetlintSarif, EmptyFindingsStillProduceAValidRun) {
  std::ostringstream os;
  detlint::write_sarif(os, {});
  EXPECT_NE(os.str().find("\"results\": []"), std::string::npos);
}

// --- audit ------------------------------------------------------------------

TEST(DetlintAudit, ReportsStaleInlineGrantAndGlob) {
  TempTree tree;
  tree.write("code.cpp",
             "// detlint:allow(wall-clock): nothing here trips it anymore\n"
             "int clean_value = 3;\n"
             "// detlint:capability(rng): never used, never reachable\n"
             "void decorative() {\n"
             "}\n");
  Config config;
  config.rules["thread-spawn"].allow_paths = {"legacy/*"};
  const Analysis analysis = detlint::analyze_tree(tree.path(), config, {"code.cpp"});
  EXPECT_TRUE(analysis.findings.empty());
  ASSERT_EQ(analysis.audit.stale_inline.size(), 1u);
  EXPECT_EQ(analysis.audit.stale_inline[0].rule, "wall-clock");
  EXPECT_EQ(analysis.audit.stale_inline[0].line, 1);
  ASSERT_EQ(analysis.audit.stale_grants.size(), 1u);
  EXPECT_EQ(analysis.audit.stale_grants[0].function, "decorative");
  EXPECT_EQ(analysis.audit.stale_grants[0].capability, "rng");
  ASSERT_EQ(analysis.audit.stale_allow_globs.size(), 1u);
  EXPECT_EQ(analysis.audit.stale_allow_globs[0].pattern, "legacy/*");
}

TEST(DetlintAudit, LiveSuppressionsAreNotStale) {
  TempTree tree;
  tree.write("code.cpp",
             "void fn() {\n"
             "  // detlint:allow(wall-clock): deliberate timing read\n"
             "  auto now = std::chrono::steady_clock::now();\n"
             "  (void)now;\n"
             "}\n");
  const Analysis analysis = detlint::analyze_tree(tree.path(), Config{}, {"code.cpp"});
  EXPECT_TRUE(analysis.findings.empty());
  EXPECT_TRUE(analysis.audit.empty());
}

TEST(DetlintAudit, WriteAuditMentionsEveryChannel) {
  detlint::AuditReport report;
  report.stale_inline.push_back({"a.cpp", 3, "wall-clock"});
  report.stale_grants.push_back({"b.cpp", 9, "ns::fn", "threads"});
  report.stale_allow_globs.push_back({"thread-spawn", "legacy/*"});
  std::ostringstream os;
  detlint::write_audit(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find("a.cpp:3"), std::string::npos);
  EXPECT_NE(text.find("ns::fn"), std::string::npos);
  EXPECT_NE(text.find("legacy/*"), std::string::npos);
  EXPECT_NE(text.find("3 stale suppressions"), std::string::npos);
}

// --- config & JSON surface --------------------------------------------------

TEST(DetlintConfigV2, ParsesDeterministicEntryPoints) {
  TempTree tree;
  tree.write("detlint.toml",
             "[scan]\n"
             "roots = [\"src\"]\n"
             "[capability.deterministic]\n"
             "entry-points = [\"lin::check\", \"sim::World::run\"]\n");
  const Config config = detlint::load_config(tree.path() / "detlint.toml");
  EXPECT_EQ(config.deterministic_entries,
            (std::vector<std::string>{"lin::check", "sim::World::run"}));
}

TEST(DetlintConfigV2, RejectsUnknownCapabilityKey) {
  TempTree tree;
  tree.write("detlint.toml",
             "[capability.deterministic]\n"
             "entrypoints = [\"typo\"]\n");
  EXPECT_THROW(detlint::load_config(tree.path() / "detlint.toml"), std::runtime_error);
}

TEST(DetlintReport, JsonCarriesFunctionCapabilityAndFingerprint) {
  std::vector<Finding> findings = {{"a.cpp", 2, "thread-spawn", "m", "e", "ns::fn",
                                    "threads", "thread-spawn@ns::fn#e"}};
  const std::string json = detlint::to_json(findings);
  EXPECT_NE(json.find("\"function\":\"ns::fn\""), std::string::npos);
  EXPECT_NE(json.find("\"capability\":\"threads\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\":\"thread-spawn@ns::fn#e\""), std::string::npos);
}

// --- stripper regressions (unit-level; fixtures cover the CLI path) ---------

TEST(DetlintStripper, MacroAdjacentRIsNotARawString) {
  const auto findings = detlint::scan_source(
      "t.cpp",
      "#define GLYPH_R \"R:\"\n"
      "const char* s = GLYPH_R\"x(text)\";\n"
      "int f() { return std::rand(); }\n",
      Config{});
  EXPECT_EQ(rules_of(findings), (std::vector<std::string>{"global-rand"}));
}

TEST(DetlintStripper, RawStringWithCustomDelimiterSwallowsItsBody) {
  const auto findings = detlint::scan_source(
      "t.cpp",
      "const char* s = R\"x(\n"
      "std::thread t(worker); time(nullptr);\n"
      ")x\";\n"
      "int ok = 1;\n",
      Config{});
  EXPECT_TRUE(findings.empty());
}

TEST(DetlintStripper, SplicedStringKeepsTrailingCodeVisible) {
  const auto findings = detlint::scan_source(
      "t.cpp",
      "const char* s = \"continues \\\n"
      "still string\" ; int v = std::rand();\n",
      Config{});
  EXPECT_EQ(rules_of(findings), (std::vector<std::string>{"global-rand"}));
}

TEST(DetlintStripper, ContinuedLineCommentStaysAComment) {
  const auto findings = detlint::scan_source(
      "t.cpp",
      "// continues \\\n"
      "std::rand(); time(nullptr); std::thread t(w);\n"
      "int ok = 2;\n",
      Config{});
  EXPECT_TRUE(findings.empty());
}

}  // namespace
