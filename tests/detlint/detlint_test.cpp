// Self-tests for the detlint scanner: every rule must trigger on its
// known-bad fixture, stay quiet on the known-good ones, and honor inline
// suppressions and config allowlists.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

using detlint::Config;
using detlint::Finding;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(DETLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<Finding> scan_fixture(const std::string& name) {
  return detlint::scan_source(name, read_fixture(name), Config{});
}

/// Asserts every finding carries `rule` and that they land on exactly
/// `lines` (1-based).
void expect_rule_on_lines(const std::string& fixture, const std::string& rule,
                          const std::set<int>& lines) {
  const std::vector<Finding> findings = scan_fixture(fixture);
  std::set<int> got;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, rule) << fixture << ":" << f.line << " — " << f.message;
    got.insert(f.line);
  }
  EXPECT_EQ(got, lines) << "wrong finding lines in " << fixture;
}

TEST(DetlintRules, WallClockFixture) {
  expect_rule_on_lines("bad_wallclock.cpp", "wall-clock", {6, 11, 15, 19});
}

TEST(DetlintRules, GlobalRandFixture) {
  expect_rule_on_lines("bad_rand.cpp", "global-rand", {6, 10, 14});
}

TEST(DetlintRules, UnseededEngineFixture) {
  expect_rule_on_lines("bad_unseeded_engine.cpp", "unseeded-engine", {5, 10});
}

TEST(DetlintRules, UnorderedIterFixture) {
  expect_rule_on_lines("bad_unordered_iter.cpp", "unordered-iter", {9, 17});
}

TEST(DetlintRules, PointerKeyFixture) {
  expect_rule_on_lines("bad_pointer_key.cpp", "pointer-key", {11, 16});
}

TEST(DetlintRules, MutableStaticFixture) {
  expect_rule_on_lines("bad_mutable_static.cpp", "mutable-static", {5, 12});
}

TEST(DetlintRules, ThreadSpawnFixture) {
  expect_rule_on_lines("bad_thread.cpp", "thread-spawn", {6, 11, 16, 17});
}

TEST(DetlintRules, AnyPayloadFixture) {
  // The fixture's path puts it in scope (src/sim/); std::any_of on its last
  // function stays clean (longer identifier, not the std::any token).
  expect_rule_on_lines("src/sim/bad_any_payload.cpp", "any-payload", {3, 9, 10, 13});
}

TEST(DetlintRules, AnyPayloadScopedToHotLoopTrees) {
  // The identical content outside src/sim|src/core|src/baseline is allowed:
  // std::any is only banned where the typed-payload refactor removed it.
  const std::string text = read_fixture("src/sim/bad_any_payload.cpp");
  EXPECT_TRUE(detlint::scan_source("tools/scratch/any_ok.cpp", text, Config{}).empty());
  EXPECT_FALSE(detlint::scan_source("src/core/any_bad.cpp", text, Config{}).empty());
  EXPECT_FALSE(detlint::scan_source("src/baseline/any_bad.cpp", text, Config{}).empty());
}

TEST(DetlintRules, GoodFixturesAreClean) {
  for (const std::string name : {"good_clean.cpp", "good_suppressed.cpp"}) {
    const std::vector<Finding> findings = scan_fixture(name);
    EXPECT_TRUE(findings.empty())
        << name << " tripped " << findings.size() << " finding(s), first: "
        << (findings.empty() ? "" : findings[0].file + ":" + std::to_string(findings[0].line) +
                                        " [" + findings[0].rule + "] " + findings[0].message);
  }
}

TEST(DetlintScanner, StringLiteralsAndCommentsAreInert) {
  const std::string text =
      "// std::rand() and steady_clock::now() in a comment\n"
      "/* srand(1); std::thread t; */\n"
      "const char* s = \"time(nullptr) std::async random_device\";\n"
      "const char* r = R\"(std::rand() srand(7))\";\n";
  EXPECT_TRUE(detlint::scan_source("inert.cpp", text, Config{}).empty());
}

TEST(DetlintScanner, MarkerInsideStringLiteralIsNotASuppression) {
  // The marker only counts in comments; in a string it must neither
  // suppress anything nor report bad-suppression.
  const std::string text =
      "const char* m = \"detlint:allow(\";\n"
      "int bad = std::rand();\n";
  const auto findings = detlint::scan_source("marker.cpp", text, Config{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "global-rand");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(DetlintScanner, UnknownRuleInSuppressionIsReported) {
  const std::string text = "int x = 0;  // detlint:allow(no-such-rule): typo\n";
  const auto findings = detlint::scan_source("typo.cpp", text, Config{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "bad-suppression");
}

TEST(DetlintScanner, DigitSeparatorIsNotACharLiteral) {
  // If 1'000 opened a char literal, the rand() call after it would be
  // swallowed as "inside the literal" and missed.
  const std::string text = "int x = 1'000'000; int y = std::rand();\n";
  const auto findings = detlint::scan_source("sep.cpp", text, Config{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "global-rand");
}

TEST(DetlintScanner, AliasOfUnorderedMapIsTracked) {
  const std::string text =
      "using Index = std::unordered_map<int, int>;\n"
      "int sum(const Index& idx) {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : idx) n += v;\n"
      "  return n;\n"
      "}\n";
  const auto findings = detlint::scan_source("alias.cpp", text, Config{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(DetlintScanner, HardwareConcurrencyIsNotASpawn) {
  const std::string text = "unsigned n = std::thread::hardware_concurrency();\n";
  EXPECT_TRUE(detlint::scan_source("hc.cpp", text, Config{}).empty());
}

TEST(DetlintScanner, FindingsAreSortedAndDeduplicated) {
  const std::string text =
      "std::map<int*, int> b;\n"
      "int a = std::rand();\n";
  const auto findings = detlint::scan_source("order.cpp", text, Config{});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[0].rule, "pointer-key");
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[1].rule, "global-rand");
}

TEST(DetlintConfig, GlobMatch) {
  EXPECT_TRUE(detlint::glob_match("src/*", "src/campaign/executor.cpp"));
  EXPECT_TRUE(detlint::glob_match("src/campaign/executor.cpp", "src/campaign/executor.cpp"));
  EXPECT_TRUE(detlint::glob_match("*executor*", "src/campaign/executor.hpp"));
  EXPECT_TRUE(detlint::glob_match("bench/?c_gap.cpp", "bench/sc_gap.cpp"));
  EXPECT_FALSE(detlint::glob_match("src/*", "bench/sc_gap.cpp"));
  EXPECT_FALSE(detlint::glob_match("src", "src/campaign/executor.cpp"));
}

TEST(DetlintConfig, AllowPathDisablesRuleForMatchingFiles) {
  Config config;
  config.rules["thread-spawn"].allow_paths = {"src/campaign/executor.cpp"};
  const std::string text = "std::thread t([] {});\n";
  EXPECT_TRUE(detlint::scan_source("src/campaign/executor.cpp", text, config).empty());
  EXPECT_FALSE(detlint::scan_source("src/sim/world.cpp", text, config).empty());
}

TEST(DetlintConfig, DisabledRuleReportsNothing) {
  Config config;
  config.rules["global-rand"].enabled = false;
  EXPECT_TRUE(detlint::scan_source("x.cpp", "int a = std::rand();\n", config).empty());
}

TEST(DetlintConfig, EveryRuleHasADescription) {
  for (const auto& rule : detlint::all_rules()) {
    EXPECT_FALSE(detlint::rule_description(rule).empty()) << rule;
  }
}

TEST(DetlintReport, JsonShapeAndEscaping) {
  const std::vector<Finding> findings = {
      {"a \"quoted\".cpp", 3, "wall-clock", "msg", "excerpt\twith\ttabs", "", "", ""}};
  const std::string json = detlint::to_json(findings);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\".cpp"), std::string::npos);
  EXPECT_NE(json.find("excerpt\\twith\\ttabs"), std::string::npos);
  EXPECT_EQ(detlint::to_json({}).rfind("{\"count\":0,\"findings\":[]}", 0), 0u);
}

}  // namespace
