// Fixture: both containers below must trip `pointer-key`.
#include <cstddef>
#include <map>
#include <set>

struct Widget {
  int id;
};

std::size_t bad_map_key(const Widget* w) {
  std::map<const Widget*, std::size_t> uses;
  return uses.count(w);
}

bool bad_set_key(Widget* w) {
  std::set<Widget*> live;
  return live.contains(w);
}
