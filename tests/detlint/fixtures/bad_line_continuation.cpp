// Regression fixture for backslash-spliced string literals.  The literal
// below continues across the escaped newline; the closing line then carries
// real code after the closing quote.  The v1 stripper dropped string state at
// the line boundary, treated `still string" ;` as code opening a *new*
// string, and swallowed the rand() call behind it.
#include <cstdlib>

const char* spliced = "this literal continues \
still string" ; int not_hidden = std::rand();
