#include <thread>

namespace demo {

void spawner() {
  std::thread worker([] {});
  worker.join();
}

void entry() { spawner(); }

}  // namespace demo
