// Fixture: every spawn below must trip `thread-spawn`.
#include <future>
#include <thread>

int bad_async() {
  auto f = std::async(std::launch::async, [] { return 1; });
  return f.get();
}

void bad_thread() {
  std::thread t([] {});
  t.join();
}

void bad_detach() {
  std::thread t([] {});
  t.detach();
}
