// Fixture: every use below must trip `global-rand`.
#include <cstdlib>
#include <random>

int bad_c_rand() {
  return std::rand();
}

void bad_seed_global() {
  srand(42);
}

unsigned bad_random_device() {
  std::random_device rd;
  return rd();
}
