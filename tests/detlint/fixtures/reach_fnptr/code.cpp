#include <thread>

namespace demo {

void spawner() {
  std::thread worker([] {});
  worker.join();
}

using Hook = void (*)();

Hook pick() { return &spawner; }

void entry() {
  const Hook hook = pick();
  hook();  // dispatch through the pointer: invisible to the call graph
}

}  // namespace demo
