// Fixture: every std::any use below must trip `any-payload` (the path is
// under src/sim/, the rule's scope).  std::any_of must NOT trip it.
#include <any>

#include <algorithm>
#include <vector>

int bad_member() {
  std::any payload = 42;  // type-erased payload on the message plane
  return std::any_cast<int>(payload);
}

std::any bad_factory() { return std::make_any<int>(7); }

bool fine_algorithm(const std::vector<int>& v) {
  // Control: the <algorithm> std::any_of is a longer identifier and stays
  // clean under this rule.
  return std::any_of(v.begin(), v.end(), [](int x) { return x > 0; });
}
