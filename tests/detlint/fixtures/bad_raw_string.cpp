// Regression fixture for the stripper's raw-string prefix check.  GLYPH_R is
// a macro token ending in R: `GLYPH_R"x(text)"` is the macro followed by an
// ordinary string literal, NOT a raw string with delimiter "x".  The v1
// stripper entered raw-string mode here, searched for a `)x"` terminator that
// never comes, and swallowed the rest of the file — hiding the rand() below.
#include <cstdlib>

#define GLYPH_R "R:"

const char* tagged = GLYPH_R"x(text)";

int not_hidden() {
  return std::rand();  // must still be reported (global-rand)
}
