// Fixture: hazardous constructs, each neutralized by an inline
// `detlint:allow` — the whole file must scan clean.
#include <chrono>
#include <cstdlib>
#include <unordered_map>
#include <vector>

// Same-line suppression.
double wall_seconds() {
  const auto t0 = std::chrono::steady_clock::now();  // detlint:allow(wall-clock): measuring the harness itself
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

// Preceding-comment-line suppression.
int legacy_rand() {
  // detlint:allow(global-rand): exercising the suppression-on-line-above form
  return std::rand();
}

// Multi-rule suppression on one marker.
std::size_t count_all(const std::unordered_map<int, int>& m) {
  std::size_t n = 0;
  // detlint:allow(unordered-iter, mutable-static): order-insensitive reduction
  for (const auto& [k, v] : m) n += static_cast<std::size_t>(v);
  return n;
}
