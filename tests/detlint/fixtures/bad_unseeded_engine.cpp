// Fixture: both declarations below must trip `unseeded-engine`.
#include <random>

unsigned bad_local() {
  std::mt19937_64 rng;
  return static_cast<unsigned>(rng());
}

unsigned bad_temporary() {
  return static_cast<unsigned>(std::mt19937{}());
}
