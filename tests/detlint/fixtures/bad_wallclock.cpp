// Fixture: every line below must trip `wall-clock`.
#include <chrono>
#include <ctime>

long bad_steady() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

long bad_system() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_ctime() {
  return static_cast<long>(std::time(nullptr));
}

long bad_bare_time() {
  return static_cast<long>(time(nullptr));
}
