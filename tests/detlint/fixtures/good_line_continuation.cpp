// Regression fixture for backslash-continued // comments: the comment below
// extends across escaped newlines, so its continuation lines are comment
// text, not code.  The v1 stripper scanned them as code and reported every
// banned token in the prose.  Must scan clean.

// This comment keeps going \
   std::rand(); time(nullptr); std::thread t(worker); \
   std::mt19937_64 rng; still comment text

int fine() { return 3; }
