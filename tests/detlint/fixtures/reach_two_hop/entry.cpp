namespace demo {

void middle();

void entry() { middle(); }

}  // namespace demo
