#include <thread>

namespace demo {

void spawner() {
  std::thread worker([] {});
  worker.join();
}

void middle() { spawner(); }

}  // namespace demo
