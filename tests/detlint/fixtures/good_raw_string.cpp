// Genuine raw string literals, including custom delimiters, encoding
// prefixes, and multi-line bodies.  Every banned token below lives inside a
// literal, so the file must scan clean.
const char* plain = R"(std::rand() and time(nullptr) are inert here)";

const char* custom_delim = R"x(even a ")" quote-paren: std::thread t; )x";

const char* encoded = u8R"(srand(42) inside a u8 raw string)";

const char* multi_line = R"doc(
  std::thread worker(run);
  auto now = std::chrono::steady_clock::now();
  std::mt19937_64 rng;
)doc";

int after_the_literals() { return 7; }
