#include <thread>

namespace demo {

// detlint:capability(threads): fixture — this function is the sanctioned
// parallelism site, results land in index-keyed slots.
void spawner() {
  std::thread worker([] {});
  worker.join();
}

void entry() { spawner(); }

}  // namespace demo
