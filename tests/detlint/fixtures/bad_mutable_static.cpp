// Fixture: both declarations below must trip `mutable-static`.
#include <cstdint>
#include <vector>

static std::uint64_t g_call_count = 0;

std::uint64_t bad_counter() {
  return ++g_call_count;
}

const std::vector<int>& bad_cache() {
  static std::vector<int> cache;
  return cache;
}
