// Fixture: none of this may trip any detlint rule — it exercises the
// idioms the real tree uses right next to the hazardous look-alikes.
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

// Seeded at the declaration: fine.
std::uint64_t seeded_local(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return rng();
}

// Seeded in the constructor init list: fine, even though the member
// declaration itself has no arguments.
class SeededMember {
 public:
  explicit SeededMember(std::uint64_t seed) : rng_(seed) {}
  std::uint64_t next() { return rng_(); }

 private:
  std::mt19937_64 rng_;
};

// Membership-only use of a hash set (no iteration): fine.
bool dedup(std::unordered_set<std::string>& seen, const std::string& key) {
  return seen.insert(key).second;
}

// Ordered map with a value-typed key, iterated: fine.
std::vector<std::string> sorted_keys(const std::map<std::string, int>& m) {
  std::vector<std::string> out;
  for (const auto& [k, v] : m) {
    if (v > 0) out.push_back(k);
  }
  return out;
}

// Pointer as mapped VALUE (not key): fine.
std::map<std::int64_t, const std::string*> index_by_id(const std::vector<std::string>& names) {
  std::map<std::int64_t, const std::string*> out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    out[static_cast<std::int64_t>(i)] = &names[i];
  }
  return out;
}

// Immutable statics and static member functions: fine.
static const char* kName = "good";
static constexpr int kLimit = 1'000'000;

struct Factory {
  static Factory make() { return {}; }
};

// hardware_concurrency is a pure query, not a spawn: fine.
#include <thread>
unsigned cores() { return std::thread::hardware_concurrency(); }

// Prose that mentions std::rand(), srand(), steady_clock::now(), or
// "for (auto& x : unordered_map_var)" must never trip: comments and
// string literals are stripped before rules run.
const char* description() {
  return "calls time(nullptr) and std::async in a string literal only";
}

const char* usage() { return kName; }
int limit() { return kLimit; }
