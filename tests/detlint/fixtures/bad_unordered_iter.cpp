// Fixture: the loops below must trip `unordered-iter`.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::vector<std::string> bad_range_for(const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> out;
  for (const auto& [name, n] : counts) {
    out.push_back(name + ":" + std::to_string(n));
  }
  return out;
}

int bad_iterators(const std::unordered_set<int>& seen) {
  int sum = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) sum += *it;
  return sum;
}
