// Ambiguity-classifier coverage: for every shipped type (and the composite
// product) a must-fast-path history where the monitor preconditions hold
// and must-fallback histories for each way they can fail.

#include "lin/fast/classifier.hpp"

#include <gtest/gtest.h>

#include "adt/counter_type.hpp"
#include "adt/deque_type.hpp"
#include "adt/max_register_type.hpp"
#include "adt/pool_type.hpp"
#include "adt/pqueue_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "adt/tree_type.hpp"
#include "core/composite.hpp"

namespace lintime::lin::fast {
namespace {

using adt::MonitorFamily;
using adt::Value;
using sim::OpRecord;

OpRecord op(sim::ProcId proc, const std::string& name, Value arg, Value ret, double inv,
            double resp) {
  OpRecord r;
  r.proc = proc;
  r.op = name;
  r.arg = std::move(arg);
  r.ret = std::move(ret);
  r.invoke_real = inv;
  r.response_real = resp;
  return r;
}

// --- must-fast-path: one eligible history per monitor family ---------------

TEST(ClassifierTest, RegisterEligible) {
  adt::RegisterType reg;
  const std::vector<OpRecord> h = {
      op(0, "write", 1, Value::nil(), 0, 1),
      op(1, "read", Value::nil(), 1, 0.5, 2),
  };
  const auto c = classify(reg, h);
  EXPECT_TRUE(c.eligible);
  EXPECT_EQ(c.family, MonitorFamily::kRegister);
  EXPECT_TRUE(c.reason.empty());
}

TEST(ClassifierTest, RmwRegisterRestrictedToReadWriteEligible) {
  adt::RmwRegisterType rmw;
  const std::vector<OpRecord> h = {
      op(0, "write", 7, Value::nil(), 0, 1),
      op(1, "read", Value::nil(), 7, 2, 3),
  };
  const auto c = classify(rmw, h);
  EXPECT_TRUE(c.eligible);
  EXPECT_EQ(c.family, MonitorFamily::kRegister);
}

TEST(ClassifierTest, QueueEligible) {
  adt::QueueType q;
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 2),
      op(1, "enqueue", 2, Value::nil(), 1, 3),
      op(0, "dequeue", Value::nil(), 1, 3, 5),
  };
  const auto c = classify(q, h);
  EXPECT_TRUE(c.eligible);
  EXPECT_EQ(c.family, MonitorFamily::kQueue);
}

TEST(ClassifierTest, StackEligible) {
  adt::StackType s;
  const std::vector<OpRecord> h = {
      op(0, "push", 1, Value::nil(), 0, 1),
      op(0, "pop", 1, Value{1}, 2, 3),
  };
  const auto c = classify(s, h);
  EXPECT_TRUE(c.eligible);
  EXPECT_EQ(c.family, MonitorFamily::kStack);
}

TEST(ClassifierTest, SetEligible) {
  adt::SetType s;
  const std::vector<OpRecord> h = {
      op(0, "add", 1, Value::nil(), 0, 1),
      op(1, "contains", 1, Value{1}, 2, 3),
      op(1, "contains", 2, Value{0}, 4, 5),
  };
  const auto c = classify(s, h);
  EXPECT_TRUE(c.eligible);
  EXPECT_EQ(c.family, MonitorFamily::kSet);
}

TEST(ClassifierTest, PQueueEligible) {
  adt::PriorityQueueType pq;
  const std::vector<OpRecord> h = {
      op(0, "insert", 3, Value::nil(), 0, 1),
      op(1, "extract_min", Value::nil(), 3, 2, 3),
  };
  const auto c = classify(pq, h);
  EXPECT_TRUE(c.eligible);
  EXPECT_EQ(c.family, MonitorFamily::kPriorityQueue);
}

// --- must-fallback: each precondition violation --------------------------

TEST(ClassifierTest, TypesWithoutFamilyFallBack) {
  adt::CounterType counter;
  adt::MaxRegisterType maxreg;
  adt::PoolType pool;
  adt::DequeType deque;
  adt::TreeType tree;
  for (const adt::DataType* t :
       {static_cast<const adt::DataType*>(&counter), static_cast<const adt::DataType*>(&maxreg),
        static_cast<const adt::DataType*>(&pool), static_cast<const adt::DataType*>(&deque),
        static_cast<const adt::DataType*>(&tree)}) {
    const auto c = classify(*t, {});
    EXPECT_FALSE(c.eligible) << t->name();
    EXPECT_EQ(c.family, MonitorFamily::kNone) << t->name();
    EXPECT_FALSE(c.reason.empty()) << t->name();
  }
}

TEST(ClassifierTest, CompositeProductFallsBack) {
  adt::QueueType q;
  adt::RegisterType reg;
  const core::ProductType product({&q, &reg});
  const auto c = classify(product, {});
  EXPECT_FALSE(c.eligible);
  EXPECT_EQ(c.family, MonitorFamily::kNone);
}

TEST(ClassifierTest, EmptyHistoryFallsBack) {
  adt::QueueType q;
  EXPECT_FALSE(classify(q, {}).eligible);
}

TEST(ClassifierTest, IncompleteRecordFallsBack) {
  adt::QueueType q;
  std::vector<OpRecord> h = {op(0, "enqueue", 1, Value::nil(), 0, 1)};
  h.push_back(op(0, "dequeue", Value::nil(), Value::nil(), 2, 3));
  h.back().response_real = -1;  // pending
  EXPECT_FALSE(classify(q, h).eligible);
}

TEST(ClassifierTest, UnsupportedOperationFallsBack) {
  adt::QueueType q;
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1),
      op(0, "peek", Value::nil(), 1, 2, 3),
  };
  const auto c = classify(q, h);
  EXPECT_FALSE(c.eligible);
  EXPECT_EQ(c.family, MonitorFamily::kQueue);  // family known, history not admitted
}

TEST(ClassifierTest, RmwOperationFallsBack) {
  adt::RmwRegisterType rmw;
  const std::vector<OpRecord> h = {
      op(0, "fetch_add", 1, Value{0}, 0, 1),
  };
  EXPECT_FALSE(classify(rmw, h).eligible);
}

TEST(ClassifierTest, ZeroGapWithinProcessFallsBack) {
  adt::QueueType q;
  // Same process, response time == next invoke time: the uid tiebreak case.
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1),
      op(0, "enqueue", 2, Value::nil(), 1, 2),
  };
  EXPECT_FALSE(classify(q, h).eligible);
}

TEST(ClassifierTest, DuplicateEnqueueFallsBack) {
  adt::QueueType q;
  const std::vector<OpRecord> h = {
      op(0, "enqueue", 1, Value::nil(), 0, 1),
      op(1, "enqueue", 1, Value::nil(), 0.5, 2),
  };
  EXPECT_FALSE(classify(q, h).eligible);
}

TEST(ClassifierTest, DuplicatePushFallsBack) {
  adt::StackType s;
  const std::vector<OpRecord> h = {
      op(0, "push", 1, Value::nil(), 0, 1),
      op(1, "push", 1, Value::nil(), 0.5, 2),
  };
  EXPECT_FALSE(classify(s, h).eligible);
}

TEST(ClassifierTest, DuplicateAddFallsBack) {
  adt::SetType s;
  const std::vector<OpRecord> h = {
      op(0, "add", 1, Value::nil(), 0, 1),
      op(1, "add", 1, Value::nil(), 2, 3),
  };
  EXPECT_FALSE(classify(s, h).eligible);
}

TEST(ClassifierTest, SetSizeOperationFallsBack) {
  adt::SetType s;
  const std::vector<OpRecord> h = {
      op(0, "add", 1, Value::nil(), 0, 1),
      op(0, "size", Value::nil(), Value{1}, 2, 3),
  };
  EXPECT_FALSE(classify(s, h).eligible);
}

TEST(ClassifierTest, DuplicateInsertFallsBack) {
  adt::PriorityQueueType pq;
  const std::vector<OpRecord> h = {
      op(0, "insert", 4, Value::nil(), 0, 1),
      op(1, "insert", 4, Value::nil(), 2, 3),
  };
  EXPECT_FALSE(classify(pq, h).eligible);
}

TEST(ClassifierTest, FindMinFallsBack) {
  adt::PriorityQueueType pq;
  const std::vector<OpRecord> h = {
      op(0, "insert", 4, Value::nil(), 0, 1),
      op(0, "find_min", Value::nil(), Value{4}, 2, 3),
  };
  EXPECT_FALSE(classify(pq, h).eligible);
}

TEST(ClassifierTest, DuplicateWriteFallsBack) {
  adt::RegisterType reg;
  const std::vector<OpRecord> h = {
      op(0, "write", 3, Value::nil(), 0, 1),
      op(1, "write", 3, Value::nil(), 2, 3),
  };
  EXPECT_FALSE(classify(reg, h).eligible);
}

TEST(ClassifierTest, WriteOfInitialValueFallsBack) {
  adt::RegisterType reg;  // initial value 0
  const std::vector<OpRecord> h = {
      op(0, "write", 0, Value::nil(), 0, 1),
  };
  EXPECT_FALSE(classify(reg, h).eligible);
}

}  // namespace
}  // namespace lintime::lin::fast
