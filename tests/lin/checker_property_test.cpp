// Property tests for the checkers themselves: the memoized search agrees
// with the non-memoized reference on random histories, witnesses replay
// correctly, and the implication lattice (linearizable => sequentially
// consistent) holds on every history we can generate.

#include <gtest/gtest.h>

#include <random>

#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "harness/runner.hpp"
#include "lin/checker.hpp"
#include "lin/sc_checker.hpp"

namespace lintime::lin {
namespace {

using adt::Value;
using sim::OpRecord;

/// A random (often non-linearizable) history: random ops, args, return
/// values and intervals across `procs` processes.
std::vector<OpRecord> random_history(std::uint64_t seed, int procs, int per_proc) {
  std::mt19937_64 rng(seed);
  std::vector<OpRecord> out;
  const char* ops[] = {"enqueue", "dequeue", "peek"};
  std::uint64_t uid = 1;
  for (int p = 0; p < procs; ++p) {
    double clock = 0;
    for (int i = 0; i < per_proc; ++i) {
      OpRecord op;
      op.proc = p;
      op.uid = uid++;
      op.op = ops[rng() % 3];
      op.arg = op.op == std::string("enqueue") ? Value{static_cast<int>(rng() % 3)}
                                               : Value::nil();
      // Return values biased toward plausible ones (nil or small ints).
      op.ret = op.op == std::string("enqueue")
                   ? Value::nil()
                   : (rng() % 2 == 0 ? Value::nil() : Value{static_cast<int>(rng() % 3)});
      op.invoke_real = clock + static_cast<double>(rng() % 5);
      op.response_real = op.invoke_real + 1 + static_cast<double>(rng() % 5);
      clock = op.response_real;
      out.push_back(op);
    }
  }
  return out;
}

TEST(CheckerPropertyTest, MemoizedAgreesWithReferenceOnRandomHistories) {
  adt::QueueType queue;
  int linearizable_count = 0;
  int total = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    for (const int per_proc : {1, 2, 3}) {
      const auto h = random_history(seed * 10 + per_proc, 3, per_proc);
      const auto with = check_linearizability(queue, h, {.memoize = true});
      const auto without = check_linearizability(queue, h, {.memoize = false});
      EXPECT_EQ(with.linearizable, without.linearizable) << "seed " << seed;
      if (with.linearizable) ++linearizable_count;
      ++total;
    }
  }
  // The generator must produce both outcomes, or the property is vacuous.
  EXPECT_GT(linearizable_count, 3);
  EXPECT_LT(linearizable_count, total - 3);
}

TEST(CheckerPropertyTest, WitnessReplaysLegallyAndRespectsPrecedence) {
  adt::QueueType queue;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto h = random_history(seed, 3, 3);
    const auto result = check_linearizability(queue, h);
    if (!result.linearizable) continue;
    ASSERT_EQ(result.witness.size(), h.size());

    // Legal replay.
    auto state = queue.make_initial_state();
    for (const auto idx : result.witness) {
      EXPECT_EQ(state->apply(h[idx].op, h[idx].arg), h[idx].ret) << "seed " << seed;
    }
    // Precedence respected.
    for (std::size_t a = 0; a < result.witness.size(); ++a) {
      for (std::size_t b = a + 1; b < result.witness.size(); ++b) {
        const auto& first = h[result.witness[a]];
        const auto& second = h[result.witness[b]];
        EXPECT_FALSE(second.response_real < first.invoke_real &&
                     second.proc != first.proc)
            << "real-time inversion, seed " << seed;
      }
    }
  }
}

TEST(CheckerPropertyTest, LinearizableImpliesSequentiallyConsistent) {
  adt::QueueType queue;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto h = random_history(seed, 3, 3);
    if (check_linearizability(queue, h).linearizable) {
      EXPECT_TRUE(check_sequential_consistency(queue, h).linearizable) << "seed " << seed;
    }
  }
}

TEST(CheckerPropertyTest, AlgorithmRunsAlwaysAgreeAcrossCheckerModes) {
  adt::RegisterType reg;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    harness::RunSpec spec;
    spec.params = sim::ModelParams{3, 10.0, 2.0, 1.0};
    spec.delays = std::make_shared<sim::UniformRandomDelay>(8.0, 10.0, seed);
    spec.scripts = harness::random_scripts(reg, 3, 4, seed * 3);
    const auto record = harness::execute(reg, spec).record;
    EXPECT_TRUE(check_linearizability(reg, record.ops, {.memoize = true}).linearizable);
    EXPECT_TRUE(check_linearizability(reg, record.ops, {.memoize = false}).linearizable);
    EXPECT_TRUE(check_sequential_consistency(reg, record).linearizable);
  }
}

TEST(CheckerPropertyTest, NodesExpandedNeverLargerWithMemo) {
  adt::QueueType queue;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto h = random_history(seed, 3, 3);
    const auto with = check_linearizability(queue, h, {.memoize = true});
    const auto without = check_linearizability(queue, h, {.memoize = false});
    EXPECT_LE(with.nodes_expanded, without.nodes_expanded) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lintime::lin
