// Seeded differential testing: the fast-path monitors and the general
// Wing-Gong checker must agree on every generated history -- positives by
// construction, forced negatives, and return-swapped mutations -- with the
// memo both on and off, and with the general checker's witnesses validated
// by replay.

#include <gtest/gtest.h>

#include "adt/pqueue_type.hpp"
#include "adt/queue_type.hpp"
#include "adt/register_type.hpp"
#include "adt/rmw_register_type.hpp"
#include "adt/set_type.hpp"
#include "adt/stack_type.hpp"
#include "lin/check.hpp"
#include "lin/fast/classifier.hpp"
#include "lin/fast/history_gen.hpp"
#include "lin/search_detail.hpp"

namespace lintime::lin {
namespace {

constexpr int kSeedsPerType = 60;
constexpr std::size_t kOpsPerHistory = 40;  // width <= procs keeps the general search cheap

/// A witness must be a permutation that respects the checkers' real-time
/// precedence and replays legally against the type's state machine.
void validate_witness(const adt::DataType& type, const std::vector<sim::OpRecord>& ops,
                      const std::vector<std::size_t>& witness) {
  ASSERT_EQ(witness.size(), ops.size());
  for (std::size_t p = 0; p < witness.size(); ++p) {
    for (std::size_t q = p + 1; q < witness.size(); ++q) {
      EXPECT_FALSE(detail::realtime_precedes(ops[witness[q]], ops[witness[p]]))
          << "witness violates real-time order at positions " << p << "," << q;
    }
  }
  auto state = type.initial_state();
  for (const auto idx : witness) {
    EXPECT_EQ(state->apply(ops[idx].op, ops[idx].arg), ops[idx].ret)
        << "witness replay diverges at op uid " << ops[idx].uid;
  }
}

void run_differential(const adt::DataType& type) {
  for (int seed = 1; seed <= kSeedsPerType; ++seed) {
    fast::GenOptions gen;
    gen.procs = 3;
    gen.total_ops = kOpsPerHistory;
    gen.seed = static_cast<std::uint64_t>(seed);
    auto ops = fast::generate_unambiguous(type, gen);

    // Positive: linearizable by construction, and classifier-eligible.
    const auto cls = fast::classify(type, ops);
    ASSERT_TRUE(cls.eligible) << type.name() << " seed " << seed << ": " << cls.reason;

    const auto fast_report = check(type, ops);
    ASSERT_EQ(fast_report.stats.route, CheckRoute::kFastPath);
    EXPECT_TRUE(fast_report.result.linearizable) << type.name() << " seed " << seed;

    FacadeOptions general_only;
    general_only.allow_fast_path = false;
    const auto general = check(type, ops, general_only);
    ASSERT_TRUE(general.result.linearizable) << type.name() << " seed " << seed;
    validate_witness(type, ops, general.result.witness);

    // Memo off must not change the verdict (every third seed: it is the
    // slow configuration).
    if (seed % 3 == 0) {
      FacadeOptions no_memo = general_only;
      no_memo.general.memoize = false;
      const auto unmemoized = check(type, ops, no_memo);
      EXPECT_TRUE(unmemoized.result.linearizable);
      EXPECT_EQ(unmemoized.stats.memo_hits, 0u);
    }

    // Forced negative: an impossible observation appended; both sides must
    // reject, and the fallback side must reject without a witness.
    auto bad = ops;
    fast::append_impossible_observation(type, bad);
    ASSERT_TRUE(fast::classify(type, bad).eligible);
    const auto fast_bad = check(type, bad);
    ASSERT_EQ(fast_bad.stats.route, CheckRoute::kFastPath);
    EXPECT_FALSE(fast_bad.result.linearizable) << type.name() << " seed " << seed;
    const auto general_bad = check(type, bad, general_only);
    EXPECT_FALSE(general_bad.result.linearizable) << type.name() << " seed " << seed;
    EXPECT_TRUE(general_bad.result.witness.empty());

    // Return-swap mutation: verdict unknown a priori, but the two checkers
    // must still agree on it.
    auto swapped = ops;
    if (fast::swap_two_returns(swapped, gen.seed * 7919)) {
      const auto cls_swapped = fast::classify(type, swapped);
      if (cls_swapped.eligible) {
        const auto fast_swapped = check(type, swapped);
        const auto general_swapped = check(type, swapped, general_only);
        EXPECT_EQ(fast_swapped.result.linearizable, general_swapped.result.linearizable)
            << type.name() << " seed " << seed << ": fast/general disagree after return swap";
        if (general_swapped.result.linearizable) {
          validate_witness(type, swapped, general_swapped.result.witness);
        }
      }
    }
  }
}

TEST(DifferentialTest, Register) { run_differential(adt::RegisterType{}); }
TEST(DifferentialTest, RmwRegisterRestricted) { run_differential(adt::RmwRegisterType{}); }
TEST(DifferentialTest, Queue) { run_differential(adt::QueueType{}); }
TEST(DifferentialTest, Stack) { run_differential(adt::StackType{}); }
TEST(DifferentialTest, Set) { run_differential(adt::SetType{}); }
TEST(DifferentialTest, PQueue) { run_differential(adt::PriorityQueueType{}); }

}  // namespace
}  // namespace lintime::lin
